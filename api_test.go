package detobj_test

import (
	"fmt"
	"testing"

	"detobj"
)

// ExampleNewAlg2 runs the paper's Algorithm 2: three processes solve
// 2-set consensus with a single one-shot WRN_3 object.
func ExampleNewAlg2() {
	objects := map[string]detobj.Object{}
	programs := detobj.NewAlg2(objects, "W", []detobj.Value{"red", "green", "blue"})
	res, err := detobj.Run(detobj.Config{
		Objects:   objects,
		Programs:  programs,
		Scheduler: detobj.NewFixedSchedule(0, 1, 2),
	})
	if err != nil {
		panic(err)
	}
	// Under the sequential schedule 0,1,2: P0 and P1 read empty successor
	// cells and keep their own proposals; P2 reads cell 0 and adopts red.
	fmt.Println(res.Outputs)
	// Output: [red green red]
}

// ExampleImplements evaluates Theorem 41 on the paper's §7.1 example.
func ExampleImplements() {
	fmt.Println(detobj.Implements(3, 2, 12, 8))
	fmt.Println(detobj.Implements(3, 2, 12, 7))
	// Output:
	// true
	// false
}

// ExampleCompare shows the 1sWRN hierarchy ordering of Corollary 42.
func ExampleCompare() {
	a := detobj.WRNEquivalent(3)
	b := detobj.WRNEquivalent(5)
	fmt.Println(detobj.Compare(a, b))
	fmt.Println(detobj.Compare(b, a))
	// Output:
	// stronger
	// weaker
}

func TestFacadeWRNRoundTrip(t *testing.T) {
	w := detobj.NewWRN(3)
	if w.K() != 3 {
		t.Fatalf("K = %d", w.K())
	}
	one := detobj.NewOneShotWRN(4)
	if one.K() != 4 {
		t.Fatalf("one-shot K = %d", one.K())
	}
	if !detobj.IsBottom(detobj.Bottom) {
		t.Fatal("Bottom lost its identity through the facade")
	}
}

func TestFacadeConsensusNumbers(t *testing.T) {
	if detobj.WRNConsensusNumber(2) != 2 || detobj.WRNConsensusNumber(7) != 1 {
		t.Fatal("consensus numbers wrong through the facade")
	}
	if detobj.MinAgreement(12, 3, 2) != 8 {
		t.Fatal("MinAgreement wrong through the facade")
	}
	if detobj.Alg6Guarantee(12, 3) != 8 {
		t.Fatal("Alg6Guarantee wrong through the facade")
	}
}

func TestFacadeAlg6EndToEnd(t *testing.T) {
	objects := map[string]detobj.Object{}
	a := detobj.NewAlg6(objects, "G", 6, 3)
	inputs := map[int]detobj.Value{}
	progs := make([]detobj.Program, 6)
	for i := 0; i < 6; i++ {
		v := i
		inputs[i] = v
		progs[i] = a.Program(i, v)
	}
	res, err := detobj.Run(detobj.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: detobj.NewRandomScheduler(1),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	o := detobj.OutcomeFromResult(res, inputs)
	task := detobj.SetConsensusTask{K: detobj.Alg6Guarantee(6, 3)}
	if err := task.Check(o); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLinearizability(t *testing.T) {
	objects := map[string]detobj.Object{}
	impl := detobj.NewWRNImpl(objects, "LW", 3)
	progs := make([]detobj.Program, 3)
	for i := 0; i < 3; i++ {
		i := i
		progs[i] = func(ctx *detobj.Ctx) detobj.Value {
			return impl.TracedWRN(ctx, i, 10+i)
		}
	}
	res, err := detobj.Run(detobj.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: detobj.NewRandomScheduler(5),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ops := detobj.LinOps(res.Trace, impl.Name())
	if !detobj.LinCheck(detobj.WRNSpec(3), ops) {
		t.Fatal("Algorithm 5 history not linearizable through the facade")
	}
}

func TestFacadeExplore(t *testing.T) {
	n, err := detobj.Explore(func() detobj.Config {
		objects := map[string]detobj.Object{}
		progs := detobj.NewAlg2(objects, "W", []detobj.Value{1, 2, 3})
		return detobj.Config{Objects: objects, Programs: progs}
	}, 0, func(e detobj.Execution) error { return nil })
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if n != 6 {
		t.Fatalf("executions = %d, want 3! = 6", n)
	}
}

func TestFacadeFamily(t *testing.T) {
	f := detobj.Family{N: 3}
	w := f.Separation(2)
	if !w.Separated() {
		t.Fatalf("family separation failed: %+v", w)
	}
}

func TestFacadePowerClasses(t *testing.T) {
	classes := detobj.PowerClasses(8)
	if len(classes) != 8*7/2 {
		t.Fatalf("classes = %d, want %d", len(classes), 8*7/2)
	}
}

func TestFacadeIteratedSnapshot(t *testing.T) {
	objects := map[string]detobj.Object{}
	pr := detobj.NewIteratedSnapshot(objects, "IIS", 2, 2)
	if pr.Rounds() != 2 {
		t.Fatalf("Rounds = %d", pr.Rounds())
	}
	res, err := detobj.Run(detobj.Config{
		Objects:  objects,
		Programs: []detobj.Program{pr.Program(0, "x"), pr.Program(1, "y")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone() {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestFacadeSubstrates(t *testing.T) {
	objects := map[string]detobj.Object{}
	ren := detobj.NewRenaming(objects, "REN", 16)
	snap := detobj.NewSnapshot(objects, "SNAP", 3, nil)
	sa := detobj.NewSafeAgreement(objects, "SA", 2)
	objects["SSE"] = detobj.NewStrongElection(3)

	res, err := detobj.Run(detobj.Config{
		Objects: objects,
		Programs: []detobj.Program{func(ctx *detobj.Ctx) detobj.Value {
			name := ren.GetName(ctx, 7)
			snap.Update(ctx, 0, "x")
			view := snap.Scan(ctx)
			sa.Propose(ctx, 0, "agreed")
			v := sa.ResolveBlocking(ctx)
			return []detobj.Value{name, view[0], v}
		}},
		MaxSteps: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[0].([]detobj.Value)
	if out[0] != 0 || out[1] != "x" || out[2] != "agreed" {
		t.Fatalf("outputs = %v", out)
	}
}

func TestFacadeBGSimulation(t *testing.T) {
	objects := map[string]detobj.Object{}
	s := detobj.NewBGSimulation(objects, "BG", 2, []detobj.Value{"a", "b"}, detobj.BGProtocol{
		Rounds: 1,
		Write:  func(_ int, input detobj.Value, _ [][]detobj.Value) detobj.Value { return input },
		Decide: func(p int, _ detobj.Value, scans [][]detobj.Value) detobj.Value { return scans[0][p] },
	})
	res, err := detobj.Run(detobj.Config{
		Objects:  objects,
		Programs: s.Programs(),
		MaxSteps: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone() {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestFacadeAlg3AndFamilies(t *testing.T) {
	family := detobj.CoveringFamily(3)
	objects := map[string]detobj.Object{}
	a := detobj.NewAlg3(objects, "A", 3, 16, family)
	inputs := map[int]detobj.Value{0: "x", 1: "y", 2: "z"}
	res, err := detobj.Run(detobj.Config{
		Objects:   objects,
		Programs:  []detobj.Program{a.Program(3, "x"), a.Program(8, "y"), a.Program(12, "z")},
		Scheduler: detobj.NewRandomScheduler(5),
		MaxSteps:  1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := detobj.OutcomeFromResult(res, inputs)
	if err := (detobj.SetConsensusTask{K: 2}).Check(o); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeObjects(t *testing.T) {
	sc := detobj.NewSetConsensusObject(3, 2)
	if sc.N() != 3 || sc.K() != 2 {
		t.Fatal("set-consensus object accessors")
	}
	if detobj.NewRoundRobin() == nil {
		t.Fatal("round robin nil")
	}
}
