package registers

import (
	"errors"
	"testing"
	"testing/quick"

	"detobj/internal/sim"
)

func runOne(t *testing.T, objects map[string]sim.Object, progs ...sim.Program) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestRegisterReadWrite(t *testing.T) {
	objects := map[string]sim.Object{"R": New(nil)}
	r := Ref{Name: "R"}
	res := runOne(t, objects, func(ctx *sim.Ctx) sim.Value {
		if got := r.Read(ctx); got != nil {
			t.Errorf("initial read = %v, want nil", got)
		}
		r.Write(ctx, 42)
		return r.Read(ctx)
	})
	if res.Outputs[0] != 42 {
		t.Errorf("final read = %v, want 42", res.Outputs[0])
	}
}

func TestRegisterLastWriteWins(t *testing.T) {
	objects := map[string]sim.Object{"R": New(0)}
	r := Ref{Name: "R"}
	writer := func(v int) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			r.Write(ctx, v)
			return nil
		}
	}
	reader := func(ctx *sim.Ctx) sim.Value { return r.Read(ctx) }
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{writer(1), writer(2), reader},
		Scheduler: sim.NewFixed(0, 1, 2),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[2] != 2 {
		t.Errorf("reader saw %v, want 2 (the last write)", res.Outputs[2])
	}
}

func TestRegisterSWMREnforced(t *testing.T) {
	objects := map[string]sim.Object{"R": NewSWMR(nil, 1)}
	r := Ref{Name: "R"}
	// Process 0 writes a register owned by process 1: must fail the run.
	_, err := sim.Run(sim.Config{
		Objects:  objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value { r.Write(ctx, 1); return nil }},
	})
	if !errors.Is(err, sim.ErrObjectPanic) {
		t.Errorf("err = %v, want ErrObjectPanic", err)
	}
}

func TestRegisterSWMROwnerMayWrite(t *testing.T) {
	objects := map[string]sim.Object{"R": NewSWMR(nil, 0)}
	r := Ref{Name: "R"}
	res := runOne(t, objects, func(ctx *sim.Ctx) sim.Value {
		r.Write(ctx, "x")
		return r.Read(ctx)
	})
	if res.Outputs[0] != "x" {
		t.Errorf("read = %v, want x", res.Outputs[0])
	}
}

func TestRegisterUnknownOpPanics(t *testing.T) {
	objects := map[string]sim.Object{"R": New(nil)}
	_, err := sim.Run(sim.Config{
		Objects:  objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value { return ctx.Invoke("R", "cas", 1, 2) }},
	})
	if !errors.Is(err, sim.ErrObjectPanic) {
		t.Errorf("err = %v, want ErrObjectPanic", err)
	}
	var ope *sim.ObjectPanicError
	if !errors.As(err, &ope) || ope.Object != "R" || ope.Op != "cas" {
		t.Errorf("ObjectPanicError not populated: %+v", ope)
	}
}

func TestCounter(t *testing.T) {
	objects := map[string]sim.Object{"A": NewCounter()}
	c := CounterRef{Name: "A"}
	res := runOne(t, objects, func(ctx *sim.Ctx) sim.Value {
		if got := c.Read(ctx); got != 0 {
			t.Errorf("initial counter = %d, want 0", got)
		}
		c.Inc(ctx)
		c.Inc(ctx)
		return c.Read(ctx)
	})
	if res.Outputs[0] != 2 {
		t.Errorf("counter = %v, want 2", res.Outputs[0])
	}
}

func TestCounterUnknownOpPanics(t *testing.T) {
	objects := map[string]sim.Object{"A": NewCounter()}
	_, err := sim.Run(sim.Config{
		Objects:  objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value { return ctx.Invoke("A", "dec") }},
	})
	if !errors.Is(err, sim.ErrObjectPanic) {
		t.Errorf("err = %v, want ErrObjectPanic", err)
	}
}

func TestDoorway(t *testing.T) {
	objects := map[string]sim.Object{"D": NewDoorway()}
	d := DoorwayRef{Name: "D"}
	res := runOne(t, objects, func(ctx *sim.Ctx) sim.Value {
		if !d.IsOpen(ctx) {
			t.Error("doorway not initially open")
		}
		d.Close(ctx)
		return d.IsOpen(ctx)
	})
	if res.Outputs[0] != false {
		t.Error("doorway still open after Close")
	}
}

func TestAddRegisterArray(t *testing.T) {
	objects := map[string]sim.Object{}
	refs := AddRegisterArray(objects, "R", 3, "init")
	if len(refs) != 3 {
		t.Fatalf("got %d refs, want 3", len(refs))
	}
	if refs[2].Name != "R[2]" {
		t.Errorf("refs[2].Name = %q, want R[2]", refs[2].Name)
	}
	if len(objects) != 3 {
		t.Errorf("registered %d objects, want 3", len(objects))
	}
	res := runOne(t, objects, func(ctx *sim.Ctx) sim.Value {
		refs[1].Write(ctx, 7)
		return []sim.Value{refs[0].Read(ctx), refs[1].Read(ctx)}
	})
	got := res.Outputs[0].([]sim.Value)
	if got[0] != "init" || got[1] != 7 {
		t.Errorf("reads = %v, want [init 7]", got)
	}
}

func TestAddSWMRArray(t *testing.T) {
	objects := map[string]sim.Object{}
	refs := AddSWMRArray(objects, "S", 2, nil, func(i int) int { return i })
	res := runOne(t, objects,
		func(ctx *sim.Ctx) sim.Value { refs[0].Write(ctx, "a"); return nil },
		func(ctx *sim.Ctx) sim.Value { refs[1].Write(ctx, "b"); return refs[0].Read(ctx) },
	)
	if res.Status[0] != sim.StatusDone || res.Status[1] != sim.StatusDone {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestAddCounterArray(t *testing.T) {
	objects := map[string]sim.Object{}
	refs := AddCounterArray(objects, "A", 2)
	res := runOne(t, objects, func(ctx *sim.Ctx) sim.Value {
		refs[0].Inc(ctx)
		return refs[0].Read(ctx) + refs[1].Read(ctx)
	})
	if res.Outputs[0] != 1 {
		t.Errorf("sum = %v, want 1", res.Outputs[0])
	}
}

// TestQuickRegisterSequential checks, across random write sequences, that a
// register always returns the most recent write in a sequential run.
func TestQuickRegisterSequential(t *testing.T) {
	f := func(vals []int) bool {
		objects := map[string]sim.Object{"R": New(-1)}
		r := Ref{Name: "R"}
		res, err := sim.Run(sim.Config{
			Objects: objects,
			Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
				last := -1
				for _, v := range vals {
					r.Write(ctx, v)
					last = v
					if got := r.Read(ctx); got != last {
						return false
					}
				}
				return true
			}},
		})
		return err == nil && res.Outputs[0] == true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
