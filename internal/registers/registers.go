// Package registers provides the base shared objects of the paper's model:
// atomic multi-writer and single-writer registers, increment/read counters
// (used by the relaxed WRN wrapper, Algorithm 4), and the doorway register
// of Algorithm 5. Each is a sim.Object together with a typed handle (Ref)
// that algorithm code uses to issue operations through a sim.Ctx.
//
// Misusing an object — writing an SWMR register from the wrong process,
// invoking an unknown operation — is a programming error in the algorithm
// under simulation and panics with a descriptive message.
package registers

import (
	"fmt"

	"detobj/internal/sim"
)

// MWMR marks a register writable by every process.
const MWMR = -1

// Register is an atomic read/write register.
type Register struct {
	value  sim.Value
	writer int
}

// New returns a multi-writer multi-reader register holding initial.
func New(initial sim.Value) *Register {
	return &Register{value: initial, writer: MWMR}
}

// NewSWMR returns a single-writer register holding initial that only the
// given process may write. Reads are unrestricted.
func NewSWMR(initial sim.Value, writer int) *Register {
	return &Register{value: initial, writer: writer}
}

// Apply implements sim.Object with operations "read" and "write".
func (r *Register) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "read":
		return sim.Respond(r.value)
	case "write":
		if r.writer != MWMR && env.Proc != r.writer {
			panic(fmt.Sprintf("registers: process %d wrote SWMR register owned by %d", env.Proc, r.writer))
		}
		r.value = inv.Arg(0)
		return sim.Respond(nil)
	default:
		panic(fmt.Sprintf("registers: unknown register operation %q", inv.Op))
	}
}

// Ref is a typed handle to a Register registered under Name.
type Ref struct {
	Name string
}

// Read returns the register's current value (one atomic step).
func (r Ref) Read(ctx *sim.Ctx) sim.Value {
	return ctx.Invoke(r.Name, "read")
}

// Write sets the register's value (one atomic step).
func (r Ref) Write(ctx *sim.Ctx, v sim.Value) {
	ctx.Invoke(r.Name, "write", v)
}

// Counter is an atomic counter supporting unit increments and reads; it is
// the flag-principle counter protecting each 1sWRN index in Algorithm 4.
type Counter struct {
	n int
}

// NewCounter returns a counter initialized to zero.
func NewCounter() *Counter { return &Counter{} }

// Apply implements sim.Object with operations "inc" and "read".
func (c *Counter) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "inc":
		c.n++
		return sim.Respond(nil)
	case "read":
		return sim.Respond(c.n)
	default:
		panic(fmt.Sprintf("registers: unknown counter operation %q", inv.Op))
	}
}

// CounterRef is a typed handle to a Counter registered under Name.
type CounterRef struct {
	Name string
}

// Inc increments the counter by one (one atomic step).
func (c CounterRef) Inc(ctx *sim.Ctx) {
	ctx.Invoke(c.Name, "inc")
}

// Read returns the counter's current value (one atomic step).
func (c CounterRef) Read(ctx *sim.Ctx) int {
	return ctx.Invoke(c.Name, "read").(int)
}

// Doorway states, stored in an ordinary MWMR register.
const (
	Opened = "opened"
	Closed = "closed"
)

// NewDoorway returns the doorway register of Algorithm 5: an MWMR register
// initialized to Opened.
func NewDoorway() *Register { return New(Opened) }

// DoorwayRef is a typed handle to a doorway register.
type DoorwayRef struct {
	Name string
}

// IsOpen reads the doorway and reports whether it is still open.
func (d DoorwayRef) IsOpen(ctx *sim.Ctx) bool {
	return ctx.Invoke(d.Name, "read") == Opened
}

// Close shuts the doorway.
func (d DoorwayRef) Close(ctx *sim.Ctx) {
	ctx.Invoke(d.Name, "write", Closed)
}

// AddArray registers k objects under names name[0] .. name[k-1] built by
// mk and returns their names.
func AddArray(objects map[string]sim.Object, name string, k int, mk func(i int) sim.Object) []string {
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = sim.Indexed(name, i)
		objects[names[i]] = mk(i)
	}
	return names
}

// AddRegisterArray registers k MWMR registers initialized to initial and
// returns typed handles to them.
func AddRegisterArray(objects map[string]sim.Object, name string, k int, initial sim.Value) []Ref {
	refs := make([]Ref, k)
	for i, n := range AddArray(objects, name, k, func(int) sim.Object { return New(initial) }) {
		refs[i] = Ref{Name: n}
	}
	return refs
}

// AddSWMRArray registers k single-writer registers, the i-th owned by
// process owner(i), initialized to initial, and returns typed handles.
func AddSWMRArray(objects map[string]sim.Object, name string, k int, initial sim.Value, owner func(i int) int) []Ref {
	refs := make([]Ref, k)
	for i, n := range AddArray(objects, name, k, func(i int) sim.Object { return NewSWMR(initial, owner(i)) }) {
		refs[i] = Ref{Name: n}
	}
	return refs
}

// AddCounterArray registers k counters and returns typed handles.
func AddCounterArray(objects map[string]sim.Object, name string, k int) []CounterRef {
	refs := make([]CounterRef, k)
	for i, n := range AddArray(objects, name, k, func(int) sim.Object { return NewCounter() }) {
		refs[i] = CounterRef{Name: n}
	}
	return refs
}

// StateKey serializes the register value (for the model checker).
func (r *Register) StateKey() string { return fmt.Sprint(r.value) }

// AppendStateSig implements sim.StateSigner.
func (r *Register) AppendStateSig(dst []byte) []byte {
	return sim.AppendValueSig(dst, r.value)
}

// CloneObject returns a copy (for the model checker).
func (r *Register) CloneObject() sim.Object {
	return &Register{value: r.value, writer: r.writer}
}

// StateKey serializes the counter (for the model checker).
func (c *Counter) StateKey() string { return fmt.Sprint(c.n) }

// AppendStateSig implements sim.StateSigner.
func (c *Counter) AppendStateSig(dst []byte) []byte {
	return sim.AppendIntSig(dst, c.n)
}

// CloneObject returns a copy (for the model checker).
func (c *Counter) CloneObject() sim.Object { return &Counter{n: c.n} }
