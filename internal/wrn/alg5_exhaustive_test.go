package wrn

import (
	"fmt"
	"testing"

	"detobj/internal/linearize"
	"detobj/internal/modelcheck"
	"detobj/internal/sim"
)

// TestAlg5ExhaustiveK2 verifies Corollary 37 for k = 2 over EVERY
// execution: all interleavings of the two invocations and all internal
// choices of the strong-election object. Every complete history must be
// wait-free and linearizable.
func TestAlg5ExhaustiveK2(t *testing.T) {
	const k = 2
	spec := Spec(k)
	factory := func() sim.Config {
		objects := map[string]sim.Object{}
		impl := NewImpl(objects, "LW", k)
		progs := make([]sim.Program, k)
		for i := 0; i < k; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				return impl.TracedWRN(ctx, i, 100+i)
			}
		}
		return sim.Config{Objects: objects, Programs: progs}
	}
	execs, err := modelcheck.Explore(factory, 1<<20, func(e modelcheck.Execution) error {
		if !e.Result.AllDone() {
			return fmt.Errorf("not wait-free: %v", e.Result.Status)
		}
		ops := linearize.Ops(e.Result.Trace, "LW")
		if len(ops) != k {
			return fmt.Errorf("%d completed ops", len(ops))
		}
		if !linearize.Check(spec, ops).OK {
			return fmt.Errorf("history not linearizable: %v", ops)
		}
		// Claim 22: every output is ⊥ or the successor's value.
		for p := 0; p < k; p++ {
			out := e.Result.Outputs[p]
			if !IsBottom(out) && out != 100+(p+1)%k {
				return fmt.Errorf("process %d returned %v", p, out)
			}
		}
		// Claims 23/24: some ⊥ and, in a complete run, some successor value.
		bottoms := 0
		for p := 0; p < k; p++ {
			if IsBottom(e.Result.Outputs[p]) {
				bottoms++
			}
		}
		if bottoms == 0 || bottoms == k {
			return fmt.Errorf("%d of %d invocations returned ⊥", bottoms, k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The execution tree has exactly 78 leaves, by hand count: 21
	// interleavings per side where one invocation closes the doorway
	// before the other reads it (3 + 5·3 with the latecomer's announce
	// before the close, 6 with it after), plus 18 per side where both
	// enter the doorway and race the election (gap-vector count with the
	// constraints d_other < w_self, s_winner < s_loser).
	if execs != 78 {
		t.Fatalf("explored %d executions, want 78", execs)
	}
}

// TestAlg5ExhaustivePrefixCrashesK2 explores every execution prefix of the
// k = 2 instance in which one process crashes at an arbitrary point and
// the other runs solo to completion, checking wait-freedom of the
// survivor and pending-aware linearizability.
func TestAlg5ExhaustivePrefixCrashesK2(t *testing.T) {
	const k = 2
	spec := Spec(k)
	for crash := 0; crash < k; crash++ {
		crash := crash
		survivor := 1 - crash
		// Enumerate how many steps the crashing process takes before it
		// stops (0..10 covers its whole program).
		for steps := 0; steps <= 10; steps++ {
			objects := map[string]sim.Object{}
			impl := NewImpl(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					return impl.TracedWRN(ctx, i, 100+i)
				}
			}
			// Schedule: the crasher takes `steps` steps, then the survivor
			// runs alone.
			order := make([]int, 0, steps)
			for s := 0; s < steps; s++ {
				order = append(order, crash)
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: &sim.Fixed{Order: order, Fallback: sim.NewCrashing(nil, crash)},
				MaxSteps:  1 << 16,
			})
			if err != nil {
				t.Fatalf("crash=%d steps=%d: %v", crash, steps, err)
			}
			if res.Status[survivor] != sim.StatusDone {
				t.Fatalf("crash=%d steps=%d: survivor stuck: %v", crash, steps, res.Status[survivor])
			}
			done, pending := linearize.OpsWithPending(res.Trace, "LW")
			if !linearize.Check(spec, append(done, pending...)).OK {
				t.Fatalf("crash=%d steps=%d: not linearizable\ncompleted %v\npending %v",
					crash, steps, done, pending)
			}
		}
	}
}

// TestAlg5PrefixCrashesK3: for k = 3, one invocation crashes after each
// possible number of its own steps while the other two run to completion;
// the survivors must finish and the history (with the crashed pending op)
// must linearize.
func TestAlg5PrefixCrashesK3(t *testing.T) {
	const k = 3
	spec := Spec(k)
	for crash := 0; crash < k; crash++ {
		for steps := 0; steps <= 10; steps++ {
			objects := map[string]sim.Object{}
			impl := NewImpl(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					return impl.TracedWRN(ctx, i, 100+i)
				}
			}
			order := make([]int, steps)
			for s := range order {
				order[s] = crash
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: &sim.Fixed{Order: order, Fallback: sim.NewCrashing(sim.NewRoundRobin(), crash)},
				MaxSteps:  1 << 18,
			})
			if err != nil {
				t.Fatalf("crash=%d steps=%d: %v", crash, steps, err)
			}
			for i := 0; i < k; i++ {
				if i != crash && res.Status[i] != sim.StatusDone {
					t.Fatalf("crash=%d steps=%d: survivor %d stuck: %v", crash, steps, i, res.Status[i])
				}
			}
			done, pending := linearize.OpsWithPending(res.Trace, "LW")
			if !linearize.Check(spec, append(done, pending...)).OK {
				t.Fatalf("crash=%d steps=%d: not linearizable\ndone %v\npending %v",
					crash, steps, done, pending)
			}
		}
	}
}
