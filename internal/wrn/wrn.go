// Package wrn implements the paper's deterministic sub-consensus objects:
// WriteAndReadNext (WRN_k) and its one-shot variant 1sWRN_k (paper §3,
// Algorithm 1), the relaxed wrapper RlxWRN built from 1sWRN_k and counters
// (Algorithm 4), and the linearizable implementation of 1sWRN_k from
// (k,k−1)-strong set election and registers (Algorithm 5).
//
// A WRN_k object holds k cells A[0..k-1], initially ⊥. Its single
// operation WRN(i, v) atomically writes v to A[i] and returns the previous
// content of A[(i+1) mod k]. For k = 2 this is a SWAP object (consensus
// number 2); for k ≥ 3 its consensus number is 1, yet it cannot be
// implemented from registers — it sits strictly between registers and
// 2-consensus in synchronization power.
package wrn

import (
	"fmt"

	"detobj/internal/registers"
	"detobj/internal/sim"
)

// bottomType is the type of Bottom; it prints as ⊥.
type bottomType struct{}

// String implements fmt.Stringer.
func (bottomType) String() string { return "⊥" }

// Bottom is the distinguished "no value" ⊥. Cells start at Bottom and no
// process may write it.
var Bottom sim.Value = bottomType{}

// IsBottom reports whether v is the distinguished ⊥ value.
func IsBottom(v sim.Value) bool {
	_, ok := v.(bottomType)
	return ok
}

// Object is a deterministic WRN_k object (Algorithm 1).
type Object struct {
	k     int
	cells []sim.Value
}

// New returns a fresh WRN_k object. k must be at least 2.
func New(k int) *Object {
	if k < 2 {
		panic(fmt.Sprintf("wrn: k = %d, need k >= 2", k))
	}
	cells := make([]sim.Value, k)
	for i := range cells {
		cells[i] = Bottom
	}
	return &Object{k: k, cells: cells}
}

// K returns the object's arity.
func (o *Object) K() int { return o.k }

// Cells returns a copy of the current cell contents, for inspection in
// tests and the model checker.
func (o *Object) Cells() []sim.Value {
	out := make([]sim.Value, o.k)
	copy(out, o.cells)
	return out
}

// Apply implements sim.Object with the single operation "WRN"(i, v):
// A[i] ← v; return the previous A[(i+1) mod k].
func (o *Object) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	i, v := o.validate(inv)
	o.cells[i] = v
	return sim.Respond(o.cells[(i+1)%o.k])
}

func (o *Object) validate(inv sim.Invocation) (int, sim.Value) {
	if inv.Op != "WRN" {
		panic(fmt.Sprintf("wrn: unknown operation %q", inv.Op))
	}
	i, ok := inv.Arg(0).(int)
	if !ok || i < 0 || i >= o.k {
		panic(fmt.Sprintf("wrn: index %v outside [0,%d)", inv.Arg(0), o.k))
	}
	v := inv.Arg(1)
	if v == nil || IsBottom(v) {
		panic("wrn: WRN invoked with ⊥ or nil value")
	}
	return i, v
}

// OneShot is a 1sWRN_k object: a WRN_k object in which each index may be
// used at most once. A second invocation with the same index is illegal
// and hangs the calling process in a manner no process can detect.
type OneShot struct {
	inner *Object
	used  []bool
	uses  []int
}

// NewOneShot returns a fresh 1sWRN_k object. k must be at least 2.
func NewOneShot(k int) *OneShot {
	return &OneShot{inner: New(k), used: make([]bool, k), uses: make([]int, k)}
}

// K returns the object's arity.
func (o *OneShot) K() int { return o.inner.k }

// Cells returns a copy of the current cell contents.
func (o *OneShot) Cells() []sim.Value { return o.inner.Cells() }

// Invocations returns how many WRN operations were attempted with index i
// (including the one that hung, if any). Tests use it to verify the
// legal-use claims of Algorithm 4.
func (o *OneShot) Invocations(i int) int { return o.uses[i] }

// Apply implements sim.Object: as Object.Apply, but a repeated index hangs
// the caller.
func (o *OneShot) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	i, _ := o.inner.validate(inv)
	o.uses[i]++
	if o.used[i] {
		return sim.HangCaller()
	}
	o.used[i] = true
	return o.inner.Apply(env, inv)
}

// Ref is a typed handle to a WRN_k or 1sWRN_k object registered under Name.
type Ref struct {
	Name string
}

// WRN applies WRN(i, v) as one atomic step and returns its result, which
// is either a previously written value or Bottom.
func (r Ref) WRN(ctx *sim.Ctx, i int, v sim.Value) sim.Value {
	return ctx.Invoke(r.Name, "WRN", i, v)
}

// Operator is anything providing the WRN operation: the atomic object
// handle (Ref) or the Algorithm 5 implementation (Impl). Higher layers —
// the relaxed wrapper, Algorithm 3 — are written against this interface,
// so implemented objects substitute for atomic ones.
type Operator interface {
	WRN(ctx *sim.Ctx, i int, v sim.Value) sim.Value
}

// Relaxed is the relaxed WRN_k of Algorithm 4: a 1sWRN_k object protected
// by one flag counter per index. RlxWRN(i, v) increments A[i]'s counter,
// reads it, and forwards to 1sWRN only if it read exactly 1 — the flag
// principle guarantees the one-shot object is used legally (Claims 19–20).
// Otherwise it gives up and returns ⊥.
type Relaxed struct {
	wrn      Operator
	counters []registers.CounterRef
}

// NewRelaxed registers a fresh 1sWRN_k object under name and k counters
// under name+".cnt", and returns the relaxed handle. It also returns the
// underlying OneShot object so tests can inspect legal use.
func NewRelaxed(objects map[string]sim.Object, name string, k int) (Relaxed, *OneShot) {
	one := NewOneShot(k)
	objects[name] = one
	return NewRelaxedOver(objects, name+".cnt", k, Ref{Name: name}), one
}

// NewRelaxedOver builds the relaxed wrapper of Algorithm 4 on top of an
// arbitrary 1sWRN operator — the atomic object or an Algorithm 5
// implementation — registering only the k flag counters under the name
// prefix.
func NewRelaxedOver(objects map[string]sim.Object, name string, k int, op Operator) Relaxed {
	return Relaxed{wrn: op, counters: registers.AddCounterArray(objects, name, k)}
}

// RlxWRN performs the relaxed operation of Algorithm 4. It takes three
// atomic steps on the fast path (inc, read, WRN) and two when it gives up.
func (r Relaxed) RlxWRN(ctx *sim.Ctx, i int, v sim.Value) sim.Value {
	r.counters[i].Inc(ctx)
	if c := r.counters[i].Read(ctx); c == 1 {
		return r.wrn.WRN(ctx, i, v)
	}
	return Bottom
}

// K returns the arity of the underlying object.
func (r Relaxed) K() int { return len(r.counters) }

// StateKey serializes the cell contents (for the model checker).
func (o *Object) StateKey() string { return fmt.Sprint(o.cells) }

// AppendStateSig implements sim.StateSigner: the cell contents, in
// index order, tag-delimited (see internal/sim/signature.go).
func (o *Object) AppendStateSig(dst []byte) []byte {
	for _, c := range o.cells {
		dst = sim.AppendValueSig(dst, c)
	}
	return dst
}

// CloneObject returns a deep copy (for the model checker).
func (o *Object) CloneObject() sim.Object {
	return &Object{k: o.k, cells: o.Cells()}
}

// StateKey serializes cells plus per-index use flags (for the model
// checker).
func (o *OneShot) StateKey() string {
	return fmt.Sprintf("%v%v", o.inner.cells, o.used)
}

// AppendStateSig implements sim.StateSigner: the inner cells plus the
// per-index attempt counters. The counters (not just the used flags)
// are part of the state because Invocations exposes them.
func (o *OneShot) AppendStateSig(dst []byte) []byte {
	dst = o.inner.AppendStateSig(dst)
	for _, u := range o.uses {
		dst = sim.AppendIntSig(dst, u)
	}
	return dst
}

// CloneObject returns a deep copy (for the model checker).
func (o *OneShot) CloneObject() sim.Object {
	return &OneShot{
		inner: o.inner.CloneObject().(*Object),
		used:  append([]bool(nil), o.used...),
		uses:  append([]int(nil), o.uses...),
	}
}
