package wrn

import (
	"fmt"
	"testing"
	"testing/quick"

	"detobj/internal/modelcheck"
	"detobj/internal/sim"
)

func TestBottom(t *testing.T) {
	if !IsBottom(Bottom) {
		t.Error("IsBottom(Bottom) = false")
	}
	if IsBottom(42) || IsBottom(nil) {
		t.Error("IsBottom accepts non-bottom values")
	}
	if fmt.Sprint(Bottom) != "⊥" {
		t.Errorf("Bottom prints as %v", Bottom)
	}
	if Bottom != Bottom {
		t.Error("Bottom is not comparable to itself")
	}
}

func TestNewRejectsSmallK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1) did not panic")
		}
	}()
	New(1)
}

// TestWRNSequentialSpec checks Algorithm 1 directly: WRN(i, v) writes A[i]
// and returns the previous A[(i+1) mod k].
func TestWRNSequentialSpec(t *testing.T) {
	const k = 4
	o := New(k)
	env := &sim.Env{}
	wrn := func(i int, v sim.Value) sim.Value {
		return o.Apply(env, sim.Invocation{Op: "WRN", Args: []sim.Value{i, v}}).Value
	}
	if got := wrn(0, "a"); !IsBottom(got) {
		t.Errorf("first WRN(0) = %v, want ⊥", got)
	}
	if got := wrn(3, "d"); got != "a" {
		t.Errorf("WRN(3) = %v, want a (cell 0)", got)
	}
	if got := wrn(2, "c"); got != "d" {
		t.Errorf("WRN(2) = %v, want d (cell 3)", got)
	}
	if got := wrn(1, "b"); got != "c" {
		t.Errorf("WRN(1) = %v, want c (cell 2)", got)
	}
	if got := wrn(0, "a2"); got != "b" {
		t.Errorf("WRN(0) again = %v, want b (cell 1)", got)
	}
	cells := o.Cells()
	want := []sim.Value{"a2", "b", "c", "d"}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cells[%d] = %v, want %v", i, cells[i], want[i])
		}
	}
	if o.K() != k {
		t.Errorf("K = %d, want %d", o.K(), k)
	}
}

// TestWRNK2IsSwap: with k = 2, WRN(i, v) is exactly a SWAP on a 2-cell
// ring — writing one cell returns the other's previous content.
func TestWRNK2IsSwap(t *testing.T) {
	o := New(2)
	env := &sim.Env{}
	wrn := func(i int, v sim.Value) sim.Value {
		return o.Apply(env, sim.Invocation{Op: "WRN", Args: []sim.Value{i, v}}).Value
	}
	if got := wrn(0, "x"); !IsBottom(got) {
		t.Errorf("WRN(0,x) = %v, want ⊥", got)
	}
	if got := wrn(1, "y"); got != "x" {
		t.Errorf("WRN(1,y) = %v, want x", got)
	}
	if got := wrn(0, "z"); got != "y" {
		t.Errorf("WRN(0,z) = %v, want y", got)
	}
}

func TestWRNValidation(t *testing.T) {
	cases := []struct {
		name string
		inv  sim.Invocation
	}{
		{"bad op", sim.Invocation{Op: "read"}},
		{"index out of range", sim.Invocation{Op: "WRN", Args: []sim.Value{5, "v"}}},
		{"negative index", sim.Invocation{Op: "WRN", Args: []sim.Value{-1, "v"}}},
		{"non-int index", sim.Invocation{Op: "WRN", Args: []sim.Value{"0", "v"}}},
		{"bottom value", sim.Invocation{Op: "WRN", Args: []sim.Value{0, Bottom}}},
		{"nil value", sim.Invocation{Op: "WRN", Args: []sim.Value{0, nil}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			New(3).Apply(&sim.Env{}, c.inv)
		})
	}
}

func TestOneShotHangsOnReuse(t *testing.T) {
	o := NewOneShot(3)
	env := &sim.Env{}
	first := o.Apply(env, sim.Invocation{Op: "WRN", Args: []sim.Value{1, "v"}})
	if first.Effect != sim.Return || !IsBottom(first.Value) {
		t.Fatalf("first use = %+v", first)
	}
	second := o.Apply(env, sim.Invocation{Op: "WRN", Args: []sim.Value{1, "w"}})
	if second.Effect != sim.Hang {
		t.Fatalf("second use of index 1 did not hang: %+v", second)
	}
	if got := o.Invocations(1); got != 2 {
		t.Errorf("Invocations(1) = %d, want 2", got)
	}
	// The hung attempt must not have modified the cell.
	if cells := o.Cells(); cells[1] != "v" {
		t.Errorf("cell 1 = %v after hung write, want v", cells[1])
	}
	// Other indices still work.
	third := o.Apply(env, sim.Invocation{Op: "WRN", Args: []sim.Value{0, "u"}})
	if third.Effect != sim.Return || third.Value != "v" {
		t.Errorf("WRN(0,u) = %+v, want v", third)
	}
	if o.K() != 3 {
		t.Errorf("K = %d", o.K())
	}
}

// TestOneShotHangInsideRun verifies the hang is undetectable in a real
// simulation: the offending process parks, the rest finish.
func TestOneShotHangInsideRun(t *testing.T) {
	objects := map[string]sim.Object{"W": NewOneShot(3)}
	w := Ref{Name: "W"}
	reuse := func(ctx *sim.Ctx) sim.Value {
		w.WRN(ctx, 0, "a")
		w.WRN(ctx, 0, "b") // hangs forever
		return "unreachable"
	}
	other := func(ctx *sim.Ctx) sim.Value { return w.WRN(ctx, 1, "c") }
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{reuse, other},
		Scheduler: sim.Priority{0, 1},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Status[0] != sim.StatusHung {
		t.Errorf("reusing process status = %v, want hung", res.Status[0])
	}
	// Process 1 writes cell 1 and reads cell 2, which nobody wrote: ⊥.
	if res.Status[1] != sim.StatusDone || !IsBottom(res.Outputs[1]) {
		t.Errorf("other process: status %v output %v, want done / ⊥", res.Status[1], res.Outputs[1])
	}
}

// TestQuickWRNMatchesReference runs random operation sequences against the
// object and an independent reference implementation of Algorithm 1.
func TestQuickWRNMatchesReference(t *testing.T) {
	type op struct {
		I uint8
		V uint8
	}
	f := func(rawK uint8, ops []op) bool {
		k := int(rawK%6) + 2
		o := New(k)
		ref := make([]sim.Value, k)
		for i := range ref {
			ref[i] = Bottom
		}
		env := &sim.Env{}
		for _, operation := range ops {
			i := int(operation.I) % k
			v := int(operation.V)
			got := o.Apply(env, sim.Invocation{Op: "WRN", Args: []sim.Value{i, v}}).Value
			ref[i] = v
			want := ref[(i+1)%k]
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestRelaxedSoleAccessorForwards (Claim 21): a process alone on its index
// reads counter value 1 and reaches the one-shot object.
func TestRelaxedSoleAccessorForwards(t *testing.T) {
	const k = 4
	objects := map[string]sim.Object{}
	rlx, one := NewRelaxed(objects, "W", k)
	progs := make([]sim.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			return rlx.RlxWRN(ctx, i, fmt.Sprintf("v%d", i))
		}
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(7)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllDone() {
		t.Fatalf("status = %v", res.Status)
	}
	for i := 0; i < k; i++ {
		if got := one.Invocations(i); got != 1 {
			t.Errorf("index %d reached 1sWRN %d times, want exactly 1", i, got)
		}
	}
	if rlx.K() != k {
		t.Errorf("K = %d", rlx.K())
	}
}

// TestRelaxedContendedIndexLegal (Claims 19–20): many processes hammering
// the SAME index never invoke the one-shot object more than once, and the
// losers all get ⊥.
func TestRelaxedContendedIndexLegal(t *testing.T) {
	const procs = 5
	for seed := int64(0); seed < 30; seed++ {
		objects := map[string]sim.Object{}
		rlx, one := NewRelaxed(objects, "W", 3)
		progs := make([]sim.Program, procs)
		for p := 0; p < procs; p++ {
			p := p
			progs[p] = func(ctx *sim.Ctx) sim.Value {
				return rlx.RlxWRN(ctx, 0, fmt.Sprintf("p%d", p))
			}
		}
		res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed)})
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		if !res.AllDone() {
			t.Fatalf("seed %d: a process hung — 1sWRN used illegally: %v", seed, res.Status)
		}
		if got := one.Invocations(0); got > 1 {
			t.Errorf("seed %d: index 0 reached 1sWRN %d times, want at most 1", seed, got)
		}
		bottoms := 0
		for _, out := range res.Outputs {
			if IsBottom(out) {
				bottoms++
			}
		}
		if bottoms < procs-1 {
			t.Errorf("seed %d: %d processes got non-⊥ on a contended index", seed, procs-bottoms)
		}
	}
}

// TestRelaxedSequentialReuseGivesBottom: with no contention but repeated
// use of an index by the same caller pattern, the second use returns ⊥
// rather than reaching the one-shot object.
func TestRelaxedSequentialReuseGivesBottom(t *testing.T) {
	objects := map[string]sim.Object{}
	rlx, one := NewRelaxed(objects, "W", 3)
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			first := rlx.RlxWRN(ctx, 2, "a")
			second := rlx.RlxWRN(ctx, 2, "b")
			return []sim.Value{first, second}
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Outputs[0].([]sim.Value)
	if !IsBottom(out[0]) {
		t.Errorf("first RlxWRN = %v, want ⊥ (empty successor cell)", out[0])
	}
	if !IsBottom(out[1]) {
		t.Errorf("second RlxWRN = %v, want ⊥ (gave up)", out[1])
	}
	if got := one.Invocations(2); got != 1 {
		t.Errorf("index 2 reached 1sWRN %d times, want 1", got)
	}
}

// TestRelaxedExhaustive (Claims 19–20 over ALL executions): three
// processes race on the same index; in every interleaving the one-shot
// object is reached at most once and nobody hangs.
func TestRelaxedExhaustive(t *testing.T) {
	var oneRef *OneShot
	count, err := modelcheck.VerifyAll(func() sim.Config {
		objects := map[string]sim.Object{}
		var rlx Relaxed
		rlx, oneRef = NewRelaxed(objects, "W", 3)
		progs := make([]sim.Program, 3)
		for p := 0; p < 3; p++ {
			p := p
			progs[p] = func(ctx *sim.Ctx) sim.Value {
				return rlx.RlxWRN(ctx, 0, fmt.Sprintf("p%d", p))
			}
		}
		return sim.Config{Objects: objects, Programs: progs}
	}, 1<<20, func(res *sim.Result) error {
		if !res.AllDone() {
			return fmt.Errorf("a process hung: %v", res.Status)
		}
		if oneRef.Invocations(0) > 1 {
			return fmt.Errorf("one-shot index reached %d times", oneRef.Invocations(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count < 100 {
		t.Fatalf("only %d executions", count)
	}
	t.Logf("verified %d executions", count)
}

// TestRelaxedExhaustiveMixedIndices: two processes on index 0, one on
// index 1 — every interleaving keeps use legal and the solo index always
// reaches the object (Claim 21).
func TestRelaxedExhaustiveMixedIndices(t *testing.T) {
	var oneRef *OneShot
	_, err := modelcheck.VerifyAll(func() sim.Config {
		objects := map[string]sim.Object{}
		var rlx Relaxed
		rlx, oneRef = NewRelaxed(objects, "W", 3)
		mk := func(idx int, v string) sim.Program {
			return func(ctx *sim.Ctx) sim.Value { return rlx.RlxWRN(ctx, idx, v) }
		}
		return sim.Config{
			Objects:  objects,
			Programs: []sim.Program{mk(0, "a"), mk(0, "b"), mk(1, "solo")},
		}
	}, 1<<20, func(res *sim.Result) error {
		if !res.AllDone() {
			return fmt.Errorf("hang: %v", res.Status)
		}
		if oneRef.Invocations(0) > 1 {
			return fmt.Errorf("contended index reached %d times", oneRef.Invocations(0))
		}
		if oneRef.Invocations(1) != 1 {
			return fmt.Errorf("solo index reached %d times, want 1 (Claim 21)", oneRef.Invocations(1))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
