package wrn

import (
	"errors"
	"fmt"
	"testing"

	"detobj/internal/linearize"
	"detobj/internal/sim"
	"detobj/internal/tasks"
)

// runAlg5 runs one Algorithm 5 instance with k processes, process p using
// index perm[p] and value 100+perm[p], under the given scheduler, and
// returns the result and implementation handle.
func runAlg5(t *testing.T, k int, perm []int, sched sim.Scheduler, seed int64) (*sim.Result, Impl) {
	t.Helper()
	objects := map[string]sim.Object{}
	impl := NewImpl(objects, "LW", k)
	progs := make([]sim.Program, len(perm))
	for p, idx := range perm {
		idx := idx
		progs[p] = func(ctx *sim.Ctx) sim.Value {
			return impl.TracedWRN(ctx, idx, 100+idx)
		}
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sched,
		Seed:      seed,
		MaxSteps:  1 << 18,
	})
	if err != nil {
		t.Fatalf("k=%d: Run: %v", k, err)
	}
	return res, impl
}

// TestAlg5Linearizable (E5, Corollary 37): across many random schedules
// and nondeterministic election choices, every history of the implemented
// object linearizes against the 1sWRN_k sequential specification.
func TestAlg5Linearizable(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		perm := make([]int, k)
		for i := range perm {
			perm[i] = i
		}
		for seed := int64(0); seed < 60; seed++ {
			res, impl := runAlg5(t, k, perm, sim.NewRandom(seed), seed*13)
			if !res.AllDone() {
				t.Fatalf("k=%d seed=%d: not wait-free: %v", k, seed, res.Status)
			}
			ops := linearize.Ops(res.Trace, impl.Name())
			if len(ops) != k {
				t.Fatalf("k=%d seed=%d: %d completed ops", k, seed, len(ops))
			}
			if r := linearize.Check(Spec(k), ops); !r.OK {
				t.Fatalf("k=%d seed=%d: history not linearizable:\n%v\ntrace:\n%s",
					k, seed, ops, res.Trace.ByObject(impl.Name()))
			}
		}
	}
}

// TestAlg5AdversarialPriorities: solo-run-shaped adversaries preserve
// linearizability.
func TestAlg5AdversarialPriorities(t *testing.T) {
	const k = 3
	priorities := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}}
	for _, prio := range priorities {
		for seed := int64(0); seed < 10; seed++ {
			res, impl := runAlg5(t, k, []int{0, 1, 2}, sim.Priority(prio), seed)
			ops := linearize.Ops(res.Trace, impl.Name())
			if r := linearize.Check(Spec(k), ops); !r.OK {
				t.Fatalf("prio %v seed %d: not linearizable:\n%v", prio, seed, ops)
			}
		}
	}
}

// TestAlg5Claim23And24: in every complete run, some invocation returns ⊥
// (Claim 23) and some invocation returns its successor's value (Claim 24).
func TestAlg5Claim23And24(t *testing.T) {
	const k = 4
	for seed := int64(0); seed < 60; seed++ {
		res, _ := runAlg5(t, k, []int{0, 1, 2, 3}, sim.NewRandom(seed), seed)
		bottoms, successors := 0, 0
		for p := 0; p < k; p++ {
			out := res.Outputs[p]
			if IsBottom(out) {
				bottoms++
			} else if out == 100+(p+1)%k {
				successors++
			} else {
				t.Fatalf("seed %d: process %d returned %v, not ⊥ or successor's value (Claim 22)", seed, p, out)
			}
		}
		if bottoms == 0 {
			t.Errorf("seed %d: no invocation returned ⊥ (Claim 23)", seed)
		}
		if successors == 0 {
			t.Errorf("seed %d: no invocation returned its successor's value (Claim 24)", seed)
		}
	}
}

// TestAlg5SequentialChain: invocations running one after another behave
// exactly like the atomic object.
func TestAlg5SequentialChain(t *testing.T) {
	const k = 3
	objects := map[string]sim.Object{}
	impl := NewImpl(objects, "LW", k)
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			out := make([]sim.Value, 0, k)
			// Invoke indices 2, 1, 0 sequentially from a single process:
			// WRN(2, c) -> A[0] = ⊥; WRN(1, b) -> A[2] = c; WRN(0, a) -> A[1] = b.
			out = append(out, impl.WRN(ctx, 2, "c"))
			out = append(out, impl.WRN(ctx, 1, "b"))
			out = append(out, impl.WRN(ctx, 0, "a"))
			return out
		}},
		MaxSteps: 1 << 16,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Outputs[0].([]sim.Value)
	if !IsBottom(out[0]) {
		t.Errorf("WRN(2,c) = %v, want ⊥", out[0])
	}
	if out[1] != "c" {
		t.Errorf("WRN(1,b) = %v, want c", out[1])
	}
	if out[2] != "b" {
		t.Errorf("WRN(0,a) = %v, want b", out[2])
	}
}

// TestAlg5DrivesAlg2: composing Algorithm 2 on top of the implemented
// 1sWRN still solves (k−1)-set consensus — implementations are
// substitutable for atomic objects.
func TestAlg5DrivesAlg2(t *testing.T) {
	const k = 3
	task := tasks.SetConsensus{K: k - 1}
	for seed := int64(0); seed < 40; seed++ {
		objects := map[string]sim.Object{}
		impl := NewImpl(objects, "LW", k)
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, k)
		for i := 0; i < k; i++ {
			i := i
			v := fmt.Sprintf("v%d", i)
			inputs[i] = v
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				if t := impl.WRN(ctx, i, v); !IsBottom(t) {
					return t
				}
				return v
			}
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			Seed:      seed,
			MaxSteps:  1 << 18,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AllDone() {
			t.Fatalf("seed %d: %v", seed, res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAlg5Validation(t *testing.T) {
	cases := []struct {
		name string
		run  func()
	}{
		{"small k", func() { NewImpl(map[string]sim.Object{}, "X", 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.run()
		})
	}
}

func TestAlg5ArgumentValidation(t *testing.T) {
	for _, bad := range []struct {
		name string
		i    int
		v    sim.Value
	}{
		{"index", 9, "v"},
		{"bottom", 0, Bottom},
		{"nil", 0, nil},
	} {
		bad := bad
		t.Run(bad.name, func(t *testing.T) {
			objects := map[string]sim.Object{}
			impl := NewImpl(objects, "LW", 3)
			_, err := sim.Run(sim.Config{
				Objects: objects,
				Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
					return impl.WRN(ctx, bad.i, bad.v)
				}},
			})
			if !errors.Is(err, sim.ErrProgramPanic) {
				t.Errorf("%s: err = %v, want ErrProgramPanic", bad.name, err)
			}
		})
	}
}

// TestSpecMatchesObject: the checker's sequential spec agrees with the
// atomic object on random op sequences.
func TestSpecMatchesObject(t *testing.T) {
	const k = 4
	spec := Spec(k)
	obj := New(k)
	state := spec.Init()
	env := &sim.Env{}
	seq := []struct {
		i int
		v sim.Value
	}{{0, "a"}, {2, "b"}, {1, "c"}, {3, "d"}, {0, "e"}}
	for _, s := range seq {
		var specOut sim.Value
		state, specOut = spec.Apply(state, "WRN", []sim.Value{s.i, s.v})
		objOut := obj.Apply(env, sim.Invocation{Op: "WRN", Args: []sim.Value{s.i, s.v}}).Value
		if specOut != objOut {
			t.Fatalf("WRN(%d,%v): spec %v, object %v", s.i, s.v, specOut, objOut)
		}
	}
}

// TestAlg5FromRegistersLinearizable: the paper-exact hypothesis — Algorithm
// 5 over AADGMS snapshots built from single-writer registers, so the only
// non-register primitive is the strong-election object. Every history
// linearizes.
func TestAlg5FromRegistersLinearizable(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		spec := Spec(k)
		for seed := int64(0); seed < 30; seed++ {
			objects := map[string]sim.Object{}
			impl := NewImplFromRegisters(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					return impl.TracedWRN(ctx, i, 100+i)
				}
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewRandom(seed),
				Seed:      seed,
				MaxSteps:  1 << 20,
			})
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if !res.AllDone() {
				t.Fatalf("k=%d seed=%d: not wait-free: %v", k, seed, res.Status)
			}
			ops := linearize.Ops(res.Trace, impl.Name())
			if !linearize.Check(spec, ops).OK {
				t.Fatalf("k=%d seed=%d: register-only stack not linearizable:\n%v", k, seed, ops)
			}
		}
	}
}

// TestAlg5FromRegistersStepCount: the register-only stack costs more
// steps (each snapshot is a double collect) but stays bounded.
func TestAlg5FromRegistersStepCount(t *testing.T) {
	objects := map[string]sim.Object{}
	impl := NewImplFromRegisters(objects, "LW", 3)
	progs := make([]sim.Program, 3)
	for i := 0; i < 3; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value { return impl.WRN(ctx, i, 100+i) }
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllDone() {
		t.Fatalf("status: %v", res.Status)
	}
	if res.Steps < 30 {
		t.Errorf("suspiciously few steps (%d) for the register-only stack", res.Steps)
	}
}
