package wrn

import (
	"testing"

	"detobj/internal/sim"
)

// FuzzWRNAgainstReference replays arbitrary operation sequences against
// the WRN object and the direct Algorithm 1 reference.
func FuzzWRNAgainstReference(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2, 0, 1})
	f.Add(uint8(5), []byte{4, 3, 2, 1, 0, 4})
	f.Fuzz(func(t *testing.T, rawK uint8, script []byte) {
		k := int(rawK%7) + 2
		o := New(k)
		ref := make([]sim.Value, k)
		for i := range ref {
			ref[i] = Bottom
		}
		env := &sim.Env{}
		for step, b := range script {
			i := int(b) % k
			v := step
			got := o.Apply(env, sim.Invocation{Op: "WRN", Args: []sim.Value{i, v}}).Value
			ref[i] = v
			if want := ref[(i+1)%k]; got != want {
				t.Fatalf("k=%d step %d: WRN(%d,%d) = %v, want %v", k, step, i, v, got, want)
			}
		}
	})
}

// FuzzAlg2Schedules runs Algorithm 2 under arbitrary schedules and checks
// the (k−1)-agreement bound and the first-decider claim.
func FuzzAlg2Schedules(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2})
	f.Add(uint8(4), []byte{3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, rawK uint8, order []byte) {
		k := int(rawK%6) + 3
		objects := map[string]sim.Object{"W": NewOneShot(k)}
		w := Ref{Name: "W"}
		progs := make([]sim.Program, k)
		for i := 0; i < k; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				if t := w.WRN(ctx, i, 100+i); !IsBottom(t) {
					return t
				}
				return 100 + i
			}
		}
		sched := make([]int, len(order))
		for i, b := range order {
			sched[i] = int(b) % k
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: &sim.Fixed{Order: sched, Fallback: sim.NewRoundRobin()},
		})
		if err != nil {
			t.Fatal(err)
		}
		distinct := map[sim.Value]bool{}
		for _, out := range res.Outputs {
			distinct[out] = true
		}
		if len(distinct) > k-1 {
			t.Fatalf("k=%d: %d distinct decisions", k, len(distinct))
		}
	})
}
