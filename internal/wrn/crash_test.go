package wrn

import (
	"testing"

	"detobj/internal/linearize"
	"detobj/internal/sim"
)

// TestAlg5CrashTolerance: Algorithm 5 is wait-free — survivors of any
// crash pattern complete their invocations — and the resulting history,
// including the crashed processes' pending operations, linearizes against
// the 1sWRN_k specification.
func TestAlg5CrashTolerance(t *testing.T) {
	const k = 4
	spec := Spec(k)
	for mask := 1; mask < 1<<k-1; mask++ {
		var crashed []int
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				crashed = append(crashed, i)
			}
		}
		for seed := int64(0); seed < 12; seed++ {
			objects := map[string]sim.Object{}
			impl := NewImpl(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					return impl.TracedWRN(ctx, i, 100+i)
				}
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewCrashing(sim.NewRandom(seed), crashed...),
				Seed:      seed,
				MaxSteps:  1 << 18,
			})
			if err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
			for i := 0; i < k; i++ {
				if !inSet(crashed, i) && res.Status[i] != sim.StatusDone {
					t.Fatalf("crashed=%v seed=%d: live invocation %d stuck: %v",
						crashed, seed, i, res.Status[i])
				}
			}
			done, pending := linearize.OpsWithPending(res.Trace, impl.Name())
			all := append(done, pending...)
			if !linearize.Check(spec, all).OK {
				t.Fatalf("crashed=%v seed=%d: crash history not linearizable:\ncompleted %v\npending %v",
					crashed, seed, done, pending)
			}
		}
	}
}

func inSet(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestAlg2OnAlg5CrashTolerance: the full stack — Algorithm 2 running on
// the Algorithm 5 implementation — still leaves survivors deciding under
// crashes of the underlying helpers.
func TestAlg2OnAlg5CrashTolerance(t *testing.T) {
	const k = 3
	for _, crashed := range [][]int{{0}, {1}, {2}} {
		for seed := int64(0); seed < 10; seed++ {
			objects := map[string]sim.Object{}
			impl := NewImpl(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					if t := impl.WRN(ctx, i, 100+i); !IsBottom(t) {
						return t
					}
					return 100 + i
				}
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewCrashing(sim.NewRandom(seed), crashed...),
				Seed:      seed,
				MaxSteps:  1 << 18,
			})
			if err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
			distinct := map[sim.Value]bool{}
			for i := 0; i < k; i++ {
				if inSet(crashed, i) {
					continue
				}
				if res.Status[i] != sim.StatusDone {
					t.Fatalf("crashed=%v seed=%d: live process %d stuck", crashed, seed, i)
				}
				distinct[res.Outputs[i]] = true
			}
			if len(distinct) > k-1 {
				t.Fatalf("crashed=%v seed=%d: %d distinct decisions", crashed, seed, len(distinct))
			}
		}
	}
}
