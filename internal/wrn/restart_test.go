package wrn

import (
	"testing"

	"detobj/internal/chaos"
	"detobj/internal/sim"
)

// TestAlg5NotRestartSafe is the negative control for the recoverable
// object work: Algorithm 5 tolerates crash-stop failures (crash_test.go)
// but was never designed for amnesiac crash-restart. A restarted
// incarnation forgets its doorway passage and its announced snapshot
// view, re-enters from the top, and re-applies durable work — visible as
// a victim that writes its R/O announcements more than once, or as an
// execution that no longer terminates. This test pins that weakness
// down: across a sweep of crash points at least one must break, so the
// restart adversary provably distinguishes Algorithm 5 from the
// recoverable WRN in internal/recoverable. If every crash point ever
// comes back clean, either the adversary lost its teeth or Alg 5 grew
// restart safety — both worth a loud failure.
func TestAlg5NotRestartSafe(t *testing.T) {
	const k, crashPoints = 3, 9
	broken := 0
	for crashAt := 0; crashAt < crashPoints; crashAt++ {
		objects := map[string]sim.Object{}
		impl := NewImpl(objects, "LW", k)
		progs := make([]sim.Program, k)
		for i := 0; i < k; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				return impl.WRN(ctx, i, 100+i)
			}
		}
		r := chaos.NewReport(int64(crashAt))
		res, err := sim.Run(sim.Config{
			Objects:      objects,
			Programs:     progs,
			//detlint:allow restartcoverage deliberate negative control: restarting plain Algorithm 5 proves it loses its power under amnesia, the contrast E19 depends on
			Scheduler:    chaos.NewCrashRestart(sim.NewRoundRobin(), r, 0, crashAt, 0),
			MaxSteps:     1 << 16,
			VerifyReplay: true,
		})
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		updates := 0
		for _, e := range res.Trace.Events {
			if e.Kind == sim.EventStep && e.Proc == 0 && e.Op == "update" {
				updates++
			}
		}
		hung := false
		for _, st := range res.Status {
			if st == sim.StatusHung {
				hung = true
			}
		}
		// One WRN pass updates R once and O once; a third update means the
		// restarted incarnation re-applied durable work.
		if updates > 2 || hung {
			broken++
		}
	}
	if broken == 0 {
		t.Fatalf("Algorithm 5 survived all %d amnesiac crash points; the restart adversary should break it", crashPoints)
	}
	t.Logf("Algorithm 5 broken at %d/%d amnesiac crash points (expected: not restart-safe)", broken, crashPoints)
}
