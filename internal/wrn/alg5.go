package wrn

import (
	"fmt"

	"detobj/internal/election"
	"detobj/internal/linearize"
	"detobj/internal/registers"
	"detobj/internal/sim"
	"detobj/internal/snapshot"
)

// Impl is Algorithm 5: a linearizable implementation of a 1sWRN_k object
// from a (k, k−1)-strong set election object, a doorway register, and two
// snapshot arrays. The doorway funnels early invocations through the
// strong election — whose winners return ⊥ — and the double-snapshot
// handshake (announce value in R, announce observed view in O) detects the
// overlap patterns that would otherwise break linearizability (paper §5,
// Corollary 37).
type Impl struct {
	k       int
	name    string
	sse     election.StrongRef
	doorway registers.DoorwayRef
	r       snapshot.Snapshotter
	o       snapshot.Snapshotter
}

// NewImpl registers the shared state of one Algorithm 5 instance under the
// name prefix and returns the implementation handle, using the primitive
// snapshot object for R and O.
func NewImpl(objects map[string]sim.Object, name string, k int) Impl {
	return NewImplOver(objects, name, k, func(snapName string, n int, initial sim.Value) snapshot.Snapshotter {
		return snapshot.NewObjectHandle(objects, snapName, n, initial)
	})
}

// NewImplFromRegisters builds Algorithm 5 entirely from register power:
// the R and O arrays are AADGMS snapshot implementations over single-
// writer registers, so the only non-register primitive in the whole
// construction is the strong-election object — exactly the paper's
// hypothesis "from (k,k−1)-strong set election and registers".
func NewImplFromRegisters(objects map[string]sim.Object, name string, k int) Impl {
	return NewImplOver(objects, name, k, func(snapName string, n int, initial sim.Value) snapshot.Snapshotter {
		return snapshot.NewImpl(objects, snapName, n, initial)
	})
}

// NewImplOver builds Algorithm 5 with a caller-supplied snapshot factory.
//
//detlint:allow facadeparity test-wiring hook: the snapshot-factory parameter exists for substitution tests; NewImpl and NewImplFromRegisters are the facade entry points
func NewImplOver(objects map[string]sim.Object, name string, k int, mkSnap func(snapName string, n int, initial sim.Value) snapshot.Snapshotter) Impl {
	if k < 2 {
		panic(fmt.Sprintf("wrn: Algorithm 5 needs k >= 2, got %d", k))
	}
	objects[name+".sse"] = election.NewStrongObject(k)
	objects[name+".door"] = registers.NewDoorway()
	return Impl{
		k:       k,
		name:    name,
		sse:     election.StrongRef{Name: name + ".sse"},
		doorway: registers.DoorwayRef{Name: name + ".door"},
		r:       mkSnap(name+".R", k, Bottom),
		o:       mkSnap(name+".O", k, nil),
	}
}

// K returns the arity of the implemented object.
func (m Impl) K() int { return m.k }

// WRN performs the implemented 1sWRN(i, v) operation. Each index may be
// used at most once per instance; v must not be ⊥ or nil.
func (m Impl) WRN(ctx *sim.Ctx, i int, v sim.Value) sim.Value {
	if i < 0 || i >= m.k {
		panic(fmt.Sprintf("wrn: index %d outside [0,%d)", i, m.k))
	}
	if v == nil || IsBottom(v) {
		panic("wrn: Algorithm 5 invoked with ⊥ or nil value")
	}
	m.r.Update(ctx, i, v) // announce the value at index i

	if m.doorway.IsOpen(ctx) {
		m.doorway.Close(ctx)
		if m.sse.Invoke(ctx, i) == i {
			return Bottom // strong-election winners return ⊥
		}
	}

	sr := m.r.Scan(ctx)    // first snapshot: the announced values
	m.o.Update(ctx, i, sr) // publish the observed view
	so := m.o.Scan(ctx)    // second snapshot: everyone's published views

	succ := (i + 1) % m.k
	for j := 0; j < m.k; j++ {
		view, ok := so[j].([]sim.Value)
		if !ok {
			continue // w_j has not published a view
		}
		if view[i] == v && IsBottom(view[succ]) {
			// w_j saw our value but not our successor's: we started
			// before our successor finished, so returning its value
			// could create a linearization cycle. Return ⊥.
			return Bottom
		}
	}
	return sr[succ]
}

// TracedWRN performs WRN bracketed with BeginOp/EndOp marks on the logical
// object name, so the run's trace can be checked for linearizability.
func (m Impl) TracedWRN(ctx *sim.Ctx, i int, v sim.Value) sim.Value {
	ctx.BeginOp(m.name, "WRN", i, v)
	out := m.WRN(ctx, i, v)
	ctx.EndOp(m.name, "WRN", out)
	return out
}

// Name returns the logical object name used by TracedWRN.
func (m Impl) Name() string { return m.name }

// Spec returns the sequential specification of a 1sWRN_k object for the
// linearizability checker. The state is the cell array; Apply performs
// Algorithm 1. Histories fed to the checker must use each index at most
// once (the one-shot restriction), which the caller guarantees.
func Spec(k int) linearize.Spec {
	return linearize.Spec{
		Init: func() any {
			cells := make([]sim.Value, k)
			for i := range cells {
				cells[i] = Bottom
			}
			return cells
		},
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			if name != "WRN" {
				panic("wrn: spec applied to op " + name)
			}
			cells := state.([]sim.Value)
			next := make([]sim.Value, k)
			copy(next, cells)
			i := args[0].(int)
			next[i] = args[1]
			return next, next[(i+1)%k]
		},
	}
}
