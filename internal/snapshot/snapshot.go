// Package snapshot provides the atomic snapshot object used by Algorithm 5
// and the renaming substrate, in two forms: a primitive snapshot object
// (one atomic step per scan/update, used where the paper simply writes
// "Snapshot(R)") and the classic Afek–Attiya–Dolev–Gafni–Merritt–Shavit
// wait-free implementation from single-writer registers (double collect
// with borrowed embedded scans), which witnesses that snapshots add no
// synchronization power beyond registers.
package snapshot

import (
	"fmt"

	"detobj/internal/sim"
)

// Object is an atomic snapshot object over n slots.
type Object struct {
	cells []sim.Value
}

// NewObject returns an n-slot snapshot object with every slot holding
// initial.
func NewObject(n int, initial sim.Value) *Object {
	cells := make([]sim.Value, n)
	for i := range cells {
		cells[i] = initial
	}
	return &Object{cells: cells}
}

// Apply implements sim.Object with operations "update"(i, v) and "scan".
// Scan returns a fresh copy of the slot array.
func (o *Object) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "update":
		i, ok := inv.Arg(0).(int)
		if !ok || i < 0 || i >= len(o.cells) {
			panic(fmt.Sprintf("snapshot: slot %v outside [0,%d)", inv.Arg(0), len(o.cells)))
		}
		o.cells[i] = inv.Arg(1)
		return sim.Respond(nil)
	case "scan":
		out := make([]sim.Value, len(o.cells))
		copy(out, o.cells)
		return sim.Respond(out)
	default:
		panic(fmt.Sprintf("snapshot: unknown operation %q", inv.Op))
	}
}

// Ref is a typed handle to a snapshot Object registered under Name.
type Ref struct {
	Name string
}

// Update writes v into slot i (one atomic step).
func (r Ref) Update(ctx *sim.Ctx, i int, v sim.Value) {
	ctx.Invoke(r.Name, "update", i, v)
}

// Scan returns an atomic copy of all slots (one atomic step).
func (r Ref) Scan(ctx *sim.Ctx) []sim.Value {
	return ctx.Invoke(r.Name, "scan").([]sim.Value)
}

// cell is the content of one underlying register of the wait-free
// implementation: the application value, a per-slot sequence number, and
// the embedded scan taken during the update.
type cell struct {
	val  sim.Value
	seq  int
	view []sim.Value
}

// Impl is the AADGMS wait-free snapshot built from n registers. Each slot
// must be updated by at most one process at a time (single writer per
// slot), which holds in every use in this library: slot i is touched only
// by the unique process operating with index i.
type Impl struct {
	n       int
	name    string
	initial sim.Value
}

// NewImpl registers n slot registers under name[0..n-1], all initialized
// to initial, and returns the implementation handle.
func NewImpl(objects map[string]sim.Object, name string, n int, initial sim.Value) Impl {
	for i := 0; i < n; i++ {
		objects[sim.Indexed(name, i)] = newSlotRegister(cell{val: initial})
	}
	return Impl{n: n, name: name, initial: initial}
}

// slotRegister is a register holding a cell value.
type slotRegister struct {
	c cell
}

func newSlotRegister(c cell) *slotRegister { return &slotRegister{c: c} }

// Apply implements sim.Object with "read" -> cell and "write"(cell).
func (r *slotRegister) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "read":
		return sim.Respond(r.c)
	case "write":
		r.c = inv.Arg(0).(cell)
		return sim.Respond(nil)
	default:
		panic(fmt.Sprintf("snapshot: unknown slot operation %q", inv.Op))
	}
}

// N returns the number of slots.
func (s Impl) N() int { return s.n }

func (s Impl) readSlot(ctx *sim.Ctx, i int) cell {
	return ctx.Invoke(sim.Indexed(s.name, i), "read").(cell)
}

func (s Impl) collect(ctx *sim.Ctx) []cell {
	out := make([]cell, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.readSlot(ctx, i)
	}
	return out
}

func values(cs []cell) []sim.Value {
	out := make([]sim.Value, len(cs))
	for i, c := range cs {
		out[i] = c.val
	}
	return out
}

// Scan returns a linearizable snapshot of all slots. It repeatedly
// collects; two identical consecutive collects yield a direct scan, and a
// slot observed to change twice yields a borrowed scan (its embedded view
// was taken entirely within this Scan's interval). Wait-free: after at
// most n+1 re-collects some slot has moved twice.
func (s Impl) Scan(ctx *sim.Ctx) []sim.Value {
	view, _ := s.scan(ctx)
	return view
}

// scan implements Scan and additionally reports whether the view was
// borrowed from a concurrent updater (exposed for white-box tests).
func (s Impl) scan(ctx *sim.Ctx) ([]sim.Value, bool) {
	moved := make([]int, s.n)
	prev := s.collect(ctx)
	for {
		cur := s.collect(ctx)
		same := true
		for i := 0; i < s.n; i++ {
			if cur[i].seq != prev[i].seq {
				same = false
				moved[i]++
				if moved[i] >= 2 {
					borrowed := make([]sim.Value, s.n)
					copy(borrowed, cur[i].view)
					return borrowed, true
				}
			}
		}
		if same {
			return values(cur), false
		}
		prev = cur
	}
}

// Update writes v into slot i. It first takes an embedded Scan, then
// writes (v, seq+1, view) so that concurrent scanners may borrow the view.
func (s Impl) Update(ctx *sim.Ctx, i int, v sim.Value) {
	view := s.Scan(ctx)
	old := s.readSlot(ctx, i)
	next := cell{val: v, seq: old.seq + 1, view: view}
	ctx.Invoke(sim.Indexed(s.name, i), "write", next)
}

// Snapshotter abstracts over the primitive object and the register-based
// implementation so algorithms (e.g. Algorithm 5) can run on either.
type Snapshotter interface {
	// Update writes v into slot i.
	Update(ctx *sim.Ctx, i int, v sim.Value)
	// Scan returns a linearizable view of all slots.
	Scan(ctx *sim.Ctx) []sim.Value
	// N returns the number of slots.
	N() int
}

// N returns the number of slots of the primitive object handle.
func (r ObjectHandle) N() int { return r.Slots }

// ObjectHandle adapts Ref to the Snapshotter interface.
type ObjectHandle struct {
	Ref
	Slots int
}

// NewObjectHandle registers a primitive snapshot object and returns a
// Snapshotter for it.
func NewObjectHandle(objects map[string]sim.Object, name string, n int, initial sim.Value) ObjectHandle {
	objects[name] = NewObject(n, initial)
	return ObjectHandle{Ref: Ref{Name: name}, Slots: n}
}

var (
	_ Snapshotter = Impl{}
	_ Snapshotter = ObjectHandle{}
)
