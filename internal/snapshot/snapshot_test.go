package snapshot

import (
	"fmt"
	"testing"

	"detobj/internal/linearize"
	"detobj/internal/sim"
)

// spec is the sequential specification of an n-slot snapshot object.
func spec(n int, initial sim.Value) linearize.Spec {
	return linearize.Spec{
		Init: func() any {
			s := make([]sim.Value, n)
			for i := range s {
				s[i] = initial
			}
			return s
		},
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			cells := state.([]sim.Value)
			switch name {
			case "update":
				next := make([]sim.Value, n)
				copy(next, cells)
				next[args[0].(int)] = args[1]
				return next, nil
			case "scan":
				out := make([]sim.Value, n)
				copy(out, cells)
				return cells, out
			default:
				panic("unknown op " + name)
			}
		},
		Equal: func(observed, specified sim.Value) bool {
			if observed == nil && specified == nil {
				return true
			}
			a, aok := observed.([]sim.Value)
			b, bok := specified.([]sim.Value)
			if !aok || !bok || len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		},
	}
}

func TestObjectSequential(t *testing.T) {
	o := NewObject(3, 0)
	env := &sim.Env{}
	o.Apply(env, sim.Invocation{Op: "update", Args: []sim.Value{1, "x"}})
	got := o.Apply(env, sim.Invocation{Op: "scan"}).Value.([]sim.Value)
	if got[0] != 0 || got[1] != "x" || got[2] != 0 {
		t.Errorf("scan = %v", got)
	}
	// The returned slice is a copy: mutating it must not affect the object.
	got[0] = "corrupt"
	again := o.Apply(env, sim.Invocation{Op: "scan"}).Value.([]sim.Value)
	if again[0] != 0 {
		t.Error("scan returned an aliased slice")
	}
}

func TestObjectValidation(t *testing.T) {
	for _, inv := range []sim.Invocation{
		{Op: "update", Args: []sim.Value{9, "v"}},
		{Op: "update", Args: []sim.Value{"x", "v"}},
		{Op: "flush"},
	} {
		inv := inv
		t.Run(inv.Op, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%v did not panic", inv)
				}
			}()
			NewObject(2, nil).Apply(&sim.Env{}, inv)
		})
	}
}

func TestObjectHandleThroughRun(t *testing.T) {
	objects := map[string]sim.Object{}
	snap := NewObjectHandle(objects, "S", 2, "init")
	if snap.N() != 2 {
		t.Fatalf("N = %d", snap.N())
	}
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			snap.Update(ctx, 0, "a")
			return snap.Scan(ctx)
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := res.Outputs[0].([]sim.Value)
	if got[0] != "a" || got[1] != "init" {
		t.Errorf("scan = %v", got)
	}
}

// runImplWorkload runs p processes over an n-slot Impl; process i performs
// `updates` updates on slot i interleaved with scans, all bracketed as
// logical ops on "SNAP". It returns the trace.
func runImplWorkload(t *testing.T, n, updates int, seed int64) sim.Trace {
	t.Helper()
	objects := map[string]sim.Object{}
	s := NewImpl(objects, "R", n, "⊥")
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			for u := 0; u < updates; u++ {
				v := fmt.Sprintf("p%d.%d", i, u)
				ctx.BeginOp("SNAP", "update", i, v)
				s.Update(ctx, i, v)
				ctx.EndOp("SNAP", "update", nil)

				ctx.BeginOp("SNAP", "scan")
				view := s.Scan(ctx)
				ctx.EndOp("SNAP", "scan", view)
			}
			return nil
		}
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllDone() {
		t.Fatalf("status = %v", res.Status)
	}
	return res.Trace
}

// TestImplLinearizable (E12): the AADGMS implementation is linearizable as
// a snapshot object across many random interleavings.
func TestImplLinearizable(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tr := runImplWorkload(t, 3, 2, seed)
		ops := linearize.Ops(tr, "SNAP")
		if res := linearize.Check(spec(3, "⊥"), ops); !res.OK {
			t.Fatalf("seed %d: history not linearizable:\n%v", seed, ops)
		}
	}
}

func TestImplSoloScanDirect(t *testing.T) {
	objects := map[string]sim.Object{}
	s := NewImpl(objects, "R", 2, nil)
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			s.Update(ctx, 0, "a")
			view, borrowed := s.scan(ctx)
			return []sim.Value{view[0], view[1], borrowed}
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Outputs[0].([]sim.Value)
	if out[0] != "a" || out[1] != nil {
		t.Errorf("solo scan = %v", out)
	}
	if out[2] != false {
		t.Error("solo scan borrowed a view")
	}
}

// TestImplBorrowedScan drives a scanner against a writer that updates its
// slot twice mid-scan, forcing the borrowed-view path, and verifies the
// borrowed view is still a legal snapshot.
func TestImplBorrowedScan(t *testing.T) {
	objects := map[string]sim.Object{}
	s := NewImpl(objects, "R", 2, "⊥")
	borrowedSeen := false
	scanner := func(ctx *sim.Ctx) sim.Value {
		view, borrowed := s.scan(ctx)
		if borrowed {
			borrowedSeen = true
		}
		return view
	}
	writer := func(ctx *sim.Ctx) sim.Value {
		for u := 0; u < 4; u++ {
			s.Update(ctx, 1, fmt.Sprintf("w%d", u))
		}
		return nil
	}
	// Alternate scanner and writer steps so the scanner observes slot 1
	// changing at least twice.
	found := false
	for seed := int64(0); seed < 60 && !found; seed++ {
		borrowedSeen = false
		objects = map[string]sim.Object{}
		s = NewImpl(objects, "R", 2, "⊥")
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  []sim.Program{scanner, writer},
			Scheduler: sim.NewRandom(seed),
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if borrowedSeen {
			found = true
			view := res.Outputs[0].([]sim.Value)
			if view[0] != "⊥" {
				t.Errorf("borrowed view slot 0 = %v, want ⊥", view[0])
			}
			got, ok := view[1].(string)
			if !ok || got[0] != 'w' {
				t.Errorf("borrowed view slot 1 = %v, want some writer value", view[1])
			}
		}
	}
	if !found {
		t.Error("no schedule exercised the borrowed-scan path")
	}
}

// TestImplWaitFreeStepBound: a scan completes within O(n^2) steps even
// under maximal interference from the scheduler, as guaranteed by the
// moved-twice argument.
func TestImplWaitFreeStepBound(t *testing.T) {
	const n = 4
	objects := map[string]sim.Object{}
	s := NewImpl(objects, "R", n, nil)
	progs := make([]sim.Program, n)
	progs[0] = func(ctx *sim.Ctx) sim.Value { return s.Scan(ctx) }
	for i := 1; i < n; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			for u := 0; u < 50; u++ {
				s.Update(ctx, i, u)
			}
			return nil
		}
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sim.NewRandom(3),
		MaxSteps:  1 << 16,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Status[0] != sim.StatusDone {
		t.Errorf("scanner did not finish under interference: %v", res.Status[0])
	}
}

func TestSlotRegisterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown slot op did not panic")
		}
	}()
	newSlotRegister(cell{}).Apply(&sim.Env{}, sim.Invocation{Op: "cas"})
}
