package core

import "fmt"

// WRNEquivalent returns the set-consensus object equivalent to 1sWRN_k
// (Theorem 2): (k, k−1)-set consensus.
func WRNEquivalent(k int) SetCons {
	if k < 2 {
		panic(fmt.Sprintf("core: WRNEquivalent(%d), need k >= 2", k))
	}
	return SetCons{N: k, K: k - 1}
}

// WRNConsensusNumber returns the consensus number of WRN_k: 2 for k = 2
// (it is a SWAP object) and 1 for k ≥ 3 (Theorem 1 / Lemma 38).
func WRNConsensusNumber(k int) int {
	if k < 2 {
		panic(fmt.Sprintf("core: WRNConsensusNumber(%d), need k >= 2", k))
	}
	if k == 2 {
		return 2
	}
	return 1
}

// WRNImplements reports whether 1sWRN_to can be implemented from 1sWRN_from
// objects and registers (Corollary 42): possible iff from ≤ to.
func WRNImplements(from, to int) bool {
	a, b := WRNEquivalent(from), WRNEquivalent(to)
	return Implements(a.N, a.K, b.N, b.K)
}

// WRNHierarchyLevels returns the pairwise ordering of 1sWRN objects for
// k = 3..maxK as a matrix: entry [i][j] compares 1sWRN_{3+i} with
// 1sWRN_{3+j}. Every off-diagonal pair must be strictly ordered, which is
// the infinite hierarchy between registers and 2-consensus.
func WRNHierarchyLevels(maxK int) [][]Ordering {
	size := maxK - 2
	out := make([][]Ordering, size)
	for i := range out {
		out[i] = make([]Ordering, size)
		for j := range out[i] {
			out[i][j] = Compare(WRNEquivalent(3+i), WRNEquivalent(3+j))
		}
	}
	return out
}

// ConjPower returns the best agreement bound K achievable by n processes
// using consN-consensus objects, (m,j)-set consensus objects, and
// registers together: the optimum over partitions of the processes into
// groups, where a group of size s costs
//
//	min( s, ⌈s/consN⌉, j if s ≤ m ).
//
// The three group strategies are: decide your own value (registers),
// split into consensus cohorts of consN, or run the set-consensus object.
// Computed by dynamic programming over n.
//
// The upper-bound direction is constructive (ConjPrograms realizes the
// value). The lower-bound direction — no protocol beats the partition
// optimum — is the multi-object-type extension of the Chaudhuri–Reiners /
// Borowsky–Gafni characterization (an n-consensus object is an (n,1)-set
// consensus object, so the collection is a pair of set-consensus types);
// this library takes that extension as given, exactly as Theorem 41 takes
// the single-type case (see DESIGN.md, Substitutions).
func ConjPower(n, consN, m, j int) int {
	if n <= 0 || consN <= 0 || m <= 0 || j <= 0 {
		panic(fmt.Sprintf("core: ConjPower(%d,%d,%d,%d) with non-positive argument", n, consN, m, j))
	}
	cost := func(s int) int {
		c := s
		if v := (s + consN - 1) / consN; v < c {
			c = v
		}
		if s <= m && j < c {
			c = j
		}
		return c
	}
	best := make([]int, n+1)
	for t := 1; t <= n; t++ {
		best[t] = cost(t)
		for s := 1; s < t; s++ {
			if v := cost(s) + best[t-s]; v < best[t] {
				best[t] = v
			}
		}
	}
	return best[n]
}

// Conj identifies a conjunction object: the deterministic combination of
// an n-consensus component (a bounded first-value-wins cell) and an
// (M,J)-set consensus component.
type Conj struct {
	ConsN int
	Set   SetCons
}

// String implements fmt.Stringer.
func (c Conj) String() string {
	return fmt.Sprintf("%d-consensus ∧ %v", c.ConsN, c.Set)
}

// Power returns the best agreement bound for n processes using the object
// and registers.
func (c Conj) Power(n int) int { return ConjPower(n, c.ConsN, c.Set.N, c.Set.K) }

// ConsensusNumber returns the object's consensus number: the largest s
// with Power(s) = 1.
func (c Conj) ConsensusNumber() int {
	s := 1
	for c.Power(s+1) == 1 {
		s++
	}
	return s
}

// Family is the reconstructed PODC'16 object family: for each n ≥ 2,
// O(n,k) = n-consensus ∧ (n·2^(k+1), 2)-set consensus, k = 1, 2, 3, ...
// Every member has consensus number n; members with larger k are strictly
// stronger. The original paper's exact object encoding (and its
// nk+n+k-process separation bound) is not reproducible without its text;
// this family realizes the same theorem — an infinite strictly increasing
// hierarchy at every consensus level n ≥ 2 — with parameters whose
// separations the calculus verifies explicitly (see Separation).
type Family struct {
	N int
}

// At returns the k-th member O(n,k).
func (f Family) At(k int) Conj {
	if f.N < 2 || k < 1 {
		panic(fmt.Sprintf("core: Family{%d}.At(%d), need n >= 2 and k >= 1", f.N, k))
	}
	return Conj{ConsN: f.N, Set: SetCons{N: f.N << (k + 1), K: 2}}
}

// SeparationWitness describes why O(n,k+1) is strictly stronger than
// O(n,k): a system size and a task (set consensus with bound TaskK among
// Procs processes) that the stronger object solves and the weaker cannot.
type SeparationWitness struct {
	// Procs is the witnessing system size.
	Procs int
	// TaskK is the agreement bound achieved by O(n,k+1).
	TaskK int
	// WeakerBest is the best bound O(n,k) can achieve — strictly larger.
	WeakerBest int
}

// Separation computes the witness separating O(n,k) from O(n,k+1): in a
// system of Procs = n·2^(k+2) processes, O(n,k+1) solves TaskK-set
// consensus with TaskK = 2 (one use of its set-consensus component), while
// O(n,k) cannot do better than WeakerBest > 2.
func (f Family) Separation(k int) SeparationWitness {
	stronger := f.At(k + 1)
	weaker := f.At(k)
	procs := stronger.Set.N
	return SeparationWitness{
		Procs:      procs,
		TaskK:      stronger.Power(procs),
		WeakerBest: weaker.Power(procs),
	}
}

// Separated reports whether the witness indeed separates: the stronger
// object achieves a strictly smaller agreement bound.
func (w SeparationWitness) Separated() bool { return w.TaskK < w.WeakerBest }
