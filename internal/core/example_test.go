package core_test

import (
	"fmt"

	"detobj/internal/core"
)

// ExampleImplements evaluates Theorem 41 on the paper's §7.1 example:
// (3,2)-set consensus (the power of 1sWRN_3) yields (12,8) but not (12,7).
func ExampleImplements() {
	fmt.Println(core.Implements(3, 2, 12, 8))
	fmt.Println(core.Implements(3, 2, 12, 7))
	// Output:
	// true
	// false
}

// ExampleCompare shows the strict 1sWRN hierarchy of Corollary 42.
func ExampleCompare() {
	a := core.WRNEquivalent(3) // (3,2)-set consensus
	b := core.WRNEquivalent(6) // (6,5)-set consensus
	fmt.Println(core.Compare(a, b))
	fmt.Println(core.Compare(b, a))
	fmt.Println(core.Compare(a, a))
	// Output:
	// stronger
	// weaker
	// equivalent
}

// ExampleFamily_Separation exhibits the PODC'16 hierarchy at consensus
// level 4: O(4,2) strictly dominates O(4,1).
func ExampleFamily_Separation() {
	f := core.Family{N: 4}
	w := f.Separation(1)
	fmt.Printf("procs=%d stronger=%d weaker=%d separated=%v\n",
		w.Procs, w.TaskK, w.WeakerBest, w.Separated())
	// Output: procs=32 stronger=2 weaker=4 separated=true
}

// ExampleMinAgreement shows the optimal-grouping calculus.
func ExampleMinAgreement() {
	// 7 processes from (3,2)-set consensus objects: two full groups of 3
	// contribute 2 values each, the leftover process decides alone.
	fmt.Println(core.MinAgreement(7, 3, 2))
	// Output: 5
}
