package core

import (
	"testing"
	"testing/quick"

	"detobj/internal/sim"
	"detobj/internal/tasks"
)

// runWitness executes the given program builder with n distinct proposals
// and returns the outcome.
func runWitness(t *testing.T, n int, seed int64, build func(objects map[string]sim.Object, vs []sim.Value) []sim.Program) tasks.Outcome {
	t.Helper()
	objects := map[string]sim.Object{}
	vs := make([]sim.Value, n)
	inputs := map[int]sim.Value{}
	for i := 0; i < n; i++ {
		vs[i] = i * 100
		inputs[i] = vs[i]
	}
	progs := build(objects, vs)
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sim.NewRandom(seed),
		Seed:      seed * 7,
	})
	if err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	if !res.AllDone() {
		t.Fatalf("n=%d seed=%d: %v", n, seed, res.Status)
	}
	return tasks.OutcomeFromResult(res, inputs)
}

// TestPartitionProgramsAchieveTheorem41 (E7 constructive side): the
// partition protocol never exceeds MinAgreement distinct decisions, over
// many configurations and schedules.
func TestPartitionProgramsAchieveTheorem41(t *testing.T) {
	cases := []struct{ n, m, j int }{
		{5, 3, 2}, {7, 3, 2}, {12, 3, 2}, {9, 4, 2}, {10, 4, 3}, {6, 5, 2}, {4, 8, 2},
	}
	for _, c := range cases {
		bound := MinAgreement(c.n, c.m, c.j)
		task := tasks.SetConsensus{K: bound}
		for seed := int64(0); seed < 25; seed++ {
			o := runWitness(t, c.n, seed, func(objects map[string]sim.Object, vs []sim.Value) []sim.Program {
				return PartitionPrograms(objects, "P", c.m, c.j, vs)
			})
			if err := task.Check(o); err != nil {
				t.Fatalf("n=%d m=%d j=%d seed=%d: %v", c.n, c.m, c.j, seed, err)
			}
		}
	}
}

// TestConjProgramsAchieveConjPower (E10 constructive side): the
// conjunction protocol never exceeds ConjPower distinct decisions.
func TestConjProgramsAchieveConjPower(t *testing.T) {
	cases := []struct{ n, consN, m, j int }{
		{6, 2, 8, 2}, {9, 3, 4, 2}, {16, 2, 16, 2}, {16, 2, 8, 2}, {7, 3, 100, 2}, {5, 5, 4, 2},
	}
	for _, c := range cases {
		bound := ConjPower(c.n, c.consN, c.m, c.j)
		task := tasks.SetConsensus{K: bound}
		for seed := int64(0); seed < 25; seed++ {
			o := runWitness(t, c.n, seed, func(objects map[string]sim.Object, vs []sim.Value) []sim.Program {
				return ConjPrograms(objects, "C", c.consN, c.m, c.j, vs)
			})
			if err := task.Check(o); err != nil {
				t.Fatalf("n=%d consN=%d m=%d j=%d seed=%d: %v", c.n, c.consN, c.m, c.j, seed, err)
			}
		}
	}
}

// TestFamilySeparationWitnessRuns (E10): run the actual witness system —
// the stronger object's protocol achieves K = 2 where the calculus says
// the weaker cannot.
func TestFamilySeparationWitnessRuns(t *testing.T) {
	f := Family{N: 2}
	w := f.Separation(1)
	if !w.Separated() {
		t.Fatalf("witness %+v does not separate", w)
	}
	stronger := f.At(2)
	task := tasks.SetConsensus{K: w.TaskK}
	for seed := int64(0); seed < 10; seed++ {
		o := runWitness(t, w.Procs, seed, func(objects map[string]sim.Object, vs []sim.Value) []sim.Program {
			return ConjPrograms(objects, "W", stronger.ConsN, stronger.Set.N, stronger.Set.K, vs)
		})
		if err := task.Check(o); err != nil {
			t.Fatalf("seed=%d: stronger object missed its own bound: %v", seed, err)
		}
	}
}

// TestQuickVerifyWitness: the DP partition always realizes the optimum.
func TestQuickVerifyWitness(t *testing.T) {
	f := func(rawN, rawC, rawM, rawJ uint8) bool {
		n := int(rawN%30) + 1
		consN := int(rawC%6) + 1
		m := int(rawM%10) + 2
		j := int(rawJ)%(m-1) + 1
		return VerifyWitness(n, consN, m, j) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
