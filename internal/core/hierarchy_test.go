package core

import (
	"testing"
	"testing/quick"
)

func TestWRNEquivalent(t *testing.T) {
	if got := WRNEquivalent(5); got != (SetCons{N: 5, K: 4}) {
		t.Errorf("WRNEquivalent(5) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("WRNEquivalent(1) did not panic")
		}
	}()
	WRNEquivalent(1)
}

func TestWRNConsensusNumber(t *testing.T) {
	if got := WRNConsensusNumber(2); got != 2 {
		t.Errorf("WRN_2 consensus number = %d, want 2 (SWAP)", got)
	}
	for k := 3; k <= 10; k++ {
		if got := WRNConsensusNumber(k); got != 1 {
			t.Errorf("WRN_%d consensus number = %d, want 1", k, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("WRNConsensusNumber(0) did not panic")
		}
	}()
	WRNConsensusNumber(0)
}

// TestCorollary42: for every pair k < k', 1sWRN_{k'} is implementable from
// 1sWRN_k and registers, and never the converse.
func TestCorollary42(t *testing.T) {
	for k := 3; k <= 12; k++ {
		for kp := k + 1; kp <= 12; kp++ {
			if !WRNImplements(k, kp) {
				t.Errorf("1sWRN_%d should implement 1sWRN_%d (Cor. 42.2)", k, kp)
			}
			if WRNImplements(kp, k) {
				t.Errorf("1sWRN_%d must not implement 1sWRN_%d (Cor. 42.1)", kp, k)
			}
		}
		if !WRNImplements(k, k) {
			t.Errorf("1sWRN_%d should implement itself", k)
		}
	}
}

// TestWRNHierarchyLevels (E8): the matrix is a strict total order —
// smaller k strictly stronger — giving the infinite hierarchy between
// registers and 2-consensus.
func TestWRNHierarchyLevels(t *testing.T) {
	levels := WRNHierarchyLevels(10)
	for i := range levels {
		for j := range levels[i] {
			want := Equivalent
			if i < j {
				want = Stronger
			} else if i > j {
				want = Weaker
			}
			if levels[i][j] != want {
				t.Errorf("levels[%d][%d] (1sWRN_%d vs 1sWRN_%d) = %v, want %v",
					i, j, 3+i, 3+j, levels[i][j], want)
			}
		}
	}
}

func TestConjPowerHandValues(t *testing.T) {
	cases := []struct {
		n, consN, m, j int
		want           int
	}{
		{4, 2, 100, 2, 2}, // set component: one group of 4 ≤ 100 → 2
		{4, 2, 3, 2, 2},   // cons component: ⌈4/2⌉ = 2 beats 2+1
		{16, 2, 16, 2, 2}, // single big set group
		{16, 2, 8, 2, 4},  // two set groups of 8
		{5, 5, 4, 2, 1},   // one consensus cell covers everyone
		{3, 1, 100, 2, 2}, // 1-consensus is useless; the set object gives 2
		{3, 1, 2, 1, 2},   // cells of 2: ⌈3/2⌉ = 2... with consN=1 cost cons = 3; set m=2,j=1: groups of 2 cost 1 + 1 solo = 2
	}
	for _, c := range cases {
		if got := ConjPower(c.n, c.consN, c.m, c.j); got != c.want {
			t.Errorf("ConjPower(%d,%d,%d,%d) = %d, want %d", c.n, c.consN, c.m, c.j, got, c.want)
		}
	}
}

func TestConjPowerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive arguments did not panic")
		}
	}()
	ConjPower(3, 0, 2, 1)
}

// TestQuickConjPowerBounds: the conjunction is never worse than either
// component alone and never better than 1.
func TestQuickConjPowerBounds(t *testing.T) {
	f := func(rawN, rawC, rawM, rawJ uint8) bool {
		n := int(rawN%24) + 1
		consN := int(rawC%6) + 1
		m := int(rawM%10) + 2
		j := int(rawJ)%(m-1) + 1
		p := ConjPower(n, consN, m, j)
		consOnly := (n + consN - 1) / consN
		setOnly := MinAgreement(n, m, j)
		if p > consOnly || p > setOnly || p < 1 {
			return false
		}
		// Monotone in n.
		return ConjPower(n+1, consN, m, j) >= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestFamilyConsensusNumber (E10): every member of the reconstructed
// O(n,k) family has consensus number exactly n.
func TestFamilyConsensusNumber(t *testing.T) {
	for n := 2; n <= 6; n++ {
		f := Family{N: n}
		for k := 1; k <= 4; k++ {
			if got := f.At(k).ConsensusNumber(); got != n {
				t.Errorf("O(%d,%d) consensus number = %d, want %d", n, k, got, n)
			}
		}
	}
}

// TestFamilySeparation (E10, the PODC'16 theorem): each O(n,k+1) is
// strictly stronger than O(n,k) — the witness task is solvable by the
// stronger member with a strictly smaller agreement bound.
func TestFamilySeparation(t *testing.T) {
	for n := 2; n <= 6; n++ {
		f := Family{N: n}
		for k := 1; k <= 4; k++ {
			w := f.Separation(k)
			if !w.Separated() {
				t.Errorf("O(%d,%d) vs O(%d,%d): witness %+v does not separate", n, k+1, n, k, w)
			}
			if w.TaskK != 2 {
				t.Errorf("O(%d,%d) should solve the witness with K=2, got %d", n, k+1, w.TaskK)
			}
		}
	}
}

// TestFamilyMonotone: within a family, larger k implements smaller k's
// set-consensus component (the hierarchy is nested, not just separated).
func TestFamilyMonotone(t *testing.T) {
	for n := 2; n <= 5; n++ {
		f := Family{N: n}
		for k := 1; k <= 4; k++ {
			a, b := f.At(k+1).Set, f.At(k).Set
			if !Implements(a.N, a.K, b.N, b.K) {
				t.Errorf("O(%d,%d)'s set component should implement O(%d,%d)'s", n, k+1, n, k)
			}
		}
	}
}

func TestFamilyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Family{1}.At(1) did not panic")
		}
	}()
	Family{N: 1}.At(1)
}

func TestConjString(t *testing.T) {
	c := Conj{ConsN: 3, Set: SetCons{N: 24, K: 2}}
	if got := c.String(); got != "3-consensus ∧ (24,2)-set consensus" {
		t.Errorf("String = %q", got)
	}
}
