package core

import (
	"testing"
	"testing/quick"
)

func TestMinAgreementHandValues(t *testing.T) {
	cases := []struct{ n, m, j, want int }{
		{12, 3, 2, 8},    // the paper's §7.1 example: WRN_3 gives (12,8)
		{5, 4, 3, 4},     // 1 full group (3) + remainder 1 (min(3,1)=1)
		{4, 5, 4, 4},     // single group: min(4,4)
		{6, 3, 2, 4},     // two full groups
		{7, 3, 2, 5},     // two full groups + remainder 1
		{3, 3, 2, 2},     // Algorithm 2's (3,2)
		{100, 10, 1, 10}, // consensus objects: ⌈100/10⌉
	}
	for _, c := range cases {
		if got := MinAgreement(c.n, c.m, c.j); got != c.want {
			t.Errorf("MinAgreement(%d,%d,%d) = %d, want %d", c.n, c.m, c.j, got, c.want)
		}
	}
}

func TestMinAgreementValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive arguments did not panic")
		}
	}()
	MinAgreement(0, 1, 1)
}

func TestImplementsReflexive(t *testing.T) {
	for m := 2; m <= 10; m++ {
		for j := 1; j < m; j++ {
			if !Implements(m, j, m, j) {
				t.Errorf("(%d,%d) does not implement itself", m, j)
			}
		}
	}
}

// TestQuickImplementsTransitive: the implementability relation composes.
func TestQuickImplementsTransitive(t *testing.T) {
	f := func(raw [6]uint8) bool {
		a := SetCons{N: int(raw[0]%12) + 2, K: 0}
		a.K = int(raw[1])%(a.N-1) + 1
		b := SetCons{N: int(raw[2]%12) + 2, K: 0}
		b.K = int(raw[3])%(b.N-1) + 1
		c := SetCons{N: int(raw[4]%12) + 2, K: 0}
		c.K = int(raw[5])%(c.N-1) + 1
		if Implements(a.N, a.K, b.N, b.K) && Implements(b.N, b.K, c.N, c.K) {
			return Implements(a.N, a.K, c.N, c.K)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinAgreementMonotone: more processes never need fewer values,
// and a stronger source (larger m or smaller j at fixed m) never does
// worse.
func TestQuickMinAgreementMonotone(t *testing.T) {
	f := func(rawN, rawM, rawJ uint8) bool {
		n := int(rawN%20) + 2
		m := int(rawM%10) + 2
		j := int(rawJ)%(m-1) + 1
		base := MinAgreement(n, m, j)
		if MinAgreement(n+1, m, j) < base {
			return false
		}
		if MinAgreement(n, m+1, j) > base {
			return false
		}
		if j > 1 && MinAgreement(n, m, j-1) > base {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareOrderings(t *testing.T) {
	cases := []struct {
		a, b SetCons
		want Ordering
	}{
		{SetCons{3, 2}, SetCons{3, 2}, Equivalent},
		{SetCons{3, 2}, SetCons{4, 3}, Stronger},     // 1sWRN_3 implements 1sWRN_4
		{SetCons{4, 3}, SetCons{3, 2}, Weaker},       // and not vice versa
		{SetCons{6, 2}, SetCons{4, 3}, Stronger},     // (6,2) packs (4,3): min(2,4)=2≤3
		{SetCons{5, 2}, SetCons{2, 1}, Incomparable}, // neither 2-consensus nor good ratio alone suffices
		{SetCons{4, 1}, SetCons{5, 2}, Stronger},     // 4-consensus packs (5,2): 1 group of 4 + 1 solo
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrderingString(t *testing.T) {
	if Equivalent.String() != "equivalent" || Stronger.String() != "stronger" ||
		Weaker.String() != "weaker" || Incomparable.String() != "incomparable" {
		t.Error("Ordering.String misbehaves")
	}
	if Ordering(9).String() != "Ordering(9)" {
		t.Error("Ordering.String default case")
	}
}

func TestSetConsBasics(t *testing.T) {
	s := SetCons{N: 5, K: 4}
	if s.String() != "(5,4)-set consensus" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Valid() || (SetCons{N: 3, K: 3}).Valid() || (SetCons{N: 3, K: 0}).Valid() {
		t.Error("Valid misbehaves")
	}
}

func TestConsensusNumberOfSetCons(t *testing.T) {
	if got := (SetCons{N: 7, K: 1}).ConsensusNumber(); got != 7 {
		t.Errorf("(7,1) consensus number = %d, want 7", got)
	}
	for k := 2; k <= 6; k++ {
		if got := (SetCons{N: 7, K: k}).ConsensusNumber(); got != 1 {
			t.Errorf("(7,%d) consensus number = %d, want 1", k, got)
		}
	}
}

func TestImplementabilityMatrix(t *testing.T) {
	m := ImplementabilityMatrix(SetCons{N: 3, K: 2}, 6)
	if len(m) != 5 {
		t.Fatalf("rows = %d, want 5", len(m))
	}
	// (3,2) implements (3,2): row n=3 (index 1), k=2 (index 1).
	if !m[1][1] {
		t.Error("(3,2) should implement (3,2)")
	}
	// (3,2) cannot implement (2,1) = 2-consensus.
	if m[0][0] {
		t.Error("(3,2) must not implement 2-consensus")
	}
	// (3,2) implements (6,4): 2 groups × 2.
	if !m[4][3] {
		t.Error("(3,2) should implement (6,4)")
	}
	if m[4][2] {
		t.Error("(3,2) must not implement (6,3)")
	}
}

// TestMinAgreementMatchesAlg6Guarantee: the calculus agrees with the
// concrete Algorithm 6 bound for WRN_k sources, since 1sWRN_k ≡ (k,k−1).
func TestMinAgreementMatchesAlg6Guarantee(t *testing.T) {
	for n := 3; n <= 24; n++ {
		for k := 3; k <= 6; k++ {
			if got, want := MinAgreement(n, k, k-1), alg6Guarantee(n, k); got != want {
				t.Errorf("MinAgreement(%d,%d,%d) = %d, Algorithm 6 achieves %d", n, k, k-1, got, want)
			}
		}
	}
}

// alg6Guarantee mirrors setconsensus.Guarantee without importing it (core
// must stay import-light); the cross-package equality is asserted in the
// repository-level tests.
func alg6Guarantee(n, k int) int {
	return (n/k)*(k-1) + n%k
}

// TestClassesAllSingletons (the "wealth" quantified): within n ≤ 16 every
// (n,k)-set consensus object is its own synchronization-power class — no
// two are mutually implementable.
func TestClassesAllSingletons(t *testing.T) {
	const maxN = 16
	classes := Classes(maxN)
	want := maxN * (maxN - 1) / 2
	if len(classes) != want {
		t.Fatalf("classes = %d, want %d (all singletons)", len(classes), want)
	}
	for _, cl := range classes {
		if len(cl) != 1 {
			t.Errorf("non-singleton class %v", cl)
		}
	}
}

// TestClassesWitnessed: for every pair of distinct objects (n ≤ 10), at
// least one implementation direction fails — distinctness is witnessed,
// not just asserted.
func TestClassesWitnessed(t *testing.T) {
	var all []SetCons
	for n := 2; n <= 10; n++ {
		for k := 1; k < n; k++ {
			all = append(all, SetCons{N: n, K: k})
		}
	}
	for i, a := range all {
		for _, b := range all[i+1:] {
			if Implements(a.N, a.K, b.N, b.K) && Implements(b.N, b.K, a.N, a.K) {
				t.Errorf("%v and %v mutually implementable", a, b)
			}
		}
	}
}

// TestCountByConsensusNumber: all classes except the (n,1) consensus
// objects sit at consensus number 1.
func TestCountByConsensusNumber(t *testing.T) {
	counts := CountByConsensusNumber(12)
	if counts[1] != 12*11/2-11 {
		t.Errorf("consensus-number-1 classes = %d, want %d", counts[1], 12*11/2-11)
	}
	for n := 2; n <= 12; n++ {
		if counts[n] != 1 {
			t.Errorf("consensus-number-%d classes = %d, want 1 (the (n,1) object)", n, counts[n])
		}
	}
}

// TestHasseDiagram: covering edges are strict, non-transitive, and include
// the known chains — the consensus chain (n,1) → (n−1,1) and the 1sWRN
// chain (k,k−1) → (k+1,k).
func TestHasseDiagram(t *testing.T) {
	edges := HasseDiagram(6)
	if len(edges) == 0 {
		t.Fatal("empty diagram")
	}
	has := func(a, b SetCons) bool {
		for _, e := range edges {
			if e.A == a && e.B == b {
				return true
			}
		}
		return false
	}
	for _, e := range edges {
		if Compare(e.A, e.B) != Stronger {
			t.Errorf("edge %v → %v not strict", e.A, e.B)
		}
	}
	if !has(SetCons{3, 2}, SetCons{4, 3}) {
		t.Error("missing 1sWRN chain edge (3,2) → (4,3)")
	}
	if !has(SetCons{4, 1}, SetCons{3, 1}) {
		t.Error("missing consensus chain edge (4,1) → (3,1)")
	}
	// Transitive closure must not appear as a cover: (3,2) is stronger
	// than (5,4) but (4,3) lies between.
	if has(SetCons{3, 2}, SetCons{5, 4}) {
		t.Error("non-covering edge (3,2) → (5,4) present")
	}
}
