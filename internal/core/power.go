// Package core is the paper's primary contribution as a computable theory:
// the synchronization-power calculus of set-consensus objects.
//
// It provides:
//
//   - the set-consensus implementability characterization (Theorem 41,
//     due to PODC'16 with Chaudhuri–Reiners): (n,k)-set consensus is
//     wait-free implementable from (m,j)-set consensus objects and
//     registers iff ⌊n/m⌋·j + min(j, n mod m) ≤ k;
//
//   - the induced partial order on set-consensus objects, with the
//     equivalence 1sWRN_k ≡ (k,k−1)-set consensus (Theorem 2) and the
//     infinite hierarchy between registers and 2-consensus (Corollary 42);
//
//   - the power calculus for conjunction objects (n-consensus combined
//     with set consensus) and the reconstructed O(n,k) family realizing
//     the PODC'16 theorem: for every n ≥ 2, an infinite sequence of
//     deterministic objects of consensus number n with strictly
//     increasing synchronization power. The PODC'16 full text was not
//     available to this reproduction, so the family's parameters are
//     reconstructed (see DESIGN.md, Substitutions); every separation the
//     family claims is verified computationally by the calculus rather
//     than assumed.
package core

import "fmt"

// MinAgreement returns the best achievable agreement bound K when n
// processes solve set consensus from (m,j)-set consensus objects and
// registers: partition the processes into groups of at most m, each full
// group contributing j values and a remainder of r contributing min(j, r).
// By the Chaudhuri–Reiners characterization this grouping is optimal, so
// the value is ⌊n/m⌋·j + min(j, n mod m).
func MinAgreement(n, m, j int) int {
	if n <= 0 || m <= 0 || j <= 0 {
		panic(fmt.Sprintf("core: MinAgreement(%d,%d,%d) with non-positive argument", n, m, j))
	}
	return (n/m)*j + min(j, n%m)
}

// Implements reports Theorem 41: whether (n,k)-set consensus has a
// wait-free implementation from (m,j)-set consensus objects and registers
// in a system of n or more processes.
func Implements(m, j, n, k int) bool {
	return MinAgreement(n, m, j) <= k
}

// SetCons identifies an (N,K)-set consensus object.
type SetCons struct {
	N, K int
}

// String implements fmt.Stringer.
func (s SetCons) String() string { return fmt.Sprintf("(%d,%d)-set consensus", s.N, s.K) }

// Valid reports whether the parameters satisfy 0 < K < N.
func (s SetCons) Valid() bool { return s.K > 0 && s.K < s.N }

// Ordering is the result of comparing two objects' synchronization power.
type Ordering int

const (
	// Equivalent: each implements the other.
	Equivalent Ordering = iota
	// Stronger: the first implements the second but not vice versa.
	Stronger
	// Weaker: the second implements the first but not vice versa.
	Weaker
	// Incomparable: neither implements the other.
	Incomparable
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Equivalent:
		return "equivalent"
	case Stronger:
		return "stronger"
	case Weaker:
		return "weaker"
	case Incomparable:
		return "incomparable"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Compare orders two set-consensus objects by implementability.
func Compare(a, b SetCons) Ordering {
	ab := Implements(a.N, a.K, b.N, b.K)
	ba := Implements(b.N, b.K, a.N, a.K)
	switch {
	case ab && ba:
		return Equivalent
	case ab:
		return Stronger
	case ba:
		return Weaker
	default:
		return Incomparable
	}
}

// ConsensusNumber returns the consensus number of an (m,j)-set consensus
// object: m when j = 1 (it is an m-bounded consensus object) and 1
// otherwise (with j ≥ 2 even two processes cannot be forced to agree).
func (s SetCons) ConsensusNumber() int {
	if s.K == 1 {
		return s.N
	}
	return 1
}

// ImplementabilityMatrix tabulates, for a fixed source object (m,j), which
// (n,k) tasks it can implement for n ≤ maxN. Row n lists achievability for
// k = 1..n−1. This regenerates experiment E7's table.
func ImplementabilityMatrix(src SetCons, maxN int) [][]bool {
	rows := make([][]bool, 0, maxN)
	for n := 2; n <= maxN; n++ {
		row := make([]bool, n-1)
		for k := 1; k < n; k++ {
			row[k-1] = Implements(src.N, src.K, n, k)
		}
		rows = append(rows, row)
	}
	return rows
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Classes partitions the set-consensus objects {(n,k) : 1 ≤ k < n ≤ maxN}
// into equivalence classes under mutual implementability (Theorem 41).
// The computation quantifies the paper's title: every object turns out to
// be its own class — within n ≤ maxN there are exactly
// maxN·(maxN−1)/2 pairwise inequivalent synchronization powers, all but
// maxN−1 of them at consensus number 1.
func Classes(maxN int) [][]SetCons {
	var classes [][]SetCons
	for n := 2; n <= maxN; n++ {
		for k := 1; k < n; k++ {
			o := SetCons{N: n, K: k}
			placed := false
			for ci, cl := range classes {
				if Compare(o, cl[0]) == Equivalent {
					classes[ci] = append(classes[ci], o)
					placed = true
					break
				}
			}
			if !placed {
				classes = append(classes, []SetCons{o})
			}
		}
	}
	return classes
}

// CountByConsensusNumber tallies the power classes of Classes(maxN) by
// the consensus number of their representatives. The count at consensus
// number 1 is the measured "wealth" of sub-consensus powers.
func CountByConsensusNumber(maxN int) map[int]int {
	out := make(map[int]int)
	for _, cl := range Classes(maxN) {
		out[cl[0].ConsensusNumber()]++
	}
	return out
}

// CoverEdge is one covering relation of the set-consensus partial order:
// A is strictly stronger than B with nothing strictly between them.
type CoverEdge struct {
	A, B SetCons
}

// HasseDiagram computes the covering relations of the implementability
// partial order over all objects with n ≤ maxN — the Hasse diagram of the
// sub-consensus landscape. Since every object is its own equivalence
// class (Classes), the diagram is over the objects themselves.
func HasseDiagram(maxN int) []CoverEdge {
	var all []SetCons
	for n := 2; n <= maxN; n++ {
		for k := 1; k < n; k++ {
			all = append(all, SetCons{N: n, K: k})
		}
	}
	stronger := func(a, b SetCons) bool {
		return Compare(a, b) == Stronger
	}
	var edges []CoverEdge
	for _, a := range all {
		for _, b := range all {
			if !stronger(a, b) {
				continue
			}
			covered := true
			for _, c := range all {
				if stronger(a, c) && stronger(c, b) {
					covered = false
					break
				}
			}
			if covered {
				edges = append(edges, CoverEdge{A: a, B: b})
			}
		}
	}
	return edges
}
