package core

import (
	"fmt"

	"detobj/internal/consensus"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
)

// PartitionPrograms builds the constructive side of Theorem 41: n
// processes solve MinAgreement(n,m,j)-set consensus by packing into
// ⌊n/m⌋ full groups of m (one (m,j)-set consensus object each, j values)
// plus a remainder group (min(j, r) values). It registers the group
// objects under the name prefix and returns one program per process;
// process i proposes vs[i].
func PartitionPrograms(objects map[string]sim.Object, name string, m, j int, vs []sim.Value) []sim.Program {
	n := len(vs)
	progs := make([]sim.Program, n)
	groups := (n + m - 1) / m
	for g := 0; g < groups; g++ {
		lo := g * m
		hi := lo + m
		if hi > n {
			hi = n
		}
		size := hi - lo
		if size <= j {
			// A group no larger than j gains nothing from the object:
			// everyone decides its own proposal (min(j, size) = size).
			for i := lo; i < hi; i++ {
				v := vs[i]
				progs[i] = func(*sim.Ctx) sim.Value { return v }
			}
			continue
		}
		// Instantiate exactly the granted primitive: an (m,j)-set
		// consensus object, proposed to by size ≤ m processes.
		groupName := sim.Indexed(name, g)
		objects[groupName] = setconsensus.NewObject(m, j)
		ref := setconsensus.Ref{Name: groupName}
		for i := lo; i < hi; i++ {
			v := vs[i]
			progs[i] = func(ctx *sim.Ctx) sim.Value { return ref.Propose(ctx, v) }
		}
	}
	return progs
}

// ConjPrograms builds the constructive side of the conjunction calculus:
// n processes achieve ConjPower(n, consN, m, j)-set consensus using
// consensus cells of budget consN, (m,j)-set consensus objects, and
// trivial (decide-own) groups, following the optimal dynamic-programming
// partition. It registers the shared objects under the name prefix and
// returns one program per process.
func ConjPrograms(objects map[string]sim.Object, name string, consN, m, j int, vs []sim.Value) []sim.Program {
	n := len(vs)
	progs := make([]sim.Program, n)
	next := 0
	instance := 0
	for _, size := range optimalPartition(n, consN, m, j) {
		lo, hi := next, next+size
		next = hi
		switch bestStrategy(size, consN, m, j) {
		case stratTrivial:
			for i := lo; i < hi; i++ {
				v := vs[i]
				progs[i] = func(*sim.Ctx) sim.Value { return v }
			}
		case stratCons:
			// Split the group into cohorts of consN, one consensus cell
			// each.
			for cohortLo := lo; cohortLo < hi; cohortLo += consN {
				cohortHi := cohortLo + consN
				if cohortHi > hi {
					cohortHi = hi
				}
				cellName := sim.Indexed(name+".cell", instance)
				instance++
				objects[cellName] = consensus.NewCell(consN)
				ref := consensus.CellRef{Name: cellName}
				for i := cohortLo; i < cohortHi; i++ {
					v := vs[i]
					progs[i] = func(ctx *sim.Ctx) sim.Value { return ref.Propose(ctx, v) }
				}
			}
		case stratSet:
			// stratSet is chosen only when j < size ≤ m, so the granted
			// (m,j) object is instantiated as-is.
			setName := sim.Indexed(name+".set", instance)
			instance++
			objects[setName] = setconsensus.NewObject(m, j)
			ref := setconsensus.Ref{Name: setName}
			for i := lo; i < hi; i++ {
				v := vs[i]
				progs[i] = func(ctx *sim.Ctx) sim.Value { return ref.Propose(ctx, v) }
			}
		}
	}
	return progs
}

type strategy int

const (
	stratTrivial strategy = iota
	stratCons
	stratSet
)

// groupCost mirrors ConjPower's cost function.
func groupCost(s, consN, m, j int) int {
	c := s
	if v := (s + consN - 1) / consN; v < c {
		c = v
	}
	if s <= m && j < c {
		c = j
	}
	return c
}

// bestStrategy returns the cheapest strategy for a group of size s.
func bestStrategy(s, consN, m, j int) strategy {
	cons := (s + consN - 1) / consN
	best, strat := s, stratTrivial
	if cons < best {
		best, strat = cons, stratCons
	}
	if s <= m && j < best {
		strat = stratSet
	}
	return strat
}

// optimalPartition returns group sizes realizing ConjPower's optimum.
func optimalPartition(n, consN, m, j int) []int {
	best := make([]int, n+1)
	choice := make([]int, n+1)
	for t := 1; t <= n; t++ {
		best[t] = groupCost(t, consN, m, j)
		choice[t] = t
		for s := 1; s < t; s++ {
			if v := groupCost(s, consN, m, j) + best[t-s]; v < best[t] {
				best[t] = v
				choice[t] = s
			}
		}
	}
	var sizes []int
	for t := n; t > 0; t -= choice[t] {
		sizes = append(sizes, choice[t])
	}
	return sizes
}

// VerifyWitness sanity-checks that the partition achieving ConjPower sums
// to n and costs exactly the optimum; it is exposed for tests and the
// hierarchy CLI.
func VerifyWitness(n, consN, m, j int) error {
	sizes := optimalPartition(n, consN, m, j)
	total, cost := 0, 0
	for _, s := range sizes {
		total += s
		cost += groupCost(s, consN, m, j)
	}
	if total != n {
		return fmt.Errorf("core: partition of %d sums to %d", n, total)
	}
	if want := ConjPower(n, consN, m, j); cost != want {
		return fmt.Errorf("core: partition cost %d, optimum %d", cost, want)
	}
	return nil
}
