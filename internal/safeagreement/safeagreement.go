// Package safeagreement implements the safe-agreement protocol of
// Borowsky and Gafni from atomic snapshots — the building block of the BG
// simulation, which the paper relies on for the equivalence of k-set
// election and k-strong set election [9] and for the set-consensus
// characterization (Theorem 41).
//
// Safe agreement is consensus with a weaker liveness guarantee: validity
// and agreement always hold, and the protocol is wait-free except inside a
// small "unsafe window" (between a proposer's two writes). A process that
// crashes inside its window can block resolution forever; a process that
// crashes anywhere else blocks nobody. The BG simulation turns this into
// t-resilience: t crashed simulators block at most t simulated processes.
//
// The protocol (one instance, up to n proposers with slots 0..n−1):
//
//	Propose(i, v):  A[i] ← (v, level 1)
//	                view ← snapshot(A)
//	                if some slot in view has level 2:  A[i] ← (v, level 0)
//	                else:                              A[i] ← (v, level 2)
//
//	Resolve():      view ← snapshot(A)
//	                if some slot has level 1: unresolved (retry later)
//	                else: the value of the smallest-index level-2 slot
//
// Once any Resolve succeeds, the level-2 set is final, so all successful
// Resolves return the same value.
package safeagreement

import (
	"fmt"

	"detobj/internal/sim"
	"detobj/internal/snapshot"
)

// Levels of a proposal slot.
const (
	levelBackedOff = 0
	levelUnsafe    = 1
	levelCommitted = 2
)

// slot is the content of one proposal cell.
type slot struct {
	Val   sim.Value
	Level int
}

// Instance is one safe-agreement instance for up to n proposers.
type Instance struct {
	n    int
	snap snapshot.Snapshotter
}

// New registers a fresh instance under name for n proposer slots.
func New(objects map[string]sim.Object, name string, n int) Instance {
	if n < 1 {
		panic(fmt.Sprintf("safeagreement: n = %d", n))
	}
	return Instance{n: n, snap: snapshot.NewObjectHandle(objects, name, n, nil)}
}

// N returns the number of proposer slots.
func (s Instance) N() int { return s.n }

// Propose submits v on slot i. Each slot proposes at most once. The
// caller is inside the unsafe window between the first and second write;
// crashing there may block Resolve forever.
func (s Instance) Propose(ctx *sim.Ctx, i int, v sim.Value) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("safeagreement: slot %d outside [0,%d)", i, s.n))
	}
	if v == nil {
		panic("safeagreement: propose of nil value")
	}
	s.snap.Update(ctx, i, slot{Val: v, Level: levelUnsafe})
	view := s.snap.Scan(ctx)
	level := levelCommitted
	for j, raw := range view {
		if j == i || raw == nil {
			continue
		}
		if raw.(slot).Level == levelCommitted {
			level = levelBackedOff
			break
		}
	}
	s.snap.Update(ctx, i, slot{Val: v, Level: level})
}

// Resolve attempts to read the agreed value. It returns (value, true) when
// the instance has resolved, and (nil, false) while some proposer is still
// inside its unsafe window. Callers retry; in the BG simulation they move
// to another simulated process instead of spinning.
func (s Instance) Resolve(ctx *sim.Ctx) (sim.Value, bool) {
	view := s.snap.Scan(ctx)
	decided := sim.Value(nil)
	found := false
	for _, raw := range view {
		if raw == nil {
			continue
		}
		sl := raw.(slot)
		switch sl.Level {
		case levelUnsafe:
			return nil, false
		case levelCommitted:
			if !found {
				decided = sl.Val
				found = true
			}
		}
	}
	if !found {
		return nil, false // nobody committed yet (or nobody proposed)
	}
	return decided, true
}

// ResolveBlocking retries Resolve until it succeeds. It is NOT wait-free:
// use only where the unsafe window is guaranteed to clear (e.g. tests with
// no crashes).
func (s Instance) ResolveBlocking(ctx *sim.Ctx) sim.Value {
	for {
		if v, ok := s.Resolve(ctx); ok {
			return v
		}
	}
}
