package safeagreement

import (
	"errors"
	"testing"
	"testing/quick"

	"detobj/internal/sim"
)

// runAgreement runs n proposers (values 100+i) and n resolvers; returns
// proposer count of distinct resolved values and the resolved values.
func runAgreement(t *testing.T, n int, seed int64, crashed ...int) *sim.Result {
	t.Helper()
	objects := map[string]sim.Object{}
	sa := New(objects, "SA", n)
	progs := make([]sim.Program, 0, 2*n)
	for i := 0; i < n; i++ {
		i := i
		progs = append(progs, func(ctx *sim.Ctx) sim.Value {
			sa.Propose(ctx, i, 100+i)
			return sa.ResolveBlocking(ctx)
		})
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sim.NewCrashing(sim.NewRandom(seed), crashed...),
		MaxSteps:  1 << 16,
	})
	if err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	return res
}

// TestAgreementAndValidity: with no crashes, everyone resolves to the same
// proposed value.
func TestAgreementAndValidity(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for seed := int64(0); seed < 50; seed++ {
			res := runAgreement(t, n, seed)
			if !res.AllDone() {
				t.Fatalf("n=%d seed=%d: not all resolved: %v", n, seed, res.Status)
			}
			first := res.Outputs[0]
			valid := false
			for i := 0; i < n; i++ {
				if res.Outputs[i] != first {
					t.Fatalf("n=%d seed=%d: disagreement %v", n, seed, res.Outputs)
				}
				if first == 100+i {
					valid = true
				}
			}
			if !valid {
				t.Fatalf("n=%d seed=%d: resolved %v, not a proposal", n, seed, first)
			}
		}
	}
}

// TestCrashOutsideWindowHarmless: a proposer that never starts does not
// block resolution by others.
func TestCrashOutsideWindowHarmless(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		res := runAgreement(t, 3, seed, 2) // process 2 crashed before any step
		for i := 0; i < 2; i++ {
			if res.Status[i] != sim.StatusDone {
				t.Fatalf("seed=%d: live process %d blocked: %v", seed, i, res.Status[i])
			}
		}
		if res.Outputs[0] != res.Outputs[1] {
			t.Fatalf("seed=%d: disagreement", seed)
		}
	}
}

// TestCrashInsideWindowBlocks: a proposer stopped between its two writes
// leaves the instance unresolved — the inherent unsafe window.
func TestCrashInsideWindowBlocks(t *testing.T) {
	objects := map[string]sim.Object{}
	sa := New(objects, "SA", 2)
	probe := func(ctx *sim.Ctx) sim.Value {
		sa.Propose(ctx, 0, "mine")
		// Try to resolve a bounded number of times; report the verdicts.
		for try := 0; try < 50; try++ {
			if v, ok := sa.Resolve(ctx); ok {
				return v
			}
		}
		return "unresolved"
	}
	window := func(ctx *sim.Ctx) sim.Value {
		sa.Propose(ctx, 1, "theirs")
		return nil
	}
	// Let process 1 take exactly its first write plus the scan's first
	// step, then crash; process 0 runs solo afterwards.
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{probe, window},
		Scheduler: &sim.Fixed{Order: []int{1}, Fallback: sim.NewCrashing(nil, 1)},
		MaxSteps:  1 << 16,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[0] != "unresolved" {
		t.Fatalf("probe returned %v; a crash inside the window must block", res.Outputs[0])
	}
}

// TestResolveBeforeAnyProposal: resolution is unavailable before any
// proposer commits.
func TestResolveBeforeAnyProposal(t *testing.T) {
	objects := map[string]sim.Object{}
	sa := New(objects, "SA", 2)
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			_, ok := sa.Resolve(ctx)
			return ok
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[0] != false {
		t.Fatal("resolved an empty instance")
	}
}

// TestFirstSoloProposerWinsItself: a proposer running alone commits and
// resolves its own value.
func TestFirstSoloProposerWinsItself(t *testing.T) {
	objects := map[string]sim.Object{}
	sa := New(objects, "SA", 3)
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			sa.Propose(ctx, 1, "solo")
			return sa.ResolveBlocking(ctx)
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[0] != "solo" {
		t.Fatalf("resolved %v", res.Outputs[0])
	}
}

// TestLateProposerAdoptsEarlierDecision: a proposer arriving after a
// resolution backs off and resolves the established value.
func TestLateProposerAdoptsEarlierDecision(t *testing.T) {
	objects := map[string]sim.Object{}
	sa := New(objects, "SA", 2)
	early := func(ctx *sim.Ctx) sim.Value {
		sa.Propose(ctx, 0, "early")
		return sa.ResolveBlocking(ctx)
	}
	late := func(ctx *sim.Ctx) sim.Value {
		sa.Propose(ctx, 1, "late")
		return sa.ResolveBlocking(ctx)
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{early, late},
		Scheduler: sim.Priority{0, 1}, // early runs fully first
		MaxSteps:  1 << 16,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[0] != "early" || res.Outputs[1] != "early" {
		t.Fatalf("outputs %v, want both early", res.Outputs)
	}
}

func TestValidation(t *testing.T) {
	objects := map[string]sim.Object{}
	sa := New(objects, "SA", 2)
	cases := []struct {
		name string
		prog sim.Program
	}{
		{"bad slot", func(ctx *sim.Ctx) sim.Value { sa.Propose(ctx, 5, "v"); return nil }},
		{"nil value", func(ctx *sim.Ctx) sim.Value { sa.Propose(ctx, 0, nil); return nil }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := sim.Run(sim.Config{Objects: objects, Programs: []sim.Program{c.prog}})
			if !errors.Is(err, sim.ErrProgramPanic) {
				t.Errorf("err = %v, want ErrProgramPanic", err)
			}
		})
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(_, _, 0) did not panic")
			}
		}()
		New(objects, "bad", 0)
	}()
	if sa.N() != 2 {
		t.Errorf("N = %d", sa.N())
	}
}

// TestQuickAgreement: random proposer counts, crash subsets (crashed
// before starting) and schedules preserve agreement and validity among
// resolvers.
func TestQuickAgreement(t *testing.T) {
	f := func(rawN uint8, rawCrash uint8, seed int64) bool {
		n := int(rawN%4) + 2
		crash := int(rawCrash) % n
		objects := map[string]sim.Object{}
		sa := New(objects, "SA", n)
		progs := make([]sim.Program, n)
		for i := 0; i < n; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				sa.Propose(ctx, i, 100+i)
				return sa.ResolveBlocking(ctx)
			}
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewCrashing(sim.NewRandom(seed), crash),
			MaxSteps:  1 << 16,
		})
		if err != nil {
			return false
		}
		var got sim.Value
		for i := 0; i < n; i++ {
			if i == crash || res.Status[i] != sim.StatusDone {
				continue
			}
			if got == nil {
				got = res.Outputs[i]
			} else if got != res.Outputs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
