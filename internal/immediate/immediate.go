// Package immediate implements the one-shot immediate snapshot of
// Borowsky and Gafni from atomic snapshots: the "floors" algorithm. Each
// participant descends floors n, n−1, ..., announcing its value and
// current floor, and returns the set of processes at or below its floor as
// soon as that set is at least as large as the floor number.
//
// The returned views satisfy self-inclusion, containment and immediacy
// (tasks.ImmediateSnapshot). Immediate snapshots are the iterated building
// block of the BG simulation and of the topological characterizations the
// paper's results connect to; plain snapshots satisfy containment but not
// immediacy.
package immediate

import (
	"fmt"

	"detobj/internal/sim"
	"detobj/internal/snapshot"
)

// cell is a participant's announcement: its value and current floor.
type cell struct {
	Val   sim.Value
	Floor int
}

// Protocol is a one-shot immediate snapshot instance for up to n
// participants with slots 0..n−1.
type Protocol struct {
	n    int
	snap snapshot.Snapshotter
}

// New registers the instance's shared state under name.
func New(objects map[string]sim.Object, name string, n int) Protocol {
	if n < 1 {
		panic(fmt.Sprintf("immediate: n = %d", n))
	}
	return Protocol{n: n, snap: snapshot.NewObjectHandle(objects, name, n, nil)}
}

// N returns the number of participant slots.
func (pr Protocol) N() int { return pr.n }

// Execute performs the one-shot immediate snapshot for the participant on
// the given slot with value v, returning its view: participant slot →
// value, for every participant it saw at or below its final floor.
func (pr Protocol) Execute(ctx *sim.Ctx, slot int, v sim.Value) map[int]sim.Value {
	if slot < 0 || slot >= pr.n {
		panic(fmt.Sprintf("immediate: slot %d outside [0,%d)", slot, pr.n))
	}
	if v == nil {
		panic("immediate: nil value")
	}
	for floor := pr.n; floor >= 1; floor-- {
		pr.snap.Update(ctx, slot, cell{Val: v, Floor: floor})
		raw := pr.snap.Scan(ctx)
		view := make(map[int]sim.Value)
		for q, entry := range raw {
			if entry == nil {
				continue
			}
			c := entry.(cell)
			if c.Floor <= floor {
				view[q] = c.Val
			}
		}
		if len(view) >= floor {
			return view
		}
	}
	panic("immediate: descended below floor 1") // |view| ≥ 1 at floor 1: it contains the caller
}

// Program wraps Execute as a process program returning the view.
func (pr Protocol) Program(slot int, v sim.Value) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		return pr.Execute(ctx, slot, v)
	}
}
