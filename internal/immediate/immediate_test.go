package immediate

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"detobj/internal/modelcheck"
	"detobj/internal/sim"
	"detobj/internal/tasks"
)

// runIS runs participants (by slot) through one instance and returns the
// outcome.
func runIS(t *testing.T, n int, slots []int, sched sim.Scheduler) tasks.Outcome {
	t.Helper()
	objects := map[string]sim.Object{}
	pr := New(objects, "IS", n)
	inputs := map[int]sim.Value{}
	progs := make([]sim.Program, len(slots))
	for p, slot := range slots {
		v := fmt.Sprintf("v%d", slot)
		progs[p] = pr.Program(slot, v)
		inputs[slot] = v
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sched, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatalf("slots=%v: %v", slots, err)
	}
	if !res.AllDone() {
		t.Fatalf("slots=%v: not wait-free: %v", slots, res.Status)
	}
	// Re-key outputs by slot (the task is specified over participant
	// slots).
	o := tasks.Outcome{Inputs: inputs, Outputs: map[int]sim.Value{}}
	for p, slot := range slots {
		o.Outputs[slot] = res.Outputs[p]
	}
	return o
}

// TestISPropertiesRandom: the three immediate-snapshot properties hold
// over many random schedules and participant counts.
func TestISPropertiesRandom(t *testing.T) {
	task := tasks.ImmediateSnapshot{}
	for n := 1; n <= 5; n++ {
		slots := make([]int, n)
		for i := range slots {
			slots[i] = i
		}
		for seed := int64(0); seed < 60; seed++ {
			o := runIS(t, n, slots, sim.NewRandom(seed))
			if err := task.Check(o); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

// TestISSubsetParticipation: only some slots participate.
func TestISSubsetParticipation(t *testing.T) {
	task := tasks.ImmediateSnapshot{}
	for _, slots := range [][]int{{2}, {0, 3}, {1, 2, 4}} {
		for seed := int64(0); seed < 20; seed++ {
			o := runIS(t, 5, slots, sim.NewRandom(seed))
			if err := task.Check(o); err != nil {
				t.Fatalf("slots=%v seed=%d: %v", slots, seed, err)
			}
		}
	}
}

// TestISSoloSeesItself: a solo participant's view is exactly itself.
func TestISSoloSeesItself(t *testing.T) {
	o := runIS(t, 4, []int{2}, nil)
	view := o.Outputs[2].(map[int]sim.Value)
	if len(view) != 1 || view[2] != "v2" {
		t.Fatalf("solo view = %v", view)
	}
}

// TestISSequentialViewsGrow: sequential participants see strictly growing
// views (the later one sees everyone before it).
func TestISSequentialViewsGrow(t *testing.T) {
	o := runIS(t, 3, []int{0, 1, 2}, sim.Priority{0, 1, 2})
	sizes := make([]int, 3)
	for slot := 0; slot < 3; slot++ {
		sizes[slot] = len(o.Outputs[slot].(map[int]sim.Value))
	}
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Fatalf("sequential view sizes = %v, want [1 2 3]", sizes)
	}
	if err := (tasks.ImmediateSnapshot{}).Check(o); err != nil {
		t.Fatal(err)
	}
}

// TestISExhaustiveSmall: every execution for n = 2 and n = 3 (the full
// interleaving tree) satisfies the task.
func TestISExhaustiveSmall(t *testing.T) {
	task := tasks.ImmediateSnapshot{}
	for n := 2; n <= 3; n++ {
		n := n
		inputs := map[int]sim.Value{}
		for i := 0; i < n; i++ {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		count, err := modelcheck.VerifyAll(func() sim.Config {
			objects := map[string]sim.Object{}
			pr := New(objects, "IS", n)
			progs := make([]sim.Program, n)
			for i := 0; i < n; i++ {
				progs[i] = pr.Program(i, fmt.Sprintf("v%d", i))
			}
			return sim.Config{Objects: objects, Programs: progs}
		}, 1<<20, func(res *sim.Result) error {
			if !res.AllDone() {
				return fmt.Errorf("not wait-free: %v", res.Status)
			}
			o := tasks.Outcome{Inputs: inputs, Outputs: map[int]sim.Value{}}
			for i := 0; i < n; i++ {
				o.Outputs[i] = res.Outputs[i]
			}
			return task.Check(o)
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		t.Logf("n=%d: %d executions verified", n, count)
		if count < 2 {
			t.Fatalf("n=%d: only %d executions", n, count)
		}
	}
}

// TestISQuickProperties: random participant subsets and schedules.
func TestISQuickProperties(t *testing.T) {
	task := tasks.ImmediateSnapshot{}
	f := func(rawMask uint8, seed int64) bool {
		const n = 4
		var slots []int
		for i := 0; i < n; i++ {
			if rawMask&(1<<i) != 0 {
				slots = append(slots, i)
			}
		}
		if len(slots) == 0 {
			return true
		}
		objects := map[string]sim.Object{}
		pr := New(objects, "IS", n)
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, len(slots))
		for p, slot := range slots {
			v := fmt.Sprintf("v%d", slot)
			progs[p] = pr.Program(slot, v)
			inputs[slot] = v
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			MaxSteps:  1 << 16,
		})
		if err != nil || !res.AllDone() {
			return false
		}
		o := tasks.Outcome{Inputs: inputs, Outputs: map[int]sim.Value{}}
		for p, slot := range slots {
			o.Outputs[slot] = res.Outputs[p]
		}
		return task.Check(o) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestISValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with n=0 did not panic")
			}
		}()
		New(map[string]sim.Object{}, "x", 0)
	}()
	objects := map[string]sim.Object{}
	pr := New(objects, "IS", 2)
	if pr.N() != 2 {
		t.Errorf("N = %d", pr.N())
	}
	for _, bad := range []sim.Program{
		func(ctx *sim.Ctx) sim.Value { return pr.Execute(ctx, 7, "v") },
		func(ctx *sim.Ctx) sim.Value { return pr.Execute(ctx, 0, nil) },
	} {
		_, err := sim.Run(sim.Config{Objects: objects, Programs: []sim.Program{bad}})
		if !errors.Is(err, sim.ErrProgramPanic) {
			t.Errorf("err = %v, want ErrProgramPanic", err)
		}
	}
}
