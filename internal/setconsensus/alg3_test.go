package setconsensus

import (
	"testing"

	"detobj/internal/sim"
	"detobj/internal/tasks"
	"detobj/internal/wrn"
)

func TestCoveringFamilyShape(t *testing.T) {
	f := CoveringFamily(3)
	if f.K() != 3 {
		t.Errorf("K = %d", f.K())
	}
	if f.Len() != 10 { // C(5,3)
		t.Errorf("covering family size = %d, want 10", f.Len())
	}
	if !f.CoversAll() {
		t.Error("covering family does not cover all 3-subsets of {0..4}")
	}
}

func TestCoveringFamilyLargerK(t *testing.T) {
	for k := 2; k <= 5; k++ {
		f := CoveringFamily(k)
		if !f.CoversAll() {
			t.Errorf("k=%d: covering family incomplete", k)
		}
	}
}

func TestFullFamilyShape(t *testing.T) {
	f := FullFamily(3)
	if f.Len() != 243 { // 3^5
		t.Errorf("full family size = %d, want 243", f.Len())
	}
	if !f.CoversAll() {
		t.Error("full family does not cover (impossible)")
	}
	// Spot-check lexicographic order: member 0 is all-zero, member 1 maps
	// name 0 to 1.
	if f.At(0, 0) != 0 || f.At(0, 4) != 0 {
		t.Error("member 0 not the zero function")
	}
	if f.At(1, 0) != 1 {
		t.Error("member 1 does not increment the first coordinate")
	}
}

func TestFamilyValidation(t *testing.T) {
	for _, build := range []func(int) IndexFamily{CoveringFamily, FullFamily} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("family with k=1 did not panic")
				}
			}()
			build(1)
		}()
	}
}

func TestNewAlg3FamilyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("family/k mismatch did not panic")
		}
	}()
	NewAlg3(map[string]sim.Object{}, "A", 4, 16, CoveringFamily(3))
}

// runAlg3 runs Algorithm 3 with the given participant ids (names from
// {0..m−1}) and distinct proposals, returning the result and the input map
// keyed by process index.
func runAlg3(t *testing.T, k, m int, family IndexFamily, ids []int, seed int64) (*sim.Result, map[int]sim.Value, []*wrn.OneShot) {
	t.Helper()
	objects := map[string]sim.Object{}
	a, ones := NewAlg3(objects, "A", k, m, family)
	inputs := map[int]sim.Value{}
	progs := make([]sim.Program, len(ids))
	for p, id := range ids {
		v := 1000 + id
		inputs[p] = v
		progs[p] = a.Program(id, v)
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sim.NewRandom(seed),
		MaxSteps:  1 << 20,
	})
	if err != nil {
		t.Fatalf("k=%d ids=%v seed=%d: Run: %v", k, ids, seed, err)
	}
	return res, inputs, ones
}

// TestAlg3SetConsensus (E3, Corollary 18): with exactly k participants out
// of a large name space, Algorithm 3 solves (k−1)-set consensus.
func TestAlg3SetConsensus(t *testing.T) {
	family := CoveringFamily(3)
	idSets := [][]int{
		{0, 1, 2},
		{15, 3, 9},
		{7, 11, 2},
		{14, 13, 12},
	}
	task := tasks.SetConsensus{K: 2}
	for _, ids := range idSets {
		for seed := int64(0); seed < 40; seed++ {
			res, inputs, ones := runAlg3(t, 3, 16, family, ids, seed)
			if !res.AllDone() {
				t.Fatalf("ids=%v seed=%d: not wait-free: %v", ids, seed, res.Status)
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := task.Check(o); err != nil {
				t.Fatalf("ids=%v seed=%d: %v", ids, seed, err)
			}
			for l, one := range ones {
				for i := 0; i < 3; i++ {
					if one.Invocations(i) > 1 {
						t.Fatalf("ids=%v seed=%d: instance %d index %d used %d times",
							ids, seed, l, i, one.Invocations(i))
					}
				}
			}
		}
	}
}

// TestAlg3FullFamily (paper-literal F): same property with the full
// function family, k = 3.
func TestAlg3FullFamily(t *testing.T) {
	family := FullFamily(3)
	task := tasks.SetConsensus{K: 2}
	for seed := int64(0); seed < 8; seed++ {
		res, inputs, _ := runAlg3(t, 3, 16, family, []int{5, 10, 15}, seed)
		if !res.AllDone() {
			t.Fatalf("seed=%d: %v", seed, res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

// TestAlg3FewerParticipants: with fewer than k participants the algorithm
// still terminates with valid decisions (agreement is then vacuous).
func TestAlg3FewerParticipants(t *testing.T) {
	family := CoveringFamily(3)
	for _, ids := range [][]int{{4}, {8, 2}} {
		for seed := int64(0); seed < 20; seed++ {
			res, inputs, _ := runAlg3(t, 3, 16, family, ids, seed)
			if !res.AllDone() {
				t.Fatalf("ids=%v seed=%d: %v", ids, seed, res.Status)
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := (tasks.SetConsensus{K: 2}).Check(o); err != nil {
				t.Fatalf("ids=%v seed=%d: %v", ids, seed, err)
			}
		}
	}
}

// TestAlg3K4: the protocol scales to k = 4 with the covering family.
func TestAlg3K4(t *testing.T) {
	family := CoveringFamily(4)
	task := tasks.SetConsensus{K: 3}
	for seed := int64(0); seed < 10; seed++ {
		res, inputs, _ := runAlg3(t, 4, 32, family, []int{31, 0, 17, 8}, seed)
		if !res.AllDone() {
			t.Fatalf("seed=%d: %v", seed, res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

// TestAlg3AdversarialPriority: priority adversaries (solo-run shapes) do
// not break agreement.
func TestAlg3AdversarialPriority(t *testing.T) {
	family := CoveringFamily(3)
	objects := map[string]sim.Object{}
	a, _ := NewAlg3(objects, "A", 3, 16, family)
	inputs := map[int]sim.Value{0: 100, 1: 101, 2: 102}
	progs := []sim.Program{a.Program(6, 100), a.Program(1, 101), a.Program(11, 102)}
	for _, prio := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		objects = map[string]sim.Object{}
		a, _ = NewAlg3(objects, "A", 3, 16, family)
		progs = []sim.Program{a.Program(6, 100), a.Program(1, 101), a.Program(11, 102)}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.Priority(prio),
			MaxSteps:  1 << 20,
		})
		if err != nil {
			t.Fatalf("prio %v: %v", prio, err)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := (tasks.SetConsensus{K: 2}).Check(o); err != nil {
			t.Fatalf("prio %v: %v", prio, err)
		}
	}
}

// TestAlg3Claim16SomeoneAdopts: with exactly k participants carrying
// distinct values, EVERY execution has some process deciding another's
// proposal — the covering iteration ℓ* guarantees a cross-decision, which
// is what drives (k−1)-agreement (Claim 16).
func TestAlg3Claim16SomeoneAdopts(t *testing.T) {
	family := CoveringFamily(3)
	ids := []int{5, 9, 14}
	for seed := int64(0); seed < 60; seed++ {
		res, inputs, _ := runAlg3(t, 3, 16, family, ids, seed)
		if !res.AllDone() {
			t.Fatalf("seed %d: %v", seed, res.Status)
		}
		adopted := false
		for p := range ids {
			if res.Outputs[p] != inputs[p] {
				adopted = true
				break
			}
		}
		if !adopted {
			t.Fatalf("seed %d: every process decided its own value; Claim 16 violated", seed)
		}
	}
}

// TestAlg3Claim16UnderAdversaries: the same under priority adversaries.
func TestAlg3Claim16UnderAdversaries(t *testing.T) {
	family := CoveringFamily(3)
	ids := []int{5, 9, 14}
	for _, prio := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}, {0, 2, 1}, {1, 2, 0}} {
		objects := map[string]sim.Object{}
		a, _ := NewAlg3(objects, "A", 3, 16, family)
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, 3)
		for p, id := range ids {
			inputs[p] = 1000 + id
			progs[p] = a.Program(id, 1000+id)
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.Priority(prio),
			MaxSteps:  1 << 20,
		})
		if err != nil {
			t.Fatalf("prio %v: %v", prio, err)
		}
		adopted := false
		for p := 0; p < 3; p++ {
			if res.Outputs[p] != inputs[p] {
				adopted = true
			}
		}
		if !adopted {
			t.Fatalf("prio %v: no cross-decision", prio)
		}
	}
}
