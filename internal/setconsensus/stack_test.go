package setconsensus

import (
	"testing"

	"detobj/internal/sim"
	"detobj/internal/tasks"
	"detobj/internal/wrn"
)

// TestFullStack runs the deepest composition in the paper: Algorithm 3
// (renaming + covering family) over relaxed WRN_k wrappers (Algorithm 4)
// over IMPLEMENTED 1sWRN_k objects (Algorithm 5: strong set election,
// doorway, double snapshots) — every layer simulated, nothing atomic
// except registers, snapshots and the strong-election object. The whole
// stack must still solve (k−1)-set consensus for k participants out of M
// names.
func TestFullStack(t *testing.T) {
	const k, m = 3, 16
	family := CoveringFamily(k)
	task := tasks.SetConsensus{K: k - 1}
	ids := []int{13, 4, 9}
	for seed := int64(0); seed < 25; seed++ {
		objects := map[string]sim.Object{}
		a := NewAlg3Over(objects, "S", k, m, family, func(instName string, k int) wrn.Relaxed {
			impl := wrn.NewImpl(objects, instName, k)
			return wrn.NewRelaxedOver(objects, instName+".cnt", k, impl)
		})
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, k)
		for p, id := range ids {
			inputs[p] = 1000 + id
			progs[p] = a.Program(id, 1000+id)
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			Seed:      seed * 11,
			MaxSteps:  1 << 21,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AllDone() {
			t.Fatalf("seed %d: stack not wait-free: %v", seed, res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFullStackCrash: the composed stack stays wait-free for survivors
// under crashes.
func TestFullStackCrash(t *testing.T) {
	const k, m = 3, 16
	family := CoveringFamily(k)
	ids := []int{13, 4, 9}
	for _, crashed := range [][]int{{0}, {2}, {0, 1}} {
		for seed := int64(0); seed < 8; seed++ {
			objects := map[string]sim.Object{}
			a := NewAlg3Over(objects, "S", k, m, family, func(instName string, k int) wrn.Relaxed {
				impl := wrn.NewImpl(objects, instName, k)
				return wrn.NewRelaxedOver(objects, instName+".cnt", k, impl)
			})
			inputs := map[int]sim.Value{}
			progs := make([]sim.Program, k)
			for p, id := range ids {
				inputs[p] = 1000 + id
				progs[p] = a.Program(id, 1000+id)
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewCrashing(sim.NewRandom(seed), crashed...),
				Seed:      seed,
				MaxSteps:  1 << 21,
			})
			if err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
			for p := 0; p < k; p++ {
				if !contains(crashed, p) && res.Status[p] != sim.StatusDone {
					t.Fatalf("crashed=%v seed=%d: survivor %d stuck: %v", crashed, seed, p, res.Status[p])
				}
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := (tasks.SetConsensus{K: k - 1}).Check(o); err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
		}
	}
}
