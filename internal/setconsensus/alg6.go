package setconsensus

import (
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// Alg6 is Algorithm 6 (§7.1): m-set consensus for n processes from
// ⌈n/k⌉ WRN_k objects. Process i runs Algorithm 2 within its group
// ⌊i/k⌋ using index i mod k. Every index of every instance is used at
// most once, so 1sWRN_k objects suffice.
type Alg6 struct {
	n, k      int
	instances []wrn.Ref
}

// NewAlg6 registers ⌈n/k⌉ fresh 1sWRN_k objects under the name prefix
// and returns the protocol.
func NewAlg6(objects map[string]sim.Object, name string, n, k int) Alg6 {
	groups := (n + k - 1) / k
	instances := make([]wrn.Ref, groups)
	for g := 0; g < groups; g++ {
		instName := sim.Indexed(name, g)
		objects[instName] = wrn.NewOneShot(k)
		instances[g] = wrn.Ref{Name: instName}
	}
	return Alg6{n: n, k: k, instances: instances}
}

// Propose runs Algorithm 6 for process i with proposal v.
func (a Alg6) Propose(ctx *sim.Ctx, i int, v sim.Value) sim.Value {
	return Alg2Propose(ctx, a.instances[i/a.k], i%a.k, v)
}

// Program wraps Propose as a process program.
func (a Alg6) Program(i int, v sim.Value) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		return a.Propose(ctx, i, v)
	}
}

// Guarantee returns the exact agreement bound m the protocol achieves for
// n processes and parameter k: each full group of k contributes at most
// k−1 distinct decisions (Corollary 9) and a trailing partial group of
// size s contributes at most s. The paper states the sufficient ratio
// (k−1)/k ≤ m/n; Guarantee is the tight value, e.g. Guarantee(12, 3) = 8,
// matching the paper's "(12,8)-set consensus from WRN_3".
func Guarantee(n, k int) int {
	full := n / k
	rest := n % k
	return full*(k-1) + rest
}

// RatioSufficient reports the paper's §7.1 sufficient condition
// (k−1)/k ≤ m/n for WRN_k objects to solve m-set consensus among n
// processes.
func RatioSufficient(n, m, k int) bool {
	return (k-1)*n <= m*k
}
