package setconsensus

import (
	"fmt"
	"testing"
	"testing/quick"

	"detobj/internal/modelcheck"
	"detobj/internal/sim"
	"detobj/internal/tasks"
)

func TestGuarantee(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{12, 3, 8}, // the paper's example: WRN_3 gives (12,8)-set consensus
		{3, 3, 2},
		{4, 3, 3},
		{7, 3, 5},
		{10, 5, 8},
		{5, 5, 4},
		{6, 5, 5},
	}
	for _, c := range cases {
		if got := Guarantee(c.n, c.k); got != c.want {
			t.Errorf("Guarantee(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestRatioSufficient(t *testing.T) {
	if !RatioSufficient(12, 8, 3) {
		t.Error("paper example (12,8,3) rejected")
	}
	if RatioSufficient(12, 7, 3) {
		t.Error("(12,7,3) accepted; 7/12 < 2/3")
	}
}

// TestQuickGuaranteeImpliesRatio: the tight bound always satisfies the
// paper's sufficient ratio (k−1)/k ≤ m/n.
func TestQuickGuaranteeImpliesRatio(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		k := int(rawK%6) + 3
		n := int(rawN%30) + k
		return RatioSufficient(n, Guarantee(n, k), k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// runAlg6 runs Algorithm 6 with n processes and distinct proposals.
func runAlg6(t *testing.T, n, k int, seed int64) (*sim.Result, map[int]sim.Value) {
	t.Helper()
	objects := map[string]sim.Object{}
	a := NewAlg6(objects, "G", n, k)
	inputs := map[int]sim.Value{}
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		v := i * 10
		inputs[i] = v
		progs[i] = a.Program(i, v)
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed)})
	if err != nil {
		t.Fatalf("n=%d k=%d seed=%d: %v", n, k, seed, err)
	}
	return res, inputs
}

// TestAlg6MSetConsensus (E9, Corollary 40): Algorithm 6 solves
// Guarantee(n,k)-set consensus for n processes.
func TestAlg6MSetConsensus(t *testing.T) {
	cases := []struct{ n, k int }{
		{3, 3}, {4, 3}, {6, 3}, {7, 3}, {12, 3}, {9, 4}, {10, 5},
	}
	for _, c := range cases {
		task := tasks.SetConsensus{K: Guarantee(c.n, c.k)}
		for seed := int64(0); seed < 50; seed++ {
			res, inputs := runAlg6(t, c.n, c.k, seed)
			if !res.AllDone() {
				t.Fatalf("n=%d k=%d seed=%d: %v", c.n, c.k, seed, res.Status)
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := task.Check(o); err != nil {
				t.Fatalf("n=%d k=%d seed=%d: %v", c.n, c.k, seed, err)
			}
		}
	}
}

// TestAlg6PerGroup (Lemma 39): every full group of k processes satisfies
// (k−1)-set consensus among its own proposals.
func TestAlg6PerGroup(t *testing.T) {
	const n, k = 12, 3
	for seed := int64(0); seed < 50; seed++ {
		res, inputs := runAlg6(t, n, k, seed)
		for g := 0; g < n/k; g++ {
			groupIn := map[int]sim.Value{}
			groupOut := map[int]sim.Value{}
			for i := g * k; i < (g+1)*k; i++ {
				groupIn[i] = inputs[i]
				groupOut[i] = res.Outputs[i]
			}
			o := tasks.Outcome{Inputs: groupIn, Outputs: groupOut}
			if err := (tasks.SetConsensus{K: k - 1}).Check(o); err != nil {
				t.Fatalf("seed=%d group %d: %v", seed, g, err)
			}
		}
	}
}

// TestAlg6InstanceCount: ⌈n/k⌉ instances are registered.
func TestAlg6InstanceCount(t *testing.T) {
	objects := map[string]sim.Object{}
	NewAlg6(objects, "G", 7, 3)
	if len(objects) != 3 {
		t.Errorf("registered %d objects, want 3", len(objects))
	}
}

// TestAlg6ExhaustiveSmall: Algorithm 6 verified over EVERY execution for
// small configurations (one step per process, so n! schedules).
func TestAlg6ExhaustiveSmall(t *testing.T) {
	for _, cfg := range []struct{ n, k int }{{4, 2}, {5, 3}, {6, 3}} {
		cfg := cfg
		inputs := map[int]sim.Value{}
		for i := 0; i < cfg.n; i++ {
			inputs[i] = i * 10
		}
		task := tasks.SetConsensus{K: Guarantee(cfg.n, cfg.k)}
		count, err := modelcheck.VerifyAll(func() sim.Config {
			objects := map[string]sim.Object{}
			a := NewAlg6(objects, "G", cfg.n, cfg.k)
			progs := make([]sim.Program, cfg.n)
			for i := 0; i < cfg.n; i++ {
				progs[i] = a.Program(i, i*10)
			}
			return sim.Config{Objects: objects, Programs: progs}
		}, 1<<20, func(res *sim.Result) error {
			if !res.AllDone() {
				return fmt.Errorf("not wait-free: %v", res.Status)
			}
			o := tasks.OutcomeFromResult(res, inputs)
			return task.Check(o)
		})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", cfg.n, cfg.k, err)
		}
		if want := factorial(cfg.n); count != want {
			t.Fatalf("n=%d k=%d: %d executions, want %d", cfg.n, cfg.k, count, want)
		}
	}
}
