package setconsensus

import (
	"fmt"
	"testing"

	"detobj/internal/sim"
	"detobj/internal/tasks"
)

func TestNewObjectValidation(t *testing.T) {
	for _, nk := range [][2]int{{3, 0}, {3, 3}, {2, 5}} {
		nk := nk
		t.Run(fmt.Sprint(nk), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewObject(%d,%d) did not panic", nk[0], nk[1])
				}
			}()
			NewObject(nk[0], nk[1])
		})
	}
}

func TestObjectUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown op did not panic")
		}
	}()
	NewObject(3, 2).Apply(&sim.Env{}, sim.Invocation{Op: "read"})
}

func TestObjectNilProposalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil proposal did not panic")
		}
	}()
	NewObject(3, 2).Apply(&sim.Env{}, sim.Invocation{Op: "propose", Args: []sim.Value{nil}})
}

// TestObjectTaskCompliance: over many seeds, n processes proposing
// distinct values through an (n,k)-set consensus object always satisfy
// validity and k-agreement.
func TestObjectTaskCompliance(t *testing.T) {
	const n, k = 5, 3
	for seed := int64(0); seed < 200; seed++ {
		obj := NewObject(n, k)
		objects := map[string]sim.Object{"S": obj}
		ref := Ref{Name: "S"}
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, n)
		for i := 0; i < n; i++ {
			v := i * 10
			inputs[i] = v
			progs[i] = func(ctx *sim.Ctx) sim.Value { return ref.Propose(ctx, v) }
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			Seed:      seed * 31,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AllDone() {
			t.Fatalf("seed %d: the first n proposes must all return: %v", seed, res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := (tasks.SetConsensus{K: k}).Check(o); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := len(obj.Set()); got < 1 || got > k {
			t.Fatalf("seed %d: decision set has %d values", seed, got)
		}
	}
}

// TestObjectFirstProposerGetsOwnValue: run solo first — the set holds only
// its own proposal, so it must decide it.
func TestObjectFirstProposerGetsOwnValue(t *testing.T) {
	objects := map[string]sim.Object{"S": NewObject(3, 2)}
	ref := Ref{Name: "S"}
	mk := func(v int) sim.Program {
		return func(ctx *sim.Ctx) sim.Value { return ref.Propose(ctx, v) }
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{mk(100), mk(200), mk(300)},
		Scheduler: sim.Priority{0, 1, 2},
		Seed:      5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[0] != 100 {
		t.Errorf("first proposer decided %v, want its own 100", res.Outputs[0])
	}
}

// TestObjectHangsBeyondBudget: propose n+1 times — the extra caller hangs
// and no other process can tell.
func TestObjectHangsBeyondBudget(t *testing.T) {
	const n = 2
	objects := map[string]sim.Object{"S": NewObject(n, 1)}
	ref := Ref{Name: "S"}
	mk := func(v int) sim.Program {
		return func(ctx *sim.Ctx) sim.Value { return ref.Propose(ctx, v) }
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{mk(1), mk(2), mk(3)},
		Scheduler: sim.Priority{0, 1, 2},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	done, hung := 0, 0
	for _, st := range res.Status {
		switch st {
		case sim.StatusDone:
			done++
		case sim.StatusHung:
			hung++
		}
	}
	if done != n || hung != 1 {
		t.Errorf("done=%d hung=%d, want %d and 1", done, hung, n)
	}
}

func TestObjectAccessors(t *testing.T) {
	o := NewObject(4, 2)
	if o.N() != 4 || o.K() != 2 {
		t.Errorf("N,K = %d,%d", o.N(), o.K())
	}
	set := o.Set()
	if len(set) != 0 {
		t.Errorf("initial set = %v", set)
	}
}
