package setconsensus

import (
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// Alg2Propose is Algorithm 2: process P_i of {P_0..P_{k−1}} solves
// (k−1)-set consensus for k processes with a single WRN_k (or, since each
// index is used once, 1sWRN_k) object. P_i writes its proposal at index i
// and decides what it reads from index (i+1) mod k, falling back to its
// own proposal on ⊥.
func Alg2Propose(ctx *sim.Ctx, w wrn.Ref, i int, v sim.Value) sim.Value {
	if t := w.WRN(ctx, i, v); !wrn.IsBottom(t) {
		return t
	}
	return v
}

// Alg2Program wraps Alg2Propose as a process program.
func Alg2Program(w wrn.Ref, i int, v sim.Value) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		return Alg2Propose(ctx, w, i, v)
	}
}

// NewAlg2 registers a fresh 1sWRN_k object under name and returns programs
// for the k processes with proposals vs. It is the complete (k−1)-set
// consensus protocol of §4.1.
func NewAlg2(objects map[string]sim.Object, name string, vs []sim.Value) []sim.Program {
	k := len(vs)
	objects[name] = wrn.NewOneShot(k)
	w := wrn.Ref{Name: name}
	progs := make([]sim.Program, k)
	for i, v := range vs {
		progs[i] = Alg2Program(w, i, v)
	}
	return progs
}
