// Package setconsensus implements the paper's set-consensus machinery: the
// nondeterministic (n,k)-set consensus object of Borowsky–Gafni (paper §2),
// and the three WRN-based set-consensus algorithms — Algorithm 2 ((k−1)-set
// consensus for k processes from one WRN_k), Algorithm 3 ((k−1)-set
// consensus for k participants drawn from a large name space, via renaming
// and a family of relaxed WRN_k instances), and Algorithm 6 (m-set
// consensus for n processes, §7.1).
package setconsensus

import (
	"fmt"

	"detobj/internal/sim"
)

// Object is an (n,k)-set consensus object: a nondeterministic shared
// object whose value is a set of at most K proposals plus a count of
// propose operations (to a maximum of N). The first propose adds its
// input; later proposes may nondeterministically add theirs while the set
// is smaller than K. Each of the first N proposes returns a
// nondeterministically chosen element of the set; all later proposes hang
// the caller undetectably.
type Object struct {
	n, k  int
	set   []sim.Value
	count int
}

// NewObject returns a fresh (n,k)-set consensus object. It panics unless
// 0 < k < n.
func NewObject(n, k int) *Object {
	if k <= 0 || k >= n {
		panic(fmt.Sprintf("setconsensus: need 0 < k < n, got (n,k) = (%d,%d)", n, k))
	}
	return &Object{n: n, k: k}
}

// N returns the object's propose budget.
func (o *Object) N() int { return o.n }

// K returns the object's agreement parameter.
func (o *Object) K() int { return o.k }

// Set returns a copy of the current decision set, for tests.
func (o *Object) Set() []sim.Value {
	return append([]sim.Value(nil), o.set...)
}

// Apply implements sim.Object with the single operation "propose"(v).
func (o *Object) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	if inv.Op != "propose" {
		panic(fmt.Sprintf("setconsensus: unknown operation %q", inv.Op))
	}
	v := inv.Arg(0)
	if v == nil {
		panic("setconsensus: propose of nil value")
	}
	o.count++
	if o.count > o.n {
		return sim.HangCaller()
	}
	switch {
	case len(o.set) == 0:
		o.set = append(o.set, v)
	case len(o.set) < o.k:
		if env.Rand.Intn(2) == 1 {
			o.set = append(o.set, v)
		}
	}
	return sim.Respond(o.set[env.Rand.Intn(len(o.set))])
}

// Ref is a typed handle to a set-consensus Object registered under Name.
type Ref struct {
	Name string
}

// Propose submits v and returns the object's decision for this caller
// (one atomic step).
func (r Ref) Propose(ctx *sim.Ctx, v sim.Value) sim.Value {
	return ctx.Invoke(r.Name, "propose", v)
}
