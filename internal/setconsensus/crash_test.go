package setconsensus

import (
	"testing"

	"detobj/internal/sim"
	"detobj/internal/tasks"
)

// Wait-freedom is exactly crash tolerance: whatever subset of processes
// the adversary silences forever, every live process must still decide,
// and the decisions of the deciders must satisfy the task. These tests
// drive Algorithms 2, 3 and 6 under every crash pattern.

// TestAlg2CrashTolerance (Claim 3): every non-empty crash pattern leaves
// the survivors deciding within the (k−1) bound.
func TestAlg2CrashTolerance(t *testing.T) {
	const k = 4
	task := tasks.SetConsensus{K: k - 1}
	for mask := 0; mask < 1<<k-1; mask++ { // at least one survivor
		var crashed []int
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				crashed = append(crashed, i)
			}
		}
		for seed := int64(0); seed < 10; seed++ {
			objects := map[string]sim.Object{}
			vs, inputs := proposalsFor(k)
			progs := NewAlg2(objects, "W", vs)
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewCrashing(sim.NewRandom(seed), crashed...),
			})
			if err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
			for i := 0; i < k; i++ {
				if contains(crashed, i) {
					continue
				}
				if res.Status[i] != sim.StatusDone {
					t.Fatalf("crashed=%v seed=%d: live process %d did not decide: %v",
						crashed, seed, i, res.Status[i])
				}
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := task.Check(o); err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestAlg3CrashTolerance: Algorithm 3 is wait-free through renaming and
// all (2k−1 choose k) relaxed instances, even when participants crash at
// arbitrary points.
func TestAlg3CrashTolerance(t *testing.T) {
	const k, m = 3, 16
	family := CoveringFamily(k)
	ids := []int{11, 2, 7}
	task := tasks.SetConsensus{K: k - 1}
	for _, crashed := range [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 2}} {
		for seed := int64(0); seed < 10; seed++ {
			objects := map[string]sim.Object{}
			a, _ := NewAlg3(objects, "A", k, m, family)
			inputs := map[int]sim.Value{}
			progs := make([]sim.Program, k)
			for p, id := range ids {
				inputs[p] = 1000 + id
				progs[p] = a.Program(id, 1000+id)
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewCrashing(sim.NewRandom(seed), crashed...),
				MaxSteps:  1 << 20,
			})
			if err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
			for p := 0; p < k; p++ {
				if !contains(crashed, p) && res.Status[p] != sim.StatusDone {
					t.Fatalf("crashed=%v seed=%d: live participant %d stuck: %v",
						crashed, seed, p, res.Status[p])
				}
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := task.Check(o); err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
		}
	}
}

// TestAlg6CrashTolerance: each group is independently wait-free.
func TestAlg6CrashTolerance(t *testing.T) {
	const n, k = 9, 3
	task := tasks.SetConsensus{K: Guarantee(n, k)}
	crashPatterns := [][]int{{0}, {0, 3, 6}, {1, 2}, {4, 5, 7, 8}}
	for _, crashed := range crashPatterns {
		for seed := int64(0); seed < 10; seed++ {
			objects := map[string]sim.Object{}
			a := NewAlg6(objects, "G", n, k)
			inputs := map[int]sim.Value{}
			progs := make([]sim.Program, n)
			for i := 0; i < n; i++ {
				inputs[i] = i * 10
				progs[i] = a.Program(i, i*10)
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewCrashing(sim.NewRandom(seed), crashed...),
			})
			if err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
			for i := 0; i < n; i++ {
				if !contains(crashed, i) && res.Status[i] != sim.StatusDone {
					t.Fatalf("crashed=%v seed=%d: live process %d stuck", crashed, seed, i)
				}
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := task.Check(o); err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
		}
	}
}
