package setconsensus

import (
	"fmt"

	"detobj/internal/renaming"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// IndexFamily is an ordered family of index mappings f_ℓ : {0..2k−2} →
// {0..k−1}, the F of Algorithm 3. Correctness requires only the covering
// property: for every k-subset R of {0..2k−2} some member maps R onto
// {0..k−1}.
type IndexFamily struct {
	k     int
	funcs [][]int
}

// Len returns the number of mappings.
func (f IndexFamily) Len() int { return len(f.funcs) }

// K returns the range size k.
func (f IndexFamily) K() int { return f.k }

// At returns f_ℓ(j).
func (f IndexFamily) At(l, j int) int { return f.funcs[l][j] }

// Covers reports whether mapping ℓ sends the name set R onto {0..k−1}.
func (f IndexFamily) Covers(l int, r []int) bool {
	seen := make([]bool, f.k)
	for _, j := range r {
		seen[f.funcs[l][j]] = true
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// CoversAll reports the covering property over every k-subset of
// {0..2k−2}: the existence guarantee Claim 16 relies on.
func (f IndexFamily) CoversAll() bool {
	ok := true
	forEachSubset(2*f.k-1, f.k, func(r []int) {
		found := false
		for l := 0; l < len(f.funcs) && !found; l++ {
			found = f.Covers(l, r)
		}
		if !found {
			ok = false
		}
	})
	return ok
}

// forEachSubset enumerates the size-k subsets of {0..m−1}.
func forEachSubset(m, k int, visit func(r []int)) {
	idx := make([]int, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			visit(append([]int(nil), idx...))
			return
		}
		for v := start; v <= m-(k-pos); v++ {
			idx[pos] = v
			rec(v+1, pos+1)
		}
	}
	rec(0, 0)
}

// CoveringFamily returns the compact family used by default: one mapping
// per k-subset R of {0..2k−2}, sending the members of R to their ranks
// within R and everything else to 0. Its size is C(2k−1, k), against
// k^(2k−1) for the full family, and it covers every possible set of
// renamed participants.
func CoveringFamily(k int) IndexFamily {
	if k < 2 {
		panic(fmt.Sprintf("setconsensus: family needs k >= 2, got %d", k))
	}
	var funcs [][]int
	forEachSubset(2*k-1, k, func(r []int) {
		f := make([]int, 2*k-1)
		for rank, j := range r {
			f[j] = rank
		}
		funcs = append(funcs, f)
	})
	return IndexFamily{k: k, funcs: funcs}
}

// FullFamily returns every function {0..2k−2} → {0..k−1}, in
// lexicographic order — the literal F of the paper. Its size k^(2k−1)
// grows fast; use it only for small k.
func FullFamily(k int) IndexFamily {
	if k < 2 {
		panic(fmt.Sprintf("setconsensus: family needs k >= 2, got %d", k))
	}
	dom := 2*k - 1
	total := 1
	for i := 0; i < dom; i++ {
		total *= k
	}
	funcs := make([][]int, total)
	for n := 0; n < total; n++ {
		f := make([]int, dom)
		x := n
		for j := 0; j < dom; j++ {
			f[j] = x % k
			x /= k
		}
		funcs[n] = f
	}
	return IndexFamily{k: k, funcs: funcs}
}

// Alg3 is Algorithm 3: (k−1)-set consensus for at most k participating
// processes whose names come from {0..M−1}. Participants first acquire
// names in {0..2k−2} via wait-free renaming, then walk a fixed family of
// relaxed WRN_k instances in order, deciding the first non-⊥ value they
// read, or their own proposal if they reach the end.
type Alg3 struct {
	k         int
	ren       renaming.Protocol
	family    IndexFamily
	instances []wrn.Relaxed
}

// NewAlg3 registers all shared state (a renaming protocol and one relaxed
// WRN_k instance per family member) under the given name prefix and
// returns the protocol. m is the original name-space size. The returned
// OneShot objects are the underlying 1sWRN_k instances, exposed so tests
// can verify legal use.
func NewAlg3(objects map[string]sim.Object, name string, k, m int, family IndexFamily) (Alg3, []*wrn.OneShot) {
	ones := make([]*wrn.OneShot, 0, family.Len())
	a := NewAlg3Over(objects, name, k, m, family, func(instName string, k int) wrn.Relaxed {
		rlx, one := wrn.NewRelaxed(objects, instName, k)
		ones = append(ones, one)
		return rlx
	})
	return a, ones
}

// NewAlg3Over builds Algorithm 3 with a caller-supplied factory for the
// relaxed WRN_k instances, so the protocol can run over implemented
// objects (e.g. Algorithm 5's 1sWRN built from strong set election)
// instead of atomic ones.
func NewAlg3Over(objects map[string]sim.Object, name string, k, m int, family IndexFamily, mk func(instName string, k int) wrn.Relaxed) Alg3 {
	if family.K() != k {
		panic(fmt.Sprintf("setconsensus: family built for k=%d used with k=%d", family.K(), k))
	}
	a := Alg3{
		k:      k,
		ren:    renaming.New(objects, name+".ren", m),
		family: family,
	}
	a.instances = make([]wrn.Relaxed, family.Len())
	for l := 0; l < family.Len(); l++ {
		a.instances[l] = mk(fmt.Sprintf("%s.W[%d]", name, l), k)
	}
	return a
}

// Propose runs Algorithm 3 for the participant with original name id and
// proposal v.
func (a Alg3) Propose(ctx *sim.Ctx, id int, v sim.Value) sim.Value {
	j := a.ren.GetName(ctx, id)
	for l := 0; l < a.family.Len(); l++ {
		i := a.family.At(l, j)
		if t := a.instances[l].RlxWRN(ctx, i, v); !wrn.IsBottom(t) {
			return t
		}
	}
	return v
}

// Program wraps Propose as a process program.
func (a Alg3) Program(id int, v sim.Value) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		return a.Propose(ctx, id, v)
	}
}

// K returns the participant bound.
func (a Alg3) K() int { return a.k }
