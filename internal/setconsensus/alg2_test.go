package setconsensus

import (
	"fmt"
	"testing"

	"detobj/internal/sim"
	"detobj/internal/tasks"
)

// proposalsFor builds k pairwise distinct proposals v_i = i*10.
func proposalsFor(k int) ([]sim.Value, map[int]sim.Value) {
	vs := make([]sim.Value, k)
	inputs := map[int]sim.Value{}
	for i := 0; i < k; i++ {
		vs[i] = i * 10
		inputs[i] = vs[i]
	}
	return vs, inputs
}

// runAlg2 runs Algorithm 2 once and returns the result.
func runAlg2(t *testing.T, k int, sched sim.Scheduler) (*sim.Result, map[int]sim.Value) {
	t.Helper()
	objects := map[string]sim.Object{}
	vs, inputs := proposalsFor(k)
	progs := NewAlg2(objects, "W", vs)
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sched})
	if err != nil {
		t.Fatalf("k=%d: Run: %v", k, err)
	}
	return res, inputs
}

// TestAlg2Exhaustive (E1, Corollary 9): Algorithm 2 takes exactly one step
// per process, so enumerating all k! step orders verifies (k−1)-set
// consensus over EVERY execution, for k = 3..6.
func TestAlg2Exhaustive(t *testing.T) {
	for k := 3; k <= 6; k++ {
		task := tasks.SetConsensus{K: k - 1}
		count := 0
		forEachPermutation(k, func(order []int) {
			count++
			res, inputs := runAlg2(t, k, sim.NewFixed(order...))
			if !res.AllDone() {
				t.Fatalf("k=%d order %v: not wait-free: %v", k, order, res.Status)
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := task.Check(o); err != nil {
				t.Fatalf("k=%d order %v: %v", k, order, err)
			}
		})
		want := factorial(k)
		if count != want {
			t.Fatalf("k=%d: enumerated %d orders, want %d", k, count, want)
		}
	}
}

// TestAlg2ClaimsFirstAndLast (Claims 4 and 5): under every step order of
// k = 4 processes, the first process to perform WRN decides its own
// proposal, and the last decides the proposal of its successor.
func TestAlg2ClaimsFirstAndLast(t *testing.T) {
	const k = 4
	forEachPermutation(k, func(order []int) {
		res, inputs := runAlg2(t, k, sim.NewFixed(order...))
		first, last := order[0], order[k-1]
		if res.Outputs[first] != inputs[first] {
			t.Fatalf("order %v: first process %d decided %v, want own %v (Claim 4)",
				order, first, res.Outputs[first], inputs[first])
		}
		if want := inputs[(last+1)%k]; res.Outputs[last] != want {
			t.Fatalf("order %v: last process %d decided %v, want successor's %v (Claim 5)",
				order, last, res.Outputs[last], want)
		}
	})
}

// TestAlg2Claim7: a process decides its own proposal whenever its
// successor has not invoked WRN before it.
func TestAlg2Claim7(t *testing.T) {
	const k = 4
	forEachPermutation(k, func(order []int) {
		res, inputs := runAlg2(t, k, sim.NewFixed(order...))
		pos := make([]int, k)
		for p, id := range order {
			pos[id] = p
		}
		for i := 0; i < k; i++ {
			succ := (i + 1) % k
			if pos[succ] > pos[i] && res.Outputs[i] != inputs[i] {
				t.Fatalf("order %v: process %d ran before successor yet decided %v (Claim 7)",
					order, i, res.Outputs[i])
			}
		}
	})
}

// TestAlg2RandomLargeK (E1): random schedules for larger k.
func TestAlg2RandomLargeK(t *testing.T) {
	for k := 3; k <= 8; k++ {
		task := tasks.SetConsensus{K: k - 1}
		for seed := int64(0); seed < 100; seed++ {
			res, inputs := runAlg2(t, k, sim.NewRandom(seed))
			if !res.AllDone() {
				t.Fatalf("k=%d seed=%d: %v", k, seed, res.Status)
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := task.Check(o); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
		}
	}
}

// TestAlg2NeverFullAgreementNorFullSplit: with k distinct proposals, the
// number of distinct decisions is always between 1 and k−1 inclusive, and
// both extremes are reachable (1 via a sequential chain is NOT possible —
// the first decides its own and the last decides another's, so at least
// one pair differs iff k ≥ 2 and some process decides its own while
// another decides a successor's... we assert the observed range over all
// orders is within [1, k−1] and that k−1 is attained).
func TestAlg2DecisionSpread(t *testing.T) {
	const k = 4
	minDistinct, maxDistinct := k+1, 0
	forEachPermutation(k, func(order []int) {
		res, inputs := runAlg2(t, k, sim.NewFixed(order...))
		o := tasks.OutcomeFromResult(res, inputs)
		d := o.DistinctOutputs()
		if d < minDistinct {
			minDistinct = d
		}
		if d > maxDistinct {
			maxDistinct = d
		}
	})
	if maxDistinct != k-1 {
		t.Errorf("max distinct decisions = %d, want the tight bound %d", maxDistinct, k-1)
	}
	if minDistinct < 1 {
		t.Errorf("min distinct decisions = %d", minDistinct)
	}
}

// TestAlg2TraceOrderMatchesClaims cross-checks the trace: the first
// EventStep on the WRN object belongs to the first scheduled process.
func TestAlg2TraceOrderMatchesClaims(t *testing.T) {
	order := []int{2, 0, 1}
	res, _ := runAlg2(t, 3, sim.NewFixed(order...))
	steps := res.Trace.ByObject("W")
	if steps.Len() != 3 {
		t.Fatalf("trace has %d events on W, want 3", steps.Len())
	}
	for i, e := range steps.Events {
		if e.Proc != order[i] {
			t.Errorf("step %d by P%d, want P%d", i, e.Proc, order[i])
		}
		if e.Op != "WRN" {
			t.Errorf("step %d op %q", i, e.Op)
		}
	}
}

func forEachPermutation(k int, visit func(order []int)) {
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	var rec func(pos int)
	rec = func(pos int) {
		if pos == k {
			visit(append([]int(nil), perm...))
			return
		}
		for i := pos; i < k; i++ {
			perm[pos], perm[i] = perm[i], perm[pos]
			rec(pos + 1)
			perm[pos], perm[i] = perm[i], perm[pos]
		}
	}
	rec(0)
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func TestForEachPermutation(t *testing.T) {
	seen := map[string]bool{}
	forEachPermutation(3, func(order []int) {
		seen[fmt.Sprint(order)] = true
	})
	if len(seen) != 6 {
		t.Errorf("enumerated %d permutations of 3, want 6", len(seen))
	}
}

// TestAlg2Claim6Validity: in every execution, each process decides its own
// proposal or its ring successor's — the exact shape of Claim 6.
func TestAlg2Claim6Validity(t *testing.T) {
	const k = 5
	forEachPermutation(k, func(order []int) {
		res, inputs := runAlg2(t, k, sim.NewFixed(order...))
		for i := 0; i < k; i++ {
			out := res.Outputs[i]
			if out != inputs[i] && out != inputs[(i+1)%k] {
				t.Fatalf("order %v: process %d decided %v, not own or successor's (Claim 6)",
					order, i, out)
			}
		}
	})
}
