// Package universal implements Herlihy's wait-free universal construction,
// the other pillar of the consensus hierarchy the paper builds on:
// n-consensus objects are universal for n processes — any sequentially
// specified object has a wait-free linearizable implementation from
// consensus objects and registers (Herlihy 1991, cited in the paper's
// introduction).
//
// The construction maintains a log of operations agreed one slot at a
// time through n-bounded consensus cells. A process announces its
// pending operation, then walks the log: at slot s it proposes either
// the announced operation of process (s mod n) — helping, which is what
// makes the construction wait-free — or its own. Every process replays
// the same log against the sequential specification, so all copies of
// the object state agree, and an operation's result is its output at the
// log position where it was decided.
//
// The paper's results are exactly about where this construction's power
// runs out: below consensus number 2 no such universality exists, yet the
// WRN objects show the space between registers and 2-consensus is still
// infinitely structured.
package universal

import (
	"fmt"

	"detobj/internal/consensus"
	"detobj/internal/linearize"
	"detobj/internal/registers"
	"detobj/internal/sim"
)

// Tag uniquely identifies one operation instance.
type Tag struct {
	Proc int
	Seq  int
}

// announced is a pending operation published in a process's announce
// register.
type announced struct {
	Tag  Tag
	Name string
	Args []sim.Value
}

// Construction is the shared part of one universal object: announce
// registers and the cell log. Each process interacts through its own
// Session.
type Construction struct {
	n        int
	maxCells int
	spec     linearize.Spec
	announce []registers.Ref
	cellName string
}

// New registers the shared state of a universal object for n processes
// under the name prefix: n announce registers and maxCells consensus
// cells (each with a propose budget of n). spec is the object's
// sequential specification. maxCells bounds the total operation slots; a
// run that exceeds it fails loudly with sim.ErrUnknownObject.
func New(objects map[string]sim.Object, name string, n, maxCells int, spec linearize.Spec) Construction {
	if n < 1 || maxCells < 1 {
		panic(fmt.Sprintf("universal: n = %d, maxCells = %d", n, maxCells))
	}
	if spec.Init == nil || spec.Apply == nil {
		panic("universal: spec needs Init and Apply")
	}
	u := Construction{
		n:        n,
		maxCells: maxCells,
		spec:     spec,
		announce: registers.AddRegisterArray(objects, name+".ann", n, nil),
		cellName: name + ".cell",
	}
	for s := 0; s < maxCells; s++ {
		objects[sim.Indexed(u.cellName, s)] = consensus.NewCell(n)
	}
	return u
}

// N returns the number of processes the object serves.
func (u Construction) N() int { return u.n }

// Session is one process's handle: its local replay of the log and its
// operation counter. Sessions are process-local; never share one.
type Session struct {
	u       Construction
	proc    int
	count   int
	state   any
	cellPos int
	inLog   map[Tag]bool
	logLen  int
}

// NewSession returns process proc's session.
func (u Construction) NewSession(proc int) *Session {
	if proc < 0 || proc >= u.n {
		panic(fmt.Sprintf("universal: process %d outside [0,%d)", proc, u.n))
	}
	return &Session{
		u:     u,
		proc:  proc,
		state: u.spec.Init(),
		inLog: make(map[Tag]bool),
	}
}

// Steps returns how many log cells this session has consumed, for
// wait-freedom assertions in tests.
func (s *Session) Steps() int { return s.cellPos }

// Apply performs one operation on the universal object and returns its
// result. It is wait-free: helping guarantees the operation enters the
// log within a bounded number of slots after its announcement, no matter
// how the scheduler behaves.
func (s *Session) Apply(ctx *sim.Ctx, opName string, args ...sim.Value) sim.Value {
	s.count++
	my := announced{Tag: Tag{Proc: s.proc, Seq: s.count}, Name: opName, Args: args}
	s.u.announce[s.proc].Write(ctx, my)

	for {
		// Helping: prefer the announced operation of the slot's priority
		// process if it is not yet in the log.
		candidate := my
		priority := s.cellPos % s.u.n
		if raw := s.u.announce[priority].Read(ctx); raw != nil {
			if ann := raw.(announced); !s.inLog[ann.Tag] {
				candidate = ann
			}
		}
		cell := consensus.CellRef{Name: sim.Indexed(s.u.cellName, s.cellPos)}
		winner := cell.Propose(ctx, candidate).(announced)
		s.cellPos++
		if s.inLog[winner.Tag] {
			continue // a duplicate win; the slot is skipped by everyone
		}
		s.inLog[winner.Tag] = true
		s.logLen++
		var out sim.Value
		s.state, out = s.u.spec.Apply(s.state, winner.Name, winner.Args)
		if winner.Tag == my.Tag {
			return out
		}
	}
}

// State returns the session's current replayed state, for tests.
func (s *Session) State() any { return s.state }

// LogLen returns the number of distinct operations this session has
// replayed.
func (s *Session) LogLen() int { return s.logLen }
