package universal

import (
	"errors"
	"fmt"
	"testing"

	"detobj/internal/linearize"
	"detobj/internal/modelcheck"
	"detobj/internal/sim"
	"detobj/internal/tasks"
	"detobj/internal/wrn"
)

// counterSpec is an inc/read counter sequential specification.
func counterSpec() linearize.Spec {
	return linearize.Spec{
		Init: func() any { return 0 },
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			n := state.(int)
			switch name {
			case "inc":
				return n + 1, n + 1
			case "read":
				return n, n
			default:
				panic("unknown op " + name)
			}
		},
	}
}

// runUniversalCounter runs n processes, each performing `ops` increments
// (traced as logical operations), and returns the result.
func runUniversalCounter(t *testing.T, n, ops int, sched sim.Scheduler) *sim.Result {
	t.Helper()
	objects := map[string]sim.Object{}
	u := New(objects, "U", n, n*ops+2*n, counterSpec())
	progs := make([]sim.Program, n)
	for p := 0; p < n; p++ {
		p := p
		progs[p] = func(ctx *sim.Ctx) sim.Value {
			sess := u.NewSession(p)
			var last sim.Value
			for o := 0; o < ops; o++ {
				ctx.BeginOp("CTR", "inc")
				last = sess.Apply(ctx, "inc")
				ctx.EndOp("CTR", "inc", last)
			}
			return last
		}
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sched, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatalf("n=%d ops=%d: %v", n, ops, err)
	}
	if !res.AllDone() {
		t.Fatalf("n=%d ops=%d: %v", n, ops, res.Status)
	}
	return res
}

// TestUniversalCounterLinearizable: the universal counter's operation
// history linearizes against the counter specification across many random
// schedules (E15: Herlihy universality).
func TestUniversalCounterLinearizable(t *testing.T) {
	spec := counterSpec()
	for seed := int64(0); seed < 40; seed++ {
		res := runUniversalCounter(t, 3, 2, sim.NewRandom(seed))
		ops := linearize.Ops(res.Trace, "CTR")
		if len(ops) != 6 {
			t.Fatalf("seed %d: %d ops", seed, len(ops))
		}
		if !linearize.Check(spec, ops).OK {
			t.Fatalf("seed %d: universal counter not linearizable:\n%v", seed, ops)
		}
	}
}

// TestUniversalCounterTotal: the inc results across all processes are a
// permutation-free set — some process observes the final total n*ops.
func TestUniversalCounterTotal(t *testing.T) {
	const n, ops = 4, 3
	res := runUniversalCounter(t, n, ops, sim.NewRandom(9))
	max := 0
	for _, out := range res.Outputs {
		if v := out.(int); v > max {
			max = v
		}
	}
	if max != n*ops {
		t.Fatalf("max inc result = %d, want %d", max, n*ops)
	}
}

// TestUniversalExhaustiveSmall: every interleaving of 2 processes × 1 inc
// each yields a linearizable history with results {1,2}.
func TestUniversalExhaustiveSmall(t *testing.T) {
	count, err := modelcheck.VerifyAll(func() sim.Config {
		objects := map[string]sim.Object{}
		u := New(objects, "U", 2, 6, counterSpec())
		progs := make([]sim.Program, 2)
		for p := 0; p < 2; p++ {
			p := p
			progs[p] = func(ctx *sim.Ctx) sim.Value {
				return u.NewSession(p).Apply(ctx, "inc")
			}
		}
		return sim.Config{Objects: objects, Programs: progs}
	}, 1<<20, func(res *sim.Result) error {
		if !res.AllDone() {
			return fmt.Errorf("not wait-free: %v", res.Status)
		}
		a, b := res.Outputs[0].(int), res.Outputs[1].(int)
		if a+b != 3 || a == b {
			return fmt.Errorf("inc results %d and %d, want {1,2}", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verified %d executions", count)
	if count < 10 {
		t.Fatalf("only %d executions", count)
	}
}

// TestUniversalHelpingBoundsStarvedProcess: a process that is scheduled
// only rarely still completes its operation within a bounded number of
// log slots, because faster processes decide it on its behalf — the
// helping mechanism that makes the construction wait-free.
func TestUniversalHelpingBoundsStarvedProcess(t *testing.T) {
	const n = 3
	objects := map[string]sim.Object{}
	u := New(objects, "U", n, 64, counterSpec())
	var starvedSlots int
	progs := make([]sim.Program, n)
	progs[0] = func(ctx *sim.Ctx) sim.Value {
		sess := u.NewSession(0)
		out := sess.Apply(ctx, "inc")
		starvedSlots = sess.Steps()
		return out
	}
	for p := 1; p < n; p++ {
		p := p
		progs[p] = func(ctx *sim.Ctx) sim.Value {
			sess := u.NewSession(p)
			var last sim.Value
			for o := 0; o < 6; o++ {
				last = sess.Apply(ctx, "inc")
			}
			return last
		}
	}
	// Process 0 gets one step out of every eight while others are live.
	tick := 0
	sched := sim.Func(func(v sim.View) int {
		tick++
		if tick%8 == 0 && v.EnabledSet(0) {
			return 0
		}
		for _, id := range v.Enabled {
			if id != 0 {
				return id
			}
		}
		return 0
	})
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sched, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllDone() {
		t.Fatalf("status: %v", res.Status)
	}
	// The starved process consumed few slots: its operation was helped
	// into the log near its announcement, far below the 13 total ops.
	if starvedSlots > 2*n+1 {
		t.Errorf("starved process consumed %d log slots; helping should bound this by ~%d", starvedSlots, 2*n+1)
	}
}

// TestUniversalWRN: universality in action — build a WRN_3 object out of
// consensus cells and run the paper's Algorithm 2 on top of it.
func TestUniversalWRN(t *testing.T) {
	const k = 3
	task := tasks.SetConsensus{K: k - 1}
	for seed := int64(0); seed < 25; seed++ {
		objects := map[string]sim.Object{}
		u := New(objects, "U", k, 4*k, wrn.Spec(k))
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, k)
		for i := 0; i < k; i++ {
			i := i
			v := 100 + i
			inputs[i] = v
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				sess := u.NewSession(i)
				if t := sess.Apply(ctx, "WRN", i, v); !wrn.IsBottom(t) {
					return t
				}
				return v
			}
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			MaxSteps:  1 << 18,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AllDone() {
			t.Fatalf("seed %d: %v", seed, res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestUniversalSessionsAgree: sessions replay identical prefixes — after
// everyone finishes, all states with the same log length agree.
func TestUniversalSessionsAgree(t *testing.T) {
	const n = 3
	objects := map[string]sim.Object{}
	u := New(objects, "U", n, 32, counterSpec())
	states := make([]any, n)
	lens := make([]int, n)
	progs := make([]sim.Program, n)
	for p := 0; p < n; p++ {
		p := p
		progs[p] = func(ctx *sim.Ctx) sim.Value {
			sess := u.NewSession(p)
			sess.Apply(ctx, "inc")
			sess.Apply(ctx, "inc")
			states[p] = sess.State()
			lens[p] = sess.LogLen()
			return nil
		}
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(4), MaxSteps: 1 << 18})
	if err != nil || !res.AllDone() {
		t.Fatalf("err=%v status=%v", err, res.Status)
	}
	// Each session's replayed counter equals the number of ops it saw.
	for p := 0; p < n; p++ {
		if states[p].(int) != lens[p] {
			t.Errorf("session %d: state %v after %d ops", p, states[p], lens[p])
		}
	}
}

// TestUniversalCellExhaustion: running past maxCells fails loudly rather
// than corrupting the log.
func TestUniversalCellExhaustion(t *testing.T) {
	objects := map[string]sim.Object{}
	u := New(objects, "U", 1, 2, counterSpec())
	_, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			sess := u.NewSession(0)
			for i := 0; i < 5; i++ {
				sess.Apply(ctx, "inc")
			}
			return nil
		}},
	})
	if !errors.Is(err, sim.ErrUnknownObject) {
		t.Fatalf("err = %v, want ErrUnknownObject (cell budget exceeded)", err)
	}
}

func TestUniversalValidation(t *testing.T) {
	objects := map[string]sim.Object{}
	cases := []func(){
		func() { New(objects, "x", 0, 4, counterSpec()) },
		func() { New(objects, "x", 2, 0, counterSpec()) },
		func() { New(objects, "x", 2, 4, linearize.Spec{}) },
		func() { New(objects, "y", 2, 4, counterSpec()).NewSession(5) },
	}
	for i, f := range cases {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
	u := New(map[string]sim.Object{}, "ok", 2, 4, counterSpec())
	if u.N() != 2 {
		t.Errorf("N = %d", u.N())
	}
}
