package bgsim

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"detobj/internal/sim"
)

// participatingSet is the 1-round protocol: write your input, scan, decide
// the set of inputs you saw (sorted, comma-joined). Its task guarantees:
// every decision contains the decider's own input, and all decisions are
// totally ordered by set inclusion (scans of a monotone memory).
func participatingSet() Protocol {
	return Protocol{
		Rounds: 1,
		Write: func(_ int, input sim.Value, _ [][]sim.Value) sim.Value {
			return input
		},
		Decide: func(_ int, _ sim.Value, scans [][]sim.Value) sim.Value {
			return joinView(scans[0])
		},
	}
}

func joinView(view []sim.Value) string {
	var seen []string
	for _, v := range view {
		if v != nil {
			seen = append(seen, fmt.Sprint(v))
		}
	}
	sort.Strings(seen)
	return strings.Join(seen, ",")
}

// twoRound extends it: round 2 writes how many inputs were seen in round
// 1; the decision pairs both views.
func twoRound() Protocol {
	return Protocol{
		Rounds: 2,
		Write: func(_ int, input sim.Value, scans [][]sim.Value) sim.Value {
			if len(scans) == 0 {
				return input
			}
			return fmt.Sprintf("saw%d", strings.Count(joinView(scans[0]), ",")+1)
		},
		Decide: func(_ int, _ sim.Value, scans [][]sim.Value) sim.Value {
			return joinView(scans[0]) + "|" + joinView(scans[1])
		},
	}
}

func inputsFor(m int) []sim.Value {
	vs := make([]sim.Value, m)
	for i := range vs {
		vs[i] = string(rune('a' + i))
	}
	return vs
}

// runBG runs n simulators over the protocol and returns per-simulator
// outputs.
func runBG(t *testing.T, n int, inputs []sim.Value, proto Protocol, sched sim.Scheduler) []Outputs {
	t.Helper()
	objects := map[string]sim.Object{}
	s := New(objects, "BG", n, inputs, proto, 0)
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  s.Programs(),
		Scheduler: sched,
		MaxSteps:  1 << 20,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	outs := make([]Outputs, n)
	for i := 0; i < n; i++ {
		if res.Status[i] == sim.StatusDone {
			outs[i] = res.Outputs[i].(Outputs)
		}
	}
	return outs
}

// checkLattice verifies the participating-set task on one simulator's
// outputs: self-inclusion and total order by inclusion.
func checkLattice(t *testing.T, inputs []sim.Value, out Outputs, label string) {
	t.Helper()
	sets := make([]map[string]bool, len(out))
	for p, o := range out {
		if o == nil {
			continue
		}
		sets[p] = map[string]bool{}
		for _, v := range strings.Split(o.(string), ",") {
			sets[p][v] = true
		}
		if !sets[p][fmt.Sprint(inputs[p])] {
			t.Errorf("%s: process %d decided %q without its own input %v", label, p, o, inputs[p])
		}
	}
	for a := range sets {
		for b := range sets {
			if sets[a] == nil || sets[b] == nil {
				continue
			}
			if !subset(sets[a], sets[b]) && !subset(sets[b], sets[a]) {
				t.Errorf("%s: decisions %v and %v incomparable", label, out[a], out[b])
			}
		}
	}
}

func subset(a, b map[string]bool) bool {
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// TestBGAllLive: with every simulator live, all simulated processes decide
// on every simulator, all simulators agree, and the simulated outputs
// satisfy the participating-set task.
func TestBGAllLive(t *testing.T) {
	inputs := inputsFor(4)
	for seed := int64(0); seed < 30; seed++ {
		outs := runBG(t, 3, inputs, participatingSet(), sim.NewRandom(seed))
		for i, out := range outs {
			if out == nil {
				t.Fatalf("seed %d: simulator %d did not finish", seed, i)
			}
			for p, o := range out {
				if o == nil {
					t.Fatalf("seed %d: simulator %d left process %d undecided", seed, i, p)
				}
			}
			checkLattice(t, inputs, out, fmt.Sprintf("seed %d sim %d", seed, i))
		}
		// Cross-simulator consistency.
		for i := 1; i < len(outs); i++ {
			for p := range outs[i] {
				if outs[i][p] != outs[0][p] {
					t.Fatalf("seed %d: simulators disagree on process %d: %v vs %v",
						seed, p, outs[i][p], outs[0][p])
				}
			}
		}
	}
}

// TestBGMoreSimulatorsThanProcesses and vice versa.
func TestBGShapes(t *testing.T) {
	cases := []struct{ n, m int }{{1, 3}, {5, 2}, {2, 2}, {4, 6}}
	for _, c := range cases {
		inputs := inputsFor(c.m)
		outs := runBG(t, c.n, inputs, participatingSet(), sim.NewRandom(7))
		for i, out := range outs {
			if out == nil {
				t.Fatalf("n=%d m=%d: simulator %d unfinished", c.n, c.m, i)
			}
			checkLattice(t, inputs, out, fmt.Sprintf("n=%d m=%d sim %d", c.n, c.m, i))
		}
	}
}

// TestBGTwoRounds: the two-round protocol stays consistent across
// simulators, and round-2 views dominate round-1 views.
func TestBGTwoRounds(t *testing.T) {
	inputs := inputsFor(3)
	for seed := int64(0); seed < 20; seed++ {
		outs := runBG(t, 3, inputs, twoRound(), sim.NewRandom(seed))
		for i, out := range outs {
			if out == nil {
				t.Fatalf("seed %d: simulator %d unfinished", seed, i)
			}
			for p, o := range out {
				if o == nil {
					t.Fatalf("seed %d: sim %d process %d undecided", seed, i, p)
				}
				if outs[0][p] != o {
					t.Fatalf("seed %d: disagreement on %d", seed, p)
				}
			}
		}
	}
}

// TestBGCrashFromStartHarmless: simulators crashed before their first step
// never open a safe-agreement window, so every simulated process still
// decides on the survivors.
func TestBGCrashFromStartHarmless(t *testing.T) {
	inputs := inputsFor(4)
	for seed := int64(0); seed < 20; seed++ {
		objects := map[string]sim.Object{}
		s := New(objects, "BG", 3, inputs, participatingSet(), 0)
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  s.Programs(),
			Scheduler: sim.NewCrashing(sim.NewRandom(seed), 1, 2),
			MaxSteps:  1 << 20,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out := res.Outputs[0].(Outputs)
		for p, o := range out {
			if o == nil {
				t.Fatalf("seed %d: process %d blocked with no unsafe window open", seed, p)
			}
		}
		checkLattice(t, inputs, out, fmt.Sprintf("seed %d", seed))
	}
}

// TestBGCrashPointSweep is the t-resilience theorem made exhaustive for
// one crash: simulator 0 crashes after exactly j steps, for every j up to
// its natural completion; the survivor must always finish with at most ONE
// simulated process blocked, and its decided outputs must satisfy the task.
func TestBGCrashPointSweep(t *testing.T) {
	inputs := inputsFor(3)
	for j := 0; j <= 60; j++ {
		objects := map[string]sim.Object{}
		s := New(objects, "BG", 2, inputs, participatingSet(), 50)
		order := make([]int, j)
		for x := range order {
			order[x] = 0
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  s.Programs(),
			Scheduler: &sim.Fixed{Order: order, Fallback: sim.NewCrashing(nil, 0)},
			MaxSteps:  1 << 20,
		})
		if err != nil {
			t.Fatalf("crash after %d steps: %v", j, err)
		}
		if res.Status[1] != sim.StatusDone {
			t.Fatalf("crash after %d steps: survivor did not terminate: %v", j, res.Status[1])
		}
		out := res.Outputs[1].(Outputs)
		blocked := 0
		for _, o := range out {
			if o == nil {
				blocked++
			}
		}
		if blocked > 1 {
			t.Fatalf("crash after %d steps: %d simulated processes blocked, bound is 1 (outputs %v)",
				j, blocked, out)
		}
		checkLattice(t, inputs, out, fmt.Sprintf("crash@%d", j))
	}
}

func TestBGValidation(t *testing.T) {
	objects := map[string]sim.Object{}
	cases := []func(){
		func() { New(objects, "x", 0, inputsFor(2), participatingSet(), 0) },
		func() { New(objects, "x", 2, nil, participatingSet(), 0) },
		func() { New(objects, "x", 2, inputsFor(2), Protocol{}, 0) },
	}
	for i, f := range cases {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
	s := New(objects, "ok", 2, inputsFor(3), participatingSet(), 0)
	if s.M() != 3 {
		t.Errorf("M = %d", s.M())
	}
}

// TestBGTwoCrashGridSweep (t = 2): simulators 0 and 1 crash after j0 and
// j1 of their own steps respectively, over a grid of crash points; the
// surviving simulator always terminates with at most TWO simulated
// processes blocked.
func TestBGTwoCrashGridSweep(t *testing.T) {
	inputs := inputsFor(4)
	for j0 := 0; j0 <= 40; j0 += 5 {
		for j1 := 0; j1 <= 40; j1 += 5 {
			objects := map[string]sim.Object{}
			s := New(objects, "BG", 3, inputs, participatingSet(), 60)
			// Schedule: 0 takes j0 steps, then 1 takes j1 steps, then both
			// are crashed and 2 runs alone.
			order := make([]int, 0, j0+j1)
			for x := 0; x < j0; x++ {
				order = append(order, 0)
			}
			for x := 0; x < j1; x++ {
				order = append(order, 1)
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  s.Programs(),
				Scheduler: &sim.Fixed{Order: order, Fallback: sim.NewCrashing(nil, 0, 1)},
				MaxSteps:  1 << 21,
			})
			if err != nil {
				t.Fatalf("j0=%d j1=%d: %v", j0, j1, err)
			}
			if res.Status[2] != sim.StatusDone {
				t.Fatalf("j0=%d j1=%d: survivor stuck: %v", j0, j1, res.Status[2])
			}
			out := res.Outputs[2].(Outputs)
			blocked := 0
			for _, o := range out {
				if o == nil {
					blocked++
				}
			}
			if blocked > 2 {
				t.Fatalf("j0=%d j1=%d: %d blocked, bound 2 (outputs %v)", j0, j1, blocked, out)
			}
			checkLattice(t, inputs, out, fmt.Sprintf("j0=%d j1=%d", j0, j1))
		}
	}
}
