// Package bgsim implements the Borowsky–Gafni simulation: n simulators
// jointly execute an m-process round-based snapshot protocol, agreeing on
// every simulated scan through safe agreement. The simulation is the
// engine behind two results the paper leans on — the equivalence of k-set
// election and k-strong set election [9] and the set-consensus
// implementability characterization ([16], Theorem 41) — and this package
// reproduces its guarantees directly:
//
//   - consistency: all simulators observe identical agreed scans, hence
//     identical simulated outputs;
//   - validity: every agreed scan is a view some simulator atomically
//     derived from the shared simulated memory, so the simulated execution
//     is a legal execution of the protocol;
//   - t-resilience: a simulator that crashes blocks at most one simulated
//     process (the one whose safe-agreement window it died inside);
//     simulated processes whose agreements are untouched keep running.
//
// Simulated memory is represented as one snapshot slot per (simulator,
// simulated process) pair; all simulators deterministically compute the
// same round-r write for a process, so duplicate copies agree, and a real
// scan projects to the simulated view by taking each process's
// highest-round copy.
package bgsim

import (
	"fmt"

	"detobj/internal/safeagreement"
	"detobj/internal/sim"
	"detobj/internal/snapshot"
)

// Protocol is a deterministic round-based snapshot protocol for m
// simulated processes: in round r a process writes Write(p, input,
// previous scans) to its cell and then scans the memory; after Rounds
// scans it decides Decide(p, input, scans).
type Protocol struct {
	Rounds int
	Write  func(p int, input sim.Value, scans [][]sim.Value) sim.Value
	Decide func(p int, input sim.Value, scans [][]sim.Value) sim.Value
}

// memCell is one simulator's copy of a simulated process's latest write.
type memCell struct {
	Round int
	Val   sim.Value
}

// Simulation is the shared state of one BG simulation instance.
type Simulation struct {
	n, m      int
	proto     Protocol
	inputs    []sim.Value
	mem       snapshot.Snapshotter
	sas       [][]safeagreement.Instance
	spinLimit int
}

// New registers the shared state of a BG simulation with n simulators
// executing the protocol for the m = len(inputs) simulated processes.
// spinLimit bounds how many full sweeps without progress a simulator
// performs before concluding that every remaining simulated process is
// blocked by a crashed simulator; 0 selects a default suitable for tests.
func New(objects map[string]sim.Object, name string, n int, inputs []sim.Value, proto Protocol, spinLimit int) Simulation {
	if n < 1 || len(inputs) < 1 {
		panic(fmt.Sprintf("bgsim: n = %d, m = %d", n, len(inputs)))
	}
	if proto.Rounds < 1 || proto.Write == nil || proto.Decide == nil {
		panic("bgsim: protocol needs Rounds >= 1, Write and Decide")
	}
	if spinLimit <= 0 {
		spinLimit = 200
	}
	m := len(inputs)
	s := Simulation{
		n:         n,
		m:         m,
		proto:     proto,
		inputs:    append([]sim.Value(nil), inputs...),
		mem:       snapshot.NewObjectHandle(objects, name+".mem", n*m, nil),
		spinLimit: spinLimit,
	}
	s.sas = make([][]safeagreement.Instance, m)
	for p := 0; p < m; p++ {
		s.sas[p] = make([]safeagreement.Instance, proto.Rounds)
		for r := 0; r < proto.Rounds; r++ {
			s.sas[p][r] = safeagreement.New(objects, fmt.Sprintf("%s.sa[%d][%d]", name, p, r), n)
		}
	}
	return s
}

// M returns the number of simulated processes.
func (s Simulation) M() int { return s.m }

// Outputs is the result a simulator reports: the decisions of the
// simulated processes it completed (nil entries are blocked processes).
type Outputs []sim.Value

// slot returns the memory slot of simulator i's copy for process p.
func (s Simulation) slot(i, p int) int { return i*s.m + p }

// derive projects a raw scan of all copies to the simulated view: each
// process's highest-round value.
func (s Simulation) derive(raw []sim.Value) []sim.Value {
	view := make([]sim.Value, s.m)
	best := make([]int, s.m)
	for p := range best {
		best[p] = -1
	}
	for i := 0; i < s.n; i++ {
		for p := 0; p < s.m; p++ {
			cellRaw := raw[s.slot(i, p)]
			if cellRaw == nil {
				continue
			}
			cell := cellRaw.(memCell)
			if cell.Round > best[p] {
				best[p] = cell.Round
				view[p] = cell.Val
			}
		}
	}
	return view
}

// SimulatorProgram returns the program of simulator i. The simulator
// sweeps over the simulated processes, advancing each by one (write,
// agreed-scan) round per visit, skipping processes whose safe agreement is
// momentarily unresolved; it returns the Outputs vector when every
// simulated process has decided, or when spinLimit sweeps pass with no
// progress (every survivor decided, the rest blocked by crashes).
func (s Simulation) SimulatorProgram(i int) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		scans := make([][][]sim.Value, s.m) // scans[p][r]
		written := make([]int, s.m)         // rounds written to my copy
		proposed := make([][]bool, s.m)
		outputs := make(Outputs, s.m)
		decided := make([]bool, s.m)
		for p := 0; p < s.m; p++ {
			written[p] = -1
			proposed[p] = make([]bool, s.proto.Rounds)
		}
		decidedCount := 0
		idle := 0
		for decidedCount < s.m && idle < s.spinLimit {
			progress := false
			for p := 0; p < s.m; p++ {
				if decided[p] {
					continue
				}
				r := len(scans[p])
				// Has someone already resolved this round's scan?
				if v, ok := s.sas[p][r].Resolve(ctx); ok {
					s.advance(ctx, p, v, scans, &outputs, decided, &decidedCount)
					progress = true
					continue
				}
				// Publish p's round-r write in my copy (idempotent across
				// simulators: the value is deterministic from agreed scans).
				if written[p] < r {
					v := s.proto.Write(p, s.inputs[p], scans[p])
					s.mem.Update(ctx, s.slot(i, p), memCell{Round: r, Val: v})
					written[p] = r
				}
				if !proposed[p][r] {
					view := s.derive(s.mem.Scan(ctx))
					s.sas[p][r].Propose(ctx, i, view)
					proposed[p][r] = true
				}
				if v, ok := s.sas[p][r].Resolve(ctx); ok {
					s.advance(ctx, p, v, scans, &outputs, decided, &decidedCount)
					progress = true
				}
			}
			if progress {
				idle = 0
			} else {
				idle++
			}
		}
		return outputs
	}
}

// advance installs the agreed round scan for p and decides p if it has
// completed all rounds.
func (s Simulation) advance(_ *sim.Ctx, p int, agreed sim.Value, scans [][][]sim.Value, outputs *Outputs, decided []bool, decidedCount *int) {
	scans[p] = append(scans[p], agreed.([]sim.Value))
	if len(scans[p]) == s.proto.Rounds {
		(*outputs)[p] = s.proto.Decide(p, s.inputs[p], scans[p])
		decided[p] = true
		*decidedCount++
	}
}

// Programs returns all n simulator programs.
func (s Simulation) Programs() []sim.Program {
	progs := make([]sim.Program, s.n)
	for i := 0; i < s.n; i++ {
		progs[i] = s.SimulatorProgram(i)
	}
	return progs
}
