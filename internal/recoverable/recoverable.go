// Package recoverable implements object variants for the amnesiac
// crash-restart model ("Determining Recoverable Consensus Numbers",
// Ovens 2024; see PAPERS.md): processes may crash, losing all volatile
// state, and later restart from the top of their program behind a
// recovery procedure, while shared base objects live in non-volatile
// memory.
//
// The package's objects split their state explicitly along the
// sim.Recoverable seam:
//
//   - Register models the persist-pending store queue of real
//     non-volatile memory: writes stage in a volatile per-process
//     buffer and become durable only on an explicit persist, so a crash
//     between write and persist silently drops the write.
//   - Scratch is an all-volatile per-process scratchpad: process-local
//     state routed through the simulator so crashes wipe it
//     deterministically (and observably, in the trace).
//   - TestAndSet is a recoverable test-and-set: it durably records the
//     winner's identity, making "tas" idempotent per process, so a
//     restarted winner re-learns its win — the information a plain
//     test-and-set loses, which is exactly why the plain object's
//     consensus power collapses under amnesiac restart (E20).
//   - WRN (wrn.go) is a recoverable WRN_k built from a durable
//     journaled core plus a volatile response cache, with a recovery
//     procedure that re-derives the cache from the journal.
//
// protocols.go builds the 2-process consensus protocols E20 calibrates:
// identical protocol shape, plain vs. recoverable racing object, so any
// verdict difference is attributable to the object alone.
package recoverable

import (
	"fmt"
	"sort"
	"strings"

	"detobj/internal/sim"
)

// Register is a recoverable register with explicit persistence: "write"
// stages a value in the calling process's volatile buffer, "persist"
// makes the staged value durable, and "read" returns the last durable
// value. A crash drops the caller's staged value; durable contents
// survive. (Writes are process-private until persisted, mirroring a
// write-behind cache whose lines are lost on power failure.)
type Register struct {
	durable sim.Value         //detlint:durable the non-volatile cell itself — the value "persist" committed
	buf     map[int]sim.Value //detlint:volatile per-process staged writes; a crash drops the crashed caller's entry
}

// NewRegister returns a recoverable register durably holding initial.
func NewRegister(initial sim.Value) *Register {
	return &Register{durable: initial}
}

// Apply implements sim.Object with operations "write"(v), "persist" and
// "read".
func (r *Register) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "write":
		if r.buf == nil {
			r.buf = make(map[int]sim.Value)
		}
		r.buf[env.Proc] = inv.Arg(0)
		return sim.Respond(nil)
	case "persist":
		if v, ok := r.buf[env.Proc]; ok {
			r.durable = v
			delete(r.buf, env.Proc)
		}
		return sim.Respond(r.durable)
	case "read":
		return sim.Respond(r.durable)
	}
	panic(fmt.Sprintf("recoverable: unknown register operation %q", inv.Op))
}

// OnCrash implements sim.Recoverable: the crashed process's staged write
// is lost.
func (r *Register) OnCrash(proc int) { delete(r.buf, proc) }

// StateKey renders the full (durable + staged) state for the model
// checker's indistinguishability engine.
func (r *Register) StateKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d=%v", r.durable)
	procs := make([]int, 0, len(r.buf))
	for p := range r.buf {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		fmt.Fprintf(&b, " b%d=%v", p, r.buf[p])
	}
	return b.String()
}

// CloneObject deep-copies the register.
func (r *Register) CloneObject() sim.Object {
	c := &Register{durable: r.durable}
	if len(r.buf) > 0 {
		c.buf = make(map[int]sim.Value, len(r.buf))
		for p, v := range r.buf {
			c.buf[p] = v
		}
	}
	return c
}

// RegisterRef is a typed handle to a Register registered under Name.
type RegisterRef struct {
	Name string
}

// Write stages v in the caller's volatile buffer (one atomic step).
func (r RegisterRef) Write(ctx *sim.Ctx, v sim.Value) { ctx.Invoke(r.Name, "write", v) }

// Persist makes the caller's staged value durable and returns the
// durable value (one atomic step).
func (r RegisterRef) Persist(ctx *sim.Ctx) sim.Value { return ctx.Invoke(r.Name, "persist") }

// Read returns the last durable value (one atomic step).
func (r RegisterRef) Read(ctx *sim.Ctx) sim.Value { return ctx.Invoke(r.Name, "read") }

// Scratch is an all-volatile per-process scratchpad: "put"(v) stores v
// in the caller's slot, "get" returns it (nil if empty). A crash clears
// the crashed process's slot. Algorithm code routes volatile local state
// it wants under the fault model's control through a Scratch, so the
// runtime wipes it deterministically and the loss is visible in the
// trace.
type Scratch struct {
	slots map[int]sim.Value //detlint:volatile the scratchpad exists to be wiped: every slot dies with its process
}

// NewScratch returns an empty scratchpad.
func NewScratch() *Scratch { return &Scratch{} }

// Apply implements sim.Object with operations "put"(v) and "get".
func (s *Scratch) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "put":
		if s.slots == nil {
			s.slots = make(map[int]sim.Value)
		}
		s.slots[env.Proc] = inv.Arg(0)
		return sim.Respond(nil)
	case "get":
		return sim.Respond(s.slots[env.Proc])
	}
	panic(fmt.Sprintf("recoverable: unknown scratch operation %q", inv.Op))
}

// OnCrash implements sim.Recoverable: everything in the crashed
// process's slot is volatile.
func (s *Scratch) OnCrash(proc int) { delete(s.slots, proc) }

// TestAndSet is a recoverable test-and-set: the winner's identity is
// durable, and "tas" is idempotent per process — the recorded winner
// wins again on re-invocation, so a restarted winner re-learns its win
// instead of being misreported as a loser. "winner" returns the
// recorded winner id, or -1 if the object is still unset (the recovery
// read). Contrast consensus.TestAndSet, whose set flag is durable but
// whose win/lose answer exists only in the (volatile) local state of
// whoever received it.
type TestAndSet struct {
	winner int //detlint:durable the winner's identity is the whole point: it must survive so a restarted winner re-learns its win
}

// NewTestAndSet returns a fresh recoverable test-and-set.
func NewTestAndSet() *TestAndSet { return &TestAndSet{winner: -1} }

// Apply implements sim.Object with operations "tas" (0 = caller won,
// idempotent per process) and "winner".
func (t *TestAndSet) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "tas":
		if t.winner == -1 {
			t.winner = env.Proc
		}
		if t.winner == env.Proc {
			return sim.Respond(0)
		}
		return sim.Respond(1)
	case "winner":
		return sim.Respond(t.winner)
	}
	panic(fmt.Sprintf("recoverable: unknown test-and-set operation %q", inv.Op))
}

// OnCrash implements sim.Recoverable as a no-op: every field of the
// recoverable test-and-set is deliberately durable.
func (t *TestAndSet) OnCrash(proc int) {}

// StateKey renders the state for the model checker.
func (t *TestAndSet) StateKey() string { return fmt.Sprintf("w=%d", t.winner) }

// CloneObject copies the object.
func (t *TestAndSet) CloneObject() sim.Object { return &TestAndSet{winner: t.winner} }

// TASRef is a typed handle to a recoverable TestAndSet registered under
// Name.
type TASRef struct {
	Name string
}

// TAS races for the object; 0 means the caller won (now or in a
// previous incarnation).
func (r TASRef) TAS(ctx *sim.Ctx) int { return ctx.Invoke(r.Name, "tas").(int) }

// Winner returns the recorded winner id, or -1 if unset.
func (r TASRef) Winner(ctx *sim.Ctx) int { return ctx.Invoke(r.Name, "winner").(int) }
