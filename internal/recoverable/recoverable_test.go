package recoverable_test

import (
	"fmt"
	"testing"

	"detobj/internal/chaos"
	"detobj/internal/recoverable"
	"detobj/internal/registers"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// run executes the configuration with the package's standard test
// settings: a generous step budget and replay verification on.
func run(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	cfg.MaxSteps = 1 << 16
	cfg.VerifyReplay = true
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestRegisterStagedWriteLostOnCrash: a write staged but not persisted
// vanishes at a crash; the same program without the crash persists it.
func TestRegisterStagedWriteLostOnCrash(t *testing.T) {
	build := func() (sim.Config, registers.Ref) {
		objects := map[string]sim.Object{"R": recoverable.NewRegister(nil)}
		reg := recoverable.RegisterRef{Name: "R"}
		prog := func(ctx *sim.Ctx) sim.Value {
			if ctx.Incarnation() == 0 {
				reg.Write(ctx, "ghost")
				reg.Read(ctx)
				reg.Read(ctx)
			}
			return reg.Persist(ctx)
		}
		return sim.Config{Objects: objects, Programs: []sim.Program{prog}}, registers.Ref{}
	}

	cfg, _ := build()
	cfg.Scheduler = sim.NewRoundRobin()
	if res := run(t, cfg); res.Outputs[0] != "ghost" {
		t.Fatalf("control run persisted %v, want ghost", res.Outputs[0])
	}

	cfg, _ = build()
	r := chaos.NewReport(1)
	cfg.Scheduler = chaos.NewCrashRestart(sim.NewRoundRobin(), r, 0, 2, 3)
	res := run(t, cfg)
	if r.Crashes() != 1 || r.Restarts() != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", r.Crashes(), r.Restarts())
	}
	if res.Outputs[0] != nil {
		t.Fatalf("crashed run persisted %v, want nil (staged write must be lost)", res.Outputs[0])
	}
}

// tasProbe is the shared shape of the idempotence contrast: race, then
// two padding steps that give the adversary a crash window, then report
// the race's answer (re-run from the top after a restart).
func tasProbe(tas func(ctx *sim.Ctx) int, pad registers.Ref) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		r := tas(ctx)
		pad.Read(ctx)
		pad.Read(ctx)
		return r
	}
}

// TestTASIdempotentAcrossIncarnations: the recoverable test-and-set
// re-answers 0 to a restarted winner; the plain one misreports it as a
// loser. Identical programs and schedule, only the object differs.
func TestTASIdempotentAcrossIncarnations(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  bool
		want int // restarted winner's final answer
	}{
		{"recoverable", true, 0},
		{"plain", false, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			objects := map[string]sim.Object{"pad": registers.New(nil)}
			var race func(ctx *sim.Ctx) int
			if tc.rec {
				objects["T"] = recoverable.NewTestAndSet()
				ref := recoverable.TASRef{Name: "T"}
				race = ref.TAS
			} else {
				objects["T"] = plainTAS()
				race = func(ctx *sim.Ctx) int { return ctx.Invoke("T", "tas").(int) }
			}
			pad := registers.Ref{Name: "pad"}
			r := chaos.NewReport(1)
			// P0 wins, crashes mid-padding, P1 races and loses, P0 re-runs.
			sched := chaos.NewCrashRestart(
				&sim.Fixed{Order: []int{0, 0}, Fallback: sim.NewRoundRobin()}, r, 0, 2, 50)
			res := run(t, sim.Config{
				Objects:   objects,
				Programs:  []sim.Program{tasProbe(race, pad), tasProbe(race, pad)},
				Scheduler: sched,
			})
			if r.Crashes() != 1 {
				t.Fatalf("crashes = %d, want 1", r.Crashes())
			}
			if got := res.Outputs[0]; got != tc.want {
				t.Fatalf("restarted winner's answer = %v, want %d", got, tc.want)
			}
			if got := res.Outputs[1]; got != 1 {
				t.Fatalf("second process's answer = %v, want 1 (it lost the race)", got)
			}
		})
	}
}

// plainTAS is the crash-stop test-and-set, inlined to keep the contrast
// self-contained: once set it answers 1 to everyone, the winner
// included.
func plainTAS() sim.Object { return &flagTAS{} }

type flagTAS struct{ set bool }

func (f *flagTAS) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	if inv.Op != "tas" {
		panic(fmt.Sprintf("unknown op %q", inv.Op))
	}
	if f.set {
		return sim.Respond(1)
	}
	f.set = true
	return sim.Respond(0)
}

// TestWRNExactlyOnceUnderRepeatedCrashes: a recoverable WRN operation
// mutates the durable cells exactly once no matter how many times its
// process is crashed and restarted — including crashes that land inside
// the recovery procedure itself.
func TestWRNExactlyOnceUnderRepeatedCrashes(t *testing.T) {
	objects := map[string]sim.Object{"pad": registers.New(nil)}
	w := recoverable.NewWRN(objects, "W", 2)
	pad := registers.Ref{Name: "pad"}
	mk := func(id int) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			r := w.WRN(ctx, id, id, id+1)
			pad.Read(ctx)
			pad.Read(ctx)
			return r
		}
	}
	rep := chaos.NewReport(1)
	res := run(t, sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{mk(0), mk(1)},
		Scheduler: chaos.NewRepeatedCrashRestart(sim.NewRoundRobin(), rep, 0, 2, 2, 2),
		Recovery:  w.Recovery(func(proc int) int { return proc }),
	})
	if !res.AllDone() {
		t.Fatalf("statuses = %v, want all done", res.Status)
	}
	if rep.Crashes() != 2 || rep.Restarts() != 2 {
		t.Fatalf("crashes=%d restarts=%d, want 2/2", rep.Crashes(), rep.Restarts())
	}
	for opid := 0; opid < 2; opid++ {
		if n := w.Core().ApplyCount(opid); n != 1 {
			t.Errorf("operation %d applied %d times, want exactly once", opid, n)
		}
	}
	// The victim's durable apply step must appear exactly once in the
	// trace: later incarnations are served by the cache or the journal.
	applies := 0
	for _, e := range res.Trace.Events {
		if e.Kind == sim.EventStep && e.Proc == 0 && e.Object == "W.core" && e.Op == "apply" {
			applies++
		}
	}
	if applies != 1 {
		t.Errorf("victim took %d core apply steps, want 1", applies)
	}
	// Outputs must form one of the two legal WRN_2 linearizations.
	got := fmt.Sprint(res.Outputs[0], res.Outputs[1])
	first := fmt.Sprint(wrn.Bottom, 1)  // P0's apply linearized first
	second := fmt.Sprint(2, wrn.Bottom) // P1's apply linearized first
	if got != first && got != second {
		t.Errorf("outputs %s match no WRN_2 linearization (%s or %s)", got, first, second)
	}
}

// recrashInjector drives back-to-back crashes: the victim is crashed
// each time the step counter reaches the next threshold in crashAt and
// restarted in the immediately following fault round. Equal consecutive
// thresholds re-crash the restarted process before it takes a single
// step, so the crash lands inside the recovery procedure itself.
type recrashInjector struct {
	inner   sim.Scheduler
	victim  int
	crashAt []int
	next    int
}

func (r *recrashInjector) Next(v sim.View) int { return r.inner.Next(v) }

func (r *recrashInjector) Faults(v sim.View) []sim.Fault {
	if v.CrashedSet(r.victim) {
		return []sim.Fault{{Proc: r.victim, Kind: sim.FaultRestart}}
	}
	if r.next < len(r.crashAt) && v.Step >= r.crashAt[r.next] && v.EnabledSet(r.victim) {
		r.next++
		return []sim.Fault{{Proc: r.victim, Kind: sim.FaultCrash}}
	}
	return nil
}

// TestWRNJournalReplayAcrossBackToBackCrashes crashes the same in-flight
// WRN operation three times under one operation id — once right after
// the durable commit point, then again with zero intervening steps (the
// restarted recovery's first invocation is wiped before it applies), and
// once more mid-recovery — and audits that the journal replay answers
// every later incarnation without re-mutating the cells: ApplyCount
// stays exactly one, the trace carries a single core apply step, and the
// final response equals the journaled one.
func TestWRNJournalReplayAcrossBackToBackCrashes(t *testing.T) {
	objects := map[string]sim.Object{}
	w := recoverable.NewWRN(objects, "W", 2)
	prog := func(ctx *sim.Ctx) sim.Value {
		return w.WRN(ctx, 0, 0, 7)
	}
	// Step 0 is the cache get, step 1 the core apply (the durable commit
	// point). crashAt {2, 2, 3}: the first crash wipes the pending cache
	// put; the second hits the restarted recovery before its first
	// invocation applies; the third lands after recovery's "applied" step
	// with "lookup" pending. Incarnation 3 then runs recovery to
	// completion and re-runs the program, which the cache answers.
	res := run(t, sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{prog},
		Scheduler: &recrashInjector{inner: sim.NewRoundRobin(), victim: 0, crashAt: []int{2, 2, 3}},
		Recovery:  w.Recovery(func(proc int) int { return 0 }),
	})
	if !res.AllDone() {
		t.Fatalf("statuses = %v, want all done", res.Status)
	}
	if got := res.Restarts[0]; got != 3 {
		t.Fatalf("restarts = %d, want 3 (one per crash)", got)
	}
	if n := w.Core().ApplyCount(0); n != 1 {
		t.Errorf("operation 0 mutated the cells %d times across 4 incarnations, want exactly once", n)
	}
	applies, crashes := 0, 0
	for _, e := range res.Trace.Events {
		switch {
		case e.Kind == sim.EventStep && e.Object == "W.core" && e.Op == "apply":
			applies++
		case e.Kind == sim.EventCrash:
			crashes++
		}
	}
	if applies != 1 || crashes != 3 {
		t.Errorf("trace has %d core apply steps and %d crashes, want 1 and 3\n%s", applies, crashes, res.Trace)
	}
	// The operation read A[1] before any write: the journaled response,
	// replayed to every incarnation, is ⊥.
	if !wrn.IsBottom(res.Outputs[0]) {
		t.Errorf("replayed response = %v, want ⊥ (the journaled original)", res.Outputs[0])
	}
	if got := w.Core().Cells()[0]; got != 7 {
		t.Errorf("cell 0 = %v, want 7 (the committed write survived every crash)", got)
	}
}

// protocolBuilder is the common signature of the four E20 builders.
type protocolBuilder func(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program

// runProtocol executes one 2-consensus protocol with process 0 running
// solo until a crash at step crashAt, the survivor then running to
// completion, and the victim restarting last.
func runProtocol(t *testing.T, build protocolBuilder, crashAt int) (*sim.Result, *chaos.Report) {
	t.Helper()
	objects := map[string]sim.Object{}
	progs := build(objects, "c", "a", "b")
	r := chaos.NewReport(int64(crashAt))
	sched := chaos.NewCrashRestart(
		&sim.Fixed{Order: []int{0, 0, 0, 0, 0, 0}, Fallback: sim.NewRoundRobin()},
		r, 0, crashAt, 50)
	res := run(t, sim.Config{Objects: objects, Programs: progs, Scheduler: sched})
	if !res.AllDone() {
		t.Fatalf("crashAt %d: statuses = %v, want all done", crashAt, res.Status)
	}
	return res, r
}

// TestProtocolsPlainDisagreeRecoverableAgree is E20 in miniature: under
// a crash-at-every-point sweep of the same schedule shape, the plain
// test-and-set and WRN_2 protocols each have a crash point that produces
// disagreement, while their recoverable counterparts agree at every
// crash point. The protocol shape is identical; only the racing object
// differs.
func TestProtocolsPlainDisagreeRecoverableAgree(t *testing.T) {
	sweep := func(t *testing.T, build protocolBuilder) (disagreements, crashes int) {
		for crashAt := 0; crashAt <= 8; crashAt++ {
			res, r := runProtocol(t, build, crashAt)
			crashes += r.Crashes()
			if res.Outputs[0] != res.Outputs[1] {
				disagreements++
			}
		}
		return disagreements, crashes
	}
	for _, tc := range []struct {
		name  string
		plain protocolBuilder
		rec   protocolBuilder
	}{
		{"tas", recoverable.TwoConsFromPlainTAS, recoverable.TwoConsFromRecTAS},
		{"wrn2", recoverable.TwoConsFromPlainWRN2, recoverable.TwoConsFromRecWRN2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if d, _ := sweep(t, tc.plain); d == 0 {
				t.Errorf("plain %s protocol agreed at every crash point; expected a disagreement", tc.name)
			}
			d, c := sweep(t, tc.rec)
			if d != 0 {
				t.Errorf("recoverable %s protocol disagreed at %d crash points, want 0", tc.name, d)
			}
			if c == 0 {
				t.Errorf("recoverable %s sweep never crashed; the agreement check is vacuous", tc.name)
			}
		})
	}
}
