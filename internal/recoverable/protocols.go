package recoverable

import (
	"detobj/internal/consensus"
	"detobj/internal/registers"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// E20's calibration protocols: 2-process consensus from a racing object,
// written once in a restart-aware shape and instantiated four times —
// plain test-and-set, recoverable test-and-set, plain WRN_2, recoverable
// WRN_2. The shape is the standard recoverable-consensus recipe:
//
//	if d := dec[id].Read(ctx); d != nil { return d }   // restart prefix
//	props[id].Write(ctx, v)                            // publish
//	win := race(ctx)                                   // the object step
//	d := v or props[1-id].Read(ctx)                    // keep or adopt
//	dec[id].Write(ctx, d)                              // durable decision
//	return d
//
// The decision and proposal registers are plain simulator objects and
// hence durable (only sim.Recoverable objects lose state at a crash), so
// every difference in verdict between the four instantiations is
// attributable to the racing object alone. Under full persistence (or no
// crashes at all) all four agree in every execution. Under amnesiac
// restart the plain objects break: a winner that crashes between the
// race and the decision write re-runs the race and is told it lost —
// plain test-and-set answers 1 to everyone once set, and a re-applied
// WRN_2 step reads the other process's later cell write instead of its
// original ⊥ — so both processes adopt each other's proposal and
// disagree. The recoverable variants survive the same schedules: the
// recoverable test-and-set durably records the winner's identity and
// re-answers 0 to it, and the recoverable WRN_2's journal replays the
// original ⊥ response instead of re-executing the step. That asymmetry
// is the consensus-power drop of Ovens 2024, and cmd/modelcheck -exp e20
// checks all four columns exhaustively.

// twoConsDecisionDurable builds the shared restart-aware protocol shape
// around a racing step; race reports whether the caller won.
func twoConsDecisionDurable(objects map[string]sim.Object, name string, v0, v1 sim.Value,
	race func(ctx *sim.Ctx, id int) bool) []sim.Program {
	props := registers.AddRegisterArray(objects, name+".prop", 2, nil)
	dec := registers.AddRegisterArray(objects, name+".dec", 2, nil)
	mk := func(id int, v sim.Value) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			if d := dec[id].Read(ctx); d != nil {
				return d
			}
			props[id].Write(ctx, v)
			var d sim.Value
			if race(ctx, id) {
				d = v
			} else {
				d = props[1-id].Read(ctx)
			}
			dec[id].Write(ctx, d)
			return d
		}
	}
	return []sim.Program{mk(0, v0), mk(1, v1)}
}

// TwoConsFromPlainTAS instantiates the shape with the crash-stop
// test-and-set of internal/consensus. Correct without restarts; breaks
// under amnesiac restart (the win/lose answer is unrecoverable).
func TwoConsFromPlainTAS(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	objects[name+".tas"] = consensus.NewTestAndSet()
	ts := consensus.TASRef{Name: name + ".tas"}
	return twoConsDecisionDurable(objects, name, v0, v1, func(ctx *sim.Ctx, id int) bool {
		return ts.TAS(ctx) == 0
	})
}

// TwoConsFromRecTAS instantiates the shape with the recoverable
// test-and-set: the durable winner record makes the race idempotent per
// process, so the protocol also survives amnesiac restarts.
func TwoConsFromRecTAS(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	objects[name+".tas"] = NewTestAndSet()
	ts := TASRef{Name: name + ".tas"}
	return twoConsDecisionDurable(objects, name, v0, v1, func(ctx *sim.Ctx, id int) bool {
		return ts.TAS(ctx) == 0
	})
}

// TwoConsFromPlainWRN2 instantiates the shape with the paper's plain
// WRN_2 (internal/wrn). Correct without restarts; breaks under amnesiac
// restart (re-applying the single WRN step reads the other process's
// later write instead of the original ⊥).
func TwoConsFromPlainWRN2(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	objects[name+".wrn"] = wrn.New(2)
	w := wrn.Ref{Name: name + ".wrn"}
	return twoConsDecisionDurable(objects, name, v0, v1, func(ctx *sim.Ctx, id int) bool {
		return wrn.IsBottom(w.WRN(ctx, id, id+1))
	})
}

// TwoConsFromRecWRN2 instantiates the shape with the recoverable WRN_2:
// the journaled core replays the original response to a re-applied
// operation id, so the protocol also survives amnesiac restarts.
func TwoConsFromRecWRN2(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	w := NewWRN(objects, name+".wrn", 2)
	return twoConsDecisionDurable(objects, name, v0, v1, func(ctx *sim.Ctx, id int) bool {
		return wrn.IsBottom(w.WRN(ctx, id, id, id+1))
	})
}
