package recoverable

import (
	"fmt"

	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// Recoverable WRN_k: the paper's WriteAndReadNext object made safe for
// amnesiac crash-restart. The construction follows the standard
// journaled-operation recipe of the recoverable-objects literature:
//
//   - A durable core (WRNCore) holds the k cells together with a
//     per-process journal of the last applied operation id and its
//     response, written in the same atomic step as the cell update. The
//     journal makes "apply" idempotent per operation id: re-applying a
//     journaled operation returns the recorded response without
//     touching the cells.
//   - A volatile per-process response cache (a Scratch) short-circuits
//     re-reads of a completed operation's response without going back
//     to the core. A crash wipes it.
//   - The recovery procedure (WRN.Recovery) re-derives the volatile
//     cache from the durable journal: if the interrupted operation is
//     journaled it completed, so the recorded response is restored to
//     the cache; otherwise the operation never applied and the re-run
//     program simply performs it again.
//
// Operation ids let the journal distinguish "this exact operation
// already applied" from "some earlier operation by this process
// applied"; callers choose them (one-shot workloads conventionally use
// the process id).

// WRNCore is the durable half of the recoverable WRN_k: cells plus the
// per-process operation journal, updated atomically.
//
//detlint:journaled apply commits cell mutation and (opid, response) journal record in one atomic step
type WRNCore struct {
	k     int         //detlint:durable the arity is configuration, fixed at construction
	cells []sim.Value //detlint:durable the shared cells are the non-volatile memory the model posits
	//detlint:journal per proc: last applied operation id — the write-ahead commit record
	lastOp map[int]int //detlint:durable a journal the crash wipes cannot make apply idempotent
	//detlint:journal per proc: the recorded response a re-invocation replays
	lastResp map[int]sim.Value //detlint:durable the re-invocation answer must survive the restart it serves
	applies  map[int]int       //detlint:durable audit counter: times each op id actually mutated the cells, across all incarnations
}

// NewWRNCore returns a fresh durable core with k cells at ⊥.
//
//detlint:allow facadeparity the core is an internal half of the construction; callers go through NewWRN / api.NewRecoverableWRN, which registers the core under name+".core"
func NewWRNCore(k int) *WRNCore {
	if k < 2 {
		panic(fmt.Sprintf("recoverable: WRN k = %d, need k >= 2", k))
	}
	cells := make([]sim.Value, k)
	for i := range cells {
		cells[i] = wrn.Bottom
	}
	return &WRNCore{
		k:        k,
		cells:    cells,
		lastOp:   make(map[int]int),
		lastResp: make(map[int]sim.Value),
		applies:  make(map[int]int),
	}
}

// K returns the core's arity.
func (c *WRNCore) K() int { return c.k }

// Cells returns a copy of the durable cell contents.
func (c *WRNCore) Cells() []sim.Value {
	out := make([]sim.Value, c.k)
	copy(out, c.cells)
	return out
}

// ApplyCount returns how many times operation opid actually mutated the
// cells — exactly once for any completed recoverable operation,
// regardless of how many crash-restart re-invocations it survived.
func (c *WRNCore) ApplyCount(opid int) int { return c.applies[opid] }

// Apply implements sim.Object:
//
//	"apply"(opid, i, v): if this process's journal already records opid,
//	    return the recorded response (idempotent re-invocation after a
//	    restart). Otherwise A[i] ← v, journal (opid, previous A[(i+1)
//	    mod k]) for this process, and return that response — one atomic
//	    step covering both cell and journal, the durable commit point.
//	"applied"(opid): whether this process's journal records opid.
//	"lookup"(opid): the journaled response for opid (the recovery read;
//	    ⊥ if not journaled).
func (c *WRNCore) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "apply":
		opid, i, v := c.validate(inv)
		if last, ok := c.lastOp[env.Proc]; ok && last == opid {
			return sim.Respond(c.lastResp[env.Proc])
		}
		r := c.cells[(i+1)%c.k]
		c.cells[i] = v
		c.applies[opid]++
		c.lastOp[env.Proc] = opid
		c.lastResp[env.Proc] = r
		return sim.Respond(r)
	case "applied":
		opid, ok := inv.Arg(0).(int)
		if !ok {
			panic("recoverable: applied needs an int op id")
		}
		last, journaled := c.lastOp[env.Proc]
		return sim.Respond(journaled && last == opid)
	case "lookup":
		opid, ok := inv.Arg(0).(int)
		if !ok {
			panic("recoverable: lookup needs an int op id")
		}
		if last, journaled := c.lastOp[env.Proc]; journaled && last == opid {
			return sim.Respond(c.lastResp[env.Proc])
		}
		return sim.Respond(wrn.Bottom)
	}
	panic(fmt.Sprintf("recoverable: unknown WRN core operation %q", inv.Op))
}

func (c *WRNCore) validate(inv sim.Invocation) (opid, i int, v sim.Value) {
	opid, ok := inv.Arg(0).(int)
	if !ok {
		panic("recoverable: apply needs an int op id")
	}
	i, ok = inv.Arg(1).(int)
	if !ok || i < 0 || i >= c.k {
		panic(fmt.Sprintf("recoverable: apply index %v out of range [0,%d)", inv.Arg(1), c.k))
	}
	v = inv.Arg(2)
	if v == nil || wrn.IsBottom(v) {
		panic("recoverable: apply of ⊥ or nil value")
	}
	return opid, i, v
}

// OnCrash implements sim.Recoverable as a no-op: cells and journal are
// the durable half of the construction by design.
func (c *WRNCore) OnCrash(proc int) {}

// cacheEntry is the volatile response-cache record: which operation the
// process last completed and what it returned. Comparable, so checkers
// can == it.
type cacheEntry struct {
	opid int
	resp sim.Value
}

// WRN is the process-facing recoverable WRN_k handle. It is a value
// type holding only object names and the core pointer for inspection;
// all run state lives in the registered objects.
type WRN struct {
	k       int
	name    string
	core    *WRNCore
	coreRef string
	cache   string
}

// NewWRN registers a recoverable WRN_k's shared objects — the durable
// core under name+".core" and the volatile response cache under
// name+".cache" — and returns the handle.
func NewWRN(objects map[string]sim.Object, name string, k int) WRN {
	core := NewWRNCore(k)
	objects[name+".core"] = core
	objects[name+".cache"] = NewScratch()
	return WRN{k: k, name: name, core: core, coreRef: name + ".core", cache: name + ".cache"}
}

// K returns the object's arity.
func (w WRN) K() int { return w.k }

// Name returns the registration prefix.
func (w WRN) Name() string { return w.name }

// Core returns the durable core, for inspection in tests and drivers.
func (w WRN) Core() *WRNCore { return w.core }

// WRN performs the recoverable WRN(i, v) under operation id opid:
// consult the volatile cache, apply through the journaled core
// (idempotent under re-invocation after a restart), cache the response.
// Safe to re-run from the top in any incarnation.
func (w WRN) WRN(ctx *sim.Ctx, opid, i int, v sim.Value) sim.Value {
	if c := ctx.Invoke(w.cache, "get"); c != nil {
		if e := c.(cacheEntry); e.opid == opid {
			return e.resp
		}
	}
	r := ctx.Invoke(w.coreRef, "apply", opid, i, v)
	ctx.Invoke(w.cache, "put", cacheEntry{opid: opid, resp: r})
	return r
}

// Recovery returns the recovery procedure (for sim.Config.Recovery)
// that re-derives the volatile response cache from the durable journal:
// opidOf names the operation id a given process may have had in flight.
// If the journal records it, the operation completed before the crash
// and its response is restored to the cache; otherwise the crash hit
// before the commit point and the re-run program performs the operation
// afresh.
func (w WRN) Recovery(opidOf func(proc int) int) sim.RecoveryProc {
	return func(ctx *sim.Ctx) {
		opid := opidOf(ctx.ID())
		if ctx.Invoke(w.coreRef, "applied", opid).(bool) {
			r := ctx.Invoke(w.coreRef, "lookup", opid)
			ctx.Invoke(w.cache, "put", cacheEntry{opid: opid, resp: r})
		}
	}
}
