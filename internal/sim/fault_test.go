package sim

import (
	"errors"
	"reflect"
	"testing"
)

// testDurableCell is a Recoverable register: a durable value plus a volatile
// per-process staging slot ("stage" buffers, "flush" commits durably). It
// also keeps a durable log of values passed to "note", which recovery
// procedures in these tests use to report what they observed.
type testDurableCell struct {
	durable Value
	staged  map[int]Value
	notes   []Value
}

func (c *testDurableCell) Apply(env *Env, inv Invocation) Response {
	switch inv.Op {
	case "stage":
		if c.staged == nil {
			c.staged = make(map[int]Value)
		}
		c.staged[env.Proc] = inv.Arg(0)
		return Respond(nil)
	case "flush":
		if v, ok := c.staged[env.Proc]; ok {
			c.durable = v
			delete(c.staged, env.Proc)
		}
		return Respond(c.durable)
	case "read":
		return Respond(c.durable)
	case "peek":
		return Respond(c.staged[env.Proc])
	case "note":
		c.notes = append(c.notes, inv.Arg(0))
		return Respond(nil)
	}
	return HangCaller()
}

func (c *testDurableCell) OnCrash(proc int) { delete(c.staged, proc) }

// scriptInjector crashes victim once crashAt is reached and restarts it
// window steps later (or immediately once no other process is enabled);
// noRestart crashes without ever restarting.
type scriptInjector struct {
	inner     Scheduler
	victim    int
	crashAt   int
	window    int
	noRestart bool

	crashed   bool
	restarted bool
	crashStep int
}

func (s *scriptInjector) Next(v View) int { return s.inner.Next(v) }

func (s *scriptInjector) Faults(v View) []Fault {
	if !s.crashed && v.Step >= s.crashAt && v.EnabledSet(s.victim) {
		s.crashed = true
		s.crashStep = v.Step
		return []Fault{{Proc: s.victim, Kind: FaultCrash}}
	}
	if s.crashed && !s.restarted && !s.noRestart && v.CrashedSet(s.victim) &&
		(v.Step >= s.crashStep+s.window || len(v.Enabled) == 0) {
		s.restarted = true
		return []Fault{{Proc: s.victim, Kind: FaultRestart}}
	}
	return nil
}

func stageFlushRead(v int) Program {
	return func(ctx *Ctx) Value {
		ctx.Invoke("C", "stage", v)
		ctx.Invoke("C", "flush")
		return ctx.Invoke("C", "read")
	}
}

func TestCrashWipesVolatileStateAndRecoveryRuns(t *testing.T) {
	cell := &testDurableCell{}
	cfg := Config{
		Objects:  map[string]Object{"C": cell},
		Programs: []Program{stageFlushRead(42)},
		// After "stage" applies (step 0) the pending "flush" is wiped by
		// the crash at step 1; the lone-process truncation restarts
		// immediately.
		Scheduler: &scriptInjector{inner: NewRoundRobin(), victim: 0, crashAt: 1, window: 100},
		Recovery: func(ctx *Ctx) {
			ctx.Invoke("C", "note", ctx.Invoke("C", "peek"))
		},
		VerifyReplay: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllDone() {
		t.Fatalf("statuses = %v, want all done", res.Status)
	}
	if res.Outputs[0] != 42 {
		t.Errorf("output = %v, want 42 (program re-ran after restart)", res.Outputs[0])
	}
	if !reflect.DeepEqual(res.Restarts, []int{1}) {
		t.Errorf("restarts = %v, want [1]", res.Restarts)
	}
	// The staged slot was volatile: recovery's peek must have seen nil.
	if len(cell.notes) != 1 || cell.notes[0] != nil {
		t.Errorf("recovery notes = %v, want [<nil>] (staged value wiped)", cell.notes)
	}
	var kinds []EventKind
	for _, e := range res.Trace.Events {
		kinds = append(kinds, e.Kind)
	}
	// stage, crash(wiping flush), restart, note-recovery (peek+note),
	// then the full re-run.
	want := []EventKind{EventStep, EventCrash, EventRestart, EventStep, EventStep, EventStep, EventStep, EventStep}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v, want %v\n%s", kinds, want, res.Trace)
	}
	if e := res.Trace.Events[1]; e.Op != "flush" {
		t.Errorf("crash wiped %q, want the pending flush\n%s", e.Op, res.Trace)
	}
	if e := res.Trace.Events[2]; e.Out != 1 {
		t.Errorf("restart incarnation = %v, want 1", e.Out)
	}
}

// recrashInjector crashes its victim each time the step counter reaches
// the next threshold in crashAt (in order), restarting it immediately in
// the following fault round. Consecutive equal thresholds crash the
// restarted process again before it takes a single step — a crash
// during the recovery procedure itself.
type recrashInjector struct {
	inner   Scheduler
	victim  int
	crashAt []int
	next    int
}

func (r *recrashInjector) Next(v View) int { return r.inner.Next(v) }

func (r *recrashInjector) Faults(v View) []Fault {
	if v.CrashedSet(r.victim) {
		return []Fault{{Proc: r.victim, Kind: FaultRestart}}
	}
	if r.next < len(r.crashAt) && v.Step >= r.crashAt[r.next] && v.EnabledSet(r.victim) {
		r.next++
		return []Fault{{Proc: r.victim, Kind: FaultCrash}}
	}
	return nil
}

// TestCrashDuringRecoveryRestartsRecoveryFromTop pins the nesting
// semantics of a fault landing while a RecoveryProc is mid-flight: the
// pending recovery invocation is wiped exactly like a program
// invocation, the next incarnation runs the recovery procedure again
// from the top, and nothing of the interrupted recovery survives except
// what it already committed durably. Recovery is not atomic — it is
// ordinary lockstep code — and must itself be written idempotently.
func TestCrashDuringRecoveryRestartsRecoveryFromTop(t *testing.T) {
	cell := &testDurableCell{}
	cfg := Config{
		Objects:  map[string]Object{"C": &testDurableCell{}, "D": cell},
		Programs: []Program{stageFlushRead(42)},
		// Step 0 applies "stage"; the crash at step 1 wipes the pending
		// "flush". Incarnation 1's recovery notes its incarnation (step 1)
		// and is then crashed with its "peek" pending — mid-recovery.
		// Incarnation 2 re-runs recovery from the top, completes it, and
		// re-runs the program.
		Scheduler: &recrashInjector{inner: NewRoundRobin(), victim: 0, crashAt: []int{1, 2}},
		Recovery: func(ctx *Ctx) {
			ctx.Invoke("D", "note", ctx.Incarnation())
			ctx.Invoke("D", "peek")
		},
		VerifyReplay: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllDone() {
		t.Fatalf("statuses = %v, want all done", res.Status)
	}
	if res.Outputs[0] != 42 {
		t.Errorf("output = %v, want 42 (program re-ran after the second restart)", res.Outputs[0])
	}
	if !reflect.DeepEqual(res.Restarts, []int{2}) {
		t.Errorf("restarts = %v, want [2]", res.Restarts)
	}
	// Each incarnation's recovery entered from the top: the durable note
	// log shows incarnation 1 (interrupted after its first step) and then
	// incarnation 2 (which ran to completion).
	if want := []Value{1, 2}; !reflect.DeepEqual(cell.notes, want) {
		t.Errorf("recovery notes = %v, want %v (recovery re-runs from the top)", cell.notes, want)
	}
	var kinds []EventKind
	for _, e := range res.Trace.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{
		EventStep,    // stage
		EventCrash,   // wipes pending flush
		EventRestart, // incarnation 1
		EventStep,    // recovery: note(1)
		EventCrash,   // mid-recovery: wipes pending peek
		EventRestart, // incarnation 2
		EventStep,    // recovery: note(2)
		EventStep,    // recovery: peek
		EventStep,    // stage
		EventStep,    // flush
		EventStep,    // read
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v, want %v\n%s", kinds, want, res.Trace)
	}
	// The second crash's wiped invocation is the recovery's own pending
	// step, recorded like any other.
	if e := res.Trace.Events[4]; e.Object != "D" || e.Op != "peek" {
		t.Errorf("mid-recovery crash wiped %s.%q, want D.\"peek\"\n%s", e.Object, e.Op, res.Trace)
	}
	if e := res.Trace.Events[5]; e.Out != 2 {
		t.Errorf("second restart incarnation = %v, want 2", e.Out)
	}
}

func TestCrashWithoutRestartEndsCrashed(t *testing.T) {
	cfg := Config{
		Objects:      map[string]Object{"C": &testDurableCell{}},
		Programs:     []Program{stageFlushRead(1), stageFlushRead(2)},
		Scheduler:    &scriptInjector{inner: NewRoundRobin(), victim: 0, crashAt: 2, noRestart: true},
		VerifyReplay: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Status[0] != StatusCrashed || res.Status[1] != StatusDone {
		t.Fatalf("statuses = %v, want [crashed done]", res.Status)
	}
	if res.Outputs[0] != nil {
		t.Errorf("crashed process produced output %v", res.Outputs[0])
	}
	if !reflect.DeepEqual(res.Restarts, []int{0, 0}) {
		t.Errorf("restarts = %v, want [0 0]", res.Restarts)
	}
}

func TestIncarnationVisibleToPrograms(t *testing.T) {
	cfg := Config{
		Objects: map[string]Object{"C": &testDurableCell{}},
		Programs: []Program{func(ctx *Ctx) Value {
			ctx.Invoke("C", "stage", ctx.ID())
			ctx.Invoke("C", "flush")
			return ctx.Incarnation()
		}},
		Scheduler:    &scriptInjector{inner: NewRoundRobin(), victim: 0, crashAt: 1, window: 0},
		VerifyReplay: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[0] != 1 {
		t.Errorf("output = %v, want incarnation 1", res.Outputs[0])
	}
}

func TestBadFaultDirectives(t *testing.T) {
	// Crashing a process that already finished is rejected.
	_, err := Run(Config{
		Objects:   map[string]Object{"C": &testDurableCell{}},
		Programs:  []Program{stageFlushRead(1)},
		Scheduler: Func(func(v View) int { return v.Enabled[0] }),
	})
	if err != nil {
		t.Fatalf("baseline Run: %v", err)
	}
	for name, faults := range map[string][]Fault{
		"crash out of range":     {{Proc: 7, Kind: FaultCrash}},
		"restart of non-crashed": {{Proc: 0, Kind: FaultRestart}},
		"unknown kind":           {{Proc: 0, Kind: FaultKind(9)}},
	} {
		fs := faults
		inj := &onceInjector{faults: fs}
		_, err := Run(Config{
			Objects:   map[string]Object{"C": &testDurableCell{}},
			Programs:  []Program{stageFlushRead(1)},
			Scheduler: inj,
		})
		if !errors.Is(err, ErrBadFault) {
			t.Errorf("%s: err = %v, want ErrBadFault", name, err)
		}
	}
}

// onceInjector issues its batch on the first Faults call, then schedules
// round-robin.
type onceInjector struct {
	faults []Fault
	fired  bool
	rr     RoundRobin
}

func (o *onceInjector) Next(v View) int { return o.rr.Next(v) }

func (o *onceInjector) Faults(v View) []Fault {
	if o.fired {
		return nil
	}
	o.fired = true
	return o.faults
}

// thrashInjector crashes and restarts process 0 forever without ever
// letting it run; the fault budget must stop the run.
type thrashInjector struct{ rr RoundRobin }

func (th *thrashInjector) Next(v View) int { return th.rr.Next(v) }

func (th *thrashInjector) Faults(v View) []Fault {
	if v.EnabledSet(0) {
		return []Fault{{Proc: 0, Kind: FaultCrash}}
	}
	if v.CrashedSet(0) {
		return []Fault{{Proc: 0, Kind: FaultRestart}}
	}
	return nil
}

func TestFaultBudgetBoundsCrashRestartLoops(t *testing.T) {
	_, err := Run(Config{
		Objects:   map[string]Object{"C": &testDurableCell{}},
		Programs:  []Program{stageFlushRead(1)},
		Scheduler: &thrashInjector{},
		MaxSteps:  64,
	})
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps from the fault budget", err)
	}
}

// namedRecoverable records OnCrash callbacks into a shared log to observe
// callback order.
type namedRecoverable struct {
	name string
	log  *[]string
}

func (n *namedRecoverable) Apply(_ *Env, inv Invocation) Response { return Respond(nil) }
func (n *namedRecoverable) OnCrash(proc int)                      { *n.log = append(*n.log, n.name) }

func TestOnCrashRunsInSortedNameOrder(t *testing.T) {
	var log []string
	objs := map[string]Object{
		"zeta":  &namedRecoverable{name: "zeta", log: &log},
		"alpha": &namedRecoverable{name: "alpha", log: &log},
		"mid":   &namedRecoverable{name: "mid", log: &log},
	}
	cfg := Config{
		Objects: objs,
		Programs: []Program{func(ctx *Ctx) Value {
			ctx.Invoke("alpha", "touch")
			return ctx.Invoke("mid", "touch")
		}},
		Scheduler: &scriptInjector{inner: NewRoundRobin(), victim: 0, crashAt: 1, window: 0},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("OnCrash order = %v, want %v", log, want)
	}
}

func TestCrashRestartDeterministicTrace(t *testing.T) {
	run := func() string {
		cfg := Config{
			Objects:  map[string]Object{"C": &testDurableCell{}},
			Programs: []Program{stageFlushRead(10), stageFlushRead(20), stageFlushRead(30)},
			Scheduler: &scriptInjector{
				inner: NewRandom(7), victim: 1, crashAt: 3, window: 4,
			},
			VerifyReplay: true,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Trace.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("crash-restart run not reproducible:\n--- first\n%s--- second\n%s", a, b)
	}
}

func TestReplayCatchesStateSmuggledAcrossIncarnations(t *testing.T) {
	// The program routes state through a closure variable instead of a
	// durable object; incarnations observe different values, so the
	// post-run replay (which re-executes each incarnation with the same
	// closure) must diverge.
	calls := 0
	cfg := Config{
		Objects: map[string]Object{"C": &testDurableCell{}},
		Programs: []Program{func(ctx *Ctx) Value {
			calls++
			if calls > 1 {
				return ctx.Invoke("C", "read")
			}
			ctx.Invoke("C", "stage", 1)
			ctx.Invoke("C", "flush")
			return ctx.Invoke("C", "read")
		}},
		Scheduler:    &scriptInjector{inner: NewRoundRobin(), victim: 0, crashAt: 1, window: 0},
		VerifyReplay: true,
	}
	_, err := Run(cfg)
	if !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("err = %v, want ErrReplayDivergence", err)
	}
}
