package sim

import (
	"errors"
	"testing"
)

func TestVerifyReplayCleanRun(t *testing.T) {
	cfg := Config{
		Objects:      map[string]Object{"C": &testCounter{}},
		Programs:     []Program{incThenRead(3), incThenRead(2)},
		VerifyReplay: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run with VerifyReplay: %v", err)
	}
	if !res.AllDone() {
		t.Fatalf("not all processes finished: %v", res.Status)
	}
}

func TestVerifyReplayMarksAndHang(t *testing.T) {
	// One process hangs (bounded object), the other finishes and records
	// logical-operation marks; replay must accept both shapes.
	cfg := Config{
		Objects: map[string]Object{"C": &testCounter{budget: 3}},
		Programs: []Program{
			func(ctx *Ctx) Value {
				ctx.BeginOp("L", "work")
				ctx.Invoke("C", "inc")
				v := ctx.Invoke("C", "read")
				ctx.EndOp("L", "work", v)
				return v
			},
			incThenRead(5), // exceeds the budget and hangs
		},
		Scheduler:    NewFixed(0, 0, 1, 1),
		VerifyReplay: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run with VerifyReplay: %v", err)
	}
	if res.Status[0] != StatusDone || res.Status[1] != StatusHung {
		t.Fatalf("statuses = %v %v, want done hung", res.Status[0], res.Status[1])
	}
}

func TestVerifyReplayStoppedRun(t *testing.T) {
	// A scheduler that stops mid-run leaves a pending invocation; replay
	// of the stopped process must accept the truncated trace.
	cfg := Config{
		Objects:      map[string]Object{"C": &testCounter{}},
		Programs:     []Program{incThenRead(4), incThenRead(4)},
		Scheduler:    NewFixed(0, 1, 0), // fallback Stop after three steps
		VerifyReplay: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run with VerifyReplay: %v", err)
	}
	if res.Status[0] != StatusStopped || res.Status[1] != StatusStopped {
		t.Fatalf("statuses = %v, want both stopped", res.Status)
	}
}

func TestVerifyReplayCatchesImpureProgram(t *testing.T) {
	// The program smuggles state across executions in a closure: the
	// first execution takes the "inc" branch, the replay takes "read".
	calls := 0
	cfg := Config{
		Objects: map[string]Object{"C": &testCounter{}},
		Programs: []Program{
			func(ctx *Ctx) Value {
				calls++
				if calls == 1 {
					return ctx.Invoke("C", "inc")
				}
				return ctx.Invoke("C", "read")
			},
		},
		VerifyReplay: true,
	}
	_, err := Run(cfg)
	if !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("Run = %v, want ErrReplayDivergence", err)
	}
}

func TestVerifyReplayCatchesImpureOutput(t *testing.T) {
	// Same invocations, different output on the second execution.
	calls := 0
	cfg := Config{
		Objects: map[string]Object{"C": &testCounter{}},
		Programs: []Program{
			func(ctx *Ctx) Value {
				ctx.Invoke("C", "inc")
				calls++
				return calls
			},
		},
		VerifyReplay: true,
	}
	_, err := Run(cfg)
	if !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("Run = %v, want ErrReplayDivergence", err)
	}
}

func TestVerifyReplayDisabledTraceIsNoop(t *testing.T) {
	// Without a trace there is nothing to replay against; the run must
	// succeed even for an impure program.
	calls := 0
	cfg := Config{
		Objects: map[string]Object{"C": &testCounter{}},
		Programs: []Program{
			func(ctx *Ctx) Value {
				ctx.Invoke("C", "inc")
				calls++
				return calls
			},
		},
		VerifyReplay: true,
		DisableTrace: true,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run with DisableTrace: %v", err)
	}
}
