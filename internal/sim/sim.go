// Package sim provides a deterministic, lockstep simulator for the standard
// asynchronous shared-memory model used in the paper: processes execute
// sequential programs and communicate only by applying atomic operations
// (steps) to shared objects. Exactly one process advances at a time; which
// one is chosen by a pluggable Scheduler. Runs are fully deterministic given
// the scheduler's decisions and the configuration seed, and every atomic
// step is recorded in a Trace that downstream checkers (task checkers, the
// linearizability checker, the model checker) consume.
//
// The simulator supports the paper's "hang the system in a manner that
// cannot be detected" semantics: an object may respond to an illegal or
// over-budget operation by parking the calling process forever. A run
// terminates when every process has either produced an output or been
// parked.
//
// Beyond the paper's crash-stop fault model, the simulator also supports
// deterministic crash-restart with volatile-state loss: schedulers that
// implement FaultInjector can crash a process (wiping its locals, its
// in-flight invocation and the volatile half of Recoverable objects) and
// later restart it through Config.Recovery. See fault.go for the model.
//
// # Concurrency contract
//
// Concurrent calls to Run are safe if and only if the Configs share no
// mutable state. The parallel engines (modelcheck.ExploreParallel, the
// -parallel seed sweeps) rely on exactly this, so the contract is:
//
//   - Objects, Scheduler, Choice and (if the scheduler implements it)
//     Observer instances belong to ONE run. They hold per-run state and
//     are driven without locking; never share an instance between
//     concurrent Runs. A Factory must build fresh instances per call.
//   - Programs are shared safely only when they are pure functions of
//     their Ctx: closures must not write captured variables. Capturing
//     loop variables or configuration constants by value is fine.
//   - The returned Result (including its Trace) is owned by the caller
//     and safe to read from any goroutine once Run returns.
package sim

import (
	"fmt"
	"strings"
)

// Value is the domain of object states, operation arguments and results.
// The library restricts itself to comparable values (ints, strings, small
// structs and arrays) so that checkers can compare them with ==.
type Value = any

// Invocation is a single operation request directed at a shared object.
type Invocation struct {
	// Op names the operation, e.g. "read", "write", "WRN", "propose".
	Op string
	// Args carries the operation's arguments, if any.
	Args []Value
}

// Arg returns the i-th argument, or nil if there is no such argument.
func (inv Invocation) Arg(i int) Value {
	if i < 0 || i >= len(inv.Args) {
		return nil
	}
	return inv.Args[i]
}

// String renders the invocation as op(a0, a1, ...). Traces render every
// step through here, so it must not allocate quadratically.
func (inv Invocation) String() string {
	if len(inv.Args) == 0 {
		return inv.Op + "()"
	}
	var b strings.Builder
	b.WriteString(inv.Op)
	b.WriteByte('(')
	for i, a := range inv.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprint(&b, a)
	}
	b.WriteByte(')')
	return b.String()
}

// Effect describes what happens to the calling process after an operation
// is applied to an object.
type Effect int

const (
	// Return delivers Response.Value to the caller, which then resumes.
	Return Effect = iota
	// Hang parks the calling process forever. No value is delivered and no
	// other process can observe that the hang occurred. This models the
	// paper's bounded-use and illegal-invocation semantics.
	Hang
)

// Response is the outcome of applying an Invocation to an Object.
type Response struct {
	Value  Value
	Effect Effect
}

// Respond builds a normal response carrying v.
func Respond(v Value) Response { return Response{Value: v} }

// HangCaller builds a response that parks the calling process forever.
func HangCaller() Response { return Response{Effect: Hang} }

// Env carries per-step context into Object.Apply. Nondeterministic objects
// draw their choices from Rand, which is seeded from Config.Seed so that
// whole runs remain reproducible.
type Env struct {
	// Proc is the id of the process applying the operation.
	Proc int
	// Step is the index of this atomic step within the run.
	Step int
	// Rand is a deterministic source for nondeterministic objects. It is
	// never nil during a run.
	Rand RandSource
}

// RandSource is the subset of math/rand used by nondeterministic objects.
// It is an interface so the model checker can substitute enumerated
// choices for random ones.
type RandSource interface {
	// Intn returns a value in [0, n). n must be > 0.
	Intn(n int) int
}

// Object is a shared object: a sequential state machine. The simulator
// serializes all access, so implementations are single-threaded and need
// no synchronization. Apply executes one atomic operation and returns its
// response; it must not retain inv.Args or env (the runtime rebuilds one
// Env in place per step).
type Object interface {
	Apply(env *Env, inv Invocation) Response
}

// ObjectFunc adapts a function to the Object interface, for small stateless
// or closure-based objects in tests.
type ObjectFunc func(env *Env, inv Invocation) Response

// Apply implements Object.
func (f ObjectFunc) Apply(env *Env, inv Invocation) Response { return f(env, inv) }

// Indexed builds the conventional name of the i-th object of an object
// array, e.g. Indexed("R", 3) == "R[3]".
func Indexed(name string, i int) string {
	return fmt.Sprintf("%s[%d]", name, i)
}
