package sim

import "math/rand"

// Stop is the sentinel a Scheduler returns to halt the run. All processes
// that still have pending invocations are marked StatusStopped and the run
// ends with whatever outputs have been produced so far. The model checker
// uses this to examine configurations in the middle of the execution tree.
const Stop = -1

// View is the information a Scheduler sees when choosing the next process
// to advance. Schedulers observe only which processes are enabled, never
// object state or pending operations: the adversary is strong (it controls
// timing completely) but it is the standard asynchronous adversary, not an
// omniscient one.
type View struct {
	// Step is the index of the step about to be scheduled.
	Step int
	// Enabled lists, in increasing order, the ids of processes that have a
	// pending invocation. It is never empty when Next is called and must
	// not be mutated.
	Enabled []int
	// Crashed lists, in increasing order, the ids of processes that were
	// crashed by a fault directive and not yet restarted (candidates for
	// FaultRestart). It is populated only when the run's scheduler
	// implements FaultInjector, and must not be mutated.
	Crashed []int
}

// EnabledSet reports whether process id is enabled in the view.
func (v View) EnabledSet(id int) bool {
	for _, e := range v.Enabled {
		if e == id {
			return true
		}
	}
	return false
}

// CrashedSet reports whether process id is crashed (and restartable) in the
// view.
func (v View) CrashedSet(id int) bool {
	for _, e := range v.Crashed {
		if e == id {
			return true
		}
	}
	return false
}

// Scheduler chooses which enabled process takes the next atomic step.
// Implementations must return either Stop or an id drawn from v.Enabled.
// A Scheduler instance belongs to one run: implementations may keep
// per-run state and are driven without locking (see the package
// comment's "Concurrency contract").
type Scheduler interface {
	Next(v View) int
}

// Observer is an optional interface for schedulers. A scheduler that
// implements it is shown every event the runtime records (steps,
// BeginOp/EndOp marks, and crash/restart events), in order, before its
// next Next call. This keeps
// the adversary within the standard asynchronous model — it observes
// only the public history of invocations and responses, never private
// object state — while letting it react to the *structure* of the
// history: the chaos adversaries use it to kill a process after it has
// begun a logical operation but before that operation responds.
// Observation is independent of Config.DisableTrace.
type Observer interface {
	Observe(e Event)
}

// Func adapts a plain function to the Scheduler interface.
type Func func(v View) int

// Next implements Scheduler.
func (f Func) Next(v View) int { return f(v) }

// RoundRobin schedules enabled processes cyclically, which yields the
// maximally interleaved "fair" execution. The zero value is ready to use.
type RoundRobin struct {
	last int
	init bool
}

// NewRoundRobin returns a fresh round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Next implements Scheduler: it picks the smallest enabled id strictly
// greater than the previously chosen one, wrapping around.
func (r *RoundRobin) Next(v View) int {
	if !r.init {
		r.init = true
		r.last = v.Enabled[0]
		return r.last
	}
	for _, e := range v.Enabled {
		if e > r.last {
			r.last = e
			return e
		}
	}
	r.last = v.Enabled[0]
	return r.last
}

// Random schedules uniformly at random among enabled processes using its
// own deterministic source, so a (seed, configuration) pair identifies a
// unique execution.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a random scheduler with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (r *Random) Next(v View) int {
	return v.Enabled[r.rng.Intn(len(v.Enabled))]
}

// Fixed replays a predetermined schedule: a sequence of process ids, one
// per step. Entries naming processes that are no longer enabled are
// skipped. When the schedule is exhausted the Fallback scheduler takes
// over; a nil Fallback halts the run (returns Stop), which is how the
// model checker inspects intermediate configurations.
type Fixed struct {
	Order    []int
	Fallback Scheduler

	pos int
}

// NewFixed returns a scheduler that replays order and then stops.
func NewFixed(order ...int) *Fixed { return &Fixed{Order: order} }

// Reset re-arms the scheduler to replay order from its start, reusing
// the receiver. The model checker's reduction layer replays thousands
// of schedule prefixes through one Fixed instance per engine run.
func (f *Fixed) Reset(order []int) {
	f.Order = order
	f.pos = 0
}

// Next implements Scheduler.
func (f *Fixed) Next(v View) int {
	for f.pos < len(f.Order) {
		id := f.Order[f.pos]
		f.pos++
		if v.EnabledSet(id) {
			return id
		}
	}
	if f.Fallback != nil {
		return f.Fallback.Next(v)
	}
	return Stop
}

// Priority always advances the enabled process that appears earliest in its
// preference order; processes absent from the order come last in id order.
// It models the adversary that runs one process solo as long as possible —
// the schedule used throughout the paper's solo-run arguments.
type Priority []int

// Next implements Scheduler.
func (p Priority) Next(v View) int {
	for _, id := range p {
		if v.EnabledSet(id) {
			return id
		}
	}
	return v.Enabled[0]
}

// Crashing wraps a scheduler and permanently withholds steps from the
// processes in Crashed — the crash-failure adversary. A wait-free
// algorithm must let every other process finish regardless of which
// subset crashes; crashed processes end the run with StatusStopped (their
// pending invocations are never granted). If every enabled process is
// crashed, the run stops.
type Crashing struct {
	Crashed map[int]bool
	Inner   Scheduler
}

// NewCrashing returns a scheduler that never runs the given processes and
// otherwise defers to inner (round-robin if nil).
func NewCrashing(inner Scheduler, crashed ...int) *Crashing {
	set := make(map[int]bool, len(crashed))
	for _, id := range crashed {
		set[id] = true
	}
	if inner == nil {
		inner = NewRoundRobin()
	}
	return &Crashing{Crashed: set, Inner: inner}
}

// Next implements Scheduler.
func (c *Crashing) Next(v View) int {
	live := make([]int, 0, len(v.Enabled))
	for _, id := range v.Enabled {
		if !c.Crashed[id] {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return Stop
	}
	pick := c.Inner.Next(View{Step: v.Step, Enabled: live})
	if pick == Stop {
		return Stop
	}
	return pick
}
