package sim

import (
	"fmt"
	"strings"
)

// EventKind distinguishes the kinds of trace events.
type EventKind int

const (
	// EventStep records one atomic operation applied to a base object.
	EventStep EventKind = iota
	// EventCall marks the start of a logical (implemented) operation. It is
	// emitted by algorithm code via Ctx.BeginOp and consumed by the
	// linearizability checker.
	EventCall
	// EventReturn marks the end of a logical operation (Ctx.EndOp).
	EventReturn
	// EventCrash records a FaultCrash directive: the process's pending
	// invocation (carried in Object/Op/Args, never applied) and all its
	// volatile state were wiped. Crash events consume no scheduler step.
	EventCrash
	// EventRestart records a FaultRestart directive: Out carries the new
	// incarnation number. The events that follow for this process come
	// from the recovery step and the re-executed program.
	EventRestart
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStep:
		return "step"
	case EventCall:
		return "call"
	case EventReturn:
		return "return"
	case EventCrash:
		return "crash"
	case EventRestart:
		return "restart"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of a run's trace. Seq is a global, strictly increasing
// sequence number over all events; events of kind EventStep additionally
// consume a scheduler step.
type Event struct {
	Seq    int
	Kind   EventKind
	Proc   int
	Object string
	Op     string
	Args   []Value
	Out    Value
	Hang   bool
}

// String renders the event compactly, e.g. "12 P3 step R[1].write(5) -> <nil>".
func (e Event) String() string {
	var b strings.Builder
	switch e.Kind {
	case EventCrash:
		fmt.Fprintf(&b, "%d P%d crash wiped %s.%s", e.Seq, e.Proc, e.Object, Invocation{Op: e.Op, Args: e.Args})
		return b.String()
	case EventRestart:
		fmt.Fprintf(&b, "%d P%d restart incarnation %v", e.Seq, e.Proc, e.Out)
		return b.String()
	}
	fmt.Fprintf(&b, "%d P%d %s %s.%s", e.Seq, e.Proc, e.Kind, e.Object, Invocation{Op: e.Op, Args: e.Args})
	switch {
	case e.Hang:
		b.WriteString(" -> HANG")
	case e.Kind != EventCall:
		fmt.Fprintf(&b, " -> %v", e.Out)
	}
	return b.String()
}

// Trace is the ordered record of a run.
type Trace struct {
	Events []Event
}

// Len returns the number of recorded events.
func (t Trace) Len() int { return len(t.Events) }

// Steps returns the number of atomic steps (EventStep events) recorded.
func (t Trace) Steps() int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == EventStep {
			n++
		}
	}
	return n
}

// ByObject returns the sub-trace of events touching the named object,
// preserving order.
func (t Trace) ByObject(name string) Trace {
	var out Trace
	for _, e := range t.Events {
		if e.Object == name {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// ByProc returns the sub-trace of events issued by process id.
func (t Trace) ByProc(id int) Trace {
	var out Trace
	for _, e := range t.Events {
		if e.Proc == id {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// String renders the whole trace, one event per line.
func (t Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
