package sim

// Ctx is a process's handle to the simulated world. All interaction with
// shared state goes through Invoke; BeginOp/EndOp annotate the trace with
// the intervals of logical (implemented) operations for the linearizability
// checker.
type Ctx struct {
	id  int
	inc int
	msg chan<- message
	res <-chan resume
}

// ID returns the process id (its index in Config.Programs).
func (c *Ctx) ID() int { return c.id }

// Incarnation returns how many times this process has been crash-restarted:
// 0 for the initial execution, k for the k-th restart. Recovery procedures
// and restart-aware programs use it to tell a re-execution from a first
// run; everything else may ignore it.
func (c *Ctx) Incarnation() int { return c.inc }

// Invoke applies one atomic operation to the named shared object and
// returns its result. The call blocks until the scheduler grants the
// process a step. If the object hangs the process, Invoke never returns:
// the process is parked and its goroutine reclaimed.
func (c *Ctx) Invoke(object, op string, args ...Value) Value {
	c.msg <- message{kind: msgInvoke, obj: object, inv: Invocation{Op: op, Args: args}}
	r := <-c.res
	if r.abort {
		panic(abortSignal{})
	}
	return r.value
}

// BeginOp records the start of a logical operation on an implemented
// object. It does not consume a scheduler step.
func (c *Ctx) BeginOp(object, op string, args ...Value) {
	c.msg <- message{
		kind:     msgMark,
		obj:      object,
		inv:      Invocation{Op: op, Args: args},
		markKind: EventCall,
	}
}

// EndOp records the completion of the logical operation last begun with
// BeginOp, together with its result. It does not consume a scheduler step.
func (c *Ctx) EndOp(object, op string, out Value) {
	c.msg <- message{
		kind:     msgMark,
		obj:      object,
		inv:      Invocation{Op: op},
		markKind: EventReturn,
		markOut:  out,
	}
}
