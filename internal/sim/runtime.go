package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// DefaultMaxSteps bounds runs whose scheduler never stops; exceeding it is
// reported as ErrMaxSteps. Wait-free algorithms terminate far below it.
const DefaultMaxSteps = 1 << 20

// Sentinel errors returned by Run.
var (
	// ErrNoPrograms is returned when the configuration has no processes.
	ErrNoPrograms = errors.New("sim: configuration has no programs")
	// ErrMaxSteps is returned when a run exceeds its step budget.
	ErrMaxSteps = errors.New("sim: run exceeded maximum step count")
	// ErrUnknownObject is returned when a program invokes an object that
	// was never registered in the configuration.
	ErrUnknownObject = errors.New("sim: invocation of unknown object")
	// ErrBadSchedule is returned when a scheduler names a process that is
	// not enabled.
	ErrBadSchedule = errors.New("sim: scheduler chose a process that is not enabled")
	// ErrProgramPanic is returned when a program panics; the panic value is
	// included in the wrapped error.
	ErrProgramPanic = errors.New("sim: program panicked")
	// ErrObjectPanic is returned when an object's Apply panics (an illegal
	// invocation, or a model-checking control signal). The error is an
	// *ObjectPanicError carrying the panic value.
	ErrObjectPanic = errors.New("sim: object panicked")
)

// ObjectPanicError reports a panic raised by an object during Apply. It
// wraps ErrObjectPanic and preserves the panic value, which the model
// checker uses to intercept choice-demand signals from nondeterministic
// objects.
type ObjectPanicError struct {
	Object string
	Op     string
	Value  any
}

// Error implements error.
func (e *ObjectPanicError) Error() string {
	return fmt.Sprintf("sim: object %q panicked applying %q: %v", e.Object, e.Op, e.Value)
}

// Unwrap makes errors.Is(err, ErrObjectPanic) work.
func (e *ObjectPanicError) Unwrap() error { return ErrObjectPanic }

// Program is the sequential code of one process. It communicates only via
// ctx and returns the process's output (its decision). Programs for
// different processes must not share mutable memory; everything shared goes
// through objects.
type Program func(ctx *Ctx) Value

// Config describes one run: the shared objects, one program per process,
// the scheduler and determinism parameters. Concurrent Runs are safe only
// over Configs sharing no mutable state — see the package comment's
// "Concurrency contract".
type Config struct {
	// Objects maps object names to fresh object instances. Objects carry
	// state, so a Config (with its Objects) describes a single run; use a
	// factory to run many times.
	Objects map[string]Object
	// Programs holds one program per process; process ids are indices.
	Programs []Program
	// Scheduler decides the interleaving; nil defaults to round-robin.
	Scheduler Scheduler
	// MaxSteps bounds the run; 0 means DefaultMaxSteps.
	MaxSteps int
	// Seed seeds Env.Rand for nondeterministic objects.
	Seed int64
	// Choice, when non-nil, replaces the seeded Env.Rand so callers (in
	// particular the model checker) can control or enumerate the choices
	// of nondeterministic objects.
	Choice RandSource
	// DisableTrace suppresses event recording (for benchmarks).
	DisableTrace bool
	// VerifyReplay, when set (and the trace is enabled), re-executes
	// every program against the recorded trace after the run and fails
	// with ErrReplayDivergence if any program behaves differently on the
	// second execution — catching programs that are not pure functions
	// of their invocation results. See verifyReplay in replay.go.
	VerifyReplay bool
}

// ProcStatus is the final status of a process after a run.
type ProcStatus int

const (
	// StatusDone means the program returned an output.
	StatusDone ProcStatus = iota
	// StatusHung means an object parked the process forever.
	StatusHung
	// StatusStopped means the scheduler halted the run while the process
	// still had a pending invocation.
	StatusStopped
	// StatusFailed means the program panicked.
	StatusFailed
)

// String implements fmt.Stringer.
func (s ProcStatus) String() string {
	switch s {
	case StatusDone:
		return "done"
	case StatusHung:
		return "hung"
	case StatusStopped:
		return "stopped"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("ProcStatus(%d)", int(s))
	}
}

// Result is the outcome of a run.
type Result struct {
	// Outputs holds each process's returned value; nil for processes that
	// did not finish.
	Outputs []Value
	// Status holds each process's final status.
	Status []ProcStatus
	// Enabled lists processes that still had a pending invocation when the
	// run was stopped by the scheduler, in increasing id order.
	Enabled []int
	// Steps is the number of atomic steps taken.
	Steps int
	// Trace is the recorded event history (empty if DisableTrace).
	Trace Trace
}

// Decided returns the outputs of processes with StatusDone, indexed by
// process id; absent processes are skipped.
func (r *Result) Decided() map[int]Value {
	out := make(map[int]Value)
	for i, st := range r.Status {
		if st == StatusDone {
			out[i] = r.Outputs[i]
		}
	}
	return out
}

// AllDone reports whether every process produced an output.
func (r *Result) AllDone() bool {
	for _, st := range r.Status {
		if st != StatusDone {
			return false
		}
	}
	return true
}

type msgKind int

const (
	msgInvoke msgKind = iota
	msgMark
	msgDone
	msgPanic
)

type message struct {
	kind msgKind
	obj  string
	inv  Invocation
	// mark fields, for msgMark
	markKind EventKind
	markOut  Value
	// done / panic payload
	out Value
	err any
}

type resume struct {
	value Value
	abort bool
}

// abortSignal is panicked inside Ctx.Invoke to unwind an aborted process.
type abortSignal struct{}

type procState struct {
	msgCh   chan message
	resCh   chan resume
	status  ProcStatus
	pending bool
	inv     message
	output  Value
	live    bool // goroutine still owns the channels
}

// Run executes one complete run of the configuration and returns its
// result. It is deterministic given Config and the scheduler's behaviour.
func Run(cfg Config) (*Result, error) {
	n := len(cfg.Programs)
	if n == 0 {
		return nil, ErrNoPrograms
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = NewRoundRobin()
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	rt := &runtime{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		procs: make([]*procState, n),
	}
	if o, ok := sched.(Observer); ok {
		rt.obs = o
	}
	for i, prog := range cfg.Programs {
		p := &procState{
			msgCh: make(chan message),
			resCh: make(chan resume),
			live:  true,
		}
		rt.procs[i] = p
		//detlint:allow nodeterminism lockstep handshake: each goroutine blocks on its private resCh until the scheduler resumes it, so exactly one runs at a time and interleaving is fully schedule-determined
		go runProgram(i, prog, p)
	}

	// Settle every process to its first invocation (or completion).
	for i := range rt.procs {
		if err := rt.settle(i); err != nil {
			rt.abortAll()
			return nil, err
		}
	}

	for {
		enabled := rt.enabled()
		if len(enabled) == 0 {
			break
		}
		if rt.steps >= maxSteps {
			rt.abortAll()
			return nil, fmt.Errorf("%w (budget %d)", ErrMaxSteps, maxSteps)
		}
		next := sched.Next(View{Step: rt.steps, Enabled: enabled})
		if next == Stop {
			for _, id := range enabled {
				rt.procs[id].status = StatusStopped
			}
			rt.abortAll()
			return finish(cfg, rt.result(enabled))
		}
		if !contains(enabled, next) {
			rt.abortAll()
			return nil, fmt.Errorf("%w: process %d at step %d (enabled: %v)", ErrBadSchedule, next, rt.steps, enabled)
		}
		if err := rt.step(next); err != nil {
			rt.abortAll()
			return nil, err
		}
	}
	return finish(cfg, rt.result(nil))
}

// finish applies the post-run verification pass, if configured.
func finish(cfg Config, res *Result) (*Result, error) {
	if cfg.VerifyReplay && !cfg.DisableTrace {
		if err := verifyReplay(cfg, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

type runtime struct {
	cfg   Config
	rng   *rand.Rand
	obs   Observer // scheduler's event tap, if it implements Observer
	procs []*procState
	steps int
	seq   int
	trace Trace
}

func (rt *runtime) enabled() []int {
	var ids []int
	for i, p := range rt.procs {
		if p.pending {
			ids = append(ids, i)
		}
	}
	return ids
}

// step applies process id's pending invocation as one atomic step.
func (rt *runtime) step(id int) error {
	p := rt.procs[id]
	obj, ok := rt.cfg.Objects[p.inv.obj]
	if !ok {
		return fmt.Errorf("%w: %q (process %d)", ErrUnknownObject, p.inv.obj, id)
	}
	var choice RandSource = rt.rng
	if rt.cfg.Choice != nil {
		choice = rt.cfg.Choice
	}
	env := &Env{Proc: id, Step: rt.steps, Rand: choice}
	resp, err := applyObject(obj, env, p.inv)
	if err != nil {
		return err
	}
	rt.steps++
	p.pending = false
	rt.record(Event{
		Kind:   EventStep,
		Proc:   id,
		Object: p.inv.obj,
		Op:     p.inv.inv.Op,
		Args:   p.inv.inv.Args,
		Out:    resp.Value,
		Hang:   resp.Effect == Hang,
	})
	if resp.Effect == Hang {
		p.status = StatusHung
		rt.abort(p)
		return nil
	}
	p.resCh <- resume{value: resp.Value}
	return rt.settle(id)
}

// applyObject applies the invocation, converting an object panic into an
// *ObjectPanicError.
func applyObject(obj Object, env *Env, m message) (resp Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ObjectPanicError{Object: m.obj, Op: m.inv.Op, Value: r}
		}
	}()
	resp = obj.Apply(env, m.inv)
	return resp, nil
}

// settle reads messages from process id until it parks at an invocation,
// finishes, or fails.
func (rt *runtime) settle(id int) error {
	p := rt.procs[id]
	for {
		m := <-p.msgCh
		switch m.kind {
		case msgInvoke:
			p.pending = true
			p.inv = m
			return nil
		case msgMark:
			rt.record(Event{
				Kind:   m.markKind,
				Proc:   id,
				Object: m.obj,
				Op:     m.inv.Op,
				Args:   m.inv.Args,
				Out:    m.markOut,
			})
		case msgDone:
			p.status = StatusDone
			p.output = m.out
			p.live = false
			return nil
		case msgPanic:
			p.status = StatusFailed
			p.live = false
			return fmt.Errorf("%w: process %d: %v", ErrProgramPanic, id, m.err)
		}
	}
}

func (rt *runtime) record(e Event) {
	e.Seq = rt.seq
	rt.seq++
	if rt.obs != nil {
		rt.obs.Observe(e)
	}
	if rt.cfg.DisableTrace {
		return
	}
	rt.trace.Events = append(rt.trace.Events, e)
}

// abort terminates a live process goroutine that is blocked waiting for a
// resume. The goroutine unwinds via abortSignal and exits silently.
func (rt *runtime) abort(p *procState) {
	if !p.live {
		return
	}
	p.live = false
	p.resCh <- resume{abort: true}
}

func (rt *runtime) abortAll() {
	for _, p := range rt.procs {
		if p.live && p.pending {
			p.pending = false
			rt.abort(p)
		}
	}
}

func (rt *runtime) result(enabledAtStop []int) *Result {
	res := &Result{
		Outputs: make([]Value, len(rt.procs)),
		Status:  make([]ProcStatus, len(rt.procs)),
		Enabled: enabledAtStop,
		Steps:   rt.steps,
		Trace:   rt.trace,
	}
	for i, p := range rt.procs {
		res.Outputs[i] = p.output
		res.Status[i] = p.status
	}
	return res
}

// runProgram is the per-process goroutine body.
func runProgram(id int, prog Program, p *procState) {
	ctx := &Ctx{id: id, msg: p.msgCh, res: p.resCh}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				return // aborted by the runtime; exit silently
			}
			p.msgCh <- message{kind: msgPanic, err: r}
		}
	}()
	out := prog(ctx)
	p.msgCh <- message{kind: msgDone, out: out}
}
