package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// DefaultMaxSteps bounds runs whose scheduler never stops; exceeding it is
// reported as ErrMaxSteps. Wait-free algorithms terminate far below it.
const DefaultMaxSteps = 1 << 20

// Sentinel errors returned by Run.
var (
	// ErrNoPrograms is returned when the configuration has no processes.
	ErrNoPrograms = errors.New("sim: configuration has no programs")
	// ErrMaxSteps is returned when a run exceeds its step budget.
	ErrMaxSteps = errors.New("sim: run exceeded maximum step count")
	// ErrUnknownObject is returned when a program invokes an object that
	// was never registered in the configuration.
	ErrUnknownObject = errors.New("sim: invocation of unknown object")
	// ErrBadSchedule is returned when a scheduler names a process that is
	// not enabled.
	ErrBadSchedule = errors.New("sim: scheduler chose a process that is not enabled")
	// ErrProgramPanic is returned when a program panics; the panic value is
	// included in the wrapped error.
	ErrProgramPanic = errors.New("sim: program panicked")
	// ErrObjectPanic is returned when an object's Apply panics (an illegal
	// invocation, or a model-checking control signal). The error is an
	// *ObjectPanicError carrying the panic value.
	ErrObjectPanic = errors.New("sim: object panicked")
)

// ObjectPanicError reports a panic raised by an object during Apply. It
// wraps ErrObjectPanic and preserves the panic value, which the model
// checker uses to intercept choice-demand signals from nondeterministic
// objects.
type ObjectPanicError struct {
	Object string
	Op     string
	Value  any
}

// Error implements error.
func (e *ObjectPanicError) Error() string {
	return fmt.Sprintf("sim: object %q panicked applying %q: %v", e.Object, e.Op, e.Value)
}

// Unwrap makes errors.Is(err, ErrObjectPanic) work.
func (e *ObjectPanicError) Unwrap() error { return ErrObjectPanic }

// Program is the sequential code of one process. It communicates only via
// ctx and returns the process's output (its decision). Programs for
// different processes must not share mutable memory; everything shared goes
// through objects.
type Program func(ctx *Ctx) Value

// Config describes one run: the shared objects, one program per process,
// the scheduler and determinism parameters. Concurrent Runs are safe only
// over Configs sharing no mutable state — see the package comment's
// "Concurrency contract".
type Config struct {
	// Objects maps object names to fresh object instances. Objects carry
	// state, so a Config (with its Objects) describes a single run; use a
	// factory to run many times.
	Objects map[string]Object
	// Programs holds one program per process; process ids are indices.
	Programs []Program
	// Scheduler decides the interleaving; nil defaults to round-robin.
	Scheduler Scheduler
	// MaxSteps bounds the run; 0 means DefaultMaxSteps.
	MaxSteps int
	// Seed seeds Env.Rand for nondeterministic objects.
	Seed int64
	// Choice, when non-nil, replaces the seeded Env.Rand so callers (in
	// particular the model checker) can control or enumerate the choices
	// of nondeterministic objects.
	Choice RandSource
	// DisableTrace suppresses event recording (for benchmarks).
	DisableTrace bool
	// VerifyReplay, when set (and the trace is enabled), re-executes
	// every program against the recorded trace after the run and fails
	// with ErrReplayDivergence if any program behaves differently on the
	// second execution — catching programs that are not pure functions
	// of their invocation results. See verifyReplay in replay.go.
	VerifyReplay bool
	// Recovery, when non-nil, runs on a restarted process's fresh
	// goroutine before its Program re-executes (see FaultRestart in
	// fault.go). Incarnation 0 never runs it. It is shared by all
	// processes and must obey the Program purity contract.
	Recovery RecoveryProc
	// OnStep, when non-nil, is called synchronously after every applied
	// object step with the acting process id, the response value, and
	// whether the step hung the caller (a hung step delivers no value).
	// The model checker's reduction layer uses it to build per-process
	// response histories without recording a full Trace. The callback
	// must not call back into the run.
	OnStep func(proc int, out Value, hang bool)
	// Arena, when non-nil, recycles run scratch (process slots,
	// channels, result buffers) across consecutive Runs; see RunArena
	// for the aliasing rules.
	Arena *RunArena
}

// ProcStatus is the final status of a process after a run.
type ProcStatus int

const (
	// StatusDone means the program returned an output.
	StatusDone ProcStatus = iota
	// StatusHung means an object parked the process forever.
	StatusHung
	// StatusStopped means the scheduler halted the run while the process
	// still had a pending invocation.
	StatusStopped
	// StatusFailed means the program panicked.
	StatusFailed
	// StatusCrashed means a FaultInjector crashed the process and no
	// restart arrived before the run ended. Its in-flight invocation was
	// wiped, not applied.
	StatusCrashed
)

// String implements fmt.Stringer.
func (s ProcStatus) String() string {
	switch s {
	case StatusDone:
		return "done"
	case StatusHung:
		return "hung"
	case StatusStopped:
		return "stopped"
	case StatusFailed:
		return "failed"
	case StatusCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("ProcStatus(%d)", int(s))
	}
}

// Result is the outcome of a run.
type Result struct {
	// Outputs holds each process's returned value; nil for processes that
	// did not finish.
	Outputs []Value
	// Status holds each process's final status.
	Status []ProcStatus
	// Enabled lists processes that still had a pending invocation when the
	// run was stopped by the scheduler, in increasing id order.
	Enabled []int
	// Steps is the number of atomic steps taken.
	Steps int
	// Restarts holds, per process, how many times it was crash-restarted
	// (its final incarnation number). It is nil when the scheduler is not
	// a FaultInjector.
	Restarts []int
	// Trace is the recorded event history (empty if DisableTrace).
	Trace Trace
}

// Decided returns the outputs of processes with StatusDone, indexed by
// process id; absent processes are skipped.
func (r *Result) Decided() map[int]Value {
	out := make(map[int]Value)
	for i, st := range r.Status {
		if st == StatusDone {
			out[i] = r.Outputs[i]
		}
	}
	return out
}

// AllDone reports whether every process produced an output.
func (r *Result) AllDone() bool {
	for _, st := range r.Status {
		if st != StatusDone {
			return false
		}
	}
	return true
}

type msgKind int

const (
	msgInvoke msgKind = iota
	msgMark
	msgDone
	msgPanic
)

type message struct {
	kind msgKind
	obj  string
	inv  Invocation
	// mark fields, for msgMark
	markKind EventKind
	markOut  Value
	// done / panic payload
	out Value
	err any
}

type resume struct {
	value Value
	abort bool
}

// abortSignal is panicked inside Ctx.Invoke to unwind an aborted process.
type abortSignal struct{}

type procState struct {
	msgCh       chan message
	resCh       chan resume
	status      ProcStatus
	pending     bool
	inv         message
	output      Value
	live        bool // goroutine still owns the channels
	incarnation int  // number of crash-restarts applied so far
}

// Run executes one complete run of the configuration and returns its
// result. It is deterministic given Config and the scheduler's behaviour.
func Run(cfg Config) (*Result, error) {
	n := len(cfg.Programs)
	if n == 0 {
		return nil, ErrNoPrograms
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = NewRoundRobin()
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	rt := newRuntime(cfg, n)
	if cfg.Choice == nil {
		// The seeded source is built only when no Choice override is
		// present: the exhaustive engines always script their choices,
		// and rand.New is two allocations per replayed run.
		rt.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	if o, ok := sched.(Observer); ok {
		rt.obs = o
	}
	if fi, ok := sched.(FaultInjector); ok {
		rt.injector = fi
	}
	for i, prog := range cfg.Programs {
		//detlint:allow nodeterminism lockstep handshake: each goroutine blocks on its private resCh until the scheduler resumes it, so exactly one runs at a time and interleaving is fully schedule-determined
		go runProgram(i, prog, rt.procs[i])
	}

	// Settle every process to its first invocation (or completion).
	for i := range rt.procs {
		if err := rt.settle(i); err != nil {
			rt.abortAll()
			return nil, err
		}
	}

	for {
		enabled := rt.enabled()
		if rt.injector != nil {
			// Consult the fault channel before the scheduling decision;
			// an applied batch invalidates the view, so restart the round.
			// This runs even with no process enabled: a restart directive
			// is how a run whose survivors are all done resumes a crashed
			// process (see FaultInjector in fault.go).
			faults := rt.injector.Faults(View{Step: rt.steps, Enabled: enabled, Crashed: rt.crashedIDs()})
			if len(faults) > 0 {
				if err := rt.applyFaults(faults, maxSteps); err != nil {
					rt.abortAll()
					return nil, err
				}
				continue
			}
		}
		if len(enabled) == 0 {
			break
		}
		if rt.steps >= maxSteps {
			rt.abortAll()
			return nil, fmt.Errorf("%w (budget %d)", ErrMaxSteps, maxSteps)
		}
		next := sched.Next(View{Step: rt.steps, Enabled: enabled})
		if next == Stop {
			for _, id := range enabled {
				rt.procs[id].status = StatusStopped
			}
			rt.abortAll()
			return finish(cfg, rt.result(enabled))
		}
		if !contains(enabled, next) {
			rt.abortAll()
			return nil, fmt.Errorf("%w: process %d at step %d (enabled: %v)", ErrBadSchedule, next, rt.steps, enabled)
		}
		if err := rt.step(next); err != nil {
			rt.abortAll()
			return nil, err
		}
	}
	return finish(cfg, rt.result(nil))
}

// finish applies the post-run verification pass, if configured.
func finish(cfg Config, res *Result) (*Result, error) {
	if cfg.VerifyReplay && !cfg.DisableTrace {
		if err := verifyReplay(cfg, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

type runtime struct {
	cfg      Config
	rng      *rand.Rand // nil when cfg.Choice overrides it
	obs      Observer      // scheduler's event tap, if it implements Observer
	injector FaultInjector // scheduler's fault channel, if it implements FaultInjector
	procs    []*procState
	arena    *RunArena // non-nil when run scratch is recycled
	env      Env       // per-step Env, rebuilt in place (objects must not retain it)
	steps    int
	seq      int
	faults   int // fault directives applied, bounded by the step budget
	trace    Trace
	recNames []string // sorted names of Recoverable objects, built lazily
	recBuilt bool
}

func (rt *runtime) enabled() []int {
	if rt.arena == nil {
		var ids []int
		for i, p := range rt.procs {
			if p.pending {
				ids = append(ids, i)
			}
		}
		return ids
	}
	// Arena runs reuse one buffer for every scheduling round; the final
	// round's contents surface as Result.Enabled, which the arena
	// contract says the next Run invalidates.
	ids := rt.arena.enabled[:0]
	for i, p := range rt.procs {
		if p.pending {
			ids = append(ids, i)
		}
	}
	rt.arena.enabled = ids
	return ids
}

// crashedIDs lists crashed-and-not-restarted processes in id order. Only
// called when a FaultInjector is present, keeping the common path free of
// the extra allocation.
func (rt *runtime) crashedIDs() []int {
	var ids []int
	for i, p := range rt.procs {
		if p.status == StatusCrashed && !p.live {
			ids = append(ids, i)
		}
	}
	return ids
}

// applyFaults applies one directive batch in order. Each directive counts
// against the step budget so an injector that crashes and restarts forever
// fails the run instead of hanging it.
func (rt *runtime) applyFaults(faults []Fault, maxSteps int) error {
	for _, f := range faults {
		if f.Proc < 0 || f.Proc >= len(rt.procs) {
			return fmt.Errorf("%w: no process %d", ErrBadFault, f.Proc)
		}
		rt.faults++
		if rt.faults > maxSteps {
			return fmt.Errorf("%w (fault budget %d)", ErrMaxSteps, maxSteps)
		}
		var err error
		switch f.Kind {
		case FaultCrash:
			err = rt.crash(f.Proc)
		case FaultRestart:
			err = rt.restart(f.Proc)
		default:
			err = fmt.Errorf("%w: unknown fault kind %d for process %d", ErrBadFault, int(f.Kind), f.Proc)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// crash wipes process id's volatile state: its pending invocation (recorded
// in the EventCrash event, never applied), its goroutine with all program
// locals, and its per-process volatile state in every Recoverable object.
func (rt *runtime) crash(id int) error {
	p := rt.procs[id]
	if !p.pending || !p.live {
		return fmt.Errorf("%w: crash of process %d with no pending invocation (status %v)", ErrBadFault, id, p.status)
	}
	wiped := p.inv
	p.pending = false
	p.status = StatusCrashed
	rt.abort(p)
	rt.record(Event{
		Kind:   EventCrash,
		Proc:   id,
		Object: wiped.obj,
		Op:     wiped.inv.Op,
		Args:   wiped.inv.Args,
	})
	for _, name := range rt.recoverables() {
		rt.cfg.Objects[name].(Recoverable).OnCrash(id)
	}
	return nil
}

// restart brings a crashed process back amnesiacally: a fresh goroutine
// runs Config.Recovery (if any) and then the program from the top, under an
// incremented incarnation. The restart settles like initial startup, so the
// process is parked at its first new invocation (or already done) before
// the next scheduling round.
func (rt *runtime) restart(id int) error {
	p := rt.procs[id]
	if p.status != StatusCrashed || p.live {
		return fmt.Errorf("%w: restart of process %d which is not crashed (status %v)", ErrBadFault, id, p.status)
	}
	p.incarnation++
	p.live = true
	rt.record(Event{Kind: EventRestart, Proc: id, Out: p.incarnation})
	//detlint:allow nodeterminism lockstep handshake: the restarted goroutine blocks on its private resCh exactly like initial startup, so interleaving stays schedule-determined
	go runIncarnation(id, p.incarnation, rt.cfg.Recovery, rt.cfg.Programs[id], p)
	return rt.settle(id)
}

// recoverables returns the sorted names of Recoverable objects, computed
// once per run; sorting keeps OnCrash callback order independent of map
// iteration order.
func (rt *runtime) recoverables() []string {
	if !rt.recBuilt {
		rt.recBuilt = true
		for name, o := range rt.cfg.Objects {
			if _, ok := o.(Recoverable); ok {
				rt.recNames = append(rt.recNames, name)
			}
		}
		sort.Strings(rt.recNames)
	}
	return rt.recNames
}

// step applies process id's pending invocation as one atomic step.
func (rt *runtime) step(id int) error {
	p := rt.procs[id]
	obj, ok := rt.cfg.Objects[p.inv.obj]
	if !ok {
		return fmt.Errorf("%w: %q (process %d)", ErrUnknownObject, p.inv.obj, id)
	}
	choice := rt.cfg.Choice
	if choice == nil {
		choice = rt.rng
	}
	// The Env is rebuilt in place instead of allocated per step; Apply
	// must not retain it (see the Object contract).
	rt.env = Env{Proc: id, Step: rt.steps, Rand: choice}
	resp, err := applyObject(obj, &rt.env, p.inv)
	if err != nil {
		return err
	}
	rt.steps++
	p.pending = false
	rt.record(Event{
		Kind:   EventStep,
		Proc:   id,
		Object: p.inv.obj,
		Op:     p.inv.inv.Op,
		Args:   p.inv.inv.Args,
		Out:    resp.Value,
		Hang:   resp.Effect == Hang,
	})
	if rt.cfg.OnStep != nil {
		rt.cfg.OnStep(id, resp.Value, resp.Effect == Hang)
	}
	if resp.Effect == Hang {
		p.status = StatusHung
		rt.abort(p)
		return nil
	}
	p.resCh <- resume{value: resp.Value}
	return rt.settle(id)
}

// applyObject applies the invocation, converting an object panic into an
// *ObjectPanicError.
func applyObject(obj Object, env *Env, m message) (resp Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ObjectPanicError{Object: m.obj, Op: m.inv.Op, Value: r}
		}
	}()
	resp = obj.Apply(env, m.inv)
	return resp, nil
}

// settle reads messages from process id until it parks at an invocation,
// finishes, or fails.
func (rt *runtime) settle(id int) error {
	p := rt.procs[id]
	for {
		m := <-p.msgCh
		switch m.kind {
		case msgInvoke:
			p.pending = true
			p.inv = m
			return nil
		case msgMark:
			rt.record(Event{
				Kind:   m.markKind,
				Proc:   id,
				Object: m.obj,
				Op:     m.inv.Op,
				Args:   m.inv.Args,
				Out:    m.markOut,
			})
		case msgDone:
			p.status = StatusDone
			p.output = m.out
			p.live = false
			return nil
		case msgPanic:
			p.status = StatusFailed
			p.live = false
			return fmt.Errorf("%w: process %d: %v", ErrProgramPanic, id, m.err)
		}
	}
}

func (rt *runtime) record(e Event) {
	e.Seq = rt.seq
	rt.seq++
	if rt.obs != nil {
		rt.obs.Observe(e)
	}
	if rt.cfg.DisableTrace {
		return
	}
	rt.trace.Events = append(rt.trace.Events, e)
}

// abort terminates a live process goroutine that is blocked waiting for a
// resume. The goroutine unwinds via abortSignal and exits silently.
func (rt *runtime) abort(p *procState) {
	if !p.live {
		return
	}
	p.live = false
	p.resCh <- resume{abort: true}
}

func (rt *runtime) abortAll() {
	for _, p := range rt.procs {
		if p.live && p.pending {
			p.pending = false
			rt.abort(p)
		}
	}
}

func (rt *runtime) result(enabledAtStop []int) *Result {
	var res *Result
	if a := rt.arena; a != nil {
		a.outputs = a.outputs[:0]
		a.status = a.status[:0]
		a.events = rt.trace.Events
		res = &a.res
		*res = Result{
			Outputs: a.outputs,
			Status:  a.status,
			Enabled: enabledAtStop,
			Steps:   rt.steps,
			Trace:   rt.trace,
		}
	} else {
		res = &Result{
			Outputs: make([]Value, 0, len(rt.procs)),
			Status:  make([]ProcStatus, 0, len(rt.procs)),
			Enabled: enabledAtStop,
			Steps:   rt.steps,
			Trace:   rt.trace,
		}
	}
	for _, p := range rt.procs {
		res.Outputs = append(res.Outputs, p.output)
		res.Status = append(res.Status, p.status)
	}
	if a := rt.arena; a != nil {
		a.outputs = res.Outputs
		a.status = res.Status
	}
	if rt.injector != nil {
		res.Restarts = make([]int, len(rt.procs))
		for i, p := range rt.procs {
			res.Restarts[i] = p.incarnation
		}
	}
	return res
}

// runProgram is the per-process goroutine body for incarnation 0.
func runProgram(id int, prog Program, p *procState) {
	runIncarnation(id, 0, nil, prog, p)
}

// runIncarnation is the goroutine body shared by initial startup and
// crash-restart: incarnations >= 1 run the recovery step first, then the
// program from the top.
func runIncarnation(id, inc int, recovery RecoveryProc, prog Program, p *procState) {
	ctx := &Ctx{id: id, inc: inc, msg: p.msgCh, res: p.resCh}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				return // aborted by the runtime; exit silently
			}
			p.msgCh <- message{kind: msgPanic, err: r}
		}
	}()
	if inc > 0 && recovery != nil {
		recovery(ctx)
	}
	out := prog(ctx)
	p.msgCh <- message{kind: msgDone, out: out}
}
