package sim_test

import (
	"fmt"

	"detobj/internal/registers"
	"detobj/internal/sim"
)

// ExampleRun demonstrates the lockstep simulator: two processes increment
// a shared counter under a fixed schedule.
func ExampleRun() {
	objects := map[string]sim.Object{"C": registers.NewCounter()}
	c := registers.CounterRef{Name: "C"}
	worker := func(ctx *sim.Ctx) sim.Value {
		c.Inc(ctx)
		return c.Read(ctx)
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{worker, worker},
		Scheduler: sim.NewFixed(0, 1, 1, 0),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Outputs, res.Steps)
	// Output: [2 2] 4
}

// ExampleRun_hang shows the undetectable-hang semantics: the object parks
// one caller forever while the other finishes.
func ExampleRun_hang() {
	budget := 0
	stingy := sim.ObjectFunc(func(_ *sim.Env, _ sim.Invocation) sim.Response {
		budget++
		if budget > 1 {
			return sim.HangCaller()
		}
		return sim.Respond("ok")
	})
	objects := map[string]sim.Object{"X": stingy}
	prog := func(ctx *sim.Ctx) sim.Value { return ctx.Invoke("X", "take") }
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{prog, prog},
		Scheduler: sim.NewFixed(0, 1),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Status[0], res.Status[1])
	// Output: done hung
}

// ExampleNewCrashing shows the crash-failure adversary: the crashed
// process never runs, the survivor still finishes.
func ExampleNewCrashing() {
	objects := map[string]sim.Object{"C": registers.NewCounter()}
	c := registers.CounterRef{Name: "C"}
	worker := func(ctx *sim.Ctx) sim.Value {
		c.Inc(ctx)
		return c.Read(ctx)
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  []sim.Program{worker, worker},
		Scheduler: sim.NewCrashing(nil, 1),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Outputs[0], res.Status[1])
	// Output: 1 stopped
}
