package sim

import (
	"errors"
	"fmt"
	gort "runtime"
	"strings"
	"testing"
	"testing/quick"
)

// testCounter is a shared counter with inc and read operations, plus an
// optional budget after which further operations hang the caller.
type testCounter struct {
	n      int
	budget int // 0 means unlimited
	used   int
}

func (c *testCounter) Apply(_ *Env, inv Invocation) Response {
	if c.budget > 0 {
		c.used++
		if c.used > c.budget {
			return HangCaller()
		}
	}
	switch inv.Op {
	case "inc":
		c.n++
		return Respond(nil)
	case "read":
		return Respond(c.n)
	default:
		panic(fmt.Sprintf("testCounter: unknown op %q", inv.Op))
	}
}

func incThenRead(times int) Program {
	return func(ctx *Ctx) Value {
		for i := 0; i < times; i++ {
			ctx.Invoke("C", "inc")
		}
		return ctx.Invoke("C", "read")
	}
}

func TestRunBasicCounter(t *testing.T) {
	cfg := Config{
		Objects:  map[string]Object{"C": &testCounter{}},
		Programs: []Program{incThenRead(3), incThenRead(2)},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllDone() {
		t.Fatalf("not all processes finished: %v", res.Status)
	}
	// Both processes increment; the last read must see all 5 increments.
	last := res.Outputs[0]
	if v := res.Outputs[1]; v.(int) > last.(int) {
		last = v
	}
	if last.(int) != 5 {
		t.Errorf("max read = %v, want 5", last)
	}
	if res.Steps != 7 {
		t.Errorf("steps = %d, want 7", res.Steps)
	}
}

func TestRunNoPrograms(t *testing.T) {
	if _, err := Run(Config{}); !errors.Is(err, ErrNoPrograms) {
		t.Fatalf("err = %v, want ErrNoPrograms", err)
	}
}

func TestRunUnknownObject(t *testing.T) {
	cfg := Config{
		Objects:  map[string]Object{},
		Programs: []Program{func(ctx *Ctx) Value { return ctx.Invoke("nope", "read") }},
	}
	if _, err := Run(cfg); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v, want ErrUnknownObject", err)
	}
}

func TestRunProgramPanic(t *testing.T) {
	cfg := Config{
		Objects: map[string]Object{"C": &testCounter{}},
		Programs: []Program{func(ctx *Ctx) Value {
			ctx.Invoke("C", "inc")
			panic("boom")
		}},
	}
	if _, err := Run(cfg); !errors.Is(err, ErrProgramPanic) {
		t.Fatalf("err = %v, want ErrProgramPanic", err)
	}
}

func TestRunMaxSteps(t *testing.T) {
	cfg := Config{
		Objects: map[string]Object{"C": &testCounter{}},
		Programs: []Program{func(ctx *Ctx) Value {
			for {
				ctx.Invoke("C", "inc")
			}
		}},
		MaxSteps: 10,
	}
	if _, err := Run(cfg); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestRunHangSemantics(t *testing.T) {
	// Budget of 3 operations: the first three succeed, the fourth caller
	// hangs forever while the rest of the system keeps running.
	cfg := Config{
		Objects: map[string]Object{
			"C": &testCounter{budget: 3},
			"D": &testCounter{},
		},
		Programs: []Program{
			incThenRead(4), // will hang on its 4th operation on C at the latest
			func(ctx *Ctx) Value { return ctx.Invoke("D", "read") },
		},
		Scheduler: Priority{0, 1},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Status[0] != StatusHung {
		t.Errorf("process 0 status = %v, want hung", res.Status[0])
	}
	if res.Status[1] != StatusDone {
		t.Errorf("process 1 status = %v, want done", res.Status[1])
	}
	if res.Outputs[0] != nil {
		t.Errorf("hung process produced output %v", res.Outputs[0])
	}
}

func TestRunStopScheduler(t *testing.T) {
	cfg := Config{
		Objects:   map[string]Object{"C": &testCounter{}},
		Programs:  []Program{incThenRead(5), incThenRead(5)},
		Scheduler: NewFixed(0, 0, 1),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps != 3 {
		t.Errorf("steps = %d, want 3", res.Steps)
	}
	wantEnabled := []int{0, 1}
	if len(res.Enabled) != 2 || res.Enabled[0] != wantEnabled[0] || res.Enabled[1] != wantEnabled[1] {
		t.Errorf("enabled = %v, want %v", res.Enabled, wantEnabled)
	}
	for i, st := range res.Status {
		if st != StatusStopped {
			t.Errorf("process %d status = %v, want stopped", i, st)
		}
	}
}

func TestRunBadSchedule(t *testing.T) {
	cfg := Config{
		Objects:   map[string]Object{"C": &testCounter{}},
		Programs:  []Program{incThenRead(1), incThenRead(1)},
		Scheduler: Func(func(View) int { return 7 }),
	}
	_, err := Run(cfg)
	if !errors.Is(err, ErrBadSchedule) {
		t.Fatalf("err = %v, want ErrBadSchedule", err)
	}
	// The error must name the enabled set, so a bad adversary is
	// debuggable from the message alone.
	if want := "(enabled: [0 1])"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %q, want it to contain %q", err, want)
	}
}

// observingScheduler records every observed event kind and defers to
// round-robin for scheduling.
type observingScheduler struct {
	RoundRobin
	seen []Event
}

func (o *observingScheduler) Observe(e Event) { o.seen = append(o.seen, e) }

func TestSchedulerObserverSeesEvents(t *testing.T) {
	marked := func(ctx *Ctx) Value {
		ctx.BeginOp("L", "op")
		ctx.Invoke("C", "inc")
		v := ctx.Invoke("C", "read")
		ctx.EndOp("L", "op", v)
		return v
	}
	obs := &observingScheduler{}
	res, err := Run(Config{
		Objects:   map[string]Object{"C": &testCounter{}},
		Programs:  []Program{marked, marked},
		Scheduler: obs,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(obs.seen) != res.Trace.Len() {
		t.Fatalf("observer saw %d events, trace has %d", len(obs.seen), res.Trace.Len())
	}
	for i, e := range obs.seen {
		if e.String() != res.Trace.Events[i].String() {
			t.Fatalf("event %d: observer saw %s, trace records %s", i, e, res.Trace.Events[i])
		}
	}
}

func TestSchedulerObserverWithDisabledTrace(t *testing.T) {
	// Observation is independent of trace recording: adversaries keep
	// working in benchmark-style runs.
	obs := &observingScheduler{}
	res, err := Run(Config{
		Objects:      map[string]Object{"C": &testCounter{}},
		Programs:     []Program{incThenRead(2)},
		Scheduler:    obs,
		DisableTrace: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Trace.Len() != 0 {
		t.Fatalf("trace recorded %d events despite DisableTrace", res.Trace.Len())
	}
	if len(obs.seen) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(obs.seen))
	}
}

func TestRunDeterministicTrace(t *testing.T) {
	mk := func() Config {
		return Config{
			Objects:   map[string]Object{"C": &testCounter{}},
			Programs:  []Program{incThenRead(4), incThenRead(4), incThenRead(4)},
			Scheduler: NewRandom(42),
		}
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Trace.String() != b.Trace.String() {
		t.Errorf("same seed produced different traces:\n%s\nvs\n%s", a.Trace, b.Trace)
	}
	if a.Trace.Len() == 0 {
		t.Error("trace is empty")
	}
}

func TestRunDisableTrace(t *testing.T) {
	cfg := Config{
		Objects:      map[string]Object{"C": &testCounter{}},
		Programs:     []Program{incThenRead(2)},
		DisableTrace: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Trace.Len() != 0 {
		t.Errorf("trace recorded despite DisableTrace: %d events", res.Trace.Len())
	}
}

func TestRunMarks(t *testing.T) {
	cfg := Config{
		Objects: map[string]Object{"C": &testCounter{}},
		Programs: []Program{func(ctx *Ctx) Value {
			ctx.BeginOp("logical", "op", 1)
			ctx.Invoke("C", "inc")
			ctx.EndOp("logical", "op", "result")
			return nil
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	evs := res.Trace.Events
	if len(evs) != 3 {
		t.Fatalf("trace length = %d, want 3:\n%s", len(evs), res.Trace)
	}
	if evs[0].Kind != EventCall || evs[1].Kind != EventStep || evs[2].Kind != EventReturn {
		t.Errorf("event kinds = %v %v %v, want call step return", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if evs[0].Seq >= evs[1].Seq || evs[1].Seq >= evs[2].Seq {
		t.Errorf("sequence numbers not increasing: %d %d %d", evs[0].Seq, evs[1].Seq, evs[2].Seq)
	}
	if evs[2].Out != "result" {
		t.Errorf("return mark out = %v, want %q", evs[2].Out, "result")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	view := View{Enabled: []int{0, 2, 5}}
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, rr.Next(view))
	}
	want := []int{0, 2, 5, 0, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin order = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsDisabled(t *testing.T) {
	rr := NewRoundRobin()
	if id := rr.Next(View{Enabled: []int{1, 3}}); id != 1 {
		t.Fatalf("first pick = %d, want 1", id)
	}
	// Process 3 vanished; wrap back to 1.
	if id := rr.Next(View{Enabled: []int{1}}); id != 1 {
		t.Fatalf("second pick = %d, want 1", id)
	}
}

func TestFixedSkipsDisabledEntries(t *testing.T) {
	f := NewFixed(3, 0, 1)
	if id := f.Next(View{Enabled: []int{0, 1}}); id != 0 {
		t.Fatalf("pick = %d, want 0 (entry 3 skipped)", id)
	}
	if id := f.Next(View{Enabled: []int{0, 1}}); id != 1 {
		t.Fatalf("pick = %d, want 1", id)
	}
	if id := f.Next(View{Enabled: []int{0, 1}}); id != Stop {
		t.Fatalf("pick = %d, want Stop", id)
	}
}

func TestFixedFallback(t *testing.T) {
	f := &Fixed{Order: []int{1}, Fallback: NewRoundRobin()}
	if id := f.Next(View{Enabled: []int{0, 1}}); id != 1 {
		t.Fatalf("pick = %d, want 1", id)
	}
	if id := f.Next(View{Enabled: []int{0, 1}}); id == Stop {
		t.Fatal("fallback did not take over")
	}
}

func TestPrioritySoloRun(t *testing.T) {
	cfg := Config{
		Objects:   map[string]Object{"C": &testCounter{}},
		Programs:  []Program{incThenRead(3), incThenRead(3)},
		Scheduler: Priority{1, 0},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Process 1 runs solo first, so its read sees exactly its own 3 incs.
	if res.Outputs[1].(int) != 3 {
		t.Errorf("solo process read %v, want 3", res.Outputs[1])
	}
	if res.Outputs[0].(int) != 6 {
		t.Errorf("second process read %v, want 6", res.Outputs[0])
	}
}

func TestViewEnabledSet(t *testing.T) {
	v := View{Enabled: []int{1, 4}}
	if !v.EnabledSet(4) || v.EnabledSet(2) {
		t.Errorf("EnabledSet misbehaves on %v", v.Enabled)
	}
}

func TestIndexedName(t *testing.T) {
	if got := Indexed("R", 3); got != "R[3]" {
		t.Errorf("Indexed = %q, want R[3]", got)
	}
}

func TestInvocationString(t *testing.T) {
	inv := Invocation{Op: "WRN", Args: []Value{1, "v"}}
	if got := inv.String(); got != "WRN(1, v)" {
		t.Errorf("String = %q", got)
	}
	if got := (Invocation{Op: "scan"}).String(); got != "scan()" {
		t.Errorf("String = %q", got)
	}
}

func TestInvocationArg(t *testing.T) {
	inv := Invocation{Op: "w", Args: []Value{7}}
	if inv.Arg(0) != 7 || inv.Arg(1) != nil || inv.Arg(-1) != nil {
		t.Error("Arg bounds handling incorrect")
	}
}

func TestTraceFilters(t *testing.T) {
	cfg := Config{
		Objects: map[string]Object{
			"C": &testCounter{},
			"D": &testCounter{},
		},
		Programs: []Program{
			func(ctx *Ctx) Value { ctx.Invoke("C", "inc"); return ctx.Invoke("D", "read") },
			func(ctx *Ctx) Value { return ctx.Invoke("C", "read") },
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.Trace.ByObject("D").Len(); got != 1 {
		t.Errorf("ByObject(D) = %d events, want 1", got)
	}
	if got := res.Trace.ByProc(1).Len(); got != 1 {
		t.Errorf("ByProc(1) = %d events, want 1", got)
	}
	if got := res.Trace.Steps(); got != 3 {
		t.Errorf("Steps = %d, want 3", got)
	}
}

// TestQuickSchedulingIndependence checks, over random process counts and
// seeds, that the final counter value equals the total number of
// increments regardless of interleaving — i.e. the simulator loses no
// steps and applies each exactly once.
func TestQuickSchedulingIndependence(t *testing.T) {
	f := func(rawProcs uint8, rawIncs uint8, seed int64) bool {
		procs := int(rawProcs%5) + 1
		incs := int(rawIncs%7) + 1
		programs := make([]Program, procs)
		for i := range programs {
			programs[i] = incThenRead(incs)
		}
		cfg := Config{
			Objects:   map[string]Object{"C": &testCounter{}},
			Programs:  programs,
			Scheduler: NewRandom(seed),
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		max := 0
		for _, out := range res.Outputs {
			if v := out.(int); v > max {
				max = v
			}
		}
		return max == procs*incs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProcStatusString(t *testing.T) {
	cases := map[ProcStatus]string{
		StatusDone:    "done",
		StatusHung:    "hung",
		StatusStopped: "stopped",
		StatusFailed:  "failed",
		ProcStatus(9): "ProcStatus(9)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("ProcStatus(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EventStep.String() != "step" || EventCall.String() != "call" || EventReturn.String() != "return" {
		t.Error("EventKind.String misbehaves")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Error("EventKind.String default case misbehaves")
	}
}

// panicObject panics on every Apply.
type panicObject struct{}

func (panicObject) Apply(*Env, Invocation) Response { panic("illegal") }

func TestRunObjectPanicBecomesError(t *testing.T) {
	cfg := Config{
		Objects:  map[string]Object{"X": panicObject{}},
		Programs: []Program{func(ctx *Ctx) Value { return ctx.Invoke("X", "op") }},
	}
	_, err := Run(cfg)
	if !errors.Is(err, ErrObjectPanic) {
		t.Fatalf("err = %v, want ErrObjectPanic", err)
	}
	var ope *ObjectPanicError
	if !errors.As(err, &ope) {
		t.Fatalf("err = %v, want *ObjectPanicError", err)
	}
	if ope.Object != "X" || ope.Op != "op" || ope.Value != "illegal" {
		t.Errorf("ObjectPanicError = %+v", ope)
	}
}

// choiceProbe returns the value drawn from Env.Rand.
type choiceProbe struct{}

func (choiceProbe) Apply(env *Env, _ Invocation) Response {
	return Respond(env.Rand.Intn(100))
}

// fixedChoice always returns its value.
type fixedChoice int

func (f fixedChoice) Intn(n int) int { return int(f) % n }

func TestRunChoiceOverride(t *testing.T) {
	cfg := Config{
		Objects:  map[string]Object{"X": choiceProbe{}},
		Programs: []Program{func(ctx *Ctx) Value { return ctx.Invoke("X", "draw") }},
		Choice:   fixedChoice(42),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outputs[0] != 42 {
		t.Errorf("draw = %v, want 42 via Choice override", res.Outputs[0])
	}
}

func TestCrashingScheduler(t *testing.T) {
	cfg := Config{
		Objects:   map[string]Object{"C": &testCounter{}},
		Programs:  []Program{incThenRead(2), incThenRead(2), incThenRead(2)},
		Scheduler: NewCrashing(NewRandom(3), 1),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Status[1] != StatusStopped {
		t.Errorf("crashed process status = %v, want stopped", res.Status[1])
	}
	if res.Status[0] != StatusDone || res.Status[2] != StatusDone {
		t.Errorf("live processes did not finish: %v", res.Status)
	}
	// The crashed process took no steps after its crash: it contributed at
	// most 0 increments (it was crashed from the start).
	if got := res.Outputs[0].(int) + res.Outputs[2].(int); got == 0 {
		t.Error("live processes made no progress")
	}
}

func TestCrashingAllCrashedStops(t *testing.T) {
	cfg := Config{
		Objects:   map[string]Object{"C": &testCounter{}},
		Programs:  []Program{incThenRead(2)},
		Scheduler: NewCrashing(nil, 0),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps != 0 || res.Status[0] != StatusStopped {
		t.Errorf("steps=%d status=%v, want immediate stop", res.Steps, res.Status[0])
	}
}

func TestCrashingInnerStopRespected(t *testing.T) {
	cfg := Config{
		Objects:   map[string]Object{"C": &testCounter{}},
		Programs:  []Program{incThenRead(5), incThenRead(5)},
		Scheduler: NewCrashing(NewFixed(0, 0), 1),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps != 2 {
		t.Errorf("steps = %d, want 2 (inner Fixed exhausted)", res.Steps)
	}
}

// TestNoGoroutineLeaks: runs — including ones with hung and stopped
// processes — must reclaim every process goroutine via the abort
// handshake.
func TestNoGoroutineLeaks(t *testing.T) {
	before := gort.NumGoroutine()
	for i := 0; i < 200; i++ {
		cfg := Config{
			Objects: map[string]Object{
				"C": &testCounter{budget: 2},
				"D": &testCounter{},
			},
			Programs: []Program{
				incThenRead(5), // hangs on C's budget
				func(ctx *Ctx) Value { return ctx.Invoke("D", "read") },
				incThenRead(4), // also hangs
			},
			Scheduler: NewRandom(int64(i)),
		}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	// Also runs stopped mid-flight by the scheduler.
	for i := 0; i < 200; i++ {
		cfg := Config{
			Objects:   map[string]Object{"C": &testCounter{}},
			Programs:  []Program{incThenRead(10), incThenRead(10)},
			Scheduler: NewFixed(0, 1, 0),
		}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("stopped run %d: %v", i, err)
		}
	}
	// Give aborted goroutines a beat to unwind.
	for i := 0; i < 100 && gort.NumGoroutine() > before+5; i++ {
		gort.Gosched()
	}
	after := gort.NumGoroutine()
	if after > before+5 {
		t.Errorf("goroutines grew from %d to %d across 400 runs", before, after)
	}
}
