package sim

// signature.go is the state snapshot/signature hook used by the model
// checker's reduction layer. A configuration reached by replaying a
// schedule prefix is identified — up to continuation behaviour — by the
// per-process response histories (programs are deterministic functions
// of their responses) plus the state of every shared object. Objects
// expose their half of that identity through StateSigner: an injective
// binary encoding appended to a caller-owned buffer, so building a
// signature allocates nothing once the buffer has grown to size. The
// fallback for objects that only implement the model checker's
// StateKey() string contract goes through that string instead.
//
// Encodings are tag-prefixed and length-delimited so that distinct
// states can never concatenate to equal bytes: "10" the string and 10
// the int get different tags, and string payloads carry their length.

import "fmt"

// StateSigner is an optional interface for shared objects: an object
// that implements it can append an injective binary encoding of its
// current state to a caller-owned buffer. Two states with equal
// encodings must be equal (behave identically under every future
// operation sequence) — the same contract as the model checker's
// StateKey, but allocation-free on the replay hot path. Implementations
// should build the encoding from AppendValueSig and AppendIntSig so the
// cross-object framing stays unambiguous.
type StateSigner interface {
	AppendStateSig(dst []byte) []byte
}

// Signature tag bytes. Every encoded value starts with one of these, so
// values of different dynamic types can never alias.
const (
	sigNil      byte = 0x01
	sigFalse    byte = 0x02
	sigTrue     byte = 0x03
	sigInt      byte = 0x04
	sigString   byte = 0x05
	sigStringer byte = 0x06
	sigOther    byte = 0x07
)

// AppendIntSig appends a tagged, self-delimiting encoding of n.
func AppendIntSig(dst []byte, n int) []byte {
	dst = append(dst, sigInt)
	return appendZigzag(dst, int64(n))
}

// AppendStringSig appends a tagged, length-prefixed encoding of s.
func AppendStringSig(dst []byte, s string) []byte {
	dst = append(dst, sigString)
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendValueSig appends a tagged, self-delimiting encoding of v. The
// common Value types (nil, bool, int, string) are encoded without any
// reflection; fmt.Stringer values (the wrn package's ⊥) through their
// String method; anything else falls back to a reflective rendering via
// sigOtherKey, which is the one arm that allocates.
func AppendValueSig(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, sigNil)
	case bool:
		if x {
			return append(dst, sigTrue)
		}
		return append(dst, sigFalse)
	case int:
		dst = append(dst, sigInt)
		return appendZigzag(dst, int64(x))
	case string:
		return AppendStringSig(dst, x)
	case interface{ String() string }:
		s := x.String()
		dst = append(dst, sigStringer)
		dst = appendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	default:
		s := sigOtherKey(v)
		dst = append(dst, sigOther)
		dst = appendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	}
}

// sigOtherKey renders a value outside the fast set, type-qualified so
// equal renderings of distinct types cannot collide.
func sigOtherKey(v Value) string { return fmt.Sprintf("%T=%v", v, v) }

// appendUvarint appends n in LEB128 (the varint of encoding/binary,
// inlined to keep the signature path free of imports and bounds-check
// friendly).
func appendUvarint(dst []byte, n uint64) []byte {
	for n >= 0x80 {
		dst = append(dst, byte(n)|0x80)
		n >>= 7
	}
	return append(dst, byte(n))
}

// appendZigzag appends a signed value as a zigzag-mapped uvarint.
func appendZigzag(dst []byte, n int64) []byte {
	return appendUvarint(dst, uint64(n<<1)^uint64(n>>63))
}
