package sim

// arena.go provides RunArena, the replay-buffer half of the model
// checker's reduction layer (ROADMAP "order-of-magnitude state-space
// engine"): a DFS over an execution tree replays one short run per
// node, and before the arena every replay paid for fresh process
// slots, a pair of channels per process, an enabled-set slice per
// scheduling round and a fresh Result. With an arena those live across
// runs and the steady-state replay allocates only what the run's
// programs and objects allocate themselves.

// RunArena recycles per-run scratch across consecutive calls to Run.
// A caller that replays many configurations back-to-back (the model
// checker's exhaustive engines) stores one arena in every Config it
// builds; Run then reuses the previous run's process slots, channels,
// scratch buffers and Result instead of allocating fresh ones.
//
// Constraints:
//   - An arena serves one Run at a time. Concurrent Runs need one
//     arena each (or none), exactly like Schedulers.
//   - Each Run invalidates the previous Run's Result: Outputs, Status,
//     Enabled and Trace.Events alias arena storage. Callers that keep a
//     Result across runs must copy what they need first.
//
// Reuse is safe because Run never returns with a process goroutine
// still holding a channel: every return path either observes the
// goroutine finished or aborts it with a final synchronous handshake,
// after which the goroutine touches neither its procState nor its
// channels again.
type RunArena struct {
	procs   []*procState
	enabled []int
	outputs []Value
	status  []ProcStatus
	events  []Event
	res     Result
	rt      runtime
}

// newRuntime builds the per-run runtime state, drawing every reusable
// piece from cfg.Arena when one is supplied.
func newRuntime(cfg Config, n int) *runtime {
	a := cfg.Arena
	if a == nil {
		rt := &runtime{cfg: cfg, procs: make([]*procState, n)}
		for i := range rt.procs {
			rt.procs[i] = &procState{
				msgCh: make(chan message),
				resCh: make(chan resume),
				live:  true,
			}
		}
		return rt
	}
	for len(a.procs) < n {
		a.procs = append(a.procs, &procState{
			msgCh: make(chan message),
			resCh: make(chan resume),
		})
	}
	rt := &a.rt
	*rt = runtime{cfg: cfg, procs: a.procs[:n], arena: a}
	for _, p := range rt.procs {
		msgCh, resCh := p.msgCh, p.resCh
		*p = procState{msgCh: msgCh, resCh: resCh, live: true}
	}
	if !cfg.DisableTrace {
		rt.trace.Events = a.events[:0]
	}
	return rt
}
