package sim

import "errors"

// This file defines the simulator's crash-restart fault model: the split of
// state into persistent and volatile halves, the directives a fault-injecting
// scheduler issues, and the recovery step a restarted process runs before its
// program re-executes.
//
// The paper's own fault model is crash-stop — a crashed process is merely one
// the adversary never schedules again, expressible with any Scheduler (see
// sim.Crashing). Crash-*restart* is strictly richer: a crashed process loses
// its volatile state (program locals, the in-flight invocation, any volatile
// fields of Recoverable objects) and later re-enters from the top of its
// program, preceded by Config.Recovery. Durable object state survives. This
// is the individual-crash-restart model with explicit persistence used by the
// recoverable-objects literature ("Determining Recoverable Consensus
// Numbers", Ovens 2024; see PAPERS.md): shared base objects are
// non-volatile, process-local state is volatile, and an object's power can
// change when its implementation keeps decision-relevant state in the wrong
// half.
//
// Everything stays inside the deterministic lockstep discipline: faults are
// issued by the run's Scheduler (via the optional FaultInjector interface),
// are applied synchronously between steps, are recorded in the trace as
// EventCrash/EventRestart, and are replayed by VerifyReplay. A (seed,
// config, scheduler) triple still identifies a unique execution.

// ErrBadFault is returned by Run when a FaultInjector issues a directive
// that cannot be applied: crashing a process with no pending invocation
// (already finished, hung, or crashed), or restarting a process that is not
// crashed.
var ErrBadFault = errors.New("sim: fault directive targets an ineligible process")

// FaultKind enumerates the fault directives a FaultInjector may issue.
type FaultKind int

const (
	// FaultCrash crashes a process with a pending invocation: the pending
	// invocation is wiped (it is never applied; the trace records it in the
	// EventCrash event), the process goroutine is discarded together with
	// all program locals, and every Recoverable object is told to drop the
	// process's volatile state. The process contributes nothing further to
	// the run until a FaultRestart; if none arrives it ends the run with
	// StatusCrashed.
	FaultCrash FaultKind = iota
	// FaultRestart restarts a crashed process amnesiacally: a fresh
	// goroutine runs Config.Recovery (if set) and then the process's
	// Program again from the top, under an incremented Ctx.Incarnation.
	// Nothing of the previous incarnation's volatile state survives; state
	// intended to survive must live in durable object fields.
	FaultRestart
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	default:
		return "FaultKind(?)"
	}
}

// Fault is one directive issued by a FaultInjector.
type Fault struct {
	// Proc is the id of the targeted process.
	Proc int
	// Kind selects crash or restart.
	Kind FaultKind
}

// FaultInjector is an optional interface for schedulers. When the run's
// Scheduler implements it, the runtime consults Faults once per scheduling
// round, before Next. A non-empty batch is applied in order (so a crash
// directly followed by a restart of the same process models a zero-window
// restart) and the round is then restarted with a recomputed View; Next is
// not called in rounds that applied faults.
//
// Contract:
//   - Directives must be applicable (see ErrBadFault): only processes
//     listed in v.Enabled can be crashed, only processes listed in
//     v.Crashed can be restarted.
//   - Faults may be consulted several times at the same v.Step (after a
//     fault batch, and again after restarts settle), so implementations
//     must keep their own fired/not-fired state rather than keying on
//     step equality alone.
//   - The total number of directives in a run is bounded by the step
//     budget; exceeding it fails the run with ErrMaxSteps, which keeps
//     crash-restart loops from running forever.
//   - Like Next, Faults must be a pure function of the views (and any
//     events observed via Observer) seen so far — no clocks, no unseeded
//     randomness — so that runs stay seed-reproducible.
type FaultInjector interface {
	Faults(v View) []Fault
}

// Recoverable is an optional interface for shared objects, splitting their
// state into a durable half and a volatile half. When a process crashes the
// runtime calls OnCrash(proc) on every Recoverable object (in sorted object-
// name order, for determinism): the object must discard any state it holds
// on the crashed process's behalf that would not survive a power loss —
// write-behind buffers, response caches, per-process scratch slots. Durable
// fields are untouched.
//
// Objects that do not implement Recoverable are entirely durable, which
// matches the shared-memory model where base objects live in non-volatile
// memory; plain registers need no OnCrash. An object may also implement
// Recoverable with a no-op OnCrash to document that all of its state is
// deliberately durable.
type Recoverable interface {
	Object
	// OnCrash discards all volatile state held for process proc. It must
	// not touch durable state and must not block.
	OnCrash(proc int)
}

// RecoveryProc is the per-process recovery step run by a restarted process
// before its Program re-executes (Config.Recovery). It runs on the
// restarted process's goroutine under the same lockstep discipline as a
// Program — every Invoke consumes a scheduler step — and is subject to the
// same purity contract: it must be a pure function of its invocation
// results, or VerifyReplay will flag the run. Ctx.Incarnation reports which
// incarnation is recovering (always >= 1 inside a RecoveryProc).
type RecoveryProc func(ctx *Ctx)
