package sim

import (
	"errors"
	"fmt"
	"reflect"
)

// ErrReplayDivergence is returned by Run (wrapped, with detail) when
// Config.VerifyReplay is set and re-executing a program against the
// recorded trace produced a different behaviour.
var ErrReplayDivergence = errors.New("sim: replay diverged from recorded trace")

// verifyReplay re-executes every program against the run's recorded
// trace and reports the first divergence. The simulator's determinism
// story rests on programs being pure functions of their invocation
// results: given the same sequence of object responses, a program must
// issue the same invocations, record the same marks, and return the
// same output. Objects cannot be re-run (they carry consumed state), so
// replay verifies the program side only: each process is re-executed in
// isolation with responses fed from its recorded per-process event
// sequence. A program that consults a wall clock, an unseeded random
// source, or mutable state smuggled across runs in a closure will issue
// a different invocation or output and fail here.
//
// Processes replay sequentially and independently; the Program contract
// forbids sharing mutable memory between processes, so isolation is
// sound.
func verifyReplay(cfg Config, res *Result) error {
	for id := range cfg.Programs {
		if res.Status[id] == StatusFailed {
			// The original run returned an error; Run never reaches
			// replay with a failed process, but keep the guard local.
			continue
		}
		if err := replayProc(cfg, res, id); err != nil {
			return err
		}
	}
	return nil
}

// replayProc re-executes one program against its recorded sub-trace.
func replayProc(cfg Config, res *Result, id int) error {
	expected := res.Trace.ByProc(id).Events
	p := &procState{
		msgCh: make(chan message),
		resCh: make(chan resume),
		live:  true,
	}
	//detlint:allow nodeterminism sequential playback: this is the only live goroutine and it blocks on resCh between messages, so the exchange is a deterministic handshake
	go runProgram(id, cfg.Programs[id], p)

	next := 0
	failf := func(format string, args ...any) error {
		pos := "event " + fmt.Sprint(next)
		if next < len(expected) {
			pos += " " + expected[next].String()
		}
		return fmt.Errorf("%w: process %d at %s: %s", ErrReplayDivergence, id, pos, fmt.Sprintf(format, args...))
	}

	for {
		m := <-p.msgCh
		switch m.kind {
		case msgInvoke:
			// The goroutine is parked on resCh; abort it before failing.
			if next >= len(expected) {
				if res.Status[id] == StatusStopped {
					// The run stopped with this invocation pending; the
					// replay confirmed everything that was recorded.
					abortReplay(p)
					return nil
				}
				abortReplay(p)
				return failf("extra invocation %s.%s", m.obj, m.inv.Op)
			}
			e := expected[next]
			if e.Kind == EventCrash {
				// The run crashed this process while exactly this
				// invocation was pending: wipe the replayed incarnation
				// too, then either confirm the process stayed crashed or
				// re-execute the recorded restart.
				if e.Object != m.obj || e.Op != m.inv.Op || !reflect.DeepEqual(e.Args, m.inv.Args) {
					abortReplay(p)
					return failf("program invoked %s.%s%v, crash wiped a different invocation", m.obj, m.inv.Op, m.inv.Args)
				}
				abortReplay(p)
				next++
				if next >= len(expected) {
					if res.Status[id] != StatusCrashed {
						return failf("trace ends with a crash but process status is %v", res.Status[id])
					}
					return nil
				}
				r := expected[next]
				if r.Kind != EventRestart {
					return failf("crash followed by %s event, want restart", r.Kind)
				}
				next++
				inc, ok := r.Out.(int)
				if !ok {
					return failf("restart event carries incarnation %v, want an int", r.Out)
				}
				p.live = true
				//detlint:allow nodeterminism sequential playback: the restarted goroutine is the only live one and blocks on resCh between messages, same handshake as the initial replay goroutine
				go runIncarnation(id, inc, cfg.Recovery, cfg.Programs[id], p)
				continue
			}
			if e.Kind != EventStep {
				abortReplay(p)
				return failf("program invoked %s.%s, trace records a %s mark", m.obj, m.inv.Op, e.Kind)
			}
			if e.Object != m.obj || e.Op != m.inv.Op || !reflect.DeepEqual(e.Args, m.inv.Args) {
				abortReplay(p)
				return failf("program invoked %s.%s%v", m.obj, m.inv.Op, m.inv.Args)
			}
			next++
			if e.Hang {
				if res.Status[id] != StatusHung {
					abortReplay(p)
					return failf("trace records a hang but process status is %v", res.Status[id])
				}
				abortReplay(p)
				return nil
			}
			p.resCh <- resume{value: e.Out}
		case msgMark:
			// The goroutine runs on after a mark; drain it to its next
			// blocking point before failing.
			if next >= len(expected) {
				err := failf("extra %s mark on %s.%s", m.markKind, m.obj, m.inv.Op)
				drain(p)
				return err
			}
			e := expected[next]
			if e.Kind != m.markKind || e.Object != m.obj || e.Op != m.inv.Op ||
				!reflect.DeepEqual(e.Args, m.inv.Args) || !reflect.DeepEqual(e.Out, m.markOut) {
				err := failf("program recorded %s mark %s.%s%v -> %v", m.markKind, m.obj, m.inv.Op, m.inv.Args, m.markOut)
				drain(p)
				return err
			}
			next++
		case msgDone:
			p.live = false
			if next < len(expected) {
				return failf("program finished with %d recorded event(s) left", len(expected)-next)
			}
			if res.Status[id] != StatusDone {
				return failf("program finished but recorded status is %v", res.Status[id])
			}
			if !reflect.DeepEqual(res.Outputs[id], m.out) {
				return failf("program output %v, recorded output %v", m.out, res.Outputs[id])
			}
			return nil
		case msgPanic:
			p.live = false
			return failf("program panicked: %v", m.err)
		}
	}
}

// abortReplay unwinds a replayed goroutine that is parked on resCh.
func abortReplay(p *procState) {
	if p.live {
		p.live = false
		p.resCh <- resume{abort: true}
	}
}

// drain runs a replayed goroutine forward past any buffered marks until
// it blocks on resCh (then aborts it) or exits, so a divergence return
// does not leak a goroutine stuck on an unread channel.
func drain(p *procState) {
	for p.live {
		m := <-p.msgCh
		switch m.kind {
		case msgInvoke:
			abortReplay(p)
		case msgDone, msgPanic:
			p.live = false
		}
	}
}
