package tasks

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"detobj/internal/sim"
)

func outcome(inputs map[int]sim.Value, outputs map[int]sim.Value) Outcome {
	return Outcome{Inputs: inputs, Outputs: outputs}
}

func TestSetConsensusValid(t *testing.T) {
	o := outcome(
		map[int]sim.Value{0: "a", 1: "b", 2: "c"},
		map[int]sim.Value{0: "a", 1: "a", 2: "b"},
	)
	if err := (SetConsensus{K: 2}).Check(o); err != nil {
		t.Errorf("valid outcome rejected: %v", err)
	}
}

func TestSetConsensusValidityViolation(t *testing.T) {
	o := outcome(
		map[int]sim.Value{0: "a", 1: "b"},
		map[int]sim.Value{0: "z"},
	)
	err := (SetConsensus{K: 2}).Check(o)
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("err = %v, want ErrViolation", err)
	}
	if !strings.Contains(err.Error(), "validity") {
		t.Errorf("error does not mention validity: %v", err)
	}
}

func TestSetConsensusAgreementViolation(t *testing.T) {
	o := outcome(
		map[int]sim.Value{0: 1, 1: 2, 2: 3},
		map[int]sim.Value{0: 1, 1: 2, 2: 3},
	)
	if err := (SetConsensus{K: 2}).Check(o); !errors.Is(err, ErrViolation) {
		t.Fatalf("3 distinct outputs passed a 2-set consensus check")
	}
	if err := (SetConsensus{K: 3}).Check(o); err != nil {
		t.Errorf("3 distinct outputs rejected by 3-set consensus: %v", err)
	}
}

func TestConsensusTask(t *testing.T) {
	c := Consensus()
	if c.K != 1 || c.Name() != "consensus" {
		t.Errorf("Consensus() = %+v (%q)", c, c.Name())
	}
	o := outcome(map[int]sim.Value{0: 5, 1: 9}, map[int]sim.Value{0: 5, 1: 9})
	if err := c.Check(o); !errors.Is(err, ErrViolation) {
		t.Error("disagreement passed consensus check")
	}
}

func TestSetConsensusPartialOutputsAllowed(t *testing.T) {
	// Processes that have not decided are simply absent from Outputs.
	o := outcome(map[int]sim.Value{0: 1, 1: 2}, map[int]sim.Value{1: 2})
	if err := (SetConsensus{K: 1}).Check(o); err != nil {
		t.Errorf("partial outcome rejected: %v", err)
	}
}

func TestElection(t *testing.T) {
	o := outcome(
		map[int]sim.Value{3: 3, 5: 5, 9: 9},
		map[int]sim.Value{3: 5, 5: 5, 9: 9},
	)
	if err := (Election{K: 2}).Check(o); err != nil {
		t.Errorf("valid election rejected: %v", err)
	}
	bad := outcome(map[int]sim.Value{3: 3}, map[int]sim.Value{3: 4})
	if err := (Election{K: 2}).Check(bad); !errors.Is(err, ErrViolation) {
		t.Error("electing a non-participant passed")
	}
	nonID := outcome(map[int]sim.Value{3: 3}, map[int]sim.Value{3: "x"})
	if err := (Election{K: 2}).Check(nonID); !errors.Is(err, ErrViolation) {
		t.Error("non-identifier output passed election check")
	}
}

func TestStrongElection(t *testing.T) {
	ok := outcome(
		map[int]sim.Value{0: 0, 1: 1, 2: 2},
		map[int]sim.Value{0: 1, 1: 1, 2: 2},
	)
	if err := (StrongElection{K: 2}).Check(ok); err != nil {
		t.Errorf("valid strong election rejected: %v", err)
	}
	// Process 0 elects 1, but 1 elected 2: self-election violated.
	bad := outcome(
		map[int]sim.Value{0: 0, 1: 1, 2: 2},
		map[int]sim.Value{0: 1, 1: 2, 2: 2},
	)
	err := (StrongElection{K: 2}).Check(bad)
	if !errors.Is(err, ErrViolation) || !strings.Contains(err.Error(), "self-election") {
		t.Errorf("self-election violation not caught: %v", err)
	}
}

func TestStrongElectionUndecidedLeaderAllowed(t *testing.T) {
	// The elected process has not decided yet; only decided outputs are
	// checked against self-election.
	o := outcome(
		map[int]sim.Value{0: 0, 1: 1},
		map[int]sim.Value{0: 1},
	)
	if err := (StrongElection{K: 1}).Check(o); err != nil {
		t.Errorf("outcome with undecided leader rejected: %v", err)
	}
}

func TestRenaming(t *testing.T) {
	ok := outcome(
		map[int]sim.Value{10: 10, 20: 20, 30: 30},
		map[int]sim.Value{10: 0, 20: 4, 30: 2},
	)
	if err := (Renaming{Names: 5}).Check(ok); err != nil {
		t.Errorf("valid renaming rejected: %v", err)
	}
	dup := outcome(
		map[int]sim.Value{10: 10, 20: 20},
		map[int]sim.Value{10: 1, 20: 1},
	)
	if err := (Renaming{Names: 5}).Check(dup); !errors.Is(err, ErrViolation) {
		t.Error("duplicate names passed renaming check")
	}
	out := outcome(map[int]sim.Value{10: 10}, map[int]sim.Value{10: 5})
	if err := (Renaming{Names: 5}).Check(out); !errors.Is(err, ErrViolation) {
		t.Error("out-of-range name passed renaming check")
	}
	bad := outcome(map[int]sim.Value{10: 10}, map[int]sim.Value{10: "n"})
	if err := (Renaming{Names: 5}).Check(bad); !errors.Is(err, ErrViolation) {
		t.Error("non-integer name passed renaming check")
	}
}

func TestOutcomeParticipants(t *testing.T) {
	o := outcome(map[int]sim.Value{5: 1, 2: 2, 9: 3}, nil)
	got := o.Participants()
	want := []int{2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Participants = %v, want %v", got, want)
		}
	}
}

func TestOutcomeFromResult(t *testing.T) {
	res := &sim.Result{
		Outputs: []sim.Value{"a", "b", "c"},
		Status:  []sim.ProcStatus{sim.StatusDone, sim.StatusHung, sim.StatusDone},
	}
	participants := map[int]sim.Value{0: "in0", 1: "in1", 2: "in2"}
	o := OutcomeFromResult(res, participants)
	if len(o.Outputs) != 2 {
		t.Fatalf("outputs = %v, want 2 entries", o.Outputs)
	}
	if o.Outputs[0] != "a" || o.Outputs[2] != "c" {
		t.Errorf("outputs = %v", o.Outputs)
	}
	if _, ok := o.Outputs[1]; ok {
		t.Error("hung process contributed an output")
	}
}

func TestOutcomeFromResultIgnoresNonParticipants(t *testing.T) {
	res := &sim.Result{
		Outputs: []sim.Value{"a", "b"},
		Status:  []sim.ProcStatus{sim.StatusDone, sim.StatusDone},
	}
	o := OutcomeFromResult(res, map[int]sim.Value{1: "in1"})
	if len(o.Outputs) != 1 {
		t.Errorf("outputs = %v, want only process 1", o.Outputs)
	}
}

func TestTaskNames(t *testing.T) {
	cases := []struct {
		task Task
		want string
	}{
		{SetConsensus{K: 3}, "3-set consensus"},
		{Election{K: 2}, "2-set election"},
		{StrongElection{K: 2}, "2-strong set election"},
		{Renaming{Names: 5}, "renaming into 5 names"},
	}
	for _, c := range cases {
		if got := c.task.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

// TestQuickSetConsensusDistinctBound: for random outcomes whose outputs
// copy some participant's input, the checker accepts iff the number of
// distinct outputs is at most K.
func TestQuickSetConsensusDistinctBound(t *testing.T) {
	f := func(rawK uint8, picks []uint8) bool {
		k := int(rawK%4) + 1
		inputs := map[int]sim.Value{}
		for i := 0; i < 8; i++ {
			inputs[i] = i * 10
		}
		outputs := map[int]sim.Value{}
		for i, p := range picks {
			if i >= 8 {
				break
			}
			outputs[i] = int(p%8) * 10
		}
		o := outcome(inputs, outputs)
		err := (SetConsensus{K: k}).Check(o)
		if o.DistinctOutputs() <= k {
			return err == nil
		}
		return errors.Is(err, ErrViolation)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestImmediateSnapshotChecker(t *testing.T) {
	task := ImmediateSnapshot{}
	view := func(pairs ...any) map[int]sim.Value {
		m := map[int]sim.Value{}
		for i := 0; i+1 < len(pairs); i += 2 {
			m[pairs[i].(int)] = pairs[i+1]
		}
		return m
	}
	inputs := map[int]sim.Value{0: "a", 1: "b", 2: "c"}

	ok := outcome(inputs, map[int]sim.Value{
		0: view(0, "a"),
		1: view(0, "a", 1, "b"),
		2: view(0, "a", 1, "b", 2, "c"),
	})
	if err := task.Check(ok); err != nil {
		t.Errorf("valid IS outcome rejected: %v", err)
	}

	cases := map[string]Outcome{
		"missing self": outcome(inputs, map[int]sim.Value{
			0: view(1, "b"),
		}),
		"wrong value": outcome(inputs, map[int]sim.Value{
			0: view(0, "z"),
		}),
		"non participant": outcome(inputs, map[int]sim.Value{
			0: view(0, "a", 9, "x"),
		}),
		"incomparable": outcome(inputs, map[int]sim.Value{
			0: view(0, "a", 1, "b"),
			2: view(2, "c", 1, "b"),
		}),
		"immediacy": outcome(inputs, map[int]sim.Value{
			// 1 sees 0, but 0's view {0,1,2} is larger than 1's {0,1}:
			// containment holds pairwise ordered, immediacy broken.
			0: view(0, "a", 1, "b", 2, "c"),
			1: view(0, "a", 1, "b"),
		}),
		"not a view": outcome(inputs, map[int]sim.Value{
			0: "scalar",
		}),
	}
	for name, o := range cases {
		if err := task.Check(o); !errors.Is(err, ErrViolation) {
			t.Errorf("%s: err = %v, want ErrViolation", name, err)
		}
	}
	if task.Name() != "immediate snapshot" {
		t.Error("Name mismatch")
	}
}
