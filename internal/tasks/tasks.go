// Package tasks defines the distributed tasks of the paper — consensus,
// k-set consensus, k-set election, strong set election, and M-to-(2k−1)
// renaming — as checkers over the inputs and outputs of a run. A task
// specifies which combinations of output values are allowed given the
// inputs of the participating processes; checkers judge decision vectors
// and never inspect algorithm internals, so algorithms cannot
// self-certify.
package tasks

import (
	"errors"
	"fmt"
	"sort"

	"detobj/internal/sim"
)

// ErrViolation is wrapped by every checker failure, so callers can test
// errors.Is(err, ErrViolation).
var ErrViolation = errors.New("task violation")

// Outcome is the judged artifact of a run: the inputs of participating
// processes and the outputs of those that decided. Processes that hang or
// are stopped simply have no entry in Outputs; a wait-free solution must
// eventually give every participant an entry, which callers enforce
// separately via sim.Result.AllDone.
type Outcome struct {
	Inputs  map[int]sim.Value
	Outputs map[int]sim.Value
}

// Participants returns the ids of participating processes in increasing
// order.
func (o Outcome) Participants() []int {
	return sortedIDs(o.Inputs)
}

// DecidedIDs returns the ids of processes with an output, in increasing
// order. Checkers iterate this instead of ranging over Outputs directly so
// that the first violation reported is deterministic.
func (o Outcome) DecidedIDs() []int {
	return sortedIDs(o.Outputs)
}

// sortedIDs returns the keys of m in increasing order.
func sortedIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// DistinctOutputs returns the number of distinct decided values.
func (o Outcome) DistinctOutputs() int {
	seen := make(map[sim.Value]struct{}, len(o.Outputs))
	for _, v := range o.Outputs {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// OutcomeFromResult assembles an Outcome from a run result and the input
// vector, taking outputs from processes with StatusDone. participants maps
// process index to its input value.
func OutcomeFromResult(res *sim.Result, participants map[int]sim.Value) Outcome {
	o := Outcome{Inputs: participants, Outputs: make(map[int]sim.Value)}
	for id, v := range res.Decided() {
		if _, ok := participants[id]; ok {
			o.Outputs[id] = v
		}
	}
	return o
}

// Task is a decision task: a predicate over outcomes.
type Task interface {
	// Name identifies the task, e.g. "(5,4)-set consensus".
	Name() string
	// Check returns nil if the outcome satisfies the task specification,
	// or an error wrapping ErrViolation describing the first violation.
	Check(o Outcome) error
}

// SetConsensus is the k-set consensus task: every output is the input of
// some participant (validity) and at most K distinct values are output
// (k-agreement). K = 1 is the consensus task.
type SetConsensus struct {
	K int
}

// Consensus returns the consensus task (1-set consensus).
func Consensus() SetConsensus { return SetConsensus{K: 1} }

// Name implements Task.
func (s SetConsensus) Name() string {
	if s.K == 1 {
		return "consensus"
	}
	return fmt.Sprintf("%d-set consensus", s.K)
}

// Check implements Task.
func (s SetConsensus) Check(o Outcome) error {
	proposed := make(map[sim.Value]struct{}, len(o.Inputs))
	for _, v := range o.Inputs {
		proposed[v] = struct{}{}
	}
	for _, id := range o.DecidedIDs() {
		v := o.Outputs[id]
		if _, ok := proposed[v]; !ok {
			return fmt.Errorf("%w: validity: process %d decided %v, which no participant proposed", ErrViolation, id, v)
		}
	}
	if d := o.DistinctOutputs(); d > s.K {
		return fmt.Errorf("%w: agreement: %d distinct decisions, task allows at most %d", ErrViolation, d, s.K)
	}
	return nil
}

// Election is the k-set election task: k-set consensus in which every
// process proposes its own identifier, so outputs must be identifiers of
// participants and at most K distinct identifiers are elected.
type Election struct {
	K int
}

// Name implements Task.
func (e Election) Name() string { return fmt.Sprintf("%d-set election", e.K) }

// Check implements Task.
func (e Election) Check(o Outcome) error {
	for _, id := range o.DecidedIDs() {
		v := o.Outputs[id]
		elected, ok := v.(int)
		if !ok {
			return fmt.Errorf("%w: election: process %d elected non-identifier %v", ErrViolation, id, v)
		}
		if _, participating := o.Inputs[elected]; !participating {
			return fmt.Errorf("%w: election: process %d elected %d, which is not a participant", ErrViolation, id, elected)
		}
	}
	if d := o.DistinctOutputs(); d > e.K {
		return fmt.Errorf("%w: election: %d distinct leaders, task allows at most %d", ErrViolation, d, e.K)
	}
	return nil
}

// StrongElection is the k-strong set election task: k-set election with
// the self-election property — if some process decides on p, then p (if it
// decided) decided on itself.
type StrongElection struct {
	K int
}

// Name implements Task.
func (s StrongElection) Name() string { return fmt.Sprintf("%d-strong set election", s.K) }

// Check implements Task.
func (s StrongElection) Check(o Outcome) error {
	if err := (Election{K: s.K}).Check(o); err != nil {
		return err
	}
	for _, id := range o.DecidedIDs() {
		elected := o.Outputs[id].(int)
		if out, ok := o.Outputs[elected]; ok && out != elected {
			return fmt.Errorf("%w: self-election: process %d elected %d, but %d elected %v", ErrViolation, id, elected, elected, out)
		}
	}
	return nil
}

// Renaming is the M-renaming task: participants acquire pairwise distinct
// names in {0, ..., Names-1}. Inputs are the original identifiers.
type Renaming struct {
	Names int
}

// Name implements Task.
func (r Renaming) Name() string { return fmt.Sprintf("renaming into %d names", r.Names) }

// Check implements Task.
func (r Renaming) Check(o Outcome) error {
	taken := make(map[int]int, len(o.Outputs))
	for _, id := range o.DecidedIDs() {
		v := o.Outputs[id]
		name, ok := v.(int)
		if !ok {
			return fmt.Errorf("%w: renaming: process %d produced non-integer name %v", ErrViolation, id, v)
		}
		if name < 0 || name >= r.Names {
			return fmt.Errorf("%w: renaming: process %d took name %d outside [0,%d)", ErrViolation, id, name, r.Names)
		}
		if prev, dup := taken[name]; dup {
			return fmt.Errorf("%w: renaming: processes %d and %d both took name %d", ErrViolation, prev, id, name)
		}
		taken[name] = id
	}
	return nil
}

// ImmediateSnapshot is the one-shot immediate snapshot task: each
// participant p outputs a view V_p (a map from participant id to input
// value) such that
//
//	self-inclusion:  p ∈ V_p with p's own input;
//	validity:        every entry of V_p is some participant's input;
//	containment:     any two views are ordered by inclusion;
//	immediacy:       q ∈ V_p implies V_q ⊆ V_p (for decided q).
//
// Immediate snapshots are the iterated building block of the BG
// simulation, which underlies the reductions the paper cites.
type ImmediateSnapshot struct{}

// Name implements Task.
func (ImmediateSnapshot) Name() string { return "immediate snapshot" }

// Check implements Task.
func (ImmediateSnapshot) Check(o Outcome) error {
	decided := o.DecidedIDs()
	views := make(map[int]map[int]sim.Value, len(o.Outputs))
	for _, id := range decided {
		raw := o.Outputs[id]
		view, ok := raw.(map[int]sim.Value)
		if !ok {
			return fmt.Errorf("%w: immediate snapshot: process %d output %T, want a view", ErrViolation, id, raw)
		}
		views[id] = view
		if got, ok := view[id]; !ok || got != o.Inputs[id] {
			return fmt.Errorf("%w: immediate snapshot: process %d's view misses itself (%v)", ErrViolation, id, view)
		}
		for _, q := range sortedIDs(view) {
			v := view[q]
			in, ok := o.Inputs[q]
			if !ok {
				return fmt.Errorf("%w: immediate snapshot: process %d saw non-participant %d", ErrViolation, id, q)
			}
			if v != in {
				return fmt.Errorf("%w: immediate snapshot: process %d saw %v for %d, input was %v", ErrViolation, id, v, q, in)
			}
		}
	}
	for _, p := range decided {
		vp := views[p]
		for _, q := range decided {
			vq := views[q]
			if !viewSubset(vp, vq) && !viewSubset(vq, vp) {
				return fmt.Errorf("%w: immediate snapshot: views of %d and %d incomparable", ErrViolation, p, q)
			}
		}
		for _, q := range sortedIDs(vp) {
			if vq, ok := views[q]; ok && !viewSubset(vq, vp) {
				return fmt.Errorf("%w: immediate snapshot: immediacy: %d ∈ V_%d but V_%d ⊄ V_%d", ErrViolation, q, p, q, p)
			}
		}
	}
	return nil
}

func viewSubset(a, b map[int]sim.Value) bool {
	for k, v := range a { //detlint:allow nodeterminism order-independent all-quantifier: any order yields the same boolean
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
