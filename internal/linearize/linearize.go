// Package linearize implements a Wing–Gong style linearizability checker:
// given the real-time history of operations observed on an (implemented)
// object and a sequential specification, it searches for a legal
// linearization — a total order of the operations that respects real-time
// precedence and the specification. The search is exponential in the
// worst case but memoizes on (set of linearized operations, state), which
// makes the small histories produced by the simulator cheap to check.
//
// Histories are extracted from sim traces via Ops: algorithm code brackets
// each logical operation with Ctx.BeginOp / Ctx.EndOp, and the checker
// consumes those intervals.
package linearize

import (
	"fmt"
	"sort"
	"strings"

	"detobj/internal/sim"
)

// MaxOps bounds the number of operations per checked history (the
// memoization set is a 64-bit mask).
const MaxOps = 64

// Op is one operation interval in a history. A pending operation (a call
// whose issuer crashed before returning) has Pending set; it may have
// taken effect, so the checker is allowed to linearize it at any point
// after its call — with an unconstrained result — or to drop it entirely.
type Op struct {
	// Proc is the process that issued the operation.
	Proc int
	// Name and Args identify the operation.
	Name string
	Args []sim.Value
	// Out is the observed result (meaningless when Pending).
	Out sim.Value
	// Call and Return are the global sequence numbers of the operation's
	// start and completion; Call < Return always. Pending operations have
	// Return set to a value larger than every other sequence number.
	Call   int
	Return int
	// Pending marks an uncompleted operation.
	Pending bool
}

// String renders the op with its interval.
func (o Op) String() string {
	return fmt.Sprintf("P%d %s [%d,%d] -> %v", o.Proc, sim.Invocation{Op: o.Name, Args: o.Args}, o.Call, o.Return, o.Out)
}

// Spec is a sequential specification. States must be treated as immutable:
// Apply returns a fresh state rather than mutating its argument.
type Spec struct {
	// Init returns the initial state.
	Init func() any
	// Apply applies one operation to a state, returning the successor
	// state and the specified output.
	Apply func(state any, name string, args []sim.Value) (any, sim.Value)
	// Key serializes a state for memoization; nil defaults to fmt.Sprintf("%v").
	Key func(state any) string
	// Equal compares an observed output with the specified one; nil
	// defaults to ==. Provide it when outputs are slices.
	Equal func(observed, specified sim.Value) bool
}

func (s Spec) key(state any) string {
	if s.Key != nil {
		return s.Key(state)
	}
	return fmt.Sprintf("%v", state)
}

func (s Spec) equal(a, b sim.Value) bool {
	if s.Equal != nil {
		return s.Equal(a, b)
	}
	return a == b
}

// Ops extracts the completed operation intervals on the named logical
// object from a trace. Operations left pending (a call with no return) are
// ignored, which corresponds to linearizing the empty subset of the
// uncompleted operations; use OpsWithPending when pending operations may
// have taken effect (crashed callers).
func Ops(t sim.Trace, object string) []Op {
	done, _ := OpsWithPending(t, object)
	return done
}

// OpsWithPending extracts both the completed operation intervals and the
// pending ones (calls with no matching return) on the named object.
// Pending ops carry Pending=true and a Return beyond every sequence
// number, so Check may linearize them anywhere after their call or drop
// them.
func OpsWithPending(t sim.Trace, object string) (completed, pending []Op) {
	open := make(map[int]*Op)
	maxSeq := 0
	for _, e := range t.Events {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		if e.Object != object {
			continue
		}
		switch e.Kind {
		case sim.EventCall:
			op := &Op{Proc: e.Proc, Name: e.Op, Args: e.Args, Call: e.Seq}
			open[e.Proc] = op
		case sim.EventReturn:
			op, ok := open[e.Proc]
			if !ok {
				continue
			}
			op.Return = e.Seq
			op.Out = e.Out
			completed = append(completed, *op)
			delete(open, e.Proc)
		}
	}
	for _, op := range open {
		op.Pending = true
		op.Return = maxSeq + 1
		pending = append(pending, *op)
	}
	sort.Slice(completed, func(i, j int) bool { return completed[i].Call < completed[j].Call })
	sort.Slice(pending, func(i, j int) bool { return pending[i].Call < pending[j].Call })
	return completed, pending
}

// Result reports the outcome of a check.
type Result struct {
	// OK is true if a legal linearization exists.
	OK bool
	// Order, when OK, lists indices into the checked ops slice in
	// linearization order.
	Order []int
}

// Check searches for a linearization of ops under spec. It panics if more
// than MaxOps operations are supplied.
func Check(spec Spec, ops []Op) Result {
	if len(ops) > MaxOps {
		panic(fmt.Sprintf("linearize: %d operations exceed the %d-op limit", len(ops), MaxOps))
	}
	c := &checker{spec: spec, ops: ops, failed: make(map[string]struct{})}
	order := make([]int, 0, len(ops))
	if c.search(0, spec.Init(), order) {
		return Result{OK: true, Order: c.found}
	}
	return Result{OK: false}
}

type checker struct {
	spec   Spec
	ops    []Op
	failed map[string]struct{}
	found  []int
}

// search tries to extend the linearization; linearized is a bitmask of
// already-ordered ops. Pending ops need not be linearized; completed ops
// must be.
func (c *checker) search(linearized uint64, state any, order []int) bool {
	remaining := false
	for i, op := range c.ops {
		if !op.Pending && linearized&(1<<uint(i)) == 0 {
			remaining = true
			break
		}
	}
	if !remaining {
		c.found = append([]int(nil), order...)
		return true
	}
	memo := fmt.Sprintf("%x|%s", linearized, c.spec.key(state))
	if _, seen := c.failed[memo]; seen {
		return false
	}
	// minReturn over unlinearized ops: an op may go next only if its call
	// precedes every unlinearized op's return.
	minReturn := int(^uint(0) >> 1)
	for i, op := range c.ops {
		if linearized&(1<<uint(i)) == 0 && op.Return < minReturn {
			minReturn = op.Return
		}
	}
	for i, op := range c.ops {
		if linearized&(1<<uint(i)) != 0 {
			continue
		}
		if op.Call > minReturn {
			continue // some unlinearized op completed before this one began
		}
		next, out := c.spec.Apply(state, op.Name, op.Args)
		if !op.Pending && !c.spec.equal(op.Out, out) {
			continue
		}
		if c.search(linearized|1<<uint(i), next, append(order, i)) {
			return true
		}
	}
	c.failed[memo] = struct{}{}
	return false
}

// Explain renders a linearization order for diagnostics.
func Explain(ops []Op, r Result) string {
	if !r.OK {
		return "not linearizable"
	}
	var b strings.Builder
	for pos, idx := range r.Order {
		if pos > 0 {
			b.WriteString(" ; ")
		}
		b.WriteString(ops[idx].String())
	}
	return b.String()
}
