package linearize

import (
	"math/rand"
	"strings"
	"testing"

	"detobj/internal/sim"
)

// registerSpec is the sequential specification of a read/write register.
func registerSpec(initial sim.Value) Spec {
	return Spec{
		Init: func() any { return initial },
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			switch name {
			case "write":
				return args[0], nil
			case "read":
				return state, state
			default:
				panic("unknown op " + name)
			}
		},
	}
}

// counterSpec is the sequential specification of an inc/read counter.
func counterSpec() Spec {
	return Spec{
		Init: func() any { return 0 },
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			n := state.(int)
			switch name {
			case "inc":
				return n + 1, nil
			case "read":
				return n, n
			default:
				panic("unknown op " + name)
			}
		},
	}
}

func TestCheckLinearizableRegisterHistory(t *testing.T) {
	// P0: write(1) [0,3]   P1: read->1 [1,2] — read overlaps the write and
	// sees it: linearizable.
	ops := []Op{
		{Proc: 0, Name: "write", Args: []sim.Value{1}, Call: 0, Return: 3},
		{Proc: 1, Name: "read", Out: 1, Call: 1, Return: 2},
	}
	res := Check(registerSpec(0), ops)
	if !res.OK {
		t.Fatal("linearizable history rejected")
	}
	if len(res.Order) != 2 || res.Order[0] != 0 {
		t.Errorf("order = %v, want write first", res.Order)
	}
	if !strings.Contains(Explain(ops, res), "write") {
		t.Error("Explain output missing ops")
	}
}

func TestCheckNonLinearizableRegisterHistory(t *testing.T) {
	// The write completes strictly before the read begins, but the read
	// misses it: not linearizable.
	ops := []Op{
		{Proc: 0, Name: "write", Args: []sim.Value{1}, Call: 0, Return: 1},
		{Proc: 1, Name: "read", Out: 0, Call: 2, Return: 3},
	}
	res := Check(registerSpec(0), ops)
	if res.OK {
		t.Fatal("non-linearizable history accepted")
	}
	if Explain(ops, res) != "not linearizable" {
		t.Errorf("Explain = %q", Explain(ops, res))
	}
}

func TestCheckNewOldInversion(t *testing.T) {
	// Classic new/old inversion: two sequential reads during a write, the
	// first sees the new value, the second the old one. Not linearizable.
	ops := []Op{
		{Proc: 0, Name: "write", Args: []sim.Value{1}, Call: 0, Return: 7},
		{Proc: 1, Name: "read", Out: 1, Call: 1, Return: 2},
		{Proc: 1, Name: "read", Out: 0, Call: 3, Return: 4},
	}
	if Check(registerSpec(0), ops).OK {
		t.Fatal("new/old inversion accepted")
	}
}

func TestCheckCounterConcurrentIncs(t *testing.T) {
	// Two overlapping incs and a later read of 2: linearizable.
	ops := []Op{
		{Proc: 0, Name: "inc", Call: 0, Return: 3},
		{Proc: 1, Name: "inc", Call: 1, Return: 2},
		{Proc: 2, Name: "read", Out: 2, Call: 4, Return: 5},
	}
	if !Check(counterSpec(), ops).OK {
		t.Fatal("valid counter history rejected")
	}
	// Read of 1 after both incs completed: not linearizable.
	ops[2].Out = 1
	if Check(counterSpec(), ops).OK {
		t.Fatal("stale counter read accepted")
	}
}

func TestCheckEmptyHistory(t *testing.T) {
	if !Check(registerSpec(0), nil).OK {
		t.Fatal("empty history rejected")
	}
}

func TestCheckTooManyOpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized history did not panic")
		}
	}()
	Check(registerSpec(0), make([]Op, MaxOps+1))
}

func TestOpsExtraction(t *testing.T) {
	tr := sim.Trace{Events: []sim.Event{
		{Seq: 0, Kind: sim.EventCall, Proc: 0, Object: "X", Op: "write", Args: []sim.Value{1}},
		{Seq: 1, Kind: sim.EventCall, Proc: 1, Object: "X", Op: "read"},
		{Seq: 2, Kind: sim.EventStep, Proc: 0, Object: "base", Op: "w"},
		{Seq: 3, Kind: sim.EventReturn, Proc: 1, Object: "X", Op: "read", Out: 1},
		{Seq: 4, Kind: sim.EventReturn, Proc: 0, Object: "X", Op: "write"},
		{Seq: 5, Kind: sim.EventCall, Proc: 2, Object: "X", Op: "read"}, // never returns
		{Seq: 6, Kind: sim.EventCall, Proc: 3, Object: "Y", Op: "read"}, // other object
	}}
	ops := Ops(tr, "X")
	if len(ops) != 2 {
		t.Fatalf("extracted %d ops, want 2", len(ops))
	}
	if ops[0].Name != "write" || ops[0].Call != 0 || ops[0].Return != 4 {
		t.Errorf("ops[0] = %v", ops[0])
	}
	if ops[1].Name != "read" || ops[1].Out != 1 || ops[1].Call != 1 || ops[1].Return != 3 {
		t.Errorf("ops[1] = %v", ops[1])
	}
}

func TestOpsOrphanReturnIgnored(t *testing.T) {
	tr := sim.Trace{Events: []sim.Event{
		{Seq: 0, Kind: sim.EventReturn, Proc: 0, Object: "X", Op: "read", Out: 1},
	}}
	if got := Ops(tr, "X"); len(got) != 0 {
		t.Errorf("orphan return produced ops: %v", got)
	}
}

// bruteForce checks linearizability by trying every permutation.
func bruteForce(spec Spec, ops []Op) bool {
	n := len(ops)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var try func(k int) bool
	valid := func(order []int) bool {
		// Real-time precedence.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if ops[order[b]].Return < ops[order[a]].Call {
					return false
				}
			}
		}
		state := spec.Init()
		for _, idx := range order {
			var out sim.Value
			state, out = spec.Apply(state, ops[idx].Name, ops[idx].Args)
			if !spec.equal(ops[idx].Out, out) {
				return false
			}
		}
		return true
	}
	try = func(k int) bool {
		if k == n {
			return valid(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if try(k + 1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return try(0)
}

// TestCheckAgreesWithBruteForce generates random small register histories
// and compares the DFS checker against exhaustive permutation search.
func TestCheckAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(4)
		// Random intervals over distinct time points.
		times := rng.Perm(2 * n)
		ops := make([]Op, n)
		for i := range ops {
			a, b := times[2*i], times[2*i+1]
			if a > b {
				a, b = b, a
			}
			if rng.Intn(2) == 0 {
				ops[i] = Op{Proc: i, Name: "write", Args: []sim.Value{rng.Intn(3)}, Call: a, Return: b}
			} else {
				ops[i] = Op{Proc: i, Name: "read", Out: rng.Intn(3), Call: a, Return: b}
			}
		}
		spec := registerSpec(0)
		got := Check(spec, ops).OK
		want := bruteForce(spec, ops)
		if got != want {
			t.Fatalf("trial %d: Check = %v, brute force = %v, ops = %v", trial, got, want, ops)
		}
	}
}

func TestSpecEqualCustom(t *testing.T) {
	spec := Spec{
		Init: func() any { return []int{1, 2} },
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			return state, state
		},
		Equal: func(observed, specified sim.Value) bool {
			a, b := observed.([]int), specified.([]int)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		},
		Key: func(state any) string { return "s" },
	}
	ops := []Op{{Proc: 0, Name: "scan", Out: []int{1, 2}, Call: 0, Return: 1}}
	if !Check(spec, ops).OK {
		t.Fatal("custom Equal not used")
	}
}

func TestPendingOpMayBeIncluded(t *testing.T) {
	// A pending write whose effect was observed: the read of 1 is only
	// explainable if the pending write linearizes before it.
	ops := []Op{
		{Proc: 0, Name: "write", Args: []sim.Value{1}, Call: 0, Return: 100, Pending: true},
		{Proc: 1, Name: "read", Out: 1, Call: 2, Return: 3},
	}
	if !Check(registerSpec(0), ops).OK {
		t.Fatal("history with effective pending write rejected")
	}
}

func TestPendingOpMayBeDropped(t *testing.T) {
	// A pending write that never took effect: the read still sees 0.
	ops := []Op{
		{Proc: 0, Name: "write", Args: []sim.Value{1}, Call: 0, Return: 100, Pending: true},
		{Proc: 1, Name: "read", Out: 0, Call: 2, Return: 3},
	}
	if !Check(registerSpec(0), ops).OK {
		t.Fatal("history with ineffective pending write rejected")
	}
}

func TestPendingCannotRescueImpossibleHistory(t *testing.T) {
	// Even with a pending write of 1, a read of 2 is unexplainable.
	ops := []Op{
		{Proc: 0, Name: "write", Args: []sim.Value{1}, Call: 0, Return: 100, Pending: true},
		{Proc: 1, Name: "read", Out: 2, Call: 2, Return: 3},
	}
	if Check(registerSpec(0), ops).OK {
		t.Fatal("unexplainable read accepted")
	}
}

func TestPendingRespectsCallOrder(t *testing.T) {
	// The pending op begins only after the read completes, so it cannot
	// explain the read.
	ops := []Op{
		{Proc: 1, Name: "read", Out: 1, Call: 0, Return: 1},
		{Proc: 0, Name: "write", Args: []sim.Value{1}, Call: 2, Return: 100, Pending: true},
	}
	if Check(registerSpec(0), ops).OK {
		t.Fatal("pending op linearized before its call")
	}
}

func TestOpsWithPendingExtraction(t *testing.T) {
	tr := sim.Trace{Events: []sim.Event{
		{Seq: 0, Kind: sim.EventCall, Proc: 0, Object: "X", Op: "write", Args: []sim.Value{1}},
		{Seq: 1, Kind: sim.EventCall, Proc: 1, Object: "X", Op: "read"},
		{Seq: 2, Kind: sim.EventReturn, Proc: 1, Object: "X", Op: "read", Out: 1},
	}}
	done, pending := OpsWithPending(tr, "X")
	if len(done) != 1 || len(pending) != 1 {
		t.Fatalf("done=%d pending=%d, want 1 and 1", len(done), len(pending))
	}
	if !pending[0].Pending || pending[0].Return <= 2 {
		t.Errorf("pending op malformed: %+v", pending[0])
	}
}
