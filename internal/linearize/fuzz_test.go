package linearize

import (
	"testing"

	"detobj/internal/sim"
)

// FuzzCheckAgainstBruteForce drives the DFS checker against exhaustive
// permutation search on arbitrary small register histories. Run with
// `go test -fuzz FuzzCheckAgainstBruteForce ./internal/linearize` to
// explore beyond the seed corpus.
func FuzzCheckAgainstBruteForce(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, []byte{1, 0, 2})
	f.Add([]byte{5, 4, 3, 2, 1, 0}, []byte{0, 0, 0})
	f.Add([]byte{0, 3, 1, 4, 2, 5}, []byte{2, 1, 2})
	f.Fuzz(func(t *testing.T, times []byte, kinds []byte) {
		n := len(kinds)
		if n == 0 || n > 4 || len(times) < 2*n {
			t.Skip()
		}
		ops := make([]Op, n)
		for i := 0; i < n; i++ {
			a, b := int(times[2*i]), int(times[2*i+1])
			if a == b {
				b++
			}
			if a > b {
				a, b = b, a
			}
			// Give every op a distinct interval basis to keep seqs unique
			// enough; overlaps are still arbitrary.
			a, b = a*4+i, b*4+i+1
			if kinds[i]%2 == 0 {
				ops[i] = Op{Proc: i, Name: "write", Args: []sim.Value{int(kinds[i] % 3)}, Call: a, Return: b}
			} else {
				ops[i] = Op{Proc: i, Name: "read", Out: int(kinds[i] % 3), Call: a, Return: b}
			}
		}
		spec := Spec{
			Init: func() any { return 0 },
			Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
				if name == "write" {
					return args[0], nil
				}
				return state, state
			},
		}
		got := Check(spec, ops).OK
		want := bruteForce(spec, ops)
		if got != want {
			t.Fatalf("Check = %v, brute force = %v, ops = %v", got, want, ops)
		}
	})
}
