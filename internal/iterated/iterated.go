// Package iterated implements the iterated immediate snapshot (IIS)
// model: processes proceed through a sequence of fresh one-shot immediate
// snapshot instances, each round writing their full-information state (the
// view from the previous round) and reading back a round view.
//
// IIS is the combinatorial heart of the topological theory of wait-free
// computation that frames the paper's open questions: the set of all
// r-round IIS executions is exactly the r-fold chromatic subdivision of a
// simplex. The package makes that statement measurable — enumerating all
// executions and counting distinct outcome patterns yields the Fubini
// numbers (ordered set partitions) for one round and their compositions
// for iterated rounds (experiment E16).
package iterated

import (
	"fmt"
	"sort"
	"strings"

	"detobj/internal/immediate"
	"detobj/internal/sim"
)

// Protocol is one IIS instance: a fixed sequence of one-shot immediate
// snapshots shared by up to n participants.
type Protocol struct {
	n      int
	rounds []immediate.Protocol
}

// New registers rounds fresh immediate-snapshot instances under the name
// prefix and returns the protocol.
func New(objects map[string]sim.Object, name string, n, rounds int) Protocol {
	if n < 1 || rounds < 1 {
		panic(fmt.Sprintf("iterated: n = %d, rounds = %d", n, rounds))
	}
	pr := Protocol{n: n, rounds: make([]immediate.Protocol, rounds)}
	for r := 0; r < rounds; r++ {
		pr.rounds[r] = immediate.New(objects, sim.Indexed(name, r), n)
	}
	return pr
}

// Rounds returns the number of rounds.
func (pr Protocol) Rounds() int { return len(pr.rounds) }

// Execute runs the full-information IIS for the participant on slot with
// the given input: round 0 writes the input, each later round writes the
// previous round's view. It returns the view of every round.
func (pr Protocol) Execute(ctx *sim.Ctx, slot int, input sim.Value) []map[int]sim.Value {
	views := make([]map[int]sim.Value, len(pr.rounds))
	carry := input
	for r := range pr.rounds {
		views[r] = pr.rounds[r].Execute(ctx, slot, carry)
		carry = views[r]
	}
	return views
}

// Program wraps Execute as a process program returning the final round's
// view.
func (pr Protocol) Program(slot int, input sim.Value) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		views := pr.Execute(ctx, slot, input)
		return views[len(views)-1]
	}
}

// Signature canonically serializes a full-information view (values may be
// nested views), so distinct outcome patterns can be counted.
func Signature(v sim.Value) string {
	switch view := v.(type) {
	case map[int]sim.Value:
		keys := make([]int, 0, len(view))
		for k := range view {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d:%s", k, Signature(view[k]))
		}
		b.WriteByte('}')
		return b.String()
	default:
		return fmt.Sprint(v)
	}
}

// OutcomeSignature serializes the joint final views of all processes — one
// simplex of the protocol complex.
func OutcomeSignature(finals []sim.Value) string {
	parts := make([]string, len(finals))
	for i, v := range finals {
		parts[i] = Signature(v)
	}
	return strings.Join(parts, " | ")
}

// OneRoundComplex generates, combinatorially, the expected outcome
// signatures of a one-round immediate snapshot over the given inputs: one
// simplex per ordered set partition (B₁, …, B_t) of the participants,
// where every process in B_i sees exactly B₁ ∪ … ∪ B_i. Cross-checking
// this set against the executions enumerated by the model checker
// verifies that the protocol complex IS the chromatic subdivision, not
// merely that the counts coincide.
func OneRoundComplex(inputs []sim.Value) map[string]bool {
	n := len(inputs)
	procs := make([]int, n)
	for i := range procs {
		procs[i] = i
	}
	out := make(map[string]bool)
	forEachOrderedPartition(procs, nil, func(blocks [][]int) {
		finals := make([]sim.Value, n)
		prefix := map[int]sim.Value{}
		for _, block := range blocks {
			for _, p := range block {
				prefix[p] = inputs[p]
			}
			view := make(map[int]sim.Value, len(prefix))
			for q, v := range prefix {
				view[q] = v
			}
			for _, p := range block {
				finals[p] = view
			}
		}
		out[OutcomeSignature(finals)] = true
	})
	return out
}

// forEachOrderedPartition enumerates the ordered set partitions of rest,
// extending the accumulated blocks.
func forEachOrderedPartition(rest []int, blocks [][]int, visit func([][]int)) {
	if len(rest) == 0 {
		visit(blocks)
		return
	}
	// Choose a non-empty subset of rest as the next block.
	total := 1 << len(rest)
	for mask := 1; mask < total; mask++ {
		var block, remain []int
		for i, p := range rest {
			if mask&(1<<i) != 0 {
				block = append(block, p)
			} else {
				remain = append(remain, p)
			}
		}
		forEachOrderedPartition(remain, append(blocks, block), visit)
	}
}
