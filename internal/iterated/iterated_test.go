package iterated

import (
	"fmt"
	"testing"

	"detobj/internal/modelcheck"
	"detobj/internal/sim"
)

// countOutcomes enumerates every execution of an n-process, r-round IIS
// and returns the number of distinct joint-outcome patterns (simplices of
// the protocol complex).
func countOutcomes(t *testing.T, n, rounds int) (patterns, executions int) {
	t.Helper()
	seen := map[string]bool{}
	count, err := modelcheck.Explore(func() sim.Config {
		objects := map[string]sim.Object{}
		pr := New(objects, "IIS", n, rounds)
		progs := make([]sim.Program, n)
		for i := 0; i < n; i++ {
			progs[i] = pr.Program(i, fmt.Sprintf("v%d", i))
		}
		return sim.Config{Objects: objects, Programs: progs}
	}, 1<<21, func(e modelcheck.Execution) error {
		if !e.Result.AllDone() {
			return fmt.Errorf("not wait-free: %v", e.Result.Status)
		}
		seen[OutcomeSignature(e.Result.Outputs)] = true
		return nil
	})
	if err != nil {
		t.Fatalf("n=%d rounds=%d: %v", n, rounds, err)
	}
	return len(seen), count
}

// TestProtocolComplexCounts (E16): the number of distinct IIS outcome
// patterns equals the simplex count of the chromatic subdivision — the
// Fubini number F(n) (ordered set partitions) for one round, and F(2)^r =
// 3^r for 2 processes over r rounds.
func TestProtocolComplexCounts(t *testing.T) {
	cases := []struct {
		n, rounds, want int
	}{
		{2, 1, 3},  // F(2): the subdivided edge has 3 facets
		{2, 2, 9},  // 3^2: each facet subdivides into 3
		{3, 1, 13}, // F(3): the chromatic subdivision of a triangle
	}
	for _, c := range cases {
		patterns, executions := countOutcomes(t, c.n, c.rounds)
		t.Logf("n=%d rounds=%d: %d executions collapse to %d patterns", c.n, c.rounds, executions, patterns)
		if patterns != c.want {
			t.Errorf("n=%d rounds=%d: %d outcome patterns, want %d", c.n, c.rounds, patterns, c.want)
		}
	}
}

// TestIISFullInformationChaining: each round's view carries the previous
// round's view, so a process's final view determines its whole history.
func TestIISFullInformationChaining(t *testing.T) {
	objects := map[string]sim.Object{}
	pr := New(objects, "IIS", 2, 3)
	if pr.Rounds() != 3 {
		t.Fatalf("Rounds = %d", pr.Rounds())
	}
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			views := pr.Execute(ctx, 0, "x")
			return views
		}},
		MaxSteps: 1 << 16,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	views := res.Outputs[0].([]map[int]sim.Value)
	// Solo run: every round's view is {0: previous}.
	if views[0][0] != "x" {
		t.Errorf("round 0 view = %v", views[0])
	}
	if Signature(views[1][0]) != Signature(views[0]) {
		t.Errorf("round 1 did not carry round 0's view: %v", views[1])
	}
	if Signature(views[2][0]) != Signature(views[1]) {
		t.Errorf("round 2 did not carry round 1's view: %v", views[2])
	}
}

// TestIISSequentialDominance: under a sequential schedule, the later
// process's final view strictly contains information about the earlier.
func TestIISSequentialDominance(t *testing.T) {
	objects := map[string]sim.Object{}
	pr := New(objects, "IIS", 2, 1)
	progs := []sim.Program{pr.Program(0, "a"), pr.Program(1, "b")}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sim.Priority{0, 1},
		MaxSteps:  1 << 16,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	v0 := res.Outputs[0].(map[int]sim.Value)
	v1 := res.Outputs[1].(map[int]sim.Value)
	if len(v0) != 1 || len(v1) != 2 {
		t.Errorf("sequential views sized %d and %d, want 1 and 2", len(v0), len(v1))
	}
}

func TestSignatureCanonical(t *testing.T) {
	a := map[int]sim.Value{1: "y", 0: "x"}
	b := map[int]sim.Value{0: "x", 1: "y"}
	if Signature(a) != Signature(b) {
		t.Error("signature not canonical across map orders")
	}
	if Signature("plain") != "plain" {
		t.Error("scalar signature mangled")
	}
	nested := map[int]sim.Value{0: a}
	if Signature(nested) != "{0:{0:x 1:y}}" {
		t.Errorf("nested signature = %s", Signature(nested))
	}
}

func TestIteratedValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(map[string]sim.Object{}, "x", 0, 1) },
		func() { New(map[string]sim.Object{}, "x", 2, 0) },
	} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid parameters did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestProtocolComplexIsChromaticSubdivision (E16, exact form): the SET of
// outcome signatures produced by exhaustive execution enumeration equals
// the set generated combinatorially from ordered set partitions — the
// protocol complex is the chromatic subdivision itself.
func TestProtocolComplexIsChromaticSubdivision(t *testing.T) {
	for _, n := range []int{2, 3} {
		n := n
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		expected := OneRoundComplex(inputs)

		observed := map[string]bool{}
		_, err := modelcheck.Explore(func() sim.Config {
			objects := map[string]sim.Object{}
			pr := New(objects, "IIS", n, 1)
			progs := make([]sim.Program, n)
			for i := 0; i < n; i++ {
				progs[i] = pr.Program(i, inputs[i])
			}
			return sim.Config{Objects: objects, Programs: progs}
		}, 1<<21, func(e modelcheck.Execution) error {
			observed[OutcomeSignature(e.Result.Outputs)] = true
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for sig := range expected {
			if !observed[sig] {
				t.Errorf("n=%d: expected simplex never produced: %s", n, sig)
			}
		}
		for sig := range observed {
			if !expected[sig] {
				t.Errorf("n=%d: produced outcome outside the subdivision: %s", n, sig)
			}
		}
		if len(expected) != len(observed) {
			t.Errorf("n=%d: %d expected vs %d observed", n, len(expected), len(observed))
		}
	}
}

func TestOneRoundComplexCounts(t *testing.T) {
	// Fubini numbers: ordered set partitions of 1, 2, 3, 4 elements.
	wants := map[int]int{1: 1, 2: 3, 3: 13, 4: 75}
	for n, want := range wants {
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = i
		}
		if got := len(OneRoundComplex(inputs)); got != want {
			t.Errorf("n=%d: %d simplices, want Fubini %d", n, got, want)
		}
	}
}
