package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path, e.g. "detobj/internal/wrn".
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files holds the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's object resolution for Files.
	Info *types.Info
}

// Module is a whole Go module, loaded and type-checked for analysis.
// Test files (*_test.go) and testdata directories are excluded: the
// determinism contract binds the shipped code, and tests legitimately
// use wall clocks and unseeded randomness.
type Module struct {
	// Root is the absolute path of the module root (the go.mod directory).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs lists all packages in import-path order.
	Pkgs []*Package

	byPath map[string]*Package
	allows map[string][]allowMark // file name -> allow comments
}

// allowMark is one parsed //detlint:allow comment.
type allowMark struct {
	line      int
	rules     map[string]bool
	justified bool
	pos       token.Position
}

// Load walks the module rooted at root (its go.mod directory), parses
// every non-test Go file outside testdata, and type-checks every package
// using only the standard library's go/parser, go/types and go/importer.
func Load(root string) (*Module, error) {
	return LoadWithExtra(root, nil)
}

// LoadWithExtra is Load plus extra packages: a map from import path to
// directory, used by the fixture tests to graft testdata packages into
// the module's package set.
func LoadWithExtra(root string, extra map[string]string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		allows: make(map[string][]allowMark),
	}
	l := &loader{
		m:       m,
		std:     importer.ForCompiler(m.Fset, "source", nil),
		dirs:    make(map[string]string),
		loading: make(map[string]bool),
	}
	if err := l.discover(); err != nil {
		return nil, err
	}
	extraPaths := make([]string, 0, len(extra))
	for path := range extra {
		extraPaths = append(extraPaths, path)
	}
	sort.Strings(extraPaths)
	for _, path := range extraPaths {
		abs, err := filepath.Abs(extra[path])
		if err != nil {
			return nil, err
		}
		l.dirs[path] = abs
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	for _, p := range paths {
		m.Pkgs = append(m.Pkgs, m.byPath[p])
	}
	return m, nil
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// InScope reports whether pkg sits under one of the given top-level
// directories of the module (e.g. "internal", "cmd").
func (m *Module) InScope(pkg *Package, tops ...string) bool {
	if pkg.Path == m.Path {
		return false
	}
	rel := strings.TrimPrefix(pkg.Path, m.Path+"/")
	for _, top := range tops {
		if rel == top || strings.HasPrefix(rel, top+"/") {
			return true
		}
	}
	return false
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// loader resolves and type-checks packages on demand. Module-internal
// imports are loaded from source; everything else (the standard library)
// goes through the source importer.
type loader struct {
	m       *Module
	std     types.Importer
	dirs    map[string]string // import path -> directory
	loading map[string]bool   // cycle detection
}

// discover registers every package directory of the module.
func (l *loader) discover() error {
	return filepath.WalkDir(l.m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(l.m.Root, path)
		if err != nil {
			return err
		}
		imp := l.m.Path
		if rel != "." {
			imp = l.m.Path + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if goSource(e) {
			return true, nil
		}
	}
	return false, nil
}

func goSource(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// Import implements types.Importer for the type-checker's configuration.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.m.Path || strings.HasPrefix(path, l.m.Path+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package at the given module import
// path (idempotent).
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.m.byPath[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirs[path]
	if !ok {
		// An internal import outside the walked tree (shouldn't happen in
		// a well-formed module).
		return nil, fmt.Errorf("lint: unknown module package %q", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if !goSource(e) {
			continue
		}
		f, err := parser.ParseFile(l.m.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var tcErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if tcErr == nil {
				tcErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.m.Fset, files, info)
	if tcErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, tcErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.m.byPath[path] = p
	l.collectAllows(p)
	return p, nil
}

// collectAllows indexes every //detlint:allow comment of the package.
func (l *loader) collectAllows(p *Package) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "detlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				mark := allowMark{
					pos:   l.m.Fset.Position(c.Pos()),
					rules: make(map[string]bool),
				}
				mark.line = mark.pos.Line
				if len(fields) > 0 {
					for _, r := range strings.Split(fields[0], ",") {
						mark.rules[r] = true
					}
					mark.justified = len(fields) > 1
				}
				l.m.allows[mark.pos.Filename] = append(l.m.allows[mark.pos.Filename], mark)
			}
		}
	}
}
