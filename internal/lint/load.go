package lint

// load.go is the syntactic half of the module loader: module discovery,
// file parsing, and the //detlint:allow index. Type-checking and the
// typed symbol API live in typeload.go.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path, e.g. "detobj/internal/wrn".
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files holds the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's object resolution for Files.
	Info *types.Info
}

// Module is a whole Go module, loaded and type-checked for analysis.
// Test files (*_test.go) and testdata directories are excluded: the
// determinism contract binds the shipped code, and tests legitimately
// use wall clocks and unseeded randomness.
type Module struct {
	// Root is the absolute path of the module root (the go.mod directory).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs lists all packages in import-path order.
	Pkgs []*Package

	byPath map[string]*Package
	allows map[string][]*allowMark // file name -> allow comments

	// cg caches the conservative callgraph across analyzers.
	cg *CallGraph
	// hot caches the loop-depth-weighted hot-path reachability
	// (hotpath.go) across the hotalloc/boxing rules and the hot report.
	hot *hotInfo
	// esc caches the module-wide may-escape analysis (escape.go).
	esc *escAnalysis
	// persist caches the persistence classification of sim.Recoverable
	// implementors (persist.go) across the recovery-safety rules.
	persist *persistInfo
	// testAllowFiles records the test files whose //detlint:allow
	// comments are already indexed, so the rules that parse test files
	// themselves (schedulecoverage, restartcoverage) never double-count
	// a mark across rules or repeated runs.
	testAllowFiles map[string]bool
	// budgets caches the parsed .detlint.hot allocation budgets
	// (hotbudget.go); budgetsLoaded distinguishes "no file" from
	// "not read yet".
	budgets       []*hotBudget
	budgetsLoaded bool
}

// allowMark is one parsed //detlint:allow comment.
type allowMark struct {
	line      int
	rules     map[string]bool
	justified bool
	pos       token.Position
	// used is set by the driver whenever the mark suppresses a finding
	// (or exempts a field declaration); the allowaudit rule reports
	// justified marks that stay unused across a full run.
	used bool
}

// Load walks the module rooted at root (its go.mod directory), parses
// every non-test Go file outside testdata, and type-checks every package
// using only the standard library's go/parser, go/types and go/importer.
func Load(root string) (*Module, error) {
	return LoadWithExtra(root, nil)
}

// LoadWithExtra is Load plus extra packages: a map from import path to
// directory, used by the fixture tests to graft testdata packages into
// the module's package set.
func LoadWithExtra(root string, extra map[string]string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		allows: make(map[string][]*allowMark),
	}
	l := &loader{
		m:       m,
		std:     importer.ForCompiler(m.Fset, "source", nil),
		dirs:    make(map[string]string),
		loading: make(map[string]bool),
	}
	if err := l.discover(); err != nil {
		return nil, err
	}
	extraPaths := make([]string, 0, len(extra))
	for path := range extra {
		extraPaths = append(extraPaths, path)
	}
	sort.Strings(extraPaths)
	for _, path := range extraPaths {
		abs, err := filepath.Abs(extra[path])
		if err != nil {
			return nil, err
		}
		l.dirs[path] = abs
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	for _, p := range paths {
		m.Pkgs = append(m.Pkgs, m.byPath[p])
	}
	return m, nil
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// InScope reports whether pkg sits under one of the given top-level
// directories of the module (e.g. "internal", "cmd").
func (m *Module) InScope(pkg *Package, tops ...string) bool {
	if pkg.Path == m.Path {
		return false
	}
	rel := strings.TrimPrefix(pkg.Path, m.Path+"/")
	for _, top := range tops {
		if rel == top || strings.HasPrefix(rel, top+"/") {
			return true
		}
	}
	return false
}

// isFixture reports whether pkg is a grafted test fixture whose import
// path ends in one of the given package names; the scoped rules
// (sharedstate, injectionpurity) use it to pull their fixtures into
// scope without widening the real-tree scope.
func (m *Module) isFixture(pkg *Package, names ...string) bool {
	if !strings.Contains(pkg.Path, "/lintfixture/") {
		return false
	}
	for _, n := range names {
		if strings.HasSuffix(pkg.Path, "/"+n) {
			return true
		}
	}
	return false
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// discover registers every package directory of the module.
func (l *loader) discover() error {
	return filepath.WalkDir(l.m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(l.m.Root, path)
		if err != nil {
			return err
		}
		imp := l.m.Path
		if rel != "." {
			imp = l.m.Path + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if goSource(e) {
			return true, nil
		}
	}
	return false, nil
}

func goSource(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}
