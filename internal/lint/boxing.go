package lint

// boxing flags interface conversions of non-pointer values on hot
// paths. Storing a concrete non-pointer value into an interface —
// passing an int to a variadic ...any, keying a map[any]..., filling
// an any-typed signature row — heap-allocates a copy on every
// conversion; pointer-shaped values (pointers, maps, channels,
// functions) ride in the interface word for free. On the exhaustive
// engines' per-node paths this is the silent half of the fmt cost:
// BENCH_5's E6 profile was dominated by invocation values boxed once
// per (state, operation) step. The rule shares .detlint.hot budget
// semantics with hotalloc: fix the site, budget it, or justify an
// allow.
//
// Recognized conversion contexts, all at total hot loop depth ≥ 1:
//
//   - explicit conversion I(v) to an interface type;
//   - call arguments (variadic included) whose parameter type is an
//     interface — the fmt variadic is the canonical case;
//   - assignment or definition into an interface-typed variable/field;
//   - map index or assignment keying an interface-keyed map;
//   - composite-literal elements (and map-literal keys) of interface
//     element type — the "signature row" shape;
//   - returns whose declared result type is an interface;
//   - sends into interface-element channels.
//
// Constant operands are exempt: the compiler materializes those boxes
// in static data.

import (
	"fmt"
	"go/ast"
	"go/types"
)

const boxingName = "boxing"

// AnalyzerBoxing returns the boxing rule.
func AnalyzerBoxing() *Analyzer {
	return &Analyzer{
		Name: boxingName,
		Doc:  "interface conversions of non-pointer values on hot paths box a heap copy per conversion; fix, budget, or justify",
		Run:  runBoxing,
	}
}

func runBoxing(m *Module) []Diagnostic {
	g := m.CallGraph()
	h := m.hotPaths()
	var out []Diagnostic
	for _, n := range g.sortedNodes() {
		fd, hot := h.funcDepth(n)
		if !hot || !m.InScope(n.Pkg, "internal", "cmd") {
			continue
		}
		var diags []Diagnostic
		report := func(x ast.Expr, depth int, ctx string) {
			if depth > maxHotDepth {
				depth = maxHotDepth
			}
			via := ""
			if w := h.witness[n]; w != nil && w != n {
				via = fmt.Sprintf(" (reachable from %s)", funcLabel(w))
			}
			diags = append(diags, Diagnostic{
				Pos: m.position(x),
				Msg: fmt.Sprintf("%s boxes a %s %s in hot loop in %s%s (depth %d, weight %d): pass a pointer, pre-box outside the loop, budget it in %s, or justify an allow",
					ctx, shortType(n.Pkg, x), valueShape(n.Pkg, x), funcLabel(n), via, depth, hotWeight(depth), HotBudgetFileName),
			})
		}
		resultTypes := declResultTypes(n)
		loopDepthWalk(n.Decl.Body, func(x ast.Node, sd int) {
			total := fd + sd
			if total < 1 {
				return
			}
			boxingSitesAt(n.Pkg, x, resultTypes, func(e ast.Expr, ctx string) {
				report(e, total, ctx)
			})
		})
		out = append(out, applyBudget(m, boxingName, n, diags)...)
	}
	return append(out, budgetProblems(m, boxingName)...)
}

// boxesInto reports whether storing expr into a slot of type `to`
// allocates: `to` is an interface, expr's concrete type is not
// pointer-shaped, and expr is neither constant nor already an
// interface or untyped nil.
func boxesInto(pkg *Package, to types.Type, expr ast.Expr) bool {
	if !isInterfaceType(to) {
		return false
	}
	t := pkg.Info.TypeOf(expr)
	if t == nil || isInterfaceType(t) || pointerShaped(t) {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !isConstExpr(pkg, expr)
}

// pointerShaped reports whether values of t occupy the interface data
// word directly, with no boxing allocation.
func pointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// valueShape names the boxed value's kind for the message.
func valueShape(pkg *Package, x ast.Expr) string {
	t := pkg.Info.TypeOf(x)
	if t == nil {
		return "value"
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Struct:
		return "struct"
	case *types.Slice:
		return "slice header"
	case *types.Array:
		return "array"
	default:
		return "value"
	}
}

// declResultTypes returns the declared result types of the function,
// for the return-context check.
func declResultTypes(n *FuncNode) []types.Type {
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok || sig.Results() == nil {
		return nil
	}
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}

// boxingSitesAt reports every boxing conversion a single AST node
// performs.
func boxingSitesAt(pkg *Package, x ast.Node, results []types.Type, report func(ast.Expr, string)) {
	switch x := x.(type) {
	case *ast.CallExpr:
		if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 && boxesInto(pkg, tv.Type, x.Args[0]) {
				report(x.Args[0], "interface conversion")
			}
			return
		}
		sig := callSignature(pkg, x)
		if sig == nil {
			return
		}
		for i, arg := range x.Args {
			pt := paramTypeAt(sig, i)
			if boxesInto(pkg, pt, arg) {
				ctx := "argument"
				if sig.Variadic() && i >= sig.Params().Len()-1 {
					ctx = "variadic argument"
				}
				report(arg, ctx)
			}
		}
	case *ast.IndexExpr:
		if mt, ok := mapTypeOf(pkg, x.X); ok && boxesInto(pkg, mt.Key(), x.Index) {
			report(x.Index, "interface-keyed map index")
		}
	case *ast.AssignStmt:
		if len(x.Lhs) != len(x.Rhs) {
			return
		}
		for i, l := range x.Lhs {
			lt := pkg.Info.TypeOf(l)
			if boxesInto(pkg, lt, x.Rhs[i]) {
				report(x.Rhs[i], "interface assignment")
			}
		}
	case *ast.CompositeLit:
		lt := pkg.Info.TypeOf(x)
		if lt == nil {
			return
		}
		var elem, key types.Type
		switch u := types.Unalias(lt).Underlying().(type) {
		case *types.Slice:
			elem = u.Elem()
		case *types.Array:
			elem = u.Elem()
		case *types.Map:
			elem, key = u.Elem(), u.Key()
		default:
			return
		}
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key != nil && boxesInto(pkg, key, kv.Key) {
					report(kv.Key, "interface map-literal key")
				}
				el = kv.Value
			}
			if boxesInto(pkg, elem, el) {
				report(el, "interface-typed row element")
			}
		}
	case *ast.ReturnStmt:
		if len(x.Results) != len(results) {
			return
		}
		for i, r := range x.Results {
			if boxesInto(pkg, results[i], r) {
				report(r, "interface return")
			}
		}
	case *ast.SendStmt:
		ct := pkg.Info.TypeOf(x.Chan)
		if ct == nil {
			return
		}
		if ch, ok := types.Unalias(ct).Underlying().(*types.Chan); ok {
			if boxesInto(pkg, ch.Elem(), x.Value) {
				report(x.Value, "interface channel send")
			}
		}
	}
}

// mapTypeOf unwraps the expression's type to a map type, if it is one.
func mapTypeOf(pkg *Package, x ast.Expr) (*types.Map, bool) {
	t := pkg.Info.TypeOf(x)
	if t == nil {
		return nil, false
	}
	mt, ok := types.Unalias(t).Underlying().(*types.Map)
	return mt, ok
}
