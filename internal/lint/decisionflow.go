package lint

// decisionflow closes the gap injectionpurity leaves open: that rule
// flags impure *calls* on injection paths, but a decision value can go
// wrong without any forbidden call in the decision method itself — a
// helper returns a timestamp, a map iteration picks the winner, a racy
// field read leaks scheduling order. This rule traces every value
// returned from a decision method (Apply/Propose/WRN/Decide/Elect/
// Scan/Update — the same anchors boundedloop uses) backward through the
// SSA-lite value graph (ssa.go) and through module calls via memoized
// per-function flow summaries, and reports any flow from a
// nondeterministic origin:
//
//   - wall-clock reads (time.Now/Since/Until) and global randomness;
//   - runtime introspection;
//   - map iteration order, unless the collected value is sorted before
//     it is returned;
//   - channel receives (goroutine scheduling order);
//   - in package native and the flow fixtures: reads of mutable fields
//     with an empty must-hold lockset (racing writers make the read
//     value an accident of scheduling).
//
// Parameters are clean by construction — a proposal is *supposed* to
// decide the proposed value — and so are receiver fields outside the
// unsynchronized-read gate: object state mutated only under the
// object's own discipline is deterministic input. Opaque values
// (address-taken locals, closure-written variables) are treated as
// clean; the rule prefers silence to noise on the tracking gaps.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerDecisionFlow returns the decisionflow rule.
func AnalyzerDecisionFlow() *Analyzer {
	return &Analyzer{
		Name: "decisionflow",
		Doc:  "values returned from decision methods must not derive from time, randomness, map order, channel scheduling, or racy reads",
		Run:  runDecisionFlow,
	}
}

// flowSummary is what a module function contributes to callers' traces.
type flowSummary struct {
	// sources are the nondeterministic origins reaching any return.
	sources []string
	// params are the indices of parameters flowing to any return.
	params []int
}

// flowAnalysis carries the module-wide memo of function summaries.
type flowAnalysis struct {
	m         *Module
	g         *CallGraph
	summaries map[*FuncNode]*flowSummary
}

func runDecisionFlow(m *Module) []Diagnostic {
	fa := &flowAnalysis{m: m, g: m.CallGraph(), summaries: make(map[*FuncNode]*flowSummary)}
	var out []Diagnostic
	for _, n := range fa.g.sortedNodes() {
		if n.Decl.Recv == nil || !decisionMethods[n.Decl.Name.Name] {
			continue
		}
		if !m.InScope(n.Pkg, "internal", "native") && !m.isFixture(n.Pkg, "flowok", "flowbad") {
			continue
		}
		t := fa.tracerFor(n)
		for _, ret := range t.returns() {
			sources := make(map[string]bool)
			for _, e := range t.returnExprs(ret) {
				for _, s := range t.traceExpr(e.expr, e.at) {
					sources[s] = true
				}
			}
			descs := make([]string, 0, len(sources))
			for s := range sources {
				descs = append(descs, s)
			}
			sort.Strings(descs)
			for _, d := range descs {
				out = append(out, Diagnostic{
					Pos: m.Fset.Position(ret.Pos()), Rule: "decisionflow",
					Msg: fmt.Sprintf("decision value returned by %s derives from %s; decided values must be deterministic functions of the arguments and object state",
						funcLabel(n), d),
				})
			}
		}
	}
	return out
}

// flowTracer traces values inside one function.
type flowTracer struct {
	fa  *flowAnalysis
	n   *FuncNode
	ssa *FuncSSA
	// paramIdx maps parameter objects to their position, for summaries.
	paramIdx map[*types.Var]int
	// recv is the receiver object (clean, and not a param flow).
	recv *types.Var
	// sorted holds variables handed to a sort.* call anywhere in the
	// body: their map-iteration-order taint is sanitized.
	sorted map[*types.Var]bool
	// unsyncGate enables the racy-field-read source; guards and ffacts
	// back it.
	unsyncGate bool
	guards     map[*ast.SelectorExpr][]*types.Var
	ffacts     map[*types.Var]*fieldFacts
	// paramHits collects parameter indices reached during a trace.
	paramHits map[int]bool
	// activePhis breaks loop-carried φ cycles.
	activePhis map[*PhiVal]bool
}

func (fa *flowAnalysis) tracerFor(n *FuncNode) *flowTracer {
	t := &flowTracer{
		fa:         fa,
		n:          n,
		ssa:        BuildSSA(n.Pkg, n.Decl),
		paramIdx:   make(map[*types.Var]int),
		sorted:     make(map[*types.Var]bool),
		paramHits:  make(map[int]bool),
		activePhis: make(map[*PhiVal]bool),
	}
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 && len(n.Decl.Recv.List[0].Names) > 0 {
		t.recv, _ = n.Pkg.Info.Defs[n.Decl.Recv.List[0].Names[0]].(*types.Var)
	}
	idx := 0
	for _, f := range n.Decl.Type.Params.List {
		for _, name := range f.Names {
			if v, ok := n.Pkg.Info.Defs[name].(*types.Var); ok {
				t.paramIdx[v] = idx
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	if fa.m.InScope(n.Pkg, "native") || fa.m.isFixture(n.Pkg, "flowok", "flowbad") {
		t.unsyncGate = true
		t.guards = guardedSelectors(n.Pkg, n.Decl)
		t.ffacts = packageFieldFacts(fa.g, n.Pkg)
	}
	// Sort sanitizer: sort.X(v) or slices-style in-place sorting fixes
	// the order a map range produced.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := resolvedFunc(n.Pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if !strings.Contains(fn.Name(), "Sort") && !strings.HasPrefix(fn.Name(), "Strings") &&
			!strings.HasPrefix(fn.Name(), "Ints") && !strings.HasPrefix(fn.Name(), "Float64s") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, ok := n.Pkg.Info.Uses[id].(*types.Var); ok {
					t.sorted[v] = true
				}
			}
		}
		return true
	})
	return t
}

// returns lists the function body's return statements in block order
// (nested literals excluded).
func (t *flowTracer) returns() []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	for _, b := range t.ssa.CFG.Blocks {
		for _, st := range b.Stmts {
			if r, ok := st.(*ast.ReturnStmt); ok {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

type exprAt struct {
	expr ast.Expr
	at   ast.Stmt
}

// returnExprs resolves one return statement to the expressions it
// returns; a bare return with named results resolves each result
// variable through the value graph by synthesizing its identifier.
func (t *flowTracer) returnExprs(ret *ast.ReturnStmt) []exprAt {
	var out []exprAt
	if len(ret.Results) > 0 {
		for _, e := range ret.Results {
			out = append(out, exprAt{expr: e, at: ret})
		}
		return out
	}
	if res := t.n.Decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, name := range f.Names {
				out = append(out, exprAt{expr: name, at: ret})
			}
		}
	}
	return out
}

// traceExpr walks an expression and unions the nondeterministic sources
// flowing into it.
func (t *flowTracer) traceExpr(e ast.Expr, at ast.Stmt) []string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := t.n.Pkg.Info.Uses[e]
		if obj == nil {
			obj = t.n.Pkg.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v == t.recv {
			return nil
		}
		if idx, ok := t.paramIdx[v]; ok {
			t.paramHits[idx] = true
			return nil
		}
		if v.Parent() == v.Pkg().Scope() {
			return nil // package-level state is nodeterminism's business
		}
		srcs := t.traceValue(t.ssa.BindingAt(at, v))
		if t.sorted[v] {
			srcs = dropOrderSources(srcs)
		}
		return srcs
	case *ast.ParenExpr:
		return t.traceExpr(e.X, at)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return []string{"a channel receive (goroutine scheduling order)"}
		}
		return t.traceExpr(e.X, at)
	case *ast.StarExpr:
		return t.traceExpr(e.X, at)
	case *ast.BinaryExpr:
		return append(t.traceExpr(e.X, at), t.traceExpr(e.Y, at)...)
	case *ast.CallExpr:
		return t.traceCall(e, at)
	case *ast.SelectorExpr:
		return t.traceSelector(e, at)
	case *ast.IndexExpr:
		return append(t.traceExpr(e.X, at), t.traceExpr(e.Index, at)...)
	case *ast.SliceExpr:
		return t.traceExpr(e.X, at)
	case *ast.CompositeLit:
		var out []string
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = append(out, t.traceExpr(el, at)...)
		}
		return out
	case *ast.TypeAssertExpr:
		return t.traceExpr(e.X, at)
	}
	return nil
}

// traceSelector handles a field or package-symbol read.
func (t *flowTracer) traceSelector(sel *ast.SelectorExpr, at ast.Stmt) []string {
	f := selectedField(t.n.Pkg, sel)
	if f == nil {
		return nil // qualified package symbol or method value
	}
	var out []string
	if t.unsyncGate {
		ff := t.ffacts[f]
		if ff != nil && ff.mutated && !atomicField(f) && !syncField(f) &&
			len(t.guards[sel]) == 0 && !fieldDeclAllowed(t.fa.m, f, "decisionflow") {
			out = append(out, fmt.Sprintf(
				"an unsynchronized read of field %s of %s (racing writers make the value scheduling-dependent)",
				f.Name(), ownerTypeName(f)))
		}
	}
	// The base expression may itself be computed (s.pick().slot).
	if _, ok := ast.Unparen(sel.X).(*ast.Ident); !ok {
		out = append(out, t.traceExpr(sel.X, at)...)
	}
	return out
}

// traceCall resolves a call's contribution: a nondeterministic
// primitive, a module callee's summary, or the arguments of anything
// value-preserving.
func (t *flowTracer) traceCall(call *ast.CallExpr, at ast.Stmt) []string {
	pkg := t.n.Pkg
	// Conversion: T(x) carries x's taint.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		var out []string
		for _, a := range call.Args {
			out = append(out, t.traceExpr(a, at)...)
		}
		return out
	}
	// Builtins: len/cap/make/new are deterministic of their argument's
	// identity; append/copy/min/max carry values through.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "copy", "min", "max":
				var out []string
				for _, a := range call.Args {
					out = append(out, t.traceExpr(a, at)...)
				}
				return out
			default:
				return nil
			}
		}
	}
	fn := resolvedFunc(pkg, call)
	if fn == nil {
		// Interface dispatch without a static resolution, or a function
		// value: fan out through the callgraph if possible.
		return t.traceDynamic(call, at)
	}
	if src := nondetCall(fn); src != "" {
		return []string{src}
	}
	if node, ok := t.fa.g.Nodes[fn]; ok {
		return t.applySummary(node, call, at)
	}
	if iface, _ := receiverInterface(pkg, call); iface != nil {
		return t.traceDynamic(call, at)
	}
	// External and value-preserving as far as this rule knows: trace the
	// receiver of a method chain (time.Now().UnixNano()) and stop.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn.Type().(*types.Signature).Recv() != nil {
			return t.traceExpr(sel.X, at)
		}
	}
	return nil
}

// traceDynamic fans an unresolvable call out through the callgraph's
// interface resolution.
func (t *flowTracer) traceDynamic(call *ast.CallExpr, at ast.Stmt) []string {
	var out []string
	for _, callee := range t.fa.g.calleesOf(t.n.Pkg, call) {
		out = append(out, t.applySummary(callee, call, at)...)
	}
	return out
}

// applySummary folds a callee's flow summary into the caller's trace:
// the callee's own sources (tagged with the callee), plus the caller's
// arguments for every parameter the callee returns.
func (t *flowTracer) applySummary(callee *FuncNode, call *ast.CallExpr, at ast.Stmt) []string {
	sum := t.fa.summaryOf(callee)
	var out []string
	for _, s := range sum.sources {
		if strings.Contains(s, " (via ") {
			out = append(out, s)
		} else {
			out = append(out, fmt.Sprintf("%s (via %s)", s, funcLabel(callee)))
		}
	}
	for _, pi := range sum.params {
		if pi < len(call.Args) {
			out = append(out, t.traceExpr(call.Args[pi], at)...)
		}
	}
	return out
}

// traceValue walks the SSA-lite value graph.
func (t *flowTracer) traceValue(v Value) []string {
	switch v := v.(type) {
	case ParamVal:
		if idx, ok := t.paramIdx[v.V]; ok {
			t.paramHits[idx] = true
		}
		return nil
	case ExprVal:
		return t.traceExpr(v.E, v.At)
	case *PhiVal:
		if t.activePhis[v] {
			return nil
		}
		t.activePhis[v] = true
		var out []string
		for _, op := range v.Ops {
			out = append(out, t.traceValue(op)...)
		}
		delete(t.activePhis, v)
		return out
	case RangeVal:
		var out []string
		if tt := t.n.Pkg.Info.TypeOf(v.S.X); tt != nil {
			if _, isMap := tt.Underlying().(*types.Map); isMap {
				out = append(out, "map iteration order")
			}
		}
		out = append(out, t.traceExpr(v.S.X, v.S)...)
		return out
	case MergeVal:
		var out []string
		for _, op := range v.Ops {
			out = append(out, t.traceValue(op)...)
		}
		if commutativeFold(v) {
			out = dropOrderSources(out)
		}
		return out
	}
	return nil // OpaqueVal
}

// summaryOf computes (and memoizes) a function's flow summary. A cycle
// hits the zero summary placeholder — the fixed point a lint needs is
// "no new sources", which the first pass already gives.
func (fa *flowAnalysis) summaryOf(n *FuncNode) *flowSummary {
	if s, ok := fa.summaries[n]; ok {
		return s
	}
	s := &flowSummary{}
	fa.summaries[n] = s // placeholder breaks recursion
	t := fa.tracerFor(n)
	srcSet := make(map[string]bool)
	for _, ret := range t.returns() {
		for _, e := range t.returnExprs(ret) {
			for _, src := range t.traceExpr(e.expr, e.at) {
				srcSet[src] = true
			}
		}
	}
	for src := range srcSet {
		s.sources = append(s.sources, src)
	}
	sort.Strings(s.sources)
	for pi := range t.paramHits {
		s.params = append(s.params, pi)
	}
	sort.Ints(s.params)
	return s
}

// nondetCall classifies an external call as a nondeterministic origin.
func nondetCall(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if isFunc(fn, "time", "Now", "Since", "Until") {
			return "time." + fn.Name() + " (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil {
			return "rand." + fn.Name() + " (random source)"
		}
		return "a math/rand method (random source)"
	case "runtime":
		if fn.Type().(*types.Signature).Recv() == nil {
			return "runtime." + fn.Name() + " (runtime introspection)"
		}
	case "crypto/rand":
		return "crypto/rand." + fn.Name() + " (random source)"
	}
	return ""
}

// commutativeFold reports whether an augmented-assignment merge is
// order-insensitive: summing (or and-ing, or-ing, xor-ing, ...) the
// values of a map range yields the same accumulated result under every
// iteration order, so the map-order taint does not survive the fold.
// String concatenation is the one += whose result is ordered.
func commutativeFold(v MergeVal) bool {
	switch v.Op {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if v.Var == nil {
		return false
	}
	b, ok := v.Var.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString == 0
}

// dropOrderSources removes map-iteration-order taint after an explicit
// sort: the element *set* of a map range is deterministic, only the
// visit order is not, and sorting re-fixes the order.
func dropOrderSources(srcs []string) []string {
	var out []string
	for _, s := range srcs {
		if strings.HasPrefix(s, "map iteration order") {
			continue
		}
		out = append(out, s)
	}
	return out
}
