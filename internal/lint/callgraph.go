package lint

// callgraph.go builds a conservative, module-internal callgraph on top
// of the typed load. Static calls (package functions, methods on
// concrete receivers, generic instantiations) resolve exactly through
// types.Info. Calls through an interface method conservatively fan out
// to every module type implementing that interface — an
// over-approximation, never a miss. Two dynamic forms are out of scope
// and documented as such: calls through plain function values (including
// struct fields of function type) and calls of function literals bound
// to variables; the rules that ride on the graph treat those as
// side-effect-free, which keeps them conservative in the direction that
// matters for their scopes (no false "reachable" edges are needed for
// soundness of a *lint*, and the repository's decision paths dispatch
// through named functions and interfaces only).

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncNode is one declared function or method of the module.
type FuncNode struct {
	// Fn is the function's type-checker object.
	Fn *types.Func
	// Pkg is the package declaring the function.
	Pkg *Package
	// Decl is the function's declaration (with body).
	Decl *ast.FuncDecl
	// Callees are the module functions this function may call, in
	// deterministic (position) order, deduplicated.
	Callees []*FuncNode
	// SharedAccess reports that the function — directly or through any
	// callee — performs a recognized shared-memory access: a sync/atomic
	// method, a sync.Mutex/RWMutex lock, or a simulator object step
	// (sim.Ctx.Invoke and the register/snapshot wrappers above it).
	SharedAccess bool

	calleeSet map[*types.Func]bool
}

// CallGraph is the module's conservative callgraph.
type CallGraph struct {
	m *Module
	// Nodes maps every declared module function to its node.
	Nodes map[*types.Func]*FuncNode
	// namedTypes lists every non-interface named type declared in the
	// module, in declaration order, for interface fan-out. Enumerating
	// types rather than methods-by-name resolves promoted methods: a
	// struct that satisfies an interface through an embedded field has
	// no method declaration of its own to index.
	namedTypes []*types.Named
}

// CallGraph returns the module's callgraph, building it on first use.
func (m *Module) CallGraph() *CallGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m)
	}
	return m.cg
}

func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		m:     m,
		Nodes: make(map[*types.Func]*FuncNode),
	}
	// Pass 1: one node per declared function with a body, plus the
	// module's named types for interface fan-out.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Pkg: pkg, Decl: fd, calleeSet: make(map[*types.Func]bool)}
				g.Nodes[fn] = node
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}
	// Pass 2: edges.
	nodes := g.sortedNodes()
	for _, node := range nodes {
		n := node
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range g.calleesOf(n.Pkg, call) {
				if !n.calleeSet[callee.Fn] {
					n.calleeSet[callee.Fn] = true
					n.Callees = append(n.Callees, callee)
				}
			}
			return true
		})
		sort.Slice(n.Callees, func(i, j int) bool {
			return n.Callees[i].Fn.Pos() < n.Callees[j].Fn.Pos()
		})
	}
	g.computeSharedAccess(nodes)
	return g
}

// sortedNodes returns every node in deterministic declaration order.
func (g *CallGraph) sortedNodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn.Pos() < out[j].Fn.Pos() })
	return out
}

// NodeOf returns the node of a declared module function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.Nodes[fn] }

// calleesOf resolves one call site to its possible module callees.
func (g *CallGraph) calleesOf(pkg *Package, call *ast.CallExpr) []*FuncNode {
	if fn := resolvedFunc(pkg, call); fn != nil {
		if n, ok := g.Nodes[fn]; ok {
			return []*FuncNode{n}
		}
		// A method selected on an interface resolves to the interface's
		// method object, which has no declaration node; fan out below.
		if iface, name := receiverInterface(pkg, call); iface != nil {
			return g.implementersOf(iface, name)
		}
		return nil // external (stdlib) function
	}
	if iface, name := receiverInterface(pkg, call); iface != nil {
		return g.implementersOf(iface, name)
	}
	return nil
}

// implementersOf returns the declared module method each implementing
// type dispatches name to. Enumerating the module's named types and
// resolving through LookupFieldOrMethod handles promotion: when a type
// satisfies iface only because an embedded field provides some of the
// methods, the promoted method's declaration (on the embedded type) is
// the node the call can reach.
func (g *CallGraph) implementersOf(iface *types.Interface, name string) []*FuncNode {
	var out []*FuncNode
	seen := make(map[*FuncNode]bool)
	for _, named := range g.namedTypes {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		fn := lookupConcreteMethod(named, name)
		if fn == nil {
			continue
		}
		n, ok := g.Nodes[fn]
		if !ok || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// Reachable returns the set of nodes reachable from the roots, following
// edges except into packages for which skip returns true (the roots
// themselves are always included). skip may be nil.
func (g *CallGraph) Reachable(roots []*FuncNode, skip func(*Package) bool) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	stack := append([]*FuncNode(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.Callees {
			if seen[c] || (skip != nil && skip(c.Pkg)) {
				continue
			}
			seen[c] = true
			stack = append(stack, c)
		}
	}
	return seen
}

// ReachableWitness is Reachable plus attribution: each reached node maps
// to the root it was first discovered from (roots map to themselves).
// The BFS visits roots and callees in deterministic order, so the
// witness assignment — and every diagnostic built from it — is stable
// across runs.
func (g *CallGraph) ReachableWitness(roots []*FuncNode, skip func(*Package) bool) map[*FuncNode]*FuncNode {
	witness := make(map[*FuncNode]*FuncNode)
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := witness[r]; !ok {
			witness[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callees {
			if _, ok := witness[c]; ok || (skip != nil && skip(c.Pkg)) {
				continue
			}
			witness[c] = witness[n]
			queue = append(queue, c)
		}
	}
	return witness
}

// computeSharedAccess runs the shared-access dataflow to a fixed point:
// a function has the property if its body performs a primitive shared
// access or any callee has it.
func (g *CallGraph) computeSharedAccess(nodes []*FuncNode) {
	for _, n := range nodes {
		n.SharedAccess = bodyHasSharedPrimitive(g.m, n.Pkg, n.Decl.Body)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if n.SharedAccess {
				continue
			}
			for _, c := range n.Callees {
				if c.SharedAccess {
					n.SharedAccess = true
					changed = true
					break
				}
			}
		}
	}
}

// bodyHasSharedPrimitive reports a direct recognized shared-memory
// access in the AST subtree: a sync/atomic method call, a
// sync.Mutex/RWMutex Lock/RLock, or a simulator step (sim.Ctx.Invoke).
func bodyHasSharedPrimitive(m *Module, pkg *Package, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := resolvedFunc(pkg, call)
		if fn == nil {
			return true
		}
		switch {
		case isMethod(fn, "sync/atomic",
			"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"):
			found = true
		case isMethod(fn, "sync", "Lock", "RLock", "TryLock", "TryRLock"):
			found = true
		case isMethod(fn, m.Path+"/internal/sim", "Invoke"):
			found = true
		}
		return !found
	})
	return found
}
