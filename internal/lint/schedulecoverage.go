package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AnalyzerScheduleCoverage returns the schedulecoverage rule. A
// simulator test that only ever runs under the default round-robin
// scheduler exercises exactly one interleaving per configuration: the
// friendliest one. Every scheduling bug this repository has caught was
// found by a seeded random, crashing, or chaos-adversary schedule, so
// the rule flags test packages that call sim.Run (or the facade's
// detobj.Run) without ever constructing a non-round-robin scheduler —
// a seeded sim.NewRandom sweep, sim.NewFixed, sim.NewCrashing, a
// chaos adversary, a custom Scheduler, or exhaustive
// modelcheck.Explore.
//
// The module loader deliberately excludes _test.go files (tests may use
// wall clocks and ad-hoc randomness), so this rule parses each
// package's test files itself, syntactically; their //detlint:allow
// comments are honoured like any other.
func AnalyzerScheduleCoverage() *Analyzer {
	return &Analyzer{
		Name: "schedulecoverage",
		Doc:  "test packages driving sim.Run must vary the schedule beyond round-robin",
		Run:  runScheduleCoverage,
	}
}

// diverseSchedulers are the constructors and helpers whose mention in a
// test package demonstrates schedule diversity: the simulator's
// non-default schedulers, their facade spellings, the chaos adversaries,
// and exhaustive exploration.
var diverseSchedulers = map[string]bool{
	"NewRandom":               true,
	"NewFixed":                true,
	"NewCrashing":             true,
	"NewRandomScheduler":      true,
	"NewFixedSchedule":        true,
	"NewCrashingScheduler":    true,
	"NewCrashDuringOp":        true,
	"NewCrashRecovery":        true,
	"NewCrashRestart":         true,
	"NewRepeatedCrashRestart": true,
	"NewAdaptiveRestart":      true,
	"NewStall":                true,
	"NewAdaptive":             true,
	"NewAdaptiveAdversary":    true,
	"Instrument":              true,
	"InstrumentScheduler":     true,
	"Explore":                 true,
}

func runScheduleCoverage(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		d, ok := checkPackageSchedules(m, pkg)
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// checkPackageSchedules parses pkg's test files and reports whether the
// package runs simulations without any schedule diversity.
func checkPackageSchedules(m *Module, pkg *Package) (Diagnostic, bool) {
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		return Diagnostic{}, false
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var firstRun *Diagnostic
	runs, diverse := 0, false
	for _, name := range names {
		path := filepath.Join(pkg.Dir, name)
		f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			continue // a broken test file is the compiler's finding, not ours
		}
		collectFileAllows(m, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isSimRunCall(n) && firstRun == nil {
					pos := m.Fset.Position(n.Pos())
					firstRun = &Diagnostic{Pos: pos}
				}
				if isSimRunCall(n) {
					runs++
				}
			case *ast.Ident:
				if diverseSchedulers[n.Name] {
					diverse = true
				}
			case *ast.FuncDecl:
				// A method named Next with a receiver is a custom
				// scheduler implementation — diversity by construction.
				if n.Recv != nil && n.Name.Name == "Next" {
					diverse = true
				}
			}
			return true
		})
	}
	if runs == 0 || diverse || firstRun == nil {
		return Diagnostic{}, false
	}
	firstRun.Msg = fmt.Sprintf(
		"test package %s calls sim.Run %d time(s) but only under the default round-robin schedule; sweep seeded sim.NewRandom, sim.NewCrashing, or a chaos adversary for schedule coverage",
		pkg.Types.Name(), runs)
	return *firstRun, true
}

// isSimRunCall matches sim.Run(...) and detobj.Run(...) syntactically.
func isSimRunCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Run" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && (id.Name == "sim" || id.Name == "detobj")
}

// collectFileAllows indexes a test file's //detlint:allow comments so
// suppression works for findings the rule anchors in test files. It is
// idempotent per file: several rules parse the same test files (and the
// driver can run more than once on one Module), and a duplicated mark
// would read as stale to allowaudit — suppression only marks the first
// match used.
func collectFileAllows(m *Module, f *ast.File) {
	name := m.Fset.Position(f.Pos()).Filename
	if m.testAllowFiles[name] {
		return
	}
	if m.testAllowFiles == nil {
		m.testAllowFiles = make(map[string]bool)
	}
	m.testAllowFiles[name] = true
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "detlint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			mark := &allowMark{
				pos:   m.Fset.Position(c.Pos()),
				rules: make(map[string]bool),
			}
			mark.line = mark.pos.Line
			if len(fields) > 0 {
				for _, r := range strings.Split(fields[0], ",") {
					mark.rules[r] = true
				}
				mark.justified = len(fields) > 1
			}
			m.allows[mark.pos.Filename] = append(m.allows[mark.pos.Filename], mark)
		}
	}
}
