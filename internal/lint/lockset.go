package lint

// lockset.go computes the must-hold lockset of every statement in a
// function: the set of mutexes that are locked on *every* path from the
// entry to that statement. The fact is deliberately a must-analysis —
// joins intersect — so a guard is only credited when it is
// unconditional, which is the direction a lint must err in: a field
// access guarded on one path and bare on another is unguarded.
//
// Lock identity is the *types.Var of the mutex (a struct field or a
// local/package variable), abstracting over instances: s.mu and t.mu of
// the same struct type are the same lock. That is exactly the
// granularity the lock-order graph needs — deadlock cycles between
// *fields* are real regardless of which instances are involved — and it
// keeps the analysis instance-insensitive and cheap.
//
// Deferred unlocks are ignored: a deferred Unlock runs at return, so
// within the body the lock stays held, which is precisely what the
// must-hold fact should say. TryLock never generates (its success is
// conditional). Calls are not transparent here — interprocedural
// effects are the lockorder rule's job, via the per-call-site held sets
// this file records.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockFacts is the result of the must-hold lockset analysis over one
// function body.
type LockFacts struct {
	// Before maps each block-member statement to the must-hold set in
	// effect immediately before the statement executes.
	Before map[ast.Stmt][]*types.Var
	// Acquires lists every unconditional acquisition site in source
	// order.
	Acquires []LockAcquire
	// Calls lists every call expression evaluated at a block position,
	// with the must-hold set at the site, in source order.
	Calls []LockedCall
}

// LockAcquire is one Lock/RLock call site.
type LockAcquire struct {
	// Lock is the mutex being acquired.
	Lock *types.Var
	// Held is the must-hold set immediately before the acquisition
	// (never contains Lock unless the function re-acquires).
	Held []*types.Var
	// Read reports an RLock.
	Read bool
	// Pos is the call position.
	Pos token.Pos
}

// LockedCall is one call expression with the locks held at the site.
type LockedCall struct {
	// Call is the call expression.
	Call *ast.CallExpr
	// Held is the must-hold set at the call.
	Held []*types.Var
}

// ComputeLockFacts runs the dataflow over a function body's CFG.
func ComputeLockFacts(pkg *Package, cfg *CFG) *LockFacts {
	lf := &LockFacts{Before: make(map[ast.Stmt][]*types.Var)}

	in := make(map[*Block][]*types.Var)
	reached := map[*Block]bool{cfg.Entry: true}
	in[cfg.Entry] = nil

	// Fixed point: propagate out-states along edges, intersecting at
	// joins. Unreached blocks are ⊤ (identity of intersection).
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := transferLocks(pkg, b, in[b], nil)
		for _, s := range b.Succs {
			var next []*types.Var
			if !reached[s] {
				next = out
			} else {
				next = intersectLocks(in[s], out)
			}
			if !reached[s] || !equalLocks(in[s], next) {
				reached[s] = true
				in[s] = next
				work = append(work, s)
			}
		}
	}

	// Recording pass: with the solution fixed, walk blocks in index
	// order so Before, Acquires, and Calls come out in deterministic
	// source order.
	for _, b := range cfg.Blocks {
		if !reached[b] {
			continue
		}
		transferLocks(pkg, b, in[b], lf)
	}
	sort.Slice(lf.Acquires, func(i, j int) bool { return lf.Acquires[i].Pos < lf.Acquires[j].Pos })
	sort.Slice(lf.Calls, func(i, j int) bool { return lf.Calls[i].Call.Pos() < lf.Calls[j].Call.Pos() })
	return lf
}

// transferLocks pushes a must-hold set through one block. When rec is
// non-nil the pass also records per-statement facts and events.
func transferLocks(pkg *Package, b *Block, held []*types.Var, rec *LockFacts) []*types.Var {
	for _, st := range b.Stmts {
		if rec != nil {
			if _, seen := rec.Before[st]; !seen {
				rec.Before[st] = held
			}
		}
		// Deferred and spawned calls do not execute at this position.
		switch st.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			continue
		}
		cur := held
		inspectShallow(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if rec != nil {
				rec.Calls = append(rec.Calls, LockedCall{Call: call, Held: cur})
			}
			lock, op := mutexOp(pkg, call)
			if lock == nil {
				return true
			}
			switch op {
			case "Lock", "RLock":
				if rec != nil {
					rec.Acquires = append(rec.Acquires, LockAcquire{
						Lock: lock, Held: cur, Read: op == "RLock", Pos: call.Pos(),
					})
				}
				cur = addLock(cur, lock)
			case "Unlock", "RUnlock":
				cur = delLock(cur, lock)
			}
			return true
		})
		held = cur
	}
	return held
}

// guardedSelectors maps every selector expression evaluated in the
// function — including inside nested function literals — to the
// must-hold lockset at its statement. A literal body is analyzed with
// an empty entry set: it may run on another goroutine, so locks held by
// the enclosing function are not credited to it.
func guardedSelectors(pkg *Package, fd *ast.FuncDecl) map[*ast.SelectorExpr][]*types.Var {
	out := make(map[*ast.SelectorExpr][]*types.Var)
	for _, body := range FuncBodies(fd) {
		cfg := BuildCFG(body)
		lf := ComputeLockFacts(pkg, cfg)
		for _, b := range cfg.Blocks {
			for _, st := range b.Stmts {
				held, reached := lf.Before[st]
				if !reached {
					continue // unreachable block
				}
				inspectShallow(st, func(n ast.Node) bool {
					if sel, ok := n.(*ast.SelectorExpr); ok {
						if _, seen := out[sel]; !seen {
							out[sel] = held
						}
					}
					return true
				})
			}
		}
	}
	return out
}

// mutexOp recognizes a sync.Mutex/RWMutex method call and resolves the
// receiver to its variable. op is one of Lock/RLock/Unlock/RUnlock;
// TryLock/TryRLock return op == "" (conditional acquisition never
// generates a must-hold fact).
func mutexOp(pkg *Package, call *ast.CallExpr) (*types.Var, string) {
	fn := resolvedFunc(pkg, call)
	if !isMethod(fn, "sync", "Lock", "RLock", "Unlock", "RUnlock") {
		return nil, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	if v := lockVar(pkg, sel.X); v != nil {
		return v, fn.Name()
	}
	return nil, ""
}

// lockVar resolves a mutex receiver expression (s.mu, mu, w.inner.mu)
// to the variable naming the mutex — the innermost field or the plain
// variable.
func lockVar(pkg *Package, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := pkg.Info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[e]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		// Qualified package-level mutex: pkgname.mu.
		v, _ := pkg.Info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// ---- Lock-set algebra (sorted slices, position order) -----------------

func lockLess(a, b *types.Var) bool {
	if a.Pos() != b.Pos() {
		return a.Pos() < b.Pos()
	}
	return a.Name() < b.Name()
}

func hasLock(set []*types.Var, v *types.Var) bool {
	for _, x := range set {
		if x == v {
			return true
		}
	}
	return false
}

// addLock returns set ∪ {v} without mutating set.
func addLock(set []*types.Var, v *types.Var) []*types.Var {
	if hasLock(set, v) {
		return set
	}
	out := make([]*types.Var, 0, len(set)+1)
	out = append(out, set...)
	out = append(out, v)
	sort.Slice(out, func(i, j int) bool { return lockLess(out[i], out[j]) })
	return out
}

// delLock returns set \ {v} without mutating set.
func delLock(set []*types.Var, v *types.Var) []*types.Var {
	if !hasLock(set, v) {
		return set
	}
	out := make([]*types.Var, 0, len(set)-1)
	for _, x := range set {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func intersectLocks(a, b []*types.Var) []*types.Var {
	var out []*types.Var
	for _, x := range a {
		if hasLock(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func equalLocks(a, b []*types.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
