package lint

// boundedloop turns the paper's wait-freedom obligation into a lintable
// property. Herlihy's hierarchy and the paper's set-consensus
// characterization (R1) hold only for *wait-free* implementations:
// every operation must complete in a bounded number of its own steps,
// regardless of how other processes are scheduled. A stray unbounded
// retry loop on a decision path silently demotes an algorithm from
// wait-free to lock-free (or worse) and invalidates every theorem-shaped
// claim downstream.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerBoundedLoop returns the boundedloop rule. Every loop in a
// function reachable (via the conservative callgraph) from an object's
// decision path — Apply, Propose, WRN, Decide, Elect, Scan, Update
// methods under internal/ and native/ — must carry a recognized
// progress metric:
//
//   - a strictly bounded counter: for i := lo; i < hi; i++ with the
//     counter not reassigned in the body;
//   - a finite range: over a slice, array, map, string, or integer;
//   - a helping read: the loop can leave via return or break and its
//     body (transitively) reads shared state — an atomic, a mutex-held
//     section, or a simulator object step — so each retry adopts other
//     processes' progress (the universal construction's helping loop,
//     the AADGMS double collect);
//   - or a justified //detlint:allow boundedloop with the termination
//     argument.
//
// Calls into internal/sim are treated as single atomic steps (the
// model's granularity); the simulator's own machinery is not a decision
// path.
func AnalyzerBoundedLoop() *Analyzer {
	return &Analyzer{
		Name: "boundedloop",
		Doc:  "loops reachable from Apply/Propose/decision paths must carry a progress metric (wait-freedom)",
		Run:  runBoundedLoop,
	}
}

// decisionMethods are the method names that anchor a decision path.
var decisionMethods = map[string]bool{
	"Apply": true, "Propose": true, "WRN": true,
	"Decide": true, "Elect": true, "Scan": true, "Update": true,
}

func runBoundedLoop(m *Module) []Diagnostic {
	g := m.CallGraph()
	simPath := m.Path + "/internal/sim"
	skip := func(p *Package) bool { return p.Path == simPath }

	var roots []*FuncNode
	for _, n := range g.sortedNodes() {
		if !m.InScope(n.Pkg, "internal", "native") || n.Pkg.Path == simPath {
			continue
		}
		if n.Decl.Recv != nil && decisionMethods[n.Decl.Name.Name] {
			roots = append(roots, n)
		}
	}

	witness := g.ReachableWitness(roots, skip)
	reached := make([]*FuncNode, 0, len(witness))
	for n := range witness {
		reached = append(reached, n)
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i].Fn.Pos() < reached[j].Fn.Pos() })

	var out []Diagnostic
	for _, n := range reached {
		if skip(n.Pkg) {
			continue
		}
		for _, body := range FuncBodies(n.Decl) {
			cfg := BuildCFG(body)
			for _, loop := range cfg.AllLoops {
				if why, bad := classifyLoop(m, g, n.Pkg, loop); bad {
					via := ""
					if w := witness[n]; w != n {
						via = fmt.Sprintf(" (reachable from %s)", funcLabel(w))
					}
					out = append(out, Diagnostic{
						Pos: m.position(loop.Stmt),
						Msg: fmt.Sprintf("loop in %s%s has no recognized progress metric: %s; wait-freedom needs a bounded counter, a finite range, a helping read, or a justified allow",
							funcLabel(n), via, why),
					})
				}
			}
		}
	}
	return out
}

// funcLabel renders a node as pkgname.Func or pkgname.(Recv).Method.
func funcLabel(n *FuncNode) string {
	name := n.Pkg.Types.Name()
	if n.Decl.Recv != nil {
		return fmt.Sprintf("%s.(%s).%s", name, receiverTypeName(n.Decl), n.Decl.Name.Name)
	}
	return name + "." + n.Decl.Name.Name
}

// classifyLoop decides whether one loop carries a recognized progress
// metric; bad loops come back with the reason they fail.
func classifyLoop(m *Module, g *CallGraph, pkg *Package, loop *Loop) (string, bool) {
	switch s := loop.Stmt.(type) {
	case *ast.RangeStmt:
		t := pkg.Info.TypeOf(s.X)
		if t == nil {
			return "", false // type error; the loader would have failed
		}
		switch u := t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Map, *types.Pointer:
			return "", false
		case *types.Basic:
			return "", false // string or integer range: finite
		case *types.Chan:
			if helpingLoop(m, g, pkg, loop, s.Body) {
				return "", false
			}
			return "it ranges over a channel (unbounded source)", true
		case *types.Signature:
			return "it ranges over an iterator function (unbounded source)", true
		default:
			_ = u
			return "it ranges over an unrecognized source", true
		}
	case *ast.ForStmt:
		if boundedCounterLoop(pkg, s) {
			return "", false
		}
		if helpingLoop(m, g, pkg, loop, s.Body) {
			return "", false
		}
		switch {
		case s.Cond == nil && !loop.HasReturn && !loop.HasBreak:
			return "it can neither exit (no condition, return, or break) nor observe other processes' progress", true
		case !loop.HasReturn && !loop.HasBreak:
			return "it spins until shared state changes without adopting another process's result (await, not helping)", true
		default:
			return "it retries without a bounded counter and without reading shared state (no helping)", true
		}
	}
	return "", false
}

// boundedCounterLoop recognizes the strictly bounded counter shape:
// for i := lo; <cond involving i>; i++/i--/i+=k { ... i never written }.
func boundedCounterLoop(pkg *Package, s *ast.ForStmt) bool {
	if s.Init == nil || s.Cond == nil || s.Post == nil {
		return false
	}
	ctr := postCounter(pkg, s.Post)
	if ctr == nil {
		return false
	}
	if !initializes(pkg, s.Init, ctr) {
		return false
	}
	if !condCompares(pkg, s.Cond, ctr) {
		return false
	}
	return !bodyWrites(pkg, s.Body, ctr)
}

// postCounter returns the variable a post statement strictly advances.
func postCounter(pkg *Package, post ast.Stmt) types.Object {
	switch p := post.(type) {
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(p.X).(*ast.Ident); ok {
			return pkg.Info.Uses[id]
		}
	case *ast.AssignStmt:
		if len(p.Lhs) == 1 && (p.Tok == token.ADD_ASSIGN || p.Tok == token.SUB_ASSIGN) {
			if id, ok := ast.Unparen(p.Lhs[0]).(*ast.Ident); ok {
				return pkg.Info.Uses[id]
			}
		}
	}
	return nil
}

// initializes reports whether the init statement defines or assigns ctr.
func initializes(pkg *Package, init ast.Stmt, ctr types.Object) bool {
	as, ok := init.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		if pkg.Info.Defs[id] == ctr || pkg.Info.Uses[id] == ctr {
			return true
		}
	}
	return false
}

// condCompares reports whether the condition contains an ordered
// comparison involving ctr (possibly inside a && / || composition).
func condCompares(pkg *Package, cond ast.Expr, ctr types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
			if mentionsObj(pkg, be.X, ctr) || mentionsObj(pkg, be.Y, ctr) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// bodyWrites reports an assignment, inc/dec, or address-of targeting ctr
// inside the loop body (any of which voids the bounded-counter shape).
func bodyWrites(pkg *Package, body *ast.BlockStmt, ctr types.Object) bool {
	wrote := false
	ast.Inspect(body, func(n ast.Node) bool {
		if wrote {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && pkg.Info.Uses[id] == ctr {
					wrote = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pkg.Info.Uses[id] == ctr {
				wrote = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && mentionsObj(pkg, n.X, ctr) {
				wrote = true
			}
		}
		return !wrote
	})
	return wrote
}

// mentionsObj reports whether the expression references the object.
func mentionsObj(pkg *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// helpingLoop recognizes the helping pattern: the loop can finish its
// operation from inside the body (return or break), and the body reads
// shared state each iteration — directly via an atomic, a lock, or a
// simulator step, or transitively through a module callee with the
// SharedAccess summary — so each retry folds in other processes'
// progress rather than burning steps blind.
func helpingLoop(m *Module, g *CallGraph, pkg *Package, loop *Loop, body *ast.BlockStmt) bool {
	if !loop.HasReturn && !loop.HasBreak {
		return false
	}
	if bodyHasSharedPrimitive(m, pkg, body) {
		return true
	}
	shared := false
	ast.Inspect(body, func(n ast.Node) bool {
		if shared {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, callee := range g.calleesOf(pkg, call) {
			if callee.SharedAccess {
				shared = true
				break
			}
		}
		return !shared
	})
	return shared
}
