package lint

// slotdiscipline enforces the write half of internal/par's contract:
// a worker closure handed to par.ForEach may write captured state only
// through an index-derived slot — a subscript the SSA-lite value graph
// proves derives from the worker's index parameter — or under a mutex
// (whose shape sharedsink then validates), or via sync/atomic (method
// calls, which are not assignment targets and so never trip this rule).
// Everything else — plain assignments to captured variables, writes into
// captured maps, subscripts the index does not reach, stores through
// captured pointers or aliases of captured storage — is a finding,
// because two workers can reach the same cell and the final value
// becomes an accident of scheduling that the race detector can even
// miss (mutex-serialized but order-dependent writes).
//
// The same discipline is checked syntactically in _test.go files (the
// module loader excludes them from the typed load): a lenient scan that
// flags free-variable writes in ForEach worker literals unless the
// subscript mentions an index-derived name or the literal carries a
// Lock/Unlock pair.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AnalyzerSlotDiscipline returns the slotdiscipline rule.
func AnalyzerSlotDiscipline() *Analyzer {
	return &Analyzer{
		Name: "slotdiscipline",
		Doc:  "par.ForEach workers may write captured state only through index-derived slots, sync/atomic, or a mutex",
		Run:  runSlotDiscipline,
	}
}

func runSlotDiscipline(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, n := range m.CallGraph().sortedNodes() {
		if !m.InScope(n.Pkg, "internal", "cmd") {
			continue
		}
		for _, w := range parWorkers(m, n) {
			out = append(out, checkWorkerSlots(m, w)...)
		}
	}
	out = append(out, slotTestScan(m)...)
	return out
}

// checkWorkerSlots audits one worker literal's captured writes.
func checkWorkerSlots(m *Module, w parWorker) []Diagnostic {
	pkg := w.node.Pkg
	ssa := BuildLitSSA(pkg, w.lit)
	captured := capturedVars(pkg, w.lit)
	der := newIdxDeriver(pkg, ssa, w.idx)
	for v := range atomicClaimVars(pkg, w.lit) {
		der.extra[v] = true
	}
	locks := ComputeLockFacts(pkg, ssa.CFG)

	var out []Diagnostic
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos: m.Fset.Position(n.Pos()),
			Msg: fmt.Sprintf(format, args...) +
				"; par.ForEach workers may touch only their own index-derived slot (or use sync/atomic / a mutex-guarded sink)",
		})
	}
	for _, wr := range litWrites(pkg, w.lit) {
		if !captured[wr.rootVar] {
			// A write through a literal-local handle: flag only when the
			// handle provably aliases captured storage without an
			// index-derived subscript (s := slots; s[j] = v).
			if _, plain := ast.Unparen(wr.lhs).(*ast.Ident); plain {
				continue
			}
			cls := der.classifyAlias(ssa.BindingAt(wr.stmt, wr.rootVar), captured)
			if cls == aliasShared {
				flag(wr.lhs, "write through %q, which aliases captured state without an index-derived subscript", wr.root.Name)
			}
			continue
		}
		// Mutex-guarded writes are sharedsink's business (shape check).
		if held := locks.Before[wr.stmt]; len(held) > 0 {
			continue
		}
		step := firstStep(wr.lhs, wr.root)
		switch step := step.(type) {
		case nil: // plain identifier: x = v, x += v, x++
			flag(wr.lhs, "assignment to captured variable %q", wr.root.Name)
		case *ast.IndexExpr:
			if t := pkg.Info.TypeOf(wr.root); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					flag(wr.lhs, "write into captured map %q (maps have no index-derived slots)", wr.root.Name)
					continue
				}
			}
			if !der.derived(step.Index, wr.stmt) {
				flag(wr.lhs, "write to captured %q at a subscript not derived from the worker index", wr.root.Name)
			}
		case *ast.SelectorExpr:
			flag(wr.lhs, "write to field %s of captured %q", step.Sel.Name, wr.root.Name)
		case *ast.StarExpr:
			flag(wr.lhs, "write through captured pointer %q", wr.root.Name)
		}
	}
	return out
}

// firstStep returns the innermost path operation applied directly to the
// root identifier of an assignment target: the IndexExpr/SelectorExpr/
// StarExpr whose operand is the root. A plain identifier target returns
// nil.
func firstStep(lhs ast.Expr, root *ast.Ident) ast.Expr {
	var step ast.Expr
	e := ast.Unparen(lhs)
	for {
		var inner ast.Expr
		switch x := e.(type) {
		case *ast.Ident:
			if x == root {
				return step
			}
			return nil
		case *ast.SelectorExpr:
			inner = x.X
		case *ast.IndexExpr:
			inner = x.X
		case *ast.StarExpr:
			inner = x.X
		case *ast.ParenExpr:
			e = x.X
			continue
		default:
			return nil
		}
		step = e
		e = ast.Unparen(inner)
	}
}

// ---- Syntactic _test.go scan ------------------------------------------

// slotTestScan applies a lenient, purely syntactic version of the slot
// discipline to test files of in-scope packages (plus the module root,
// where the soak and bench harnesses live).
func slotTestScan(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		if !m.InScope(pkg, "internal", "cmd") && pkg.Path != m.Path {
			continue
		}
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			continue
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), "_test.go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(m.Fset, filepath.Join(pkg.Dir, name), nil, parser.ParseComments)
			if err != nil {
				continue // a broken test file is the compiler's finding
			}
			collectFileAllows(m, f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lit, idx := testForEachLit(call); lit != nil {
					out = append(out, scanTestWorker(m, lit, idx)...)
				}
				return true
			})
		}
	}
	return out
}

// testForEachLit matches par.ForEach(n, w, func(i int) ... ) (or a
// dot-imported ForEach) syntactically and returns the literal and the
// index parameter name.
func testForEachLit(call *ast.CallExpr) (*ast.FuncLit, string) {
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	}
	if name != "ForEach" || len(call.Args) != 3 {
		return nil, ""
	}
	lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
	if !ok || lit.Type.Params == nil || len(lit.Type.Params.List) == 0 ||
		len(lit.Type.Params.List[0].Names) == 0 {
		return nil, ""
	}
	return lit, lit.Type.Params.List[0].Names[0].Name
}

// scanTestWorker flags free-variable writes inside one test worker
// literal.
func scanTestWorker(m *Module, lit *ast.FuncLit, idx string) []Diagnostic {
	locals := map[string]bool{"_": true}
	var collectLocals func(n ast.Node)
	collectLocals = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, l := range n.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							locals[id.Name] = true
						}
					}
				}
			case *ast.ValueSpec:
				for _, id := range n.Names {
					locals[id.Name] = true
				}
			case *ast.RangeStmt:
				if n.Tok == token.DEFINE {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							locals[id.Name] = true
						}
					}
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					for _, f := range n.Type.Params.List {
						for _, id := range f.Names {
							locals[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	collectLocals(lit.Body)
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, id := range f.Names {
				locals[id.Name] = true
			}
		}
	}

	// Index-derived names, to a fixpoint: the index itself, anything
	// defined from an expression mentioning a derived name, and atomic
	// .Add claim results.
	derived := map[string]bool{idx: true}
	mentions := func(e ast.Expr, set map[string]bool) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && set[id.Name] {
				found = true
			}
			return !found
		})
		return found
	}
	hasAtomicAdd := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
				found = true
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || derived[id.Name] {
					continue
				}
				if mentions(as.Rhs[i], derived) || hasAtomicAdd(as.Rhs[i]) {
					derived[id.Name] = true
					changed = true
				}
			}
			return true
		})
	}

	// A literal carrying a Lock/Unlock pair is treated as a mutex-guarded
	// sink wholesale — the typed rules validate shapes; the test scan
	// only wants the glaring misses.
	mutexed := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" {
				mutexed = true
			}
		}
		return !mutexed
	})

	var out []Diagnostic
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos: m.Fset.Position(n.Pos()),
			Msg: fmt.Sprintf(format, args...) +
				"; test workers must follow the par.ForEach slot discipline too",
		})
	}
	check := func(st ast.Stmt, l ast.Expr) {
		root := rootOf(l)
		if root == nil || locals[root.Name] {
			return
		}
		switch step := firstStep(l, root).(type) {
		case nil:
			if !mutexed {
				flag(l, "test worker assigns captured variable %q", root.Name)
			}
		case *ast.IndexExpr:
			if !mentions(step.Index, derived) {
				flag(l, "test worker writes captured %q at a subscript not derived from the worker index", root.Name)
			}
		case *ast.SelectorExpr, *ast.StarExpr:
			if !mutexed {
				flag(l, "test worker writes through captured %q", root.Name)
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, l := range n.Lhs {
				check(n, l)
			}
		case *ast.IncDecStmt:
			check(n, n.X)
		}
		return true
	})
	return out
}
