package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// AnalyzerHangSemantics returns the hangsemantics rule. The paper's
// bounded-use semantics is that an illegal or over-budget operation
// "hangs the system in a manner that cannot be detected": the object
// parks the caller forever (sim.HangCaller) and no other process can
// observe that the hang occurred. Surfacing the condition as an error
// value instead changes the model — an error is detectable, so protocols
// could branch on it and the impossibility arguments stop applying. The
// rule enforces the hang path two ways:
//
//   - inside internal/, a sim.Object's Apply must not manufacture error
//     values (errors.New, fmt.Errorf) or respond with one
//     (sim.Respond(err)); illegal invocations panic (a model-checking
//     signal) and bounded-use exhaustion hangs;
//   - module-wide, any use of a bounded-use sentinel error variable
//     (Err…Used / …Reuse / …Exhausted / …Budget / …Spent) is flagged: the
//     native package's ErrIndexUsed is the one documented deviation and
//     must carry the //detlint:allow annotation at each use.
func AnalyzerHangSemantics() *Analyzer {
	return &Analyzer{
		Name: "hangsemantics",
		Doc:  "bounded-use objects must park callers via the hang path, not return errors",
		Run:  runHangSemantics,
	}
}

// boundedUseSentinel matches names of package-level error variables that
// report bounded-use violations.
var boundedUseSentinel = regexp.MustCompile(`^Err.*(Used|Reuse|Reused|Exhausted|Budget|Spent|Twice)`)

func runHangSemantics(m *Module) []Diagnostic {
	var out []Diagnostic
	out = append(out, hangCheckApplies(m)...)
	out = append(out, hangCheckSentinels(m)...)
	return out
}

// hangCheckApplies flags error construction inside Apply methods of
// sim.Object implementations under internal/.
func hangCheckApplies(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, am := range applyMethods(m) {
		if !m.InScope(am.pkg, "internal") {
			continue
		}
		recv := fmt.Sprintf("(%s).Apply", receiverTypeName(am.decl))
		ast.Inspect(am.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := am.pkg.Info.Uses[rootIdent(call.Fun)].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "errors" && fn.Name() == "New",
				fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				out = append(out, Diagnostic{
					Pos: m.Fset.Position(call.Pos()),
					Msg: fmt.Sprintf("%s constructs an error (%s.%s); bounded-use and illegal invocations must hang (sim.HangCaller) or panic", recv, fn.Pkg().Name(), fn.Name()),
				})
			case fn.Pkg().Path() == m.Path+"/internal/sim" && fn.Name() == "Respond" && len(call.Args) == 1:
				if t := am.pkg.Info.TypeOf(call.Args[0]); t != nil && implementsError(t) {
					out = append(out, Diagnostic{
						Pos: m.Fset.Position(call.Pos()),
						Msg: recv + " responds with an error value; an illegal invocation must hang the caller undetectably",
					})
				}
			}
			return true
		})
	}
	return out
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	iface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// hangCheckSentinels flags every use of a bounded-use sentinel error
// variable anywhere in the module (the declaration itself is fine).
func hangCheckSentinels(m *Module) []Diagnostic {
	sentinels := make(map[types.Object]bool)
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok || !boundedUseSentinel.MatchString(name) {
				continue
			}
			if implementsError(v.Type()) {
				sentinels[v] = true
			}
		}
	}
	if len(sentinels) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := pkg.Info.Uses[id]; obj != nil && sentinels[obj] {
					out = append(out, Diagnostic{
						Pos: m.Fset.Position(id.Pos()),
						Msg: fmt.Sprintf("bounded-use violation surfaced as error %s; the model requires the undetectable hang path", id.Name),
					})
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}
