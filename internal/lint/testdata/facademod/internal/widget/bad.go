package widget

// NewOrphan is reachable nowhere — the rule's positive finding.
func NewOrphan() *Widget { return &Widget{} }

// NewHidden is intentionally internal and annotated as such.
//
//detlint:allow facadeparity fixture: intentionally internal constructor
func NewHidden() *Widget { return &Widget{} }
