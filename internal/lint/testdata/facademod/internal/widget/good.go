// Package widget is the facadeparity fixture's one internal module.
package widget

// Widget is a placeholder component.
type Widget struct{ n int }

// NewGood is reachable through the root facade.
func NewGood(n int) *Widget { return &Widget{n: n} }
