module facadefix

go 1.22
