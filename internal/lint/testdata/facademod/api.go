// Package facadefix is the root facade of the facadeparity fixture
// module: it re-exports widget.NewGood and silently omits
// widget.NewOrphan.
package facadefix

import "facadefix/internal/widget"

// NewGood re-exports the widget constructor.
func NewGood(n int) *widget.Widget { return widget.NewGood(n) }
