// Package journalok is a journaldiscipline fixture: a journaled
// recoverable type whose op method mutates durable state, then appends
// the (opid, response) journal record, then responds with the exact
// value it journaled — the write-ahead order that makes the operation
// idempotent under crash-restart re-invocation.
package journalok

import "detobj/internal/sim"

// Log is a journaled single-cell store modeled on the recoverable
// WRN core: "put" swaps the cell and journals the previous value as the
// response.
//
//detlint:journaled put commits the cell write and the (proc, response) record in one atomic step
type Log struct {
	cell sim.Value //detlint:durable the shared cell is the non-volatile memory
	//detlint:journal per proc: the recorded response a re-invocation replays
	last map[int]sim.Value //detlint:durable a journal the crash wipes could not serve re-invocations
}

// OnCrash is a no-op: every field is deliberately durable.
func (l *Log) OnCrash(proc int) {}

// Apply implements sim.Object: "put"(v) swaps v into the cell and
// responds with the previous value; "get" replays the caller's last
// journaled response.
func (l *Log) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "put":
		r := l.cell
		l.cell = inv.Arg(0)
		l.last[env.Proc] = r
		return sim.Respond(r)
	case "get":
		return sim.Respond(l.last[env.Proc])
	}
	return sim.Respond(nil)
}
