// Package hangbad surfaces bounded-use violations as error values —
// exactly what the hangsemantics rule forbids inside internal/: a
// detectable error changes the model the impossibility arguments need.
package hangbad

import (
	"errors"
	"fmt"

	"detobj/internal/sim"
)

// ErrSlotUsed is a bounded-use sentinel; its use below is flagged.
var ErrSlotUsed = errors.New("slot already used")

// Bounded errors out instead of hanging.
type Bounded struct {
	used bool
}

// Apply implements sim.Object.
func (b *Bounded) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	if b.used {
		return sim.Respond(fmt.Errorf("%w: %s", ErrSlotUsed, inv.Op))
	}
	b.used = true
	return sim.Respond(errors.New("degraded"))
}
