// Package journalbad seeds the journaldiscipline findings: a durable
// write left pending after the journal append, a response computed off
// to the side of the journal, a volatile journal field, a journaled
// nomination with no journal, and a journal mark on an unnominated
// type.
package journalbad

import "detobj/internal/sim"

// Log mirrors journalok.Log, but both of its op methods break the
// discipline.
//
//detlint:journaled put is meant to commit cell and journal in one atomic step
type Log struct {
	cell  sim.Value //detlint:durable the shared cell
	count int       //detlint:durable how many puts ever landed
	//detlint:journal per proc: the recorded response
	last map[int]sim.Value //detlint:durable the journal half
}

// OnCrash is a no-op: all fields durable.
func (l *Log) OnCrash(proc int) {}

// Apply journals the response, then keeps mutating durable state: the
// count update is not covered by the append, so a crash between the two
// replays "put" with the journal already committed and applies the
// count twice.
func (l *Log) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	r := l.cell
	l.cell = inv.Arg(0)
	l.last[env.Proc] = r
	l.count++
	return sim.Respond(r)
}

// Aside journals one value but responds with another: a re-invocation
// after restart replays the journaled value and answers differently
// than the original call.
func (l *Log) Aside(env *sim.Env, inv sim.Invocation) sim.Response {
	r := l.cell
	l.cell = inv.Arg(0)
	l.last[env.Proc] = r
	fresh := stamp(env.Proc)
	return sim.Respond(fresh)
}

func stamp(proc int) sim.Value { return proc*2 + 1 }

// Wiped nominates a journal the crash erases — useless for
// idempotence.
//
//detlint:journaled the nomination is right, the journal's class is not
type Wiped struct {
	data int //detlint:durable the state the journal is supposed to cover
	//detlint:journal a volatile journal protects nothing
	rec map[int]int //detlint:volatile wiped per process on crash
}

// Apply implements sim.Object minimally.
func (w *Wiped) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	return sim.Respond(nil)
}

// OnCrash wipes the so-called journal.
func (w *Wiped) OnCrash(proc int) { delete(w.rec, proc) }

// Empty nominates itself journaled but marks no journal fields.
//
//detlint:journaled nominated with nothing to nominate
type Empty struct {
	x int //detlint:durable some durable state
}

// Apply implements sim.Object minimally.
func (e *Empty) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	return sim.Respond(nil)
}

// OnCrash is a no-op.
func (e *Empty) OnCrash(proc int) {}

// Unnominated carries a journal mark without the type-level
// nomination.
type Unnominated struct {
	//detlint:journal orphaned: the type never opted in
	j map[int]int //detlint:durable would-be journal
}

// Apply implements sim.Object minimally.
func (u *Unnominated) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	return sim.Respond(nil)
}

// OnCrash is a no-op.
func (u *Unnominated) OnCrash(proc int) {}
