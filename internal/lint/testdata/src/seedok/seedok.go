// Package seedok exercises the worker-input shapes the seedflow rule
// must accept: a per-worker RNG seeded from the index (the blessed
// rand.New(rand.NewSource(seed + int64(i))) construction), module calls
// whose arguments are arithmetic over the index and captured
// loop-invariant configuration, and slot values computed from both.
package seedok

import (
	"math/rand"

	"detobj/internal/par"
)

type config struct {
	base  int64
	depth int
}

// step is a module function the workers feed; seedflow audits its
// arguments at every worker call site.
func step(seed int64, depth int) int64 {
	return seed * int64(depth+1)
}

// SweepSeeded derives each worker's seed and RNG purely from the index.
func SweepSeeded(n, workers int, seed int64) []int64 {
	slots := make([]int64, n)
	cfg := config{base: seed, depth: 3}
	par.ForEach(n, workers, func(i int) error {
		r := rand.New(rand.NewSource(cfg.base + int64(i)))
		draw := r.Int63()
		slots[i] = step(cfg.base+int64(i), cfg.depth) + draw%7
		return nil
	})
	return slots
}

// SweepDerived feeds module calls from locals that are arithmetic over
// the index and captured read-only state.
func SweepDerived(n, workers int, seed int64) []int64 {
	slots := make([]int64, n)
	par.ForEach(n, workers, func(i int) error {
		mine := seed + int64(i)*2
		depth := i % 5
		slots[i] = step(mine, depth)
		return nil
	})
	return slots
}
