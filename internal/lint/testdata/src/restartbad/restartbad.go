// Package restartbad is a crash-restart adversary whose fault
// directives depend on everything injectionpurity forbids for
// sim.Fault-returning decision functions: the wall clock, the global
// random source, and channel traffic — each one making a crash-restart
// schedule irreproducible from its seed.
package restartbad

import (
	"math/rand"
	"time"

	"detobj/internal/sim"
)

// Adversary decides crashes from ambient state instead of its seed.
type Adversary struct {
	victim int
	ch     chan sim.Fault
}

// New returns the impure restart adversary.
func New(victim int) *Adversary {
	return &Adversary{victim: victim, ch: make(chan sim.Fault, 1)}
}

// Next implements sim.Scheduler.
func (a *Adversary) Next(v sim.View) int { return v.Enabled[0] }

// Faults implements sim.FaultInjector impurely.
func (a *Adversary) Faults(v sim.View) []sim.Fault {
	if time.Now().UnixNano()%2 == 0 && v.EnabledSet(a.victim) {
		return []sim.Fault{{Proc: a.victim, Kind: sim.FaultCrash}}
	}
	if rand.Intn(2) == 0 {
		return a.fromChan()
	}
	return nil
}

// fromChan hides the channel dependence one call deep.
func (a *Adversary) fromChan() []sim.Fault {
	select {
	case f := <-a.ch:
		return []sim.Fault{f}
	default:
		return nil
	}
}
