package restartbad

import (
	"testing"

	"detobj/internal/sim"
)

// TestOnlyRoundRobin drives sim.Run without any schedule diversity —
// under a restart adversary this is exactly the gap schedulecoverage
// flags: every crash-restart interleaving but the friendliest one goes
// untested.
func TestOnlyRoundRobin(t *testing.T) {
	if _, err := sim.Run(sim.Config{Scheduler: sim.NewRoundRobin()}); err != nil {
		t.Fatal(err)
	}
}
