// Package schedbad is a schedulecoverage fixture: its test file drives
// sim.Run under nothing but the default round-robin schedule.
package schedbad
