package schedbad

import (
	"testing"

	"detobj/internal/sim"
)

// TestOnlyRoundRobin runs the simulator twice and never varies the
// schedule: the default (nil) scheduler and an explicit round-robin.
func TestOnlyRoundRobin(t *testing.T) {
	if _, err := sim.Run(sim.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(sim.Config{Scheduler: sim.NewRoundRobin()}); err != nil {
		t.Fatal(err)
	}
}
