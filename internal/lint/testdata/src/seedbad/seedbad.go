// Package seedbad seeds the schedule-dependent worker inputs the
// seedflow rule must flag: a slot value stamped from the wall clock, a
// module call fed from the unseeded global rand source, draws from one
// RNG shared by all workers (race-free per draw, but draw ORDER is the
// schedule's choice — invisible to nodeterminism, which blesses seeded
// *rand.Rand methods), a pick made by map iteration order, and a value
// pulled from a channel in completion order.
package seedbad

import (
	"math/rand"
	"time"

	"detobj/internal/par"
)

// burn is a module function the workers feed.
func burn(seed int64) int64 { return seed ^ 0x5a }

// StampedSlots stores a wall-clock read into each worker's slot.
func StampedSlots(n, workers int) []int64 {
	slots := make([]int64, n)
	par.ForEach(n, workers, func(i int) error {
		slots[i] = time.Now().UnixNano()
		return nil
	})
	return slots
}

// GlobalSeeds feeds the module step from the global rand source.
func GlobalSeeds(n, workers int) []int64 {
	slots := make([]int64, n)
	par.ForEach(n, workers, func(i int) error {
		slots[i] = burn(rand.Int63())
		return nil
	})
	return slots
}

// SharedDraws hands every worker the same RNG: each draw is internally
// locked, so there is no race — but which worker gets which draw is
// decided by the schedule.
func SharedDraws(n, workers int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	slots := make([]int64, n)
	par.ForEach(n, workers, func(i int) error {
		slots[i] = rng.Int63()
		return nil
	})
	return slots
}

// MapPick seeds each worker from whichever key map iteration visits
// last.
func MapPick(n, workers int, weights map[int]int64) []int64 {
	slots := make([]int64, n)
	par.ForEach(n, workers, func(i int) error {
		var pick int64
		for _, w := range weights {
			pick = w
		}
		slots[i] = pick
		return nil
	})
	return slots
}

// FedFromChan seeds workers from a shared channel: which worker gets
// which seed is completion order.
func FedFromChan(n, workers int, feed chan int64) []int64 {
	slots := make([]int64, n)
	par.ForEach(n, workers, func(i int) error {
		v := <-feed
		slots[i] = v
		return nil
	})
	return slots
}
