// Package recreadbad seeds the recoveryreads findings: recovery code
// observing volatile fields before re-deriving them — a guard read at
// the top of a Recovery method, a read after a join only one arm of
// which re-derived, an increment (which reads the old value) inside a
// RecoveryProc closure, and a read buried in a helper the recovery root
// reaches.
package recreadbad

import "detobj/internal/sim"

// Cache pairs a durable log with a volatile table, like recreadok — but
// every recovery path here peeks at the table too early.
type Cache struct {
	log   []int       //detlint:durable the source of truth the table is rebuilt from
	table map[int]int //detlint:volatile derived index; a crash empties it
	hits  int         //detlint:volatile per-run counter, zeroed by a crash
}

// Apply implements sim.Object minimally; the fixture's point is the
// recovery code below, not the op path.
func (c *Cache) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	return sim.Respond(nil)
}

// OnCrash wipes the volatile half.
func (c *Cache) OnCrash(proc int) {
	clear(c.table)
	c.hits = 0
}

// Recovery guards on the wiped table before rebuilding it: after a
// crash the guard always sees the empty map, so the early return is
// dead wrong exactly when recovery matters.
func (c *Cache) Recovery(proc int) {
	if _, ok := c.table[proc]; ok {
		return
	}
	c.table = rebuild(c.log)
}

// Warm re-derives on only one arm, then reads after the join — the
// intersection join must kill the half-written fact.
func Warm(c *Cache) sim.RecoveryProc {
	return func(ctx *sim.Ctx) {
		if ctx.ID() == 0 {
			c.table = rebuild(c.log)
		}
		c.hits++
		_ = c.table[0]
	}
}

// audit is a helper only recovery code reaches; the read inside it is
// attributed to the reaching root by the callgraph witness. That the
// caller re-derived the table first does not help: the analysis is
// modular, and each function must earn its own reads.
func (c *Cache) audit() int { return c.table[0] }

// Recovery2 is a second entry point that reaches the helper.
func Recovery2(c *Cache) sim.RecoveryProc {
	return func(ctx *sim.Ctx) {
		c.table = rebuild(c.log)
		_ = c.audit()
	}
}

func rebuild(log []int) map[int]int {
	out := make(map[int]int, len(log))
	for i, v := range log {
		out[i] = v
	}
	return out
}
