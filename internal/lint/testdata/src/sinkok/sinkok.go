// Package sinkok exercises the documented shared-accumulator shapes the
// sharedsink rule must accept: per-iteration slot goroutines joined by
// a WaitGroup, a one-mutex sink read after Wait, a read taken under the
// sink's own mutex, and an atomic early-exit counter.
package sinkok

import (
	"sync"
	"sync/atomic"
)

// FanOutSlots spawns one goroutine per index, each writing only its own
// slot, and reads the slots after the WaitGroup barrier.
func FanOutSlots(n int) []int {
	slots := make([]int, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		//detlint:allow nodeterminism fixture goroutine: each worker writes only its own per-iteration slot and the WaitGroup joins before any read
		go func() {
			defer wg.Done()
			slots[p] = p * p
		}()
	}
	wg.Wait()
	total := 0
	for i := 0; i < n; i++ {
		total += slots[i]
	}
	_ = total
	return slots
}

// GuardedSink accumulates into one mutex-guarded total and counts
// completions atomically; the read happens after Wait.
func GuardedSink(n int) (int, int64) {
	var (
		mu    sync.Mutex
		total int
		done  atomic.Int64
		wg    sync.WaitGroup
	)
	for p := 0; p < n; p++ {
		wg.Add(1)
		//detlint:allow nodeterminism fixture goroutine: the sink is commutative addition under one mutex and the WaitGroup joins before the read
		go func() {
			defer wg.Done()
			mu.Lock()
			total += p
			mu.Unlock()
			done.Add(1)
		}()
	}
	wg.Wait()
	return total, done.Load()
}

// PeekUnderLock reads the sink while holding its mutex: no Wait needed
// for a consistent (if racy-in-time) snapshot.
func PeekUnderLock(n int) int {
	var (
		mu    sync.Mutex
		total int
		wg    sync.WaitGroup
	)
	for p := 0; p < n; p++ {
		wg.Add(1)
		//detlint:allow nodeterminism fixture goroutine: commutative mutex-guarded sink, snapshot read holds the same mutex
		go func() {
			defer wg.Done()
			mu.Lock()
			total += p
			mu.Unlock()
		}()
	}
	mu.Lock()
	snapshot := total
	mu.Unlock()
	wg.Wait()
	return snapshot
}
