// Package sharedbad seeds the races the sharedstate rule must flag: a
// field written and read on exported operations with no atomic, no
// mutex, and no annotation — both directly and through an unexported
// helper only the callgraph ties to the entry point.
package sharedbad

// Gauge is shared between goroutines but protects nothing.
type Gauge struct {
	val  int
	peak int
}

// NewGauge builds a gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set races with every concurrent Set and Get.
func (g *Gauge) Set(v int) {
	g.val = v
	g.bump(v)
}

// Get reads the racing field unguarded.
func (g *Gauge) Get() int { return g.val }

// bump is reached from Set; the race hides one call deep.
func (g *Gauge) bump(v int) {
	if v > g.peak {
		g.peak = v
	}
}
