// Package lockok exercises lock usage the lockorder rule must accept:
// a two-lock hierarchy acquired in the same order on every path
// (directly and through a helper), a reader/writer pair sharing one
// RWMutex, and fields guarded consistently everywhere they are
// touched.
package lockok

import "sync"

// Ledger orders its locks: accounts strictly before journal.
type Ledger struct {
	accounts sync.Mutex
	journal  sync.Mutex
	balance  int
	log      []int
}

// NewLedger builds the ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Post locks accounts, then journal through the helper.
func (l *Ledger) Post(d int) {
	l.accounts.Lock()
	defer l.accounts.Unlock()
	l.balance += d
	l.append(d)
}

// append takes journal while accounts is held — the same order every
// caller uses.
func (l *Ledger) append(d int) {
	l.journal.Lock()
	defer l.journal.Unlock()
	l.log = append(l.log, d)
}

// Audit uses the hierarchy directly.
func (l *Ledger) Audit() int {
	l.accounts.Lock()
	defer l.accounts.Unlock()
	l.journal.Lock()
	defer l.journal.Unlock()
	return l.balance + len(l.log)
}

// Stat guards one word with a reader/writer lock.
type Stat struct {
	mu  sync.RWMutex
	cur int
}

// NewStat builds the stat.
func NewStat() *Stat { return &Stat{} }

// Set writes under the write lock.
func (s *Stat) Set(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur = v
}

// Get reads under the read lock: same lock variable, consistent
// discipline.
func (s *Stat) Get() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur
}
