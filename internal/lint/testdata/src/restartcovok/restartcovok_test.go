package restartcovok

import (
	"testing"

	"detobj/internal/chaos"
	"detobj/internal/sim"
)

// slate is a test-local recoverable scratch cell: the OnCrash method
// marks the package as targeting the recoverable model.
type slate struct {
	vals map[int]sim.Value //detlint:volatile the whole point of the fixture is losing this on restart
}

func (s *slate) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	if s.vals == nil {
		s.vals = make(map[int]sim.Value)
	}
	s.vals[env.Proc] = inv.Arg(0)
	return sim.Respond(nil)
}

func (s *slate) OnCrash(proc int) { delete(s.vals, proc) }

// TestRestartHitsRecoverable restarts a victim against the recoverable
// slate and checks the run terminates.
func TestRestartHitsRecoverable(t *testing.T) {
	r := chaos.NewReport(1)
	_, err := sim.Run(sim.Config{
		Objects: map[string]sim.Object{"S": &slate{}},
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			ctx.Invoke("S", "put", 7)
			return nil
		}},
		Scheduler: chaos.NewCrashRestart(sim.NewRoundRobin(), r, 0, 1, 0),
		MaxSteps:  1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
}
