// Package restartcovok is a restartcoverage fixture: its test file arms
// an amnesiac crash-restart adversary against a test-local recoverable
// object (one with an OnCrash method), which is exactly what the
// restart adversaries exist to exercise.
package restartcovok
