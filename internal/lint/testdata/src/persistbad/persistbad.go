// Package persistbad seeds every integrity finding of the persistsplit
// rule: an unannotated field, a contradictory annotation pair, amnesia
// (OnCrash wiping a durable field), ghost state (a volatile field
// OnCrash misses), an unjustified annotation, and a persistence
// annotation on a type outside the recoverable model.
package persistbad

import "detobj/internal/sim"

// Cell is a sim.Recoverable implementor with a mis-declared split.
type Cell struct {
	count int // unannotated: the rule demands a declared intent
	//detlint:durable survives the crash
	//detlint:volatile no wait, it does not
	torn  int
	saved int         //detlint:durable the committed state a restart resumes from
	stage map[int]int //detlint:volatile staged writes die with their process
	tmp   int         //detlint:volatile
}

// Apply implements sim.Object minimally.
func (c *Cell) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	return sim.Respond(nil)
}

// OnCrash wipes the wrong set: it erases the durable saved field
// (amnesia) and never touches the volatile tmp field (ghost state).
func (c *Cell) OnCrash(proc int) {
	c.saved = 0
	delete(c.stage, proc)
}

// Plain is not recoverable — it has no OnCrash — so its persistence
// annotation attaches to nothing.
type Plain struct {
	x int //detlint:durable misplaced: this type is outside the recoverable model
}
