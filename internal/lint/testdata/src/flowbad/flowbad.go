// Package flowbad seeds the nondeterministic decision values the
// decisionflow rule must catch: a proposal decided from the wall clock
// one call deep, a winner picked by map iteration order, a verdict
// read from an unsynchronized field while another method writes it
// under a lock, and an election settled by channel scheduling.
package flowbad

import (
	"sync"
	"time"
)

// Obj decides nondeterministically in four different ways.
type Obj struct {
	mu    sync.Mutex
	seen  map[int]bool
	grade int
}

// NewObj builds the object.
func NewObj() *Obj { return &Obj{seen: make(map[int]bool)} }

// Propose decides a timestamp: the classic replay-breaker, hidden one
// call deep.
func (o *Obj) Propose(v int) int {
	stamp := int(stampNow())
	if stamp > v {
		return stamp
	}
	return v
}

// stampNow is where the clock actually gets read.
func stampNow() int64 { return time.Now().UnixNano() }

// Decide picks whichever key the runtime happens to visit first.
func (o *Obj) Decide() int {
	for k := range o.seen {
		return k
	}
	return -1
}

// Scan returns grade without holding mu; Update's writers race with
// the read, so the returned value depends on scheduling.
func (o *Obj) Scan() int { return o.grade }

// Update writes grade under the lock.
func (o *Obj) Update(v int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.grade = v
}

// Elect returns whatever message wins the scheduling race.
func (o *Obj) Elect(ch chan int) int {
	return <-ch
}
