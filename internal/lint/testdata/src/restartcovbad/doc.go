// Package restartcovbad seeds the restartcoverage finding: its test
// file arms an amnesiac restart adversary against plain,
// non-recoverable objects without declaring itself a negative control.
package restartcovbad
