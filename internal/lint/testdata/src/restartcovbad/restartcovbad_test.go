package restartcovbad

import (
	"testing"

	"detobj/internal/chaos"
	"detobj/internal/registers"
	"detobj/internal/sim"
)

// TestRestartPlainObject restarts a victim against a plain register:
// amnesiac restart against a non-recoverable object proves nothing
// unless it is a declared negative control, and this test declares
// nothing.
func TestRestartPlainObject(t *testing.T) {
	r := chaos.NewReport(2)
	_, err := sim.Run(sim.Config{
		Objects: map[string]sim.Object{"R": registers.NewAtomic(nil)},
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			ctx.Invoke("R", "write", 7)
			return nil
		}},
		Scheduler: chaos.NewRepeatedCrashRestart(sim.NewRoundRobin(), r, 0, 1, 3),
		MaxSteps:  1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
}
