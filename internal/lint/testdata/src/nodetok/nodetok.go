// Package nodetok exercises the determinism-safe idioms the
// nodeterminism rule must accept without findings (plus one justified,
// annotated exemption).
package nodetok

import (
	"math/rand"
	"sort"
	"time"
)

// Pick draws from an explicitly seeded source; methods on *rand.Rand
// are reproducible.
func Pick(seed int64, n int) int { return rand.New(rand.NewSource(seed)).Intn(n) }

// Sum accumulates commutatively, so iteration order cannot show.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Keys collects in iteration order and launders it with a sort.
func Keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Invert writes into another map: per-key effects commute.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Recv waits on a single channel: no nondeterministic choice.
func Recv(c chan int) int {
	select {
	case v := <-c:
		return v
	}
}

// Stamp is the one annotated exemption in the fixtures; the allow
// comment carries a justification, so the wall-clock read is accepted.
func Stamp() time.Time {
	//detlint:allow nodeterminism fixture: demonstrates a justified exemption
	return time.Now()
}
