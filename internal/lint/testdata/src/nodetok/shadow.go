package nodetok

// Shadowed identifiers spelled like the banned symbols: the typed
// matcher resolves through go/types, so a local value named `time` with
// a Now method — or a `rand` with an Intn method — must never trip the
// rule, and neither must methods that merely share a banned name.

type clock struct{ base int64 }

func (c clock) Now() int64          { return c.base }
func (c clock) Since(t int64) int64 { return c.base - t }

type dice struct{ face int }

func (d dice) Intn(n int) int { return d.face % n }

// LocalSymbols exercises the shadowed spellings.
func LocalSymbols() int64 {
	time := clock{base: 42}
	rand := dice{face: 3}
	return time.Now() + time.Since(7) + int64(rand.Intn(5))
}
