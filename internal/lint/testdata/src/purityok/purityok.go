// Package purityok implements a sim.Object that stays within the purity
// contract: arguments are indexed, ranged and measured but the slice is
// never retained, and all state lives in the receiver.
package purityok

import "detobj/internal/sim"

// Copying is the pure object.
type Copying struct {
	vals []sim.Value
	n    int
}

// Apply implements sim.Object.
func (c *Copying) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	if len(inv.Args) == 0 {
		//detlint:allow boxing responses carry scalars through sim.Value by design
		return sim.Respond(c.n)
	}
	for _, v := range inv.Args {
		//detlint:allow hotalloc copying the arguments into receiver state is this fixture's point
		c.vals = append(c.vals, v)
	}
	c.n++
	return sim.Respond(inv.Args[0])
}
