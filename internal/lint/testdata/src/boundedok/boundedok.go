// Package boundedok exercises every progress metric the boundedloop
// rule must accept: bounded counters (including compound conditions),
// finite ranges, helping loops that adopt other processes' progress,
// a justified annotated spin, and — by containing an unbounded loop in
// a method no decision path reaches — the reachability scoping itself.
package boundedok

import "sync/atomic"

// Obj is a toy decision object; Propose anchors the decision path.
type Obj struct {
	done  atomic.Bool
	cur   atomic.Int64
	names []string
	seen  map[int]int
}

// Propose decides a value using only recognized progress metrics.
func (o *Obj) Propose(v int) int {
	o.Spin()
	t := o.counted(v) + o.ranged()
	return t + o.helping(v)
}

// counted runs strictly bounded counters, one with a compound condition.
func (o *Obj) counted(v int) int {
	t := 0
	for i := 0; i < len(o.names); i++ {
		t += len(o.names[i])
	}
	for i, found := 0, false; i < 8 && !found; i++ {
		if i == v {
			found = true
		}
		t++
	}
	return t
}

// ranged iterates finite sources: a slice and a map (commutatively).
func (o *Obj) ranged() int {
	t := 0
	for _, s := range o.names {
		t += len(s)
	}
	for _, v := range o.seen {
		t += v
	}
	return t
}

// helping retries until it can adopt a decided value: the body reads
// shared state (atomics) and can leave via return, so every iteration
// folds in other processes' progress.
func (o *Obj) helping(v int) int {
	for {
		if o.done.Load() {
			return int(o.cur.Load())
		}
		if o.cur.CompareAndSwap(0, int64(v)) {
			o.done.Store(true)
			return v
		}
	}
}

// Spin carries the rule's escape hatch: the justification documents the
// termination argument the analyzer cannot see.
func (o *Obj) Spin() {
	n := 0
	//detlint:allow boundedloop fixture exemption: terminates after one iteration by construction
	for {
		n++
		if n > 0 {
			return
		}
	}
}

// idle is unreachable from any decision method, so its unbounded loop
// is out of the rule's scope.
func (o *Obj) idle() {
	n := 0
	for {
		n++
	}
}
