// Package sharedok exercises every protection the sharedstate rule must
// accept: atomic fields, mutex-guarded fields, fields immutable after
// construction (including len/cap reads of element-mutated slices), and
// the field-declaration allow escape for a deliberately unsynchronized
// field published before the object is shared.
package sharedok

import (
	"sync"
	"sync/atomic"
)

// Counter is a goroutine-safe accumulator.
type Counter struct {
	mu   sync.Mutex
	n    int          // guarded by mu
	hits atomic.Int64 // atomic
	//detlint:allow sharedstate fixture demonstrates the field-decl escape: published via SetHook before the object is shared
	hook  func(int)
	limit int   // immutable after construction
	cells []int // header immutable; elements written under mu
}

// NewCounter builds a counter; construction happens-before sharing.
func NewCounter(limit int) *Counter {
	return &Counter{limit: limit, cells: make([]int, limit)}
}

// SetHook installs an observer; covered by the field-decl allow.
func (c *Counter) SetHook(h func(int)) { c.hook = h }

// Add accumulates under the mutex.
func (c *Counter) Add(d int) int {
	c.hits.Add(1)
	if d >= len(c.cells) {
		d = len(c.cells) - 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	if c.n > c.limit {
		c.n = c.limit
	}
	c.cells[d]++
	if c.hook != nil {
		c.hook(c.n)
	}
	return c.n
}
