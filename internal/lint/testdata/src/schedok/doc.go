// Package schedok is a schedulecoverage fixture: its test file sweeps
// seeded random schedules alongside the default, which is exactly the
// coverage the rule demands.
package schedok
