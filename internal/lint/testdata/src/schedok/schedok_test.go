package schedok

import (
	"testing"

	"detobj/internal/sim"
)

// TestSweepsSchedules varies the schedule: a round-robin baseline plus a
// seeded random sweep.
func TestSweepsSchedules(t *testing.T) {
	if _, err := sim.Run(sim.Config{}); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		if _, err := sim.Run(sim.Config{Scheduler: sim.NewRandom(seed)}); err != nil {
			t.Fatal(err)
		}
	}
}
