// Package restartok is a crash-restart adversary whose fault directives
// are pure functions of the observed history and a seeded source — the
// shape the injectionpurity rule must accept for sim.Fault-returning
// decision functions: instance-seeded randomness, counters, and view
// inspection, nothing reading clocks, global randomness, the runtime,
// or channels.
package restartok

import (
	"math/rand"

	"detobj/internal/sim"
)

// Adversary crashes a victim once at a seeded step and restarts it.
type Adversary struct {
	rng       *rand.Rand
	victim    int
	crashAt   int
	crashed   bool
	restarted bool
	out       [1]sim.Fault // reused directive buffer: Faults stays allocation-free
}

// New returns the seeded restart adversary.
func New(seed int64, victim int) *Adversary {
	rng := rand.New(rand.NewSource(seed))
	return &Adversary{rng: rng, victim: victim, crashAt: rng.Intn(8)}
}

// Next implements sim.Scheduler.
func (a *Adversary) Next(v sim.View) int { return v.Enabled[0] }

// Faults implements sim.FaultInjector purely: directives derive from the
// view, the seeded source, and recorded state alone.
func (a *Adversary) Faults(v sim.View) []sim.Fault {
	if !a.crashed && v.Step >= a.crashAt && v.EnabledSet(a.victim) {
		a.crashed = true
		a.out[0].Proc, a.out[0].Kind = a.victim, sim.FaultCrash
		return a.out[:1]
	}
	if a.crashed && !a.restarted && v.CrashedSet(a.victim) && a.rng.Intn(2) == 0 {
		a.restarted = true
		a.out[0].Proc, a.out[0].Kind = a.victim, sim.FaultRestart
		return a.out[:1]
	}
	return nil
}
