package restartok

import (
	"testing"

	"detobj/internal/chaos"
	"detobj/internal/sim"
)

// TestSweepsRestartSchedules drives sim.Run under the crash-restart
// adversary family — exactly the diversity schedulecoverage demands.
func TestSweepsRestartSchedules(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := chaos.NewReport(seed)
		sched := chaos.NewCrashRestart(sim.NewRandom(seed), r, 0, 2, 3)
		if _, err := sim.Run(sim.Config{Scheduler: sched}); err != nil {
			t.Fatal(err)
		}
	}
}
