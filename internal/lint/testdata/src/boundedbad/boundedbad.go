// Package boundedbad seeds every loop shape the boundedloop rule must
// reject on a decision path: the blind spin-await, the loop with no exit
// at all, the channel range, the self-voided counter, and an unbounded
// retry hidden in an unexported helper that only the callgraph connects
// to the Propose root.
package boundedbad

import "sync/atomic"

// Obj is a toy decision object; Propose anchors the decision path.
type Obj struct {
	flag atomic.Bool
	ch   chan int
}

// Propose reaches every offending helper.
func (o *Obj) Propose(v int) int {
	o.await()
	o.drain()
	o.reassign(v)
	o.stuck()
	return o.retry(v)
}

// await spins until shared state changes but never adopts a result:
// lock-free at best, not wait-free.
func (o *Obj) await() {
	for !o.flag.Load() {
	}
}

// drain ranges over a channel, an unbounded source.
func (o *Obj) drain() {
	for range o.ch {
	}
}

// reassign writes its own counter inside the body, voiding the bound.
func (o *Obj) reassign(v int) {
	for i := 0; i < 10; i++ {
		i = v
	}
}

// stuck can neither exit nor observe other processes.
func (o *Obj) stuck() {
	n := 0
	for {
		n++
	}
}

// retry can leave via return but never reads shared state, so no
// iteration adopts another process's progress.
func (o *Obj) retry(v int) int {
	for {
		if v > 0 {
			return v
		}
		v++
	}
}
