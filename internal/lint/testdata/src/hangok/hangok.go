// Package hangok parks over-budget callers via the hang path, as the
// bounded-use model requires; the hangsemantics rule must accept it.
package hangok

import "detobj/internal/sim"

// Bounded hangs the caller once its budget is spent.
type Bounded struct {
	budget int
}

// Apply implements sim.Object.
func (b *Bounded) Apply(_ *sim.Env, _ sim.Invocation) sim.Response {
	if b.budget == 0 {
		return sim.HangCaller()
	}
	b.budget--
	//detlint:allow boxing responses carry scalars through sim.Value by design
	return sim.Respond(b.budget)
}
