// Package recreadok is a recoveryreads fixture: recovery code that
// re-derives every volatile field from the durable half before reading
// it — directly, on both arms of a branch before the join, and inside
// the RecoveryProc-returning closure idiom.
package recreadok

import "detobj/internal/sim"

// Cache pairs a durable log with a volatile lookup table re-derived
// from it on recovery.
type Cache struct {
	log   []int       //detlint:durable the source of truth the table is rebuilt from
	table map[int]int //detlint:volatile derived index over the log; recovery re-derives it
}

// Apply implements sim.Object minimally; the fixture's point is the
// recovery code below, not the op path.
func (c *Cache) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	return sim.Respond(nil)
}

// OnCrash drops the whole derived table.
func (c *Cache) OnCrash(proc int) { clear(c.table) }

// Recovery re-derives the table before the read at the end: one arm
// rebuilds from the log, the other starts empty, and the must-write
// analysis sees the write on every path into the join.
func (c *Cache) Recovery(proc int) int {
	if len(c.log) == 0 {
		c.table = make(map[int]int)
	} else {
		c.table = rebuild(c.log)
	}
	c.table[proc] = proc
	return c.table[proc]
}

// Warm returns the recovery procedure as a closure — the usual
// sim.Config.Recovery shape — writing the volatile field before any
// read.
func Warm(c *Cache) sim.RecoveryProc {
	return func(ctx *sim.Ctx) {
		c.table = rebuild(c.log)
		c.table[ctx.ID()] = ctx.ID()
	}
}

// rebuild indexes the log; it takes the durable slice by value, so no
// volatile field is read here.
func rebuild(log []int) map[int]int {
	out := make(map[int]int, len(log))
	for i, v := range log {
		out[i] = v
	}
	return out
}
