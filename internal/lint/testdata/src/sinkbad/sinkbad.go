// Package sinkbad seeds the shared-accumulator mistakes the sharedsink
// rule must flag: a bare captured write from a goroutine, one variable
// written under two different mutexes, a post-spawn read with no proven
// happens-before, and a par.ForEach sink that alternates locks.
package sinkbad

import (
	"sync"

	"detobj/internal/par"
)

// BareCounter bumps a captured counter from a goroutine with no slot,
// no atomic, and no mutex.
func BareCounter(n int) int {
	count := 0
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			count++
		}()
	}
	wg.Wait()
	return count
}

// SplitLocks guards the same accumulator with two different mutexes, so
// the writes never serialize against each other.
func SplitLocks(n int) int {
	var (
		mu1, mu2 sync.Mutex
		hits     int
		wg       sync.WaitGroup
	)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu1.Lock()
			hits++
			mu1.Unlock()
			mu2.Lock()
			hits++
			mu2.Unlock()
		}()
	}
	wg.Wait()
	return hits
}

// ReadTooSoon reads the mutex-guarded sink right after spawning, with
// no WaitGroup.Wait between and without holding the sink's mutex.
func ReadTooSoon() int {
	var (
		mu    sync.Mutex
		total int
	)
	go func() {
		mu.Lock()
		total++
		mu.Unlock()
	}()
	return total
}

// AlternatingSink drives a par.ForEach whose workers take different
// locks around the same accumulator depending on the index.
func AlternatingSink(n, workers int) int {
	var (
		mu1, mu2 sync.Mutex
		sum      int
	)
	par.ForEach(n, workers, func(i int) error {
		if i%2 == 0 {
			mu1.Lock()
			sum += i
			mu1.Unlock()
			return nil
		}
		mu2.Lock()
		sum += i
		mu2.Unlock()
		return nil
	})
	return sum
}
