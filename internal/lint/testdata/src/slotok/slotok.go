// Package slotok exercises every write shape the slotdiscipline rule
// must accept: direct index slots, subscripts derived from the index
// through locals and arithmetic, pointer-to-own-slot handles, an
// atomic-claim stream handout, a mutex-guarded sink, and plain
// literal-local state.
package slotok

import (
	"sync"
	"sync/atomic"

	"detobj/internal/par"
)

type cell struct {
	val int
	err error
}

// FillDirect writes each worker's result into its own slot.
func FillDirect(n, workers int) []int {
	slots := make([]int, n)
	par.ForEach(n, workers, func(i int) error {
		slots[i] = i * i
		return nil
	})
	return slots
}

// FillDerived writes through subscripts computed from the index: a
// local base, arithmetic on it, and a pointer to the worker's own cell.
func FillDerived(n, workers int) []cell {
	pairs := make([]int, 2*n)
	cells := make([]cell, n)
	par.ForEach(n, workers, func(i int) error {
		base := 2 * i
		pairs[base] = i
		pairs[base+1] = i + 1
		c := &cells[i]
		c.val = pairs[base]
		c.err = nil
		return nil
	})
	return cells
}

// FillClaimed hands out extra stream slots with an atomic claim counter,
// the ExploreParallel idiom: the claimed index is as good as the worker
// index.
func FillClaimed(n, workers int) []int {
	streams := make([]int, 2*n)
	var next atomic.Int64
	par.ForEach(n, workers, func(i int) error {
		r := int(next.Add(1) - 1)
		streams[r] = i
		return nil
	})
	return streams
}

// SumGuarded accumulates into a shared total under one mutex — the
// documented commutative-sink shape — and counts entries atomically.
func SumGuarded(n, workers int) (int, int64) {
	var (
		mu    sync.Mutex
		total int
		seen  atomic.Int64
	)
	par.ForEach(n, workers, func(i int) error {
		local := i * 3 // literal-local state is free
		local++
		seen.Add(1)
		mu.Lock()
		total += local
		mu.Unlock()
		return nil
	})
	return total, seen.Load()
}
