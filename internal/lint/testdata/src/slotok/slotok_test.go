package slotok

import (
	"testing"

	"detobj/internal/par"
)

// TestWorkersKeepSlotDiscipline drives a worker that writes only its
// own index-derived slots and literal-local state — the syntactic test
// scan must stay silent.
func TestWorkersKeepSlotDiscipline(t *testing.T) {
	const n = 8
	slots := make([]int, 2*n)
	par.ForEach(n, 4, func(i int) error {
		base := 2 * i
		local := i
		local++
		slots[base] = local
		slots[base+1] = local + 1
		return nil
	})
	for i := 0; i < n; i++ {
		if slots[2*i] != i+1 {
			t.Fatalf("slot %d = %d, want %d", 2*i, slots[2*i], i+1)
		}
	}
}
