// Package auditbad seeds a stale escape: the allow below names a rule
// that produces no finding on its line, so allowaudit must flag the
// annotation as dead weight.
package auditbad

// Answer returns a constant; nothing here needs an exemption.
//
//detlint:allow nodeterminism the clock read was removed in a refactor but the annotation stayed behind
func Answer() int { return 42 }
