// Package persistok is a persistsplit fixture: a sim.Recoverable
// implementor whose every field carries a justified durable/volatile
// annotation and whose OnCrash wipes exactly the volatile set — partly
// through a helper, so the rule's interprocedural wipe inference is
// exercised on the clean path too.
package persistok

import "detobj/internal/sim"

// Store splits its state along the persistence seam: the committed
// value is durable, the staged writes and the per-process dedup set are
// volatile.
type Store struct {
	val   sim.Value         //detlint:durable the committed value is the non-volatile cell the model posits
	stage map[int]sim.Value //detlint:volatile per-process staged writes die with their process
	seen  map[int]bool      //detlint:volatile dedup marks are re-derived on recovery; wiped via the clearSeen helper
}

// Apply implements sim.Object: "stage"(v) buffers a write, "commit"
// makes the caller's staged value durable, "read" returns the committed
// value.
func (s *Store) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "stage":
		if s.stage == nil {
			//detlint:allow hotalloc lazy first-use map init, the same shape the recoverable register budgets
			s.stage = make(map[int]sim.Value)
			//detlint:allow hotalloc lazy first-use map init
			s.seen = make(map[int]bool)
		}
		s.stage[env.Proc] = inv.Arg(0)
		s.seen[env.Proc] = true
		return sim.Respond(nil)
	case "commit":
		if v, ok := s.stage[env.Proc]; ok {
			s.val = v
			delete(s.stage, env.Proc)
		}
		return sim.Respond(s.val)
	case "read":
		return sim.Respond(s.val)
	}
	return sim.Respond(nil)
}

// OnCrash wipes the crashed process's volatile half; the durable value
// is untouched. The seen entry goes through a helper, which the wipe
// inference must follow.
func (s *Store) OnCrash(proc int) {
	delete(s.stage, proc)
	s.clearSeen(proc)
}

func (s *Store) clearSeen(proc int) { delete(s.seen, proc) }
