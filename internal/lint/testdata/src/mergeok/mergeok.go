// Package mergeok exercises the merge shapes the mergeorder rule must
// accept: an index-order fold over per-index slots, commutative folds
// and sorted-key iteration over a worker-filled map, per-index channel
// plumbing drained in index order, and an unstable sort keyed on the
// record field that carries the worker index.
package mergeok

import (
	"sort"
	"sync"

	"detobj/internal/par"
)

type rec struct {
	idx  int
	cost int
}

// MergeSlots folds per-index slots back in index order.
func MergeSlots(n, workers int) int {
	slots := make([]int, n)
	par.ForEach(n, workers, func(i int) error {
		slots[i] = i * 2
		return nil
	})
	total := 0
	for i := 0; i < n; i++ {
		total += slots[i]
	}
	return total
}

// MergeMap fills a shared map under one mutex and reduces it twice, both
// order-free: a commutative counter fold, then sorted-key iteration.
func MergeMap(n, workers int) (int, []int) {
	hist := make(map[int]int)
	var mu sync.Mutex
	par.ForEach(n, workers, func(i int) error {
		mu.Lock()
		hist[i%4] = i
		mu.Unlock()
		return nil
	})
	total := 0
	for _, v := range hist {
		total += v
	}
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return total, keys
}

// MergeChans gives each worker its own channel slot and drains them in
// index order: per-index plumbing, not completion order.
func MergeChans(n, workers int) []int {
	chans := make([]chan int, n)
	for i := range chans {
		chans[i] = make(chan int, 1)
	}
	par.ForEach(n, workers, func(i int) error {
		chans[i] <- i * i
		return nil
	})
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = <-chans[i]
	}
	return out
}

// MergeSorted appends records to a mutex-guarded sink and restores
// index order by sorting on the index-carrying field before reading.
func MergeSorted(n, workers int) []rec {
	var (
		mu   sync.Mutex
		recs []rec
	)
	par.ForEach(n, workers, func(i int) error {
		mu.Lock()
		recs = append(recs, rec{idx: i, cost: i % 3})
		mu.Unlock()
		return nil
	})
	sort.Slice(recs, func(a, b int) bool { return recs[a].idx < recs[b].idx })
	return recs
}
