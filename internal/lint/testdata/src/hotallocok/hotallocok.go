// Package hotallocok exercises the allocation shapes hotalloc must
// NOT flag: allocation hoisted above the loop, per-iteration composite
// values the escape analysis proves frame-local (the compiler stack-
// allocates them), and free allocation in functions no hot root
// reaches.
package hotallocok

// point is a flat per-iteration value.
type point struct{ x, y int }

// Explore is hot, but every per-iteration value stays in the frame:
// the buffer is made once at depth 0 and filled by index.
func Explore(n int) int {
	buf := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		p := point{x: i, y: i}
		buf[i] = p.x + p.y
		total += buf[i]
	}
	return total
}

// Cold allocates per iteration, legitimately: no hot root reaches it.
func Cold(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
