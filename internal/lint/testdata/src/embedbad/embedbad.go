// Package embedbad seeds an interface dispatch that resolves through a
// *promoted* method: Obj.Propose calls Stepper.Step on a value whose
// Step comes from an embedded struct. Base alone does not implement
// Stepper (it lacks Name), so a fan-out indexed by declared methods
// never reaches Base.Step — and the unbounded spin inside it escapes
// boundedloop. The callgraph must enumerate implementing *types* and
// resolve the promotion.
package embedbad

// Stepper needs two methods; only the embedding Full type provides
// both.
type Stepper interface {
	Step() int
	Name() string
}

// Base provides Step for whoever embeds it.
type Base struct {
	n int
}

// Step spins on shared state without a progress metric.
func (b *Base) Step() int {
	for b.n == 0 {
	}
	return b.n
}

// Full implements Stepper via the embedded Base.
type Full struct {
	Base
	label string
}

// Name completes the interface.
func (f *Full) Name() string { return f.label }

// Obj dispatches through the interface on a decision path.
type Obj struct {
	s Stepper
}

// Propose drives the stepper; the spin in Base.Step is reachable from
// here through the promoted method.
func (o *Obj) Propose(v int) int {
	if o.s == nil {
		return v
	}
	return o.s.Step()
}
