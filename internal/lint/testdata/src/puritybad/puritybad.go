// Package puritybad implements a sim.Object whose Apply breaks every
// clause of the purity contract: it retains the Invocation's argument
// slice, mutates package-level state, and performs I/O.
package puritybad

import (
	"fmt"

	"detobj/internal/sim"
)

var hits int

// Leaky is the impure object.
type Leaky struct {
	kept []sim.Value
}

// Apply implements sim.Object.
func (l *Leaky) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	l.kept = inv.Args
	hits++
	fmt.Println("applied")
	return sim.Respond(nil)
}
