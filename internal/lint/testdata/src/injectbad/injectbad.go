// Package injectbad is a chaos injector whose decisions depend on
// everything the injectionpurity rule forbids: the wall clock, the
// global random source, runtime introspection, and channel traffic —
// each one making a fault plan irreproducible from its seed.
package injectbad

import (
	"math/rand"
	"runtime"
	"time"

	"detobj/native"
)

// Injector decides faults from ambient state instead of its seed.
type Injector struct {
	ch chan int
}

// New returns the impure injector.
func New() *Injector { return &Injector{ch: make(chan int, 1)} }

// At implements native.Injector impurely.
func (in *Injector) At(site string, id int) native.Fault {
	if time.Now().UnixNano()%2 == 0 {
		return native.FaultYield
	}
	if rand.Intn(2) == 0 {
		return native.FaultStall
	}
	if runtime.NumGoroutine() > 8 {
		return native.FaultAbort
	}
	return in.fromChan()
}

// fromChan hides the channel dependence one call deep.
func (in *Injector) fromChan() native.Fault {
	select {
	case n := <-in.ch:
		return native.Fault(n)
	default:
		return native.FaultNone
	}
}
