// Package hotallocbad seeds every allocation-site kind the hotalloc
// rule must flag on a hot path: make, new, append growth, an escaping
// composite literal, string concatenation, and a fmt call — inside
// loops reachable from the Explore hot root, directly and through a
// helper only the callgraph connects, plus a //detlint:hot annotated
// sweep driver.
package hotallocbad

import "fmt"

// Node is the per-iteration record the helpers leak.
type Node struct{ ID int }

var sink []*Node

// Explore is a hot root by name (the exhaustive-engine entrypoint
// convention).
func Explore(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		seen := make(map[int]bool)
		seen[i] = true
		out = append(out, fmt.Sprint(i))
		step(i)
	}
	return out
}

// step allocates at function depth 1: no loop of its own, but it runs
// once per Explore iteration — only the callgraph connects the dots.
func step(i int) {
	n := &Node{ID: i}
	p := new(Node)
	p.ID = i
	sink = append(sink, n, p)
}

// Sweep is hot by annotation, like the chaos seed sweeps.
//
//detlint:hot
func Sweep(rounds int) string {
	s := ""
	for i := 0; i < rounds; i++ {
		s += "x"
	}
	return s
}
