// Package nodetbad seeds one violation per nodeterminism trigger. The
// fixture test grafts it into the module under internal/ and asserts
// every construct below is flagged.
package nodetbad

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() time.Time { return time.Now() }

// Age measures elapsed wall time.
func Age(t time.Time) time.Duration { return time.Since(t) }

// Pick draws from the unseeded global random source.
func Pick(n int) int { return rand.Intn(n) }

// Race selects over two channels; the runtime picks pseudo-randomly.
func Race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Spawn launches an unschedulable goroutine.
func Spawn(f func()) { go f() }

// First returns whichever key the randomized iteration visits first.
func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Collect gathers keys in iteration order and never sorts them.
func Collect(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// Naked carries an allow comment with no justification: the wall-clock
// read stays flagged and the comment itself becomes an "allow" finding.
func Naked() time.Time {
	//detlint:allow nodeterminism
	return time.Now()
}
