// Package boxok exercises the conversion shapes the boxing rule must
// NOT flag: pointer-shaped values riding the interface word for free,
// constant operands the compiler boxes in static data, conversions
// outside any hot loop, and boxing in functions no hot root reaches.
package boxok

type record struct{ a, b int64 }

func observe(vs ...any) int { return len(vs) }

// Sweep is hot, but nothing in its loop boxes a non-pointer value.
//
//detlint:hot
func Sweep(n int) int {
	total := 0
	boxed := any("header") // depth 0: once per call
	_ = boxed
	for i := 0; i < n; i++ {
		r := &record{a: int64(i)}
		total += observe(r)   // pointer: no box allocation
		total += observe("k") // constant: static box
	}
	return total
}

// Cold boxes freely: no hot root reaches it.
func Cold(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += observe(i)
	}
	return total
}
