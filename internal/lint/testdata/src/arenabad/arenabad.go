// Package arenabad nominates types that violate the arena-readiness
// contract in every recognized way: an interior string, a slice, a
// map, a pointer, a non-flat nested struct, an encoder hatch without
// a justification, and a non-struct nomination whose underlying type
// cannot be flat.
package arenabad

// Node is nominated but riddled with interior pointers.
//
//detlint:arena
type Node struct {
	id   int32
	name string
	kids []int32
	meta map[string]int
	next *Node
	sub  wrapped
	//detlint:encoder
	blob []byte
}

// wrapped hides a slice one level down.
type wrapped struct{ data []byte }

// Table is a non-struct nomination that cannot be flat.
//
//detlint:arena
type Table map[string]int32
