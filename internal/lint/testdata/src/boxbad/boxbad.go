// Package boxbad seeds every interface-boxing shape the boxing rule
// must flag on a hot path: a variadic any argument, an explicit
// interface conversion, an interface-typed assignment, an
// interface-keyed map index, and any-typed signature rows — all
// inside a loop of an annotated hot function.
package boxbad

// record is a non-pointer value; boxing it copies it to the heap.
type record struct{ a, b int64 }

func observe(vs ...any) int { return len(vs) }

var classes = map[any]int{}

// Sweep drives the boxing shapes once per iteration.
//
//detlint:hot
func Sweep(n int) int {
	total := 0
	var cur any
	for i := 0; i < n; i++ {
		r := record{a: int64(i), b: int64(n)}
		total += observe(i)
		cur = r
		_ = cur
		total += classes[r]
		row := []any{i, r}
		total += len(row)
	}
	return total
}
