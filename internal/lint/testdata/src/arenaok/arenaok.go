// Package arenaok exercises the shapes the arenaready rule must
// accept: flat scalars, fixed arrays, flat nested named structs, a
// justified //detlint:encoder hatch for a deliberately interned
// field, and non-nominated types that stay out of scope entirely.
package arenaok

// inner is flat all the way down.
type inner struct{ a, b int16 }

// Packed is nominated and arena-encodable.
//
//detlint:arena
type Packed struct {
	id    int32
	flags [4]uint8
	sub   inner
	grid  [2][2]int64
	//detlint:encoder interned via the state-table string index (DESIGN.md 7)
	name string
}

// Loose is not nominated; its slices are nobody's business here.
type Loose struct {
	rows []string
	refs map[int]*inner
}
