// Package lockbad seeds everything the lockorder rule must flag: an
// AB/BA acquisition-order cycle with one leg hidden behind a helper
// call, a non-reentrant re-acquisition, a field guarded by a different
// mutex in each writer, and a counter mixed between sync/atomic calls
// and plain reads.
package lockbad

import (
	"sync"
	"sync/atomic"
)

// Pair holds two locks with no fixed acquisition order.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
	m int
}

// NewPair builds the pair.
func NewPair() *Pair { return &Pair{} }

// Forward locks a, then b.
func (p *Pair) Forward() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
}

// Backward locks b, then takes a through a helper: the interprocedural
// leg of the cycle.
func (p *Pair) Backward() {
	p.b.Lock()
	defer p.b.Unlock()
	p.grabA()
}

// grabA closes the cycle when called with b held.
func (p *Pair) grabA() {
	p.a.Lock()
	p.n++
	p.a.Unlock()
}

// SetA guards m with a.
func (p *Pair) SetA(v int) {
	p.a.Lock()
	defer p.a.Unlock()
	p.m = v
}

// SetB guards the same field with b: the two writers exclude nothing.
func (p *Pair) SetB(v int) {
	p.b.Lock()
	defer p.b.Unlock()
	p.m = v
}

// Cell re-acquires its own lock.
type Cell struct {
	mu sync.Mutex
	v  int
}

// NewCell builds the cell.
func NewCell() *Cell { return &Cell{} }

// Again deadlocks against itself: the second Lock never returns.
func (c *Cell) Again() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock()
	x := c.v
	c.mu.Unlock()
	return x
}

// Mixed counts through sync/atomic in one method and reads plainly in
// another.
type Mixed struct {
	c int64
}

// NewMixed builds the counter.
func NewMixed() *Mixed { return &Mixed{} }

// Incr goes through the atomic package.
func (x *Mixed) Incr() { atomic.AddInt64(&x.c, 1) }

// Read loads the same word with a plain access.
func (x *Mixed) Read() int64 { return x.c }
