// Package flowok exercises decision values the decisionflow rule must
// accept: pure functions of the arguments (through a helper), receiver
// state read and written under one mutex, and a map collected into a
// slice that is sorted before it is returned — the element set of a
// map range is deterministic, only the visit order is not.
package flowok

import (
	"sort"
	"sync"
)

// Obj decides deterministically.
type Obj struct {
	mu   sync.Mutex
	best int
	set  map[int]bool
}

// NewObj builds the object.
func NewObj() *Obj { return &Obj{set: make(map[int]bool)} }

// Propose clamps the proposal: a pure function of the argument.
func (o *Obj) Propose(v int) int {
	return clamp(v, 0, 1<<20)
}

// clamp transforms its arguments and touches nothing else.
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Decide returns guarded state: reads and writes share o.mu.
func (o *Obj) Decide() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.best
}

// Update mutates the guarded state.
func (o *Obj) Update(v int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if v > o.best {
		o.best = v
	}
}

// Insert records a member under the mutex.
func (o *Obj) Insert(v int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.set[v] = true
}

// Scan returns the members in sorted order.
func (o *Obj) Scan() []int {
	o.mu.Lock()
	defer o.mu.Unlock()
	keys := make([]int, 0, len(o.set))
	for k := range o.set {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
