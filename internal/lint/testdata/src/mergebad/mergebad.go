// Package mergebad seeds the race-free-but-nondeterministic merges the
// mergeorder rule must flag: a last-writer-wins map range, a key
// collection that is never sorted, completion-order channel receives
// (both a range and a single receive), and an unstable sort of worker
// records keyed on a field that does not carry the index.
package mergebad

import (
	"sort"
	"sync"

	"detobj/internal/par"
)

type rec struct {
	idx  int
	cost int
}

// price is a module call: its result is deterministic but not an
// index-derived value the prover can see through.
func price(i int) int { return (i * 7) % 5 }

// PickWinner fills a map under a mutex and then lets map iteration
// order choose the answer.
func PickWinner(n, workers int) int {
	hist := make(map[int]int)
	var mu sync.Mutex
	par.ForEach(n, workers, func(i int) error {
		mu.Lock()
		hist[i] = i * i
		mu.Unlock()
		return nil
	})
	winner := 0
	for k := range hist {
		winner = k
	}
	return winner
}

// UnsortedKeys collects the worker-filled map's keys in iteration order
// and hands them back unsorted.
func UnsortedKeys(n, workers int) []int {
	hist := make(map[int]int)
	var mu sync.Mutex
	par.ForEach(n, workers, func(i int) error {
		mu.Lock()
		hist[i] = i
		mu.Unlock()
		return nil
	})
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	return keys
}

// DrainCompletion funnels worker results through one shared channel and
// ranges over it: arrival order is the schedule's choice.
func DrainCompletion(n, workers int) []int {
	results := make(chan int, n)
	par.ForEach(n, workers, func(i int) error {
		results <- i * i
		return nil
	})
	close(results)
	var out []int
	for v := range results {
		out = append(out, v)
	}
	return out
}

// FirstDone reports whichever worker finished first.
func FirstDone(n, workers int) int {
	results := make(chan int, n)
	par.ForEach(n, workers, func(i int) error {
		results <- i
		return nil
	})
	return <-results
}

// SortByCost sorts the worker records with an unstable sort keyed on
// cost: ties between equal costs land in completion order.
func SortByCost(n, workers int) []rec {
	var (
		mu   sync.Mutex
		recs []rec
	)
	par.ForEach(n, workers, func(i int) error {
		c := price(i)
		mu.Lock()
		recs = append(recs, rec{idx: i, cost: c})
		mu.Unlock()
		return nil
	})
	sort.Slice(recs, func(a, b int) bool { return recs[a].cost < recs[b].cost })
	return recs
}
