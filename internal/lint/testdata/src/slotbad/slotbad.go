// Package slotbad seeds the captured-write shapes the slotdiscipline
// rule must flag: a plain assignment to a captured variable, a write
// into a captured map, a subscript the worker index does not reach, a
// field store on captured state, a store through a captured pointer,
// and a write through a local alias of captured storage.
package slotbad

import "detobj/internal/par"

type tally struct {
	count int
}

// RaceTotal accumulates into a captured int with no mutex: last writer
// wins, and the race detector may even miss it on a 1-core box.
func RaceTotal(n, workers int) int {
	total := 0
	par.ForEach(n, workers, func(i int) error {
		total += i
		return nil
	})
	return total
}

// FillMap writes into a captured map: maps have no index-derived slots,
// so two workers can collide on the bucket.
func FillMap(n, workers int) map[int]int {
	out := make(map[int]int)
	par.ForEach(n, workers, func(i int) error {
		out[i] = i * i
		return nil
	})
	return out
}

// HotCell funnels every worker into slot zero: the subscript is a
// constant, not derived from the worker index.
func HotCell(n, workers int) int {
	slots := make([]int, n)
	par.ForEach(n, workers, func(i int) error {
		slots[0] = i
		return nil
	})
	return slots[0]
}

// FieldStore mutates one captured struct from every worker.
func FieldStore(n, workers int) tally {
	var t tally
	par.ForEach(n, workers, func(i int) error {
		t.count = i
		return nil
	})
	return t
}

// PointerStore writes through a captured pointer shared by all workers.
func PointerStore(n, workers int) int {
	v := 0
	p := &v
	par.ForEach(n, workers, func(i int) error {
		*p = i
		return nil
	})
	return v
}

// AliasStore rebinds the captured slice to a literal-local name and
// writes a constant cell through the alias.
func AliasStore(n, workers int) int {
	slots := make([]int, n)
	par.ForEach(n, workers, func(i int) error {
		s := slots
		s[0] = i
		return nil
	})
	return slots[0]
}
