package slotbad

import (
	"testing"

	"detobj/internal/par"
)

// TestWorkerBreaksSlotDiscipline drives workers that assign a captured
// variable and write a non-index cell — the syntactic test scan must
// flag both.
func TestWorkerBreaksSlotDiscipline(t *testing.T) {
	const n = 8
	total := 0
	slots := make([]int, n)
	par.ForEach(n, 4, func(i int) error {
		total += i
		slots[0] = i
		return nil
	})
	if total == 0 && slots[0] == 0 {
		t.Skip("fixture only")
	}
}
