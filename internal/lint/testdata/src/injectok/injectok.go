// Package injectok is a chaos injector whose decisions are pure
// functions of (seed, site, visit) — the shape the injectionpurity rule
// must accept without findings: hashing, arithmetic, and a visit counter,
// nothing that reads clocks, global randomness, the runtime, or channels.
package injectok

import (
	"hash/fnv"

	"detobj/native"
)

// Injector decides faults from (seed, site, visit) alone.
type Injector struct {
	seed   int64
	visits map[string]int
}

// New returns a seeded injector.
func New(seed int64) *Injector {
	return &Injector{seed: seed, visits: make(map[string]int)}
}

// At implements native.Injector.
func (in *Injector) At(site string, id int) native.Fault {
	n := in.visits[site]
	in.visits[site] = n + 1
	return in.decide(site, n)
}

// decide maps (seed, site, visit) to a fault deterministically.
func (in *Injector) decide(site string, visit int) native.Fault {
	h := fnv.New64a()
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(in.seed >> (8 * i))
		b[8+i] = byte(visit >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(site))
	if h.Sum64()%10 == 0 {
		return native.FaultYield
	}
	return native.FaultNone
}
