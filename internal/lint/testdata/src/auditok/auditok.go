// Package auditok exercises a live escape the allowaudit rule must
// leave alone: the annotation suppresses a real nodeterminism finding,
// so it is earning its keep.
package auditok

import "time"

// Uptime deliberately reads the wall clock for operator logs; the
// value never reaches a decision path.
func Uptime() int64 {
	//detlint:allow nodeterminism operator-facing uptime metric, never read by a decision path
	return time.Now().UnixNano()
}
