package lint

// injectionpurity guards the one determinism claim the native substrate
// can still make: goroutine interleaving is irreproducible, but the
// fault *plan* of a seeded injector is not — the fault ordered at the
// nth visit of a chaos point must be a pure function of (seed, site,
// visit). The rule finds every chaos decision function — anything
// returning native.Fault or sim.Fault, which is how decisions are
// spelled (the Injector interface's At, the seeded decide, plan
// enumerators, and the simulator adversaries' FaultInjector.Faults
// methods) — and walks its transitive module callees rejecting every
// construct whose result depends on anything else: wall clocks, the
// global rand source, runtime introspection, the environment, channel
// traffic, goroutine spawns. Executing a fault (chaosPoint's Gosched
// loops, the simulator runtime's crash/restart application) is
// deliberately impure and deliberately out of scope: execution returns
// error, not Fault.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerInjectionPurity returns the injectionpurity rule for
// internal/chaos and native.
func AnalyzerInjectionPurity() *Analyzer {
	return &Analyzer{
		Name: "injectionpurity",
		Doc:  "chaos injection decisions must be pure functions of (seed, site, visit): no clocks, global rand, runtime/os calls, or channel traffic",
		Run:  runInjectionPurity,
	}
}

func runInjectionPurity(m *Module) []Diagnostic {
	g := m.CallGraph()
	faultPaths := []string{m.Path + "/native", m.Path + "/internal/sim"}

	var roots []*FuncNode
	for _, n := range g.sortedNodes() {
		if !m.InScope(n.Pkg, "internal/chaos", "native") &&
			!m.isFixture(n.Pkg, "injectok", "injectbad", "restartok", "restartbad") {
			continue
		}
		if returnsFault(n.Fn, faultPaths...) {
			roots = append(roots, n)
		}
	}

	witness := g.ReachableWitness(roots, nil)
	reached := make([]*FuncNode, 0, len(witness))
	for n := range witness {
		reached = append(reached, n)
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i].Fn.Pos() < reached[j].Fn.Pos() })

	var out []Diagnostic
	for _, n := range reached {
		via := ""
		if w := witness[n]; w != n {
			via = fmt.Sprintf(" (reachable from decision %s)", funcLabel(w))
		}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			why := impureConstruct(n.Pkg, x)
			if why == "" {
				return true
			}
			out = append(out, Diagnostic{
				Pos: m.position(x),
				Msg: fmt.Sprintf("%s in %s%s: an injection decision must be a pure function of (seed, site, visit) so fault plans replay from the seed",
					why, funcLabel(n), via),
			})
			return true
		})
	}
	return out
}

// returnsFault reports whether the function's results include a Fault
// type of one of the given packages (native.Fault or sim.Fault),
// directly or as a slice/array element (fault plans, directive batches).
func returnsFault(fn *types.Func, faultPaths ...string) bool {
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		switch u := t.(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		}
		n := namedBase(t)
		if n == nil || n.Obj().Name() != "Fault" || n.Obj().Pkg() == nil {
			continue
		}
		for _, path := range faultPaths {
			if n.Obj().Pkg().Path() == path {
				return true
			}
		}
	}
	return false
}

// impureConstruct classifies one AST node as a purity violation,
// returning a human-readable reason or "".
func impureConstruct(pkg *Package, x ast.Node) string {
	switch x := x.(type) {
	case *ast.CallExpr:
		fn := resolvedFunc(pkg, x)
		if fn == nil || fn.Pkg() == nil {
			return ""
		}
		switch fn.Pkg().Path() {
		case "time":
			if isFunc(fn, "time", "Now", "Since", "Until", "Sleep",
				"After", "AfterFunc", "Tick", "NewTimer", "NewTicker") {
				return "time." + fn.Name() + " (wall clock)"
			}
		case "math/rand", "math/rand/v2":
			if isGlobalRand(fn) {
				return "rand." + fn.Name() + " (global random source)"
			}
		case "runtime":
			return "runtime." + fn.Name() + " (runtime introspection/scheduling)"
		case "os":
			return "os." + fn.Name() + " (environment access)"
		}
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return "channel receive (depends on goroutine scheduling)"
		}
	case *ast.SendStmt:
		return "channel send (depends on goroutine scheduling)"
	case *ast.SelectStmt:
		return "select statement (runtime picks a ready case pseudo-randomly)"
	case *ast.GoStmt:
		return "goroutine spawn (decision would depend on the schedule)"
	}
	return ""
}

// isGlobalRand reports a package-level function of math/rand or
// math/rand/v2 backed by the shared global source.
func isGlobalRand(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return globalRandFuncs[fn.Name()]
}
