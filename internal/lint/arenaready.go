package lint

// arenaready is the machine-checked contract for the ROADMAP's
// order-of-magnitude state-space engine: types nominated for the
// future arena/transposition-table encoding must already be flat. A
// flat type is fixed-size and comparable with no interior pointers —
// it can live in a contiguous arena slab, be hashed by its bytes, and
// be compared without chasing the heap. Nominating a type early means
// every later edit that would sneak a slice or map into it fails CI
// now, instead of failing the arena migration later.
//
// Nomination and the escape hatch are comment directives:
//
//	//detlint:arena
//	type transition struct { succ int32; out int32 }
//
// A struct field that is deliberately non-flat — because the arena
// encoder interns or serializes it — declares its encoding:
//
//	//detlint:encoder <justification>
//	name string
//
// The justification is mandatory, mirroring //detlint:allow. Flatness
// recurses through named types, arrays, and nested structs; strings,
// slices, maps, pointers, channels, functions, and interfaces are
// interior-pointer carriers and fail.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

const arenaReadyName = "arenaready"

// arenaDirective nominates a type; encoderDirective exempts a field.
const (
	arenaDirective   = "detlint:arena"
	encoderDirective = "detlint:encoder"
)

// AnalyzerArenaReady returns the arenaready rule.
func AnalyzerArenaReady() *Analyzer {
	return &Analyzer{
		Name: arenaReadyName,
		Doc:  "types nominated //detlint:arena must be flat (fixed-size, comparable, no interior pointers) outside declared //detlint:encoder fields",
		Run:  runArenaReady,
	}
}

func runArenaReady(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		if !m.InScope(pkg, "internal", "cmd") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				declNominated := hasDirective(gd.Doc, arenaDirective)
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declNominated || hasDirective(ts.Doc, arenaDirective) {
						out = append(out, checkArenaType(m, pkg, ts)...)
					}
				}
			}
		}
	}
	return out
}

// checkArenaType verifies one nominated type's flatness.
func checkArenaType(m *Module, pkg *Package, ts *ast.TypeSpec) []Diagnostic {
	var out []Diagnostic
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		// Non-struct nomination: the whole underlying type must be flat.
		t := pkg.Info.TypeOf(ts.Type)
		if reason, flat := flatType(t, nil); !flat {
			out = append(out, Diagnostic{Pos: m.position(ts),
				Msg: fmt.Sprintf("arena-nominated type %s.%s is not flat: %s; a flat encoding or a struct with //detlint:encoder fields is required",
					pkg.Types.Name(), ts.Name.Name, reason)})
		}
		return out
	}
	for _, field := range st.Fields.List {
		hatch, justified := encoderHatch(field)
		if hatch {
			if !justified {
				out = append(out, Diagnostic{Pos: m.position(field),
					Msg: "detlint:encoder must carry an inline justification naming the encoding"})
			}
			continue
		}
		t := pkg.Info.TypeOf(field.Type)
		if reason, flat := flatType(t, nil); !flat {
			name := fieldLabel(field)
			out = append(out, Diagnostic{Pos: m.position(field),
				Msg: fmt.Sprintf("field %s of arena-nominated %s.%s is not flat: %s; flatten it or declare its encoding with //detlint:encoder",
					name, pkg.Types.Name(), ts.Name.Name, reason)})
		}
	}
	return out
}

// encoderHatch reports whether a field carries the encoder directive
// (in its doc or trailing comment) and whether it is justified.
func encoderHatch(field *ast.Field) (found, justified bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, encoderDirective)
			if !ok {
				continue
			}
			found = true
			if len(strings.Fields(rest)) > 0 {
				justified = true
			}
		}
	}
	return found, justified
}

func fieldLabel(field *ast.Field) string {
	if len(field.Names) == 0 {
		return "(embedded)"
	}
	names := make([]string, len(field.Names))
	for i, n := range field.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ", ")
}

// flatType reports whether t is flat — fixed-size, comparable, no
// interior pointers — or the reason it is not. seen breaks recursive
// type cycles (a recursive type necessarily goes through a pointer
// and fails there anyway).
func flatType(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil {
		return "type information is unavailable", false
	}
	if seen[t] {
		return "", true
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&types.IsString != 0:
			return "string (variable size, interior pointer to its bytes)", false
		case u.Kind() == types.UnsafePointer:
			return "unsafe.Pointer (interior pointer)", false
		}
		return "", true
	case *types.Pointer:
		return fmt.Sprintf("pointer (%s)", types.TypeString(t, nil)), false
	case *types.Slice:
		return fmt.Sprintf("slice (%s): variable size, interior pointer to its backing array", types.TypeString(t, nil)), false
	case *types.Map:
		return fmt.Sprintf("map (%s): interior pointer to its buckets", types.TypeString(t, nil)), false
	case *types.Chan:
		return "channel (interior pointer, not data)", false
	case *types.Signature:
		return "function value (interior pointer, not comparable)", false
	case *types.Interface:
		return "interface (interior pointer, dynamic size)", false
	case *types.Array:
		if reason, ok := flatType(u.Elem(), seen); !ok {
			return "array element: " + reason, false
		}
		return "", true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if reason, ok := flatType(f.Type(), seen); !ok {
				return fmt.Sprintf("nested field %s: %s", f.Name(), reason), false
			}
		}
		return "", true
	default:
		return fmt.Sprintf("unrecognized type %s", types.TypeString(t, nil)), false
	}
}
