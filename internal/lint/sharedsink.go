package lint

// sharedsink audits the shared accumulators worker bodies are allowed to
// keep: the documented shapes are an atomic early-exit counter (method
// calls on captured sync/atomic values — ExploreParallel's ErrLimit
// handout), a mutex-guarded sink (every write to the variable under the
// same lock, proved by the literal's own lockset with an empty entry
// set), and per-index slots (slotdiscipline's territory, accepted here
// too). The rule anchors on both kinds of worker literal:
//
//   - goroutine workers (go func(){...}()): a captured write that is
//     neither an index-derived slot — per-iteration loop variables and
//     atomic claims count as indices — nor mutex-guarded is a finding,
//     and a variable written under two different locks is a finding;
//   - par.ForEach workers: the ForEach return is the barrier, so only
//     the mixed-lock shape check applies (bare writes are already
//     slotdiscipline findings).
//
// On the read side, a plain read of goroutine-worker-written state later
// in the same function needs a proven happens-before: a WaitGroup.Wait
// between the spawn and the read, or the write's own lock held at the
// read. Slot-classified writes are exempt — their visibility is the
// surrounding pool's barrier or channel handshake, which the repository
// encodes in par.ForEach and the stream merger.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerSharedSink returns the sharedsink rule.
func AnalyzerSharedSink() *Analyzer {
	return &Analyzer{
		Name: "sharedsink",
		Doc:  "shared accumulators captured by workers must be atomic counters, mutex-guarded sinks, or index-derived slots, with a proven happens-before at post-loop reads",
		Run:  runSharedSink,
	}
}

func runSharedSink(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, n := range m.CallGraph().sortedNodes() {
		if !m.InScope(n.Pkg, "internal", "cmd") {
			continue
		}
		for _, gw := range goWorkers(n) {
			out = append(out, checkGoWorker(m, n, gw)...)
		}
		for _, w := range parWorkers(m, n) {
			out = append(out, checkSinkLocks(m, n, w.lit)...)
		}
	}
	return out
}

// goWorker is one `go func(){...}(...)` spawn site.
type goWorker struct {
	stmt *ast.GoStmt
	lit  *ast.FuncLit
}

// goWorkers finds the direct goroutine literals of one declared
// function, in source order.
func goWorkers(n *FuncNode) []goWorker {
	var out []goWorker
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		g, ok := x.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			out = append(out, goWorker{stmt: g, lit: lit})
		}
		return true
	})
	return out
}

// checkGoWorker audits one goroutine literal's captured writes and the
// enclosing function's post-spawn reads.
func checkGoWorker(m *Module, n *FuncNode, gw goWorker) []Diagnostic {
	pkg := n.Pkg
	ssa := BuildLitSSA(pkg, gw.lit)
	captured := capturedVars(pkg, gw.lit)
	idx := litParam(pkg, gw.lit, 0) // usually nil: go-lits take no index
	der := newIdxDeriver(pkg, ssa, idx)
	for v := range atomicClaimVars(pkg, gw.lit) {
		der.extra[v] = true
	}
	// Per-iteration variables of the loops enclosing the spawn are
	// index-equivalent: `for p := range peers { p := p; go func(){
	// slots[p] = ... } }` hands each goroutine its own p.
	capOrder := make([]*types.Var, 0, len(captured))
	for v := range captured {
		capOrder = append(capOrder, v)
	}
	sort.Slice(capOrder, func(i, j int) bool { return lockLess(capOrder[i], capOrder[j]) })
	for _, v := range capOrder {
		if perIteration(n, gw.stmt, v) {
			der.extra[v] = true
		}
	}
	locks := ComputeLockFacts(pkg, ssa.CFG)

	var out []Diagnostic
	// writeLocks tracks, per captured variable, the intersection of lock
	// sets across its guarded writes; nil means "no guarded write yet".
	writeLocks := make(map[*types.Var][]*types.Var)
	lockedWritten := make(map[*types.Var]bool)
	slotWritten := make(map[*types.Var]bool)
	bare := make(map[*types.Var]bool)
	for _, wr := range litWrites(pkg, gw.lit) {
		v := wr.rootVar
		if !captured[v] {
			if _, plain := ast.Unparen(wr.lhs).(*ast.Ident); plain {
				continue
			}
			if der.classifyAlias(ssa.BindingAt(wr.stmt, v), captured) == aliasShared {
				out = append(out, Diagnostic{
					Pos: m.Fset.Position(wr.lhs.Pos()),
					Msg: fmt.Sprintf("goroutine worker writes through %q, which aliases captured state without an index-derived subscript", wr.root.Name),
				})
			}
			continue
		}
		if held := locks.Before[wr.stmt]; len(held) > 0 {
			lockedWritten[v] = true
			if prev, seen := writeLocks[v]; seen {
				writeLocks[v] = intersectLocks(prev, held)
			} else {
				writeLocks[v] = held
			}
			continue
		}
		if isSlotWrite(pkg, der, wr) {
			slotWritten[v] = true
			continue
		}
		bare[v] = true
		out = append(out, Diagnostic{
			Pos: m.Fset.Position(wr.lhs.Pos()),
			Msg: fmt.Sprintf("goroutine worker writes captured %q outside any documented shape (index-derived slot, sync/atomic, or mutex-guarded sink)", wr.root.Name),
		})
	}
	for _, v := range sortedVars(writeLocks) {
		if len(writeLocks[v]) == 0 {
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(gw.lit.Pos()),
				Msg: fmt.Sprintf("captured %q is written under different locks; a shared sink needs one common mutex", v.Name()),
			})
		}
	}

	// Read side: plain post-spawn reads of locked-sink variables need a
	// Wait barrier or the sink's lock.
	declLocks := lockedSelectorStmts(pkg, n.Decl)
	waits := waitCalls(pkg, n.Decl)
	flagged := make(map[*types.Var]bool)
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if x == nil || x.Pos() <= gw.stmt.End() {
			if lit, isLit := x.(*ast.FuncLit); isLit && lit == gw.lit {
				return false
			}
			return true
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false // another goroutine's body: its own spawn anchors it
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || !lockedWritten[v] || flagged[v] || bare[v] {
			return true
		}
		if waitBetween(waits, gw.stmt.End(), id.Pos()) {
			return true
		}
		if held := declLocks[id.Pos()]; sharesLock(held, writeLocks[v]) {
			return true
		}
		flagged[v] = true
		out = append(out, Diagnostic{
			Pos: m.Fset.Position(id.Pos()),
			Msg: fmt.Sprintf("read of worker-written %q with no proven happens-before (no WaitGroup.Wait between spawn and read, and the sink's mutex is not held)", v.Name()),
		})
		return true
	})
	return out
}

// checkSinkLocks validates the mutex-sink shape inside a par.ForEach
// worker: every guarded write to one captured variable must share a
// common lock.
func checkSinkLocks(m *Module, n *FuncNode, lit *ast.FuncLit) []Diagnostic {
	pkg := n.Pkg
	ssa := BuildLitSSA(pkg, lit)
	captured := capturedVars(pkg, lit)
	locks := ComputeLockFacts(pkg, ssa.CFG)
	writeLocks := make(map[*types.Var][]*types.Var)
	for _, wr := range litWrites(pkg, lit) {
		if !captured[wr.rootVar] {
			continue
		}
		held := locks.Before[wr.stmt]
		if len(held) == 0 {
			continue // slotdiscipline's finding if it is not a slot
		}
		if prev, seen := writeLocks[wr.rootVar]; seen {
			writeLocks[wr.rootVar] = intersectLocks(prev, held)
		} else {
			writeLocks[wr.rootVar] = held
		}
	}
	var out []Diagnostic
	for _, v := range sortedVars(writeLocks) {
		if len(writeLocks[v]) == 0 {
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(lit.Pos()),
				Msg: fmt.Sprintf("captured %q is written under different locks across par.ForEach workers; a shared sink needs one common mutex", v.Name()),
			})
		}
	}
	return out
}

// isSlotWrite reports whether one captured write targets an
// index-derived slot.
func isSlotWrite(pkg *Package, der *idxDeriver, wr capturedWrite) bool {
	step, ok := firstStep(wr.lhs, wr.root).(*ast.IndexExpr)
	if !ok {
		return false
	}
	if t := pkg.Info.TypeOf(wr.root); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			return false
		}
	}
	return der.derived(step.Index, wr.stmt)
}

// perIteration reports whether a captured variable is declared inside
// one of the loops enclosing the spawn statement — a fresh binding per
// iteration, so each goroutine sees its own copy.
func perIteration(n *FuncNode, spawn *ast.GoStmt, v *types.Var) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if x.Pos() <= spawn.Pos() && spawn.End() <= x.End() &&
				x.Pos() <= v.Pos() && v.Pos() <= x.End() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// lockedSelectorStmts maps every identifier position in the declaration
// to the must-hold lockset of its statement.
func lockedSelectorStmts(pkg *Package, fd *ast.FuncDecl) map[token.Pos][]*types.Var {
	out := make(map[token.Pos][]*types.Var)
	for _, body := range FuncBodies(fd) {
		cfg := BuildCFG(body)
		lf := ComputeLockFacts(pkg, cfg)
		for _, b := range cfg.Blocks {
			for _, st := range b.Stmts {
				held, reached := lf.Before[st]
				if !reached {
					continue
				}
				inspectShallow(st, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if _, seen := out[id.Pos()]; !seen {
							out[id.Pos()] = held
						}
					}
					return true
				})
			}
		}
	}
	return out
}

// waitCalls lists the positions of WaitGroup.Wait() calls in the
// declaration (literals excluded — a Wait on another goroutine proves
// nothing for this one), in source order.
func waitCalls(pkg *Package, fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isMethod(resolvedFunc(pkg, call), "sync", "Wait") {
			out = append(out, call.Pos())
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// waitBetween reports a Wait call positioned between the two points.
func waitBetween(waits []token.Pos, after, before token.Pos) bool {
	for _, w := range waits {
		if w > after && w < before {
			return true
		}
	}
	return false
}

// sharesLock reports a non-empty intersection of two lock sets.
func sharesLock(a, b []*types.Var) bool {
	for _, x := range a {
		if hasLock(b, x) {
			return true
		}
	}
	return false
}

// sortedVars returns the map's keys in deterministic position order.
func sortedVars(m map[*types.Var][]*types.Var) []*types.Var {
	out := make([]*types.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return lockLess(out[i], out[j]) })
	return out
}
