// Package lint is detlint's analyzer driver: a standard-library-only
// static-analysis layer that machine-checks the repository's determinism
// contract. Every theorem-shaped artifact in this module rests on the
// simulator's guarantees — lockstep scheduling, replayable schedules,
// objects that are pure sequential state machines (DESIGN.md §5) — and a
// stray wall-clock read or map iteration inside a decision path silently
// breaks replay and invalidates the model checker's exhaustive
// exploration. The analyzers here make those assumptions checkable on
// every build:
//
//   - nodeterminism: no wall clocks, unseeded randomness, multi-channel
//     selects, goroutine spawns, or order-sensitive map iteration inside
//     internal/ and cmd/.
//   - objectpurity: sim.Object implementations neither retain Invocation
//     argument slices, nor mutate package-level state, nor perform I/O in
//     Apply.
//   - hangsemantics: bounded-use objects under internal/ park the caller
//     via the simulator's hang path instead of surfacing errors; the
//     native package is the one documented exemption.
//   - facadeparity: every exported constructor of a module referenced by
//     EXPERIMENTS.md's module index is reachable through the api.go
//     facade.
//   - schedulecoverage: test packages that drive sim.Run must vary the
//     schedule beyond the default round-robin — a seeded random sweep, a
//     crashing schedule, a chaos adversary, or exhaustive exploration.
//   - boundedloop: every loop reachable from a decision path (Apply,
//     Propose, WRN, Decide, Elect, Scan, Update) carries a progress
//     metric — a bounded counter, a finite range, or a helping read —
//     so wait-freedom is checkable, not aspirational.
//   - sharedstate: struct fields of native types that are mutable after
//     construction and reachable from exported operations go through
//     sync/atomic or a held mutex.
//   - injectionpurity: chaos injection decisions (anything returning
//     native.Fault) are pure functions of (seed, site, visit).
//   - lockorder: the module-wide lock-acquisition-order graph is
//     acyclic, no sync mutex is re-acquired while held, no field is
//     guarded by disjoint locks, and no field mixes atomic and plain
//     access.
//   - decisionflow: every value returned from a decision method is
//     taint-traced through the SSA-lite value graph back to wall
//     clocks, randomness, map order, channel scheduling, and
//     unsynchronized reads.
//   - persistsplit: every field of a sim.Recoverable implementor is
//     declared //detlint:durable or //detlint:volatile, and OnCrash
//     wipes exactly the volatile set — a wiped durable field is
//     amnesia, an untouched volatile field is ghost state.
//   - recoveryreads: code reachable from a RecoveryProc or Recovery
//     method re-derives volatile fields before reading them
//     (must-write-before-read on the CFG).
//   - journaldiscipline: on methods of //detlint:journaled types,
//     durable writes flow through the journal append before the
//     response, and the response derives from the journal.
//   - restartcoverage: test packages arming amnesiac restart
//     adversaries target recoverable objects, or carry a
//     negative-control allow.
//   - slotdiscipline: par.ForEach workers write captured state only
//     through index-derived slots (an SSA-lite proof that the subscript
//     derives from the worker index), sync/atomic, or a mutex.
//   - mergeorder: code consuming per-index results after a ForEach
//     reduces in index order — no map-range merges with order-sensitive
//     bodies, no completion-order channel receives, no unstable sorts
//     keyed off the index.
//   - sharedsink: shared accumulators captured by workers match a
//     documented shape (atomic counter, one-mutex sink, index slots),
//     and post-spawn reads carry a proven happens-before.
//   - seedflow: worker inputs — seeds, configs, slot values — are pure
//     functions of the worker index, never wall clocks, shared RNG
//     draws, map order, or channel receives.
//   - allowaudit: every justified //detlint:allow must still suppress a
//     finding; stale annotations are findings themselves.
//
// The interprocedural rules ride on a typed load (typeload.go), a
// per-function control-flow graph (cfg.go), a conservative module
// callgraph with a shared-access dataflow summary (callgraph.go), an
// SSA-lite per-function value graph (ssa.go), and a path-sensitive
// must-hold lockset (lockset.go).
//
// A finding can be suppressed with an inline escape comment on the same
// or preceding line:
//
//	//detlint:allow <rule>[,<rule>...] <justification>
//
// The justification is mandatory; an allow comment without one is itself
// a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the analyzer that produced the finding.
	Rule string
	// Msg describes the finding.
	Msg string
}

// String renders the diagnostic as "file:line:col: rule: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one detlint rule: a named pass over a loaded module.
type Analyzer struct {
	// Name is the rule name used in diagnostics and allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run produces the analyzer's findings for the module.
	Run func(m *Module) []Diagnostic
}

// Analyzers returns the full detlint suite, in canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerNoDeterminism(),
		AnalyzerObjectPurity(),
		AnalyzerHangSemantics(),
		AnalyzerFacadeParity(),
		AnalyzerScheduleCoverage(),
		AnalyzerBoundedLoop(),
		AnalyzerSharedState(),
		AnalyzerInjectionPurity(),
		AnalyzerLockOrder(),
		AnalyzerDecisionFlow(),
		AnalyzerHotAlloc(),
		AnalyzerBoxing(),
		AnalyzerArenaReady(),
		AnalyzerPersistSplit(),
		AnalyzerRecoveryReads(),
		AnalyzerJournalDiscipline(),
		AnalyzerRestartCoverage(),
		AnalyzerSlotDiscipline(),
		AnalyzerMergeOrder(),
		AnalyzerSharedSink(),
		AnalyzerSeedFlow(),
		AnalyzerAllowAudit(),
	}
}

// ParallelAnalyzers returns the parallel-determinism rule subset behind
// the CI parallel-gate job: the par.ForEach slot/merge/sink/seed
// contract.
func ParallelAnalyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerSlotDiscipline(),
		AnalyzerMergeOrder(),
		AnalyzerSharedSink(),
		AnalyzerSeedFlow(),
	}
}

// RecoveryAnalyzers returns the persistence/recovery-safety rule subset
// behind the CI recovery-gate job.
func RecoveryAnalyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerPersistSplit(),
		AnalyzerRecoveryReads(),
		AnalyzerJournalDiscipline(),
		AnalyzerRestartCoverage(),
	}
}

// HotAnalyzers returns the escape/hot-path rule subset behind
// `cmd/detlint -hot` and the CI alloc-gate.
func HotAnalyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerHotAlloc(),
		AnalyzerBoxing(),
		AnalyzerArenaReady(),
	}
}

// Run executes the analyzers over the module, drops findings suppressed
// by justified //detlint:allow comments, appends a finding for every
// allow comment that lacks a justification, and returns the remainder
// sorted by position.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	for _, marks := range m.allows {
		for _, a := range marks {
			a.used = false
		}
	}
	for _, b := range m.hotBudgets() {
		b.used = false
	}
	selected := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Name == allowAuditName {
			continue // runs after every suppression mark is in place
		}
		for _, d := range a.Run(m) {
			d.Rule = a.Name
			if !m.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	if selected[allowAuditName] {
		out = append(out, m.staleAllows(selected)...)
	}
	out = append(out, m.allowProblems()...)
	sort.Slice(out, func(i, j int) bool { return diagLess(out[i], out[j]) })
	return out
}

// diagLess is the canonical finding order: position, then rule, then
// message. The rule/message tiebreak makes reports byte-stable even when
// two analyzers fire on the same statement.
func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Rule != b.Rule {
		return a.Rule < b.Rule
	}
	return a.Msg < b.Msg
}

// suppressed reports whether a justified allow comment covers the
// diagnostic: same file, naming the rule (or "all"), on the same line or
// the line directly above.
func (m *Module) suppressed(d Diagnostic) bool {
	for _, a := range m.allows[d.Pos.Filename] {
		if !a.justified {
			continue
		}
		if a.line != d.Pos.Line && a.line != d.Pos.Line-1 {
			continue
		}
		if a.rules[d.Rule] || a.rules["all"] {
			a.used = true
			return true
		}
	}
	return false
}

// allowProblems reports every allow comment that names no rule or
// carries no justification.
func (m *Module) allowProblems() []Diagnostic {
	var out []Diagnostic
	files := make([]string, 0, len(m.allows))
	for f := range m.allows {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, a := range m.allows[f] {
			switch {
			case len(a.rules) == 0:
				out = append(out, Diagnostic{Pos: a.pos, Rule: "allow",
					Msg: "detlint:allow names no rule"})
			case !a.justified:
				out = append(out, Diagnostic{Pos: a.pos, Rule: "allow",
					Msg: "detlint:allow must carry an inline justification after the rule list"})
			}
		}
	}
	return out
}

// parentMap returns each node's syntactic parent within the file.
// Analyzers use it to whitelist expression contexts.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
