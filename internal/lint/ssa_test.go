package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// loadScratch type-checks a one-file throwaway module, so unit tests can
// probe the SSA-lite and lockset layers without dragging in the fixture
// module load.
func loadScratch(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	for name, content := range map[string]string{
		"go.mod":     "module scratch\n\ngo 1.22\n",
		"scratch.go": src,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Load(dir)
	if err != nil {
		t.Fatalf("loading scratch module: %v", err)
	}
	pkg := m.Lookup("scratch")
	if pkg == nil {
		t.Fatal("scratch package not loaded")
	}
	return pkg
}

func declOf(t *testing.T, pkg *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("no function %s in scratch package", name)
	return nil
}

func firstReturn(t *testing.T, fd *ast.FuncDecl) *ast.ReturnStmt {
	t.Helper()
	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && ret == nil {
			ret = r
		}
		return ret == nil
	})
	if ret == nil {
		t.Fatalf("no return statement in %s", fd.Name.Name)
	}
	return ret
}

func localVar(t *testing.T, pkg *Package, fd *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	var v *types.Var
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name || v != nil {
			return true
		}
		if d, ok := pkg.Info.Defs[id].(*types.Var); ok {
			v = d
		}
		return true
	})
	if v == nil {
		t.Fatalf("no variable %s in %s", name, fd.Name.Name)
	}
	return v
}

// TestSSABindings pins the reaching-definition semantics of the value
// graph: last write wins in straight-line code, joins materialize
// φ-nodes, augmented assignments merge with the prior binding and carry
// their operator, range bindings name their statement, and address-taken
// variables are opaque.
func TestSSABindings(t *testing.T) {
	pkg := loadScratch(t, `package scratch

func straight() int {
	x := 1
	x = 2
	return x
}

func joined(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}

func folded() int {
	t := 0
	t += 5
	return t
}

func ranged(m map[int]int) int {
	s := 0
	for k, v := range m {
		s += k + v
	}
	return s
}

func taken() int {
	x := 1
	p := &x
	_ = p
	return x
}
`)

	t.Run("straight-line last write wins", func(t *testing.T) {
		fd := declOf(t, pkg, "straight")
		ssa := BuildSSA(pkg, fd)
		ret := firstReturn(t, fd)
		val, ok := ssa.BindingAt(ret, localVar(t, pkg, fd, "x")).(ExprVal)
		if !ok {
			t.Fatalf("binding = %#v, want ExprVal", val)
		}
		if lit, ok := val.E.(*ast.BasicLit); !ok || lit.Value != "2" {
			t.Errorf("binding expression = %v, want the literal 2", val.E)
		}
	})

	t.Run("join materializes a phi", func(t *testing.T) {
		fd := declOf(t, pkg, "joined")
		ssa := BuildSSA(pkg, fd)
		phi, ok := ssa.BindingAt(firstReturn(t, fd), localVar(t, pkg, fd, "x")).(*PhiVal)
		if !ok {
			t.Fatal("binding after an if/else join is not a PhiVal")
		}
		if len(phi.Ops) != 2 {
			t.Fatalf("phi has %d operands, want 2", len(phi.Ops))
		}
		lits := make(map[string]bool)
		for _, op := range phi.Ops {
			if ev, ok := op.(ExprVal); ok {
				if lit, ok := ev.E.(*ast.BasicLit); ok {
					lits[lit.Value] = true
				}
			}
		}
		if !lits["1"] || !lits["2"] {
			t.Errorf("phi operands = %v, want the literals 1 and 2", lits)
		}
	})

	t.Run("augment merges and keeps its operator", func(t *testing.T) {
		fd := declOf(t, pkg, "folded")
		ssa := BuildSSA(pkg, fd)
		mv, ok := ssa.BindingAt(firstReturn(t, fd), localVar(t, pkg, fd, "t")).(MergeVal)
		if !ok {
			t.Fatal("binding after += is not a MergeVal")
		}
		if mv.Op != token.ADD_ASSIGN {
			t.Errorf("merge operator = %v, want +=", mv.Op)
		}
		if mv.Var == nil || mv.Var.Name() != "t" {
			t.Errorf("merge variable = %v, want t", mv.Var)
		}
		if len(mv.Ops) != 2 {
			t.Errorf("merge has %d operands, want operand plus prior binding", len(mv.Ops))
		}
	})

	t.Run("range bindings carry the statement", func(t *testing.T) {
		fd := declOf(t, pkg, "ranged")
		ssa := BuildSSA(pkg, fd)
		var body ast.Stmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok && body == nil {
				body = rs.Body.List[0]
			}
			return body == nil
		})
		k, ok := ssa.BindingAt(body, localVar(t, pkg, fd, "k")).(RangeVal)
		if !ok || !k.IsKey {
			t.Errorf("key binding = %#v, want RangeVal{IsKey: true}", k)
		}
		v, ok := ssa.BindingAt(body, localVar(t, pkg, fd, "v")).(RangeVal)
		if !ok || v.IsKey {
			t.Errorf("value binding = %#v, want RangeVal{IsKey: false}", v)
		}
	})

	t.Run("address-taken variables are opaque", func(t *testing.T) {
		fd := declOf(t, pkg, "taken")
		ssa := BuildSSA(pkg, fd)
		if _, ok := ssa.BindingAt(firstReturn(t, fd), localVar(t, pkg, fd, "x")).(OpaqueVal); !ok {
			t.Error("binding of an address-taken variable is not OpaqueVal")
		}
	})
}

// TestLocksetMustHold pins the lockset transfer semantics through
// guardedSelectors: a plain Lock/Unlock bracket guards only the span
// between them, a branch that may release drops the lock at the join
// (must-hold is the intersection), a deferred unlock does not kill,
// RLock counts as holding, and TryLock never generates.
func TestLocksetMustHold(t *testing.T) {
	pkg := loadScratch(t, `package scratch

import "sync"

type G struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (g *G) bracket() {
	g.mu.Lock()
	g.n = 1
	g.mu.Unlock()
	g.n = 2
}

func (g *G) branchy(c bool) {
	g.mu.Lock()
	if c {
		g.mu.Unlock()
	}
	g.n = 3
}

func (g *G) deferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n = 4
}

func (g *G) reader() {
	g.rw.RLock()
	g.n = 5
	g.rw.RUnlock()
}

func (g *G) tentative() {
	if g.mu.TryLock() {
		g.n = 6
	}
}
`)

	// Each write to g.n is tagged by its assigned literal, so the guard
	// expectations are independent of statement order.
	wantGuards := map[string]int{"1": 1, "2": 0, "3": 0, "4": 1, "5": 1, "6": 0}
	for _, fn := range []string{"bracket", "branchy", "deferred", "reader", "tentative"} {
		fd := declOf(t, pkg, fn)
		guards := guardedSelectors(pkg, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 {
				return true
			}
			sel, ok := as.Lhs[0].(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "n" {
				return true
			}
			lit, ok := as.Rhs[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			want, tracked := wantGuards[lit.Value]
			if !tracked {
				t.Errorf("%s: untagged write g.n = %s", fn, lit.Value)
				return true
			}
			if got := len(guards[sel]); got != want {
				t.Errorf("%s: write g.n = %s holds %d locks, want %d", fn, lit.Value, got, want)
			}
			return true
		})
	}
}

// TestFindingOrderTiebreak pins the canonical finding order: position
// first, then rule, then message — so two analyzers firing on the same
// statement always report in the same order.
func TestFindingOrderTiebreak(t *testing.T) {
	mk := func(file string, line int, rule, msg string) Diagnostic {
		d := Diagnostic{Rule: rule, Msg: msg}
		d.Pos.Filename = file
		d.Pos.Line = line
		return d
	}
	diags := []Diagnostic{
		{Pos: mk("b.go", 1, "z", "m").Pos, Rule: "z", Msg: "m"},
		mk("a.go", 2, "sharedstate", "beta"),
		mk("a.go", 2, "lockorder", "gamma"),
		mk("a.go", 2, "lockorder", "alpha"),
		mk("a.go", 1, "zzz", "last position wins over rule"),
	}
	sort.Slice(diags, func(i, j int) bool { return diagLess(diags[i], diags[j]) })
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = d.Pos.Filename + "|" + d.Rule + "|" + d.Msg
	}
	want := []string{
		"a.go|zzz|last position wins over rule",
		"a.go|lockorder|alpha",
		"a.go|lockorder|gamma",
		"a.go|sharedstate|beta",
		"b.go|z|m",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
