package lint

// mergeorder enforces the reduce half of the parallel contract: after a
// par.ForEach returns, the per-index results must be folded back in
// index order (or by a genuinely commutative reduction). The rule
// watches the region of the enclosing function after each ForEach call
// for the three ways a data-race-free merge still goes nondeterministic:
//
//   - ranging over a map the workers filled, with an order-sensitive
//     body (map iteration order is randomized; the commutative-fold
//     shapes the nodeterminism rule's rangeChecker accepts — counter
//     updates, map inserts, key collection followed by a sort — pass);
//   - receiving from a channel the workers send on (completion order is
//     the schedule's choice, not the index's), unless the send went
//     through an index-derived slot handle;
//   - sorting worker-produced records with an unstable sort keyed on a
//     field that does not carry the index (ties between equal keys land
//     in completion order).
//
// Race detectors are structurally blind to all three: the merge happens
// after the pool's barrier, so there is no race — just a different
// answer per schedule.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMergeOrder returns the mergeorder rule.
func AnalyzerMergeOrder() *Analyzer {
	return &Analyzer{
		Name: "mergeorder",
		Doc:  "results of par.ForEach workers must be reduced in index order or by a commutative fold",
		Run:  runMergeOrder,
	}
}

func runMergeOrder(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, n := range m.CallGraph().sortedNodes() {
		if !m.InScope(n.Pkg, "internal", "cmd") {
			continue
		}
		for _, w := range parWorkers(m, n) {
			out = append(out, checkMerges(m, w)...)
		}
	}
	return out
}

// workerOutputs is what one worker literal feeds the merge phase.
type workerOutputs struct {
	// maps holds captured map variables the worker writes.
	maps map[*types.Var]bool
	// chans holds captured channel variables the worker sends on through
	// a non-slot handle.
	chans map[*types.Var]bool
	// sinks maps captured slice sinks the worker appends records into to
	// the set of struct field names that receive the index.
	sinks map[*types.Var]map[string]bool
}

// collectOutputs classifies one worker literal's shared outputs.
func collectOutputs(pkg *Package, w parWorker) *workerOutputs {
	ssa := BuildLitSSA(pkg, w.lit)
	captured := capturedVars(pkg, w.lit)
	der := newIdxDeriver(pkg, ssa, w.idx)
	for v := range atomicClaimVars(pkg, w.lit) {
		der.extra[v] = true
	}
	o := &workerOutputs{
		maps:  make(map[*types.Var]bool),
		chans: make(map[*types.Var]bool),
		sinks: make(map[*types.Var]map[string]bool),
	}
	for _, wr := range litWrites(pkg, w.lit) {
		if !captured[wr.rootVar] {
			continue
		}
		if t := pkg.Info.TypeOf(wr.root); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				o.maps[wr.rootVar] = true
				continue
			}
		}
		// x = append(x, T{...}): a sink; record which composite fields
		// carry the index.
		as, ok := wr.stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			continue
		}
		id := rootIdent(call.Fun)
		if id == nil {
			continue
		}
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		fields, seen := o.sinks[wr.rootVar]
		if !seen {
			fields = make(map[string]bool)
			o.sinks[wr.rootVar] = fields
		}
		for _, a := range call.Args[1:] {
			for f := range indexFields(pkg, der, a, wr.stmt) {
				fields[f] = true
			}
		}
	}
	ast.Inspect(w.lit.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		root := rootOf(send.Chan)
		if root == nil {
			return true
		}
		v, ok := pkg.Info.Uses[root].(*types.Var)
		if !ok || !captured[v] {
			return true
		}
		// A send through an index-derived slot handle (chans[i] <- v) is
		// per-index plumbing; everything else signals completion order.
		if step, ok := firstStep(send.Chan, root).(*ast.IndexExpr); ok {
			if der.derived(step.Index, send) {
				return true
			}
		}
		o.chans[v] = true
		return true
	})
	return o
}

// indexFields returns the field names of a composite-literal element
// whose value derives from the worker index (results = append(results,
// rec{idx: i, cost: c}) yields {"idx"}).
func indexFields(pkg *Package, der *idxDeriver, e ast.Expr, at ast.Stmt) map[string]bool {
	out := make(map[string]bool)
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		u, isAddr := ast.Unparen(e).(*ast.UnaryExpr)
		if !isAddr || u.Op != token.AND {
			return out
		}
		if cl, ok = ast.Unparen(u.X).(*ast.CompositeLit); !ok {
			return out
		}
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if der.derived(kv.Value, at) {
			out[key.Name] = true
		}
	}
	return out
}

// checkMerges audits the post-ForEach region of the enclosing function.
func checkMerges(m *Module, w parWorker) []Diagnostic {
	pkg := w.node.Pkg
	o := collectOutputs(pkg, w)
	if len(o.maps) == 0 && len(o.chans) == 0 && len(o.sinks) == 0 {
		return nil
	}
	var out []Diagnostic
	var parents map[ast.Node]ast.Node
	for _, f := range pkg.Files {
		if f.Pos() <= w.call.Pos() && w.call.Pos() <= f.End() {
			parents = parentMap(f)
			break
		}
	}
	ast.Inspect(w.node.Decl.Body, func(n ast.Node) bool {
		if n == nil || n.End() <= w.call.End() {
			return true
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Pos() > w.call.End() {
				out = append(out, checkMergeRange(m, pkg, o, n, parents)...)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && n.Pos() > w.call.End() {
				if v := chanVarOf(pkg, n.X); v != nil && o.chans[v] {
					out = append(out, Diagnostic{
						Pos: m.Fset.Position(n.Pos()),
						Msg: fmt.Sprintf("receive from %q collects worker results in completion order; merge per-index slots in index order instead", v.Name()),
					})
				}
			}
		case *ast.CallExpr:
			if n.Pos() > w.call.End() {
				out = append(out, checkMergeSort(m, pkg, o, n)...)
			}
		}
		return true
	})
	return out
}

// checkMergeRange flags order-sensitive ranges over worker-filled maps
// and completion-order ranges over worker-fed channels.
func checkMergeRange(m *Module, pkg *Package, o *workerOutputs, rs *ast.RangeStmt, parents map[ast.Node]ast.Node) []Diagnostic {
	if v := chanVarOf(pkg, rs.X); v != nil && o.chans[v] {
		return []Diagnostic{{
			Pos: m.Fset.Position(rs.Pos()),
			Msg: fmt.Sprintf("range over channel %q collects worker results in completion order; merge per-index slots in index order instead", v.Name()),
		}}
	}
	root := rootOf(rs.X)
	if root == nil {
		return nil
	}
	v, ok := pkg.Info.Uses[root].(*types.Var)
	if !ok || !o.maps[v] {
		return nil
	}
	c := &rangeChecker{pkg: pkg, locals: make(map[types.Object]bool)}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			c.locals[pkg.Info.Defs[id]] = true
		}
	}
	if !c.safeStmt(rs.Body) {
		return []Diagnostic{{
			Pos: m.Fset.Position(rs.Pos()),
			Msg: fmt.Sprintf("merge ranges over worker-filled map %q with an order-sensitive body; iterate sorted keys or use a commutative fold", v.Name()),
		}}
	}
	var out []Diagnostic
	for _, nv := range c.needSort {
		if !sortedLater(pkg, enclosingFunc(rs, parents), nv) {
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(rs.Pos()),
				Msg: fmt.Sprintf("merge over worker-filled map %q collects %q in iteration order but never sorts it", v.Name(), nv.Name()),
			})
		}
	}
	return out
}

// checkMergeSort flags unstable sorts of worker-produced records keyed
// on non-index fields.
func checkMergeSort(m *Module, pkg *Package, o *workerOutputs, call *ast.CallExpr) []Diagnostic {
	fn := resolvedFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	p := fn.Pkg().Path()
	unstable := (p == "sort" && fn.Name() == "Slice") || (p == "slices" && fn.Name() == "SortFunc")
	if !unstable || len(call.Args) < 2 {
		return nil
	}
	root := rootOf(call.Args[0])
	if root == nil {
		return nil
	}
	v, ok := pkg.Info.Uses[root].(*types.Var)
	if !ok {
		return nil
	}
	idxFields, isSink := o.sinks[v]
	if !isSink {
		return nil
	}
	less, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
	if !ok {
		return nil
	}
	// Compared fields: selector names inside the less function. A less
	// function touching any index-carrying field restores index order;
	// one comparing only non-index fields leaves ties in completion
	// order.
	var compared []string
	usesIndexField := false
	ast.Inspect(less.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		compared = append(compared, sel.Sel.Name)
		if idxFields[sel.Sel.Name] {
			usesIndexField = true
		}
		return true
	})
	if len(compared) == 0 || usesIndexField {
		return nil
	}
	return []Diagnostic{{
		Pos: m.Fset.Position(call.Pos()),
		Msg: fmt.Sprintf("unstable sort of worker-produced %q keyed on %s, which does not carry the worker index; key on the index field or use a stable sort",
			v.Name(), strings.Join(dedupStrings(compared), "/")),
	}}
}

// chanVarOf resolves a plain identifier of channel type to its variable,
// or nil.
func chanVarOf(pkg *Package, e ast.Expr) *types.Var {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return nil
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
