package lint

// restartcoverage: a test package that arms an amnesiac crash-restart
// adversary (chaos.NewCrashRestart, NewRepeatedCrashRestart,
// NewAdaptiveRestart) against registered objects should be testing
// *recoverable* objects — that is the axis those adversaries exist to
// exercise. Restarting a plain object is only meaningful as a negative
// control (proving the object loses its power under restart, like E19's
// plain-Alg5 control), and a negative control should say so: the rule
// flags restart-arming test packages that never touch a recoverable
// constructor unless they carry a //detlint:allow restartcoverage with
// the control's justification.
//
// Like schedulecoverage, the rule parses each package's test files
// itself (the loader excludes them) and works syntactically; the
// recoverable-constructor set, however, comes from the typed layer: it
// is every exported module function from which the construction of a
// sim.Recoverable implementor (persist.go) is reachable, computed as a
// reverse fixed point over the callgraph — NewWRN qualifies because it
// calls NewWRNCore, the api facade wrappers qualify because they call
// NewWRN. A test file declaring its own OnCrash method is a test-local
// recoverable implementation and exempts the package.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AnalyzerRestartCoverage returns the restartcoverage rule.
func AnalyzerRestartCoverage() *Analyzer {
	return &Analyzer{
		Name: "restartcoverage",
		Doc:  "restart-adversary tests target recoverable objects, or declare themselves negative controls",
		Run:  runRestartCoverage,
	}
}

// restartAdversaries are the amnesiac crash-restart scheduler
// constructors.
var restartAdversaries = map[string]bool{
	"NewCrashRestart":         true,
	"NewRepeatedCrashRestart": true,
	"NewAdaptiveRestart":      true,
}

func runRestartCoverage(m *Module) []Diagnostic {
	ctors := recoverableConstructors(m)
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		if d, ok := checkPackageRestarts(m, pkg, ctors); ok {
			out = append(out, d)
		}
	}
	return out
}

// checkPackageRestarts parses pkg's test files and reports whether the
// package arms a restart adversary against registered objects without
// ever touching a recoverable constructor.
func checkPackageRestarts(m *Module, pkg *Package, ctors map[string]bool) (Diagnostic, bool) {
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		return Diagnostic{}, false
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var firstArm *Diagnostic
	armed := ""
	registers, recoverable := false, false
	for _, name := range names {
		path := filepath.Join(pkg.Dir, name)
		f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			continue // a broken test file is the compiler's finding, not ours
		}
		collectFileAllows(m, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if cn := calledName(n); restartAdversaries[cn] && firstArm == nil {
					pos := m.Fset.Position(n.Pos())
					firstArm = &Diagnostic{Pos: pos}
					armed = cn
				}
			case *ast.KeyValueExpr:
				// Objects: ... in a sim.Config literal registers objects.
				if id, ok := n.Key.(*ast.Ident); ok && id.Name == "Objects" {
					registers = true
				}
			case *ast.SelectorExpr:
				// A map[string]sim.Object literal built by hand.
				if id, ok := n.X.(*ast.Ident); ok && id.Name == "sim" && n.Sel.Name == "Object" {
					registers = true
				}
			case *ast.Ident:
				if ctors[n.Name] {
					recoverable = true
				}
			case *ast.FuncDecl:
				// A test-local type with an OnCrash method is a recoverable
				// implementation the typed layer cannot see.
				if n.Recv != nil && n.Name.Name == "OnCrash" {
					recoverable = true
				}
			}
			return true
		})
	}
	if firstArm == nil || !registers || recoverable {
		return Diagnostic{}, false
	}
	firstArm.Msg = fmt.Sprintf(
		"test package %s arms the amnesiac restart adversary %s but never touches a recoverable constructor; restart an object that implements sim.Recoverable, or mark the negative control with //detlint:allow restartcoverage <why>",
		pkg.Types.Name(), armed)
	return *firstArm, true
}

// calledName extracts the syntactic callee name of a call expression:
// the identifier, or the selector's member.
func calledName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// recoverableConstructors returns the names of the exported module
// functions from which constructing a sim.Recoverable implementor is
// reachable, plus the implementor type names themselves (for test-side
// composite literals).
func recoverableConstructors(m *Module) map[string]bool {
	info := m.persistInfo()
	if len(info.byNamed) == 0 {
		return nil
	}
	g := m.CallGraph()
	nodes := g.sortedNodes()
	member := make(map[*FuncNode]bool)
	for _, n := range nodes {
		if constructsRecoverable(info, n) {
			member[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if member[n] {
				continue
			}
			for _, c := range n.Callees {
				if member[c] {
					member[n] = true
					changed = true
					break
				}
			}
		}
	}
	out := make(map[string]bool)
	for _, n := range nodes {
		if member[n] && n.Decl.Name.IsExported() {
			out[n.Fn.Name()] = true
		}
	}
	for _, pt := range info.types {
		out[pt.named.Obj().Name()] = true
	}
	return out
}

// constructsRecoverable reports whether the function's body directly
// builds a Recoverable implementor: a composite literal of one, or
// new(T) of one.
func constructsRecoverable(info *persistInfo, n *FuncNode) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.CompositeLit:
			if nb := namedBase(n.Pkg.Info.TypeOf(x)); nb != nil && info.byNamed[nb] != nil {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 1 {
				if b, ok := n.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
					if nb := namedBase(n.Pkg.Info.TypeOf(x.Args[0])); nb != nil && info.byNamed[nb] != nil {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
