package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestReportByteStable runs the full suite twice over the same module
// and asserts both machine-readable formats come out byte-identical:
// CI diffs the SARIF between runs, and the cache replays reports
// verbatim, so any map-order leak in an analyzer or in the marshaling
// is a bug here before it is a flake there.
func TestReportByteStable(t *testing.T) {
	loadFixtures(t)
	runs := make([][2][]byte, 2)
	for i := range runs {
		report := NewReport(fixtureMod.Root, Run(fixtureMod, Analyzers()))
		j, err := report.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		s, err := report.SARIF(Analyzers())
		if err != nil {
			t.Fatalf("SARIF: %v", err)
		}
		runs[i] = [2][]byte{j, s}
	}
	if !bytes.Equal(runs[0][0], runs[1][0]) {
		t.Error("JSON output differs between two runs over the same module")
	}
	if !bytes.Equal(runs[0][1], runs[1][1]) {
		t.Error("SARIF output differs between two runs over the same module")
	}
}

// TestFindingIDs pins the stable-ID contract: IDs are deterministic,
// unique across the report, and independent of line numbers — two
// identical messages in one file get distinct IDs via the occurrence
// index, and moving a finding down a file must not change its ID.
func TestFindingIDs(t *testing.T) {
	mk := func(line int, rule, file, msg string) Diagnostic {
		d := Diagnostic{Rule: rule, Msg: msg}
		d.Pos.Filename = file
		d.Pos.Line = line
		return d
	}
	a := NewReport("/mod", []Diagnostic{
		mk(10, "r1", "/mod/a.go", "same message"),
		mk(20, "r1", "/mod/a.go", "same message"),
		mk(30, "r2", "/mod/b.go", "other"),
	})
	seen := make(map[string]bool)
	for _, f := range a.Findings {
		if len(f.ID) != 12 {
			t.Errorf("finding ID %q: want 12 hex digits", f.ID)
		}
		if seen[f.ID] {
			t.Errorf("duplicate finding ID %q", f.ID)
		}
		seen[f.ID] = true
	}
	// Same findings on different lines: identical IDs.
	b := NewReport("/mod", []Diagnostic{
		mk(110, "r1", "/mod/a.go", "same message"),
		mk(220, "r1", "/mod/a.go", "same message"),
		mk(330, "r2", "/mod/b.go", "other"),
	})
	for i := range a.Findings {
		if a.Findings[i].ID != b.Findings[i].ID {
			t.Errorf("finding %d: ID changed with line number: %s vs %s",
				i, a.Findings[i].ID, b.Findings[i].ID)
		}
	}
	// Paths are relativized and slash-separated.
	if a.Findings[0].File != "a.go" {
		t.Errorf("file = %q, want module-relative %q", a.Findings[0].File, "a.go")
	}
}

// TestCacheRoundTrip drives the cache against a scratch module: the key
// is stable over an unchanged tree, changes when any source file
// changes, and the cached report survives a save/load cycle. A corrupt
// cache file must read as a miss, never an error.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tiny\n\ngo 1.22\n")
	write("tiny.go", "package tiny\n\nfunc F() int { return 1 }\n")

	k1, err := CacheKey(dir, Analyzers())
	if err != nil {
		t.Fatalf("CacheKey: %v", err)
	}
	k2, err := CacheKey(dir, Analyzers())
	if err != nil {
		t.Fatalf("CacheKey: %v", err)
	}
	if k1 != k2 {
		t.Errorf("cache key unstable over unchanged tree: %s vs %s", k1, k2)
	}
	if sub, err := CacheKey(dir, Analyzers()[:1]); err != nil || sub == k1 {
		t.Errorf("cache key ignores the rule set (err=%v)", err)
	}

	report := NewReport(dir, nil)
	if err := SaveCache(dir, &CachedRun{Key: k1, Report: report}); err != nil {
		t.Fatalf("SaveCache: %v", err)
	}
	got := LoadCache(dir)
	if got == nil || got.Key != k1 {
		t.Fatalf("LoadCache = %+v, want key %s", got, k1)
	}
	if got.Report == nil || got.Report.Version != detlintVersion {
		t.Errorf("cached report = %+v, want version %s", got.Report, detlintVersion)
	}

	write("tiny.go", "package tiny\n\nfunc F() int { return 2 }\n")
	k3, err := CacheKey(dir, Analyzers())
	if err != nil {
		t.Fatalf("CacheKey: %v", err)
	}
	if k3 == k1 {
		t.Error("cache key unchanged after a source edit")
	}

	write(CacheFileName, "not json{")
	if c := LoadCache(dir); c != nil {
		t.Errorf("corrupt cache read as %+v, want miss", c)
	}
}
