package lint

// typeload.go is the type-aware half of the module loader plus the typed
// symbol API the analyzers build on. Parsing and directory discovery
// live in load.go; everything that touches go/types — the on-demand
// type-checking importer and the symbol-resolution helpers that make
// rules immune to identifier spelling (shadowed `time`, a local type
// with a Now method, a renamed import) — lives here. The helpers are
// the only sanctioned way for a rule to ask "is this call really
// time.Now?": they resolve through types.Info, never through the
// identifier text.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// loader resolves and type-checks packages on demand. Module-internal
// imports are loaded from source; everything else (the standard library)
// goes through the source importer.
type loader struct {
	m       *Module
	std     types.Importer
	dirs    map[string]string // import path -> directory
	loading map[string]bool   // cycle detection
}

// Import implements types.Importer for the type-checker's configuration.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.m.Path || strings.HasPrefix(path, l.m.Path+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package at the given module import
// path (idempotent).
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.m.byPath[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirs[path]
	if !ok {
		// An internal import outside the walked tree (shouldn't happen in
		// a well-formed module).
		return nil, fmt.Errorf("lint: unknown module package %q", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if !goSource(e) {
			continue
		}
		f, err := parser.ParseFile(l.m.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var tcErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if tcErr == nil {
				tcErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.m.Fset, files, info)
	if tcErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, tcErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.m.byPath[path] = p
	l.collectAllows(p)
	return p, nil
}

// collectAllows indexes every //detlint:allow comment of the package.
func (l *loader) collectAllows(p *Package) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "detlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				mark := &allowMark{
					pos:   l.m.Fset.Position(c.Pos()),
					rules: make(map[string]bool),
				}
				mark.line = mark.pos.Line
				if len(fields) > 0 {
					for _, r := range strings.Split(fields[0], ",") {
						mark.rules[r] = true
					}
					mark.justified = len(fields) > 1
				}
				l.m.allows[mark.pos.Filename] = append(l.m.allows[mark.pos.Filename], mark)
			}
		}
	}
}

// ---- Typed symbol API -------------------------------------------------
//
// Rules never compare identifier text against a symbol name. They resolve
// the identifier through types.Info and compare the resulting object's
// package path and name, so a local variable called `time` or a method
// called Now on a user type can never trip a rule.

// isFunc reports whether fn is the package-level function path.name for
// one of the given names. Methods never match: a method named Now on a
// user-defined clock is not time.Now.
func isFunc(fn *types.Func, path string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != path {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isMethod reports whether fn is a method named one of names declared on
// a type of the package with the given path (the receiver's base type
// must come from that package).
func isMethod(fn *types.Func, path string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != path {
		return false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// resolvedFunc resolves the function a call's Fun expression names,
// whether spelled as an identifier, a qualified name, or a method
// selection. Dynamic calls (function values, closures, builtins,
// conversions) return nil.
func resolvedFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[fun]; ok {
			if s.Kind() == types.MethodVal {
				fn, _ := s.Obj().(*types.Func)
				return fn
			}
			return nil // field value call
		}
		// Qualified package function: pkgname.Func.
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pkg.Info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// receiverInterface returns the interface type a method call dispatches
// through, or nil if the call is static (concrete receiver, package
// function, or not a call through a selector).
func receiverInterface(pkg *Package, call *ast.CallExpr) (*types.Interface, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, ""
	}
	recv := s.Recv()
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		return iface, s.Obj().Name()
	}
	return nil, ""
}

// namedBase unwraps pointers and aliases down to a *types.Named, or nil.
func namedBase(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}

// typeFromPkg reports whether t (possibly behind pointers/slices/arrays)
// is a named type declared in the package with the given import path.
func typeFromPkg(t types.Type, path string) bool {
	switch u := t.(type) {
	case *types.Slice:
		return typeFromPkg(u.Elem(), path)
	case *types.Array:
		return typeFromPkg(u.Elem(), path)
	}
	n := namedBase(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == path
}

// moduleTypeName returns "pkgname.TypeName" for a named type declared in
// the module, or "" otherwise.
func moduleTypeName(m *Module, t types.Type) string {
	n := namedBase(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	p := n.Obj().Pkg().Path()
	if p != m.Path && !strings.HasPrefix(p, m.Path+"/") {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

// lookupConcreteMethod finds the concrete method named name on t (or
// *t), or nil.
func lookupConcreteMethod(t types.Type, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	if fn, ok := obj.(*types.Func); ok {
		return fn
	}
	return nil
}

// position is a small convenience: the token.Position of a node.
func (m *Module) position(n ast.Node) token.Position { return m.Fset.Position(n.Pos()) }
