package lint

import (
	"strings"
	"sync"
	"testing"
)

// The fixture module is the real repository with the testdata packages
// grafted in under internal/ (so the scope rules apply to them). Loading
// type-checks the whole module through the source importer, which takes
// a few seconds — share one load across all tests.
var (
	fixtureOnce  sync.Once
	fixtureMod   *Module
	fixtureDiags []Diagnostic
	fixtureErr   error
)

func loadFixtures(t *testing.T) []Diagnostic {
	t.Helper()
	fixtureOnce.Do(func() {
		m, err := LoadWithExtra("../..", map[string]string{
			"detobj/internal/lintfixture/nodetbad":    "testdata/src/nodetbad",
			"detobj/internal/lintfixture/nodetok":     "testdata/src/nodetok",
			"detobj/internal/lintfixture/puritybad":   "testdata/src/puritybad",
			"detobj/internal/lintfixture/purityok":    "testdata/src/purityok",
			"detobj/internal/lintfixture/hangbad":     "testdata/src/hangbad",
			"detobj/internal/lintfixture/hangok":      "testdata/src/hangok",
			"detobj/internal/lintfixture/schedbad":    "testdata/src/schedbad",
			"detobj/internal/lintfixture/schedok":     "testdata/src/schedok",
			"detobj/internal/lintfixture/boundedbad":  "testdata/src/boundedbad",
			"detobj/internal/lintfixture/boundedok":   "testdata/src/boundedok",
			"detobj/internal/lintfixture/sharedbad":   "testdata/src/sharedbad",
			"detobj/internal/lintfixture/sharedok":    "testdata/src/sharedok",
			"detobj/internal/lintfixture/injectbad":   "testdata/src/injectbad",
			"detobj/internal/lintfixture/injectok":    "testdata/src/injectok",
			"detobj/internal/lintfixture/restartbad":  "testdata/src/restartbad",
			"detobj/internal/lintfixture/restartok":   "testdata/src/restartok",
			"detobj/internal/lintfixture/lockbad":     "testdata/src/lockbad",
			"detobj/internal/lintfixture/lockok":      "testdata/src/lockok",
			"detobj/internal/lintfixture/flowbad":     "testdata/src/flowbad",
			"detobj/internal/lintfixture/flowok":      "testdata/src/flowok",
			"detobj/internal/lintfixture/auditbad":    "testdata/src/auditbad",
			"detobj/internal/lintfixture/auditok":     "testdata/src/auditok",
			"detobj/internal/lintfixture/embedbad":    "testdata/src/embedbad",
			"detobj/internal/lintfixture/hotallocbad": "testdata/src/hotallocbad",
			"detobj/internal/lintfixture/hotallocok":  "testdata/src/hotallocok",
			"detobj/internal/lintfixture/boxbad":      "testdata/src/boxbad",
			"detobj/internal/lintfixture/boxok":       "testdata/src/boxok",
			"detobj/internal/lintfixture/arenabad":    "testdata/src/arenabad",
			"detobj/internal/lintfixture/arenaok":     "testdata/src/arenaok",
			"detobj/internal/lintfixture/persistbad":  "testdata/src/persistbad",
			"detobj/internal/lintfixture/persistok":   "testdata/src/persistok",
			"detobj/internal/lintfixture/recreadbad":  "testdata/src/recreadbad",
			"detobj/internal/lintfixture/recreadok":   "testdata/src/recreadok",
			"detobj/internal/lintfixture/journalbad":  "testdata/src/journalbad",
			"detobj/internal/lintfixture/journalok":   "testdata/src/journalok",
			"detobj/internal/lintfixture/restartcovbad": "testdata/src/restartcovbad",
			"detobj/internal/lintfixture/restartcovok":  "testdata/src/restartcovok",
			"detobj/internal/lintfixture/slotbad":       "testdata/src/slotbad",
			"detobj/internal/lintfixture/slotok":        "testdata/src/slotok",
			"detobj/internal/lintfixture/mergebad":      "testdata/src/mergebad",
			"detobj/internal/lintfixture/mergeok":       "testdata/src/mergeok",
			"detobj/internal/lintfixture/sinkbad":       "testdata/src/sinkbad",
			"detobj/internal/lintfixture/sinkok":        "testdata/src/sinkok",
			"detobj/internal/lintfixture/seedbad":       "testdata/src/seedbad",
			"detobj/internal/lintfixture/seedok":        "testdata/src/seedok",
		})
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureMod = m
		fixtureDiags = Run(m, Analyzers())
	})
	if fixtureErr != nil {
		t.Fatalf("loading module with fixtures: %v", fixtureErr)
	}
	return fixtureDiags
}

// inFile filters diagnostics to those whose position is in a file whose
// path contains the fragment.
func inFile(diags []Diagnostic, fragment string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, fragment) {
			out = append(out, d)
		}
	}
	return out
}

func TestFixturesFlagSeededViolations(t *testing.T) {
	diags := loadFixtures(t)
	expect := []struct {
		file, rule, msg string
	}{
		{"nodetbad", "nodeterminism", "time.Now"},
		{"nodetbad", "nodeterminism", "time.Since"},
		{"nodetbad", "nodeterminism", "rand.Intn"},
		{"nodetbad", "nodeterminism", "select over multiple channels"},
		{"nodetbad", "nodeterminism", "goroutine spawn"},
		{"nodetbad", "nodeterminism", "order-sensitive body"},
		{"nodetbad", "nodeterminism", "never sorts"},
		{"nodetbad", "allow", "justification"},
		{"puritybad", "objectpurity", "must not retain inv.Args"},
		{"puritybad", "objectpurity", "mutates package-level state"},
		{"puritybad", "objectpurity", "performs I/O (fmt.Println)"},
		{"hangbad", "hangsemantics", "constructs an error (fmt.Errorf)"},
		{"hangbad", "hangsemantics", "constructs an error (errors.New)"},
		{"hangbad", "hangsemantics", "responds with an error value"},
		{"hangbad", "hangsemantics", "bounded-use violation surfaced as error ErrSlotUsed"},
		{"schedbad", "schedulecoverage", "only under the default round-robin schedule"},
		{"boundedbad", "boundedloop", "can neither exit"},
		{"boundedbad", "boundedloop", "spins until shared state changes"},
		{"boundedbad", "boundedloop", "ranges over a channel"},
		{"boundedbad", "boundedloop", "retries without a bounded counter"},
		{"boundedbad", "boundedloop", "reachable from boundedbad.(Obj).Propose"},
		{"sharedbad", "sharedstate", "field val of sharedbad.Gauge"},
		{"sharedbad", "sharedstate", "field peak of sharedbad.Gauge"},
		{"injectbad", "injectionpurity", "time.Now"},
		{"injectbad", "injectionpurity", "rand.Intn"},
		{"injectbad", "injectionpurity", "runtime.NumGoroutine"},
		{"injectbad", "injectionpurity", "channel receive"},
		{"injectbad", "injectionpurity", "select statement"},
		{"restartbad", "injectionpurity", "time.Now"},
		{"restartbad", "injectionpurity", "rand.Intn"},
		{"restartbad", "injectionpurity", "channel receive"},
		{"restartbad", "injectionpurity", "in restartbad.(Adversary).fromChan"},
		{"restartbad", "schedulecoverage", "only under the default round-robin schedule"},
		{"lockbad", "lockorder", "lock-order cycle among"},
		{"lockbad", "lockorder", "acquired in lockbad.(Cell).Again while already held"},
		{"lockbad", "lockorder", "field m of lockbad.Pair is guarded by"},
		{"lockbad", "lockorder", "mixed atomic/plain"},
		{"flowbad", "decisionflow", "time.Now (wall clock) (via flowbad.stampNow)"},
		{"flowbad", "decisionflow", "map iteration order"},
		{"flowbad", "decisionflow", "unsynchronized read of field grade"},
		{"flowbad", "decisionflow", "channel receive"},
		{"auditbad", "allowaudit", "stale detlint:allow (nodeterminism)"},
		{"embedbad", "boundedloop", "reachable from embedbad.(Obj).Propose"},
		{"hotallocbad", "hotalloc", "make(map[int]bool) in hot loop"},
		{"hotallocbad", "hotalloc", "append growth in hot loop"},
		{"hotallocbad", "hotalloc", "fmt call (fmt.Sprint) in hot loop"},
		{"hotallocbad", "hotalloc", "escaping composite literal"},
		{"hotallocbad", "hotalloc", "new(Node) in hot loop"},
		{"hotallocbad", "hotalloc", "reachable from hotallocbad.Explore"},
		{"hotallocbad", "hotalloc", "string concatenation in hot loop in hotallocbad.Sweep"},
		{"hotallocbad", "boxing", "variadic argument boxes a int value"},
		{"boxbad", "boxing", "variadic argument"},
		{"boxbad", "boxing", "interface assignment boxes a record struct"},
		{"boxbad", "boxing", "interface-keyed map index"},
		{"boxbad", "boxing", "interface-typed row element"},
		{"arenabad", "arenaready", "field name of arena-nominated arenabad.Node is not flat: string"},
		{"arenabad", "arenaready", "field kids of arena-nominated arenabad.Node is not flat: slice"},
		{"arenabad", "arenaready", "field meta of arena-nominated arenabad.Node is not flat: map"},
		{"arenabad", "arenaready", "field next of arena-nominated arenabad.Node is not flat: pointer"},
		{"arenabad", "arenaready", "field sub of arena-nominated arenabad.Node is not flat: nested field data: slice"},
		{"arenabad", "arenaready", "detlint:encoder must carry an inline justification"},
		{"arenabad", "arenaready", "arena-nominated type arenabad.Table is not flat: map"},
		{"persistbad", "persistsplit", "field count of persistbad.Cell (a sim.Recoverable implementor) has no //detlint:durable or //detlint:volatile annotation"},
		{"persistbad", "persistsplit", "field torn of persistbad.Cell carries both //detlint:durable and //detlint:volatile"},
		{"persistbad", "persistsplit", "OnCrash wipes field saved of persistbad.Cell, which is annotated //detlint:durable — amnesia"},
		{"persistbad", "persistsplit", "OnCrash never wipes field tmp of persistbad.Cell, which is annotated //detlint:volatile — ghost state"},
		{"persistbad", "persistsplit", "//detlint:volatile on field tmp of persistbad.Cell must carry an inline justification"},
		{"persistbad", "persistsplit", "//detlint:durable attaches to no field or type of a sim.Recoverable implementor"},
		{"recreadbad", "recoveryreads", "reads volatile field table of recreadbad.Cache before re-deriving it"},
		{"recreadbad", "recoveryreads", "reads volatile field hits of recreadbad.Cache"},
		{"recreadbad", "recoveryreads", "recovery code reachable from"},
		{"journalbad", "journaldiscipline", "durable write to field count of journalbad.Log"},
		{"journalbad", "journaldiscipline", "response of journalbad.(Log).Aside does not derive from the journal"},
		{"journalbad", "journaldiscipline", "journal field rec of journalbad.Wiped is volatile"},
		{"journalbad", "journaldiscipline", "journaled type journalbad.Empty nominates no //detlint:journal fields"},
		{"journalbad", "journaldiscipline", "field j of journalbad.Unnominated is marked //detlint:journal but the type carries no //detlint:journaled nomination"},
		{"restartcovbad", "restartcoverage", "arms the amnesiac restart adversary NewRepeatedCrashRestart but never touches a recoverable constructor"},
		{"slotbad", "slotdiscipline", `assignment to captured variable "total"`},
		{"slotbad", "slotdiscipline", `write into captured map "out"`},
		{"slotbad", "slotdiscipline", `write to captured "slots" at a subscript not derived from the worker index`},
		{"slotbad", "slotdiscipline", `write to field count of captured "t"`},
		{"slotbad", "slotdiscipline", `write through captured pointer "p"`},
		{"slotbad", "slotdiscipline", `write through "s", which aliases captured state`},
		{"slotbad", "slotdiscipline", `test worker assigns captured variable "total"`},
		{"slotbad", "slotdiscipline", `test worker writes captured "slots" at a subscript not derived`},
		{"mergebad", "mergeorder", `worker-filled map "hist" with an order-sensitive body`},
		{"mergebad", "mergeorder", `collects "keys" in iteration order but never sorts it`},
		{"mergebad", "mergeorder", `range over channel "results" collects worker results in completion order`},
		{"mergebad", "mergeorder", `receive from "results" collects worker results in completion order`},
		{"mergebad", "mergeorder", `unstable sort of worker-produced "recs" keyed on cost`},
		{"sinkbad", "sharedsink", `writes captured "count" outside any documented shape`},
		{"sinkbad", "sharedsink", `captured "hits" is written under different locks; a shared sink needs one common mutex`},
		{"sinkbad", "sharedsink", `read of worker-written "total" with no proven happens-before`},
		{"sinkbad", "sharedsink", `captured "sum" is written under different locks across par.ForEach workers`},
		{"seedbad", "seedflow", "time.Now (wall clock)"},
		{"seedbad", "seedflow", "rand.Int63 (global random source)"},
		{"seedbad", "seedflow", `a draw from shared RNG "rng"`},
		{"seedbad", "seedflow", "map iteration order"},
		{"seedbad", "seedflow", "a channel receive (completion order)"},
	}
	for _, want := range expect {
		found := false
		for _, d := range inFile(diags, want.file) {
			if d.Rule == want.rule && strings.Contains(d.Msg, want.msg) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s finding matching %q in %s fixture", want.rule, want.msg, want.file)
		}
	}
}

func TestFixturesAcceptSafeIdioms(t *testing.T) {
	diags := loadFixtures(t)
	for _, clean := range []string{"nodetok", "purityok", "hangok", "schedok", "boundedok", "sharedok", "injectok", "restartok", "lockok", "flowok", "auditok", "hotallocok", "boxok", "arenaok", "persistok", "recreadok", "journalok", "restartcovok", "slotok", "mergeok", "sinkok", "seedok"} {
		for _, d := range inFile(diags, clean) {
			t.Errorf("unexpected finding in clean fixture %s: %s", clean, d)
		}
	}
}

// TestPartialRunStaleJudgment pins the -rules contract for allowaudit:
// a mark is judged stale only when every rule it names actually ran.
// Selecting nodeterminism makes the auditbad mark judgeable (and stale),
// while a subset without nodeterminism proves nothing about it and must
// stay silent.
func TestPartialRunStaleJudgment(t *testing.T) {
	loadFixtures(t)
	judged := Run(fixtureMod, []*Analyzer{AnalyzerNoDeterminism(), AnalyzerAllowAudit()})
	foundStale := false
	for _, d := range inFile(judged, "auditbad") {
		if d.Rule == allowAuditName {
			foundStale = true
		}
	}
	if !foundStale {
		t.Error("subset including nodeterminism did not judge the auditbad mark stale")
	}
	for _, d := range inFile(judged, "auditok") {
		if d.Rule == allowAuditName {
			t.Errorf("live allow in auditok judged stale: %s", d)
		}
	}
	unjudged := Run(fixtureMod, []*Analyzer{AnalyzerSharedState(), AnalyzerAllowAudit()})
	for _, d := range unjudged {
		if d.Rule == allowAuditName {
			t.Errorf("subset without nodeterminism judged a mark anyway: %s", d)
		}
	}
	// Restore the shared fixture diagnostics' used-marks for later tests.
	fixtureDiags = Run(fixtureMod, Analyzers())
}

func TestRealTreeIsClean(t *testing.T) {
	// The repository itself must pass its own linter: every remaining
	// exemption carries a justified //detlint:allow.
	diags := loadFixtures(t)
	for _, d := range diags {
		if !strings.Contains(d.Pos.Filename, "testdata") {
			t.Errorf("finding in the real tree: %s", d)
		}
	}
}

func TestFacadeParityFixture(t *testing.T) {
	m, err := Load("testdata/facademod")
	if err != nil {
		t.Fatalf("loading facade fixture module: %v", err)
	}
	diags := Run(m, []*Analyzer{AnalyzerFacadeParity()})
	var orphaned []string
	for _, d := range diags {
		if d.Rule != "facadeparity" {
			t.Errorf("unexpected rule %s: %s", d.Rule, d)
			continue
		}
		orphaned = append(orphaned, d.Msg)
	}
	if len(orphaned) != 1 || !strings.Contains(orphaned[0], "NewOrphan") {
		t.Errorf("facadeparity findings = %q, want exactly one naming NewOrphan", orphaned)
	}
	for _, msg := range orphaned {
		if strings.Contains(msg, "NewGood") || strings.Contains(msg, "NewHidden") {
			t.Errorf("facadeparity flagged a reachable or annotated constructor: %s", msg)
		}
	}
}
