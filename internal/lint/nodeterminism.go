package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerNoDeterminism returns the nodeterminism rule. Inside internal/
// and cmd/ — the simulator, the algorithms, the checkers and the table
// emitters — it flags the constructs that make a run, a trace, or a
// printed table depend on anything but (configuration, seed):
//
//   - time.Now / time.Since: wall clocks leak real time into decisions;
//   - the global math/rand source (rand.Intn et al.): unseeded, shared,
//     and irreproducible — use rand.New(rand.NewSource(seed));
//   - select over multiple channels: the runtime picks a ready case
//     pseudo-randomly;
//   - go statements: spawned goroutines race unless the surrounding code
//     serializes them (the simulator's lockstep handshake is the one
//     justified, annotated case);
//   - range over a map whose body is order-sensitive: iteration order is
//     randomized, so anything accumulated in order (appends that are
//     never sorted, early returns, printing) changes from run to run.
//     Commutative bodies — counter updates, writes into another map,
//     deletes, and key-collection followed by an explicit sort in the
//     same function — pass.
func AnalyzerNoDeterminism() *Analyzer {
	return &Analyzer{
		Name: "nodeterminism",
		Doc:  "flags wall clocks, global randomness, selects, goroutines and order-sensitive map iteration in internal/ and cmd/",
		Run:  runNoDeterminism,
	}
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared, unseeded global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "N": true,
}

func runNoDeterminism(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		if !m.InScope(pkg, "internal", "cmd") {
			continue
		}
		for _, f := range pkg.Files {
			parents := parentMap(f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if d, ok := checkDetSelector(m, pkg, n); ok {
						out = append(out, d)
					}
				case *ast.SelectStmt:
					if len(n.Body.List) > 1 {
						out = append(out, Diagnostic{
							Pos: m.Fset.Position(n.Pos()),
							Msg: "select over multiple channels: the runtime chooses a ready case pseudo-randomly",
						})
					}
				case *ast.GoStmt:
					out = append(out, Diagnostic{
						Pos: m.Fset.Position(n.Pos()),
						Msg: "goroutine spawn: concurrent execution is unschedulable by the simulator",
					})
				case *ast.RangeStmt:
					out = append(out, checkMapRange(m, pkg, n, parents)...)
				}
				return true
			})
		}
	}
	return out
}

// checkDetSelector flags selector references to wall clocks and the
// global math/rand source. Resolution goes through the typed symbol API
// (typeload.go): a shadowed `time` identifier or a Now method on a user
// clock type never matches, and methods like (*rand.Rand).Intn — seeded
// by their receiver — pass.
func checkDetSelector(m *Module, pkg *Package, sel *ast.SelectorExpr) (Diagnostic, bool) {
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	switch {
	case isFunc(fn, "time", "Now", "Since"):
		return Diagnostic{
			Pos: m.Fset.Position(sel.Pos()),
			Msg: fmt.Sprintf("time.%s: wall-clock reads break deterministic replay", fn.Name()),
		}, true
	case isGlobalRand(fn):
		return Diagnostic{
			Pos: m.Fset.Position(sel.Pos()),
			Msg: fmt.Sprintf("rand.%s uses the unseeded global source; use rand.New(rand.NewSource(seed))", fn.Name()),
		}, true
	}
	return Diagnostic{}, false
}

// checkMapRange flags `range` over a map whose loop body is
// order-sensitive.
func checkMapRange(m *Module, pkg *Package, rs *ast.RangeStmt, parents map[ast.Node]ast.Node) []Diagnostic {
	t := pkg.Info.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}
	c := &rangeChecker{pkg: pkg, locals: make(map[types.Object]bool)}
	// The key and value variables are per-iteration locals.
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			c.locals[c.pkg.Info.Defs[id]] = true
		}
	}
	if !c.safeStmt(rs.Body) {
		return []Diagnostic{{
			Pos: m.Fset.Position(rs.Pos()),
			Msg: "range over map with an order-sensitive body; iterate sorted keys instead",
		}}
	}
	// Key collection (x = append(x, k)) is safe only when the collected
	// slice is sorted later in the same function.
	var out []Diagnostic
	for _, v := range c.needSort {
		if !sortedLater(pkg, enclosingFunc(rs, parents), v) {
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(rs.Pos()),
				Msg: fmt.Sprintf("range over map collects %q in iteration order but never sorts it", v.Name()),
			})
		}
	}
	return out
}

// rangeChecker classifies a map-range body as order-insensitive
// (commutative accumulation only) or order-sensitive.
type rangeChecker struct {
	pkg      *Package
	locals   map[types.Object]bool // variables scoped to the loop body
	needSort []*types.Var          // outer slices appended to in iteration order
}

func (c *rangeChecker) safeStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		for _, st := range s.List {
			if !c.safeStmt(st) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		return c.safeExpr(s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, id := range vs.Names {
				c.locals[c.pkg.Info.Defs[id]] = true
			}
			for _, v := range vs.Values {
				if !c.safeExpr(v) {
					return false
				}
			}
		}
		return true
	case *ast.AssignStmt:
		return c.safeAssign(s)
	case *ast.ExprStmt:
		// Only delete(m, k) may stand alone.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if b, ok := c.pkg.Info.Uses[rootIdent(call.Fun)].(*types.Builtin); ok && b.Name() == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		return c.safeStmt(s.Init) && c.safeExpr(s.Cond) && c.safeStmt(s.Body) && c.safeStmt(s.Else)
	case *ast.ForStmt:
		return c.safeStmt(s.Init) && (s.Cond == nil || c.safeExpr(s.Cond)) && c.safeStmt(s.Post) && c.safeStmt(s.Body)
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := c.pkg.Info.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return c.safeExpr(s.X) && c.safeStmt(s.Body)
	case *ast.SwitchStmt:
		if !c.safeStmt(s.Init) || (s.Tag != nil && !c.safeExpr(s.Tag)) {
			return false
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				if !c.safeExpr(e) {
					return false
				}
			}
			for _, st := range clause.Body {
				if !c.safeStmt(st) {
					return false
				}
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	default:
		// return, send, defer, go, select, labeled statements, ...
		return false
	}
}

// safeAssign classifies an assignment inside a map-range body.
func (c *rangeChecker) safeAssign(s *ast.AssignStmt) bool {
	for _, r := range s.Rhs {
		if !c.safeExpr(r) {
			return false
		}
	}
	switch s.Tok {
	case token.DEFINE:
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				c.locals[c.pkg.Info.Defs[id]] = true
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation: final value is order-independent.
		for _, l := range s.Lhs {
			if !c.safeExpr(l) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		// x = append(x, elem) collecting into a function-local slice is
		// conditionally safe: the caller must find a later sort.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if v := c.appendTarget(s.Lhs[0], s.Rhs[0]); v != nil {
				c.needSort = append(c.needSort, v)
				return true
			}
		}
		for _, l := range s.Lhs {
			if !c.safeAssignTarget(l) {
				return false
			}
		}
		return true
	default:
		// /=, %=, <<=, >>=, &^= are not commutative.
		return false
	}
}

// safeAssignTarget reports whether a plain `=` write is per-key or
// loop-local: blank, a loop-scoped variable, an index into a map, or a
// field reached through a loop-scoped variable (each iteration touches
// its own value).
func (c *rangeChecker) safeAssignTarget(l ast.Expr) bool {
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return true
		}
		return c.locals[c.pkg.Info.Uses[l]]
	case *ast.SelectorExpr:
		if root := rootOf(l.X); root != nil {
			return c.locals[c.pkg.Info.Uses[root]]
		}
	case *ast.IndexExpr:
		t := c.pkg.Info.TypeOf(l.X)
		if t == nil {
			return false
		}
		if _, ok := t.Underlying().(*types.Map); ok {
			return c.safeExpr(l.X) && c.safeExpr(l.Index)
		}
	case *ast.StarExpr:
		if root := rootOf(l.X); root != nil {
			return c.locals[c.pkg.Info.Uses[root]]
		}
	}
	return false
}

// appendTarget recognizes `v = append(v, ...)` — v a function-local
// slice or a field of a function-local value — and returns the slice
// variable's object, or nil.
func (c *rangeChecker) appendTarget(lhs, rhs ast.Expr) *types.Var {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil
	}
	b, ok := c.pkg.Info.Uses[rootIdent(call.Fun)].(*types.Builtin)
	if !ok || b.Name() != "append" || len(call.Args) < 1 {
		return nil
	}
	v := c.sliceVar(lhs)
	if v == nil || v != c.sliceVar(call.Args[0]) {
		return nil
	}
	for _, a := range call.Args[1:] {
		if !c.safeExpr(a) {
			return nil
		}
	}
	return v
}

// sliceVar resolves an append target to its variable object: a plain
// function-local identifier, or the field of a selector rooted at a
// function-local identifier. Package-level targets return nil.
func (c *rangeChecker) sliceVar(e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := c.pkg.Info.Uses[e].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil || v.Parent() == c.pkg.Types.Scope() {
			return nil
		}
		return v
	case *ast.SelectorExpr:
		root := rootOf(e.X)
		if root == nil {
			return nil
		}
		if rv, ok := c.pkg.Info.Uses[root].(*types.Var); !ok || isPackageScoped(rv) {
			return nil
		}
		v, ok := c.pkg.Info.Uses[e.Sel].(*types.Var)
		if !ok {
			return nil
		}
		return v
	}
	return nil
}

// rootOf returns the leftmost identifier of a selector/index/star
// chain, or nil.
func rootOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// safeExpr reports whether evaluating the expression is free of
// side effects that could leak iteration order: no calls except pure
// builtins and type conversions, no channel operations, no closures.
func (c *rangeChecker) safeExpr(e ast.Expr) bool {
	safe := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := c.pkg.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if b, ok := c.pkg.Info.Uses[rootIdent(n.Fun)].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "append", "make", "min", "max", "delete", "new", "copy":
					return true
				}
			}
			safe = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				safe = false
				return false
			}
		case *ast.FuncLit:
			safe = false
			return false
		}
		return true
	})
	return safe
}

// rootIdent returns the identifier at the root of a selector/index
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// enclosingFunc walks up the parent chain to the function containing n.
func enclosingFunc(n ast.Node, parents map[ast.Node]ast.Node) ast.Node {
	for n != nil {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return n
		}
		n = parents[n]
	}
	return nil
}

// sortedLater reports whether the enclosing function sorts the collected
// slice: any call to a function of package sort or slices that mentions
// the variable.
func sortedLater(pkg *Package, fn ast.Node, v *types.Var) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		f, ok := pkg.Info.Uses[rootIdent(call.Fun)].(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			mentions := false
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == v {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
