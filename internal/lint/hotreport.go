package lint

// hotreport.go renders the hot-path allocation ranking behind
// `cmd/detlint -hot -hotreport report.json`: every hot-reachable
// function with static allocation sites, ranked by score — the sum
// over its sites of 10^depth, times the number of hot roots that
// reach it (the callgraph-multiplicity factor). The report
// cross-references the newest committed BENCH_N.json so the static
// ranking and the measured allocs/op sit side by side: the ROADMAP's
// arena migration starts from this worklist, not from a profiler
// session. The JSON is byte-stable on an unchanged tree — fields are
// structs (fixed marshal order), functions sort by score then label,
// and kind maps marshal with encoding/json's sorted keys.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// HotFunc is one ranked function of the hot report.
type HotFunc struct {
	// Function is the import-path-qualified function label (the
	// .detlint.hot budget key).
	Function string `json:"function"`
	// File is the module-relative declaring file.
	File string `json:"file"`
	// Score is sum(10^depth over sites) × hot-root multiplicity.
	Score int64 `json:"score"`
	// Sites counts the recognized allocation sites.
	Sites int `json:"sites"`
	// MaxDepth is the deepest site's total loop depth.
	MaxDepth int `json:"max_depth"`
	// Roots is the hot-root multiplicity.
	Roots int `json:"roots"`
	// Kinds tallies sites per kind description.
	Kinds map[string]int `json:"kinds"`
}

// BenchRef cross-references one measured benchmark's allocations.
type BenchRef struct {
	Source      string `json:"source"`
	Name        string `json:"name"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// HotReport is the -hotreport document.
type HotReport struct {
	Version string `json:"version"`
	// Functions ranks every hot function with sites, highest score
	// first.
	Functions []HotFunc `json:"functions"`
	// Bench carries allocs/op from the newest BENCH_N.json, when one
	// is committed, so static score and measured cost read together.
	Bench []BenchRef `json:"bench,omitempty"`
	// Note explains an absent or empty Bench section — no committed
	// BENCH_N.json, an unreadable one, or one with no alloc figures —
	// so a missing cross-reference reads as a documented degradation,
	// not a silent hole.
	Note string `json:"note,omitempty"`
}

// BuildHotReport computes the ranking over a loaded module.
func BuildHotReport(m *Module) *HotReport {
	h := m.hotPaths()
	_, sites := hotAllocSites(m)
	rep := &HotReport{Version: detlintVersion}
	for _, n := range sortedSiteFuncs(sites) {
		fn := HotFunc{
			Function: budgetLabel(n),
			Roots:    h.mult[n],
			Kinds:    make(map[string]int),
		}
		pos := m.position(n.Decl)
		if rel, err := filepath.Rel(m.Root, pos.Filename); err == nil {
			fn.File = filepath.ToSlash(rel)
		} else {
			fn.File = pos.Filename
		}
		for _, s := range sites[n] {
			fn.Sites++
			fn.Score += hotWeight(s.depth)
			fn.Kinds[s.kind]++
			if s.depth > fn.MaxDepth {
				fn.MaxDepth = s.depth
			}
		}
		fn.Score *= int64(fn.Roots)
		rep.Functions = append(rep.Functions, fn)
	}
	sort.SliceStable(rep.Functions, func(i, j int) bool {
		if rep.Functions[i].Score != rep.Functions[j].Score {
			return rep.Functions[i].Score > rep.Functions[j].Score
		}
		return rep.Functions[i].Function < rep.Functions[j].Function
	})
	rep.Bench, rep.Note = benchAllocRefs(m.Root)
	return rep
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *HotReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// benchAllocRefs loads allocs/op from the newest BENCH_N.json at the
// module root. Degradation is graceful and explained: no committed
// file, an unreadable or unparsable one, or one without alloc figures
// yields no refs plus a one-line note for the report (and stderr).
func benchAllocRefs(root string) ([]BenchRef, string) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, "module root unreadable; bench cross-reference skipped"
	}
	newest, newestN := "", -1
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > newestN {
			newest, newestN = e.Name(), n
		}
	}
	if newest == "" {
		return nil, "no committed BENCH_N.json at the module root; run `make bench` to record one"
	}
	data, err := os.ReadFile(filepath.Join(root, newest))
	if err != nil {
		return nil, newest + " unreadable; bench cross-reference skipped"
	}
	var doc struct {
		Benchmarks []struct {
			Name        string `json:"name"`
			AllocsPerOp int64  `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, newest + " is not parsable benchmark JSON; re-run `make bench` to refresh it"
	}
	var out []BenchRef
	for _, b := range doc.Benchmarks {
		if b.AllocsPerOp > 0 {
			out = append(out, BenchRef{Source: newest, Name: b.Name, AllocsPerOp: b.AllocsPerOp})
		}
	}
	if len(out) == 0 {
		return nil, newest + " records no allocs/op figures; bench cross-reference is empty"
	}
	return out, ""
}
