package lint

// closure.go is the capture/flow layer the parallel-determinism rules
// (slotdiscipline, mergeorder, sharedsink, seedflow) share: it finds the
// worker closures handed to par.ForEach and to go statements, computes
// which enclosing-frame variables each closure captures and writes, and
// proves — over the literal's own SSA-lite value graph (BuildLitSSA) —
// that a subscript expression derives from the worker's index. The
// contract being enforced is the one internal/par documents in prose:
// each index must touch only its own slot, and everything shared must go
// through sync/atomic or a mutex.
//
// "Derives from the index" is a two-part judgment on an expression:
// every identifier leaf must be clean (the index parameter, a value
// SSA-traced back to it, or a captured loop-invariant read), and at
// least one leaf must actually mention the index. Both halves matter:
// slots[0] is clean but mentions no index (all workers collide), and
// slots[next()] mentions nothing provable. φ-nodes require every
// incoming path to derive — an index on one path and a constant on the
// other is a collision on the other path.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parWorker is one par.ForEach(n, workers, body) call site whose body is
// a function literal.
type parWorker struct {
	// call is the ForEach call expression.
	call *ast.CallExpr
	// lit is the worker body literal.
	lit *ast.FuncLit
	// idx is the literal's index parameter.
	idx *types.Var
	// node is the declared function containing the call.
	node *FuncNode
}

// parWorkers finds the par.ForEach worker literals of one declared
// function, in source order.
func parWorkers(m *Module, n *FuncNode) []parWorker {
	var out []parWorker
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := resolvedFunc(n.Pkg, call)
		if !isFunc(fn, m.Path+"/internal/par", "ForEach") || len(call.Args) != 3 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
		if !ok {
			return true
		}
		idx := litParam(n.Pkg, lit, 0)
		if idx == nil {
			return true
		}
		out = append(out, parWorker{call: call, lit: lit, idx: idx, node: n})
		return true
	})
	return out
}

// litParam returns the i-th parameter object of a function literal, or
// nil (unnamed or missing).
func litParam(pkg *Package, lit *ast.FuncLit, i int) *types.Var {
	if lit.Type.Params == nil {
		return nil
	}
	idx := 0
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if idx == i {
				v, _ := pkg.Info.Defs[name].(*types.Var)
				return v
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	return nil
}

// litLocals returns every object declared inside the literal (parameters
// included, nested literals included).
func litLocals(pkg *Package, lit *ast.FuncLit) map[types.Object]bool {
	locals := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	return locals
}

// capturedVars returns the variables the literal captures: every
// variable used inside it but declared outside it — enclosing-frame
// locals, parameters of the enclosing function, and package-level state.
// Struct fields are excluded (the capture is of the base variable).
func capturedVars(pkg *Package, lit *ast.FuncLit) map[*types.Var]bool {
	locals := litLocals(pkg, lit)
	captured := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || locals[v] {
			return true
		}
		captured[v] = true
		return true
	})
	return captured
}

// capturedWrite is one write statement inside a worker literal whose
// target is (or may alias) captured state.
type capturedWrite struct {
	// stmt is the assignment or inc/dec statement.
	stmt ast.Stmt
	// lhs is the written expression.
	lhs ast.Expr
	// root is the leftmost identifier of the target path.
	root *ast.Ident
	// rootVar is root's object.
	rootVar *types.Var
}

// litWrites collects every assignment target inside the literal (nested
// literals included) whose path roots at an identifier, in source order.
func litWrites(pkg *Package, lit *ast.FuncLit) []capturedWrite {
	var out []capturedWrite
	add := func(st ast.Stmt, l ast.Expr) {
		root := rootOf(l)
		if root == nil || root.Name == "_" {
			return
		}
		v, ok := pkg.Info.Uses[root].(*types.Var)
		if !ok {
			if v, ok = pkg.Info.Defs[root].(*types.Var); !ok {
				return
			}
		}
		out = append(out, capturedWrite{stmt: st, lhs: l, root: root, rootVar: v})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				add(n, l)
			}
		case *ast.IncDecStmt:
			add(n, n.X)
		}
		return true
	})
	return out
}

// idxDeriver proves subscript expressions derive from a worker's index
// parameter through the literal's SSA-lite value graph.
type idxDeriver struct {
	pkg *Package
	ssa *FuncSSA
	// idx is the index parameter.
	idx *types.Var
	// extra holds additional variables treated as index-equivalent: an
	// atomic-claim result (r := int(next.Add(1)-1)) or a per-iteration
	// loop variable for a go-statement worker.
	extra map[*types.Var]bool
	// activePhis breaks loop-carried φ cycles.
	activePhis map[*PhiVal]bool
}

func newIdxDeriver(pkg *Package, ssa *FuncSSA, idx *types.Var) *idxDeriver {
	return &idxDeriver{
		pkg: pkg, ssa: ssa, idx: idx,
		extra:      make(map[*types.Var]bool),
		activePhis: make(map[*PhiVal]bool),
	}
}

// derived reports whether the expression provably derives from the
// index: every leaf clean, at least one leaf mentioning the index.
func (d *idxDeriver) derived(e ast.Expr, at ast.Stmt) bool {
	mention, ok := d.expr(e, at)
	return mention && ok
}

// expr judges one expression; mention reports an index leaf, ok reports
// that every leaf is clean (index-derived or loop-invariant).
func (d *idxDeriver) expr(e ast.Expr, at ast.Stmt) (mention, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return false, true
	case *ast.Ident:
		return d.ident(e, at)
	case *ast.BinaryExpr:
		m1, ok1 := d.expr(e.X, at)
		m2, ok2 := d.expr(e.Y, at)
		return m1 || m2, ok1 && ok2
	case *ast.UnaryExpr:
		if e.Op == token.ARROW || e.Op == token.AND {
			return false, false // receives and addresses are not subscripts
		}
		return d.expr(e.X, at)
	case *ast.CallExpr:
		return d.call(e, at)
	case *ast.IndexExpr:
		// A lookup-table hop (perm[i]) derives iff both the table read
		// and the inner subscript are clean; the mention comes from
		// either side.
		m1, ok1 := d.expr(e.X, at)
		m2, ok2 := d.expr(e.Index, at)
		return m1 || m2, ok1 && ok2
	case *ast.SelectorExpr:
		// A field read (cfg.off): clean if the base is, mentions nothing.
		if f := selectedField(d.pkg, e); f != nil {
			_, ok := d.expr(e.X, at)
			return false, ok
		}
		// Qualified package constant/var read.
		if v, ok := d.pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return false, !mutableShared(v)
		}
		if _, isConst := d.pkg.Info.Uses[e.Sel].(*types.Const); isConst {
			return false, true
		}
		return false, false
	}
	// Constant expressions of any other shape are clean.
	if tv, found := d.pkg.Info.Types[e]; found && tv.Value != nil {
		return false, true
	}
	return false, false
}

// ident judges one identifier leaf.
func (d *idxDeriver) ident(id *ast.Ident, at ast.Stmt) (mention, ok bool) {
	obj := d.pkg.Info.Uses[id]
	if obj == nil {
		obj = d.pkg.Info.Defs[id]
	}
	if _, isConst := obj.(*types.Const); isConst {
		return false, true
	}
	v, isVar := obj.(*types.Var)
	if !isVar {
		return false, false
	}
	if v == d.idx || d.extra[v] {
		return true, true
	}
	if v.IsField() {
		return false, true
	}
	// A variable with a definition inside the literal: trace its binding.
	// A captured variable has no reaching definition here, so BindingAt
	// answers OpaqueVal and the read counts as a clean loop-invariant
	// leaf — if a worker writes it, slotdiscipline flags that write.
	return d.value(d.ssa.BindingAt(at, v))
}

// call judges a call leaf inside a subscript: conversions and the pure
// builtins pass values through; anything else is unprovable.
func (d *idxDeriver) call(call *ast.CallExpr, at ast.Stmt) (mention, ok bool) {
	if tv, found := d.pkg.Info.Types[call.Fun]; found && tv.IsType() && len(call.Args) == 1 {
		return d.expr(call.Args[0], at)
	}
	if id, found := ast.Unparen(call.Fun).(*ast.Ident); found {
		if b, isB := d.pkg.Info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "len", "cap":
				_, ok := d.expr(call.Args[0], at)
				return false, ok
			case "min", "max":
				mention, ok = false, true
				for _, a := range call.Args {
					m, o := d.expr(a, at)
					mention, ok = mention || m, ok && o
				}
				return mention, ok
			}
		}
	}
	return false, false
}

// value judges an SSA-lite value.
func (d *idxDeriver) value(v Value) (mention, ok bool) {
	switch v := v.(type) {
	case ParamVal:
		return v.V == d.idx || d.extra[v.V], true
	case ExprVal:
		return d.expr(v.E, v.At)
	case *PhiVal:
		if d.activePhis[v] {
			return true, true // neutral under the all-paths conjunction
		}
		d.activePhis[v] = true
		defer delete(d.activePhis, v)
		mention, ok = true, true
		for _, op := range v.Ops {
			m, o := d.value(op)
			mention, ok = mention && m, ok && o
		}
		return mention, ok
	case RangeVal:
		// An inner loop's own induction variable never derives from the
		// worker index, but reading it is clean.
		return false, true
	case MergeVal:
		mention, ok = false, true
		for _, op := range v.Ops {
			m, o := d.value(op)
			mention, ok = mention || m, ok && o
		}
		return mention, ok
	case OpaqueVal:
		return false, true // captured loop-invariant read (or a tracking gap)
	}
	return false, false
}

// mutableShared reports whether a package-level variable read is unsafe
// as a subscript leaf: mutable package state can change between workers.
// Package-level constants arrive as *types.Const and never reach here.
func mutableShared(v *types.Var) bool {
	return isPackageScoped(v)
}

// slotClass classifies what a local variable's binding aliases.
type slotClass int

const (
	// aliasLocal: frame-local storage only (composite literal, call
	// result, address of a local) — writes through it touch nothing
	// captured.
	aliasLocal slotClass = iota
	// aliasSlot: an index-derived slot of a captured container (&slots[i],
	// rows[i]) — writes through it stay inside the worker's own slot.
	aliasSlot
	// aliasShared: captured storage without an index-derived subscript.
	aliasShared
)

// classifyAlias judges what the binding of a literal-local pointer,
// slice, or struct aliases, given the capture set.
func (d *idxDeriver) classifyAlias(v Value, captured map[*types.Var]bool) slotClass {
	switch v := v.(type) {
	case ExprVal:
		return d.classifyAliasExpr(v.E, v.At, captured)
	case *PhiVal:
		if d.activePhis[v] {
			return aliasLocal
		}
		d.activePhis[v] = true
		defer delete(d.activePhis, v)
		worst := aliasLocal
		for _, op := range v.Ops {
			if c := d.classifyAlias(op, captured); c > worst {
				worst = c
			}
		}
		return worst
	case RangeVal:
		// A per-element alias from ranging over a captured container
		// (for _, row := range rows) is shared: the element is another
		// index's slot on all but one iteration.
		if root := rootOf(v.S.X); root != nil {
			if rv, ok := d.pkg.Info.Uses[root].(*types.Var); ok && captured[rv] {
				return aliasShared
			}
		}
		return aliasLocal
	case MergeVal:
		worst := aliasLocal
		for _, op := range v.Ops {
			if c := d.classifyAlias(op, captured); c > worst {
				worst = c
			}
		}
		return worst
	}
	return aliasLocal // params, opaque: nothing provably captured
}

// classifyAliasExpr judges an aliasing expression.
func (d *idxDeriver) classifyAliasExpr(e ast.Expr, at ast.Stmt, captured map[*types.Var]bool) slotClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return d.classifyAliasExpr(e.X, at, captured)
		}
	case *ast.IndexExpr:
		if root := rootOf(e.X); root != nil {
			if rv, ok := d.pkg.Info.Uses[root].(*types.Var); ok && captured[rv] {
				if d.derived(e.Index, at) {
					return aliasSlot
				}
				return aliasShared
			}
		}
		return d.classifyAliasExpr(e.X, at, captured)
	case *ast.SelectorExpr:
		return d.classifyAliasExpr(e.X, at, captured)
	case *ast.SliceExpr:
		return d.classifyAliasExpr(e.X, at, captured)
	case *ast.Ident:
		v, ok := d.pkg.Info.Uses[e].(*types.Var)
		if !ok {
			return aliasLocal
		}
		if captured[v] {
			if carriesReference(v.Type()) {
				return aliasShared
			}
			return aliasLocal
		}
		// A chain through another local: classify its binding.
		return d.classifyAlias(d.ssa.BindingAt(at, v), captured)
	}
	return aliasLocal
}

// atomicClaimVars finds literal-locals bound to an atomic counter claim —
// r := int(next.Add(1) - 1) — which hands out each index exactly once,
// so subscripts through r are slot-shaped (ExploreParallel's stream
// handout). The proof is that the value traces to a sync/atomic Add
// method call result through arithmetic and conversions only.
func atomicClaimVars(pkg *Package, lit *ast.FuncLit) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if !atomicClaimExpr(pkg, as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// atomicClaimExpr reports whether the expression is an atomic Add result
// adjusted by constants/conversions only.
func atomicClaimExpr(pkg *Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if tv, ok := pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return atomicClaimExpr(pkg, e.Args[0])
		}
		fn := resolvedFunc(pkg, e)
		return isMethod(fn, "sync/atomic", "Add")
	case *ast.BinaryExpr:
		lc := pkg.Info.Types[e.X].Value != nil
		rc := pkg.Info.Types[e.Y].Value != nil
		if lc == rc {
			return false // need exactly one claim side and one constant side
		}
		if lc {
			return atomicClaimExpr(pkg, e.Y)
		}
		return atomicClaimExpr(pkg, e.X)
	}
	return false
}

// atomicCall reports whether a call is a sync/atomic operation (typed
// method or legacy package function).
func atomicCall(pkg *Package, call *ast.CallExpr) bool {
	fn := resolvedFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}
