package lint

// persist.go is the persistence-dataflow layer under detlint's
// recovery-safety rules. The recoverable fault model (internal/sim
// fault.go, DESIGN.md §7) splits every sim.Recoverable implementor's
// state into a durable half (survives an amnesiac crash) and a volatile
// half (OnCrash wipes it). Which half a field lands in decides which
// theorem the object reproduces — Recoverable Consensus Numbers hinges
// exactly on what survives — so the split must be checkable, not
// conventional.
//
// The layer classifies every field of every Recoverable implementor:
//
//   - The OnCrash write set is inferred interprocedurally (callgraph
//     reachability from the OnCrash method, restricted to the declaring
//     package): a field OnCrash assigns, delete()s, or clear()s is
//     wiped.
//   - Annotations confirm the intent: //detlint:durable <why> and
//     //detlint:volatile <why> on the field's declaration line (or
//     stacked on the lines directly above it) pin the class; the
//     inference then audits the annotation instead of replacing it.
//   - //detlint:journaled <why> on a type nominates it as journaled;
//     //detlint:journal <why> marks its journal fields. The
//     journaldiscipline rule consumes these.
//
// The persistsplit rule (this file) reports the lattice's integrity
// findings: unannotated fields, contradictory or unjustified
// annotations, durable fields OnCrash wipes (amnesia), volatile fields
// it misses (ghost state), and annotations that attach to nothing.
// recoveryreads.go, journaldiscipline.go, and restartcoverage.go build
// their dataflow on top of the classification computed here, cached on
// the Module like the callgraph.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// persistClass is a field's place in the persistence lattice.
type persistClass int

const (
	persistUnknown persistClass = iota
	persistDurable
	persistVolatile
)

func (c persistClass) String() string {
	switch c {
	case persistDurable:
		return "durable"
	case persistVolatile:
		return "volatile"
	}
	return "unknown"
}

// Persistence annotation directive words.
const (
	annDurable   = "durable"
	annVolatile  = "volatile"
	annJournaled = "journaled"
	annJournal   = "journal"
)

// persistAnn is one parsed persistence annotation comment.
type persistAnn struct {
	// kind is the directive word: durable, volatile, journaled, journal.
	kind string
	// justified reports an inline justification after the directive.
	justified bool
	// pos locates the comment.
	pos token.Position
	// consumed is set when the annotation attaches to a field or type of
	// a Recoverable implementor; unconsumed annotations are findings.
	consumed bool
}

// persistField is the classification of one field of a Recoverable
// implementor.
type persistField struct {
	v     *types.Var
	owner *persistType
	// decl locates the field declaration.
	decl token.Position
	// wiped reports the field in OnCrash's interprocedural write set;
	// wipePos is the first wipe site in position order.
	wiped   bool
	wipePos token.Position
	// ann is the durable/volatile annotation, if any; conflict reports
	// both kinds present.
	ann      *persistAnn
	conflict bool
	// journal is the //detlint:journal mark, if any.
	journal *persistAnn
	// class is the final verdict: the annotation when present, the
	// OnCrash inference otherwise.
	class persistClass
}

// persistType is one sim.Recoverable implementor with its classified
// fields.
type persistType struct {
	named *types.Named
	pkg   *Package
	decl  token.Position
	// onCrash is the callgraph node of the type's OnCrash method (nil
	// when the method has no module declaration).
	onCrash *FuncNode
	// journaled is the //detlint:journaled nomination, if any.
	journaled *persistAnn
	fields    []*persistField
	byVar     map[*types.Var]*persistField
}

// name renders the type as pkgname.Type.
func (pt *persistType) name() string {
	return pt.pkg.Types.Name() + "." + pt.named.Obj().Name()
}

// persistInfo is the module-wide persistence classification, cached on
// the Module across the four recovery-safety rules.
type persistInfo struct {
	// types lists every Recoverable implementor in declaration order.
	types   []*persistType
	byNamed map[*types.Named]*persistType
	// byField maps every classified field to its record.
	byField map[*types.Var]*persistField
	// anns lists every persistence annotation per package, in file and
	// position order, for the misplaced-annotation audit.
	anns map[*Package][]*persistAnn
	// byLine indexes annotations by file name and line.
	byLine map[string]map[int][]*persistAnn
}

// persistInfo returns the module's persistence classification, building
// it on first use.
func (m *Module) persistInfo() *persistInfo {
	if m.persist == nil {
		m.persist = buildPersistInfo(m)
	}
	return m.persist
}

// recoverableInterface resolves the sim.Recoverable interface, or nil
// when the module has no simulator package (fixture-only loads).
func recoverableInterface(m *Module) *types.Interface {
	simPkg := m.Lookup(m.Path + "/internal/sim")
	if simPkg == nil {
		return nil
	}
	obj := simPkg.Types.Scope().Lookup("Recoverable")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func buildPersistInfo(m *Module) *persistInfo {
	info := &persistInfo{
		byNamed: make(map[*types.Named]*persistType),
		byField: make(map[*types.Var]*persistField),
		anns:    make(map[*Package][]*persistAnn),
		byLine:  make(map[string]map[int][]*persistAnn),
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					a := parsePersistAnn(m, c)
					if a == nil {
						continue
					}
					info.anns[pkg] = append(info.anns[pkg], a)
					byLine := info.byLine[a.pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*persistAnn)
						info.byLine[a.pos.Filename] = byLine
					}
					byLine[a.pos.Line] = append(byLine[a.pos.Line], a)
				}
			}
		}
	}
	iface := recoverableInterface(m)
	if iface == nil {
		return info
	}
	g := m.CallGraph()
	for _, named := range g.namedTypes {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			continue
		}
		pkg := m.Lookup(obj.Pkg().Path())
		if pkg == nil {
			continue
		}
		pt := &persistType{
			named: named,
			pkg:   pkg,
			decl:  m.Fset.Position(obj.Pos()),
			byVar: make(map[*types.Var]*persistField),
		}
		pt.journaled = info.attachAnn(pt.decl, nil, annJournaled)
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		// Field declaration lines, so a stacked annotation walk never
		// crosses into (or consumes an inline annotation of) another field.
		fieldLines := make(map[int]bool, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fieldLines[m.Fset.Position(st.Field(i).Pos()).Line] = true
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			pf := &persistField{v: fv, owner: pt, decl: m.Fset.Position(fv.Pos())}
			pf.attachFieldAnns(info, fieldLines)
			pt.fields = append(pt.fields, pf)
			pt.byVar[fv] = pf
			info.byField[fv] = pf
		}
		if fn := lookupConcreteMethod(named, "OnCrash"); fn != nil {
			pt.onCrash = g.NodeOf(fn)
		}
		info.types = append(info.types, pt)
		info.byNamed[named] = pt
	}
	for _, pt := range info.types {
		inferWipes(m, g, pt)
		for _, pf := range pt.fields {
			switch {
			case pf.ann != nil && pf.ann.kind == annDurable:
				pf.class = persistDurable
			case pf.ann != nil:
				pf.class = persistVolatile
			case pf.wiped:
				pf.class = persistVolatile
			default:
				pf.class = persistDurable
			}
		}
	}
	return info
}

// parsePersistAnn parses one comment into a persistence annotation, or
// nil when the comment is not one.
func parsePersistAnn(m *Module, c *ast.Comment) *persistAnn {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "detlint:")
	if !ok {
		return nil
	}
	word, tail, _ := strings.Cut(rest, " ")
	switch word {
	case annDurable, annVolatile, annJournaled, annJournal:
	default:
		return nil
	}
	return &persistAnn{
		kind:      word,
		justified: strings.TrimSpace(tail) != "",
		pos:       m.Fset.Position(c.Pos()),
	}
}

// attachAnn consumes and returns the first annotation of one of the
// kinds on the declaration's line or the stacked annotation lines
// directly above it. stop marks lines the upward walk must not cross
// (other field declarations); nil means no barrier.
func (info *persistInfo) attachAnn(decl token.Position, stop map[int]bool, kinds ...string) *persistAnn {
	byLine := info.byLine[decl.Filename]
	if byLine == nil {
		return nil
	}
	match := func(line int, inline bool) *persistAnn {
		if !inline && stop != nil && stop[line] {
			return nil // inline annotation of the declaration above
		}
		for _, a := range byLine[line] {
			for _, k := range kinds {
				if a.kind == k {
					a.consumed = true
					return a
				}
			}
		}
		return nil
	}
	if a := match(decl.Line, true); a != nil {
		return a
	}
	// Walk upward through the stacked annotation block.
	for line := decl.Line - 1; line > 0 && len(byLine[line]) > 0; line-- {
		if a := match(line, false); a != nil {
			return a
		}
		if stop != nil && stop[line] {
			break
		}
	}
	return nil
}

// attachFieldAnns binds the field's durable/volatile and journal
// annotations, recording a conflict when both classes appear.
func (pf *persistField) attachFieldAnns(info *persistInfo, fieldLines map[int]bool) {
	stop := make(map[int]bool, len(fieldLines))
	for l := range fieldLines {
		if l != pf.decl.Line {
			stop[l] = true
		}
	}
	pf.ann = info.attachAnn(pf.decl, stop, annDurable, annVolatile)
	if pf.ann != nil {
		// A second annotation of the opposite class is a contradiction.
		other := annVolatile
		if pf.ann.kind == annVolatile {
			other = annDurable
		}
		if second := info.attachAnn(pf.decl, stop, other); second != nil {
			pf.conflict = true
		}
	}
	pf.journal = info.attachAnn(pf.decl, stop, annJournal)
}

// inferWipes computes the type's OnCrash write set: every field written
// (assignment, ++/--, delete, clear) in code reachable from OnCrash
// within the declaring package.
func inferWipes(m *Module, g *CallGraph, pt *persistType) {
	if pt.onCrash == nil {
		return
	}
	own := pt.pkg
	reach := g.Reachable([]*FuncNode{pt.onCrash}, func(p *Package) bool { return p != own })
	for _, n := range g.sortedNodes() {
		if !reach[n] {
			continue
		}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					return true
				}
				for _, l := range x.Lhs {
					markWipe(m, pt, n.Pkg, l)
				}
			case *ast.IncDecStmt:
				markWipe(m, pt, n.Pkg, x.X)
			case *ast.CallExpr:
				if arg := builtinWipeArg(n.Pkg, x); arg != nil {
					markWipe(m, pt, n.Pkg, arg)
				}
			}
			return true
		})
	}
}

// markWipe records a wipe of one of pt's fields when the expression
// targets one.
func markWipe(m *Module, pt *persistType, pkg *Package, e ast.Expr) {
	f, _ := fieldTarget(pkg, e)
	pf := pt.byVar[f]
	if pf == nil {
		return
	}
	pos := m.Fset.Position(e.Pos())
	if !pf.wiped || posLess(pos, pf.wipePos) {
		pf.wipePos = pos
	}
	pf.wiped = true
}

// builtinWipeArg returns the wiped container expression of a delete()
// or clear() call, or nil.
func builtinWipeArg(pkg *Package, call *ast.CallExpr) ast.Expr {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	if !ok || (b.Name() != "delete" && b.Name() != "clear") || len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// persistScope reports whether pkg's Recoverable types are in the
// persistence rules' scope: the real tree under internal/ and cmd/,
// which the grafted lintfixture packages match by construction.
func persistScope(m *Module, pkg *Package) bool {
	return m.InScope(pkg, "internal", "cmd")
}

// AnalyzerPersistSplit returns the persistsplit rule: every field of a
// sim.Recoverable implementor must be declared durable or volatile, and
// the OnCrash write set must match the declaration — a wiped durable
// field is amnesia, an untouched volatile field is ghost state.
func AnalyzerPersistSplit() *Analyzer {
	return &Analyzer{
		Name: "persistsplit",
		Doc:  "fields of sim.Recoverable implementors declare durable/volatile, and OnCrash wipes exactly the volatile set",
		Run:  runPersistSplit,
	}
}

func runPersistSplit(m *Module) []Diagnostic {
	info := m.persistInfo()
	var out []Diagnostic
	for _, pt := range info.types {
		if !persistScope(m, pt.pkg) {
			continue
		}
		tn := pt.name()
		for _, pf := range pt.fields {
			name := pf.v.Name()
			if pf.conflict {
				out = append(out, Diagnostic{Pos: pf.decl, Msg: fmt.Sprintf(
					"field %s of %s carries both //detlint:durable and //detlint:volatile; a field lives in exactly one half of the persistence split",
					name, tn)})
				continue
			}
			if pf.ann == nil {
				out = append(out, Diagnostic{Pos: pf.decl, Msg: fmt.Sprintf(
					"field %s of %s (a sim.Recoverable implementor) has no //detlint:durable or //detlint:volatile annotation; OnCrash analysis infers it %s — declare the intent",
					name, tn, pf.class)})
				continue
			}
			if !pf.ann.justified {
				out = append(out, Diagnostic{Pos: pf.ann.pos, Msg: fmt.Sprintf(
					"//detlint:%s on field %s of %s must carry an inline justification",
					pf.ann.kind, name, tn)})
			}
			switch {
			case pf.ann.kind == annDurable && pf.wiped:
				out = append(out, Diagnostic{Pos: pf.wipePos, Msg: fmt.Sprintf(
					"OnCrash wipes field %s of %s, which is annotated //detlint:durable — amnesia: a crash would lose state the model says survives",
					name, tn)})
			case pf.ann.kind == annVolatile && !pf.wiped:
				out = append(out, Diagnostic{Pos: pf.decl, Msg: fmt.Sprintf(
					"OnCrash never wipes field %s of %s, which is annotated //detlint:volatile — ghost state: its contents would survive a crash the model says erases them",
					name, tn)})
			}
		}
		if pt.journaled != nil && !pt.journaled.justified {
			out = append(out, Diagnostic{Pos: pt.journaled.pos, Msg: fmt.Sprintf(
				"//detlint:journaled on %s must carry an inline justification", tn)})
		}
		for _, pf := range pt.fields {
			if pf.journal != nil && !pf.journal.justified {
				out = append(out, Diagnostic{Pos: pf.journal.pos, Msg: fmt.Sprintf(
					"//detlint:journal on field %s of %s must carry an inline justification",
					pf.v.Name(), tn)})
			}
		}
	}
	for _, pkg := range m.Pkgs {
		if !persistScope(m, pkg) {
			continue
		}
		for _, a := range info.anns[pkg] {
			if a.consumed {
				continue
			}
			out = append(out, Diagnostic{Pos: a.pos, Msg: fmt.Sprintf(
				"//detlint:%s attaches to no field or type of a sim.Recoverable implementor; persistence annotations only mean something on recoverable state",
				a.kind)})
		}
	}
	return out
}
