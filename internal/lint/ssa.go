package lint

// ssa.go converts a function body into an SSA-lite def-use value graph
// on top of the CFG. It is "lite" in the sense that no instruction
// stream is renamed: variables keep their types.Var identity, and the
// graph answers one question — *which value can this variable hold at
// this statement* — through reaching-definition lookups with φ-nodes at
// CFG joins (maximal φ-placement; every join block merges, dominance
// frontiers are not computed). That is exactly the granularity the
// decisionflow rule needs to taint-track a decided value back to its
// sources, and nothing a lint does needs more.
//
// The builder is deliberately conservative about aliasing: a variable
// whose address is taken, or that is written from inside a nested
// function literal, is opaque — lookups return OpaqueVal, which taint
// tracing treats as a clean leaf. The gap keeps the rule quiet rather
// than wrong-side noisy, and the repository style (no pointer juggling
// on decision paths) keeps it small.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Value is one node of a function's SSA-lite value graph.
type Value interface{ value() }

// ParamVal is the incoming value of a parameter, receiver, or named
// result at function entry.
type ParamVal struct {
	// V is the parameter's object.
	V *types.Var
}

// ExprVal is the value an expression evaluates to, in the context of
// the block statement that evaluates it (the context fixes which
// definitions reach identifiers inside E).
type ExprVal struct {
	// E is the defining expression.
	E ast.Expr
	// At is the block statement E is evaluated in.
	At ast.Stmt
}

// PhiVal merges the values a variable can hold when control reaches a
// CFG join from different predecessors.
type PhiVal struct {
	// Var is the merged variable.
	Var *types.Var
	// Block is the join block the φ belongs to.
	Block *Block
	// Ops are the incoming values, one per predecessor edge, in
	// predecessor order. A loop-carried φ may contain itself.
	Ops []Value
}

// RangeVal is a key or value variable bound by a range statement; the
// ranged source's type decides whether the binding is order-sensitive
// (maps) or deterministic (slices, arrays, strings, integers).
type RangeVal struct {
	// S is the range statement.
	S *ast.RangeStmt
	// IsKey distinguishes the key binding from the value binding.
	IsKey bool
}

// MergeVal joins several contributing values without a CFG join: an
// augmented assignment (x += y) merges the old binding with the
// operand.
type MergeVal struct {
	// Ops are the contributing values.
	Ops []Value
	// Op is the augmented-assignment token (token.ADD_ASSIGN for +=).
	Op token.Token
	// Var is the accumulated variable; its type decides whether the
	// fold is commutative (numeric +=) or ordered (string +=).
	Var *types.Var
}

// OpaqueVal is a value the builder cannot track: an address-taken or
// closure-written variable, a zero value, an unreachable lookup. Taint
// tracing treats it as a clean leaf.
type OpaqueVal struct {
	// Why records the reason, for debugging.
	Why string
}

func (ParamVal) value()  {}
func (ExprVal) value()   {}
func (*PhiVal) value()   {}
func (RangeVal) value()  {}
func (MergeVal) value()  {}
func (OpaqueVal) value() {}

// FuncSSA is the SSA-lite value graph of one declared function body.
type FuncSSA struct {
	// Pkg is the package the function belongs to.
	Pkg *Package
	// CFG is the underlying control-flow graph.
	CFG *CFG

	loc    map[ast.Stmt]stmtLoc
	defs   map[*Block][]ssaDef
	opaque map[*types.Var]bool
	params map[*types.Var]bool
	phis   map[phiKey]*PhiVal
}

type stmtLoc struct {
	b   *Block
	idx int
}

// ssaDef is one shallow definition inside a block. An augment def (x +=
// y) contributes its value on top of the binding reaching it instead of
// replacing it.
type ssaDef struct {
	idx     int
	v       *types.Var
	val     Value
	augment bool
	op      token.Token
}

type phiKey struct {
	b *Block
	v *types.Var
}

// BuildSSA builds the value graph for a declared function. Nested
// function literals are opaque (their bodies are separate CFGs and are
// not modeled).
func BuildSSA(pkg *Package, decl *ast.FuncDecl) *FuncSSA {
	return buildSSA(pkg, decl.Recv, decl.Type, decl.Body)
}

// BuildLitSSA builds the value graph for one function literal's body:
// the literal's parameters are the entry values, and a captured
// variable — declared outside the literal — has no reaching definition
// inside it, so lookups return OpaqueVal, which is exactly the "cannot
// prove anything about the enclosing frame" answer the parallel rules
// need. The capture layer (closure.go) links captured identities back
// to the enclosing function where a proof demands it.
func BuildLitSSA(pkg *Package, lit *ast.FuncLit) *FuncSSA {
	return buildSSA(pkg, nil, lit.Type, lit.Body)
}

// buildSSA is the shared builder behind BuildSSA and BuildLitSSA.
func buildSSA(pkg *Package, recv *ast.FieldList, typ *ast.FuncType, body *ast.BlockStmt) *FuncSSA {
	s := &FuncSSA{
		Pkg:    pkg,
		CFG:    BuildCFG(body),
		loc:    make(map[ast.Stmt]stmtLoc),
		defs:   make(map[*Block][]ssaDef),
		opaque: make(map[*types.Var]bool),
		params: make(map[*types.Var]bool),
		phis:   make(map[phiKey]*PhiVal),
	}
	s.collectParams(recv, typ)
	s.collectOpaque(body)
	for _, b := range s.CFG.Blocks {
		for i, st := range b.Stmts {
			if _, seen := s.loc[st]; !seen {
				s.loc[st] = stmtLoc{b: b, idx: i}
			}
			s.defs[b] = append(s.defs[b], s.defsOf(st, i)...)
		}
	}
	return s
}

// collectParams registers the receiver, parameters, and named results.
func (s *FuncSSA) collectParams(recv *ast.FieldList, typ *ast.FuncType) {
	fields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := s.Pkg.Info.Defs[name].(*types.Var); ok {
					s.params[v] = true
				}
			}
		}
	}
	fields(recv)
	fields(typ.Params)
	fields(typ.Results)
}

// collectOpaque marks variables the graph cannot track: address-taken
// anywhere in the body, or assigned from inside a nested function
// literal (the literal runs at an unknown point relative to the
// enclosing statements).
func (s *FuncSSA) collectOpaque(body *ast.BlockStmt) {
	markLHS := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := s.Pkg.Info.Uses[id].(*types.Var); ok {
				s.opaque[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markLHS(n.X)
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.AssignStmt:
					for _, l := range x.Lhs {
						markLHS(l)
					}
				case *ast.IncDecStmt:
					markLHS(x.X)
				}
				return true
			})
			return false
		}
		return true
	})
}

// defsOf extracts the shallow definitions a block member contributes.
func (s *FuncSSA) defsOf(st ast.Stmt, idx int) []ssaDef {
	var out []ssaDef
	defVar := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if v, ok := s.Pkg.Info.Defs[id].(*types.Var); ok {
			return v
		}
		if v, ok := s.Pkg.Info.Uses[id].(*types.Var); ok {
			return v
		}
		return nil
	}
	switch st := st.(type) {
	case *ast.AssignStmt:
		switch st.Tok {
		case token.ASSIGN, token.DEFINE:
			for i, l := range st.Lhs {
				v := defVar(l)
				if v == nil {
					continue
				}
				rhs := st.Rhs[0]
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				out = append(out, ssaDef{idx: idx, v: v, val: ExprVal{E: rhs, At: st}})
			}
		default: // augmented assignment: x op= y
			if v := defVar(st.Lhs[0]); v != nil {
				out = append(out, ssaDef{idx: idx, v: v,
					val: ExprVal{E: st.Rhs[0], At: st}, augment: true, op: st.Tok})
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v, ok := s.Pkg.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				var val Value = OpaqueVal{Why: "zero value"}
				if len(vs.Values) > 0 {
					rhs := vs.Values[0]
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					}
					val = ExprVal{E: rhs, At: st}
				}
				out = append(out, ssaDef{idx: idx, v: v, val: val})
			}
		}
	case *ast.RangeStmt:
		if v := defVar(st.Key); v != nil {
			out = append(out, ssaDef{idx: idx, v: v, val: RangeVal{S: st, IsKey: true}})
		}
		if st.Value != nil {
			if v := defVar(st.Value); v != nil {
				out = append(out, ssaDef{idx: idx, v: v, val: RangeVal{S: st}})
			}
		}
	}
	return out
}

// BindingAt returns the value the variable can hold immediately before
// the given block statement executes. Statements not in the CFG (inside
// function literals) and untracked variables yield OpaqueVal.
func (s *FuncSSA) BindingAt(st ast.Stmt, v *types.Var) Value {
	if s.opaque[v] {
		return OpaqueVal{Why: "address-taken or closure-written"}
	}
	loc, ok := s.loc[st]
	if !ok {
		return OpaqueVal{Why: "statement outside the function CFG"}
	}
	return s.lookup(loc.b, loc.idx, v)
}

const blockEnd = 1 << 30

// lookup finds the reaching value of v before statement index `before`
// in block b, walking into predecessors and materializing φ-nodes at
// joins.
func (s *FuncSSA) lookup(b *Block, before int, v *types.Var) Value {
	defs := s.defs[b]
	for i := len(defs) - 1; i >= 0; i-- {
		d := defs[i]
		if d.idx >= before || d.v != v {
			continue
		}
		if !d.augment {
			return d.val
		}
		return MergeVal{Ops: []Value{d.val, s.lookup(b, d.idx, v)}, Op: d.op, Var: v}
	}
	switch len(b.Preds) {
	case 0:
		if s.params[v] {
			return ParamVal{V: v}
		}
		return OpaqueVal{Why: "no reaching definition"}
	case 1:
		return s.lookup(b.Preds[0], blockEnd, v)
	default:
		key := phiKey{b: b, v: v}
		if phi, ok := s.phis[key]; ok {
			return phi
		}
		phi := &PhiVal{Var: v, Block: b}
		s.phis[key] = phi
		for _, p := range b.Preds {
			phi.Ops = append(phi.Ops, s.lookup(p, blockEnd, v))
		}
		return phi
	}
}
