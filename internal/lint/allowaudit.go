package lint

// allowaudit keeps the escape hatch honest. Every //detlint:allow is a
// standing debt: a human judged a finding acceptable at some commit.
// Code moves on — the guarded access gains a mutex, the loop becomes
// bounded — and the annotation stays behind, silently licensed to
// suppress the *next* genuine finding on that line. This rule reports
// every justified allow that suppressed nothing during the run, so dead
// annotations are removed instead of accumulating.
//
// The rule is a driver special case, not an ordinary pass: staleness is
// only known after every other analyzer has run and marked the allows
// it consumed, so Run() in lint.go executes it last. It also refuses to
// judge an allow whose named rules were not all selected this run (and
// judges `all` only under the full suite) — a partial -rules run proves
// nothing about what the skipped rules would have suppressed.

import (
	"fmt"
	"sort"
	"strings"
)

const allowAuditName = "allowaudit"

// AnalyzerAllowAudit returns the allowaudit rule. The returned Run is a
// stub: the driver recognizes the rule by name and produces its
// findings after suppression, via (*Module).staleAllows.
func AnalyzerAllowAudit() *Analyzer {
	return &Analyzer{
		Name: allowAuditName,
		Doc:  "detlint:allow annotations that no longer suppress any finding are dead and must be removed",
		Run:  func(*Module) []Diagnostic { return nil },
	}
}

// staleAllows reports every justified allow mark that went unused, when
// the selected rule set is broad enough to judge it.
func (m *Module) staleAllows(selected map[string]bool) []Diagnostic {
	fullSuite := true
	for _, a := range Analyzers() {
		if !selected[a.Name] {
			fullSuite = false
			break
		}
	}
	var out []Diagnostic
	files := make([]string, 0, len(m.allows))
	for f := range m.allows {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, a := range m.allows[f] {
			// Malformed marks are allowProblems' findings, not stale ones.
			if !a.justified || len(a.rules) == 0 || a.used {
				continue
			}
			if !judgeable(a, selected, fullSuite) {
				continue
			}
			out = append(out, Diagnostic{Pos: a.pos, Rule: allowAuditName,
				Msg: fmt.Sprintf("stale detlint:allow (%s): the annotation suppressed no finding this run; remove it or re-justify it",
					ruleList(a))})
		}
	}
	return out
}

// judgeable reports whether this run exercised every rule the mark
// names. A name matching no analyzer of the full suite can never
// suppress and is always judgeable.
func judgeable(a *allowMark, selected map[string]bool, fullSuite bool) bool {
	if a.rules["all"] {
		return fullSuite
	}
	known := make(map[string]bool)
	for _, an := range Analyzers() {
		known[an.Name] = true
	}
	for _, r := range strings.Split(ruleList(a), ",") {
		if known[r] && !selected[r] {
			return false
		}
	}
	return true
}

func ruleList(a *allowMark) string {
	rules := make([]string, 0, len(a.rules))
	for r := range a.rules {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	return strings.Join(rules, ",")
}
