package lint

// recoveryreads: code reachable from a recovery procedure must not read
// a volatile field before re-deriving it. A crash wipes the volatile
// half of every Recoverable object (persist.go classifies which half
// that is), so recovery code observing a volatile field before writing
// it reads post-crash zero state — the exact bug class the recovery
// step exists to prevent, and one no test catches unless the crash
// lands on the right step.
//
// The analysis is a must-write-before-read dataflow, the dual of the
// must-hold lockset (lockset.go): per CFG block, the state is the set
// of volatile fields written on *every* path from entry; joins
// intersect; a read of a volatile field outside the set is a finding.
// There is no kill — within one function a re-derived field stays
// re-derived. Roots are the module's Recovery methods and every
// function returning a sim.RecoveryProc; reachability (minus the
// simulator itself, whose Invoke fans out to every Apply method through
// the interface) pulls helpers in, with the witness attributing each
// finding to the recovery root that reaches it. Each function —
// including each closure body, the usual shape of a RecoveryProc — is
// analyzed with an empty entry set: a conservative, modular
// approximation (a caller that already re-derived the field still
// counts as a miss in the callee; justify those with an allow).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerRecoveryReads returns the recoveryreads rule.
func AnalyzerRecoveryReads() *Analyzer {
	return &Analyzer{
		Name: "recoveryreads",
		Doc:  "recovery code re-derives volatile fields before reading them (must-write-before-read)",
		Run:  runRecoveryReads,
	}
}

func runRecoveryReads(m *Module) []Diagnostic {
	info := m.persistInfo()
	if len(info.byField) == 0 {
		return nil
	}
	g := m.CallGraph()
	var roots []*FuncNode
	for _, n := range g.sortedNodes() {
		if isRecoveryRoot(m, n) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	simPath := m.Path + "/internal/sim"
	witness := g.ReachableWitness(roots, func(p *Package) bool { return p.Path == simPath })
	var out []Diagnostic
	for _, n := range g.sortedNodes() {
		w, ok := witness[n]
		if !ok || !persistScope(m, n.Pkg) {
			continue
		}
		via := ""
		if w != n {
			via = fmt.Sprintf(" (recovery code reachable from %s)", funcLabel(w))
		}
		for _, body := range FuncBodies(n.Decl) {
			out = append(out, recoveryReadsInBody(m, info, n, body, via)...)
		}
	}
	return out
}

// isRecoveryRoot reports a recovery entry point: a method named
// Recovery, or a function with a sim.RecoveryProc in its results (the
// closure-returning idiom of internal/recoverable).
func isRecoveryRoot(m *Module, n *FuncNode) bool {
	if n.Decl.Recv != nil && n.Decl.Name.Name == "Recovery" {
		return true
	}
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	simPath := m.Path + "/internal/sim"
	for i := 0; i < sig.Results().Len(); i++ {
		nb := namedBase(sig.Results().At(i).Type())
		if nb != nil && nb.Obj().Name() == "RecoveryProc" &&
			nb.Obj().Pkg() != nil && nb.Obj().Pkg().Path() == simPath {
			return true
		}
	}
	return false
}

// recoveryReadsInBody runs the must-write-before-read dataflow over one
// function (or closure) body.
func recoveryReadsInBody(m *Module, info *persistInfo, n *FuncNode, body *ast.BlockStmt, via string) []Diagnostic {
	cfg := BuildCFG(body)
	in := make(map[*Block][]*types.Var)
	reached := map[*Block]bool{cfg.Entry: true}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := recoveryTransfer(n.Pkg, info, b, in[b], nil)
		for _, s := range b.Succs {
			if !reached[s] {
				reached[s] = true
				in[s] = out
				work = append(work, s)
				continue
			}
			merged := intersectLocks(in[s], out)
			if !equalLocks(merged, in[s]) {
				in[s] = merged
				work = append(work, s)
			}
		}
	}
	var out []Diagnostic
	emitted := make(map[token.Pos]bool)
	for _, b := range cfg.Blocks {
		if !reached[b] {
			continue
		}
		recoveryTransfer(n.Pkg, info, b, in[b], func(pf *persistField, sel *ast.SelectorExpr) {
			if emitted[sel.Pos()] {
				return
			}
			emitted[sel.Pos()] = true
			out = append(out, Diagnostic{
				Pos: m.Fset.Position(sel.Pos()),
				Msg: fmt.Sprintf("%s reads volatile field %s of %s before re-deriving it%s; a crash wiped the field, so this read observes post-crash zero state",
					funcLabel(n), pf.v.Name(), pf.owner.name(), via),
			})
		})
	}
	return out
}

// recoveryTransfer applies one block to the must-written set, invoking
// emit (when non-nil) for every volatile read outside the set. Within a
// statement, reads are checked against the state before the statement's
// own writes take effect (x = x reads the stale value).
func recoveryTransfer(pkg *Package, info *persistInfo, b *Block, written []*types.Var, emit func(*persistField, *ast.SelectorExpr)) []*types.Var {
	for _, st := range b.Stmts {
		var writes []*types.Var
		// A selector that is the target of a plain assignment (or a
		// delete/clear) re-derives the field rather than reading it; the
		// target of ++/--/op= reads the old value first and stays a read.
		targets := make(map[ast.Expr]bool)
		inspectShallow(st, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					return true
				}
				for _, l := range x.Lhs {
					if f, _ := fieldTarget(pkg, l); f != nil {
						if pf := info.byField[f]; pf != nil && pf.class == persistVolatile {
							writes = append(writes, f)
							if x.Tok == token.ASSIGN {
								targets[targetSelector(l)] = true
							}
						}
					}
				}
			case *ast.IncDecStmt:
				if f, _ := fieldTarget(pkg, x.X); f != nil {
					if pf := info.byField[f]; pf != nil && pf.class == persistVolatile {
						writes = append(writes, f)
					}
				}
			case *ast.CallExpr:
				if arg := builtinWipeArg(pkg, x); arg != nil {
					if f, _ := fieldTarget(pkg, arg); f != nil {
						if pf := info.byField[f]; pf != nil && pf.class == persistVolatile {
							writes = append(writes, f)
							targets[targetSelector(arg)] = true
						}
					}
				}
			}
			return true
		})
		if emit != nil {
			inspectShallow(st, func(x ast.Node) bool {
				sel, ok := x.(*ast.SelectorExpr)
				if !ok || targets[sel] {
					return true
				}
				f := selectedField(pkg, sel)
				if f == nil {
					return true
				}
				pf := info.byField[f]
				if pf == nil || pf.class != persistVolatile || hasLock(written, f) {
					return true
				}
				emit(pf, sel)
				return true
			})
		}
		for _, f := range writes {
			written = addLock(written, f)
		}
	}
	return written
}

// targetSelector unwraps an assignment target to the selector that
// names the written field, for exclusion from the read scan.
func targetSelector(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}
