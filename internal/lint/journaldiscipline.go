package lint

// journaldiscipline: on methods of journaled Recoverable types, every
// durable write must flow through the journal append before the method
// responds, and the response itself must derive from what was
// journaled. The journaled-operation recipe (internal/recoverable,
// DESIGN.md §7) makes an operation idempotent under crash-restart
// re-invocation by recording (opid, response) in the same atomic step
// as the durable mutation; a durable write the journal never covers is
// applied twice after a restart, and a response computed off to the
// side of the journal answers a re-invocation differently than the
// original call.
//
// A type opts in with //detlint:journaled <why> on its declaration and
// //detlint:journal <why> on its journal fields (persist.go parses
// both). The rule then runs a may-analysis over each method: the state
// is the set of durable non-journal write sites not yet followed by a
// journal write on some path (union joins); any such site still pending
// at a return is a finding, and a return of sim.Respond(x) after a
// durable mutation must pass a journal field, a constant, or a value
// the SSA-lite graph proves identical to one stored into the journal.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerJournalDiscipline returns the journaldiscipline rule.
func AnalyzerJournalDiscipline() *Analyzer {
	return &Analyzer{
		Name: "journaldiscipline",
		Doc:  "durable writes on journaled types precede the journal append, and responses derive from the journal",
		Run:  runJournalDiscipline,
	}
}

func runJournalDiscipline(m *Module) []Diagnostic {
	info := m.persistInfo()
	g := m.CallGraph()
	var out []Diagnostic
	for _, pt := range info.types {
		if !persistScope(m, pt.pkg) {
			continue
		}
		tn := pt.name()
		if pt.journaled == nil {
			for _, pf := range pt.fields {
				if pf.journal != nil {
					out = append(out, Diagnostic{Pos: pf.decl, Msg: fmt.Sprintf(
						"field %s of %s is marked //detlint:journal but the type carries no //detlint:journaled nomination",
						pf.v.Name(), tn)})
				}
			}
			continue
		}
		var journal []*types.Var
		for _, pf := range pt.fields {
			if pf.journal == nil {
				continue
			}
			if pf.class != persistDurable {
				out = append(out, Diagnostic{Pos: pf.decl, Msg: fmt.Sprintf(
					"journal field %s of %s is volatile; a journal the crash wipes cannot make operations idempotent",
					pf.v.Name(), tn)})
			}
			journal = append(journal, pf.v)
		}
		if len(journal) == 0 {
			out = append(out, Diagnostic{Pos: pt.journaled.pos, Msg: fmt.Sprintf(
				"journaled type %s nominates no //detlint:journal fields; mark the per-process operation journal", tn)})
			continue
		}
		for _, n := range g.sortedNodes() {
			if n.Decl.Recv == nil || n.Decl.Name.Name == "OnCrash" {
				continue
			}
			sig, ok := n.Fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			nb := namedBase(sig.Recv().Type())
			if nb == nil || nb.Obj() != pt.named.Obj() {
				continue
			}
			out = append(out, journalFlowInMethod(m, pt, journal, n)...)
		}
	}
	return out
}

// jwrite is one pending durable write site awaiting its journal append.
type jwrite struct {
	f   *types.Var
	pos token.Pos
}

// jstate is the may-state at a CFG point: the pending unjournaled
// durable writes, plus whether any path mutated durable state at all
// (which arms the response check).
type jstate struct {
	pending []jwrite
	mutated bool
}

func (s jstate) equal(o jstate) bool {
	if s.mutated != o.mutated || len(s.pending) != len(o.pending) {
		return false
	}
	for i := range s.pending {
		if s.pending[i] != o.pending[i] {
			return false
		}
	}
	return true
}

func (s jstate) union(o jstate) jstate {
	out := jstate{mutated: s.mutated || o.mutated}
	out.pending = append(out.pending, s.pending...)
	for _, w := range o.pending {
		if !containsJwrite(out.pending, w) {
			out.pending = append(out.pending, w)
		}
	}
	sortJwrites(out.pending)
	return out
}

func containsJwrite(set []jwrite, w jwrite) bool {
	for _, x := range set {
		if x == w {
			return true
		}
	}
	return false
}

func sortJwrites(set []jwrite) {
	for i := 1; i < len(set); i++ {
		for j := i; j > 0 && set[j].pos < set[j-1].pos; j-- {
			set[j], set[j-1] = set[j-1], set[j]
		}
	}
}

// journalStore is one statement assigning a plain identifier into a
// journal field — the value the response may legitimately return.
type journalStore struct {
	stmt ast.Stmt
	v    *types.Var
}

// journalFlowInMethod runs the pending-writes dataflow over one method
// of a journaled type.
func journalFlowInMethod(m *Module, pt *persistType, journal []*types.Var, n *FuncNode) []Diagnostic {
	body := n.Decl.Body
	cfg := BuildCFG(body)
	ssa := BuildSSA(n.Pkg, n.Decl)
	stores := collectJournalStores(n.Pkg, pt, journal, body)

	in := make(map[*Block]jstate)
	reached := map[*Block]bool{cfg.Entry: true}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := journalTransfer(n.Pkg, pt, journal, b, in[b], nil)
		for _, s := range b.Succs {
			if !reached[s] {
				reached[s] = true
				in[s] = out
				work = append(work, s)
				continue
			}
			merged := in[s].union(out)
			if !merged.equal(in[s]) {
				in[s] = merged
				work = append(work, s)
			}
		}
	}
	var out []Diagnostic
	emitted := make(map[token.Pos]bool)
	emit := func(d Diagnostic, at token.Pos) {
		if emitted[at] {
			return
		}
		emitted[at] = true
		out = append(out, d)
	}
	for _, b := range cfg.Blocks {
		if !reached[b] {
			continue
		}
		journalTransfer(n.Pkg, pt, journal, b, in[b], func(ret *ast.ReturnStmt, st jstate) {
			for _, w := range st.pending {
				emit(Diagnostic{
					Pos: m.Fset.Position(w.pos),
					Msg: fmt.Sprintf("durable write to field %s of %s in %s reaches a return without a journal append after it; write-ahead order requires journaling (opid, response) in the same step",
						w.f.Name(), pt.name(), funcLabel(n)),
				}, w.pos)
			}
			if st.mutated {
				if d, bad := checkJournalResponse(m, n, pt, journal, ssa, stores, ret); bad {
					emit(d, ret.Pos())
				}
			}
		})
	}
	return out
}

// journalTransfer applies one block to the pending-writes state,
// invoking atReturn (when non-nil) for every return statement with the
// state reaching it.
func journalTransfer(pkg *Package, pt *persistType, journal []*types.Var, b *Block, st jstate, atReturn func(*ast.ReturnStmt, jstate)) jstate {
	isJournal := func(f *types.Var) bool {
		for _, j := range journal {
			if j == f {
				return true
			}
		}
		return false
	}
	apply := func(e ast.Expr) {
		f, _ := fieldTarget(pkg, e)
		pf := pt.byVar[f]
		if pf == nil {
			return
		}
		if isJournal(f) {
			st.pending = nil // the append commits everything written so far
			st.mutated = true
			return
		}
		if pf.class == persistDurable {
			w := jwrite{f: f, pos: e.Pos()}
			if !containsJwrite(st.pending, w) {
				st.pending = append(st.pending, w)
				sortJwrites(st.pending)
			}
			st.mutated = true
		}
	}
	for _, s := range b.Stmts {
		if ret, ok := s.(*ast.ReturnStmt); ok && atReturn != nil {
			atReturn(ret, st)
		}
		inspectShallow(s, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					return true
				}
				for _, l := range x.Lhs {
					apply(l)
				}
			case *ast.IncDecStmt:
				apply(x.X)
			case *ast.CallExpr:
				if arg := builtinWipeArg(pkg, x); arg != nil {
					apply(arg)
				}
			}
			return true
		})
	}
	return st
}

// collectJournalStores gathers the statements that store a plain
// identifier into a journal field, in source order.
func collectJournalStores(pkg *Package, pt *persistType, journal []*types.Var, body *ast.BlockStmt) []journalStore {
	isJournal := func(f *types.Var) bool {
		for _, j := range journal {
			if j == f {
				return true
			}
		}
		return false
	}
	var out []journalStore
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			f, _ := fieldTarget(pkg, l)
			if f == nil || !isJournal(f) {
				continue
			}
			id, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
				out = append(out, journalStore{stmt: as, v: v})
			}
		}
		return true
	})
	return out
}

// checkJournalResponse decides whether a return after a durable
// mutation answers from the journal. Accepted shapes: a non-Respond
// return (not an op response), a constant or nil argument, an argument
// mentioning a journal field, or a plain identifier whose SSA-lite
// binding at the return equals its binding at a journal store (the
// `r := ...; journal = r; return Respond(r)` idiom).
func checkJournalResponse(m *Module, n *FuncNode, pt *persistType, journal []*types.Var, ssa *FuncSSA, stores []journalStore, ret *ast.ReturnStmt) (Diagnostic, bool) {
	if len(ret.Results) != 1 {
		return Diagnostic{}, false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return Diagnostic{}, false
	}
	fn := resolvedFunc(n.Pkg, call)
	if !isFunc(fn, m.Path+"/internal/sim", "Respond") {
		return Diagnostic{}, false
	}
	arg := ast.Unparen(call.Args[0])
	if tv, ok := n.Pkg.Info.Types[arg]; ok && (tv.Value != nil || tv.IsNil()) {
		return Diagnostic{}, false
	}
	mentionsJournal := false
	ast.Inspect(arg, func(x ast.Node) bool {
		if sel, ok := x.(*ast.SelectorExpr); ok {
			f := selectedField(n.Pkg, sel)
			for _, j := range journal {
				if f == j {
					mentionsJournal = true
				}
			}
		}
		return !mentionsJournal
	})
	if mentionsJournal {
		return Diagnostic{}, false
	}
	if id, ok := arg.(*ast.Ident); ok {
		if v, ok := n.Pkg.Info.Uses[id].(*types.Var); ok {
			atRet := ssa.BindingAt(ret, v)
			for _, s := range stores {
				if s.v == v && sameBinding(ssa.BindingAt(s.stmt, v), atRet) {
					return Diagnostic{}, false
				}
			}
		}
	}
	return Diagnostic{
		Pos: m.Fset.Position(ret.Pos()),
		Msg: fmt.Sprintf("response of %s does not derive from the journal of %s after a durable mutation; return the journaled response so a re-invocation after restart answers identically",
			funcLabel(n), pt.name()),
	}, true
}

// sameBinding compares two SSA-lite values for definite identity.
// Opaque and merge values never count — when the graph cannot prove the
// bindings equal, the response check stays a finding.
func sameBinding(a, b Value) bool {
	switch av := a.(type) {
	case ExprVal:
		bv, ok := b.(ExprVal)
		return ok && av == bv
	case ParamVal:
		bv, ok := b.(ParamVal)
		return ok && av == bv
	case RangeVal:
		bv, ok := b.(RangeVal)
		return ok && av == bv
	case *PhiVal:
		bv, ok := b.(*PhiVal)
		return ok && av == bv
	}
	return false
}
