package lint

// cache.go makes detlint incremental. Loading and type-checking the
// whole module from source dominates a run's cost; the overwhelmingly
// common case — nothing changed since the last run — should not pay it.
// The cache key is a content hash over everything a run can observe:
// the detlint version, the selected rule names, go.mod, EXPERIMENTS.md
// (facadeparity reads it), .detlint.hot (the hot rules' budgets), and
// every .go file of the module including _test.go files
// (schedulecoverage parses tests). If the key matches,
// the cached report — findings and all — is the run's result, bit for
// bit; detlint still exits nonzero on cached findings.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CacheFileName is the cache's location relative to the module root.
const CacheFileName = ".detlint.cache"

// CachedRun is what the cache persists: the key it was computed under
// and the full report.
type CachedRun struct {
	// Key is the module content hash the report corresponds to.
	Key string `json:"key"`
	// Report is the complete run result.
	Report *Report `json:"report"`
}

// CacheKey computes the content hash of everything a run over the
// module at root with the given analyzers can observe.
func CacheKey(root string, analyzers []*Analyzer) (string, error) {
	return cacheKeyVersioned(root, analyzers, detlintVersion)
}

// cacheKeyVersioned is CacheKey with the version pinned explicitly, so
// the tests can prove a version bump invalidates every cached report.
func cacheKeyVersioned(root string, analyzers []*Analyzer, version string) (string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "version=%s\n", version)
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	fmt.Fprintf(h, "rules=%s\n", strings.Join(names, ","))

	var files []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	for _, extra := range []string{"go.mod", "EXPERIMENTS.md", HotBudgetFileName} {
		p := filepath.Join(root, extra)
		if _, err := os.Stat(p); err == nil {
			files = append(files, p)
		}
	}
	sort.Strings(files)
	for _, path := range files {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return "", err
		}
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		fh := sha256.New()
		_, cpErr := io.Copy(fh, f)
		f.Close()
		if cpErr != nil {
			return "", cpErr
		}
		fmt.Fprintf(h, "%s %x\n", filepath.ToSlash(rel), fh.Sum(nil))
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// LoadCache returns the cached run stored under root, or nil if there is
// none or it is unreadable (a corrupt cache means a fresh run, never an
// error).
func LoadCache(root string) *CachedRun {
	data, err := os.ReadFile(filepath.Join(root, CacheFileName))
	if err != nil {
		return nil
	}
	var c CachedRun
	if err := json.Unmarshal(data, &c); err != nil || c.Key == "" || c.Report == nil {
		return nil
	}
	return &c
}

// SaveCache persists the run under root. Failures are returned but safe
// to ignore: the cache is an optimization, not a correctness layer.
func SaveCache(root string, c *CachedRun) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(root, CacheFileName), append(data, '\n'), 0o644)
}
