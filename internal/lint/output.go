package lint

// output.go renders a run's diagnostics as machine-readable reports:
// plain JSON for scripting and SARIF 2.1.0 for code-scanning UIs. Both
// are byte-stable — same tree, same bytes — because CI diffs them and
// the result cache replays them verbatim. Each finding carries a stable
// ID derived from (rule, file, message, occurrence index) but *not* the
// line number, so unrelated edits above a finding don't change its
// identity and scanning UIs can track it across commits.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
)

// Finding is one diagnostic in report form, with a stable identity and
// a module-relative slash-separated path.
type Finding struct {
	// ID is the finding's stable identity: the first 12 hex digits of
	// sha256 over rule, relative file, message, and the occurrence index
	// among identical (rule, file, message) triples. Line numbers are
	// deliberately excluded.
	ID string `json:"id"`
	// Rule names the analyzer.
	Rule string `json:"rule"`
	// File is the module-relative path, slash-separated.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Msg describes the finding.
	Msg string `json:"msg"`
}

// Report is a full detlint run over one module.
type Report struct {
	// Version is the detlint version string.
	Version string `json:"version"`
	// Findings lists every unsuppressed finding in position order.
	Findings []Finding `json:"findings"`
}

// detlintVersion names the analyzer release in reports and cache keys.
// Bump it when rules change behavior so stale caches self-invalidate.
const detlintVersion = "detlint/7.0.0"

// NewReport converts Run's diagnostics into report form, relativizing
// file names against the module root.
//
//detlint:allow facadeparity lint is a development tool consumed through cmd/detlint, not a simulation module the api facade fronts
func NewReport(root string, diags []Diagnostic) *Report {
	r := &Report{Version: detlintVersion, Findings: make([]Finding, 0, len(diags))}
	occ := make(map[string]int)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		key := d.Rule + "|" + file + "|" + d.Msg
		n := occ[key]
		occ[key] = n + 1
		sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d", key, n)))
		r.Findings = append(r.Findings, Finding{
			ID:   fmt.Sprintf("%x", sum[:6]),
			Rule: d.Rule,
			File: file,
			Line: d.Pos.Line,
			Col:  d.Pos.Column,
			Msg:  d.Msg,
		})
	}
	return r
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// sarif* mirror the minimal subset of the SARIF 2.1.0 schema the report
// needs; field order in the structs fixes the marshaled byte order.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name            string      `json:"name"`
	SemanticVersion string      `json:"semanticVersion"`
	Rules           []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders the report as a SARIF 2.1.0 log. The rule catalogue
// comes from analyzers so the log is self-describing; the stable finding
// ID rides in partialFingerprints for cross-commit result matching.
func (r *Report) SARIF(analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(r.Findings))
	for _, f := range r.Findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       f.File,
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
			PartialFingerprints: map[string]string{"detlintFindingId/v1": f.ID},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:            "detlint",
				SemanticVersion: strings.TrimPrefix(detlintVersion, "detlint/"),
				Rules:           rules,
			}},
			Results: results,
		}},
	}
	b, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
