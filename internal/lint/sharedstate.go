package lint

// sharedstate is the static complement of the race detector for the
// native (real-goroutine) substrate. `go test -race` only sees the
// interleavings a run happens to produce; this rule reasons over all of
// them, conservatively: any struct field of a native type that is
// *mutable after construction* (written anywhere outside a New*/new*
// constructor) and is touched on a path reachable from the package's
// public operations must be protected — by sync/atomic (the field, or
// its element type for atomic arrays), by a mutex held in the accessing
// function, or by an explicit justified annotation. Fields written only
// during construction are published by the happens-before edge of
// handing the object to other goroutines and need no protection.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerSharedState returns the sharedstate rule for package native.
//
// A finding can be suppressed at the access site like any other, or —
// because one deliberately unsynchronized field (e.g. an injector
// installed before the object is shared) would otherwise need an allow
// at every access — by a //detlint:allow sharedstate comment on the
// field's declaration line, which covers every access of that field.
func AnalyzerSharedState() *Analyzer {
	return &Analyzer{
		Name: "sharedstate",
		Doc:  "mutable native struct fields reached by concurrent operations need sync/atomic, a held mutex, or a justified allow",
		Run:  runSharedState,
	}
}

func runSharedState(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		if !m.InScope(pkg, "native") && !m.isFixture(pkg, "sharedok", "sharedbad") {
			continue
		}
		out = append(out, sharedStateForPackage(m, pkg)...)
	}
	return out
}

// fieldFacts aggregates what the package does to one struct field.
type fieldFacts struct {
	v *types.Var
	// mutated reports any write outside constructors — to the field
	// itself or through an index/pointer into it.
	mutated bool
	// headerMutated reports the field itself reassigned outside
	// constructors. When only elements are written (w.cells[i] = v), the
	// slice header stays what the constructor built, and len/cap reads
	// of it are race-free.
	headerMutated bool
}

func sharedStateForPackage(m *Module, pkg *Package) []Diagnostic {
	g := m.CallGraph()
	facts := packageFieldFacts(g, pkg)
	if len(facts) == 0 {
		return nil
	}

	// Pass 2: entry points are the package's exported functions and
	// methods minus constructors; everything reachable from them runs on
	// caller goroutines after the object is shared.
	var roots []*FuncNode
	for _, n := range g.sortedNodes() {
		if n.Pkg == pkg && n.Decl.Name.IsExported() && !isConstructor(n.Decl) {
			roots = append(roots, n)
		}
	}
	reachable := g.Reachable(roots, nil)
	checked := make([]*FuncNode, 0, len(reachable))
	for n := range reachable {
		if n.Pkg == pkg {
			checked = append(checked, n)
		}
	}
	sort.Slice(checked, func(i, j int) bool { return checked[i].Fn.Pos() < checked[j].Fn.Pos() })

	// Pass 3: flag unprotected accesses to mutated fields. The guard
	// check is the lockset analysis: an access counts as protected only
	// when a mutex is held on every path reaching it (lockset.go), not
	// merely when a Lock call appears earlier in the source text.
	var out []Diagnostic
	for _, n := range checked {
		guards := guardedSelectors(pkg, n.Decl)
		exempt := headerReads(pkg, n.Decl.Body, facts)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			f := selectedField(pkg, sel)
			if f == nil {
				return true
			}
			ff := facts[f]
			if ff == nil || !ff.mutated {
				return true
			}
			if atomicField(f) || syncField(f) {
				return true
			}
			pos := m.Fset.Position(sel.Pos())
			if len(guards[sel]) > 0 {
				return true
			}
			if fieldDeclAllowed(m, f, "sharedstate") {
				return true
			}
			out = append(out, Diagnostic{
				Pos: pos,
				Msg: fmt.Sprintf("field %s of %s is written outside its constructor and accessed in %s without sync/atomic or a held mutex; concurrent operations can race on it",
					f.Name(), ownerTypeName(f), funcLabel(n)),
			})
			return true
		})
	}
	return out
}

// isConstructor reports a New*/new* function: it runs before the object
// is shared between goroutines.
func isConstructor(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// packageFieldFacts classifies every struct field declared in pkg and
// marks the ones written outside constructors. Shared by sharedstate
// and lockorder: both rules only care about fields that change after
// the object is built.
func packageFieldFacts(g *CallGraph, pkg *Package) map[*types.Var]*fieldFacts {
	facts := make(map[*types.Var]*fieldFacts)
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			facts[f] = &fieldFacts{v: f}
		}
	}
	if len(facts) == 0 {
		return facts
	}
	for _, n := range g.sortedNodes() {
		if n.Pkg != pkg || isConstructor(n.Decl) {
			continue
		}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					return true
				}
				for _, l := range x.Lhs {
					if f, direct := fieldTarget(pkg, l); f != nil && facts[f] != nil {
						facts[f].mutated = true
						facts[f].headerMutated = facts[f].headerMutated || direct
					}
				}
			case *ast.IncDecStmt:
				if f, direct := fieldTarget(pkg, x.X); f != nil && facts[f] != nil {
					facts[f].mutated = true
					facts[f].headerMutated = facts[f].headerMutated || direct
				}
			}
			return true
		})
	}
	return facts
}

// fieldTarget resolves an assignment target to the struct field it
// writes, unwrapping index/star/paren chains. direct reports that the
// field itself is the target (header write), as opposed to an element
// or pointee reached through it.
func fieldTarget(pkg *Package, e ast.Expr) (f *types.Var, direct bool) {
	direct = true
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			direct = false
		case *ast.StarExpr:
			e = x.X
			direct = false
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			return selectedField(pkg, x), direct
		default:
			return nil, false
		}
	}
}

// headerReads collects the selectors appearing only as the argument of a
// len/cap call on a field whose header is never reassigned outside a
// constructor: the constructor-built slice header is immutable, so its
// length is readable without synchronization even while elements churn.
func headerReads(pkg *Package, body *ast.BlockStmt, facts map[*types.Var]*fieldFacts) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		b, ok := pkg.Info.Uses[id].(*types.Builtin)
		if !ok || (b.Name() != "len" && b.Name() != "cap") {
			return true
		}
		sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if f := selectedField(pkg, sel); f != nil && facts[f] != nil && !facts[f].headerMutated {
			out[sel] = true
		}
		return true
	})
	return out
}

// selectedField returns the field object a selector denotes, or nil.
func selectedField(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// atomicField reports whether a field's type — or, for slices/arrays of
// atomics, its element type — comes from sync/atomic.
func atomicField(f *types.Var) bool {
	return typeFromPkg(f.Type(), "sync/atomic")
}

// syncField reports whether the field is itself a synchronization
// primitive (sync.Mutex et al.) — touching it is how protection happens.
func syncField(f *types.Var) bool {
	return typeFromPkg(f.Type(), "sync")
}

// fieldDeclAllowed reports a justified //detlint:allow for the rule on
// the field's declaration line (or the line above it).
func fieldDeclAllowed(m *Module, f *types.Var, rule string) bool {
	p := m.Fset.Position(f.Pos())
	for _, a := range m.allows[p.Filename] {
		if !a.justified {
			continue
		}
		if a.line != p.Line && a.line != p.Line-1 {
			continue
		}
		if a.rules[rule] || a.rules["all"] {
			a.used = true
			return true
		}
	}
	return false
}

// ownerTypeName renders the declaring struct type of a field as
// pkgname.Type (best effort: the field's parent scope is the struct).
func ownerTypeName(f *types.Var) string {
	if f.Pkg() == nil {
		return "?"
	}
	// Walk the package scope for the named type whose underlying struct
	// contains exactly this field object.
	scope := f.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return f.Pkg().Name() + "." + name
			}
		}
	}
	return f.Pkg().Name() + ".?"
}
