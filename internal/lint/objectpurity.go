package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerObjectPurity returns the objectpurity rule. A sim.Object is a
// pure sequential state machine: the simulator serializes every Apply,
// records (invocation, response) pairs in the trace, and the model
// checker clones object state to explore alternative schedules. That
// story collapses if Apply:
//
//   - retains the Invocation's Args slice (the runtime and callers may
//     reuse it; aliasing couples object state to caller memory — the
//     interface contract says "must not retain inv.Args");
//   - mutates package-level state (state outside the object escapes
//     cloning and replay, so two runs of the same schedule diverge);
//   - performs I/O (os/io/net/log writes, fmt printing): side effects
//     are invisible to the trace and unrepeatable under replay.
func AnalyzerObjectPurity() *Analyzer {
	return &Analyzer{
		Name: "objectpurity",
		Doc:  "sim.Object.Apply must not retain inv.Args, mutate package-level state, or perform I/O",
		Run:  runObjectPurity,
	}
}

// ioPackages are packages whose package-level functions and methods
// perform I/O.
var ioPackages = map[string]bool{
	"os": true, "io": true, "io/ioutil": true, "bufio": true,
	"net": true, "net/http": true, "log": true, "syscall": true,
}

// fmtPrintFuncs are the fmt functions that write to a stream.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runObjectPurity(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, am := range applyMethods(m) {
		out = append(out, checkApplyPurity(m, am)...)
	}
	return out
}

func checkApplyPurity(m *Module, am applyMethod) []Diagnostic {
	var out []Diagnostic
	pkg := am.pkg
	parents := parentMap(am.file)
	recv := fmt.Sprintf("(%s).Apply", receiverTypeName(am.decl))
	ast.Inspect(am.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if am.invParam != nil && n.Sel.Name == "Args" {
				if id, ok := n.X.(*ast.Ident); ok && pkg.Info.Uses[id] == am.invParam {
					if !readOnlyArgsContext(n, parents, pkg) {
						out = append(out, Diagnostic{
							Pos: m.Fset.Position(n.Pos()),
							Msg: recv + " must not retain inv.Args (index, range, or len it instead)",
						})
					}
				}
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if v, name := packageLevelTarget(pkg, l); v != nil {
					out = append(out, Diagnostic{
						Pos: m.Fset.Position(l.Pos()),
						Msg: fmt.Sprintf("%s mutates package-level state %q; object state must live in the receiver", recv, name),
					})
				}
			}
		case *ast.IncDecStmt:
			if v, name := packageLevelTarget(pkg, n.X); v != nil {
				out = append(out, Diagnostic{
					Pos: m.Fset.Position(n.Pos()),
					Msg: fmt.Sprintf("%s mutates package-level state %q; object state must live in the receiver", recv, name),
				})
			}
		case *ast.CallExpr:
			if d, ok := ioCall(m, pkg, n); ok {
				d.Msg = recv + " " + d.Msg
				out = append(out, d)
			}
		}
		return true
	})
	return out
}

// readOnlyArgsContext reports whether a use of inv.Args stays read-only:
// len/cap argument, indexing base, or range operand.
func readOnlyArgsContext(sel *ast.SelectorExpr, parents map[ast.Node]ast.Node, pkg *Package) bool {
	switch p := parents[sel].(type) {
	case *ast.CallExpr:
		if b, ok := pkg.Info.Uses[rootIdent(p.Fun)].(*types.Builtin); ok {
			return b.Name() == "len" || b.Name() == "cap"
		}
	case *ast.IndexExpr:
		return p.X == sel
	case *ast.RangeStmt:
		return p.X == sel
	}
	return false
}

// packageLevelTarget reports whether an assignment target's root
// resolves to a package-level variable (of any package).
func packageLevelTarget(pkg *Package, e ast.Expr) (*types.Var, string) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			// pkgname.Var, or a field chain rooted at an identifier.
			if sobj, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && !sobj.IsField() {
				if isPackageScoped(sobj) {
					return sobj, x.Sel.Name
				}
			}
			e = x.X
			continue
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok && isPackageScoped(v) {
				return v, x.Name
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

// isPackageScoped reports whether a variable is declared at package
// scope.
func isPackageScoped(v *types.Var) bool {
	if v.IsField() {
		return false
	}
	p := v.Pkg()
	return p != nil && v.Parent() == p.Scope()
}

// ioCall flags calls into I/O packages and fmt's printing functions.
func ioCall(m *Module, pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	id := rootIdent(call.Fun)
	if id == nil {
		return Diagnostic{}, false
	}
	switch obj := pkg.Info.Uses[id].(type) {
	case *types.Builtin:
		if obj.Name() == "print" || obj.Name() == "println" {
			return Diagnostic{
				Pos: m.Fset.Position(call.Pos()),
				Msg: fmt.Sprintf("performs I/O (builtin %s)", obj.Name()),
			}, true
		}
	case *types.Func:
		p := obj.Pkg()
		if p == nil {
			return Diagnostic{}, false
		}
		if ioPackages[p.Path()] {
			return Diagnostic{
				Pos: m.Fset.Position(call.Pos()),
				Msg: fmt.Sprintf("performs I/O (%s.%s)", p.Path(), obj.Name()),
			}, true
		}
		if p.Path() == "fmt" && fmtPrintFuncs[obj.Name()] {
			return Diagnostic{
				Pos: m.Fset.Position(call.Pos()),
				Msg: fmt.Sprintf("performs I/O (fmt.%s)", obj.Name()),
			}, true
		}
	}
	return Diagnostic{}, false
}
