package lint

import (
	"go/ast"
	"go/types"
)

// applyMethod is the Apply method of one sim.Object implementation.
type applyMethod struct {
	pkg  *Package
	file *ast.File
	decl *ast.FuncDecl
	// invParam is the sim.Invocation parameter's object (nil if blank).
	invParam types.Object
}

// objectInterface returns the module's sim.Object interface, or nil when
// the module does not contain internal/sim (e.g. fixture modules).
func objectInterface(m *Module) *types.Interface {
	simPkg := m.Lookup(m.Path + "/internal/sim")
	if simPkg == nil {
		return nil
	}
	obj := simPkg.Types.Scope().Lookup("Object")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// applyMethods finds the Apply methods of every named type in the module
// that implements sim.Object.
func applyMethods(m *Module) []applyMethod {
	iface := objectInterface(m)
	if iface == nil {
		return nil
	}
	var out []applyMethod
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		impl := make(map[string]bool)
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
				impl[name] = true
			}
		}
		if len(impl) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "Apply" || fd.Recv == nil || fd.Body == nil {
					continue
				}
				if !impl[receiverTypeName(fd)] {
					continue
				}
				am := applyMethod{pkg: pkg, file: f, decl: fd}
				// The Invocation parameter is the second one by the
				// sim.Object signature.
				params := fd.Type.Params.List
				if len(params) >= 2 && len(params[1].Names) > 0 {
					am.invParam = pkg.Info.Defs[params[1].Names[0]]
				}
				out = append(out, am)
			}
		}
	}
	return out
}

// receiverTypeName extracts the base type name of a method receiver.
func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
