package lint

import (
	"strings"
	"testing"
)

// fixtureType finds one classified Recoverable implementor of the shared
// fixture module by its pkgname.Type rendering.
func fixtureType(t *testing.T, name string) *persistType {
	t.Helper()
	loadFixtures(t)
	info := fixtureMod.persistInfo()
	for _, pt := range info.types {
		if pt.name() == name {
			return pt
		}
	}
	t.Fatalf("no Recoverable implementor %s in the fixture module", name)
	return nil
}

func classOf(t *testing.T, pt *persistType, field string) *persistField {
	t.Helper()
	for _, pf := range pt.fields {
		if pf.v.Name() == field {
			return pf
		}
	}
	t.Fatalf("no field %s on %s", field, pt.name())
	return nil
}

// TestAnnotationOverridesInference pins the annotation-beats-inference
// contract of the persistence lattice: persistbad.Cell.tmp is never
// wiped by OnCrash (inference would call it durable), yet its
// //detlint:volatile annotation decides the class — the mismatch is
// persistsplit's ghost-state finding, not a silent reclassification.
// Conversely persistbad.Cell.saved is wiped (inference would call it
// volatile) but stays durable by annotation, surfacing as amnesia.
func TestAnnotationOverridesInference(t *testing.T) {
	cell := fixtureType(t, "persistbad.Cell")

	tmp := classOf(t, cell, "tmp")
	if tmp.wiped {
		t.Errorf("tmp is reported wiped; the fixture's OnCrash never touches it")
	}
	if tmp.class != persistVolatile {
		t.Errorf("tmp class = %s, want volatile: the annotation must override the unwiped inference", tmp.class)
	}

	saved := classOf(t, cell, "saved")
	if !saved.wiped {
		t.Errorf("saved is not reported wiped; the fixture's OnCrash zeroes it")
	}
	if saved.class != persistDurable {
		t.Errorf("saved class = %s, want durable: the annotation must override the wiped inference", saved.class)
	}

	// Unannotated fields fall back to the OnCrash inference.
	count := classOf(t, cell, "count")
	if count.ann != nil || count.class != persistDurable {
		t.Errorf("count: ann=%v class=%s, want no annotation and inferred durable", count.ann, count.class)
	}
}

// TestInterproceduralWipeInference pins that the OnCrash write set
// follows calls within the declaring package: persistok.Store wipes its
// seen field through the clearSeen helper.
func TestInterproceduralWipeInference(t *testing.T) {
	store := fixtureType(t, "persistok.Store")
	if pf := classOf(t, store, "seen"); !pf.wiped || pf.class != persistVolatile {
		t.Errorf("seen: wiped=%v class=%s, want a helper-mediated wipe classified volatile", pf.wiped, pf.class)
	}
	if pf := classOf(t, store, "val"); pf.wiped || pf.class != persistDurable {
		t.Errorf("val: wiped=%v class=%s, want untouched durable", pf.wiped, pf.class)
	}
}

// TestRealTreeClassification pins the real recoverable objects' split:
// the WRN core is all-durable with lastOp/lastResp as its journal, and
// the register's staged buffer is volatile.
func TestRealTreeClassification(t *testing.T) {
	core := fixtureType(t, "recoverable.WRNCore")
	if core.journaled == nil {
		t.Fatal("recoverable.WRNCore carries no //detlint:journaled nomination")
	}
	for _, field := range []string{"k", "cells", "lastOp", "lastResp", "applies"} {
		if pf := classOf(t, core, field); pf.class != persistDurable {
			t.Errorf("WRNCore.%s class = %s, want durable", field, pf.class)
		}
	}
	for _, field := range []string{"lastOp", "lastResp"} {
		if pf := classOf(t, core, field); pf.journal == nil {
			t.Errorf("WRNCore.%s carries no //detlint:journal mark", field)
		}
	}
	reg := fixtureType(t, "recoverable.Register")
	if pf := classOf(t, reg, "buf"); pf.class != persistVolatile || !pf.wiped {
		t.Errorf("Register.buf: class=%s wiped=%v, want wiped volatile", pf.class, pf.wiped)
	}
}

// TestRecoveryRulesPartialRun pins the -rules contract for the
// recovery-safety subset: running only the four persistence rules still
// produces the seeded persistbad/recreadbad/journalbad/restartcovbad
// findings, and allowaudit stays silent about allows naming rules that
// did not run (the wrn negative-control allow names restartcoverage, so
// a run without it must not judge that mark).
func TestRecoveryRulesPartialRun(t *testing.T) {
	loadFixtures(t)
	subset := append(RecoveryAnalyzers(), AnalyzerAllowAudit())
	diags := Run(fixtureMod, subset)
	wantRules := map[string]bool{}
	for _, d := range diags {
		wantRules[d.Rule] = true
		if d.Rule == allowAuditName {
			t.Errorf("recovery-subset run judged an allow stale: %s", d)
		}
		if !strings.Contains(d.Pos.Filename, "testdata") {
			t.Errorf("recovery-subset finding in the real tree: %s", d)
		}
	}
	for _, rule := range []string{"persistsplit", "recoveryreads", "journaldiscipline", "restartcoverage"} {
		if !wantRules[rule] {
			t.Errorf("recovery-subset run produced no %s findings; the bad fixtures seed some", rule)
		}
	}
	// Restore the shared fixture diagnostics' used-marks for later tests.
	fixtureDiags = Run(fixtureMod, Analyzers())
}
