package lint

// escape.go is a demand-driven may-escape analysis over the SSA-lite
// layer's level of ambition: per function, which local variables may
// have their storage outlive the frame. The hotalloc rule uses it to
// separate real heap traffic from compiler-stack-allocatable noise — a
// composite literal bound to a local that never escapes is free, the
// same literal stored into a map is a per-iteration allocation.
//
// A variable may escape when any of the classic conduits applies:
//
//   - its address is taken (&v, anywhere);
//   - it appears in a return statement;
//   - it is stored through a heap pointer (x.f = v, x[i] = v, *p = v,
//     or assignment to a package-level variable);
//   - it is referenced inside a function literal other than the one
//     declaring it (closure capture);
//   - it is converted to an interface type, explicitly or by being
//     passed where a parameter is interface-typed (boxing);
//   - it is passed to a function that may retain it: a module function
//     whose summary says the parameter escapes (computed below to a
//     fixpoint over the callgraph), or any function through a
//     reference-carrying parameter type;
//   - it flows by plain assignment into a variable that escapes.
//
// The lattice is two-valued per variable (escapes / stays local) and
// the transfer is monotone, so the per-function propagation and the
// interprocedural parameter-summary iteration both converge. The
// analysis is deliberately conservative toward "escapes": the only
// consumers downgrade findings when a value provably stays local.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// escAnalysis is the module-wide escape result.
type escAnalysis struct {
	// vars maps each analyzed function to its may-escape variable set.
	vars map[*FuncNode]map[types.Object]bool
	// paramEsc maps each module function to a per-parameter escape
	// summary (true = the argument may be retained).
	paramEsc map[*types.Func][]bool
}

// escapes returns the module's escape analysis, computing it on first
// use.
func (m *Module) escapes() *escAnalysis {
	if m.esc == nil {
		m.esc = buildEscapes(m)
	}
	return m.esc
}

func buildEscapes(m *Module) *escAnalysis {
	g := m.CallGraph()
	nodes := g.sortedNodes()
	e := &escAnalysis{
		vars:     make(map[*FuncNode]map[types.Object]bool, len(nodes)),
		paramEsc: make(map[*types.Func][]bool, len(nodes)),
	}
	params := make(map[*FuncNode][]types.Object, len(nodes))
	callers := make(map[*FuncNode][]*FuncNode, len(nodes))
	for _, n := range nodes {
		params[n] = paramObjects(n)
		e.paramEsc[n.Fn] = make([]bool, len(params[n]))
		for _, callee := range n.Callees {
			callers[callee] = append(callers[callee], n)
		}
	}
	// Interprocedural fixpoint over a worklist: a function is recomputed
	// only when one of its callees' summaries changed, so total work is
	// one full pass plus one recompute per caller per summary-bit flip.
	// Summaries only ever flip false -> true, so the iteration
	// terminates.
	queued := make(map[*FuncNode]bool, len(nodes))
	work := make([]*FuncNode, len(nodes))
	copy(work, nodes)
	for _, n := range nodes {
		queued[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		set := escapeSet(n.Pkg, n.Decl, e)
		e.vars[n] = set
		summary := e.paramEsc[n.Fn]
		changed := false
		for i, p := range params[n] {
			if p != nil && set[p] && !summary[i] {
				summary[i] = true
				changed = true
			}
		}
		if !changed {
			continue
		}
		for _, c := range callers[n] {
			if !queued[c] {
				queued[c] = true
				work = append(work, c)
			}
		}
	}
	return e
}

// paramObjects lists a declaration's parameter objects in signature
// order (nil for unnamed parameters).
func paramObjects(n *FuncNode) []types.Object {
	var out []types.Object
	if n.Decl.Type.Params == nil {
		return nil
	}
	for _, f := range n.Decl.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, n.Pkg.Info.Defs[name])
		}
	}
	return out
}

// summaryFor returns the parameter-escape summary of a resolved module
// function, or nil for external/unknown callees.
func (e *escAnalysis) summaryFor(fn *types.Func) []bool {
	if e == nil {
		return nil
	}
	return e.paramEsc[fn]
}

// escapeSet computes the may-escape variable set of one declaration
// under the given (possibly still-converging) interprocedural
// summaries.
func escapeSet(pkg *Package, decl *ast.FuncDecl, e *escAnalysis) map[types.Object]bool {
	esc := make(map[types.Object]bool)
	// flows records v -> w edges in source order: v's value flows into w
	// by plain assignment, so if w escapes, v does too.
	type flowEdge struct{ from, to types.Object }
	var flows []flowEdge
	if decl.Body == nil {
		return esc
	}
	mark := func(obj types.Object) {
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			esc[obj] = true
		}
	}
	markExpr := func(x ast.Expr) {
		ast.Inspect(x, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil {
					mark(obj)
				}
			}
			return true
		})
	}
	// markRefs marks only the identifiers whose values can carry a
	// reference out of the frame. Copying a flat struct into a slice
	// slot, a return value, or an interface box duplicates its bytes —
	// the local's own storage stays in the frame — so flat values never
	// escape through value contexts, only through &v and captures.
	markRefs := func(x ast.Expr) {
		ast.Inspect(x, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Arguments of an ordinary call are charged by the call
				// rule (callee summaries); the call's own result carries no
				// reference to them, so len(vs) in a return does not make
				// vs escape. Conversions and append can alias their
				// operands in the result, so keep descending through those.
				if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
					return true
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
						return b.Name() == "append"
					}
				}
				return false
			case *ast.Ident:
				if obj := pkg.Info.Uses[n]; obj != nil && carriesReference(obj.Type()) {
					mark(obj)
				}
			}
			return true
		})
	}
	flow := func(from ast.Expr, to types.Object) {
		if to == nil {
			return
		}
		if id, ok := ast.Unparen(from).(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok && !v.IsField() {
				flows = append(flows, flowEdge{v, to})
			}
		}
	}
	// declaringLit maps each locally declared object to the innermost
	// function literal declaring it (nil = the declaration body).
	declaringLit := make(map[types.Object]*ast.FuncLit)
	var walkDecls func(n ast.Node, lit *ast.FuncLit)
	walkDecls = func(root ast.Node, lit *ast.FuncLit) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n != root {
					walkDecls(n.Body, n)
					return false
				}
			case *ast.Ident:
				if obj := pkg.Info.Defs[n]; obj != nil {
					declaringLit[obj] = lit
				}
			}
			return true
		})
	}
	walkDecls(decl.Body, nil)

	var walk func(root ast.Node, lit *ast.FuncLit)
	walk = func(root ast.Node, lit *ast.FuncLit) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n != root {
					walk(n.Body, n)
					return false
				}
			case *ast.Ident:
				// Closure capture: a use inside a literal of a variable
				// declared outside it.
				if obj := pkg.Info.Uses[n]; obj != nil {
					if dl, local := declaringLit[obj]; local && dl != lit {
						mark(obj)
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					markExpr(rootOperand(n.X))
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					markRefs(r)
				}
			case *ast.SendStmt:
				markRefs(n.Value)
			case *ast.AssignStmt:
				escapeAssign(pkg, n, mark, markRefs, flow)
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						flow(n.Values[i], pkg.Info.Defs[name])
					}
				}
			case *ast.CompositeLit:
				// A reference stored into a composite literal lives as
				// long as the literal; charge pointer-carrying elements.
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if carriesReference(pkg.Info.TypeOf(el)) {
						markRefs(el)
					}
				}
			case *ast.CallExpr:
				escapeCall(pkg, n, e, mark, markRefs, flow)
			}
			return true
		})
	}
	walk(decl.Body, nil)

	// Close the flow relation: escape propagates backward along
	// assignment edges.
	for changed := true; changed; {
		changed = false
		for _, f := range flows {
			if !esc[f.from] && esc[f.to] {
				mark(f.from)
				if esc[f.from] {
					changed = true
				}
			}
		}
	}
	return esc
}

// escapeAssign applies the store rules of one assignment.
func escapeAssign(pkg *Package, as *ast.AssignStmt, mark func(types.Object), markRefs func(ast.Expr), flow func(ast.Expr, types.Object)) {
	for i, l := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		switch lv := ast.Unparen(l).(type) {
		case *ast.Ident:
			obj := pkg.Info.Defs[lv]
			if obj == nil {
				obj = pkg.Info.Uses[lv]
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == pkg.Types.Scope() {
				// Store to a package-level variable.
				if rhs != nil {
					markRefs(rhs)
				}
				continue
			}
			if rhs != nil && len(as.Rhs) == len(as.Lhs) {
				flow(rhs, obj)
			}
		default:
			// x.f = v, x[i] = v, *p = v: stored through a heap pointer.
			if rhs != nil {
				markRefs(rhs)
			}
		}
	}
}

// escapeCall applies the call rules: builtins, interface conversions,
// module summaries, and reference-carrying parameters of external
// functions.
func escapeCall(pkg *Package, call *ast.CallExpr, e *escAnalysis, mark func(types.Object), markRefs func(ast.Expr), flow func(ast.Expr, types.Object)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			// append aliases its operands into the (possibly reassigned)
			// destination; the assignment rule picks up the flow. The
			// other builtins retain nothing.
			_ = b
			return
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(v): boxing if T is an interface.
		if isInterfaceType(tv.Type) && len(call.Args) == 1 {
			markRefs(call.Args[0])
		}
		return
	}
	fn := resolvedFunc(pkg, call)
	var summary []bool
	if fn != nil {
		summary = e.summaryFor(fn)
	}
	sig := callSignature(pkg, call)
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		switch {
		case summary != nil && i < len(summary):
			if summary[i] {
				markRefs(arg)
			}
			// A parameter the module callee provably does not retain
			// stays local even if reference-carrying.
			continue
		case pt == nil, isInterfaceType(pt), carriesReference(pt):
			markRefs(arg)
		}
	}
}

// callSignature resolves the signature of a call's callee, through
// either the resolved function or the expression type.
func callSignature(pkg *Package, call *ast.CallExpr) *types.Signature {
	if fn := resolvedFunc(pkg, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			return sig
		}
	}
	if t := pkg.Info.TypeOf(call.Fun); t != nil {
		if sig, ok := t.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// paramTypeAt returns the declared type of the i-th argument slot,
// unwrapping the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	if sig == nil || sig.Params() == nil {
		return nil
	}
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// isInterfaceType reports whether t (behind aliases) is an interface.
func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Interface)
	return ok
}

// carriesReference reports whether a value of type t contains a
// reference the callee could retain (pointer, slice, map, chan, func,
// string header aside — strings are immutable, retaining one keeps
// bytes alive but not the local's storage, so they don't count).
func carriesReference(t types.Type) bool {
	if t == nil {
		return true // unknown: conservative
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesReference(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return carriesReference(u.Elem())
	case *types.Interface:
		return true
	}
	return false
}

// rootOperand peels selectors and indexes down to the base expression,
// so &v.f[i] charges v.
func rootOperand(x ast.Expr) ast.Expr {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		default:
			return x
		}
	}
}

// mayEscape reports whether the value produced by expr may escape the
// enclosing function: either the expression is used in an escaping
// context directly, or it is bound to a local variable in the
// function's may-escape set. parents must come from parentMap of the
// file containing expr.
func mayEscape(pkg *Package, n *FuncNode, e *escAnalysis, parents map[ast.Node]ast.Node, expr ast.Expr) bool {
	set := e.vars[n]
	node := ast.Node(expr)
	for {
		p, ok := parents[node]
		if !ok {
			return true // context unknown: conservative
		}
		switch p := p.(type) {
		case *ast.ParenExpr:
			node = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				// &T{...}: judge the pointer's binding instead.
				node = p
				continue
			}
			return true
		case *ast.AssignStmt:
			// Find which lhs the value binds to; plain ident binding
			// defers to the variable's escape fate.
			if len(p.Lhs) == len(p.Rhs) {
				for i, r := range p.Rhs {
					if ast.Unparen(r) == node || r == node {
						if id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident); ok {
							obj := pkg.Info.Defs[id]
							if obj == nil {
								obj = pkg.Info.Uses[id]
							}
							if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != pkg.Types.Scope() {
								return set[obj]
							}
						}
						return true
					}
				}
			}
			return true
		case *ast.ValueSpec:
			for i, val := range p.Values {
				if val == node && i < len(p.Names) {
					obj := pkg.Info.Defs[p.Names[i]]
					if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != pkg.Types.Scope() {
						return set[obj]
					}
				}
			}
			return true
		case *ast.ExprStmt:
			return false // result discarded
		default:
			return true // argument, return, element, ...: escaping context
		}
	}
}
