package lint

// hotbudget.go reads and judges .detlint.hot, the committed per-
// function allocation budgets of the hotalloc and boxing rules. The
// exhaustive engines legitimately allocate — a state map IS the
// product — so those rules cannot demand zero; instead the triaged
// baseline is committed as budgets and CI fails only on NEW sites. The
// file is the alloc analogue of //detlint:allow, and it is kept honest
// the same way allowaudit keeps allows honest: an entry whose function
// now has fewer sites than budgeted (or none at all) is itself a
// finding, so the baseline can only shrink.
//
// Format, one entry per line:
//
//	<rule> <import-path-qualified-function> <site-count>
//
// e.g.
//
//	hotalloc detobj/internal/modelcheck.buildTable 3
//	boxing detobj/internal/sim.(*Runner).step 1
//
// '#' starts a comment. Each hot rule judges only its own entries, so
// a partial -rules run that skips a rule says nothing about that
// rule's budgets — the same partial-run contract allowaudit gives
// allows. The file is part of the cache key (cache.go): editing a
// budget invalidates cached reports.

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// HotBudgetFileName is the budget file's location relative to the
// module root.
const HotBudgetFileName = ".detlint.hot"

// hotBudget is one parsed budget entry.
type hotBudget struct {
	rule  string
	fn    string // import-path-qualified function label
	count int
	pos   token.Position
	// used is set when the entry's function produced at least one site
	// this run; reset by the driver like allow marks.
	used bool
}

// hotBudgets returns the module's parsed budget entries, reading
// .detlint.hot on first use. A missing file means no budgets; a
// malformed line is a panic-free parse error surfaced as a diagnostic
// by the first hot rule that runs (entries after the bad line still
// load).
func (m *Module) hotBudgets() []*hotBudget {
	if m.budgetsLoaded {
		return m.budgets
	}
	m.budgetsLoaded = true
	path := filepath.Join(m.Root, HotBudgetFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		b := &hotBudget{pos: token.Position{Filename: path, Line: i + 1, Column: 1}}
		if len(fields) == 3 {
			if n, err := strconv.Atoi(fields[2]); err == nil && n > 0 {
				b.rule, b.fn, b.count = fields[0], fields[1], n
			}
		}
		m.budgets = append(m.budgets, b)
	}
	return m.budgets
}

// injectHotBudgets replaces the module's budgets for a test and
// returns a restore function.
func injectHotBudgets(m *Module, entries ...*hotBudget) func() {
	prev, prevLoaded := m.budgets, m.budgetsLoaded
	m.budgets, m.budgetsLoaded = entries, true
	return func() { m.budgets, m.budgetsLoaded = prev, prevLoaded }
}

// budgetFor returns the entry covering (rule, fn), or nil.
func (m *Module) budgetFor(rule, fn string) *hotBudget {
	for _, b := range m.hotBudgets() {
		if b.rule == rule && b.fn == fn {
			return b
		}
	}
	return nil
}

// budgetLabel renders a node as its import-path-qualified budget key:
// path.Func or path.(Recv).Method — unambiguous across same-named
// packages, unlike the diagnostic funcLabel.
func budgetLabel(n *FuncNode) string {
	if n.Decl.Recv != nil {
		return fmt.Sprintf("%s.(%s).%s", n.Pkg.Path, receiverTypeName(n.Decl), n.Decl.Name.Name)
	}
	return n.Pkg.Path + "." + n.Decl.Name.Name
}

// applyBudget folds one function's sites through its budget entry.
// Within budget, the sites are suppressed (the entry is the
// justification); over budget, every site is reported, tagged with the
// excess; under budget, a staleness finding demands the baseline
// shrink. Functions with no entry report their sites plainly.
func applyBudget(m *Module, rule string, n *FuncNode, sites []Diagnostic) []Diagnostic {
	b := m.budgetFor(rule, budgetLabel(n))
	if b == nil {
		return sites
	}
	b.used = true
	switch {
	case len(sites) > b.count:
		for i := range sites {
			sites[i].Msg += fmt.Sprintf(" [%d site(s) exceed the %s budget of %d in %s]",
				len(sites)-b.count, budgetLabel(n), b.count, HotBudgetFileName)
		}
		return sites
	case len(sites) < b.count:
		return []Diagnostic{{Pos: b.pos, Msg: fmt.Sprintf(
			"stale %s budget: %s now has %d site(s), budget is %d; lower the entry",
			rule, budgetLabel(n), len(sites), b.count)}}
	default:
		return nil
	}
}

// budgetProblems reports, for one hot rule, the entries it could judge
// this run and found wanting: malformed lines and entries whose
// function produced no site at all. Called by each hot rule for its
// own entries, which gives budgets allowaudit's partial-run contract
// for free — a run that skips the rule never reaches this code.
func budgetProblems(m *Module, rule string) []Diagnostic {
	var out []Diagnostic
	entries := m.hotBudgets()
	sorted := make([]*hotBudget, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pos.Line < sorted[j].pos.Line })
	for _, b := range sorted {
		if b.rule == "" {
			if rule == hotAllocName { // report malformed lines once, under the first hot rule
				out = append(out, Diagnostic{Pos: b.pos,
					Msg: fmt.Sprintf("malformed %s entry: want \"<rule> <function> <count>\" with count > 0", HotBudgetFileName)})
			}
			continue
		}
		if b.rule != rule || b.used {
			continue
		}
		out = append(out, Diagnostic{Pos: b.pos, Msg: fmt.Sprintf(
			"stale %s budget: %s has no hot allocation site(s) this run; remove the entry",
			rule, b.fn)})
	}
	return out
}
