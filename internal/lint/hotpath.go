package lint

// hotpath.go computes loop-depth-weighted reachability from the
// module's hot entrypoints: the exhaustive engines (Explore,
// ExploreParallel, AnalyzeValency*, CheckIndistinguishability*) and any
// function annotated //detlint:hot (the chaos sweep drivers). The
// exhaustive engines visit state spaces whose size is exponential in
// the configuration, so a single allocation at loop depth d under a
// hot root executes Θ(n^d) times per run — BENCH_5 measured the E4
// explore at 4.9M allocs/op before the modelcheck triage. The hotalloc
// and boxing rules and the -hotreport ranking all ride on the depth
// map computed here.
//
// Depth is a static over-approximation: the depth of a function is the
// minimum over all hot call chains of the sum of the loop depths of
// the call sites along the chain, with hot roots at depth zero. A call
// at loop depth 2 inside a function at depth 1 puts the callee at
// depth ≤ 3. Depths are capped at maxHotDepth so recursion through a
// loop converges. Function literals do not reset the loop depth: a
// literal declared under a loop is conservatively assumed to run under
// it (the par.ForEach worker bodies are exactly this shape).

import (
	"go/ast"
	"sort"
	"strings"
)

// maxHotDepth caps the loop-depth metric; 10^maxHotDepth is the
// largest static weight a site can carry.
const maxHotDepth = 6

// hotRootNames are the exhaustive-engine entrypoints that anchor hot
// paths by name, wherever they are declared under internal/ or cmd/.
var hotRootNames = map[string]bool{
	"Explore":                           true,
	"ExploreParallel":                   true,
	"ExploreReduced":                    true,
	"AnalyzeValency":                    true,
	"AnalyzeValencyParallel":            true,
	"AnalyzeValencyReduced":             true,
	"CheckIndistinguishability":         true,
	"CheckIndistinguishabilityParallel": true,
}

// hotDirective marks a function as a hot root via a //detlint:hot
// comment in its doc group.
const hotDirective = "detlint:hot"

// hotInfo is the result of the hot-path fixpoint.
type hotInfo struct {
	// depth maps each hot-reachable function to its minimum
	// loop-depth-weighted distance from a root (roots are 0).
	depth map[*FuncNode]int
	// witness maps each hot-reachable function to the root its minimum
	// depth was first established from, for diagnostic attribution.
	witness map[*FuncNode]*FuncNode
	// mult counts the hot roots that reach each function — the
	// callgraph-multiplicity factor of the static score.
	mult map[*FuncNode]int
	// roots lists the hot roots in declaration order.
	roots []*FuncNode
}

// hotPaths returns the module's hot-path analysis, computing it on
// first use.
func (m *Module) hotPaths() *hotInfo {
	if m.hot == nil {
		m.hot = buildHotInfo(m)
	}
	return m.hot
}

// hasDirective reports whether the comment group contains a line whose
// text (after //) starts with the directive name.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}

// hotRoot reports whether the function anchors a hot path: an
// exhaustive-engine entrypoint by name, or an explicit //detlint:hot
// annotation.
func hotRoot(m *Module, n *FuncNode) bool {
	if !m.InScope(n.Pkg, "internal", "cmd") {
		return false
	}
	if hotRootNames[n.Decl.Name.Name] {
		return true
	}
	return hasDirective(n.Decl.Doc, hotDirective)
}

func buildHotInfo(m *Module) *hotInfo {
	g := m.CallGraph()
	nodes := g.sortedNodes()
	h := &hotInfo{
		depth:   make(map[*FuncNode]int),
		witness: make(map[*FuncNode]*FuncNode),
		mult:    make(map[*FuncNode]int),
	}
	for _, n := range nodes {
		if hotRoot(m, n) {
			h.roots = append(h.roots, n)
			h.depth[n] = 0
			h.witness[n] = n
		}
	}
	// Weighted call edges: callee -> minimum loop depth over the
	// caller's call sites resolving to it.
	type edge struct {
		callee *FuncNode
		depth  int
	}
	edges := make(map[*FuncNode][]edge, len(nodes))
	for _, n := range nodes {
		min := make(map[*FuncNode]int)
		loopDepthWalk(n.Decl.Body, func(x ast.Node, d int) {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return
			}
			for _, c := range g.calleesOf(n.Pkg, call) {
				if prev, ok := min[c]; !ok || d < prev {
					min[c] = d
				}
			}
		})
		out := make([]edge, 0, len(min))
		for c, d := range min {
			out = append(out, edge{c, d})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].callee.Fn.Pos() < out[j].callee.Fn.Pos() })
		edges[n] = out
	}
	// Fixpoint over the weighted graph. Weights are nonnegative and
	// capped, so iterating the relaxation over the deterministic node
	// order converges; the witness is assigned when a node's depth
	// first improves, which keeps attribution stable across runs.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			dn, ok := h.depth[n]
			if !ok {
				continue
			}
			for _, e := range edges[n] {
				d := dn + e.depth
				if d > maxHotDepth {
					d = maxHotDepth
				}
				if prev, ok := h.depth[e.callee]; !ok || d < prev {
					h.depth[e.callee] = d
					h.witness[e.callee] = h.witness[n]
					changed = true
				}
			}
		}
	}
	// Multiplicity: how many distinct roots reach each function.
	for _, r := range h.roots {
		for n := range g.Reachable([]*FuncNode{r}, nil) {
			h.mult[n]++
		}
	}
	return h
}

// funcDepth returns the hot depth of a function and whether it is
// hot-reachable at all.
func (h *hotInfo) funcDepth(n *FuncNode) (int, bool) {
	d, ok := h.depth[n]
	return d, ok
}

// loopDepthWalk invokes visit on every node under root together with
// the number of enclosing for/range statements. A loop's condition,
// post statement, and range source count at body depth — they execute
// (or are conservatively charged) once per iteration; only the shape
// of Init is over-charged, which errs toward flagging. Function
// literals deliberately do not reset the depth (see the file comment).
func loopDepthWalk(root ast.Node, visit func(n ast.Node, depth int)) {
	if root == nil {
		return
	}
	depth := 0
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				depth--
			}
			return true
		}
		visit(n, depth)
		stack = append(stack, n)
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		}
		return true
	})
}

// hotWeight is the static execution-count estimate of a site at the
// given total (function + site) loop depth: 10^min(depth, maxHotDepth).
func hotWeight(depth int) int64 {
	if depth > maxHotDepth {
		depth = maxHotDepth
	}
	w := int64(1)
	for i := 0; i < depth; i++ {
		w *= 10
	}
	return w
}
