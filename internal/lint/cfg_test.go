package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses src as a file and returns its first function
// declaration.
func parseFunc(t *testing.T, src string) *ast.FuncDecl {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd
		}
	}
	t.Fatal("no function declaration in source")
	return nil
}

func TestCFGLoopExits(t *testing.T) {
	cases := []struct {
		name                string
		src                 string
		loops               int
		hasBreak, hasReturn []bool
	}{
		{
			name: "plain break and return",
			src: `package p
func f(n int) int {
	for {
		if n > 0 {
			break
		}
	}
	for {
		if n < 0 {
			return n
		}
	}
	return 0
}`,
			loops:     2,
			hasBreak:  []bool{true, false},
			hasReturn: []bool{false, true},
		},
		{
			name: "break inside switch stays with the switch",
			src: `package p
func f(n int) {
	for i := 0; ; i++ {
		switch n {
		case 1:
			break
		}
	}
}`,
			loops:     1,
			hasBreak:  []bool{false},
			hasReturn: []bool{false},
		},
		{
			name: "labeled break reaches the outer loop",
			src: `package p
func f(n int) {
outer:
	for {
		for {
			break outer
		}
	}
}`,
			loops:     2,
			hasBreak:  []bool{true, false},
			hasReturn: []bool{false, false},
		},
		{
			name: "return in a nested loop marks every enclosing loop",
			src: `package p
func f(xs []int) int {
	for _, x := range xs {
		for {
			return x
		}
	}
	return 0
}`,
			loops:     2,
			hasBreak:  []bool{false, false},
			hasReturn: []bool{true, true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fd := parseFunc(t, tc.src)
			cfg := BuildCFG(fd.Body)
			if len(cfg.AllLoops) != tc.loops {
				t.Fatalf("loops = %d, want %d", len(cfg.AllLoops), tc.loops)
			}
			for i, l := range cfg.AllLoops {
				if l.HasBreak != tc.hasBreak[i] {
					t.Errorf("loop %d HasBreak = %v, want %v", i, l.HasBreak, tc.hasBreak[i])
				}
				if l.HasReturn != tc.hasReturn[i] {
					t.Errorf("loop %d HasReturn = %v, want %v", i, l.HasReturn, tc.hasReturn[i])
				}
			}
		})
	}
}

// TestCFGFuncLitOpaque pins the function-literal boundary: a return
// inside a closure belongs to the closure's own CFG, and FuncBodies
// enumerates the declaration body plus each nested literal.
func TestCFGFuncLitOpaque(t *testing.T) {
	fd := parseFunc(t, `package p
func f(xs []int) func() int {
	var g func() int
	for _, x := range xs {
		g = func() int {
			for {
				return x
			}
		}
	}
	return g
}`)
	bodies := FuncBodies(fd)
	if len(bodies) != 2 {
		t.Fatalf("FuncBodies = %d bodies, want 2 (decl + literal)", len(bodies))
	}
	outer := BuildCFG(bodies[0])
	if len(outer.AllLoops) != 1 {
		t.Fatalf("outer loops = %d, want 1 (literal body is opaque)", len(outer.AllLoops))
	}
	if outer.AllLoops[0].HasReturn {
		t.Error("closure's return leaked into the enclosing range loop")
	}
	inner := BuildCFG(bodies[1])
	if len(inner.AllLoops) != 1 || !inner.AllLoops[0].HasReturn {
		t.Errorf("inner CFG loops = %+v, want one loop with HasReturn", inner.AllLoops)
	}
}

// TestCFGBlocksConnected sanity-checks the block structure: every block
// except possibly terminator-created tails is reachable from the entry.
func TestCFGBlocksConnected(t *testing.T) {
	fd := parseFunc(t, `package p
func f(n int) int {
	if n > 0 {
		n--
	} else {
		n++
	}
	for i := 0; i < n; i++ {
		n += i
	}
	switch n {
	case 1:
		return 1
	default:
		return n
	}
}`)
	cfg := BuildCFG(fd.Body)
	if cfg.Entry == nil || len(cfg.Blocks) == 0 {
		t.Fatal("empty CFG")
	}
	seen := make(map[*Block]bool)
	stack := []*Block{cfg.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	var stmts int
	for b := range seen {
		stmts += len(b.Stmts)
	}
	if stmts == 0 {
		t.Error("no statements reachable from the entry block")
	}
}
