package lint

// seedflow audits the inputs a par.ForEach worker computes: the seeds
// and configurations a worker hands to module functions — and the
// values it stores into its result slot — must be pure functions of the
// worker index, captured loop-invariant state, and constants. A worker
// that folds in a wall-clock read, a draw from a *shared* RNG (draw
// order depends on the worker schedule), a map iteration, or a channel
// receive produces schedule-dependent inputs that poison an otherwise
// perfectly slot-disciplined sweep: no data race, byte-different
// results per run.
//
// Seeded-from-index construction is the rule's GOOD pattern, not a
// finding: rand.New(rand.NewSource(seed + int64(i))) is argument-
// preserving — the constructors pass their argument's taint through —
// and drawing from a literal-local RNG built that way is deterministic.
// Only the global math/rand functions and methods on a *captured* RNG
// are origins. Module callees are boundary-opaque: the rule traces what
// the worker feeds them, while the callee's own internals remain
// decisionflow's and nodeterminism's obligation.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerSeedFlow returns the seedflow rule.
func AnalyzerSeedFlow() *Analyzer {
	return &Analyzer{
		Name: "seedflow",
		Doc:  "par.ForEach worker inputs (seeds, configs, slot values) must be pure functions of the worker index",
		Run:  runSeedFlow,
	}
}

func runSeedFlow(m *Module) []Diagnostic {
	g := m.CallGraph()
	var out []Diagnostic
	for _, n := range g.sortedNodes() {
		if !m.InScope(n.Pkg, "internal", "cmd") {
			continue
		}
		for _, w := range parWorkers(m, n) {
			out = append(out, checkSeedFlow(m, g, w)...)
		}
	}
	return out
}

// seedTracer walks a worker literal's value flow looking for
// schedule-dependent origins.
type seedTracer struct {
	pkg        *Package
	ssa        *FuncSSA
	captured   map[*types.Var]bool
	activePhis map[*PhiVal]bool
}

// checkSeedFlow audits one worker literal.
func checkSeedFlow(m *Module, g *CallGraph, w parWorker) []Diagnostic {
	pkg := w.node.Pkg
	t := &seedTracer{
		pkg:        pkg,
		ssa:        BuildLitSSA(pkg, w.lit),
		captured:   capturedVars(pkg, w.lit),
		activePhis: make(map[*PhiVal]bool),
	}
	type site struct {
		pos  ast.Node
		what string
		e    ast.Expr
		at   ast.Stmt
	}
	var sites []site
	for _, b := range t.ssa.CFG.Blocks {
		for _, st := range b.Stmts {
			inspectShallow(st, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := resolvedFunc(pkg, call)
				if fn == nil {
					return true
				}
				if _, isModule := g.Nodes[fn]; !isModule {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				for i, a := range call.Args {
					if _, isLit := ast.Unparen(a).(*ast.FuncLit); isLit {
						continue
					}
					if pt := paramTypeAt(sig, i); isInterfaceType(pt) {
						continue
					}
					sites = append(sites, site{
						pos:  a,
						what: fmt.Sprintf("argument %d of %s", i+1, fn.Name()),
						e:    a, at: st,
					})
				}
				return true
			})
			// Slot-write values: what lands in the worker's own slot must
			// be index-pure too.
			if as, ok := st.(*ast.AssignStmt); ok && as.Tok != token.DEFINE {
				for i, l := range as.Lhs {
					root := rootOf(l)
					if root == nil {
						continue
					}
					v, ok := pkg.Info.Uses[root].(*types.Var)
					if !ok || !t.captured[v] {
						continue
					}
					rhs := as.Rhs[0]
					if len(as.Rhs) == len(as.Lhs) {
						rhs = as.Rhs[i]
					}
					sites = append(sites, site{
						pos:  rhs,
						what: fmt.Sprintf("value stored into captured %q", v.Name()),
						e:    rhs, at: st,
					})
				}
			}
		}
	}
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, s := range sites {
		srcs := t.trace(s.e, s.at)
		sort.Strings(srcs)
		for _, src := range dedupStrings(srcs) {
			pos := m.Fset.Position(s.pos.Pos())
			key := fmt.Sprintf("%s:%d:%s:%s", pos.Filename, pos.Line, s.what, src)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Diagnostic{
				Pos: pos,
				Msg: fmt.Sprintf("%s in a par.ForEach worker derives from %s; worker inputs must be pure functions of the worker index", s.what, src),
			})
		}
	}
	return out
}

// trace unions the schedule-dependent origins flowing into an
// expression.
func (t *seedTracer) trace(e ast.Expr, at ast.Stmt) []string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := t.pkg.Info.Uses[e]
		if obj == nil {
			obj = t.pkg.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || t.captured[v] || isPackageScoped(v) {
			// Captured reads are loop-invariant inputs (their write
			// discipline is slotdiscipline's job); package state is
			// nodeterminism's.
			return nil
		}
		return t.value(t.ssa.BindingAt(at, v))
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return []string{"a channel receive (completion order)"}
		}
		return t.trace(e.X, at)
	case *ast.StarExpr:
		return t.trace(e.X, at)
	case *ast.BinaryExpr:
		return append(t.trace(e.X, at), t.trace(e.Y, at)...)
	case *ast.CallExpr:
		return t.traceCall(e, at)
	case *ast.SelectorExpr:
		if _, ok := ast.Unparen(e.X).(*ast.Ident); !ok {
			return t.trace(e.X, at)
		}
		return nil
	case *ast.IndexExpr:
		return append(t.trace(e.X, at), t.trace(e.Index, at)...)
	case *ast.SliceExpr:
		return t.trace(e.X, at)
	case *ast.CompositeLit:
		var out []string
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = append(out, t.trace(el, at)...)
		}
		return out
	case *ast.TypeAssertExpr:
		return t.trace(e.X, at)
	}
	return nil
}

// traceCall classifies one call in a worker input expression.
func (t *seedTracer) traceCall(call *ast.CallExpr, at ast.Stmt) []string {
	pkg := t.pkg
	// Conversions and value-carrying builtins pass taint through.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		var out []string
		for _, a := range call.Args {
			out = append(out, t.trace(a, at)...)
		}
		return out
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "copy", "min", "max":
				var out []string
				for _, a := range call.Args {
					out = append(out, t.trace(a, at)...)
				}
				return out
			default:
				return nil
			}
		}
	}
	fn := resolvedFunc(pkg, call)
	if fn == nil {
		return nil // dynamic call: boundary-opaque
	}
	if src := t.seedOrigin(fn, call, at); src != "" {
		return []string{src}
	}
	// Argument-preserving constructors and every other call — module or
	// external — are boundary-opaque: trace what flows in.
	var out []string
	for _, a := range call.Args {
		if _, isLit := ast.Unparen(a).(*ast.FuncLit); isLit {
			continue
		}
		out = append(out, t.trace(a, at)...)
	}
	// A method chain's receiver carries taint too (r.Int63() with r
	// traced separately below, but also cfg.With(x).Seed(y)).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			out = append(out, t.trace(sel.X, at)...)
		}
	}
	return out
}

// seedOrigin classifies a call as a schedule-dependent origin for
// worker-input purposes.
func (t *seedTracer) seedOrigin(fn *types.Func, call *ast.CallExpr, at ast.Stmt) string {
	if fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	switch path {
	case "time":
		if isFunc(fn, "time", "Now", "Since", "Until") {
			return "time." + fn.Name() + " (wall clock)"
		}
	case "runtime":
		if fn.Type().(*types.Signature).Recv() == nil {
			return "runtime." + fn.Name() + " (runtime introspection)"
		}
	case "crypto/rand":
		return "crypto/rand." + fn.Name() + " (random source)"
	case "math/rand", "math/rand/v2":
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			// Constructors are argument-preserving (the caller traces the
			// seed); everything else package-level draws from the global
			// source.
			if strings.HasPrefix(fn.Name(), "New") {
				return ""
			}
			return "rand." + fn.Name() + " (global random source)"
		}
		// A method on an RNG: shared if the receiver roots at a captured
		// variable — its draw order depends on the worker schedule.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if root := rootOf(sel.X); root != nil {
				if v, ok := t.pkg.Info.Uses[root].(*types.Var); ok && t.captured[v] {
					return fmt.Sprintf("a draw from shared RNG %q (draw order depends on the worker schedule)", v.Name())
				}
			}
		}
	}
	return ""
}

// value walks the SSA-lite graph for origins.
func (t *seedTracer) value(v Value) []string {
	switch v := v.(type) {
	case ExprVal:
		return t.trace(v.E, v.At)
	case *PhiVal:
		if t.activePhis[v] {
			return nil
		}
		t.activePhis[v] = true
		defer delete(t.activePhis, v)
		var out []string
		for _, op := range v.Ops {
			out = append(out, t.value(op)...)
		}
		return out
	case RangeVal:
		var out []string
		if tt := t.pkg.Info.TypeOf(v.S.X); tt != nil {
			if _, isMap := tt.Underlying().(*types.Map); isMap {
				out = append(out, "map iteration order")
			}
		}
		return out
	case MergeVal:
		var out []string
		for _, op := range v.Ops {
			out = append(out, t.value(op)...)
		}
		if commutativeFold(v) {
			out = dropOrderSources(out)
		}
		return out
	}
	return nil // params, opaque
}
