package lint

// lockorder is the deadlock-freedom half of what sharedstate starts:
// sharedstate proves accesses are guarded, lockorder proves the guards
// themselves cannot wedge. It builds the module-wide lock-acquisition-
// order graph — an edge A→B whenever some function acquires B while the
// must-hold lockset says A is held, directly or through any callee —
// and reports three shapes of trouble:
//
//   - a cycle in the order graph: two concurrent callers can each hold
//     one lock of the cycle and block forever on the next;
//   - a re-acquisition of a lock already held (directly, or by calling
//     a function that takes it): sync.Mutex is not reentrant, so the
//     goroutine deadlocks against itself;
//   - a mutable field accessed under *different* locks in different
//     functions, or through old-style sync/atomic calls in one place
//     and plain loads/stores in another — discipline that looks
//     guarded but excludes nothing.
//
// Lock identity is instance-abstracted (the mutex's declaring field or
// variable, see lockset.go), so the graph is small and the verdicts are
// about code shape, not heap shape. Function literals are analyzed as
// their own bodies with an empty entry lockset; locks they acquire
// participate in the graph, but are not charged to synchronous callers
// of the enclosing function.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockOrder returns the lockorder rule.
func AnalyzerLockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "lock-acquisition-order cycles, non-reentrant re-acquisition, and inconsistent lock/atomic discipline on shared fields",
		Run:  runLockOrder,
	}
}

// lockEdge is one held→acquired observation with its earliest witness.
type lockEdge struct {
	from, to *types.Var
	fn       string    // label of the function acquiring `to`
	pos      token.Pos // witness position
}

func runLockOrder(m *Module) []Diagnostic {
	g := m.CallGraph()
	var out []Diagnostic

	// Per-function lock facts for every declared body, plus separate
	// facts for nested literal bodies (empty entry set).
	nodes := g.sortedNodes()
	facts := make(map[*FuncNode]*LockFacts, len(nodes))
	extra := make(map[*FuncNode][]*LockFacts)
	for _, n := range nodes {
		bodies := FuncBodies(n.Decl)
		facts[n] = ComputeLockFacts(n.Pkg, BuildCFG(bodies[0]))
		for _, body := range bodies[1:] {
			extra[n] = append(extra[n], ComputeLockFacts(n.Pkg, BuildCFG(body)))
		}
	}

	// Transitive acquires: every lock a function may take, directly or
	// through module callees, to a fixed point. Literal bodies are
	// excluded — a spawned goroutine's acquisitions are not synchronous
	// effects of the caller.
	trans := make(map[*FuncNode]map[*types.Var]bool, len(nodes))
	for _, n := range nodes {
		set := make(map[*types.Var]bool)
		for _, a := range facts[n].Acquires {
			set[a.Lock] = true
		}
		trans[n] = set
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, c := range n.Callees {
				for _, l := range sortedLocks(trans[c]) {
					if !trans[n][l] {
						trans[n][l] = true
						changed = true
					}
				}
			}
		}
	}

	// Edges and re-acquisitions.
	edges := make(map[[2]*types.Var]*lockEdge)
	addEdge := func(from, to *types.Var, fn string, pos token.Pos) {
		key := [2]*types.Var{from, to}
		if e, ok := edges[key]; ok {
			if pos < e.pos {
				e.fn, e.pos = fn, pos
			}
			return
		}
		edges[key] = &lockEdge{from: from, to: to, fn: fn, pos: pos}
	}
	for _, n := range nodes {
		label := funcLabel(n)
		all := append([]*LockFacts{facts[n]}, extra[n]...)
		for _, lf := range all {
			for _, a := range lf.Acquires {
				if hasLock(a.Held, a.Lock) {
					out = append(out, Diagnostic{
						Pos: m.Fset.Position(a.Pos), Rule: "lockorder",
						Msg: fmt.Sprintf("%s is acquired in %s while already held; sync mutexes are not reentrant, so the goroutine deadlocks against itself",
							lockLabel(m, a.Lock), label),
					})
					continue
				}
				for _, h := range a.Held {
					addEdge(h, a.Lock, label, a.Pos)
				}
			}
			for _, lc := range lf.Calls {
				if len(lc.Held) == 0 {
					continue
				}
				for _, callee := range g.calleesOf(n.Pkg, lc.Call) {
					for _, l := range sortedLocks(trans[callee]) {
						if hasLock(lc.Held, l) {
							out = append(out, Diagnostic{
								Pos: m.Fset.Position(lc.Call.Pos()), Rule: "lockorder",
								Msg: fmt.Sprintf("%s calls %s, which acquires %s while %s already holds it; sync mutexes are not reentrant, so the goroutine deadlocks against itself",
									label, funcLabel(callee), lockLabel(m, l), label),
							})
							continue
						}
						for _, h := range lc.Held {
							addEdge(h, l, label, lc.Call.Pos())
						}
					}
				}
			}
		}
	}

	out = append(out, lockCycles(m, edges)...)
	for _, pkg := range m.Pkgs {
		if !m.InScope(pkg, "native") && !m.isFixture(pkg, "lockok", "lockbad") {
			continue
		}
		out = append(out, lockDiscipline(m, g, pkg)...)
	}
	return out
}

// lockCycles finds strongly connected components of the order graph and
// reports each component of two or more locks once, anchored at its
// earliest witness.
func lockCycles(m *Module, edges map[[2]*types.Var]*lockEdge) []Diagnostic {
	// Deterministic node and edge orders.
	sorted := make([]*lockEdge, 0, len(edges))
	for _, e := range edges {
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pos < sorted[j].pos })
	var locks []*types.Var
	seen := make(map[*types.Var]bool)
	adj := make(map[*types.Var][]*types.Var)
	for _, e := range sorted {
		for _, v := range [...]*types.Var{e.from, e.to} {
			if !seen[v] {
				seen[v] = true
				locks = append(locks, v)
			}
		}
		adj[e.from] = append(adj[e.from], e.to)
	}

	// Tarjan's SCC.
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	var sccs [][]*types.Var
	next := 0
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range locks {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	var out []Diagnostic
	for _, scc := range sccs {
		inSCC := make(map[*types.Var]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		var witnesses []*lockEdge
		for _, e := range sorted {
			if inSCC[e.from] && inSCC[e.to] {
				witnesses = append(witnesses, e)
			}
		}
		labels := make([]string, 0, len(scc))
		for _, v := range scc {
			labels = append(labels, lockLabel(m, v))
		}
		sort.Strings(labels)
		parts := make([]string, 0, len(witnesses))
		for _, e := range witnesses {
			parts = append(parts, fmt.Sprintf("%s acquires %s while holding %s",
				e.fn, lockLabel(m, e.to), lockLabel(m, e.from)))
		}
		sort.Strings(parts)
		out = append(out, Diagnostic{
			Pos: m.Fset.Position(witnesses[0].pos), Rule: "lockorder",
			Msg: fmt.Sprintf("lock-order cycle among %s: %s; two concurrent callers can deadlock",
				strings.Join(labels, ", "), strings.Join(parts, "; ")),
		})
	}
	return out
}

// lockDiscipline flags mutable fields of one package accessed under
// disjoint locks, or mixed between sync/atomic calls and plain
// loads/stores.
func lockDiscipline(m *Module, g *CallGraph, pkg *Package) []Diagnostic {
	facts := packageFieldFacts(g, pkg)
	if len(facts) == 0 {
		return nil
	}

	type access struct {
		held []*types.Var
		fn   string
	}
	guardsByField := make(map[*types.Var][]access)
	atomicBy := make(map[*types.Var]string) // field -> first fn using atomic.* on it
	plainBy := make(map[*types.Var]string)  // field -> first fn with a plain access
	var fieldOrder []*types.Var
	noteField := func(f *types.Var) {
		if _, ok := guardsByField[f]; !ok {
			guardsByField[f] = nil
			fieldOrder = append(fieldOrder, f)
		}
	}

	for _, n := range g.sortedNodes() {
		if n.Pkg != pkg || isConstructor(n.Decl) {
			continue
		}
		label := funcLabel(n)
		// Selectors handed to sync/atomic package functions (&f.x) use
		// atomic discipline; every other selector is a plain access.
		atomicSel := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedFunc(n.Pkg, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
				fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := selectedField(pkg, sel); f != nil && facts[f] != nil {
					atomicSel[sel] = true
					noteField(f)
					if _, ok := atomicBy[f]; !ok {
						atomicBy[f] = label
					}
				}
			}
			return true
		})
		guards := guardedSelectors(pkg, n.Decl)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok || atomicSel[sel] {
				return true
			}
			f := selectedField(pkg, sel)
			if f == nil || facts[f] == nil || atomicField(f) || syncField(f) {
				return true
			}
			noteField(f)
			if _, ok := plainBy[f]; !ok {
				plainBy[f] = label
			}
			if held := guards[sel]; len(held) > 0 {
				guardsByField[f] = append(guardsByField[f], access{held: held, fn: label})
			}
			return true
		})
	}

	var out []Diagnostic
	for _, f := range fieldOrder {
		if fieldDeclAllowed(m, f, "lockorder") {
			continue
		}
		pos := m.Fset.Position(f.Pos())
		if a, ok := atomicBy[f]; ok {
			if p, ok := plainBy[f]; ok {
				out = append(out, Diagnostic{Pos: pos, Rule: "lockorder",
					Msg: fmt.Sprintf("field %s of %s goes through sync/atomic in %s but is accessed plainly in %s; mixed atomic/plain discipline excludes nothing",
						f.Name(), ownerTypeName(f), a, p)})
				continue
			}
		}
		if facts[f] == nil || !facts[f].mutated {
			continue
		}
		accs := guardsByField[f]
		for i := 1; i < len(accs); i++ {
			if len(intersectLocks(accs[0].held, accs[i].held)) == 0 {
				out = append(out, Diagnostic{Pos: pos, Rule: "lockorder",
					Msg: fmt.Sprintf("field %s of %s is guarded by %s in %s but by %s in %s; disjoint locks do not exclude concurrent access",
						f.Name(), ownerTypeName(f),
						lockSetLabel(m, accs[0].held), accs[0].fn,
						lockSetLabel(m, accs[i].held), accs[i].fn)})
				break
			}
		}
	}
	return out
}

// sortedLocks renders a lock set in deterministic order.
func sortedLocks(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return lockLess(out[i], out[j]) })
	return out
}

// lockLabel renders a lock variable for diagnostics: the declaring
// struct field (pkg.Type.field) or the plain variable name.
func lockLabel(m *Module, v *types.Var) string {
	if v.IsField() {
		return ownerTypeName(v) + "." + v.Name()
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

func lockSetLabel(m *Module, set []*types.Var) string {
	parts := make([]string, 0, len(set))
	for _, v := range set {
		parts = append(parts, lockLabel(m, v))
	}
	return strings.Join(parts, "+")
}
