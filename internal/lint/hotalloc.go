package lint

// hotalloc rides the hot-path and escape layers: every heap
// allocation site at loop depth ≥ 1 under a hot entrypoint is a
// finding, ranked by its static execution-count weight. The exhaustive
// engines turn a single per-iteration allocation into millions of
// allocations per run (BENCH_5: 4.9M allocs/op on the E4 explore), so
// the rule's job is not to forbid allocation but to make every hot
// site a deliberate, budgeted decision: fix it, budget it in
// .detlint.hot, or //detlint:allow it with a justification.
//
// Recognized site kinds:
//
//   - make of a slice, map, or channel;
//   - new(T) and composite literals — only when the escape analysis
//     (escape.go) cannot prove the value stays in the frame, since the
//     compiler stack-allocates the rest;
//   - append (possible growth; amortized O(1) still allocates);
//   - string concatenation (+ / += on strings, non-constant);
//   - fmt calls except Errorf (reflection walk plus variadic boxing;
//     Errorf is error-path construction, hangsemantics' beat).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

const hotAllocName = "hotalloc"

// AnalyzerHotAlloc returns the hotalloc rule.
func AnalyzerHotAlloc() *Analyzer {
	return &Analyzer{
		Name: hotAllocName,
		Doc:  "heap allocation sites in loops reachable from hot entrypoints must be fixed, budgeted in .detlint.hot, or justified",
		Run:  runHotAlloc,
	}
}

// allocSite is one recognized allocation at its total hot loop depth.
type allocSite struct {
	node  ast.Node
	kind  string // rendered site description
	depth int    // function depth + site loop depth, capped
}

func runHotAlloc(m *Module) []Diagnostic {
	h := m.hotPaths()
	ordered, sites := hotAllocSites(m)
	var out []Diagnostic
	for _, n := range ordered {
		fn := sites[n]
		diags := make([]Diagnostic, 0, len(fn))
		for _, s := range fn {
			via := ""
			if w := h.witness[n]; w != nil && w != n {
				via = fmt.Sprintf(" (reachable from %s)", funcLabel(w))
			}
			diags = append(diags, Diagnostic{
				Pos: m.position(s.node),
				Msg: fmt.Sprintf("%s in hot loop in %s%s (depth %d, weight %d, %d hot root(s)): hoist it, budget it in %s, or justify an allow",
					s.kind, funcLabel(n), via, s.depth, hotWeight(s.depth), h.mult[n], HotBudgetFileName),
			})
		}
		out = append(out, applyBudget(m, hotAllocName, n, diags)...)
	}
	return append(out, budgetProblems(m, hotAllocName)...)
}

// hotAllocSites collects every recognized allocation site of every
// hot-reachable function at total depth ≥ 1, in deterministic order.
// Shared by the hotalloc rule and the -hotreport ranking.
func hotAllocSites(m *Module) ([]*FuncNode, map[*FuncNode][]allocSite) {
	g := m.CallGraph()
	h := m.hotPaths()
	e := m.escapes()
	var ordered []*FuncNode
	sites := make(map[*FuncNode][]allocSite)
	for _, n := range g.sortedNodes() {
		fd, hot := h.funcDepth(n)
		if !hot || !m.InScope(n.Pkg, "internal", "cmd") {
			continue
		}
		parents := parentsOf(m, n)
		var fn []allocSite
		loopDepthWalk(n.Decl.Body, func(x ast.Node, sd int) {
			total := fd + sd
			if total > maxHotDepth {
				total = maxHotDepth
			}
			if total < 1 {
				// A site outside any loop in a depth-0 function runs once
				// per engine call; only looped execution is hot.
				return
			}
			if kind, ok := classifyAllocSite(n.Pkg, n, e, parents, x); ok {
				fn = append(fn, allocSite{node: x, kind: kind, depth: total})
			}
		})
		if len(fn) > 0 {
			ordered = append(ordered, n)
			sites[n] = fn
		}
	}
	return ordered, sites
}

// parentsOf returns the parent map of the file declaring n.
func parentsOf(m *Module, n *FuncNode) map[ast.Node]ast.Node {
	for _, f := range n.Pkg.Files {
		if f.Pos() <= n.Decl.Pos() && n.Decl.Pos() < f.End() {
			return parentMap(f)
		}
	}
	return nil
}

// classifyAllocSite recognizes one AST node as an allocation site.
func classifyAllocSite(pkg *Package, n *FuncNode, e *escAnalysis, parents map[ast.Node]ast.Node, x ast.Node) (string, bool) {
	switch x := x.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					return "make(" + shortType(pkg, x.Args[0]) + ")", true
				case "new":
					if !mayEscape(pkg, n, e, parents, x) {
						return "", false
					}
					return "new(" + shortType(pkg, x.Args[0]) + ")", true
				case "append":
					return "append growth", true
				}
				return "", false
			}
		}
		if fn := resolvedFunc(pkg, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() != "Errorf" {
			return "fmt call (fmt." + fn.Name() + ")", true
		}
	case *ast.CompositeLit:
		if insideCompositeLit(parents, x) {
			return "", false // part of the enclosing literal's allocation
		}
		if !mayEscape(pkg, n, e, parents, x) {
			return "", false
		}
		return "escaping composite literal (" + shortTypeOf(pkg, x) + ")", true
	case *ast.BinaryExpr:
		if x.Op != token.ADD || !isStringExpr(pkg, x) || isConstExpr(pkg, x) {
			return "", false
		}
		if p, ok := parents[x].(*ast.BinaryExpr); ok && p.Op == token.ADD && isStringExpr(pkg, p) {
			return "", false // count a chained concatenation once, at the top
		}
		return "string concatenation", true
	case *ast.AssignStmt:
		if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(pkg, x.Lhs[0]) {
			return "string concatenation", true
		}
	}
	return "", false
}

// insideCompositeLit reports whether the literal is an element of an
// enclosing composite literal (same backing allocation).
func insideCompositeLit(parents map[ast.Node]ast.Node, x ast.Node) bool {
	for p := parents[x]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.KeyValueExpr:
			continue
		default:
			return false
		}
	}
	return false
}

func isStringExpr(pkg *Package, x ast.Expr) bool {
	t := pkg.Info.TypeOf(x)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pkg *Package, x ast.Expr) bool {
	tv, ok := pkg.Info.Types[x]
	return ok && tv.Value != nil
}

// shortType renders a type expression relative to its package.
func shortType(pkg *Package, x ast.Expr) string {
	if t := pkg.Info.TypeOf(x); t != nil {
		return types.TypeString(t, types.RelativeTo(pkg.Types))
	}
	return "?"
}

func shortTypeOf(pkg *Package, x ast.Expr) string {
	return shortType(pkg, x)
}

// sortedSiteFuncs orders the site map deterministically by position —
// exported to hotreport.go via the shared site collection.
func sortedSiteFuncs(sites map[*FuncNode][]allocSite) []*FuncNode {
	out := make([]*FuncNode, 0, len(sites))
	for n := range sites {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn.Pos() < out[j].Fn.Pos() })
	return out
}
