package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const stepLabel = "detobj/internal/lintfixture/hotallocbad.step"

// hotRun executes only the hotalloc rule over the shared fixture
// module and returns its diagnostics.
func hotRun(t *testing.T) []Diagnostic {
	t.Helper()
	loadFixtures(t)
	return Run(fixtureMod, []*Analyzer{AnalyzerHotAlloc()})
}

func countRule(diags []Diagnostic, fragment, rule string) int {
	n := 0
	for _, d := range inFile(diags, fragment) {
		if d.Rule == rule {
			n++
		}
	}
	return n
}

// TestHotBudgetSuppresses: an exact budget entry swallows a function's
// sites; the rest of the package still reports.
func TestHotBudgetSuppresses(t *testing.T) {
	loadFixtures(t)
	base := hotRun(t)
	baseStep := 0
	for _, d := range inFile(base, "hotallocbad") {
		if strings.Contains(d.Msg, "reachable from hotallocbad.Explore") {
			baseStep++
		}
	}
	if baseStep == 0 {
		t.Fatal("no unbudgeted findings in hotallocbad.step to begin with")
	}
	restore := injectHotBudgets(fixtureMod, &hotBudget{
		rule: hotAllocName, fn: stepLabel, count: baseStep,
		pos: token.Position{Filename: "<injected>", Line: 1},
	})
	defer restore()
	defer func() { fixtureDiags = Run(fixtureMod, Analyzers()) }()
	budgeted := Run(fixtureMod, []*Analyzer{AnalyzerHotAlloc()})
	for _, d := range inFile(budgeted, "hotallocbad") {
		if strings.Contains(d.Msg, "reachable from hotallocbad.Explore") {
			t.Errorf("budgeted step site still reported: %s", d)
		}
	}
	if got := countRule(budgeted, "hotallocbad", hotAllocName); got != countRule(base, "hotallocbad", hotAllocName)-baseStep {
		t.Errorf("budget suppressed the wrong number of findings: %d of %d", got, countRule(base, "hotallocbad", hotAllocName))
	}
}

// TestHotBudgetExceededAndStale: an under-sized budget tags every site
// with the excess; an over-sized one demands the baseline shrink; an
// entry matching nothing is stale outright.
func TestHotBudgetExceededAndStale(t *testing.T) {
	loadFixtures(t)
	restore := injectHotBudgets(fixtureMod,
		&hotBudget{rule: hotAllocName, fn: stepLabel, count: 1,
			pos: token.Position{Filename: "<injected>", Line: 1}},
		&hotBudget{rule: hotAllocName, fn: "detobj/internal/lintfixture/hotallocbad.Sweep", count: 9,
			pos: token.Position{Filename: "<injected>", Line: 2}},
		&hotBudget{rule: hotAllocName, fn: "detobj/internal/lintfixture/nowhere.Gone", count: 2,
			pos: token.Position{Filename: "<injected>", Line: 3}},
	)
	defer restore()
	defer func() { fixtureDiags = Run(fixtureMod, Analyzers()) }()
	diags := Run(fixtureMod, []*Analyzer{AnalyzerHotAlloc()})
	var exceeded, shrink, stale bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Msg, "exceed the "+stepLabel+" budget of 1"):
			exceeded = true
		case strings.Contains(d.Msg, "budget is 9; lower the entry"):
			shrink = true
		case strings.Contains(d.Msg, "nowhere.Gone has no hot allocation site"):
			stale = true
		}
	}
	if !exceeded {
		t.Error("under-sized budget did not tag the excess sites")
	}
	if !shrink {
		t.Error("over-sized budget did not demand the baseline shrink")
	}
	if !stale {
		t.Error("entry matching no function was not judged stale")
	}
}

// TestHotBudgetPartialRun pins the -rules contract for budgets,
// mirroring allowaudit: a run that does not exercise a hot rule must
// say nothing about that rule's budget entries.
func TestHotBudgetPartialRun(t *testing.T) {
	loadFixtures(t)
	restore := injectHotBudgets(fixtureMod,
		&hotBudget{rule: hotAllocName, fn: "detobj/internal/lintfixture/nowhere.Gone", count: 2,
			pos: token.Position{Filename: "<injected>", Line: 1}},
		&hotBudget{rule: boxingName, fn: "detobj/internal/lintfixture/nowhere.Gone", count: 2,
			pos: token.Position{Filename: "<injected>", Line: 2}},
	)
	defer restore()
	defer func() { fixtureDiags = Run(fixtureMod, Analyzers()) }()
	// Neither hot rule runs: both stale entries must go unjudged.
	unjudged := Run(fixtureMod, []*Analyzer{AnalyzerSharedState()})
	for _, d := range unjudged {
		if strings.Contains(d.Msg, "nowhere.Gone") {
			t.Errorf("partial run without hot rules judged a budget: %s", d)
		}
	}
	// Only hotalloc runs: its entry is judged, boxing's is not.
	half := Run(fixtureMod, []*Analyzer{AnalyzerHotAlloc()})
	var judgedHotalloc, judgedBoxing bool
	for _, d := range half {
		if strings.Contains(d.Msg, "stale hotalloc budget: detobj/internal/lintfixture/nowhere.Gone") {
			judgedHotalloc = true
		}
		if strings.Contains(d.Msg, "stale boxing budget") {
			judgedBoxing = true
		}
	}
	if !judgedHotalloc {
		t.Error("hotalloc run did not judge its own stale budget")
	}
	if judgedBoxing {
		t.Error("hotalloc run judged a boxing budget it cannot vouch for")
	}
}

// TestCacheKeyVersionBump: bumping the detlint version must change the
// cache key of an otherwise untouched tree, so stale caches
// self-invalidate on upgrade.
func TestCacheKeyVersionBump(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module cachetest\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package cachetest\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	analyzers := Analyzers()
	current, err := CacheKey(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := cacheKeyVersioned(dir, analyzers, detlintVersion)
	if err != nil {
		t.Fatal(err)
	}
	if current != pinned {
		t.Error("CacheKey does not pin the current version")
	}
	old, err := cacheKeyVersioned(dir, analyzers, "detlint/3.0.0")
	if err != nil {
		t.Fatal(err)
	}
	if old == current {
		t.Error("version bump did not change the cache key")
	}
}

// TestCacheKeyCoversHotBudgets: editing .detlint.hot must invalidate
// the cache — budgets change findings.
func TestCacheKeyCoversHotBudgets(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module cachetest\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	analyzers := Analyzers()
	before, err := CacheKey(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	entry := []byte("hotalloc cachetest.f 1\n")
	if err := os.WriteFile(filepath.Join(dir, HotBudgetFileName), entry, 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := CacheKey(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Errorf("%s is not part of the cache key", HotBudgetFileName)
	}
}

// TestHotReportRanking: the report ranks the fixture offenders and is
// byte-stable across builds.
func TestHotReportRanking(t *testing.T) {
	loadFixtures(t)
	rep := BuildHotReport(fixtureMod)
	if len(rep.Functions) == 0 {
		t.Fatal("hot report is empty")
	}
	for i := 1; i < len(rep.Functions); i++ {
		a, b := rep.Functions[i-1], rep.Functions[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Function > b.Function) {
			t.Errorf("ranking out of order at %d: %s(%d) before %s(%d)", i, a.Function, a.Score, b.Function, b.Score)
		}
	}
	found := false
	for _, f := range rep.Functions {
		if f.Function == "detobj/internal/lintfixture/hotallocbad.Explore" {
			found = true
			if f.Score < 10 {
				t.Errorf("Explore score = %d, want >= 10 (depth-1 sites)", f.Score)
			}
		}
	}
	if !found {
		t.Error("hotallocbad.Explore missing from the report")
	}
	b1, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BuildHotReport(fixtureMod).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("hot report JSON is not byte-stable across builds")
	}
}

// TestBenchAllocRefsDegradation: the bench cross-reference degrades
// with an explanatory note instead of a silent hole — no BENCH_N.json,
// garbage JSON, a file with no alloc figures — and stays note-free on
// a healthy file. The newest-numbered file must win.
func TestBenchAllocRefsDegradation(t *testing.T) {
	dir := t.TempDir()
	refs, note := benchAllocRefs(dir)
	if refs != nil || !strings.Contains(note, "no committed BENCH_N.json") {
		t.Errorf("empty dir: refs=%v note=%q, want nil refs and a missing-file note", refs, note)
	}

	if err := os.WriteFile(filepath.Join(dir, "BENCH_3.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, note = benchAllocRefs(dir)
	if refs != nil || !strings.Contains(note, "BENCH_3.json is not parsable") {
		t.Errorf("garbage file: refs=%v note=%q, want nil refs and a parse note", refs, note)
	}

	if err := os.WriteFile(filepath.Join(dir, "BENCH_4.json"), []byte(`{"benchmarks":[{"name":"BenchmarkX","allocs_per_op":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, note = benchAllocRefs(dir)
	if refs != nil || !strings.Contains(note, "BENCH_4.json records no allocs/op") {
		t.Errorf("zero-alloc file: refs=%v note=%q, want nil refs and an empty-figures note", refs, note)
	}

	if err := os.WriteFile(filepath.Join(dir, "BENCH_10.json"), []byte(`{"benchmarks":[{"name":"BenchmarkY","allocs_per_op":7}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, note = benchAllocRefs(dir)
	if note != "" {
		t.Errorf("healthy file: unexpected note %q", note)
	}
	if len(refs) != 1 || refs[0].Source != "BENCH_10.json" || refs[0].Name != "BenchmarkY" || refs[0].AllocsPerOp != 7 {
		t.Errorf("healthy file: refs=%v, want one BENCH_10.json/BenchmarkY/7 ref", refs)
	}
}
