package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// AnalyzerFacadeParity returns the facadeparity rule. EXPERIMENTS.md's
// module index names the internal packages each experiment exercises;
// those packages are the library's load-bearing surface, and downstream
// users reach them only through the root facade (api.go). The rule
// checks that every exported constructor (func New…) of a referenced
// internal package is mentioned somewhere in the root package — catching
// facade drift, where a package grows a constructor that experiments and
// tests use but the public API silently lacks. Intentionally
// internal-only constructors carry a //detlint:allow facadeparity
// annotation at their declaration.
func AnalyzerFacadeParity() *Analyzer {
	return &Analyzer{
		Name: "facadeparity",
		Doc:  "exported constructors of modules referenced by EXPERIMENTS.md must be reachable through api.go",
		Run:  runFacadeParity,
	}
}

// internalRef matches internal-package references in EXPERIMENTS.md,
// e.g. `internal/wrn` or internal/setconsensus/alg2_test.go.
var internalRef = regexp.MustCompile(`internal/([a-z][a-zA-Z0-9_]*)`)

func runFacadeParity(m *Module) []Diagnostic {
	expPath := filepath.Join(m.Root, "EXPERIMENTS.md")
	data, err := os.ReadFile(expPath)
	if err != nil {
		// Without an experiment index the rule has nothing to bind.
		return nil
	}
	referenced := make(map[string]bool)
	for _, match := range internalRef.FindAllStringSubmatch(string(data), -1) {
		referenced[m.Path+"/internal/"+match[1]] = true
	}
	root := m.Lookup(m.Path)
	usedByRoot := make(map[types.Object]bool)
	if root != nil {
		for _, obj := range root.Info.Uses {
			usedByRoot[obj] = true
		}
	}
	var out []Diagnostic
	paths := make([]string, 0, len(referenced))
	for p := range referenced {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pkg := m.Lookup(path)
		if pkg == nil {
			out = append(out, Diagnostic{
				Pos: token.Position{Filename: expPath, Line: 1, Column: 1},
				Msg: fmt.Sprintf("EXPERIMENTS.md references %s, which is not a package of this module", path),
			})
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			fn, ok := scope.Lookup(name).(*types.Func)
			if !ok || !fn.Exported() || !strings.HasPrefix(name, "New") {
				continue
			}
			if !usedByRoot[fn] {
				out = append(out, Diagnostic{
					Pos: m.Fset.Position(fn.Pos()),
					Msg: fmt.Sprintf("constructor %s.%s is exercised by EXPERIMENTS.md's modules but unreachable through the api.go facade", pkg.Types.Name(), name),
				})
			}
		}
	}
	return out
}
