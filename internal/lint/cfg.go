package lint

// cfg.go builds a lightweight per-function control-flow graph. The
// analyzers need far less than a compiler does — no SSA, no dominance —
// but strictly more than syntax: which statements form loops, whether a
// loop's body can leave the function (return) or the loop (break), and
// a linear block order that preserves execution positions. Blocks hold
// statements in source order; edges cover if/for/range/switch/select,
// break/continue (labeled and not), and returns. goto is treated as a
// terminator (the repository bans it stylistically; the CFG stays
// conservative if one appears).

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body (a declared
// function or a function literal).
type CFG struct {
	// Body is the function body the graph covers.
	Body *ast.BlockStmt
	// Entry is the first block executed.
	Entry *Block
	// Blocks lists every block in creation (roughly source) order.
	Blocks []*Block
	// AllLoops lists every for/range statement in the body, outermost
	// first, with exit information attached.
	AllLoops []*Loop
}

// Block is a straight-line sequence of statements with successor edges.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Stmts are the block's statements in source order. Control
	// statements (if/for/switch) appear as the last statement of the
	// block that evaluates their condition.
	Stmts []ast.Stmt
	// Succs are the possible next blocks.
	Succs []*Block
	// Preds are the blocks this one can be entered from, in edge-creation
	// order. A block with two or more predecessors is a join point: the
	// SSA-lite builder (ssa.go) places φ-nodes there, and the lockset
	// analysis (lockset.go) intersects the incoming must-hold sets.
	Preds []*Block
}

// Loop describes one for or range statement.
type Loop struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	// HasBreak reports a break statement targeting this loop.
	HasBreak bool
	// HasReturn reports a return statement anywhere inside the body
	// (including nested loops, excluding nested function literals).
	HasReturn bool
}

// BuildCFG constructs the graph for a function body. Nested function
// literals are opaque: their statements belong to their own CFG (use
// FuncBodies to enumerate them).
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{Body: body}
	b := &cfgBuilder{g: g, labels: make(map[string]*frame)}
	g.Entry = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	return g
}

// FuncBodies returns the body of fn together with the bodies of every
// function literal nested inside it, outermost first. Each body gets
// its own CFG; a literal's loops are analyzed in the context of the
// enclosing declaration.
func FuncBodies(fn *ast.FuncDecl) []*ast.BlockStmt {
	if fn.Body == nil {
		return nil
	}
	out := []*ast.BlockStmt{fn.Body}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// frame tracks one enclosing breakable/continuable construct.
type frame struct {
	loop *Loop // nil for switch/select frames
	// brk is where break jumps; cont where continue jumps (nil for
	// switch/select frames).
	brk, cont *Block
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	frames []*frame
	labels map[string]*frame // label -> frame of the labeled loop
	// pendingLabel names the label attached to the next loop statement.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// terminate ends the current block with no fallthrough successor; the
// following statements (if any) start an unreachable block.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, s)
		cond := b.cur
		then := b.newBlock()
		link(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			els := b.newBlock()
			link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		link(thenEnd, join)
		if s.Else != nil {
			link(elseEnd, join)
		} else {
			link(cond, join)
		}
		b.cur = join
	case *ast.ForStmt:
		loop := &Loop{Stmt: s}
		b.g.AllLoops = append(b.g.AllLoops, loop)
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		head := b.newBlock()
		link(b.cur, head)
		head.Stmts = append(head.Stmts, s)
		body := b.newBlock()
		exit := b.newBlock()
		link(head, body)
		if s.Cond != nil {
			link(head, exit)
		}
		b.pushLoop(loop, exit, head, s)
		b.cur = body
		b.stmt(s.Body)
		if s.Post != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Post)
		}
		link(b.cur, head)
		b.popFrame()
		b.cur = exit
	case *ast.RangeStmt:
		loop := &Loop{Stmt: s}
		b.g.AllLoops = append(b.g.AllLoops, loop)
		head := b.newBlock()
		link(b.cur, head)
		head.Stmts = append(head.Stmts, s)
		body := b.newBlock()
		exit := b.newBlock()
		link(head, body)
		link(head, exit) // a range always terminates when the source drains
		b.pushLoop(loop, exit, head, s)
		b.cur = body
		b.stmt(s.Body)
		link(b.cur, head)
		b.popFrame()
		b.cur = exit
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		cond := b.cur
		exit := b.newBlock()
		b.frames = append(b.frames, &frame{brk: exit})
		var body *ast.BlockStmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		for _, cc := range body.List {
			var stmts []ast.Stmt
			switch cc := cc.(type) {
			case *ast.CaseClause:
				// Case expressions are evaluated when the clause is
				// considered; wrap each in a synthetic ExprStmt so the
				// dataflow passes see the accesses they perform.
				for _, e := range cc.List {
					stmts = append(stmts, &ast.ExprStmt{X: e})
				}
				stmts = append(stmts, cc.Body...)
				hasDefault = hasDefault || cc.List == nil
			case *ast.CommClause:
				// The communication itself (v := <-ch, ch <- v) executes
				// when the case fires; give it a block position so the
				// dataflow passes see its definitions and accesses.
				if cc.Comm != nil {
					stmts = append([]ast.Stmt{cc.Comm}, cc.Body...)
				} else {
					stmts = cc.Body
				}
				hasDefault = hasDefault || cc.Comm == nil
			}
			cb := b.newBlock()
			link(cond, cb)
			b.cur = cb
			b.stmtList(stmts)
			link(b.cur, exit)
		}
		if !hasDefault {
			link(cond, exit)
		}
		b.popFrame()
		b.cur = exit
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		switch s.Tok {
		case token.BREAK:
			if f := b.branchTarget(s, false); f != nil {
				if f.loop != nil {
					f.loop.HasBreak = true
				}
				link(b.cur, f.brk)
			}
			b.terminate()
		case token.CONTINUE:
			if f := b.branchTarget(s, true); f != nil {
				link(b.cur, f.cont)
			}
			b.terminate()
		case token.GOTO:
			b.terminate()
		case token.FALLTHROUGH:
			// Falls into the next case body; the shared exit edge already
			// over-approximates this.
		}
	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		for _, f := range b.frames {
			if f.loop != nil {
				f.loop.HasReturn = true
			}
		}
		b.terminate()
	default:
		// Plain statements: decl, assign, expr, send, inc/dec, defer, go,
		// empty. A go/defer'd function literal's own body is a separate
		// CFG (FuncBodies); here it is a single opaque statement.
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

// pushLoop registers a loop frame and binds a pending label to it.
func (b *cfgBuilder) pushLoop(l *Loop, brk, cont *Block, stmt ast.Stmt) {
	f := &frame{loop: l, brk: brk, cont: cont}
	b.frames = append(b.frames, f)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = f
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// shallowParts returns the sub-nodes of a block-member statement that
// are evaluated at the statement's position in its block. Control
// statements contribute only the expressions their block evaluates (an
// if's condition, a range's source); their bodies are members of other
// blocks and must not be revisited here. The builder appends if/for
// Init and for Post statements as separate members, so they are not
// parts of their parent.
func shallowParts(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Node{s.Cond}
		}
		return nil
	case *ast.RangeStmt:
		return []ast.Node{s.X}
	case *ast.SwitchStmt:
		var out []ast.Node
		if s.Init != nil {
			out = append(out, s.Init)
		}
		if s.Tag != nil {
			out = append(out, s.Tag)
		}
		return out
	case *ast.TypeSwitchStmt:
		var out []ast.Node
		if s.Init != nil {
			out = append(out, s.Init)
		}
		out = append(out, s.Assign)
		return out
	case *ast.SelectStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}

// inspectShallow applies fn to every node evaluated at the statement's
// block position, skipping nested function-literal bodies (they have
// their own CFGs) and the bodies of control statements (they are
// members of other blocks).
func inspectShallow(s ast.Stmt, fn func(ast.Node) bool) {
	for _, part := range shallowParts(s) {
		ast.Inspect(part, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return fn(n)
		})
	}
}

// branchTarget resolves the frame a break/continue targets: the labeled
// loop, or the innermost breakable (break) / loop (continue).
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, needLoop bool) *frame {
	if s.Label != nil {
		return b.labels[s.Label.Name]
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needLoop && f.loop == nil {
			continue
		}
		return f
	}
	return nil
}
