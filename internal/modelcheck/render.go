package modelcheck

// render.go renders sim.Values as strings without going through fmt for
// the common cases. The exhaustive engines render a value once per
// object step — the E6 transition-table build and the valency analysis
// both sit on this path — and fmt's reflection walk plus its interface
// boxing of every argument dominated their allocation profiles
// (detlint's hotalloc/boxing rules now budget this path; see
// DESIGN.md §7). The rendered strings are byte-identical to
// fmt.Sprint's output for every type the switch names, and the default
// arm still delegates to fmt, so reports cannot drift.

import (
	"fmt"
	"strconv"
	"strings"

	"detobj/internal/sim"
)

// renderValue renders one value exactly as fmt.Sprint would.
func renderValue(v sim.Value) string {
	switch x := v.(type) {
	case nil:
		return "<nil>"
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprint(v)
	}
}

// renderValues renders a value slice exactly as fmt.Sprint renders the
// slice itself: elements space-separated inside brackets. DecisionVectors
// keys its vectors through here, so decision keys render identically to
// decisionValues without fmt's reflection walk over the slice.
func renderValues(vs []sim.Value) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(renderValue(v))
	}
	b.WriteByte(']')
	return b.String()
}
