package modelcheck

// Parallel exploration engines. Every engine in this file partitions an
// embarrassingly-parallel loop — the execution-tree frontier, the
// per-state pair analysis — across a worker pool while keeping the
// observable output BYTE-IDENTICAL to its sequential twin:
//
//   - workers replay their own Factory() configurations, so simulator
//     state is never shared between goroutines (see the sim package's
//     "Concurrency contract");
//   - results are merged by their position in the canonical depth-first
//     order (schedule/choice key, state key), never by arrival order;
//   - visit callbacks run on the calling goroutine, in the canonical
//     order, so callers need no locking;
//   - the execution budget is enforced through a shared atomic counter
//     that reproduces Explore's ErrLimit errors.
//
// The one documented divergence: when the budget trips, Explore has
// visited exactly `limit` executions before erroring, while
// ExploreParallel may have visited fewer (workers racing past the limit
// abort the in-order stream early). The visited prefix is still a
// prefix of the canonical order, and the returned (count, error) pair
// is identical. None of the repository's exhaustive checks run near
// their budgets.

import (
	"sync"
	"sync/atomic"

	"detobj/internal/par"
	"detobj/internal/sim"
)

// splitFactor is how many subtree roots the frontier split aims to
// produce per worker. More roots mean better load balance (subtrees are
// wildly uneven) at the cost of re-running a few short prefixes.
const splitFactor = 16

// rootChanCap bounds the per-root execution buffer between a worker and
// the merger; workers block (backpressure) when the merger lags.
const rootChanCap = 128

// errAborted unwinds a worker whose work is moot: the merger already
// has its answer (an error or the budget) and tore the pool down.
type abortError struct{}

func (abortError) Error() string { return "modelcheck: exploration aborted" }

// fnode is one node of the split frontier, in depth-first order: an
// unexpanded prefix handed to a worker, a complete execution discovered
// during splitting, or a run error pinned to its tree position.
type fnode struct {
	open           bool
	sched, choices []int
	exec           Execution // leaf payload when !open and err == nil
	err            error     // non-demand run error at this position
}

// splitFrontier expands the execution tree breadth-first — preserving
// depth-first order by replacing each node with its ordered children in
// place — until at least target unexpanded subtree roots exist (or the
// tree is fully enumerated). Each expansion costs one short prefix
// replay.
func splitFrontier(f Factory, target int) []fnode {
	nodes := []fnode{{open: true}}
	for {
		open := 0
		for _, n := range nodes {
			if n.open {
				open++
			}
		}
		if open == 0 || open >= target {
			return nodes
		}
		next := make([]fnode, 0, 2*len(nodes))
		for _, n := range nodes {
			if !n.open {
				next = append(next, n)
				continue
			}
			res, err := runScripted(f, n.sched, n.choices)
			if err != nil {
				var demand choiceDemand
				if asDemand(err, &demand) {
					for c := 0; c < demand.n; c++ {
						next = append(next, fnode{open: true, sched: n.sched, choices: appendStep(n.choices, c)})
					}
					continue
				}
				next = append(next, fnode{err: err})
				continue
			}
			if len(res.Enabled) == 0 {
				next = append(next, fnode{exec: Execution{
					Schedule: append([]int(nil), n.sched...),
					Choices:  append([]int(nil), n.choices...),
					Result:   res,
				}})
				continue
			}
			for _, id := range res.Enabled {
				next = append(next, fnode{open: true, sched: appendStep(n.sched, id), choices: n.choices})
			}
		}
		nodes = next
	}
}

// rootStream carries one subtree's executions from its worker to the
// merger: executions arrive on ch in depth-first order, then exactly
// one final status on done (nil for a fully enumerated subtree, the
// subtree's run error, or abortError).
type rootStream struct {
	ch   chan Execution
	done chan error
}

// ExploreParallel enumerates exactly the executions of Explore —
// same visit sequence, same count, same errors — across a pool of
// workers (<= 0 means GOMAXPROCS). The schedule/choice prefix frontier
// is partitioned into subtrees; each worker replays its own Factory()
// configurations, and the merger emits completed executions in the
// canonical depth-first order, so visit is called sequentially on the
// calling goroutine and needs no locking. The execution budget is
// shared across workers through an atomic counter; see the package
// comment in this file for the one divergence on the ErrLimit path.
func ExploreParallel(f Factory, limit, workers int, visit func(e Execution) error) (int, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	workers = par.Normalize(workers, -1)
	if workers == 1 {
		return Explore(f, limit, visit)
	}

	nodes := splitFrontier(f, workers*splitFactor)
	streams := make([]*rootStream, 0, len(nodes))
	var (
		produced atomic.Int64 // executions discovered, split leaves included
		limitHit atomic.Bool
		abortCh  = make(chan struct{})
		abort    sync.Once
		wg       sync.WaitGroup
	)
	closeAbort := func() { abort.Do(func() { close(abortCh) }) }
	openIdx := make([]int, 0, len(nodes)) // node index of each subtree root
	for i, n := range nodes {
		if n.open {
			openIdx = append(openIdx, i)
		} else if n.err == nil {
			produced.Add(1) // split leaves count against the budget
		}
	}
	for range openIdx {
		streams = append(streams, &rootStream{ch: make(chan Execution, rootChanCap), done: make(chan error, 1)})
	}

	// Workers claim subtree roots in increasing index order, so the
	// merger's next root is always the oldest claimed one — streaming
	// stays deadlock-free under channel backpressure.
	var nextRoot atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//detlint:allow nodeterminism worker pool: subtree roots are claimed via an atomic counter and every execution is delivered through its root's own stream, merged by tree position — arrival order is unobservable
		go func() {
			defer wg.Done()
			for {
				r := int(nextRoot.Add(1) - 1)
				if r >= len(openIdx) {
					return
				}
				n := nodes[openIdx[r]]
				out := streams[r]
				err := exploreDFS(f, n.sched, n.choices, func(e Execution) error {
					if produced.Add(1) > int64(limit) {
						limitHit.Store(true)
						closeAbort()
						return abortError{}
					}
					//detlint:allow nodeterminism two-case select: delivery vs. pool teardown; the merger consumes streams strictly in tree order, so which case fires never reaches the output
					select {
					case out.ch <- e:
						return nil
					case <-abortCh:
						return abortError{}
					}
				})
				out.done <- err
				close(out.ch)
				if err != nil {
					if _, aborted := err.(abortError); !aborted {
						// A real run error: deeper exploration of THIS
						// subtree stops (as it would sequentially), but
						// other subtrees keep going — the merger decides
						// whether the error is reachable.
						continue
					}
					return
				}
			}
		}()
	}

	count, retErr := 0, error(nil)
	root := 0
merge:
	for _, n := range nodes {
		switch {
		case n.err != nil:
			retErr = n.err
			break merge
		case !n.open:
			// Budget check before the count moves, mirroring Explore:
			// the returned count is the number of visit calls.
			if count == limit {
				retErr = errLimitExceeded(limit)
				break merge
			}
			count++
			if err := visit(n.exec); err != nil {
				retErr = err
				break merge
			}
		default:
			out := streams[root]
			root++
			for e := range out.ch {
				if count == limit {
					retErr = errLimitExceeded(limit)
					break merge
				}
				count++
				if err := visit(e); err != nil {
					retErr = err
					break merge
				}
			}
			if err := <-out.done; err != nil {
				if _, aborted := err.(abortError); aborted && limitHit.Load() {
					// The budget tripped inside a worker; report it the
					// way Explore does: limit executions visited, then
					// the canonical error.
					count = limit
					retErr = errLimitExceeded(limit)
				} else {
					retErr = err
				}
				break merge
			}
		}
	}
	closeAbort()
	wg.Wait()
	return count, retErr
}

// VerifyAllParallel is VerifyAll on the parallel engine.
func VerifyAllParallel(f Factory, limit, workers int, check func(res *sim.Result) error) (int, error) {
	return ExploreParallel(f, limit, workers, func(e Execution) error {
		if err := check(e.Result); err != nil {
			return verifyErr(e, err)
		}
		return nil
	})
}
