package modelcheck

import (
	"strings"
	"testing"

	"detobj/internal/consensus"
	"detobj/internal/registers"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

func registerAlphabet(values ...string) []sim.Invocation {
	ops := []sim.Invocation{{Op: "read"}}
	for _, v := range values {
		ops = append(ops, sim.Invocation{Op: "write", Args: []sim.Value{v}})
	}
	return ops
}

func TestReachableRegister(t *testing.T) {
	states, err := Reachable(registers.New("init"), registerAlphabet("a", "b"), 0)
	if err != nil {
		t.Fatalf("Reachable: %v", err)
	}
	if len(states) != 3 { // init, a, b
		t.Errorf("states = %d, want 3", len(states))
	}
}

func TestReachableLimit(t *testing.T) {
	if _, err := Reachable(registers.New("init"), registerAlphabet("a", "b", "c"), 2); err == nil {
		t.Error("state limit not enforced")
	}
}

func TestObsClassesRegister(t *testing.T) {
	alpha := registerAlphabet("a", "b")
	states, err := Reachable(registers.New("init"), alpha, 0)
	if err != nil {
		t.Fatalf("Reachable: %v", err)
	}
	classes := ObsClasses(states, alpha)
	// All three states are distinguishable by a read.
	seen := map[int]bool{}
	for _, c := range classes {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Errorf("classes = %d, want 3", len(seen))
	}
}

// TestIndistRegistersPass (E6 control): registers meet every obligation —
// each write/read pair commutes or overwrites for one of the two issuers —
// which is why registers cannot solve 2-process consensus.
func TestIndistRegistersPass(t *testing.T) {
	rep, err := CheckIndistinguishability(registers.New("init"), registerAlphabet("a", "b"), 0)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.Passed() {
		t.Errorf("registers failed %d obligations, e.g. %v", len(rep.Failures), rep.Failures[0])
	}
	if rep.Pairs == 0 || rep.States == 0 {
		t.Errorf("report empty: %+v", rep)
	}
}

// TestIndistWRNPass (E6, Lemma 38): WRN_k for k ≥ 3 meets every
// obligation over every reachable state, mechanizing the paper's Case 1
// (same index: overwriting) and Case 2 (different index: at least one
// side's read cell is untouched).
func TestIndistWRNPass(t *testing.T) {
	cases := []struct{ k, domain int }{
		{3, 2}, {3, 3}, {4, 2}, {5, 2},
	}
	for _, c := range cases {
		rep, err := CheckIndistinguishability(wrn.New(c.k), WRNAlphabet(c.k, c.domain), 1<<14)
		if err != nil {
			t.Fatalf("k=%d domain=%d: %v", c.k, c.domain, err)
		}
		if !rep.Passed() {
			t.Errorf("k=%d domain=%d: %d failures, e.g. %v", c.k, c.domain, len(rep.Failures), rep.Failures[0])
		}
	}
}

// TestIndistWRN2Fails (E6): WRN_2 — i.e. SWAP — violates the obligations:
// each process's single step both overwrites the other's read cell and
// reads the other's written cell, so both sides distinguish. This is the
// structural reason WRN_2 has consensus number 2 while WRN_{k≥3} has 1.
func TestIndistWRN2Fails(t *testing.T) {
	rep, err := CheckIndistinguishability(wrn.New(2), WRNAlphabet(2, 2), 0)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if rep.Passed() {
		t.Fatal("WRN_2 passed the indistinguishability check; it must fail (consensus number 2)")
	}
	// The failing pair must involve the two distinct indices.
	found := false
	for _, f := range rep.Failures {
		if f.A.Arg(0) != f.B.Arg(0) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no cross-index failure among %v", rep.Failures)
	}
}

// TestIndistOneShotWRNPass: the one-shot variant exposes no distinguishing
// pair for k ≥ 3 (consistent with consensus number 1), but repeated-index
// races are degenerate — the issuer hangs in one order — so the textbook
// argument is not Clean for it, unlike multi-shot WRN.
func TestIndistOneShotWRNPass(t *testing.T) {
	rep, err := CheckIndistinguishability(wrn.NewOneShot(3), WRNAlphabet(3, 2), 1<<14)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.Passed() {
		t.Errorf("1sWRN_3: %d distinguishing pairs, e.g. %v", len(rep.Failures), rep.Failures[0])
	}
	if len(rep.Degenerate) == 0 {
		t.Error("expected degenerate repeated-index pairs on the one-shot object")
	}
	if rep.Clean() {
		t.Error("Clean() must be false in the presence of degenerate pairs")
	}
}

// TestIndistMultiShotClean: multi-shot WRN_3 and registers are Clean — no
// hangs anywhere, the verbatim Lemma 38 analysis.
func TestIndistMultiShotClean(t *testing.T) {
	rep, err := CheckIndistinguishability(wrn.New(3), WRNAlphabet(3, 2), 0)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.Clean() {
		t.Errorf("WRN_3 not clean: %d failures, %d degenerate", len(rep.Failures), len(rep.Degenerate))
	}
}

// TestIndistSwapFails: a SWAP object fails (consensus number 2).
func TestIndistSwapFails(t *testing.T) {
	alpha := []sim.Invocation{
		{Op: "swap", Args: []sim.Value{"p"}},
		{Op: "swap", Args: []sim.Value{"q"}},
	}
	rep, err := CheckIndistinguishability(consensus.NewSwap(nil), alpha, 0)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if rep.Passed() {
		t.Error("SWAP passed; it must fail")
	}
}

// TestIndistTASFails: test-and-set fails (consensus number 2).
func TestIndistTASFails(t *testing.T) {
	alpha := []sim.Invocation{{Op: "tas"}}
	rep, err := CheckIndistinguishability(consensus.NewTestAndSet(), alpha, 0)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if rep.Passed() {
		t.Error("test-and-set passed; it must fail")
	}
}

// TestIndistConsensusCellFails: a consensus cell fails, as it must — it IS
// consensus.
func TestIndistConsensusCellFails(t *testing.T) {
	alpha := []sim.Invocation{
		{Op: "propose", Args: []sim.Value{"p"}},
		{Op: "propose", Args: []sim.Value{"q"}},
	}
	rep, err := CheckIndistinguishability(consensus.NewCell(4), alpha, 0)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if rep.Passed() {
		t.Error("consensus cell passed; it must fail")
	}
}

func TestPairFailureString(t *testing.T) {
	f := PairFailure{State: "[a b]", A: sim.Invocation{Op: "x"}, B: sim.Invocation{Op: "y"}}
	if !strings.Contains(f.String(), "x()") || !strings.Contains(f.String(), "[a b]") {
		t.Errorf("String = %q", f.String())
	}
}

func TestWRNAlphabet(t *testing.T) {
	alpha := WRNAlphabet(3, 2)
	if len(alpha) != 6 {
		t.Errorf("alphabet size = %d, want 6", len(alpha))
	}
}

// TestIndistCommon2Fail: the Common2 objects — FIFO queue and fetch&add —
// must expose distinguishing races, since both have consensus number 2.
// Their state spaces are unbounded (enq and fad grow them), so instead of
// full reachability the test judges the decisive pairs directly: a
// distinguishing verdict depends only on the racers' outputs, never on
// the equivalence classes.
func TestIndistCommon2Fail(t *testing.T) {
	// State-identity as the (finest possible) equivalence: conservative
	// for indistinguishability, exact for output-based distinguishing.
	keyCls := func() func(Finite) int {
		seen := map[string]int{}
		return func(s Finite) int {
			k := s.StateKey()
			if id, ok := seen[k]; ok {
				return id
			}
			id := len(seen)
			seen[k] = id
			return id
		}
	}

	// Queue seeded with one token: two racing dequeuers each see
	// different results depending on order — both survive, both observe.
	deq := sim.Invocation{Op: "deq"}
	if got := classifyStep(consensus.NewQueue("tok", "t2"), deq, deq, keyCls()); got != pairDistinguish {
		t.Errorf("queue deq/deq race = %v, want distinguishing (consensus number 2)", got)
	}

	// fetch&add: two racing adders read different previous values.
	fad := sim.Invocation{Op: "fad", Args: []sim.Value{1}}
	if got := classifyStep(consensus.NewFetchAdd(0), fad, fad, keyCls()); got != pairDistinguish {
		t.Errorf("fetch&add race = %v, want distinguishing (consensus number 2)", got)
	}
}
