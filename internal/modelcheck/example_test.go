package modelcheck_test

import (
	"fmt"

	"detobj/internal/modelcheck"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// ExampleExplore enumerates every execution of Algorithm 2 with three
// processes: one WRN step each, hence 3! interleavings.
func ExampleExplore() {
	n, err := modelcheck.Explore(func() sim.Config {
		objects := map[string]sim.Object{}
		progs := setconsensus.NewAlg2(objects, "W", []sim.Value{1, 2, 3})
		return sim.Config{Objects: objects, Programs: progs}
	}, 0, func(modelcheck.Execution) error { return nil })
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output: 6
}

// ExampleCheckIndistinguishability mechanizes Lemma 38: WRN_3 passes
// every obligation, WRN_2 (= SWAP) does not.
func ExampleCheckIndistinguishability() {
	r3, err := modelcheck.CheckIndistinguishability(wrn.New(3), modelcheck.WRNAlphabet(3, 2), 0)
	if err != nil {
		panic(err)
	}
	r2, err := modelcheck.CheckIndistinguishability(wrn.New(2), modelcheck.WRNAlphabet(2, 2), 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(r3.Passed(), r2.Passed())
	// Output: true false
}
