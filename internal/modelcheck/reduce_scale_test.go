package modelcheck

import (
	"testing"
)

// TestReducedE4Procs5 pins the reduced engine at the first scale the
// exhaustive explorers cannot reach under the default test timeout:
// E4 with k=3 and five processes (one solo writer plus four symmetric
// followers).  The execution count 910800 was verified once against
// ExploreParallel on the same factory (~42s wall clock); the reduced
// engine reconstructs it from under two thousand concrete runs in
// tens of milliseconds.  cmd/modelcheck's -stats E4r table prints
// this configuration and cites this test as the oracle record.
func TestReducedE4Procs5(t *testing.T) {
	const wantExecutions = 910800

	f := relaxedFactory(3, 5)
	sym := SymmetricClasses(5, []int{1, 2, 3, 4})

	visits := 0
	rep, err := ExploreReduced(f, Reduced{Sym: sym}, 0, func(e Execution, orbit int) error {
		visits++
		if orbit < 1 || orbit > len(sym.Perms) {
			t.Fatalf("orbit %d outside [1, %d]", orbit, len(sym.Perms))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ExploreReduced: %v", err)
	}
	if rep.Executions != wantExecutions {
		t.Errorf("Executions = %d, want %d (oracle: ExploreParallel on relaxedFactory(3, 5))",
			rep.Executions, wantExecutions)
	}
	if rep.Representatives != visits {
		t.Errorf("Representatives = %d, but visit ran %d times", rep.Representatives, visits)
	}
	if rep.Group != 24 {
		t.Errorf("Group = %d, want 4! = 24", rep.Group)
	}
	if !rep.Deduped {
		t.Error("dedup unexpectedly unavailable: relaxed WRN objects must implement StateSigner")
	}
	// The whole point: representatives are a small fraction of the space.
	if rep.Representatives >= wantExecutions/100 {
		t.Errorf("Representatives = %d — reduction bought less than 100x", rep.Representatives)
	}
}
