package modelcheck

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"detobj/internal/consensus"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// ringFactory is the E1 workload at parameter k: k processes solving
// (k−1)-set consensus from one 1sWRN_k via Algorithm 2. Process i writes
// cell i and reads cell (i+1) mod k, so the configuration is
// rotation-symmetric (and only rotation-symmetric).
func ringFactory(k int) Factory {
	return func() sim.Config {
		vs := make([]sim.Value, k)
		for i := range vs {
			vs[i] = i * 10
		}
		objects := map[string]sim.Object{}
		return sim.Config{Objects: objects, Programs: setconsensus.NewAlg2(objects, "W", vs)}
	}
}

// identRename is a Symmetry.Rename for protocols whose decision values
// do not mention process identities (counter readings, shared reads).
func identRename(v sim.Value, _ []int) sim.Value { return v }

func TestSymmetryGroupHelpers(t *testing.T) {
	if g := len(SymmetricClasses(4, []int{1, 2, 3}).Perms); g != 6 {
		t.Errorf("S({1,2,3}) in 4 procs: order %d, want 6", g)
	}
	if g := len(SymmetricClasses(5, []int{0, 2}, []int{1, 3}).Perms); g != 4 {
		t.Errorf("S({0,2})xS({1,3}) in 5 procs: order %d, want 4", g)
	}
	if g := len(CyclicRotations(5).Perms); g != 5 {
		t.Errorf("C_5: order %d, want 5", g)
	}
}

func TestSymmetryGroupValidation(t *testing.T) {
	cases := []struct {
		name  string
		perms [][]int
	}{
		{"no identity", [][]int{{1, 0}}},
		{"not closed", [][]int{{0, 1, 2}, {1, 2, 0}}}, // missing the second rotation
		{"wrong length", [][]int{{0, 1}}},
		{"not a permutation", [][]int{{0, 1, 2}, {0, 0, 2}}},
		{"duplicate", [][]int{{0, 1, 2}, {0, 1, 2}}},
	}
	for _, c := range cases {
		_, err := ExploreReduced(counterFactory(3, 1), Reduced{Sym: Symmetry{Perms: c.perms}}, 0, nil)
		if err == nil {
			t.Errorf("%s: group accepted", c.name)
		}
	}
}

// lexLeast reports whether sched is lexicographically least in its orbit
// under perms — the invariant every visited representative must satisfy.
func lexLeast(sched []int, perms [][]int) bool {
	img := make([]int, len(sched))
	for _, p := range perms {
		for i, id := range sched {
			img[i] = p[id]
		}
		for i := range sched {
			if img[i] != sched[i] {
				if img[i] < sched[i] {
					return false
				}
				break
			}
		}
	}
	return true
}

// TestReducedOracleExplore is the tentpole cross-check for ExploreReduced:
// across every experiment-shaped factory and its symmetry group, with the
// transposition table on and off, the reconstructed execution count must
// equal the unreduced Explore count, the visited representatives must be
// canonical (lex-least in their orbits), and without dedup the visited
// orbit sizes must sum back to the full count.
func TestReducedOracleExplore(t *testing.T) {
	cases := []struct {
		name string
		f    Factory
		sym  Symmetry
	}{
		{"counter2x1/S2", counterFactory(2, 1), SymmetricClasses(2, []int{0, 1})},
		{"counter3x2/S3", counterFactory(3, 2), SymmetricClasses(3, []int{0, 1, 2})},
		{"counter3x2/S{0,1}", counterFactory(3, 2), SymmetricClasses(3, []int{0, 1})},
		{"counter3x2/trivial", counterFactory(3, 2), Symmetry{}},
		{"coin2x1/S2", coinFactory(2, 1), SymmetricClasses(2, []int{0, 1})},
		{"coin2x2/S2", coinFactory(2, 2), SymmetricClasses(2, []int{0, 1})},
		{"relaxedE4-3x3/S{1,2}", relaxedFactory(3, 3), SymmetricClasses(3, []int{1, 2})},
		{"ring3/C3", ringFactory(3), CyclicRotations(3)},
		{"ring4/C4", ringFactory(4), CyclicRotations(4)},
		{"swapCons/S2", swapConsensusFactory(), SymmetricClasses(2, []int{0, 1})},
	}
	for _, c := range cases {
		want, err := Explore(c.f, 0, func(Execution) error { return nil })
		if err != nil {
			t.Fatalf("%s: Explore: %v", c.name, err)
		}
		perms := c.sym.Perms
		if len(perms) == 0 {
			perms = [][]int{identityPerm(len(c.f().Programs))}
		}
		for _, noDedup := range []bool{false, true} {
			visited, orbitSum := 0, 0
			rep, err := ExploreReduced(c.f, Reduced{Sym: c.sym, NoDedup: noDedup}, 0, func(e Execution, orbit int) error {
				visited++
				orbitSum += orbit
				if !lexLeast(e.Schedule, perms) {
					return fmt.Errorf("non-canonical representative %v", e.Schedule)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s dedup=%v: %v", c.name, !noDedup, err)
			}
			if rep.Executions != want {
				t.Errorf("%s dedup=%v: reconstructed %d executions, want %d (report %+v)",
					c.name, !noDedup, rep.Executions, want, rep)
			}
			if rep.Group != len(perms) {
				t.Errorf("%s: group %d, want %d", c.name, rep.Group, len(perms))
			}
			if rep.Representatives != visited {
				t.Errorf("%s dedup=%v: Representatives %d, visits %d", c.name, !noDedup, rep.Representatives, visited)
			}
			if noDedup {
				if rep.Deduped {
					t.Errorf("%s: NoDedup ignored", c.name)
				}
				if orbitSum != want {
					t.Errorf("%s: orbit sizes sum to %d, want %d", c.name, orbitSum, want)
				}
			} else if !rep.Deduped {
				t.Errorf("%s: dedup unexpectedly unavailable (report %+v)", c.name, rep)
			}
		}
	}
}

// TestReducedDedupReachesFixpoint: on a workload with heavy state
// sharing, the transposition table must actually fire — and the visited
// representative set with dedup must be a subset of the one without.
func TestReducedDedupReachesFixpoint(t *testing.T) {
	f := counterFactory(3, 2)
	sym := SymmetricClasses(3, []int{0, 1, 2})
	full := map[string]bool{}
	if _, err := ExploreReduced(f, Reduced{Sym: sym, NoDedup: true}, 0, func(e Execution, orbit int) error {
		full[fmt.Sprint(e.Schedule, e.Choices)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := ExploreReduced(f, Reduced{Sym: sym}, 0, func(e Execution, orbit int) error {
		if !full[fmt.Sprint(e.Schedule, e.Choices)] {
			return fmt.Errorf("deduped run visited %v %v, unseen without dedup", e.Schedule, e.Choices)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits == 0 {
		t.Errorf("no transposition hits on a diamond-heavy workload (report %+v)", rep)
	}
	if rep.Misses != rep.ReducedConfigs {
		t.Errorf("Misses %d != ReducedConfigs %d with dedup on", rep.Misses, rep.ReducedConfigs)
	}
}

// TestReducedOracleValency cross-checks AnalyzeValencyReduced against
// AnalyzeValency on every E11 protocol shape: all verdict fields must be
// equal, and a disagreeing protocol's canonical-first schedule must
// replay to a genuinely disagreeing execution.
func TestReducedOracleValency(t *testing.T) {
	two := func(build func(map[string]sim.Object, string, sim.Value, sim.Value) []sim.Program) Factory {
		return func() sim.Config {
			objects := map[string]sim.Object{}
			progs := build(objects, "X", 10, 20)
			return sim.Config{Objects: objects, Programs: progs}
		}
	}
	sym2 := SymmetricClasses(2, []int{0, 1})
	sym2.Rename = RenameByInputs([]sim.Value{10, 20})
	naiveSym := SymmetricClasses(3, []int{0, 2})
	naiveSym.Rename = RenameByInputs([]sim.Value{10, 20, 30})
	relSym := SymmetricClasses(3, []int{1, 2})
	relSym.Rename = RenameByInputs([]sim.Value{"solo", "p1", "p2"})
	counterSym := SymmetricClasses(3, []int{0, 1, 2})
	counterSym.Rename = identRename

	cases := []struct {
		name string
		f    Factory
		sym  Symmetry
	}{
		{"swap", two(consensus.TwoConsFromSwap), sym2},
		{"wrn2", two(consensus.TwoConsFromWRN2), sym2},
		{"tas", two(consensus.TwoConsFromTAS), sym2},
		{"queue", two(consensus.TwoConsFromQueue), sym2},
		{"fetchadd", two(consensus.TwoConsFromFetchAdd), sym2},
		{"naive3", func() sim.Config {
			objects := map[string]sim.Object{}
			progs := consensus.ThreeFromWRN2Naive(objects, "W", [3]sim.Value{10, 20, 30})
			return sim.Config{Objects: objects, Programs: progs}
		}, naiveSym},
		{"relaxedE4-3x3", relaxedFactory(3, 3), relSym},
		{"counter3x2", counterFactory(3, 2), counterSym},
	}
	for _, c := range cases {
		want, err := AnalyzeValency(c.f, 0)
		if err != nil {
			t.Fatalf("%s: AnalyzeValency: %v", c.name, err)
		}
		for _, noDedup := range []bool{false, true} {
			got, srep, err := AnalyzeValencyReduced(c.f, Reduced{Sym: c.sym, NoDedup: noDedup}, 0)
			if err != nil {
				t.Fatalf("%s dedup=%v: %v", c.name, !noDedup, err)
			}
			// DisagreementSchedule is canonical-first rather than
			// DFS-first (documented); every other field must match.
			gotCmp, wantCmp := *got, *want
			gotCmp.DisagreementSchedule, wantCmp.DisagreementSchedule = nil, nil
			if !reflect.DeepEqual(&gotCmp, &wantCmp) {
				t.Errorf("%s dedup=%v: report diverges:\n got %+v\nwant %+v", c.name, !noDedup, got, want)
			}
			if srep.Executions != want.Executions || srep.Configs != want.Configs {
				t.Errorf("%s dedup=%v: symmetry accounting (%d configs, %d execs) != unreduced (%d, %d)",
					c.name, !noDedup, srep.Configs, srep.Executions, want.Configs, want.Executions)
			}
			if !got.Agreement {
				res, rerr := runScripted(c.f, got.DisagreementSchedule, nil)
				if rerr != nil {
					t.Fatalf("%s: replaying disagreement %v: %v", c.name, got.DisagreementSchedule, rerr)
				}
				if vals := decisionValues(res); len(vals) < 2 {
					t.Errorf("%s: schedule %v replays to decisions %v, want a disagreement",
						c.name, got.DisagreementSchedule, vals)
				}
			}
		}
	}
}

// TestReducedBudgetParity: whether ErrLimit fires — and its rendering —
// must match the unreduced engines at the exact boundary, even though
// the reduced budget is charged in orbit-sized chunks.
func TestReducedBudgetParity(t *testing.T) {
	f := counterFactory(3, 2)
	sym := SymmetricClasses(3, []int{0, 1, 2})
	total, err := Explore(f, 0, func(Execution) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{total, total - 1, 1} {
		_, seqErr := Explore(f, limit, func(Execution) error { return nil })
		rep, redErr := ExploreReduced(f, Reduced{Sym: sym}, limit, nil)
		if (seqErr == nil) != (redErr == nil) {
			t.Fatalf("limit=%d: Explore err %v, ExploreReduced err %v", limit, seqErr, redErr)
		}
		if seqErr != nil && seqErr.Error() != redErr.Error() {
			t.Errorf("limit=%d: error %q, want %q", limit, redErr, seqErr)
		}
		if redErr == nil && rep.Executions != total {
			t.Errorf("limit=%d: reconstructed %d, want %d", limit, rep.Executions, total)
		}

		symRen := sym
		symRen.Rename = identRename
		_, seqValErr := AnalyzeValency(f, limit)
		_, _, redValErr := AnalyzeValencyReduced(f, Reduced{Sym: symRen}, limit)
		if (seqValErr == nil) != (redValErr == nil) {
			t.Fatalf("limit=%d: AnalyzeValency err %v, AnalyzeValencyReduced err %v", limit, seqValErr, redValErr)
		}
		if seqValErr != nil && seqValErr.Error() != redValErr.Error() {
			t.Errorf("limit=%d: valency error %q, want %q", limit, redValErr, seqValErr)
		}
	}
}

// TestReducedValencyRejectsNondeterminism: same errNondetValency wrap as
// the unreduced engine.
func TestReducedValencyRejectsNondeterminism(t *testing.T) {
	_, seqErr := AnalyzeValency(coinFactory(1, 1), 0)
	if seqErr == nil {
		t.Fatal("sequential engine accepted a nondeterministic object")
	}
	_, _, err := AnalyzeValencyReduced(coinFactory(1, 1), Reduced{}, 0)
	if err == nil || err.Error() != seqErr.Error() {
		t.Errorf("err = %v, want %v", err, seqErr)
	}
}

// TestReducedValencyRequiresRename: a nontrivial group without a value
// renaming is rejected up front (value sets of orbit siblings are images
// of each other, so the closure needs Rename).
func TestReducedValencyRequiresRename(t *testing.T) {
	_, _, err := AnalyzeValencyReduced(counterFactory(2, 1), Reduced{Sym: SymmetricClasses(2, []int{0, 1})}, 0)
	if err == nil {
		t.Fatal("nontrivial group without Rename accepted")
	}
}

// TestExploreLimitBoundaryParity pins the documented budget contract at
// the exact boundary for both engines: at limit == total the full count
// comes back with no error; at limit == total−1 exactly limit executions
// are visited before the canonical ErrLimit, with identical (count,
// error) pairs and a canonical visited prefix.
func TestExploreLimitBoundaryParity(t *testing.T) {
	f := counterFactory(3, 2)
	total, err := Explore(f, 0, func(Execution) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	errStr := func(e error) string {
		if e == nil {
			return "<nil>"
		}
		return e.Error()
	}
	for _, limit := range []int{total, total - 1} {
		var seq []string
		seqN, seqErr := Explore(f, limit, func(e Execution) error {
			seq = append(seq, renderExec(e))
			return nil
		})
		if limit == total {
			if seqErr != nil || seqN != total {
				t.Fatalf("limit==total: (%d, %v), want (%d, nil)", seqN, seqErr, total)
			}
		} else {
			if !errors.Is(seqErr, ErrLimit) {
				t.Fatalf("limit==total-1: err = %v, want ErrLimit", seqErr)
			}
			if seqN != limit {
				t.Fatalf("limit==total-1: count %d, want %d (the number of executions visited)", seqN, limit)
			}
		}
		if len(seq) != seqN {
			t.Fatalf("limit=%d: %d visits but count %d", limit, len(seq), seqN)
		}
		for _, workers := range []int{2, 4} {
			var got []string
			n, perr := ExploreParallel(f, limit, workers, func(e Execution) error {
				got = append(got, renderExec(e))
				return nil
			})
			if n != seqN || errStr(perr) != errStr(seqErr) {
				t.Errorf("limit=%d workers=%d: (%d, %q), want (%d, %q)", limit, workers, n, errStr(perr), seqN, errStr(seqErr))
			}
			// On the ErrLimit path the parallel engine may visit fewer
			// executions (documented), but always a canonical prefix.
			if len(got) > len(seq) {
				t.Fatalf("limit=%d workers=%d: %d visits > sequential %d", limit, workers, len(got), len(seq))
			}
			for i := range got {
				if got[i] != seq[i] {
					t.Fatalf("limit=%d workers=%d: visit %d diverges", limit, workers, i)
				}
			}
			if limit == total && len(got) != len(seq) {
				t.Errorf("limit==total workers=%d: %d visits, want %d", workers, len(got), len(seq))
			}
		}
	}
}

// TestScriptDivergenceDetected: an out-of-range replayed choice value
// must surface as ErrScriptDivergence instead of being silently wrapped
// modulo the demand.
func TestScriptDivergenceDetected(t *testing.T) {
	_, err := runScripted(coinFactory(1, 1), []int{0}, []int{5})
	if !errors.Is(err, ErrScriptDivergence) {
		t.Fatalf("err = %v, want ErrScriptDivergence", err)
	}
	want := `script[0] = 5 but object "coin" demanded Intn(2)`
	if got := err.Error(); !contains(got, want) {
		t.Errorf("err = %q, want it to contain %q", got, want)
	}
	// In-range scripts replay unchanged.
	if _, err := runScripted(coinFactory(1, 1), []int{0}, []int{1}); err != nil {
		t.Errorf("in-range script: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestRenderValuesMatchesFmt pins the DecisionVectors key format to
// fmt.Sprint's slice rendering across every value shape the zoo uses.
func TestRenderValuesMatchesFmt(t *testing.T) {
	vs := []sim.Value{nil, 1, -3, "x", true, false, wrn.Bottom}
	if got, want := renderValues(vs), fmt.Sprint(vs); got != want {
		t.Errorf("renderValues = %q, fmt.Sprint = %q", got, want)
	}
	if got, want := renderValues(nil), fmt.Sprint([]sim.Value{}); got != want {
		t.Errorf("renderValues(nil) = %q, fmt.Sprint(empty) = %q", got, want)
	}
}

// TestReducedVisitStopsExploration: a visit error aborts the reduced
// engine just like the unreduced one.
func TestReducedVisitStopsExploration(t *testing.T) {
	boom := errors.New("boom")
	visits := 0
	_, err := ExploreReduced(counterFactory(3, 2), Reduced{Sym: SymmetricClasses(3, []int{0, 1, 2})}, 0,
		func(Execution, int) error {
			visits++
			if visits == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if visits != 2 {
		t.Errorf("visits = %d, want 2", visits)
	}
}

// TestReducedValuesSorted: the closure-rendered Values list is sorted,
// like the unreduced report's.
func TestReducedValuesSorted(t *testing.T) {
	sym := SymmetricClasses(3, []int{0, 2})
	sym.Rename = RenameByInputs([]sim.Value{10, 20, 30})
	rep, _, err := AnalyzeValencyReduced(func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.ThreeFromWRN2Naive(objects, "W", [3]sim.Value{10, 20, 30})
		return sim.Config{Objects: objects, Programs: progs}
	}, Reduced{Sym: sym}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(rep.Values) {
		t.Errorf("Values not sorted: %v", rep.Values)
	}
}
