package modelcheck

import (
	"errors"
	"fmt"
	"testing"

	"detobj/internal/registers"
	"detobj/internal/sim"
)

// counterFactory builds procs processes that each increment a shared
// counter `steps` times and return its final reading.
func counterFactory(procs, steps int) Factory {
	return func() sim.Config {
		objects := map[string]sim.Object{"C": registers.NewCounter()}
		c := registers.CounterRef{Name: "C"}
		programs := make([]sim.Program, procs)
		for i := range programs {
			programs[i] = func(ctx *sim.Ctx) sim.Value {
				for s := 0; s < steps; s++ {
					c.Inc(ctx)
				}
				return c.Read(ctx)
			}
		}
		return sim.Config{Objects: objects, Programs: programs}
	}
}

func TestExploreCountsInterleavings(t *testing.T) {
	// Two processes with 2 steps each (1 inc + 1 read): C(4,2) = 6.
	n, err := Explore(counterFactory(2, 1), 0, func(Execution) error { return nil })
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if n != 6 {
		t.Errorf("executions = %d, want 6", n)
	}
}

func TestExploreSingleProcess(t *testing.T) {
	n, err := Explore(counterFactory(1, 3), 0, func(e Execution) error {
		if e.Result.Outputs[0] != 3 {
			return fmt.Errorf("output %v", e.Result.Outputs[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
}

func TestExploreLimit(t *testing.T) {
	_, err := Explore(counterFactory(3, 2), 5, func(Execution) error { return nil })
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestVerifyAllReportsSchedule(t *testing.T) {
	boom := errors.New("boom")
	_, err := VerifyAll(counterFactory(2, 1), 0, func(res *sim.Result) error {
		if res.Outputs[0] == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// coin draws one nondeterministic bit per flip.
type coin struct{}

func (coin) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	return sim.Respond(env.Rand.Intn(2))
}

// AppendStateSig implements sim.StateSigner; a coin is stateless.
func (coin) AppendStateSig(dst []byte) []byte { return dst }

func coinFactory(procs, flips int) Factory {
	return func() sim.Config {
		programs := make([]sim.Program, procs)
		for i := range programs {
			programs[i] = func(ctx *sim.Ctx) sim.Value {
				total := 0
				for f := 0; f < flips; f++ {
					total = total*2 + ctx.Invoke("coin", "flip").(int)
				}
				return total
			}
		}
		return sim.Config{
			Objects:  map[string]sim.Object{"coin": coin{}},
			Programs: programs,
		}
	}
}

// TestExploreEnumeratesChoices: one process, two flips → 4 executions, one
// per choice script, covering all outputs 0..3.
func TestExploreEnumeratesChoices(t *testing.T) {
	seen := map[sim.Value]bool{}
	n, err := Explore(coinFactory(1, 2), 0, func(e Execution) error {
		seen[e.Result.Outputs[0]] = true
		if len(e.Choices) != 2 {
			return fmt.Errorf("choices = %v", e.Choices)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if n != 4 {
		t.Errorf("executions = %d, want 4", n)
	}
	for v := 0; v < 4; v++ {
		if !seen[v] {
			t.Errorf("output %d never produced", v)
		}
	}
}

// TestExploreSchedulesTimesChoices: two single-flip processes → 2
// schedules × 4 choice combinations = 8 executions.
func TestExploreSchedulesTimesChoices(t *testing.T) {
	n, err := Explore(coinFactory(2, 1), 0, func(Execution) error { return nil })
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if n != 8 {
		t.Errorf("executions = %d, want 8", n)
	}
}

func TestDecisionVectors(t *testing.T) {
	vecs, err := DecisionVectors(counterFactory(2, 1), 0)
	if err != nil {
		t.Fatalf("DecisionVectors: %v", err)
	}
	// Possible output vectors: [1 2], [2 1], [2 2] — readers see 1 or 2.
	if len(vecs) != 3 {
		t.Errorf("distinct vectors = %d (%v), want 3", len(vecs), vecs)
	}
}

func TestScriptSourceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	(&scriptSource{}).Intn(0)
}
