package modelcheck

import (
	"fmt"
	"sort"

	"detobj/internal/sim"
)

// ValencyReport summarizes the valency analysis of a protocol's execution
// tree, in the sense of FLP and Herlihy (§6): a configuration's valency is
// the set of decision values reachable from it.
type ValencyReport struct {
	// Configs is the number of configurations (schedule prefixes) explored.
	Configs int
	// Executions is the number of complete executions.
	Executions int
	// Bivalent is the number of configurations from which more than one
	// decision value is reachable.
	Bivalent int
	// Critical is the number of critical configurations: bivalent
	// configurations all of whose successors are univalent.
	Critical int
	// Agreement is true when every single execution is internally
	// consistent (all deciders in that execution decide the same value).
	Agreement bool
	// Values is the sorted set of decision values over all executions.
	Values []string
	// DisagreementSchedule, when Agreement is false, is a schedule whose
	// execution contains two different decisions.
	DisagreementSchedule []int
}

// AnalyzeValency explores the full execution tree of a consensus-style
// protocol and reports its valency structure. Decision values are the
// outputs of processes with StatusDone. limit bounds complete executions.
func AnalyzeValency(f Factory, limit int) (*ValencyReport, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	rep := &ValencyReport{Agreement: true}
	values := make(map[string]bool)

	// valency returns the set of decision values reachable from the
	// configuration reached by sched.
	var valency func(sched []int) (map[string]bool, error)
	valency = func(sched []int) (map[string]bool, error) {
		res, err := runScripted(f, sched, nil)
		if err != nil {
			var demand choiceDemand
			if asDemand(err, &demand) {
				return nil, fmt.Errorf("modelcheck: valency analysis requires deterministic objects: %w", err)
			}
			return nil, err
		}
		rep.Configs++
		if len(res.Enabled) == 0 {
			rep.Executions++
			if rep.Executions > limit {
				return nil, fmt.Errorf("%w (%d executions)", ErrLimit, limit)
			}
			vals := make(map[string]bool)
			for i, st := range res.Status {
				if st == sim.StatusDone {
					vals[fmt.Sprint(res.Outputs[i])] = true
				}
			}
			if len(vals) > 1 && rep.Agreement {
				rep.Agreement = false
				rep.DisagreementSchedule = append([]int(nil), sched...)
			}
			for v := range vals {
				values[v] = true
			}
			return vals, nil
		}
		union := make(map[string]bool)
		allChildrenUnivalent := true
		for _, id := range res.Enabled {
			child, err := valency(append(sched[:len(sched):len(sched)], id))
			if err != nil {
				return nil, err
			}
			if len(child) > 1 {
				allChildrenUnivalent = false
			}
			for v := range child {
				union[v] = true
			}
		}
		if len(union) > 1 {
			rep.Bivalent++
			if allChildrenUnivalent {
				rep.Critical++
			}
		}
		return union, nil
	}

	if _, err := valency(nil); err != nil {
		return nil, err
	}
	for v := range values {
		rep.Values = append(rep.Values, v)
	}
	sort.Strings(rep.Values)
	return rep, nil
}
