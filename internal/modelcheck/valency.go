package modelcheck

import (
	"fmt"
	"sort"

	"detobj/internal/sim"
)

// ValencyReport summarizes the valency analysis of a protocol's execution
// tree, in the sense of FLP and Herlihy (§6): a configuration's valency is
// the set of decision values reachable from it.
type ValencyReport struct {
	// Configs is the number of configurations (schedule prefixes) explored.
	Configs int
	// Executions is the number of complete executions.
	Executions int
	// Bivalent is the number of configurations from which more than one
	// decision value is reachable.
	Bivalent int
	// Critical is the number of critical configurations: bivalent
	// configurations all of whose successors are univalent.
	Critical int
	// Agreement is true when every single execution is internally
	// consistent (all deciders in that execution decide the same value).
	Agreement bool
	// Values is the sorted set of decision values over all executions.
	Values []string
	// DisagreementSchedule, when Agreement is false, is a schedule whose
	// execution contains two different decisions.
	DisagreementSchedule []int
}

// valencyAcc accumulates the report fields during one (sub)tree
// recursion. Every field is either a commutative count or resolved by
// depth-first position (disagreement), so per-subtree accumulators can
// be merged deterministically by AnalyzeValencyParallel.
type valencyAcc struct {
	configs, executions, bivalent, critical int
	values                                  map[string]bool
	disagreement                            []int // DFS-first disagreeing schedule, nil if none
}

func newValencyAcc() *valencyAcc {
	return &valencyAcc{values: make(map[string]bool)}
}

// report renders the accumulator as the public report.
func (a *valencyAcc) report() *ValencyReport {
	rep := &ValencyReport{
		Configs:              a.configs,
		Executions:           a.executions,
		Bivalent:             a.bivalent,
		Critical:             a.critical,
		Agreement:            a.disagreement == nil,
		DisagreementSchedule: a.disagreement,
	}
	for v := range a.values {
		rep.Values = append(rep.Values, v)
	}
	sort.Strings(rep.Values)
	return rep
}

// decisionValues is the set of values decided within one complete
// execution (outputs of StatusDone processes, rendered).
func decisionValues(res *sim.Result) map[string]bool {
	vals := make(map[string]bool)
	for i, st := range res.Status {
		if st == sim.StatusDone {
			vals[renderValue(res.Outputs[i])] = true
		}
	}
	return vals
}

// errNondetValency wraps a choice demand: valency analysis is defined
// over deterministic objects only.
func errNondetValency(err error) error {
	return fmt.Errorf("modelcheck: valency analysis requires deterministic objects: %w", err)
}

// valencyHooks are the extension points the parallel and adversarial
// engines need: gate runs at every configuration (abort checks),
// counted after every complete execution (budget enforcement), and wrap
// interposes a scheduler layer — typically a chaos fault injector —
// around the scripted replay. Any may be nil.
type valencyHooks struct {
	gate    func() error
	counted func() error
	wrap    func(inner sim.Scheduler) sim.Scheduler
}

// valencyRec returns the set of decision values reachable from the
// configuration reached by sched, accumulating tree statistics into acc.
// It is the single recursion both AnalyzeValency and
// AnalyzeValencyParallel run, so their per-subtree numbers agree by
// construction.
func valencyRec(f Factory, sched []int, acc *valencyAcc, hooks valencyHooks) (map[string]bool, error) {
	if hooks.gate != nil {
		if err := hooks.gate(); err != nil {
			return nil, err
		}
	}
	res, err := runScriptedUnder(f, hooks.wrap, sched, nil)
	if err != nil {
		var demand choiceDemand
		if asDemand(err, &demand) {
			return nil, errNondetValency(err)
		}
		return nil, err
	}
	acc.configs++
	if len(res.Enabled) == 0 {
		acc.executions++
		if hooks.counted != nil {
			if err := hooks.counted(); err != nil {
				return nil, err
			}
		}
		vals := decisionValues(res)
		if len(vals) > 1 && acc.disagreement == nil {
			acc.disagreement = append([]int(nil), sched...)
		}
		for v := range vals {
			acc.values[v] = true
		}
		return vals, nil
	}
	union := make(map[string]bool)
	allChildrenUnivalent := true
	for _, id := range res.Enabled {
		child, err := valencyRec(f, appendStep(sched, id), acc, hooks)
		if err != nil {
			return nil, err
		}
		if len(child) > 1 {
			allChildrenUnivalent = false
		}
		for v := range child {
			union[v] = true
		}
	}
	if len(union) > 1 {
		acc.bivalent++
		if allChildrenUnivalent {
			acc.critical++
		}
	}
	return union, nil
}

// AnalyzeValency explores the full execution tree of a consensus-style
// protocol and reports its valency structure. Decision values are the
// outputs of processes with StatusDone. limit bounds complete executions.
func AnalyzeValency(f Factory, limit int) (*ValencyReport, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	acc := newValencyAcc()
	_, err := valencyRec(f, nil, acc, valencyHooks{counted: func() error {
		if acc.executions > limit {
			return errLimitExceeded(limit)
		}
		return nil
	}})
	if err != nil {
		return nil, err
	}
	return acc.report(), nil
}

// AnalyzeValencyUnder is AnalyzeValency with an adversary interposed
// between the engine's scripted schedules and the simulator: wrap
// receives the sim.Fixed replay scheduler for one schedule prefix and
// returns the scheduler the run actually uses — typically a chaos
// crash-restart adversary delegating Next to the inner replay while
// injecting sim.Fault directives of its own. wrap is invoked once per
// explored configuration with a fresh inner scheduler, so a stateful
// adversary must be constructed inside wrap (not closed over): every
// configuration then replays its prefix under identical fault
// decisions, which keeps the execution tree well-defined. A nil wrap
// degenerates to AnalyzeValency — the full-persistence baseline, since
// without fault directives a crash-recovery pause keeps all state.
//
// The report reads as usual, but over the faulty tree: Agreement is
// false exactly when some schedule prefix plus the adversary's
// deterministic faults drives the protocol's deciders to different
// values. This is the engine behind the E20 calibration: an object
// whose protocol agrees under nil wrap but disagrees under an amnesiac
// crash-restart wrap has lost consensus power to the restart (Ovens
// 2024), while a recoverable implementation keeps Agreement true under
// both.
func AnalyzeValencyUnder(f Factory, wrap func(inner sim.Scheduler) sim.Scheduler, limit int) (*ValencyReport, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	acc := newValencyAcc()
	_, err := valencyRec(f, nil, acc, valencyHooks{
		wrap: wrap,
		counted: func() error {
			if acc.executions > limit {
				return errLimitExceeded(limit)
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return acc.report(), nil
}
