// Package modelcheck verifies the paper's claims over ALL executions
// rather than sampled ones. It provides three engines:
//
//   - Explore: exhaustive enumeration of every execution of a
//     configuration — every interleaving chosen by the scheduler and, for
//     nondeterministic objects, every internal choice. Used to verify the
//     algorithms of §4 completely for small parameters and to exhibit the
//     disagreement executions of broken protocols.
//
//   - AnalyzeValency: the FLP/Herlihy valency analysis (bivalent, univalent
//     and critical configurations) of a protocol's execution tree (§6).
//
//   - CheckIndistinguishability: the mechanization of Lemma 38's
//     critical-configuration case analysis — for every reachable object
//     state and every pair of pending operations, at least one of the two
//     processes must be unable to distinguish the execution orders. WRN_k
//     with k ≥ 3 passes; SWAP (= WRN_2), test-and-set and consensus cells
//     fail, which is exactly why they have consensus number ≥ 2.
package modelcheck

import (
	"errors"
	"fmt"

	"detobj/internal/sim"
)

// ErrLimit is returned when exploration exceeds its execution budget.
var ErrLimit = errors.New("modelcheck: execution limit exceeded")

// ErrScriptDivergence is returned when a replayed choice script does not
// fit the choices the objects actually demand: script[pos] falls outside
// the demanded [0, n) range. The scripted tree and the replayed tree
// have diverged — possible when an adversary wrap (AnalyzeValencyUnder)
// makes an object's choice demands schedule-dependent — and silently
// reducing the value modulo n would alias two distinct branches, so the
// engines fail loudly instead.
var ErrScriptDivergence = errors.New("modelcheck: replayed choice script diverged from the object's demand")

// Factory produces a fresh configuration (fresh objects, same programs)
// for every replayed execution. Scheduler and Choice are overridden by the
// explorer.
type Factory func() sim.Config

// Execution is one complete run discovered by Explore.
type Execution struct {
	// Schedule is the exact sequence of process ids that ran.
	Schedule []int
	// Choices is the sequence of values consumed by nondeterministic
	// objects (empty for deterministic configurations).
	Choices []int
	// Result is the run's outcome.
	Result *sim.Result
}

// choiceDemand is panicked by scriptSource when a nondeterministic object
// requests a choice beyond the script; the explorer catches it via
// sim.ObjectPanicError and branches.
type choiceDemand struct {
	n int
}

// scriptDivergence is panicked by scriptSource when a replayed script
// value does not fit the demanded range; runScriptedUnder converts it
// into an error wrapping ErrScriptDivergence.
type scriptDivergence struct {
	pos, value, n int
}

// scriptSource replays a fixed choice script.
type scriptSource struct {
	script []int
	pos    int
}

// reset re-arms the source to replay script from its start, reusing the
// receiver (the reduction layer replays one source per engine run).
func (s *scriptSource) reset(script []int) {
	s.script = script
	s.pos = 0
}

// Intn implements sim.RandSource. The script value must lie in the
// demanded [0, n) range exactly as recorded: the explorers only ever
// script values they were asked for, so an out-of-range value means the
// replay diverged from the tree that produced the script.
func (s *scriptSource) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("modelcheck: Intn(%d)", n))
	}
	if s.pos >= len(s.script) {
		panic(choiceDemand{n: n})
	}
	v := s.script[s.pos]
	if v < 0 || v >= n {
		panic(scriptDivergence{pos: s.pos, value: v, n: n})
	}
	s.pos++
	return v
}

// Explore enumerates every execution of the configuration: all schedules,
// and for nondeterministic objects all internal choices. visit is called
// once per complete execution; returning a non-nil error aborts the
// exploration and is returned to the caller. limit bounds the number of
// complete executions (0 means 1<<20). Explore reports the number of
// executions visited.
func Explore(f Factory, limit int, visit func(e Execution) error) (int, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	count := 0
	err := exploreDFS(f, nil, nil, func(e Execution) error {
		// The budget check runs before the count moves, so the returned
		// count is exactly the number of visit calls — the doc contract
		// ExploreParallel reproduces through the same errLimitExceeded
		// rendering (see TestExploreLimitBoundaryParity).
		if count == limit {
			return errLimitExceeded(limit)
		}
		count++
		return visit(e)
	})
	return count, err
}

// errLimitExceeded builds the canonical budget error; ExploreParallel
// must produce byte-identical errors, so the rendering lives here.
func errLimitExceeded(limit int) error {
	return fmt.Errorf("%w (%d executions)", ErrLimit, limit)
}

// exploreDFS enumerates, in depth-first lexicographic order, every
// complete execution reachable from the (sched, choices) prefix and
// calls emit once per execution. The branching discipline — choice
// values 0..n−1 before deeper schedules, enabled ids in increasing
// order — is THE canonical exploration order: Explore and
// ExploreParallel both derive their visit sequences from this one
// function, which is what makes their outputs byte-identical.
func exploreDFS(f Factory, sched, choices []int, emit func(e Execution) error) error {
	res, err := runScripted(f, sched, choices)
	if err != nil {
		var demand choiceDemand
		if asDemand(err, &demand) {
			for c := 0; c < demand.n; c++ {
				if err := exploreDFS(f, sched, appendStep(choices, c), emit); err != nil {
					return err
				}
			}
			return nil
		}
		return err
	}
	if len(res.Enabled) == 0 {
		return emit(Execution{
			Schedule: append([]int(nil), sched...),
			Choices:  append([]int(nil), choices...),
			Result:   res,
		})
	}
	for _, id := range res.Enabled {
		if err := exploreDFS(f, appendStep(sched, id), choices, emit); err != nil {
			return err
		}
	}
	return nil
}

// appendStep extends a prefix without aliasing the parent's backing
// array (siblings share the parent slice, so plain append would race).
func appendStep(prefix []int, v int) []int {
	return append(prefix[:len(prefix):len(prefix)], v)
}

// runScripted replays the configuration under a fixed schedule and choice
// script, stopping when the schedule is exhausted.
func runScripted(f Factory, sched, choices []int) (*sim.Result, error) {
	return runScriptedUnder(f, nil, sched, choices)
}

// runScriptedUnder is runScripted with an adversary layer interposed:
// wrap (when non-nil) receives the fixed replay scheduler and returns
// the scheduler the run actually uses, letting a chaos fault injector
// ride the scripted schedule. wrap runs once per call, so stateful
// adversaries start fresh for every replayed prefix.
func runScriptedUnder(f Factory, wrap func(inner sim.Scheduler) sim.Scheduler, sched, choices []int) (*sim.Result, error) {
	cfg := f()
	var s sim.Scheduler = &sim.Fixed{Order: sched}
	if wrap != nil {
		s = wrap(s)
	}
	cfg.Scheduler = s
	cfg.Choice = &scriptSource{script: choices}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, decodeRunError(err)
	}
	return res, nil
}

// decodeRunError converts the control-signal panics the explorers plant
// in their scripted runs back into typed errors; other errors pass
// through untouched.
func decodeRunError(err error) error {
	var ope *sim.ObjectPanicError
	if !errors.As(err, &ope) {
		return err
	}
	if d, ok := ope.Value.(scriptDivergence); ok {
		return fmt.Errorf("%w: script[%d] = %d but object %q demanded Intn(%d)",
			ErrScriptDivergence, d.pos, d.value, ope.Object, d.n)
	}
	return err
}

// asDemand reports whether err is an object panic carrying a choiceDemand.
func asDemand(err error, out *choiceDemand) bool {
	var ope *sim.ObjectPanicError
	if !errors.As(err, &ope) {
		return false
	}
	d, ok := ope.Value.(choiceDemand)
	if !ok {
		return false
	}
	*out = d
	return true
}

// VerifyAll explores every execution and checks each complete result with
// check; it returns the number of executions and the first violation.
func VerifyAll(f Factory, limit int, check func(res *sim.Result) error) (int, error) {
	return Explore(f, limit, func(e Execution) error {
		if err := check(e.Result); err != nil {
			return verifyErr(e, err)
		}
		return nil
	})
}

// verifyErr pins a check failure to its execution; shared by VerifyAll
// and VerifyAllParallel so both render failures identically.
func verifyErr(e Execution, err error) error {
	return fmt.Errorf("schedule %v choices %v: %w", e.Schedule, e.Choices, err)
}

// DecisionVectors explores every execution and returns the set of distinct
// decided-output vectors, rendered as strings, mapped to a sample
// execution schedule.
func DecisionVectors(f Factory, limit int) (map[string][]int, error) {
	out := make(map[string][]int)
	_, err := Explore(f, limit, func(e Execution) error {
		key := renderValues(e.Result.Outputs)
		if _, ok := out[key]; !ok {
			out[key] = e.Schedule
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
