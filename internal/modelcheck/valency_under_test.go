package modelcheck

import (
	"testing"

	"detobj/internal/chaos"
	"detobj/internal/recoverable"
	"detobj/internal/sim"
)

// restartWrap returns the E20-style adversary layer: a fresh amnesiac
// CrashRestart per replayed prefix, delegating Next to the engine's
// fixed schedule while injecting its own crash and restart faults.
func restartWrap(victim, crashAt, window int) func(inner sim.Scheduler) sim.Scheduler {
	return func(inner sim.Scheduler) sim.Scheduler {
		return chaos.NewCrashRestart(inner, chaos.NewReport(0), victim, crashAt, window)
	}
}

// TestValencyUnderNilWrapMatchesPlain: a nil wrap must degenerate to
// AnalyzeValency exactly — same tree, same counts, same verdicts. This
// is the full-persistence baseline E20 prints in its first column.
func TestValencyUnderNilWrapMatchesPlain(t *testing.T) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := recoverable.TwoConsFromPlainTAS(objects, "T", 10, 20)
		return sim.Config{Objects: objects, Programs: progs}
	}
	plain, err := AnalyzeValency(f, 0)
	if err != nil {
		t.Fatalf("AnalyzeValency: %v", err)
	}
	under, err := AnalyzeValencyUnder(f, nil, 0)
	if err != nil {
		t.Fatalf("AnalyzeValencyUnder(nil): %v", err)
	}
	if plain.Configs != under.Configs || plain.Executions != under.Executions ||
		plain.Bivalent != under.Bivalent || plain.Critical != under.Critical ||
		plain.Agreement != under.Agreement {
		t.Errorf("nil wrap diverges from plain analysis:\nplain %+v\nunder %+v", plain, under)
	}
}

// TestValencyUnderAmnesiacSplitsPlainFromRecoverable (E20): under the
// same amnesiac crash-restart sweep, the plain-TAS protocol must
// exhibit a disagreeing execution while the recoverable-TAS protocol
// agrees everywhere — the consensus-power drop of Ovens 2024.
func TestValencyUnderAmnesiacSplitsPlainFromRecoverable(t *testing.T) {
	build := map[string]func(map[string]sim.Object, string, sim.Value, sim.Value) []sim.Program{
		"plain": recoverable.TwoConsFromPlainTAS,
		"rec":   recoverable.TwoConsFromRecTAS,
	}
	disagreed := map[string]bool{}
	for name, b := range build {
		f := func() sim.Config {
			objects := map[string]sim.Object{}
			progs := b(objects, "T", 10, 20)
			return sim.Config{Objects: objects, Programs: progs}
		}
		for victim := 0; victim < 2; victim++ {
			for crashAt := 0; crashAt <= 6; crashAt++ {
				rep, err := AnalyzeValencyUnder(f, restartWrap(victim, crashAt, 0), 0)
				if err != nil {
					t.Fatalf("%s victim=%d crashAt=%d: %v", name, victim, crashAt, err)
				}
				if !rep.Agreement {
					disagreed[name] = true
				}
			}
		}
	}
	if !disagreed["plain"] {
		t.Error("plain TAS protocol agreed at every amnesiac sweep point; expected a lost race to the restart")
	}
	if disagreed["rec"] {
		t.Error("recoverable TAS protocol disagreed under amnesiac restart; its durable winner journal should prevent that")
	}
}

// TestValencyUnderDeterministic: the report of an adversarial analysis
// is a pure function of (factory, wrap parameters) — two runs agree on
// every count and on the DFS-first disagreement schedule.
func TestValencyUnderDeterministic(t *testing.T) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := recoverable.TwoConsFromPlainWRN2(objects, "W", "a", "b")
		return sim.Config{Objects: objects, Programs: progs}
	}
	a, err := AnalyzeValencyUnder(f, restartWrap(0, 3, 0), 0)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := AnalyzeValencyUnder(f, restartWrap(0, 3, 0), 0)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Configs != b.Configs || a.Executions != b.Executions || a.Agreement != b.Agreement {
		t.Errorf("adversarial valency not deterministic:\nfirst  %+v\nsecond %+v", a, b)
	}
	if len(a.DisagreementSchedule) != len(b.DisagreementSchedule) {
		t.Errorf("disagreement schedules differ: %v vs %v", a.DisagreementSchedule, b.DisagreementSchedule)
	}
	for i := range a.DisagreementSchedule {
		if a.DisagreementSchedule[i] != b.DisagreementSchedule[i] {
			t.Errorf("disagreement schedules differ at %d: %v vs %v", i, a.DisagreementSchedule, b.DisagreementSchedule)
		}
	}
}
