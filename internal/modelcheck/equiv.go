package modelcheck

import (
	"fmt"
	"sort"

	"detobj/internal/par"
	"detobj/internal/sim"
)

// Finite is a deterministic object with an enumerable state space:
// serializable state and deep copies. The registers, wrn and consensus
// packages implement it for their objects.
//
// Concurrency contract: StateKey and CloneObject must be read-only on
// the receiver — the parallel checker calls both from multiple
// goroutines on shared states (Apply is only ever invoked on a fresh
// clone, never on a shared state).
type Finite interface {
	sim.Object
	// StateKey serializes the current state; equal keys mean equal states.
	StateKey() string
	// CloneObject returns a deep copy; the result must itself be Finite.
	CloneObject() sim.Object
}

// stepFinite applies inv to a copy of s and returns (successor, rendered
// output). A hang is rendered as the distinguished token and leaves the
// state unchanged (the operation never completes).
func stepFinite(s Finite, inv sim.Invocation) (Finite, string) {
	next := s.CloneObject().(Finite)
	resp := next.Apply(&sim.Env{}, inv)
	if resp.Effect == sim.Hang {
		return s, hangToken
	}
	return next, renderValue(resp.Value)
}

// transition is one cell of the precomputed step table: the successor
// state and the interned output token of applying one alphabet operation
// in one reachable state. It is deliberately flat — two int32 indices,
// no interior pointers — because it is the seed of the ROADMAP's arena
// encoding for the state-space engines; detlint's arenaready rule
// machine-checks that flatness on every build.
//
//detlint:arena
type transition struct {
	// succ indexes the sorted state list.
	succ int32
	// out indexes the interned output-token list.
	out int32
}

// stateTable is the transition system of a reachable state space,
// precomputed once: states in sorted-key order, rows[i][j] the result of
// alphabet[j] in state i, outputs interned into outs. Every downstream
// analysis — partition refinement and the Lemma 38 pair sweep — runs on
// these int32 indices instead of re-cloning objects and re-rendering
// outputs per visit, which is what held E6 at ~1M allocs per run.
type stateTable struct {
	keys     []string
	states   []Finite
	alphabet []sim.Invocation
	rows     [][]transition
	outs     []string
	// hang is the interned index of hangToken, or -1 if no operation
	// hangs anywhere in the table.
	hang int32
}

// buildTable precomputes the transition table over the reachable states.
// Rows are stepped on the worker pool; interning runs sequentially in
// (state, alphabet) order, so the table — like every report built from
// it — is byte-identical for any worker count.
func buildTable(states map[string]Finite, alphabet []sim.Invocation, workers int) *stateTable {
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	index := make(map[string]int32, len(keys))
	for i, k := range keys {
		index[k] = int32(i)
	}
	type cell struct{ key, out string }
	cells := make([][]cell, len(keys))
	_ = par.ForEach(len(keys), workers, func(i int) error {
		s := states[keys[i]]
		row := make([]cell, len(alphabet))
		for j, inv := range alphabet {
			succ, out := stepFinite(s, inv)
			row[j] = cell{key: succ.StateKey(), out: out}
		}
		cells[i] = row
		return nil
	})
	t := &stateTable{
		keys:     keys,
		states:   make([]Finite, len(keys)),
		alphabet: alphabet,
		rows:     make([][]transition, len(keys)),
		hang:     -1,
	}
	interned := make(map[string]int32)
	for i, k := range keys {
		t.states[i] = states[k]
		row := make([]transition, len(alphabet))
		for j, c := range cells[i] {
			id, ok := interned[c.out]
			if !ok {
				id = int32(len(t.outs))
				interned[c.out] = id
				t.outs = append(t.outs, c.out)
				if c.out == hangToken {
					t.hang = id
				}
			}
			row[j] = transition{succ: index[c.key], out: id}
		}
		t.rows[i] = row
	}
	return t
}

// Reachable returns all states reachable from init by applying operations
// from alphabet, keyed by StateKey. maxStates guards against unbounded
// spaces (0 means 1<<16).
func Reachable(init Finite, alphabet []sim.Invocation, maxStates int) (map[string]Finite, error) {
	return reachableN(init, alphabet, maxStates, 1)
}

// reachableN is the breadth-first reachability sweep behind Reachable,
// with each frontier state's successor row computed on the worker pool.
// Deduplication stays sequential in (frontier index, alphabet index)
// order, so the insertion order — and the exact point at which the
// maxStates guard fires — matches the sequential sweep.
func reachableN(init Finite, alphabet []sim.Invocation, maxStates, workers int) (map[string]Finite, error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	type row struct {
		succ Finite
		key  string
	}
	states := map[string]Finite{init.StateKey(): init}
	frontier := []Finite{init}
	for len(frontier) > 0 {
		rows := make([][]row, len(frontier))
		_ = par.ForEach(len(frontier), workers, func(i int) error {
			rs := make([]row, len(alphabet))
			for j, inv := range alphabet {
				succ, _ := stepFinite(frontier[i], inv)
				rs[j] = row{succ: succ, key: succ.StateKey()}
			}
			rows[i] = rs
			return nil
		})
		var next []Finite
		for _, rs := range rows {
			for _, r := range rs {
				if _, seen := states[r.key]; !seen {
					if len(states) >= maxStates {
						return nil, fmt.Errorf("modelcheck: state space exceeds %d states", maxStates)
					}
					states[r.key] = r.succ
					next = append(next, r.succ)
				}
			}
		}
		frontier = next
	}
	return states, nil
}

// ObsClasses partitions the states into observational-equivalence classes
// with respect to the operation alphabet: two states are equivalent iff no
// sequence of operations can produce different outputs from them. It is
// the standard partition-refinement (bisimulation) computation; since the
// objects are deterministic, observational equivalence and bisimilarity
// coincide.
func ObsClasses(states map[string]Finite, alphabet []sim.Invocation) map[string]int {
	t := buildTable(states, alphabet, 1)
	class := t.obsClasses()
	out := make(map[string]int, len(t.keys))
	for i, k := range t.keys {
		out[k] = int(class[i])
	}
	return out
}

// obsClasses is the partition refinement over the precomputed table.
// A round renders each state's signature — the (output, successor-class)
// row across the alphabet — as packed int32 bytes into one reused
// buffer; class ids are assigned first-seen in sorted-key order, exactly
// as the string-signature refinement assigned them, so the resulting
// partition (and every report built on it) is unchanged. The rounds are
// pure integer work over the table, so they run sequentially: the
// parallel engine already paid its fan-out when the table was built.
func (t *stateTable) obsClasses() []int32 {
	n := len(t.keys)
	class := make([]int32, n)
	next := make([]int32, n)
	var buf []byte
	for {
		sigs := make(map[string]int32, n)
		for i := 0; i < n; i++ {
			buf = buf[:0]
			for _, tr := range t.rows[i] {
				buf = appendInt32(buf, tr.out)
				buf = appendInt32(buf, class[tr.succ])
			}
			id, ok := sigs[string(buf)]
			if !ok {
				id = int32(len(sigs))
				sigs[string(buf)] = id
			}
			next[i] = id
		}
		same := true
		for i := range class {
			if class[i] != next[i] {
				same = false
				break
			}
		}
		if same {
			return next
		}
		class, next = next, class
	}
}

// appendInt32 appends v's four little-endian bytes.
func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// PairFailure records a violation of the Lemma 38 obligations: a reachable
// state and a pair of pending operations such that BOTH issuing processes
// can distinguish the execution orders. An object with no failures cannot
// escape the critical-configuration argument — it cannot solve 2-process
// consensus — while each failure pinpoints exactly the synchronization
// power a stronger object (SWAP, test-and-set, a consensus cell) exposes.
type PairFailure struct {
	// State is the state key of the critical configuration.
	State string
	// A is the pending operation of the first process, B of the second.
	A, B sim.Invocation
}

// String renders the failure.
func (p PairFailure) String() string {
	return fmt.Sprintf("state %s: %s vs %s distinguishable by both", p.State, p.A, p.B)
}

// IndistReport is the outcome of CheckIndistinguishability.
type IndistReport struct {
	// States is the size of the reachable state space.
	States int
	// Pairs is the number of (state, opA, opB) triples checked.
	Pairs int
	// Failures lists the triples where some issuer survives both orders
	// yet observes them differently — genuine synchronization power.
	Failures []PairFailure
	// Degenerate lists the triples where neither issuer survives both
	// orders (a hang is involved) and no indistinguishability holds: the
	// plain critical-configuration argument is inapplicable there, but the
	// pair yields no distinguishing survivor either. One-shot objects
	// produce these on repeated-index pairs.
	Degenerate []PairFailure
}

// Passed reports whether the object exposed no distinguishing pair: no
// process can both survive a pending-operation race and observe its order,
// which is the engine of every 2-consensus protocol.
func (r *IndistReport) Passed() bool { return len(r.Failures) == 0 }

// Clean reports whether additionally no degenerate pairs occurred, i.e.
// the textbook critical-configuration argument of Lemma 38 applies
// verbatim (true for multi-shot WRN_k with k ≥ 3 and for registers).
func (r *IndistReport) Clean() bool { return r.Passed() && len(r.Degenerate) == 0 }

// CheckIndistinguishability mechanizes Lemma 38's case analysis. For every
// reachable state S and operations a (by process P) and b (by process Q)
// it checks that at least one process cannot distinguish the two orders:
//
//	P cannot distinguish if its response to a is the same whether or not b
//	precedes it, AND the configurations (S·a vs S·b·a, or S·a·b vs S·b·a)
//	are observationally equivalent;
//	symmetrically for Q.
//
// Observational equivalence is computed by ObsClasses over the full
// alphabet — the strongest observer — so a pass here is conservative.
func CheckIndistinguishability(init Finite, alphabet []sim.Invocation, maxStates int) (*IndistReport, error) {
	return checkIndistN(init, alphabet, maxStates, 1)
}

// CheckIndistinguishabilityParallel is CheckIndistinguishability across
// a worker pool (<= 0 workers means GOMAXPROCS): reachability rounds,
// the transition-table build and the per-state pair analysis all fan
// out, and every result list is concatenated in sorted-state-key order,
// so the report is byte-identical to the sequential checker's.
func CheckIndistinguishabilityParallel(init Finite, alphabet []sim.Invocation, maxStates, workers int) (*IndistReport, error) {
	return checkIndistN(init, alphabet, maxStates, par.Normalize(workers, -1))
}

// checkIndistN runs the Lemma 38 case analysis with each state's pair
// loop on the worker pool. The reachable space is precomputed into a
// transition table once, so the per-pair verdicts are index lookups
// rather than four object clones; per-state failure lists land in an
// indexed slot and are concatenated in sorted-key order, matching the
// sequential append order.
func checkIndistN(init Finite, alphabet []sim.Invocation, maxStates, workers int) (*IndistReport, error) {
	states, err := reachableN(init, alphabet, maxStates, workers)
	if err != nil {
		return nil, err
	}
	t := buildTable(states, alphabet, workers)
	class := t.obsClasses()

	type chunk struct {
		failures, degenerate []PairFailure
	}
	chunks := make([]chunk, len(t.keys))
	_ = par.ForEach(len(t.keys), workers, func(i int) error {
		var c chunk
		for ai, a := range alphabet {
			for bi, b := range alphabet {
				va := t.classify(class, int32(i), ai, bi)
				vb := t.classify(class, int32(i), bi, ai)
				if va == pairIndist || vb == pairIndist {
					continue // some issuer cannot distinguish: obligation met
				}
				f := PairFailure{State: t.keys[i], A: a, B: b}
				if va == pairDistinguish || vb == pairDistinguish {
					c.failures = append(c.failures, f)
				} else {
					c.degenerate = append(c.degenerate, f)
				}
			}
		}
		chunks[i] = c
		return nil
	})

	rep := &IndistReport{States: len(t.keys), Pairs: len(t.keys) * len(alphabet) * len(alphabet)}
	for _, c := range chunks {
		rep.Failures = append(rep.Failures, c.failures...)
		rep.Degenerate = append(rep.Degenerate, c.degenerate...)
	}
	return rep, nil
}

type pairVerdict int

const (
	// pairIndist: the issuer of a survives both orders with identical
	// responses and observationally equivalent configurations.
	pairIndist pairVerdict = iota
	// pairDistinguish: the issuer survives both orders but can tell them
	// apart — consensus-grade power.
	pairDistinguish
	// pairDegenerate: the issuer hangs in at least one order, so it can
	// neither carry the indistinguishability argument nor act on the
	// difference.
	pairDegenerate
)

const hangToken = "<hang>"

// classify judges how the process issuing alphabet[a] experiences the
// order of a and b from state s, entirely through table lookups.
// Indistinguishable means: same response either with b's step absorbed
// (overwriting, S·a ≡ S·b·a) or with both steps applied (commuting,
// S·a·b ≡ S·b·a). Interned output ids compare exactly as the rendered
// strings did, and class indexes the same partition ObsClasses computes.
func (t *stateTable) classify(class []int32, s int32, a, b int) pairVerdict {
	ta := t.rows[s][a]        // S·a: a's response and successor
	tb := t.rows[s][b]        // S·b: b's successor (a hang stays at S)
	tba := t.rows[tb.succ][a] // S·b·a: a's response after b
	if ta.out == t.hang || tba.out == t.hang {
		return pairDegenerate
	}
	if ta.out != tba.out {
		return pairDistinguish
	}
	if class[ta.succ] == class[tba.succ] {
		return pairIndist // overwriting: b's step is invisible to a's issuer
	}
	sab := t.rows[ta.succ][b].succ
	if class[sab] == class[tba.succ] {
		return pairIndist // commuting
	}
	return pairDistinguish
}

// classifyStep is the table-free variant of classify for objects whose
// state space cannot be enumerated (unbounded growth): it re-steps the
// object per verdict. Distinguishing verdicts depend only on the
// issuer's outputs plus the supplied equivalence, so callers with
// unbounded spaces pass a conservative cls (e.g. state identity).
func classifyStep(s Finite, a, b sim.Invocation, cls func(Finite) int) pairVerdict {
	sa, outA := stepFinite(s, a)
	sb, _ := stepFinite(s, b)
	sba, outAafterB := stepFinite(sb, a)
	if outA == hangToken || outAafterB == hangToken {
		return pairDegenerate
	}
	if outA != outAafterB {
		return pairDistinguish
	}
	if cls(sa) == cls(sba) {
		return pairIndist // overwriting: b's step is invisible to a's issuer
	}
	sab, _ := stepFinite(sa, b)
	if cls(sab) == cls(sba) {
		return pairIndist // commuting
	}
	return pairDistinguish
}

// WRNAlphabet builds the operation alphabet for a WRN_k object over a
// value domain of the given size, using distinct tagged values so that
// writes by different "processes" are distinguishable.
func WRNAlphabet(k, domain int) []sim.Invocation {
	var ops []sim.Invocation
	for i := 0; i < k; i++ {
		for v := 0; v < domain; v++ {
			ops = append(ops, sim.Invocation{Op: "WRN", Args: []sim.Value{i, fmt.Sprintf("v%d", v)}})
		}
	}
	return ops
}
