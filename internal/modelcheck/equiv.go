package modelcheck

import (
	"fmt"
	"sort"
	"strings"

	"detobj/internal/par"
	"detobj/internal/sim"
)

// Finite is a deterministic object with an enumerable state space:
// serializable state and deep copies. The registers, wrn and consensus
// packages implement it for their objects.
//
// Concurrency contract: StateKey and CloneObject must be read-only on
// the receiver — the parallel checker calls both from multiple
// goroutines on shared states (Apply is only ever invoked on a fresh
// clone, never on a shared state).
type Finite interface {
	sim.Object
	// StateKey serializes the current state; equal keys mean equal states.
	StateKey() string
	// CloneObject returns a deep copy; the result must itself be Finite.
	CloneObject() sim.Object
}

// stepFinite applies inv to a copy of s and returns (successor, rendered
// output). A hang is rendered as the distinguished token and leaves the
// state unchanged (the operation never completes).
func stepFinite(s Finite, inv sim.Invocation) (Finite, string) {
	next := s.CloneObject().(Finite)
	resp := next.Apply(&sim.Env{}, inv)
	if resp.Effect == sim.Hang {
		return s, "<hang>"
	}
	return next, fmt.Sprint(resp.Value)
}

// Reachable returns all states reachable from init by applying operations
// from alphabet, keyed by StateKey. maxStates guards against unbounded
// spaces (0 means 1<<16).
func Reachable(init Finite, alphabet []sim.Invocation, maxStates int) (map[string]Finite, error) {
	return reachableN(init, alphabet, maxStates, 1)
}

// reachableN is the breadth-first reachability sweep behind Reachable,
// with each frontier state's successor row computed on the worker pool.
// Deduplication stays sequential in (frontier index, alphabet index)
// order, so the insertion order — and the exact point at which the
// maxStates guard fires — matches the sequential sweep.
func reachableN(init Finite, alphabet []sim.Invocation, maxStates, workers int) (map[string]Finite, error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	type row struct {
		succ Finite
		key  string
	}
	states := map[string]Finite{init.StateKey(): init}
	frontier := []Finite{init}
	for len(frontier) > 0 {
		rows := make([][]row, len(frontier))
		_ = par.ForEach(len(frontier), workers, func(i int) error {
			rs := make([]row, len(alphabet))
			for j, inv := range alphabet {
				succ, _ := stepFinite(frontier[i], inv)
				rs[j] = row{succ: succ, key: succ.StateKey()}
			}
			rows[i] = rs
			return nil
		})
		var next []Finite
		for _, rs := range rows {
			for _, r := range rs {
				if _, seen := states[r.key]; !seen {
					if len(states) >= maxStates {
						return nil, fmt.Errorf("modelcheck: state space exceeds %d states", maxStates)
					}
					states[r.key] = r.succ
					next = append(next, r.succ)
				}
			}
		}
		frontier = next
	}
	return states, nil
}

// ObsClasses partitions the states into observational-equivalence classes
// with respect to the operation alphabet: two states are equivalent iff no
// sequence of operations can produce different outputs from them. It is
// the standard partition-refinement (bisimulation) computation; since the
// objects are deterministic, observational equivalence and bisimilarity
// coincide.
func ObsClasses(states map[string]Finite, alphabet []sim.Invocation) map[string]int {
	return obsClassesN(states, alphabet, 1)
}

// obsClassesN is the partition refinement behind ObsClasses, with each
// refinement round's signature strings computed on the worker pool (the
// class map is read-only during a round). Class ids are assigned
// sequentially in sorted-key order, first-seen, exactly as the
// sequential computation assigns them.
func obsClassesN(states map[string]Finite, alphabet []sim.Invocation, workers int) map[string]int {
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	class := make(map[string]int, len(keys))
	for _, k := range keys {
		class[k] = 0
	}
	for {
		sigRows := make([]string, len(keys))
		_ = par.ForEach(len(keys), workers, func(i int) error {
			var b strings.Builder
			for _, inv := range alphabet {
				succ, out := stepFinite(states[keys[i]], inv)
				fmt.Fprintf(&b, "%s>%d|", out, class[succ.StateKey()])
			}
			sigRows[i] = b.String()
			return nil
		})
		sigs := make(map[string]int)
		next := make(map[string]int, len(keys))
		for i, k := range keys {
			id, ok := sigs[sigRows[i]]
			if !ok {
				id = len(sigs)
				sigs[sigRows[i]] = id
			}
			next[k] = id
		}
		if sameClasses(class, next, keys) {
			return next
		}
		class = next
	}
}

func sameClasses(a, b map[string]int, keys []string) bool {
	// Classes are equal iff the partitions coincide; since ids are
	// assigned in first-seen order over the same sorted keys, equality of
	// the maps suffices.
	for _, k := range keys {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// PairFailure records a violation of the Lemma 38 obligations: a reachable
// state and a pair of pending operations such that BOTH issuing processes
// can distinguish the execution orders. An object with no failures cannot
// escape the critical-configuration argument — it cannot solve 2-process
// consensus — while each failure pinpoints exactly the synchronization
// power a stronger object (SWAP, test-and-set, a consensus cell) exposes.
type PairFailure struct {
	// State is the state key of the critical configuration.
	State string
	// A is the pending operation of the first process, B of the second.
	A, B sim.Invocation
}

// String renders the failure.
func (p PairFailure) String() string {
	return fmt.Sprintf("state %s: %s vs %s distinguishable by both", p.State, p.A, p.B)
}

// IndistReport is the outcome of CheckIndistinguishability.
type IndistReport struct {
	// States is the size of the reachable state space.
	States int
	// Pairs is the number of (state, opA, opB) triples checked.
	Pairs int
	// Failures lists the triples where some issuer survives both orders
	// yet observes them differently — genuine synchronization power.
	Failures []PairFailure
	// Degenerate lists the triples where neither issuer survives both
	// orders (a hang is involved) and no indistinguishability holds: the
	// plain critical-configuration argument is inapplicable there, but the
	// pair yields no distinguishing survivor either. One-shot objects
	// produce these on repeated-index pairs.
	Degenerate []PairFailure
}

// Passed reports whether the object exposed no distinguishing pair: no
// process can both survive a pending-operation race and observe its order,
// which is the engine of every 2-consensus protocol.
func (r *IndistReport) Passed() bool { return len(r.Failures) == 0 }

// Clean reports whether additionally no degenerate pairs occurred, i.e.
// the textbook critical-configuration argument of Lemma 38 applies
// verbatim (true for multi-shot WRN_k with k ≥ 3 and for registers).
func (r *IndistReport) Clean() bool { return r.Passed() && len(r.Degenerate) == 0 }

// CheckIndistinguishability mechanizes Lemma 38's case analysis. For every
// reachable state S and operations a (by process P) and b (by process Q)
// it checks that at least one process cannot distinguish the two orders:
//
//	P cannot distinguish if its response to a is the same whether or not b
//	precedes it, AND the configurations (S·a vs S·b·a, or S·a·b vs S·b·a)
//	are observationally equivalent;
//	symmetrically for Q.
//
// Observational equivalence is computed by ObsClasses over the full
// alphabet — the strongest observer — so a pass here is conservative.
func CheckIndistinguishability(init Finite, alphabet []sim.Invocation, maxStates int) (*IndistReport, error) {
	return checkIndistN(init, alphabet, maxStates, 1)
}

// CheckIndistinguishabilityParallel is CheckIndistinguishability across
// a worker pool (<= 0 workers means GOMAXPROCS): reachability rounds,
// refinement rounds and the per-state pair analysis all fan out, and
// every result list is concatenated in sorted-state-key order, so the
// report is byte-identical to the sequential checker's.
func CheckIndistinguishabilityParallel(init Finite, alphabet []sim.Invocation, maxStates, workers int) (*IndistReport, error) {
	return checkIndistN(init, alphabet, maxStates, par.Normalize(workers, -1))
}

// checkIndistN runs the Lemma 38 case analysis with each state's pair
// loop on the worker pool. Per-state failure lists land in an indexed
// slot and are concatenated in sorted-key order, matching the
// sequential append order.
func checkIndistN(init Finite, alphabet []sim.Invocation, maxStates, workers int) (*IndistReport, error) {
	states, err := reachableN(init, alphabet, maxStates, workers)
	if err != nil {
		return nil, err
	}
	class := obsClassesN(states, alphabet, workers)
	cls := func(s Finite) int { return class[s.StateKey()] }

	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	type chunk struct {
		failures, degenerate []PairFailure
	}
	chunks := make([]chunk, len(keys))
	_ = par.ForEach(len(keys), workers, func(i int) error {
		s := states[keys[i]]
		var c chunk
		for _, a := range alphabet {
			for _, b := range alphabet {
				va := classify(s, a, b, cls)
				vb := classify(s, b, a, cls)
				if va == pairIndist || vb == pairIndist {
					continue // some issuer cannot distinguish: obligation met
				}
				f := PairFailure{State: keys[i], A: a, B: b}
				if va == pairDistinguish || vb == pairDistinguish {
					c.failures = append(c.failures, f)
				} else {
					c.degenerate = append(c.degenerate, f)
				}
			}
		}
		chunks[i] = c
		return nil
	})

	rep := &IndistReport{States: len(states), Pairs: len(keys) * len(alphabet) * len(alphabet)}
	for _, c := range chunks {
		rep.Failures = append(rep.Failures, c.failures...)
		rep.Degenerate = append(rep.Degenerate, c.degenerate...)
	}
	return rep, nil
}

type pairVerdict int

const (
	// pairIndist: the issuer of a survives both orders with identical
	// responses and observationally equivalent configurations.
	pairIndist pairVerdict = iota
	// pairDistinguish: the issuer survives both orders but can tell them
	// apart — consensus-grade power.
	pairDistinguish
	// pairDegenerate: the issuer hangs in at least one order, so it can
	// neither carry the indistinguishability argument nor act on the
	// difference.
	pairDegenerate
)

const hangToken = "<hang>"

// classify judges how the process issuing a experiences the order of a and
// b from state s. Indistinguishable means: same response either with b's
// step absorbed (overwriting, S·a ≡ S·b·a) or with both steps applied
// (commuting, S·a·b ≡ S·b·a).
func classify(s Finite, a, b sim.Invocation, cls func(Finite) int) pairVerdict {
	sa, outA := stepFinite(s, a)
	sb, _ := stepFinite(s, b)
	sba, outAafterB := stepFinite(sb, a)
	if outA == hangToken || outAafterB == hangToken {
		return pairDegenerate
	}
	if outA != outAafterB {
		return pairDistinguish
	}
	if cls(sa) == cls(sba) {
		return pairIndist // overwriting: b's step is invisible to a's issuer
	}
	sab, _ := stepFinite(sa, b)
	if cls(sab) == cls(sba) {
		return pairIndist // commuting
	}
	return pairDistinguish
}

// WRNAlphabet builds the operation alphabet for a WRN_k object over a
// value domain of the given size, using distinct tagged values so that
// writes by different "processes" are distinguishable.
func WRNAlphabet(k, domain int) []sim.Invocation {
	var ops []sim.Invocation
	for i := 0; i < k; i++ {
		for v := 0; v < domain; v++ {
			ops = append(ops, sim.Invocation{Op: "WRN", Args: []sim.Value{i, fmt.Sprintf("v%d", v)}})
		}
	}
	return ops
}
