package modelcheck

// reduce.go is the opt-in state-space reduction layer. Three techniques
// compose, each keeping the exhaustive engines of explore.go/valency.go
// as the oracle (cross-checked by TestReducedOracle* on every experiment
// factory):
//
//   - Process-symmetry quotienting. Given an explicit permutation group
//     over process ids (Symmetry.Perms), schedules are canonicalized to
//     the lexicographically least member of their orbit and only
//     canonical prefixes are explored. A prefix p with stabilizer
//     S = {π : π·p = p} extends canonically by step e iff π(e) ≥ e for
//     every π ∈ S; the child's stabilizer is {π ∈ S : π(e) = e}. The
//     stabilizer depends only on the SET of process ids used so far
//     (it is the pointwise fixer of that set), which is what makes the
//     transposition table sound. Each canonical leaf stands for an
//     orbit of |G|/|Stab(leaf)| executions (Lagrange), and the engines
//     reconstruct full-tree counts by summing orbit sizes, so
//     SymmetryReport.Executions equals the unreduced execution count
//     exactly.
//
//   - Transposition tables. Each successfully replayed configuration is
//     hashed into a packed byte signature — per-process status byte and
//     response history (built incrementally through sim.Config.OnStep,
//     no fmt on this path), then each object's state signature in
//     sorted name order, every section length-prefixed so splits cannot
//     alias. Programs are pure functions of their response histories
//     (the sim replay contract), so equal signatures imply isomorphic
//     continuations AND equal stabilizers (the signature determines the
//     used-process set); re-reached configurations are charged their
//     memoized subtree weights instead of being re-explored. Objects
//     advertise signatures via sim.StateSigner, falling back to
//     StateKey(); if any object supports neither, dedup is disabled
//     (SymmetryReport.Deduped reports which) and only symmetry
//     quotienting applies.
//
//   - Arena replay. All replays run through one sim.RunArena, one
//     sim.Fixed and one choice script per engine call, with per-depth
//     scratch frames for stabilizers and enabled sets, so steady-state
//     exploration does not allocate per run.
//
// Documented divergences from the unreduced engines (verdicts are still
// equal; see DESIGN.md):
//
//   - visit sees one representative per orbit (and, with dedup, only
//     the first canonical path into a shared configuration), paired
//     with the orbit size.
//   - ValencyReport.DisagreementSchedule is the canonical-first
//     disagreeing schedule, not the unreduced DFS-first one. It still
//     replays to a genuinely disagreeing execution.
//   - The execution budget is charged in orbit-sized chunks, so the
//     engines may stop before literally limit representatives are
//     visited; whether ErrLimit fires (total > limit) and its rendering
//     are identical to the unreduced engines.

import (
	"errors"
	"fmt"
	"sort"

	"detobj/internal/sim"
)

// Symmetry is an explicit process-permutation group. Perms must contain
// the identity and be closed under composition (validated once per
// engine call); an empty Perms means the trivial group. Rename, needed
// only by AnalyzeValencyReduced over a nontrivial group, maps a decision
// value through a process renaming (see RenameByInputs); it must be a
// pure function.
type Symmetry struct {
	Perms  [][]int
	Rename func(v sim.Value, perm []int) sim.Value
}

// Reduced configures the reduction engines. The zero value is the
// trivial group with deduplication enabled.
type Reduced struct {
	Sym Symmetry
	// NoDedup disables the transposition table, leaving pure symmetry
	// quotienting — useful for oracle tests that want to see every
	// canonical node.
	NoDedup bool
}

// SymmetryReport accounts for a reduced exploration.
type SymmetryReport struct {
	// Group is the order of the symmetry group.
	Group int
	// Representatives is the number of canonical leaf executions
	// visited.
	Representatives int
	// Executions is the reconstructed unreduced execution count: the
	// sum over canonical leaves of their orbit sizes, routed through
	// the transposition table for deduplicated subtrees. It equals
	// what Explore would count.
	Executions int
	// Configs is the reconstructed unreduced configuration count (what
	// AnalyzeValency reports as Configs).
	Configs int
	// ReducedConfigs is the number of canonical configurations actually
	// replayed and expanded (distinct configurations when Deduped).
	ReducedConfigs int
	// Hits and Misses count transposition-table lookups.
	Hits, Misses int
	// Runs is the number of simulator runs performed.
	Runs int
	// Deduped reports whether the transposition table was active
	// (every object supported signatures and NoDedup was false).
	Deduped bool
}

// identityPerm returns the identity permutation on n elements.
func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// permutationsOf returns all permutations of 0..k-1 in a deterministic
// (lexicographic) order.
func permutationsOf(k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	used := make([]bool, k)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < k; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, i)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// SymmetricClasses builds the product of full symmetric groups over the
// given pairwise-disjoint classes of process ids, identity elsewhere:
// SymmetricClasses(4, []int{1, 2, 3}) is the group of the E4 relaxed-WRN
// configurations, where the follower processes are interchangeable but
// the solo writer is not. Misuse (out-of-range or overlapping classes)
// panics.
func SymmetricClasses(n int, classes ...[]int) Symmetry {
	seen := make([]bool, n)
	for _, class := range classes {
		for _, i := range class {
			if i < 0 || i >= n {
				panic(fmt.Sprintf("modelcheck: SymmetricClasses index %d out of range [0,%d)", i, n))
			}
			if seen[i] {
				panic(fmt.Sprintf("modelcheck: SymmetricClasses classes overlap at %d", i))
			}
			seen[i] = true
		}
	}
	perms := [][]int{identityPerm(n)}
	for _, class := range classes {
		if len(class) < 2 {
			continue
		}
		sigmas := permutationsOf(len(class))
		next := make([][]int, 0, len(perms)*len(sigmas))
		for _, base := range perms {
			for _, sigma := range sigmas {
				p := append([]int(nil), base...)
				for i, j := range sigma {
					p[class[i]] = class[j]
				}
				next = append(next, p)
			}
		}
		perms = next
	}
	return Symmetry{Perms: perms}
}

// CyclicRotations builds the cyclic group of rotations of n process ids
// — the symmetry of ring algorithms like E1's Algorithm 2, which is
// rotation- but not transposition-equivariant (process i reads cell
// (i+1) mod k).
func CyclicRotations(n int) Symmetry {
	perms := make([][]int, n)
	for j := 0; j < n; j++ {
		p := make([]int, n)
		for i := 0; i < n; i++ {
			p[i] = (i + j) % n
		}
		perms[j] = p
	}
	return Symmetry{Perms: perms}
}

// RenameByInputs builds a Symmetry.Rename for consensus-style protocols
// where process i proposes inputs[i] and every decision value is some
// process's input: renaming processes by perm renames inputs[i] to
// inputs[perm[i]]. Values outside inputs map to themselves.
func RenameByInputs(inputs []sim.Value) func(v sim.Value, perm []int) sim.Value {
	return func(v sim.Value, perm []int) sim.Value {
		for i, in := range inputs {
			if in == v && i < len(perm) {
				return inputs[perm[i]]
			}
		}
		return v
	}
}

// group validates s against n processes and returns the permutation
// list, defaulting an empty Perms to the trivial group.
func (s Symmetry) group(n int) ([][]int, error) {
	if len(s.Perms) == 0 {
		return [][]int{identityPerm(n)}, nil
	}
	keys := make(map[string]bool, len(s.Perms))
	pack := func(p []int) string {
		b := make([]byte, len(p))
		for i, v := range p {
			b[i] = byte(v)
		}
		return string(b)
	}
	hasIdentity := false
	for k, p := range s.Perms {
		if len(p) != n {
			return nil, fmt.Errorf("modelcheck: Perms[%d] has length %d, want %d", k, len(p), n)
		}
		seen := make([]bool, n)
		id := true
		for i, v := range p {
			if v < 0 || v >= n || seen[v] {
				return nil, fmt.Errorf("modelcheck: Perms[%d] is not a permutation of %d processes", k, n)
			}
			seen[v] = true
			if v != i {
				id = false
			}
		}
		key := pack(p)
		if keys[key] {
			return nil, fmt.Errorf("modelcheck: Perms[%d] duplicates an earlier permutation", k)
		}
		keys[key] = true
		if id {
			hasIdentity = true
		}
	}
	if !hasIdentity {
		return nil, errors.New("modelcheck: symmetry group must contain the identity permutation")
	}
	comp := make([]int, n)
	for _, a := range s.Perms {
		for _, b := range s.Perms {
			for i := 0; i < n; i++ {
				comp[i] = a[b[i]]
			}
			if !keys[pack(comp)] {
				return nil, errors.New("modelcheck: symmetry Perms are not closed under composition")
			}
		}
	}
	return s.Perms, nil
}

// redFrame is per-depth reusable scratch: the stabilizer (as indices
// into reducer.perms) of the node AT this depth and a copy of its
// enabled set (sim.Result.Enabled aliases arena storage, which child
// runs clobber).
type redFrame struct {
	stab    []int
	enabled []int
}

// redMemo is a transposition-table entry for ExploreReduced: subtree
// weights relative to the node's stabilizer S — execW is
// Σ_leaves |S(node)|/|S(leaf)|, so execW × orbit(node) is the absolute
// execution count of the full (unquotiented) subtree; confW likewise
// for configurations. Equal signatures imply equal stabilizers, so the
// weights transfer between hits without rescaling.
type redMemo struct {
	execW, confW int
}

// rval is one decision value with its rendered key (the dedup and
// report identity).
type rval struct {
	key string
	v   sim.Value
}

// valMemo is a transposition-table entry for AnalyzeValencyReduced: the
// reduced decision-value set of the subtree (closing it under the
// node's stabilizer recovers the full-tree value set), whether the node
// is bivalent in the FULL tree (bivFull), relative subtree weights for
// each report counter, and the canonical-first disagreeing schedule
// suffix below this node.
type valMemo struct {
	vals                      []rval
	bivFull                   bool
	execW, confW, bivW, critW int
	disagree                  []int
	hasDis                    bool
}

// reducer carries the state of one reduced engine call.
type reducer struct {
	f      Factory
	perms  [][]int
	rename func(v sim.Value, perm []int) sim.Value
	dedup  bool
	limit  int
	rep    SymmetryReport

	n        int
	objOrder []string
	objects  map[string]sim.Object

	sched, choices []int
	fixed          sim.Fixed
	src            scriptSource
	arena          sim.RunArena
	onStep         func(proc int, out sim.Value, hang bool)
	hist           [][]byte
	sig            []byte
	objSig         []byte
	frames         []redFrame

	memo  map[string]*redMemo
	vmemo map[string]*valMemo

	execs int // absolute reconstructed executions, for the budget
}

// newReducer probes the factory once for the process count and object
// set, validates the group, and decides dedup capability.
func newReducer(f Factory, r Reduced, limit int) (*reducer, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	probe := f()
	n := len(probe.Programs)
	perms, err := r.Sym.group(n)
	if err != nil {
		return nil, err
	}
	red := &reducer{f: f, perms: perms, rename: r.Sym.Rename, limit: limit, n: n}
	red.rep.Group = len(perms)
	for name := range probe.Objects {
		red.objOrder = append(red.objOrder, name)
	}
	sort.Strings(red.objOrder)
	red.dedup = !r.NoDedup
	if red.dedup {
		for _, name := range red.objOrder {
			obj := probe.Objects[name]
			if _, ok := obj.(sim.StateSigner); ok {
				continue
			}
			if _, ok := obj.(interface{ StateKey() string }); ok {
				continue
			}
			red.dedup = false
			break
		}
	}
	red.rep.Deduped = red.dedup
	if red.dedup {
		red.hist = make([][]byte, n)
		// 0x00 marks a hung step; sim's value-signature tags start at
		// 0x01, so histories stay self-delimiting.
		red.onStep = func(proc int, out sim.Value, hang bool) {
			h := red.hist[proc]
			if hang {
				h = append(h, 0x00)
			} else {
				h = sim.AppendValueSig(h, out)
			}
			red.hist[proc] = h
		}
		red.memo = make(map[string]*redMemo)
		red.vmemo = make(map[string]*valMemo)
	}
	return red, nil
}

// runCurrent replays the current (sched, choices) prefix through the
// shared arena, fixed scheduler and script source.
func (r *reducer) runCurrent() (*sim.Result, error) {
	cfg := r.f()
	r.objects = cfg.Objects
	r.fixed.Reset(r.sched)
	r.src.reset(r.choices)
	cfg.Scheduler = &r.fixed
	cfg.Choice = &r.src
	cfg.DisableTrace = true
	cfg.Arena = &r.arena
	if r.dedup {
		for i := range r.hist {
			r.hist[i] = r.hist[i][:0]
		}
		cfg.OnStep = r.onStep
	}
	r.rep.Runs++
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, decodeRunError(err)
	}
	return res, nil
}

// signature packs the canonical configuration signature: per process a
// status byte plus its length-prefixed response history, then each
// object's length-prefixed state signature in sorted name order. The
// returned slice is reducer-owned scratch; callers must copy (via
// string conversion) before the next run.
func (r *reducer) signature(res *sim.Result) []byte {
	buf := r.sig[:0]
	for i := 0; i < r.n; i++ {
		buf = append(buf, byte(res.Status[i]))
		h := r.hist[i]
		buf = sim.AppendIntSig(buf, len(h))
		buf = append(buf, h...)
	}
	for _, name := range r.objOrder {
		obj := r.objects[name]
		os := r.objSig[:0]
		if signer, ok := obj.(sim.StateSigner); ok {
			os = signer.AppendStateSig(os)
		} else if sk, ok := obj.(interface{ StateKey() string }); ok {
			os = sim.AppendStringSig(os, sk.StateKey())
		} else {
			panic(fmt.Sprintf("modelcheck: factory object set changed between runs (object %q lost its signature)", name))
		}
		r.objSig = os
		buf = sim.AppendIntSig(buf, len(os))
		buf = append(buf, os...)
	}
	r.sig = buf
	return buf
}

// canonicalStep reports whether extending a prefix with stabilizer stab
// by process id keeps the schedule lexicographically least in its
// orbit: every stabilizer member must map id at or above itself.
func canonicalStep(perms [][]int, stab []int, id int) bool {
	for _, pi := range stab {
		if perms[pi][id] < id {
			return false
		}
	}
	return true
}

// frame returns the scratch frame for depth d, growing the stack as
// needed.
func (r *reducer) frame(d int) *redFrame {
	for len(r.frames) <= d {
		r.frames = append(r.frames, redFrame{})
	}
	return &r.frames[d]
}

// copyExecution deep-copies the run outcome out of the arena (whose
// buffers the next run reuses) into a caller-owned Execution.
func copyExecution(sched, choices []int, res *sim.Result) Execution {
	cp := &sim.Result{
		Outputs: append([]sim.Value(nil), res.Outputs...),
		Status:  append([]sim.ProcStatus(nil), res.Status...),
		Enabled: append([]int(nil), res.Enabled...),
		Steps:   res.Steps,
	}
	return Execution{
		Schedule: append([]int(nil), sched...),
		Choices:  append([]int(nil), choices...),
		Result:   cp,
	}
}

// ExploreReduced enumerates one representative execution per symmetry
// orbit, deduplicating re-reached configurations through the
// transposition table. visit (which may be nil) receives each canonical
// leaf with its orbit size; the report's Executions reconstructs the
// exact unreduced count. limit bounds reconstructed executions (0 means
// 1<<20) with the same ErrLimit rendering as Explore; see the file
// comment for the chunked-budget divergence.
func ExploreReduced(f Factory, r Reduced, limit int, visit func(e Execution, orbit int) error) (*SymmetryReport, error) {
	red, err := newReducer(f, r, limit)
	if err != nil {
		return nil, err
	}
	stab := make([]int, len(red.perms))
	for i := range stab {
		stab[i] = i
	}
	_, confW, err := red.exploreRec(0, stab, visit)
	red.rep.Executions = red.execs
	red.rep.Configs = confW
	return &red.rep, err
}

// exploreRec explores the canonical subtree below the current prefix
// and returns the subtree's execution and configuration weights
// relative to the node's stabilizer (see redMemo).
func (r *reducer) exploreRec(depth int, stab []int, visit func(e Execution, orbit int) error) (execW, confW int, err error) {
	res, err := r.runCurrent()
	if err != nil {
		var demand choiceDemand
		if asDemand(err, &demand) {
			// A nondeterministic object branch: same schedule prefix,
			// same stabilizer, one child per choice value.
			for c := 0; c < demand.n; c++ {
				r.choices = append(r.choices, c)
				cw, cc, cerr := r.exploreRec(depth, stab, visit)
				r.choices = r.choices[:len(r.choices)-1]
				if cerr != nil {
					return 0, 0, cerr
				}
				execW += cw
				confW += cc
			}
			return execW, confW, nil
		}
		return 0, 0, err
	}
	orbit := len(r.perms) / len(stab)
	var key string
	if r.dedup {
		buf := r.signature(res)
		if m, ok := r.memo[string(buf)]; ok {
			r.rep.Hits++
			add := m.execW * orbit
			if r.execs+add > r.limit {
				return 0, 0, errLimitExceeded(r.limit)
			}
			r.execs += add
			return m.execW, m.confW, nil
		}
		r.rep.Misses++
		key = string(buf)
	}
	r.rep.ReducedConfigs++
	if len(res.Enabled) == 0 {
		if r.execs+orbit > r.limit {
			return 0, 0, errLimitExceeded(r.limit)
		}
		r.execs += orbit
		r.rep.Representatives++
		if visit != nil {
			if verr := visit(copyExecution(r.sched, r.choices, res), orbit); verr != nil {
				return 0, 0, verr
			}
		}
		if r.dedup {
			r.memo[key] = &redMemo{execW: 1, confW: 1}
		}
		return 1, 1, nil
	}
	fr := r.frame(depth)
	en := append(fr.enabled[:0], res.Enabled...)
	fr.enabled = en
	confW = 1
	for _, id := range en {
		if !canonicalStep(r.perms, stab, id) {
			continue
		}
		cf := r.frame(depth + 1)
		cs := cf.stab[:0]
		for _, pi := range stab {
			if r.perms[pi][id] == id {
				cs = append(cs, pi)
			}
		}
		cf.stab = cs
		r.sched = append(r.sched, id)
		cw, cc, cerr := r.exploreRec(depth+1, cs, visit)
		r.sched = r.sched[:len(r.sched)-1]
		if cerr != nil {
			return 0, 0, cerr
		}
		ratio := len(stab) / len(cs)
		execW += cw * ratio
		confW += cc * ratio
	}
	if r.dedup {
		r.memo[key] = &redMemo{execW: execW, confW: confW}
	}
	return execW, confW, nil
}

// AnalyzeValencyReduced is AnalyzeValency on the reduced engine: same
// ValencyReport verdicts (Configs, Executions, Bivalent, Critical,
// Agreement, Values) reconstructed from the quotiented tree, plus the
// reduction accounting. A nontrivial group requires Sym.Rename so
// decision values can be renamed along with processes (value sets of
// orbit siblings are images of each other). DisagreementSchedule is
// canonical-first; see the file comment.
func AnalyzeValencyReduced(f Factory, r Reduced, limit int) (*ValencyReport, *SymmetryReport, error) {
	red, err := newReducer(f, r, limit)
	if err != nil {
		return nil, nil, err
	}
	if len(red.perms) > 1 && red.rename == nil {
		return nil, nil, errors.New("modelcheck: AnalyzeValencyReduced requires Sym.Rename for a nontrivial group")
	}
	stab := make([]int, len(red.perms))
	for i := range stab {
		stab[i] = i
	}
	root, err := red.valRec(0, stab)
	red.rep.Executions = red.execs
	if err != nil {
		return nil, &red.rep, err
	}
	red.rep.Configs = root.confW
	// Mirror the unreduced report exactly: an all-nil copy of an empty
	// disagreeing schedule reads as agreement, just as valencyRec's
	// append([]int(nil), sched...) does.
	var dis []int
	if root.hasDis {
		dis = append([]int(nil), root.disagree...)
	}
	rep := &ValencyReport{
		Configs:              root.confW,
		Executions:           root.execW,
		Bivalent:             root.bivW,
		Critical:             root.critW,
		Agreement:            dis == nil,
		Values:               red.closureValues(root.vals),
		DisagreementSchedule: dis,
	}
	return rep, &red.rep, nil
}

// valRec runs the valency analysis over the canonical subtree below the
// current prefix, returning the node's valMemo (relative weights,
// reduced value set, full-tree bivalence).
func (r *reducer) valRec(depth int, stab []int) (*valMemo, error) {
	res, err := r.runCurrent()
	if err != nil {
		var demand choiceDemand
		if asDemand(err, &demand) {
			return nil, errNondetValency(err)
		}
		return nil, err
	}
	orbit := len(r.perms) / len(stab)
	var key string
	if r.dedup {
		buf := r.signature(res)
		if m, ok := r.vmemo[string(buf)]; ok {
			r.rep.Hits++
			r.execs += m.execW * orbit
			if r.execs > r.limit {
				return nil, errLimitExceeded(r.limit)
			}
			return m, nil
		}
		r.rep.Misses++
		key = string(buf)
	}
	r.rep.ReducedConfigs++
	node := &valMemo{confW: 1}
	if len(res.Enabled) == 0 {
		r.execs += orbit
		if r.execs > r.limit {
			return nil, errLimitExceeded(r.limit)
		}
		r.rep.Representatives++
		node.execW = 1
		for i, st := range res.Status {
			if st != sim.StatusDone {
				continue
			}
			node.vals = mergeVal(node.vals, rval{key: renderValue(res.Outputs[i]), v: res.Outputs[i]})
		}
		if len(node.vals) > 1 {
			// Internal disagreement; its whole orbit disagrees too
			// (renaming preserves value-set cardinality), so recording
			// the canonical leaf suffices. A leaf's stabilizer fixes
			// the execution, so no closure is needed here.
			node.bivFull = true
			node.hasDis = true
			node.disagree = []int{}
		}
		if r.dedup {
			r.vmemo[key] = node
		}
		return node, nil
	}
	fr := r.frame(depth)
	en := append(fr.enabled[:0], res.Enabled...)
	fr.enabled = en
	allUniv := true
	for _, id := range en {
		if !canonicalStep(r.perms, stab, id) {
			continue
		}
		cf := r.frame(depth + 1)
		cs := cf.stab[:0]
		for _, pi := range stab {
			if r.perms[pi][id] == id {
				cs = append(cs, pi)
			}
		}
		cf.stab = cs
		r.sched = append(r.sched, id)
		child, cerr := r.valRec(depth+1, cs)
		r.sched = r.sched[:len(r.sched)-1]
		if cerr != nil {
			return nil, cerr
		}
		ratio := len(stab) / len(cs)
		node.execW += child.execW * ratio
		node.confW += child.confW * ratio
		node.bivW += child.bivW * ratio
		node.critW += child.critW * ratio
		// Non-canonical siblings are π-images of canonical children,
		// so their full value sets have the same cardinalities —
		// checking bivalence on canonical children covers the orbit.
		if child.bivFull {
			allUniv = false
		}
		for _, rv := range child.vals {
			node.vals = mergeVal(node.vals, rv)
		}
		if !node.hasDis && child.hasDis {
			node.hasDis = true
			node.disagree = append([]int{id}, child.disagree...)
		}
	}
	node.bivFull = r.closedBivalent(node.vals, stab)
	if node.bivFull {
		node.bivW++
		if allUniv {
			node.critW++
		}
	}
	if r.dedup {
		r.vmemo[key] = node
	}
	return node, nil
}

// closedBivalent reports whether the node's FULL-tree value set — the
// closure of its reduced value set under its stabilizer — has more than
// one element: either the reduced set already does, or renaming the
// single value by some stabilizer member changes it.
func (r *reducer) closedBivalent(vals []rval, stab []int) bool {
	if len(vals) > 1 {
		return true
	}
	if len(vals) == 0 || r.rename == nil {
		return false
	}
	v := vals[0]
	for _, pi := range stab {
		if renderValue(r.rename(v.v, r.perms[pi])) != v.key {
			return true
		}
	}
	return false
}

// closureValues closes the root's reduced value set under the whole
// group and renders it sorted, matching ValencyReport.Values of the
// unreduced engine.
func (r *reducer) closureValues(vals []rval) []string {
	set := make(map[string]bool)
	for _, rv := range vals {
		if r.rename == nil {
			set[rv.key] = true
			continue
		}
		for _, p := range r.perms {
			set[renderValue(r.rename(rv.v, p))] = true
		}
	}
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mergeVal adds rv to the set unless its rendered key is already
// present. Value sets are tiny (a handful of decisions), so a linear
// scan beats a map here.
func mergeVal(dst []rval, rv rval) []rval {
	for _, d := range dst {
		if d.key == rv.key {
			return dst
		}
	}
	return append(dst, rv)
}
