package modelcheck

import (
	"sync/atomic"

	"detobj/internal/par"
)

// vnode is one node of the valency split tree. The split phase expands
// the top of the execution tree breadth-first; nodes end up in exactly
// one state: internal (kids set), leaf (vals set), error (err set), or
// open — an unexpanded frontier root handed to a worker (subIdx names
// its result slot).
type vnode struct {
	sched  []int
	kids   []*vnode
	leaf   bool
	vals   map[string]bool
	err    error
	open   bool
	subIdx int
}

// valSub is one worker's result for the subtree under an open frontier
// root: the accumulated statistics, the root's valency set, or the
// error the recursion stopped on.
type valSub struct {
	acc *valencyAcc
	set map[string]bool
	err error
}

// AnalyzeValencyParallel is AnalyzeValency across a worker pool (<= 0
// workers means GOMAXPROCS): the top of the execution tree is expanded
// sequentially into per-subtree roots, workers analyze the subtrees —
// each replaying its own Factory() configurations — and the sub-reports
// are merged in depth-first order. Every report field is either a
// commutative count, a sorted set, or resolved by tree position (the
// disagreement schedule is the depth-first-earliest one), so the report
// is byte-identical to the sequential engine's. The execution budget is
// shared through an atomic counter; when it trips, the error equals
// Explore's ErrLimit rendering.
func AnalyzeValencyParallel(f Factory, limit, workers int) (*ValencyReport, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	workers = par.Normalize(workers, -1)
	if workers == 1 {
		return AnalyzeValency(f, limit)
	}

	// Phase 1 — split: expand breadth-first until enough open subtree
	// roots exist for the pool. Remaining open nodes all sit at the same
	// depth, so slice order is depth-first order within the level.
	root := &vnode{open: true}
	open := []*vnode{root}
	splitExecs := 0
	for len(open) > 0 && len(open) < workers*splitFactor {
		var next []*vnode
		for _, n := range open {
			n.open = false
			res, err := runScripted(f, n.sched, nil)
			if err != nil {
				var demand choiceDemand
				if asDemand(err, &demand) {
					err = errNondetValency(err)
				}
				n.err = err
				continue
			}
			if len(res.Enabled) == 0 {
				n.leaf = true
				n.vals = decisionValues(res)
				splitExecs++
				continue
			}
			for _, id := range res.Enabled {
				kid := &vnode{sched: appendStep(n.sched, id), open: true}
				n.kids = append(n.kids, kid)
				next = append(next, kid)
			}
		}
		open = next
	}

	// Phase 2 — workers: one valencyRec per frontier root, with the
	// shared execution budget. A tripped budget stops every subtree at
	// its next configuration; errors stay in their slot so the merge
	// can pick the depth-first-earliest one.
	subs := make([]valSub, len(open))
	var (
		execs   atomic.Int64
		tripped atomic.Bool
	)
	execs.Store(int64(splitExecs))
	for i, n := range open {
		n.subIdx = i
	}
	_ = par.ForEach(len(open), workers, func(i int) error {
		acc := newValencyAcc()
		set, err := valencyRec(f, open[i].sched, acc, valencyHooks{
			gate: func() error {
				if tripped.Load() {
					return errLimitExceeded(limit)
				}
				return nil
			},
			counted: func() error {
				if execs.Add(1) > int64(limit) {
					tripped.Store(true)
					return errLimitExceeded(limit)
				}
				return nil
			},
		})
		subs[i] = valSub{acc: acc, set: set, err: err}
		return nil
	})

	// Phase 3 — merge: recompute the top region's valency sets from the
	// workers' root sets, walking depth-first so the first error and the
	// first disagreement are the sequential ones.
	acc := newValencyAcc()
	var mergeRec func(n *vnode) (map[string]bool, error)
	mergeRec = func(n *vnode) (map[string]bool, error) {
		switch {
		case n.err != nil:
			return nil, n.err
		case n.open:
			sub := subs[n.subIdx]
			if sub.err != nil {
				return nil, sub.err
			}
			acc.configs += sub.acc.configs
			acc.executions += sub.acc.executions
			acc.bivalent += sub.acc.bivalent
			acc.critical += sub.acc.critical
			for v := range sub.acc.values {
				acc.values[v] = true
			}
			if acc.disagreement == nil && sub.acc.disagreement != nil {
				acc.disagreement = sub.acc.disagreement
			}
			return sub.set, nil
		case n.leaf:
			acc.configs++
			acc.executions++
			if acc.executions > limit {
				return nil, errLimitExceeded(limit)
			}
			if len(n.vals) > 1 && acc.disagreement == nil {
				acc.disagreement = append([]int(nil), n.sched...)
			}
			for v := range n.vals {
				acc.values[v] = true
			}
			return n.vals, nil
		default:
			acc.configs++
			union := make(map[string]bool)
			allChildrenUnivalent := true
			for _, kid := range n.kids {
				set, err := mergeRec(kid)
				if err != nil {
					return nil, err
				}
				if len(set) > 1 {
					allChildrenUnivalent = false
				}
				for v := range set {
					union[v] = true
				}
			}
			if len(union) > 1 {
				acc.bivalent++
				if allChildrenUnivalent {
					acc.critical++
				}
			}
			return union, nil
		}
	}
	if _, err := mergeRec(root); err != nil {
		return nil, err
	}
	return acc.report(), nil
}
