package modelcheck

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"detobj/internal/consensus"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// renderExec pins down everything Explore exposes about one execution, so
// two visit sequences can be compared byte for byte.
func renderExec(e Execution) string {
	return fmt.Sprintf("sched=%v choices=%v out=%v status=%v steps=%d",
		e.Schedule, e.Choices, e.Result.Outputs, e.Result.Status, e.Result.Steps)
}

func collectSeq(t *testing.T, f Factory) []string {
	t.Helper()
	var seq []string
	n, err := Explore(f, 0, func(e Execution) error {
		seq = append(seq, renderExec(e))
		return nil
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if n != len(seq) {
		t.Fatalf("Explore count %d != visits %d", n, len(seq))
	}
	return seq
}

// relaxedFactory is an E4-style configuration: procs processes racing on
// a relaxed WRN_k wrapper, one of them alone on index 1.
func relaxedFactory(k, procs int) Factory {
	return func() sim.Config {
		objects := map[string]sim.Object{}
		rlx, _ := wrn.NewRelaxed(objects, "W", k)
		progs := make([]sim.Program, procs)
		for p := 0; p < procs; p++ {
			p := p
			progs[p] = func(ctx *sim.Ctx) sim.Value {
				if p == 0 {
					return rlx.RlxWRN(ctx, 1, "solo")
				}
				return rlx.RlxWRN(ctx, 0, fmt.Sprintf("p%d", p))
			}
		}
		return sim.Config{Objects: objects, Programs: progs}
	}
}

// TestExploreParallelMatchesExplore is the tentpole cross-check: for
// deterministic, nondeterministic and E4-style configurations, every
// worker count must reproduce Explore's visit sequence exactly — same
// executions, same order, same count.
func TestExploreParallelMatchesExplore(t *testing.T) {
	factories := []struct {
		name string
		f    Factory
	}{
		{"counter2x1", counterFactory(2, 1)},
		{"counter3x2", counterFactory(3, 2)},
		{"coin1x2", coinFactory(1, 2)},
		{"coin2x1", coinFactory(2, 1)},
		{"coin2x2", coinFactory(2, 2)},
		{"relaxedWRN", relaxedFactory(3, 3)},
	}
	for _, fc := range factories {
		want := collectSeq(t, fc.f)
		for _, workers := range []int{1, 2, 4, 8} {
			var got []string
			n, err := ExploreParallel(fc.f, 0, workers, func(e Execution) error {
				got = append(got, renderExec(e))
				return nil
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", fc.name, workers, err)
			}
			if n != len(want) {
				t.Errorf("%s workers=%d: count %d, want %d", fc.name, workers, n, len(want))
			}
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if i >= len(got) || got[i] != want[i] {
						t.Fatalf("%s workers=%d: visit %d diverges:\n got %q\nwant %q",
							fc.name, workers, i, at(got, i), want[i])
					}
				}
				t.Fatalf("%s workers=%d: %d extra visits", fc.name, workers, len(got)-len(want))
			}
		}
	}
}

func at(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<missing>"
}

// TestExploreParallelLimit: the shared budget must reproduce Explore's
// (count, error) pair byte for byte.
func TestExploreParallelLimit(t *testing.T) {
	f := counterFactory(3, 2)
	seqN, seqErr := Explore(f, 5, func(Execution) error { return nil })
	for _, workers := range []int{1, 2, 4, 8} {
		n, err := ExploreParallel(f, 5, workers, func(Execution) error { return nil })
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("workers=%d: err = %v, want ErrLimit", workers, err)
		}
		if err.Error() != seqErr.Error() || n != seqN {
			t.Errorf("workers=%d: (%d, %q), want (%d, %q)", workers, n, err, seqN, seqErr)
		}
	}
}

// TestExploreParallelVisitError: a visit error must stop the merge at the
// same canonical position, having visited exactly the sequential prefix.
func TestExploreParallelVisitError(t *testing.T) {
	f := counterFactory(3, 2)
	boom := errors.New("boom")
	abort := func(visits *[]string, stopAt int) func(e Execution) error {
		return func(e Execution) error {
			*visits = append(*visits, renderExec(e))
			if len(*visits) == stopAt {
				return boom
			}
			return nil
		}
	}
	const stopAt = 37
	var want []string
	if _, err := Explore(f, 0, abort(&want, stopAt)); !errors.Is(err, boom) {
		t.Fatalf("Explore err = %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		var got []string
		if _, err := ExploreParallel(f, 0, workers, abort(&got, stopAt)); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: visited prefix diverges from sequential", workers)
		}
	}
}

// mine is a deterministic object that panics on its fuse-th application —
// a crashing adversary for the worker pool.
type mine struct {
	applied, fuse int
}

func (m *mine) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	m.applied++
	if m.applied == m.fuse {
		panic(fmt.Sprintf("mine detonated at application %d", m.applied))
	}
	return sim.Respond(m.applied)
}

func mineFactory(procs, steps, fuse int) Factory {
	return func() sim.Config {
		programs := make([]sim.Program, procs)
		for i := range programs {
			programs[i] = func(ctx *sim.Ctx) sim.Value {
				last := sim.Value(nil)
				for s := 0; s < steps; s++ {
					last = ctx.Invoke("M", "hit")
				}
				return last
			}
		}
		return sim.Config{
			Objects:  map[string]sim.Object{"M": &mine{fuse: fuse}},
			Programs: programs,
		}
	}
}

// TestExploreParallelCrashingAdversary hammers the worker pool with an
// object that panics mid-exploration: every worker count must surface
// the depth-first-earliest run error, identical to the sequential one.
// Run under -race this also exercises pool teardown while workers are
// still streaming.
func TestExploreParallelCrashingAdversary(t *testing.T) {
	f := mineFactory(3, 2, 4)
	_, seqErr := Explore(f, 0, func(Execution) error { return nil })
	if seqErr == nil {
		t.Fatal("sequential exploration did not hit the mine")
	}
	var ope *sim.ObjectPanicError
	if !errors.As(seqErr, &ope) {
		t.Fatalf("sequential err = %T %v, want ObjectPanicError", seqErr, seqErr)
	}
	for iter := 0; iter < 10; iter++ {
		for _, workers := range []int{2, 4, 8} {
			_, err := ExploreParallel(f, 0, workers, func(Execution) error { return nil })
			if err == nil || err.Error() != seqErr.Error() {
				t.Fatalf("iter=%d workers=%d: err = %v, want %v", iter, workers, err, seqErr)
			}
		}
	}
}

func swapConsensusFactory() Factory {
	return func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromSwap(objects, "C", 10, 20)
		return sim.Config{Objects: objects, Programs: progs}
	}
}

// TestValencyParallelMatches: the merged valency report must equal the
// sequential one field for field, including the depth-first-earliest
// disagreement schedule of a broken protocol.
func TestValencyParallelMatches(t *testing.T) {
	factories := []struct {
		name string
		f    Factory
	}{
		{"swapConsensus", swapConsensusFactory()},
		{"counter3x2", counterFactory(3, 2)}, // disagreeing "protocol": outputs differ per schedule
		{"relaxedWRN", relaxedFactory(3, 3)},
	}
	for _, fc := range factories {
		want, seqErr := AnalyzeValency(fc.f, 0)
		if seqErr != nil {
			t.Fatalf("%s: AnalyzeValency: %v", fc.name, seqErr)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := AnalyzeValencyParallel(fc.f, 0, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", fc.name, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d:\n got %+v\nwant %+v", fc.name, workers, got, want)
			}
		}
	}
}

// TestValencyParallelLimit: the shared execution budget reproduces the
// sequential ErrLimit rendering.
func TestValencyParallelLimit(t *testing.T) {
	f := counterFactory(3, 2)
	_, seqErr := AnalyzeValency(f, 5)
	if !errors.Is(seqErr, ErrLimit) {
		t.Fatalf("sequential err = %v", seqErr)
	}
	for _, workers := range []int{2, 4, 8} {
		_, err := AnalyzeValencyParallel(f, 5, workers)
		if !errors.Is(err, ErrLimit) || err.Error() != seqErr.Error() {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, seqErr)
		}
	}
}

// TestValencyParallelRejectsNondeterminism: the parallel engine wraps a
// choice demand exactly like the sequential one.
func TestValencyParallelRejectsNondeterminism(t *testing.T) {
	_, seqErr := AnalyzeValency(coinFactory(1, 1), 0)
	if seqErr == nil {
		t.Fatal("sequential engine accepted a nondeterministic object")
	}
	for _, workers := range []int{2, 4} {
		_, err := AnalyzeValencyParallel(coinFactory(1, 1), 0, workers)
		if err == nil || err.Error() != seqErr.Error() {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, seqErr)
		}
	}
}

// TestCheckIndistParallelMatches: reachability, refinement and the pair
// analysis all fan out, yet the report — including the ORDER of the
// failure lists — must equal the sequential checker's.
func TestCheckIndistParallelMatches(t *testing.T) {
	cases := []struct {
		name  string
		init  Finite
		alpha []sim.Invocation
	}{
		{"wrn3", wrn.New(3), WRNAlphabet(3, 2)},
		{"wrn2-fails", wrn.New(2), WRNAlphabet(2, 2)},
		{"oneShot3", wrn.NewOneShot(3), WRNAlphabet(3, 2)},
	}
	for _, c := range cases {
		want, seqErr := CheckIndistinguishability(c.init, c.alpha, 1<<14)
		if seqErr != nil {
			t.Fatalf("%s: %v", c.name, seqErr)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := CheckIndistinguishabilityParallel(c.init, c.alpha, 1<<14, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.name, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d: report diverges:\n got %+v\nwant %+v", c.name, workers, got, want)
			}
		}
	}
}

// TestCheckIndistParallelStateLimit: the maxStates guard fires at the
// same point with the same error.
func TestCheckIndistParallelStateLimit(t *testing.T) {
	_, seqErr := CheckIndistinguishability(wrn.New(3), WRNAlphabet(3, 2), 2)
	if seqErr == nil {
		t.Fatal("sequential checker ignored maxStates")
	}
	for _, workers := range []int{2, 4} {
		_, err := CheckIndistinguishabilityParallel(wrn.New(3), WRNAlphabet(3, 2), 2, workers)
		if err == nil || err.Error() != seqErr.Error() {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, seqErr)
		}
	}
}
