package modelcheck

import (
	"testing"

	"detobj/internal/consensus"
	"detobj/internal/sim"
)

// TestValencySwapConsensus (E11): the SWAP-based 2-consensus protocol
// agrees in EVERY execution, its initial configuration is bivalent, and a
// critical configuration exists — the shape of Herlihy's argument.
func TestValencySwapConsensus(t *testing.T) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromSwap(objects, "C", 10, 20)
		return sim.Config{Objects: objects, Programs: progs}
	}
	rep, err := AnalyzeValency(f, 0)
	if err != nil {
		t.Fatalf("AnalyzeValency: %v", err)
	}
	if !rep.Agreement {
		t.Fatalf("disagreement in a SWAP consensus execution: schedule %v", rep.DisagreementSchedule)
	}
	if len(rep.Values) != 2 {
		t.Errorf("decision values = %v, want both 10 and 20 reachable", rep.Values)
	}
	if rep.Bivalent == 0 {
		t.Error("no bivalent configuration; the initial configuration must be bivalent")
	}
	if rep.Critical == 0 {
		t.Error("no critical configuration found")
	}
	if rep.Executions == 0 || rep.Configs <= rep.Executions {
		t.Errorf("implausible tree: %+v", rep)
	}
}

// TestValencyWRN2Consensus: the same protocol built on WRN_2 (Algorithm 2
// with k = 2) also agrees in every execution.
func TestValencyWRN2Consensus(t *testing.T) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromWRN2(objects, "W", "a", "b")
		return sim.Config{Objects: objects, Programs: progs}
	}
	rep, err := AnalyzeValency(f, 0)
	if err != nil {
		t.Fatalf("AnalyzeValency: %v", err)
	}
	if !rep.Agreement {
		t.Fatalf("disagreement: schedule %v", rep.DisagreementSchedule)
	}
	if len(rep.Values) != 2 {
		t.Errorf("values = %v", rep.Values)
	}
}

// TestValencyTASConsensus: and on test-and-set.
func TestValencyTASConsensus(t *testing.T) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromTAS(objects, "T", 1, 2)
		return sim.Config{Objects: objects, Programs: progs}
	}
	rep, err := AnalyzeValency(f, 0)
	if err != nil {
		t.Fatalf("AnalyzeValency: %v", err)
	}
	if !rep.Agreement {
		t.Fatalf("disagreement: schedule %v", rep.DisagreementSchedule)
	}
}

// TestValencyNaiveThreeProcessBreaks (E11 negative control): reusing
// WRN_2 indices for a third process yields disagreeing executions — SWAP
// has consensus number exactly 2.
func TestValencyNaiveThreeProcessBreaks(t *testing.T) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.ThreeFromWRN2Naive(objects, "W", [3]sim.Value{"a", "b", "c"})
		return sim.Config{Objects: objects, Programs: progs}
	}
	rep, err := AnalyzeValency(f, 0)
	if err != nil {
		t.Fatalf("AnalyzeValency: %v", err)
	}
	if rep.Agreement {
		t.Fatal("the naive 3-process protocol agreed everywhere; expected a disagreement witness")
	}
	if len(rep.DisagreementSchedule) == 0 {
		t.Error("no disagreement schedule recorded")
	}
}

// TestValencyRejectsNondeterminism: valency analysis is defined for
// deterministic protocols only.
func TestValencyRejectsNondeterminism(t *testing.T) {
	f := coinFactory(1, 1)
	if _, err := AnalyzeValency(f, 0); err == nil {
		t.Error("nondeterministic configuration accepted")
	}
}

// TestValencyCellConsensus: an n-bounded consensus cell trivially solves
// consensus for 3 processes with zero bivalent configurations beyond...
// the initial configuration is already bivalent (the first scheduled
// process fixes the decision), and every execution agrees.
func TestValencyCellConsensus(t *testing.T) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.NConsFromCell(objects, "cell", []sim.Value{7, 8, 9})
		return sim.Config{Objects: objects, Programs: progs}
	}
	rep, err := AnalyzeValency(f, 0)
	if err != nil {
		t.Fatalf("AnalyzeValency: %v", err)
	}
	if !rep.Agreement {
		t.Fatalf("disagreement: %v", rep.DisagreementSchedule)
	}
	if len(rep.Values) != 3 {
		t.Errorf("values = %v, want 3 reachable decisions", rep.Values)
	}
	if rep.Critical == 0 {
		t.Error("no critical configuration (the initial one must be critical)")
	}
}
