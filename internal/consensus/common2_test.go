package consensus

import (
	"testing"
	"testing/quick"

	"detobj/internal/sim"
)

func TestQueueSequential(t *testing.T) {
	q := NewQueue()
	env := &sim.Env{}
	if got := q.Apply(env, sim.Invocation{Op: "deq"}).Value; got != nil {
		t.Errorf("deq of empty = %v", got)
	}
	q.Apply(env, sim.Invocation{Op: "enq", Args: []sim.Value{"a"}})
	q.Apply(env, sim.Invocation{Op: "enq", Args: []sim.Value{"b"}})
	if got := q.Apply(env, sim.Invocation{Op: "deq"}).Value; got != "a" {
		t.Errorf("deq = %v, want a", got)
	}
	if got := q.Apply(env, sim.Invocation{Op: "deq"}).Value; got != "b" {
		t.Errorf("deq = %v, want b", got)
	}
}

func TestQueueValidation(t *testing.T) {
	for _, inv := range []sim.Invocation{
		{Op: "peek"},
		{Op: "enq", Args: []sim.Value{nil}},
	} {
		inv := inv
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v did not panic", inv)
				}
			}()
			NewQueue().Apply(&sim.Env{}, inv)
		}()
	}
}

// TestQuickQueueFIFO: random enq/deq sequences match a reference slice.
func TestQuickQueueFIFO(t *testing.T) {
	f := func(ops []int16) bool {
		q := NewQueue()
		var ref []sim.Value
		env := &sim.Env{}
		for _, op := range ops {
			if op >= 0 {
				q.Apply(env, sim.Invocation{Op: "enq", Args: []sim.Value{int(op)}})
				ref = append(ref, int(op))
				continue
			}
			got := q.Apply(env, sim.Invocation{Op: "deq"}).Value
			var want sim.Value
			if len(ref) > 0 {
				want = ref[0]
				ref = ref[1:]
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQueueCloneIndependent(t *testing.T) {
	q := NewQueue("a")
	cp := q.CloneObject().(*Queue)
	cp.Apply(&sim.Env{}, sim.Invocation{Op: "deq"})
	if q.StateKey() == cp.StateKey() {
		t.Error("clone shares state with original")
	}
}

func TestFetchAddSequential(t *testing.T) {
	f := NewFetchAdd(5)
	env := &sim.Env{}
	if got := f.Apply(env, sim.Invocation{Op: "fad", Args: []sim.Value{3}}).Value; got != 5 {
		t.Errorf("fad = %v, want 5", got)
	}
	if got := f.Apply(env, sim.Invocation{Op: "fad", Args: []sim.Value{-2}}).Value; got != 8 {
		t.Errorf("fad = %v, want 8", got)
	}
	if f.StateKey() != "6" {
		t.Errorf("state = %s", f.StateKey())
	}
}

func TestFetchAddValidation(t *testing.T) {
	for _, inv := range []sim.Invocation{
		{Op: "add", Args: []sim.Value{1}},
		{Op: "fad", Args: []sim.Value{"x"}},
	} {
		inv := inv
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v did not panic", inv)
				}
			}()
			NewFetchAdd(0).Apply(&sim.Env{}, inv)
		}()
	}
}

func TestRefsCommon2(t *testing.T) {
	objects := map[string]sim.Object{
		"Q": NewQueue(),
		"F": NewFetchAdd(0),
	}
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			q := QueueRef{Name: "Q"}
			fa := FetchAddRef{Name: "F"}
			q.Enq(ctx, "x")
			return []sim.Value{q.Deq(ctx), q.Deq(ctx), fa.FAD(ctx, 7), fa.FAD(ctx, 1)}
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Outputs[0].([]sim.Value)
	want := []sim.Value{"x", nil, 0, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, out[i], want[i])
		}
	}
}
