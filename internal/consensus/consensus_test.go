package consensus

import (
	"testing"
	"testing/quick"

	"detobj/internal/sim"
)

func TestSwapSemantics(t *testing.T) {
	s := NewSwap(nil)
	env := &sim.Env{}
	swap := func(v sim.Value) sim.Value {
		return s.Apply(env, sim.Invocation{Op: "swap", Args: []sim.Value{v}}).Value
	}
	if got := swap("a"); got != nil {
		t.Errorf("first swap = %v, want nil", got)
	}
	if got := swap("b"); got != "a" {
		t.Errorf("second swap = %v, want a", got)
	}
	if got := swap("c"); got != "b" {
		t.Errorf("third swap = %v, want b", got)
	}
}

func TestSwapUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown swap op did not panic")
		}
	}()
	NewSwap(nil).Apply(&sim.Env{}, sim.Invocation{Op: "read"})
}

func TestTestAndSetSemantics(t *testing.T) {
	ts := NewTestAndSet()
	env := &sim.Env{}
	if got := ts.Apply(env, sim.Invocation{Op: "tas"}).Value; got != 0 {
		t.Errorf("first tas = %v, want 0", got)
	}
	for i := 0; i < 3; i++ {
		if got := ts.Apply(env, sim.Invocation{Op: "tas"}).Value; got != 1 {
			t.Errorf("later tas = %v, want 1", got)
		}
	}
}

func TestTestAndSetUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown tas op did not panic")
		}
	}()
	NewTestAndSet().Apply(&sim.Env{}, sim.Invocation{Op: "reset"})
}

func TestCellFirstValueWins(t *testing.T) {
	c := NewCell(3)
	env := &sim.Env{}
	propose := func(v sim.Value) sim.Response {
		return c.Apply(env, sim.Invocation{Op: "propose", Args: []sim.Value{v}})
	}
	if got := propose("x"); got.Value != "x" {
		t.Errorf("first propose = %v, want x", got.Value)
	}
	if got := propose("y"); got.Value != "x" {
		t.Errorf("second propose = %v, want x", got.Value)
	}
	if got := propose("z"); got.Value != "x" {
		t.Errorf("third propose = %v, want x", got.Value)
	}
	// Fourth propose exceeds the budget and hangs.
	if got := propose("w"); got.Effect != sim.Hang {
		t.Errorf("over-budget propose = %+v, want hang", got)
	}
	if c.N() != 3 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCellValidation(t *testing.T) {
	cases := []func(){
		func() { NewCell(0) },
		func() { NewCell(2).Apply(&sim.Env{}, sim.Invocation{Op: "decide"}) },
		func() { NewCell(2).Apply(&sim.Env{}, sim.Invocation{Op: "propose", Args: []sim.Value{nil}}) },
	}
	for i, f := range cases {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// TestQuickCellAlwaysFirstValue: whatever sequence of proposals arrives,
// every in-budget propose returns the first.
func TestQuickCellAlwaysFirstValue(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewCell(len(vals))
		env := &sim.Env{}
		for _, v := range vals {
			got := c.Apply(env, sim.Invocation{Op: "propose", Args: []sim.Value{int(v)}})
			if got.Effect == sim.Hang || got.Value != int(vals[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRefsThroughRun(t *testing.T) {
	objects := map[string]sim.Object{
		"S": NewSwap(nil),
		"T": NewTestAndSet(),
		"C": NewCell(2),
	}
	res, err := sim.Run(sim.Config{
		Objects: objects,
		Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
			s := SwapRef{Name: "S"}
			ts := TASRef{Name: "T"}
			c := CellRef{Name: "C"}
			out := []sim.Value{
				s.Swap(ctx, 1),
				s.Swap(ctx, 2),
				ts.TAS(ctx),
				ts.TAS(ctx),
				c.Propose(ctx, "v"),
			}
			return out
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Outputs[0].([]sim.Value)
	want := []sim.Value{nil, 1, 0, 1, "v"}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, out[i], want[i])
		}
	}
}
