package consensus_test

import (
	"fmt"
	"testing"

	"detobj/internal/consensus"
	"detobj/internal/modelcheck"
	"detobj/internal/sim"
	"detobj/internal/tasks"
)

// verifyConsensusEverywhere exhaustively checks that every execution of
// the protocol solves consensus for the given inputs.
func verifyConsensusEverywhere(t *testing.T, name string, inputs map[int]sim.Value, f modelcheck.Factory) {
	t.Helper()
	execs, err := modelcheck.VerifyAll(f, 0, func(res *sim.Result) error {
		if !res.AllDone() {
			return fmt.Errorf("not wait-free: %v", res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		return tasks.Consensus().Check(o)
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if execs == 0 {
		t.Fatalf("%s: no executions explored", name)
	}
	t.Logf("%s: verified over %d executions", name, execs)
}

// TestTwoConsFromSwapExhaustive (E11): the SWAP-based 2-consensus protocol
// is correct in EVERY execution, for both input orders.
func TestTwoConsFromSwapExhaustive(t *testing.T) {
	for _, vs := range [][2]sim.Value{{10, 20}, {20, 10}, {7, 7}} {
		vs := vs
		inputs := map[int]sim.Value{0: vs[0], 1: vs[1]}
		verifyConsensusEverywhere(t, fmt.Sprintf("swap%v", vs), inputs, func() sim.Config {
			objects := map[string]sim.Object{}
			progs := consensus.TwoConsFromSwap(objects, "C", vs[0], vs[1])
			return sim.Config{Objects: objects, Programs: progs}
		})
	}
}

// TestTwoConsFromWRN2Exhaustive (§3): WRN_2 is SWAP — Algorithm 2 with
// k = 2 solves 2-process consensus in every execution.
func TestTwoConsFromWRN2Exhaustive(t *testing.T) {
	inputs := map[int]sim.Value{0: "a", 1: "b"}
	verifyConsensusEverywhere(t, "wrn2", inputs, func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromWRN2(objects, "W", "a", "b")
		return sim.Config{Objects: objects, Programs: progs}
	})
}

func TestTwoConsFromTASExhaustive(t *testing.T) {
	inputs := map[int]sim.Value{0: 1, 1: 2}
	verifyConsensusEverywhere(t, "tas", inputs, func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromTAS(objects, "T", 1, 2)
		return sim.Config{Objects: objects, Programs: progs}
	})
}

// TestNConsFromCellExhaustive: a bounded consensus cell solves consensus
// for n = 3 in every execution.
func TestNConsFromCellExhaustive(t *testing.T) {
	inputs := map[int]sim.Value{0: "x", 1: "y", 2: "z"}
	verifyConsensusEverywhere(t, "cell", inputs, func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.NConsFromCell(objects, "cell", []sim.Value{"x", "y", "z"})
		return sim.Config{Objects: objects, Programs: progs}
	})
}

// TestThreeFromWRN2NaiveBreaks: the naive extension of the WRN_2 protocol
// to three processes has a disagreeing execution — exhibiting that the
// protocol does not scale past SWAP's consensus number.
func TestThreeFromWRN2NaiveBreaks(t *testing.T) {
	inputs := map[int]sim.Value{0: "a", 1: "b", 2: "c"}
	broke := false
	_, err := modelcheck.Explore(func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.ThreeFromWRN2Naive(objects, "W", [3]sim.Value{"a", "b", "c"})
		return sim.Config{Objects: objects, Programs: progs}
	}, 0, func(e modelcheck.Execution) error {
		o := tasks.OutcomeFromResult(e.Result, inputs)
		if tasks.Consensus().Check(o) != nil {
			broke = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if !broke {
		t.Fatal("no disagreeing execution found; expected the naive protocol to break")
	}
}

func TestTwoConsFromQueueExhaustive(t *testing.T) {
	inputs := map[int]sim.Value{0: "a", 1: "b"}
	verifyConsensusEverywhere(t, "queue", inputs, func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromQueue(objects, "Q", "a", "b")
		return sim.Config{Objects: objects, Programs: progs}
	})
}

func TestTwoConsFromFetchAddExhaustive(t *testing.T) {
	inputs := map[int]sim.Value{0: 1, 1: 2}
	verifyConsensusEverywhere(t, "fetchadd", inputs, func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromFetchAdd(objects, "F", 1, 2)
		return sim.Config{Objects: objects, Programs: progs}
	})
}
