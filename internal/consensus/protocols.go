package consensus

import (
	"detobj/internal/registers"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// TwoConsFromSwap builds the classic 2-process consensus protocol from one
// SWAP object and two proposal registers: each process publishes its
// proposal, then swaps in its id; whoever draws the initial nil wins and
// decides its own proposal, the other adopts the winner's published
// proposal. It registers the shared state under the name prefix and
// returns the two programs.
func TwoConsFromSwap(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	objects[name+".swap"] = NewSwap(nil)
	props := registers.AddRegisterArray(objects, name+".prop", 2, nil)
	s := SwapRef{Name: name + ".swap"}
	mk := func(id int, v sim.Value) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			props[id].Write(ctx, v)
			if t := s.Swap(ctx, id); t != nil {
				return props[t.(int)].Read(ctx)
			}
			return v
		}
	}
	return []sim.Program{mk(0, v0), mk(1, v1)}
}

// TwoConsFromWRN2 builds 2-process consensus directly from a WRN_2 object:
// it is Algorithm 2 with k = 2, where (k−1)-set consensus degenerates to
// consensus. The first process to take its single WRN step reads ⊥ and
// keeps its own proposal; the second reads the first's value and adopts
// it.
func TwoConsFromWRN2(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	objects[name] = wrn.New(2)
	w := wrn.Ref{Name: name}
	mk := func(id int, v sim.Value) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			if t := w.WRN(ctx, id, v); !wrn.IsBottom(t) {
				return t
			}
			return v
		}
	}
	return []sim.Program{mk(0, v0), mk(1, v1)}
}

// TwoConsFromTAS builds 2-process consensus from one test-and-set object
// and two proposal registers: publish, race on TAS, winner keeps its own
// proposal and the loser adopts the winner's.
func TwoConsFromTAS(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	objects[name+".tas"] = NewTestAndSet()
	props := registers.AddRegisterArray(objects, name+".prop", 2, nil)
	ts := TASRef{Name: name + ".tas"}
	mk := func(id int, v sim.Value) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			props[id].Write(ctx, v)
			if ts.TAS(ctx) == 0 {
				return v
			}
			return props[1-id].Read(ctx)
		}
	}
	return []sim.Program{mk(0, v0), mk(1, v1)}
}

// NConsFromCell builds n-process consensus from a single n-bounded
// consensus cell: everyone proposes and decides the cell's answer.
func NConsFromCell(objects map[string]sim.Object, name string, vs []sim.Value) []sim.Program {
	objects[name] = NewCell(len(vs))
	c := CellRef{Name: name}
	progs := make([]sim.Program, len(vs))
	for i, v := range vs {
		v := v
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			return c.Propose(ctx, v)
		}
	}
	return progs
}

// ThreeFromWRN2Naive is the natural (and necessarily broken) attempt to
// run the WRN_2 protocol with three processes: processes 0 and 1 use their
// own indices and process 2 reuses index 0. The model checker exhibits its
// disagreeing executions (E11's negative control): SWAP has consensus
// number exactly 2, so no such protocol can work.
func ThreeFromWRN2Naive(objects map[string]sim.Object, name string, vs [3]sim.Value) []sim.Program {
	objects[name] = wrn.New(2)
	w := wrn.Ref{Name: name}
	mk := func(idx int, v sim.Value) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			if t := w.WRN(ctx, idx, v); !wrn.IsBottom(t) {
				return t
			}
			return v
		}
	}
	return []sim.Program{mk(0, vs[0]), mk(1, vs[1]), mk(0, vs[2])}
}

// makeProps registers the pair of proposal registers the two-process
// protocols publish their values in.
func makeProps(objects map[string]sim.Object, name string) []registers.Ref {
	return registers.AddRegisterArray(objects, name+".prop", 2, nil)
}
