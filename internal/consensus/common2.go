package consensus

import (
	"fmt"
	"strings"

	"detobj/internal/sim"
)

// This file implements the classic Common2 objects — FIFO queue and
// fetch&add — the consensus-number-2 family whose completeness question
// (the Common2 conjecture: is every consensus-number-2 object
// implementable from 2-consensus?) the PODC'16 paper refuted. They serve
// as calibration rows for the mechanized Lemma 38 analysis: both must
// expose distinguishing operation races, because both solve 2-process
// consensus.

// Queue is a FIFO queue with "enq"(v) and "deq" operations; deq returns
// the head or nil when empty.
type Queue struct {
	items []sim.Value
}

// NewQueue returns an empty queue, optionally pre-filled with items.
func NewQueue(items ...sim.Value) *Queue {
	return &Queue{items: append([]sim.Value(nil), items...)}
}

// Apply implements sim.Object.
func (q *Queue) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "enq":
		v := inv.Arg(0)
		if v == nil {
			panic("consensus: enq of nil")
		}
		q.items = append(q.items, v)
		return sim.Respond(nil)
	case "deq":
		if len(q.items) == 0 {
			return sim.Respond(nil)
		}
		head := q.items[0]
		q.items = q.items[1:]
		return sim.Respond(head)
	default:
		panic(fmt.Sprintf("consensus: unknown queue operation %q", inv.Op))
	}
}

// StateKey serializes the queue contents (for the model checker).
func (q *Queue) StateKey() string {
	var b strings.Builder
	for _, v := range q.items {
		fmt.Fprintf(&b, "%v|", v)
	}
	return b.String()
}

// CloneObject returns a deep copy (for the model checker).
func (q *Queue) CloneObject() sim.Object {
	return NewQueue(q.items...)
}

// AppendStateSig implements sim.StateSigner: the queue contents in FIFO
// order, with a length prefix so different splits cannot alias.
func (q *Queue) AppendStateSig(dst []byte) []byte {
	dst = sim.AppendIntSig(dst, len(q.items))
	for _, v := range q.items {
		dst = sim.AppendValueSig(dst, v)
	}
	return dst
}

// QueueRef is a typed handle to a Queue registered under Name.
type QueueRef struct {
	Name string
}

// Enq appends v (one atomic step).
func (r QueueRef) Enq(ctx *sim.Ctx, v sim.Value) {
	ctx.Invoke(r.Name, "enq", v)
}

// Deq removes and returns the head, or nil when empty (one atomic step).
func (r QueueRef) Deq(ctx *sim.Ctx) sim.Value {
	return ctx.Invoke(r.Name, "deq")
}

// FetchAdd is a fetch&add register: "fad"(d) adds d and returns the
// previous value.
type FetchAdd struct {
	n int
}

// NewFetchAdd returns a fetch&add register holding initial.
func NewFetchAdd(initial int) *FetchAdd { return &FetchAdd{n: initial} }

// Apply implements sim.Object.
func (f *FetchAdd) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	if inv.Op != "fad" {
		panic(fmt.Sprintf("consensus: unknown fetch&add operation %q", inv.Op))
	}
	d, ok := inv.Arg(0).(int)
	if !ok {
		panic("consensus: fetch&add of non-integer")
	}
	old := f.n
	f.n += d
	return sim.Respond(old)
}

// StateKey serializes the value (for the model checker).
func (f *FetchAdd) StateKey() string { return fmt.Sprint(f.n) }

// CloneObject returns a copy (for the model checker).
func (f *FetchAdd) CloneObject() sim.Object { return &FetchAdd{n: f.n} }

// AppendStateSig implements sim.StateSigner.
func (f *FetchAdd) AppendStateSig(dst []byte) []byte {
	return sim.AppendIntSig(dst, f.n)
}

// FetchAddRef is a typed handle to a FetchAdd registered under Name.
type FetchAddRef struct {
	Name string
}

// FAD adds d and returns the previous value (one atomic step).
func (r FetchAddRef) FAD(ctx *sim.Ctx, d int) int {
	return ctx.Invoke(r.Name, "fad", d).(int)
}

// TwoConsFromQueue builds the classic 2-process consensus protocol from a
// queue pre-filled with a single "winner" token: publish the proposal,
// dequeue; whoever draws the token decides its own proposal, the other
// adopts the winner's (Herlihy 1991).
func TwoConsFromQueue(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	objects[name+".q"] = NewQueue("winner")
	props := makeProps(objects, name)
	q := QueueRef{Name: name + ".q"}
	mk := func(id int, v sim.Value) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			props[id].Write(ctx, v)
			if q.Deq(ctx) == "winner" {
				return v
			}
			return props[1-id].Read(ctx)
		}
	}
	return []sim.Program{mk(0, v0), mk(1, v1)}
}

// TwoConsFromFetchAdd builds 2-process consensus from fetch&add: the
// process that draws 0 wins.
func TwoConsFromFetchAdd(objects map[string]sim.Object, name string, v0, v1 sim.Value) []sim.Program {
	objects[name+".fa"] = NewFetchAdd(0)
	props := makeProps(objects, name)
	fa := FetchAddRef{Name: name + ".fa"}
	mk := func(id int, v sim.Value) sim.Program {
		return func(ctx *sim.Ctx) sim.Value {
			props[id].Write(ctx, v)
			if fa.FAD(ctx, 1) == 0 {
				return v
			}
			return props[1-id].Read(ctx)
		}
	}
	return []sim.Program{mk(0, v0), mk(1, v1)}
}
