// Package consensus provides the classic consensus-number calibration
// objects the paper contrasts WRN with: SWAP (consensus number 2, and
// behaviourally WRN_2, §3), test-and-set (consensus number 2), and
// bounded-use first-value-wins consensus cells (the building block of the
// O(n,k) conjunction objects of PODC'16). It also implements the standard
// 2-process consensus protocols from these objects, which the model
// checker verifies exhaustively (experiments E6 and E11).
package consensus

import (
	"fmt"

	"detobj/internal/sim"
)

// Swap is a SWAP object: a single cell whose swap operation writes a new
// value and returns the previous one. Initially the cell holds nil, which
// plays the role of ⊥.
type Swap struct {
	v sim.Value
}

// NewSwap returns a SWAP object holding initial.
func NewSwap(initial sim.Value) *Swap { return &Swap{v: initial} }

// Apply implements sim.Object with the single operation "swap"(v).
func (s *Swap) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	if inv.Op != "swap" {
		panic(fmt.Sprintf("consensus: unknown swap operation %q", inv.Op))
	}
	old := s.v
	s.v = inv.Arg(0)
	return sim.Respond(old)
}

// SwapRef is a typed handle to a Swap registered under Name.
type SwapRef struct {
	Name string
}

// Swap exchanges v for the cell's current value (one atomic step).
func (r SwapRef) Swap(ctx *sim.Ctx, v sim.Value) sim.Value {
	return ctx.Invoke(r.Name, "swap", v)
}

// TestAndSet is a test-and-set object: the first "tas" returns 0 (win) and
// sets the flag; all later ones return 1.
type TestAndSet struct {
	set bool
}

// NewTestAndSet returns a fresh test-and-set object.
func NewTestAndSet() *TestAndSet { return &TestAndSet{} }

// Apply implements sim.Object with the single operation "tas".
func (t *TestAndSet) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	if inv.Op != "tas" {
		panic(fmt.Sprintf("consensus: unknown test-and-set operation %q", inv.Op))
	}
	if t.set {
		return sim.Respond(1)
	}
	t.set = true
	return sim.Respond(0)
}

// TASRef is a typed handle to a TestAndSet registered under Name.
type TASRef struct {
	Name string
}

// TAS performs test-and-set; 0 means this caller won.
func (r TASRef) TAS(ctx *sim.Ctx) int {
	return ctx.Invoke(r.Name, "tas").(int)
}

// Cell is an n-bounded first-value-wins consensus cell: the first propose
// fixes the decision, every propose returns it, and proposes beyond the
// budget hang the caller undetectably. Deterministic; its consensus number
// is its budget n (it cannot serve more than n processes, and bounded-use
// objects cannot be drained and reused in a wait-free protocol).
type Cell struct {
	n        int
	used     int
	decided  bool
	decision sim.Value
}

// NewCell returns a consensus cell with a budget of n proposes, n ≥ 1.
func NewCell(n int) *Cell {
	if n < 1 {
		panic(fmt.Sprintf("consensus: cell budget %d < 1", n))
	}
	return &Cell{n: n}
}

// N returns the cell's propose budget.
func (c *Cell) N() int { return c.n }

// Apply implements sim.Object with the single operation "propose"(v).
func (c *Cell) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	if inv.Op != "propose" {
		panic(fmt.Sprintf("consensus: unknown cell operation %q", inv.Op))
	}
	v := inv.Arg(0)
	if v == nil {
		panic("consensus: propose of nil value")
	}
	c.used++
	if c.used > c.n {
		return sim.HangCaller()
	}
	if !c.decided {
		c.decided = true
		c.decision = v
	}
	return sim.Respond(c.decision)
}

// CellRef is a typed handle to a Cell registered under Name.
type CellRef struct {
	Name string
}

// Propose submits v and returns the cell's decision.
func (r CellRef) Propose(ctx *sim.Ctx, v sim.Value) sim.Value {
	return ctx.Invoke(r.Name, "propose", v)
}

// StateKey serializes the cell (for the model checker).
func (s *Swap) StateKey() string { return fmt.Sprint(s.v) }

// AppendStateSig implements sim.StateSigner.
func (s *Swap) AppendStateSig(dst []byte) []byte {
	return sim.AppendValueSig(dst, s.v)
}

// CloneObject returns a copy (for the model checker).
func (s *Swap) CloneObject() sim.Object { return &Swap{v: s.v} }

// StateKey serializes the flag (for the model checker).
func (t *TestAndSet) StateKey() string { return fmt.Sprint(t.set) }

// AppendStateSig implements sim.StateSigner.
func (t *TestAndSet) AppendStateSig(dst []byte) []byte {
	set := 0
	if t.set {
		set = 1
	}
	return sim.AppendIntSig(dst, set)
}

// CloneObject returns a copy (for the model checker).
func (t *TestAndSet) CloneObject() sim.Object { return &TestAndSet{set: t.set} }

// StateKey serializes the decision state (for the model checker).
func (c *Cell) StateKey() string {
	return fmt.Sprintf("%d/%d:%v:%v", c.used, c.n, c.decided, c.decision)
}

// CloneObject returns a copy (for the model checker).
func (c *Cell) CloneObject() sim.Object {
	cp := *c
	return &cp
}

// AppendStateSig implements sim.StateSigner.
func (c *Cell) AppendStateSig(dst []byte) []byte {
	dst = sim.AppendIntSig(dst, c.used)
	decided := 0
	if c.decided {
		decided = 1
	}
	dst = sim.AppendIntSig(dst, decided)
	return sim.AppendValueSig(dst, c.decision)
}
