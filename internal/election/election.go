// Package election provides the k-set election machinery of paper §2 and
// §5: solving k-set election from a set-consensus object (processes
// propose their own identifiers), and the (k, k−1)-strong set election
// object that Algorithm 5 consumes.
//
// Strong set election adds the self-election property: if any process
// decides on p, then p decides on p. The paper relies on the known result
// (Borowsky–Gafni, STOC '93) that k-strong set election is implementable
// from k-set election; that reduction goes through the full BG simulation
// and is prior work, so this library realizes strong set election directly
// as a nondeterministic bounded-use object whose behaviours are exactly
// the task's allowed outcomes (see DESIGN.md, Substitutions). Its
// synchronization power is that of (k, k−1)-set consensus.
package election

import (
	"fmt"

	"detobj/internal/sim"
)

// StrongObject is a one-shot (k, k−1)-strong set election object for k
// processes with indices {0..k−1}. Invoke(i) returns a winner index:
// the object maintains a winner set of size at most k−1; the first
// invoker always wins (returns its own index); a later invoker either
// joins the winners (if room remains, chosen nondeterministically) or
// adopts an existing winner. Every output w satisfies self-election by
// construction: w was made a winner at its own invocation, which returned
// w. Reusing an index is illegal and hangs the caller.
type StrongObject struct {
	k       int
	used    []bool
	winners []int
}

// NewStrongObject returns a fresh object for k processes, k ≥ 2.
func NewStrongObject(k int) *StrongObject {
	if k < 2 {
		panic(fmt.Sprintf("election: k = %d, need k >= 2", k))
	}
	return &StrongObject{k: k, used: make([]bool, k)}
}

// K returns the object's arity.
func (o *StrongObject) K() int { return o.k }

// Winners returns a copy of the current winner set, for tests.
func (o *StrongObject) Winners() []int {
	return append([]int(nil), o.winners...)
}

// Apply implements sim.Object with the single operation "invoke"(i).
func (o *StrongObject) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	if inv.Op != "invoke" {
		panic(fmt.Sprintf("election: unknown operation %q", inv.Op))
	}
	i, ok := inv.Arg(0).(int)
	if !ok || i < 0 || i >= o.k {
		panic(fmt.Sprintf("election: index %v outside [0,%d)", inv.Arg(0), o.k))
	}
	if o.used[i] {
		return sim.HangCaller()
	}
	o.used[i] = true
	switch {
	case len(o.winners) == 0:
		o.winners = append(o.winners, i)
		return sim.Respond(i)
	case len(o.winners) < o.k-1 && env.Rand.Intn(2) == 1:
		o.winners = append(o.winners, i)
		return sim.Respond(i)
	default:
		return sim.Respond(o.winners[env.Rand.Intn(len(o.winners))])
	}
}

// StrongRef is a typed handle to a StrongObject registered under Name.
type StrongRef struct {
	Name string
}

// Invoke runs the strong set election for index i (one atomic step) and
// returns the elected index.
func (r StrongRef) Invoke(ctx *sim.Ctx, i int) int {
	return ctx.Invoke(r.Name, "invoke", i).(int)
}

// Proposer is the handle of any object with a propose operation —
// satisfied by setconsensus.Ref. It is declared here, at the consumer, to
// keep the election package independent of the object packages.
type Proposer interface {
	Propose(ctx *sim.Ctx, v sim.Value) sim.Value
}

// ElectProgram returns the k-set election program for participant id: it
// proposes its own identifier to the set-consensus object and decides the
// returned identifier. This is the standard reduction of k-set election
// to k-set consensus (§2).
func ElectProgram(obj Proposer, id int) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		return obj.Propose(ctx, id)
	}
}

// ConsensusFromElection is the other direction of §2's equivalence: k-set
// consensus from k-set election. Each participant publishes its proposal
// in its announce register, runs the election by proposing its own id,
// and decides the published proposal of the elected leader. The leader
// announced before electing (program order), so the read never misses.
type ConsensusFromElection struct {
	elect    Proposer
	announce []announceRef
}

// announceRef is a minimal register handle, kept local to avoid importing
// the registers package (which would be fine, but the election package
// only needs writes and reads).
type announceRef struct {
	name string
}

func (a announceRef) write(ctx *sim.Ctx, v sim.Value) { ctx.Invoke(a.name, "write", v) }
func (a announceRef) read(ctx *sim.Ctx) sim.Value     { return ctx.Invoke(a.name, "read") }

// announceObject is a plain MWMR register.
type announceObject struct {
	v sim.Value
}

// Apply implements sim.Object.
func (r *announceObject) Apply(_ *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "read":
		return sim.Respond(r.v)
	case "write":
		r.v = inv.Arg(0)
		return sim.Respond(nil)
	default:
		panic(fmt.Sprintf("election: unknown announce operation %q", inv.Op))
	}
}

// NewConsensusFromElection registers n announce registers under the name
// prefix and returns the reduction over the given election object handle
// (anything whose Propose solves k-set election on ids 0..n−1).
func NewConsensusFromElection(objects map[string]sim.Object, name string, n int, elect Proposer) ConsensusFromElection {
	refs := make([]announceRef, n)
	for i := 0; i < n; i++ {
		refs[i] = announceRef{name: sim.Indexed(name+".ann", i)}
		objects[refs[i].name] = &announceObject{}
	}
	return ConsensusFromElection{elect: elect, announce: refs}
}

// Propose runs the reduction for participant id with proposal v.
func (c ConsensusFromElection) Propose(ctx *sim.Ctx, id int, v sim.Value) sim.Value {
	c.announce[id].write(ctx, v)
	leader := c.elect.Propose(ctx, id).(int)
	return c.announce[leader].read(ctx)
}

// Program wraps Propose as a process program.
func (c ConsensusFromElection) Program(id int, v sim.Value) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		return c.Propose(ctx, id, v)
	}
}
