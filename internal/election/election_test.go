package election

import (
	"testing"

	"detobj/internal/sim"
	"detobj/internal/tasks"
)

func TestNewStrongObjectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStrongObject(1) did not panic")
		}
	}()
	NewStrongObject(1)
}

func TestStrongObjectBadOps(t *testing.T) {
	for _, inv := range []sim.Invocation{
		{Op: "propose", Args: []sim.Value{0}},
		{Op: "invoke", Args: []sim.Value{7}},
		{Op: "invoke", Args: []sim.Value{"x"}},
	} {
		inv := inv
		t.Run(inv.String(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%v did not panic", inv)
				}
			}()
			NewStrongObject(3).Apply(&sim.Env{}, inv)
		})
	}
}

// TestStrongObjectTask (paper §2): over many seeds and schedules, the
// object's outputs satisfy the (k, k−1)-strong set election task.
func TestStrongObjectTask(t *testing.T) {
	for k := 2; k <= 6; k++ {
		task := tasks.StrongElection{K: k - 1}
		for seed := int64(0); seed < 100; seed++ {
			obj := NewStrongObject(k)
			objects := map[string]sim.Object{"SSE": obj}
			ref := StrongRef{Name: "SSE"}
			inputs := map[int]sim.Value{}
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				inputs[i] = i
				progs[i] = func(ctx *sim.Ctx) sim.Value { return ref.Invoke(ctx, i) }
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewRandom(seed),
				Seed:      seed * 17,
			})
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if !res.AllDone() {
				t.Fatalf("k=%d seed=%d: %v", k, seed, res.Status)
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := task.Check(o); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if w := len(obj.Winners()); w < 1 || w > k-1 {
				t.Fatalf("k=%d seed=%d: %d winners", k, seed, w)
			}
		}
	}
}

// TestStrongObjectFirstInvokerWins: the first invocation always elects
// itself.
func TestStrongObjectFirstInvokerWins(t *testing.T) {
	o := NewStrongObject(4)
	env := &sim.Env{Rand: fixedRand{}}
	out := o.Apply(env, sim.Invocation{Op: "invoke", Args: []sim.Value{2}})
	if out.Value != 2 {
		t.Errorf("first invoker elected %v, want itself (2)", out.Value)
	}
}

// fixedRand always returns 0, forcing "adopt an existing winner".
type fixedRand struct{}

func (fixedRand) Intn(int) int { return 0 }

// TestStrongObjectForcedAdoption: with an adversarial choice source that
// never grows the winner set, every later invoker adopts the first winner
// — the minimal-agreement behaviour.
func TestStrongObjectForcedAdoption(t *testing.T) {
	o := NewStrongObject(4)
	env := &sim.Env{Rand: fixedRand{}}
	first := o.Apply(env, sim.Invocation{Op: "invoke", Args: []sim.Value{3}}).Value
	for i := 0; i < 3; i++ {
		got := o.Apply(env, sim.Invocation{Op: "invoke", Args: []sim.Value{i}}).Value
		if got != first {
			t.Errorf("invoker %d elected %v, want %v", i, got, first)
		}
	}
	if len(o.Winners()) != 1 {
		t.Errorf("winner set = %v, want singleton", o.Winners())
	}
}

// growRand always returns 1, making every invoker try to join the winners.
type growRand struct{}

func (growRand) Intn(n int) int { return 1 % n }

// TestStrongObjectWinnerCap: even when every invoker tries to win, the
// winner set never exceeds k−1, so at least one invocation adopts — the
// (k−1)-agreement bound.
func TestStrongObjectWinnerCap(t *testing.T) {
	const k = 4
	o := NewStrongObject(k)
	env := &sim.Env{Rand: growRand{}}
	distinct := map[sim.Value]bool{}
	for i := 0; i < k; i++ {
		distinct[o.Apply(env, sim.Invocation{Op: "invoke", Args: []sim.Value{i}}).Value] = true
	}
	if len(o.Winners()) > k-1 {
		t.Errorf("winner set %v exceeds k-1", o.Winners())
	}
	if len(distinct) > k-1 {
		t.Errorf("%d distinct outputs, want at most %d", len(distinct), k-1)
	}
}

// TestStrongObjectReuseHangs: invoking the same index twice parks the
// caller.
func TestStrongObjectReuseHangs(t *testing.T) {
	o := NewStrongObject(3)
	env := &sim.Env{Rand: fixedRand{}}
	o.Apply(env, sim.Invocation{Op: "invoke", Args: []sim.Value{0}})
	if out := o.Apply(env, sim.Invocation{Op: "invoke", Args: []sim.Value{0}}); out.Effect != sim.Hang {
		t.Errorf("reuse did not hang: %+v", out)
	}
	if o.K() != 3 {
		t.Errorf("K = %d", o.K())
	}
}
